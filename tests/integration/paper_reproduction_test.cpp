// End-to-end reproduction test: runs the calibrated default campaign once
// and asserts every qualitative/quantitative shape the paper reports.
// Ranges are deliberately generous (the substrate is a stochastic
// simulator, not the authors' testbed); what must hold is who wins, by
// roughly what factor, and where the crossovers fall.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <span>

#include "analysis/bitstats.hpp"
#include "analysis/grouping.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "resilience/ecc_whatif.hpp"
#include "resilience/quarantine.hpp"
#include "sim/campaign.hpp"

namespace unp {
namespace {

struct Pipeline {
  const sim::CampaignResult& campaign = sim::default_campaign();
  analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);
  std::vector<analysis::SimultaneousGroup> groups =
      analysis::group_simultaneous(extraction.faults);
};

const Pipeline& pipeline() {
  static const Pipeline p;
  return p;
}

TEST(PaperHeadline, SectionIIIB) {
  const Pipeline& p = pipeline();
  const analysis::HeadlineStats stats =
      analysis::headline_stats(p.campaign.archive, p.extraction);

  EXPECT_EQ(stats.monitored_nodes, 923);              // paper: 923
  EXPECT_GT(stats.raw_logs, 20000000u);               // paper: >25M
  EXPECT_GT(stats.removed_fraction, 0.95);            // paper: >98%
  EXPECT_EQ(p.extraction.removed_nodes.size(), 1u);   // one replaced node
  EXPECT_GT(stats.independent_faults, 40000u);        // paper: >55,000
  EXPECT_LT(stats.independent_faults, 75000u);
  EXPECT_NEAR(stats.monitored_node_hours, 4.2e6, 0.5e6);   // paper: 4.2M
  EXPECT_NEAR(stats.terabyte_hours, 12135.0, 1500.0);      // paper: 12,135
  EXPECT_GT(stats.cluster_mtbe_minutes, 5.0);              // paper: ~10 min
  EXPECT_LT(stats.cluster_mtbe_minutes, 20.0);
}

TEST(PaperScanAccounting, Figs1And2) {
  const Pipeline& p = pipeline();
  const Grid2D hours = analysis::hours_scanned_grid(p.campaign.archive);
  const Grid2D tbh = analysis::terabyte_hours_grid(p.campaign.archive);

  // Login slots (SoC 0 of the first blades) never scan.
  for (std::size_t blade = 0; blade < 9; ++blade) {
    EXPECT_DOUBLE_EQ(hours.at(blade, 0), 0.0);
  }
  // The overheating column is starved relative to its neighbours.
  RunningStats normal, soc12;
  std::vector<double> hours_v, tbh_v;
  for (std::size_t b = 0; b < hours.rows(); ++b) {
    for (std::size_t s = 0; s < hours.cols(); ++s) {
      if (hours.at(b, s) <= 0.0) continue;
      (s == 12 ? soc12 : normal).add(hours.at(b, s));
      hours_v.push_back(hours.at(b, s));
      tbh_v.push_back(tbh.at(b, s));
    }
  }
  EXPECT_LT(soc12.mean(), 0.6 * normal.mean());
  // "Most nodes got about 5000 hours" / "~15 TB-h".
  EXPECT_NEAR(normal.mean(), 5000.0, 1200.0);
  EXPECT_NEAR(median_of(std::span<const double>(tbh_v)), 15.0, 4.0);
  // Fig 2 mirrors Fig 1.
  EXPECT_GT(pearson(hours_v, tbh_v).r, 0.95);
}

TEST(PaperSpatial, Fig3AndFig12) {
  const Pipeline& p = pipeline();
  const analysis::TopNodeSeries top = analysis::top_node_series(
      p.extraction.faults, p.campaign.archive.window());

  ASSERT_EQ(top.nodes.size(), 3u);
  // The degrading node dominates with tens of thousands of faults.
  EXPECT_EQ(top.nodes[0], (cluster::NodeId{2, 4}));
  EXPECT_GT(top.node_totals[0], 40000u);  // paper: >50,000
  // The weak-bit nodes carry thousands each.
  EXPECT_GT(top.node_totals[1], 800u);
  EXPECT_GT(top.node_totals[2], 400u);
  // Everything else combined is negligible (paper: <30; the multibit and
  // shower populations land there in our model, so allow a few hundred).
  EXPECT_LT(top.rest_total, 400u);
  // ">99.9% of errors occurring in less than 1% of the nodes" (ours: >99%).
  const double top_share =
      static_cast<double>(top.node_totals[0] + top.node_totals[1] +
                          top.node_totals[2]) /
      static_cast<double>(p.extraction.faults.size());
  EXPECT_GT(top_share, 0.99);

  // The weak-bit nodes flip one identical bit in 100% of their errors.
  for (std::size_t k = 1; k < 3; ++k) {
    const analysis::NodePatternProfile profile =
        analysis::node_pattern_profile(p.extraction.faults, top.nodes[k]);
    EXPECT_TRUE(profile.single_fixed_bit)
        << cluster::node_name(top.nodes[k]);
    EXPECT_EQ(profile.distinct_addresses, 1u);
  }
  // The degrading node: >11,000 addresses, ~30 patterns, not a single bit.
  const analysis::NodePatternProfile degrading =
      analysis::node_pattern_profile(p.extraction.faults, top.nodes[0]);
  EXPECT_GT(degrading.distinct_addresses, 8000u);
  EXPECT_LT(degrading.distinct_patterns, 60u);
  EXPECT_FALSE(degrading.single_fixed_bit);
}

TEST(PaperMultibit, TableI) {
  const Pipeline& p = pipeline();
  const auto patterns = analysis::multibit_patterns(p.extraction.faults);

  std::uint64_t total = 0, doubles = 0, wider = 0, max_occurrence = 0;
  int max_bits = 0;
  for (const auto& pat : patterns) {
    total += pat.occurrences;
    if (pat.bits == 2) doubles += pat.occurrences;
    if (pat.bits > 2) wider += pat.occurrences;
    max_bits = std::max(max_bits, pat.bits);
    max_occurrence = std::max(max_occurrence, pat.occurrences);
  }
  EXPECT_NEAR(static_cast<double>(total), 85.0, 30.0);    // paper: 85
  EXPECT_NEAR(static_cast<double>(doubles), 76.0, 30.0);  // paper: 76
  EXPECT_NEAR(static_cast<double>(wider), 9.0, 6.0);      // paper: 9
  EXPECT_EQ(max_bits, 9);                                 // paper: max 9 bits
  EXPECT_GT(max_occurrence, 10u);  // repeated patterns (paper: up to 36)

  const analysis::AdjacencyStats adj =
      analysis::adjacency_stats(p.extraction.faults);
  EXPECT_GT(adj.non_adjacent, adj.consecutive);  // majority non-adjacent
  EXPECT_NEAR(adj.mean_distance, 3.0, 1.0);      // paper: ~3
  EXPECT_GE(adj.max_distance, 5);                // paper: up to 11
  EXPECT_GT(adj.low_half_majority * 2, adj.multibit_faults);  // LSB-heavy
}

TEST(PaperDirection, NinetyPercentDischarge) {
  const analysis::DirectionStats dir =
      analysis::direction_stats(pipeline().extraction.faults);
  EXPECT_NEAR(dir.one_to_zero_fraction(), 0.90, 0.05);  // paper: ~90%
}

TEST(PaperSimultaneity, Fig4AndSectionIIIC) {
  const Pipeline& p = pipeline();
  const analysis::CoOccurrence co = analysis::count_co_occurrence(p.groups);

  EXPECT_GT(co.simultaneous_corruptions, 26000u);  // paper: >26,000
  // ">99.9% of those were multiple single-bit corruptions".
  const auto groups_total = co.multi_single_groups + co.double_plus_single +
                            co.triple_plus_single + co.double_plus_double;
  EXPECT_GT(static_cast<double>(co.multi_single_groups),
            0.99 * static_cast<double>(groups_total));
  EXPECT_NEAR(static_cast<double>(co.double_plus_single), 44.0, 25.0);
  EXPECT_LE(co.triple_plus_single, 6u);        // paper: 2
  EXPECT_LE(co.double_plus_double, 4u);        // paper: 1
  EXPECT_NEAR(static_cast<double>(co.max_bits_one_instant), 36.0, 6.0);

  // Fig 4: per-node multibit >> per-word multibit; per-node single-bit <
  // per-word single-bit.
  const analysis::MultibitViewpoints v = analysis::count_viewpoints(p.groups);
  std::uint64_t word_multi = 0, node_multi = 0;
  for (int bits = 2; bits <= analysis::MultibitViewpoints::kMaxBits; ++bits) {
    word_multi += v.per_word[bits];
    node_multi += v.per_node[bits];
  }
  EXPECT_GT(node_multi, 50 * word_multi);
  EXPECT_LT(v.per_node[1], v.per_word[1]);
}

TEST(PaperDiurnal, Figs5And6) {
  const Pipeline& p = pipeline();
  const analysis::HourOfDayProfile profile =
      analysis::hour_of_day_profile(p.extraction.faults);

  // Fig 6: multi-bit day/night ratio ~2.
  const double ratio = profile.day_night_ratio_multibit();
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.8);

  // Fig 5: the all-errors profile is far flatter than the multi-bit one
  // (dominated by the time-of-day-blind heavy nodes).
  std::uint64_t day_all = 0, night_all = 0;
  for (int h = 0; h < 24; ++h) {
    (h >= 7 && h <= 18 ? day_all : night_all) += profile.total(h);
  }
  const double all_ratio =
      static_cast<double>(day_all) / static_cast<double>(night_all);
  EXPECT_GT(all_ratio, 0.7);
  EXPECT_LT(all_ratio, 1.4);
}

TEST(PaperTemperature, Figs7And8) {
  const Pipeline& p = pipeline();
  const analysis::TemperatureProfile profile =
      analysis::temperature_profile(p.extraction.faults);

  std::uint64_t total = 0, band_30_40 = 0, multibit_hot = 0, multibit = 0;
  for (int c = 0; c < analysis::kBitClasses; ++c) {
    const auto& h = profile.by_class[static_cast<std::size_t>(c)];
    for (std::size_t bin = 0; bin < h.bins(); ++bin) {
      total += h.count(bin);
      if (h.bin_lo(bin) >= 30.0 && h.bin_lo(bin) < 40.0) {
        band_30_40 += h.count(bin);
      }
      if (c >= 1) {
        multibit += h.count(bin);
        if (h.bin_lo(bin) >= 55.0) multibit_hot += h.count(bin);
      }
    }
  }
  ASSERT_GT(total, 0u);
  // "Most errors happen when the node has a temperature between 30 and 40".
  EXPECT_GT(static_cast<double>(band_30_40), 0.6 * static_cast<double>(total));
  // Fig 8: multi-bit errors only at nominal temperatures.
  EXPECT_EQ(multibit_hot, 0u);
  EXPECT_GT(multibit, 0u);
}

TEST(PaperMethodology, SectionIIIGCorrelation) {
  const Pipeline& p = pipeline();
  const PearsonResult corr = analysis::scan_error_correlation(
      p.campaign.archive, p.extraction.faults);
  // Paper: r = -0.17966 - a *low* (anti-)correlation; the essential claim
  // is that scanning volume does not drive the error count.
  EXPECT_LT(std::abs(corr.r), 0.35);
  EXPECT_GT(corr.n, 350u);
}

TEST(PaperRegime, SectionIIIIAndFig13) {
  const Pipeline& p = pipeline();
  const analysis::AutoRegime result = analysis::classify_regime_excluding_loudest(
      p.extraction.faults, p.campaign.archive.window());

  ASSERT_TRUE(result.excluded.has_value());
  EXPECT_EQ(*result.excluded, (cluster::NodeId{2, 4}));
  // Paper: 77 degraded days = 18.1%.
  EXPECT_NEAR(result.regime.degraded_fraction(), 0.181, 0.08);
  // Paper: MTBF 167 h normal vs 0.39 h degraded - a >100x collapse.
  EXPECT_GT(result.regime.normal_mtbf_hours, 60.0);
  EXPECT_LT(result.regime.degraded_mtbf_hours, 2.0);
  EXPECT_GT(result.regime.normal_mtbf_hours,
            50.0 * result.regime.degraded_mtbf_hours);
}

TEST(PaperQuarantine, TableII) {
  const Pipeline& p = pipeline();
  const CampaignWindow& window = p.campaign.archive.window();
  resilience::QuarantineConfig base;
  base.excluded_nodes.push_back({2, 4});
  const auto sweep = resilience::quarantine_sweep(
      p.extraction.faults, window, {0, 5, 10, 15, 20, 25, 30}, base);

  // Row shapes: errors collapse after the first step, MTBF rises steeply,
  // node-days stay within a few hundred, availability loss under ~0.2%.
  EXPECT_GT(sweep[0].counted_errors, 2000u);         // paper: 4779
  EXPECT_LT(sweep[0].system_mtbf_hours, 5.0);        // paper: 2.1 h
  EXPECT_LT(sweep[1].counted_errors, sweep[0].counted_errors / 8);
  EXPECT_GT(sweep.back().system_mtbf_hours, 15.0 * sweep[0].system_mtbf_hours);
  EXPECT_LT(sweep.back().counted_errors, 400u);      // paper: 65
  EXPECT_LT(sweep.back().availability_loss, 0.002);  // paper: <0.1%
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].counted_errors, sweep[i - 1].counted_errors + 5);
  }
}

TEST(PaperSdc, SectionIIID) {
  const Pipeline& p = pipeline();
  const resilience::EccWhatIf whatif =
      resilience::ecc_what_if(p.extraction.faults);
  // "The other 9 memory errors corrupted more than 2 bits".
  EXPECT_NEAR(static_cast<double>(whatif.beyond_secded_guarantee), 9.0, 6.0);
  // SECDED corrects the single-bit mass and detects the doubles.
  EXPECT_GT(whatif.secded.corrected, 40000u);
  EXPECT_GT(whatif.secded.detected, 30u);
  EXPECT_GT(whatif.secded.silent() + whatif.secded.detected, 0u);

  // The seven >3-bit faults sit on otherwise error-free nodes.
  const auto reports = resilience::sdc_isolation_report(p.extraction.faults, 4);
  EXPECT_EQ(reports.size(), 7u);
  std::set<int> nodes;
  std::size_t exclusive = 0;
  for (const auto& r : reports) {
    // The defining property: no *ordinary* fault ever hit these nodes.
    EXPECT_EQ(r.same_node_small_faults, 0u)
        << cluster::node_name(r.fault.node);
    if (r.same_node_other_faults == 0) ++exclusive;
    nodes.insert(cluster::node_index(r.fault.node));
  }
  EXPECT_EQ(nodes.size(), 5u);   // paper: 5 different nodes
  EXPECT_EQ(exclusive, 4u);      // paper: 4 on nodes with only that one error
}

TEST(PaperNovemberBurst, Fig11) {
  const Pipeline& p = pipeline();
  const CampaignWindow& window = p.campaign.archive.window();
  int november = 0, other_months_max = 0;
  std::map<int, int> by_month;
  for (const auto& f : p.extraction.faults) {
    if (!f.is_multibit()) continue;
    const CivilDateTime c = to_civil_utc(f.first_seen);
    ++by_month[c.year * 100 + c.month];
  }
  for (const auto& [ym, count] : by_month) {
    if (ym == 201511) {
      november = count;
    } else {
      other_months_max = std::max(other_months_max, count);
    }
  }
  (void)window;
  // November's multi-bit burst rides the degrading node's peak.
  EXPECT_GT(november, 0);
  EXPECT_GE(november + 2, other_months_max);
}

}  // namespace
}  // namespace unp
