// The pluggable codes against ground truth: exhaustive guarantees per
// family, a pinned miscorrection census for 3-/4-bit upsets, agreement of
// the fixed mask classifier (ecc/outcome.hpp) with real decode, the large-
// codeword EDC fast path and its CRC-aliasing SDC window, and the registry's
// malformed-spec contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ecc/adapters.hpp"
#include "ecc/engine.hpp"
#include "ecc/large.hpp"
#include "ecc/outcome.hpp"
#include "ecc/registry.hpp"

namespace unp::ecc {
namespace {

std::vector<int> bit_positions(std::uint64_t mask) {
  std::vector<int> bits;
  for (int b = 0; b < 64; ++b)
    if ((mask >> b) & 1u) bits.push_back(b);
  return bits;
}

Verdict verdict_of(EccOutcome outcome) {
  switch (outcome) {
    case EccOutcome::kNoError:
    case EccOutcome::kCorrected: return Verdict::kCorrect;
    case EccOutcome::kDetected: return Verdict::kDetectOnly;
    case EccOutcome::kMiscorrected: return Verdict::kMiscorrect;
    case EccOutcome::kUndetected: return Verdict::kSdc;
  }
  return Verdict::kSdc;
}

ExhaustiveResult sweep(const std::string& spec, int max_weight) {
  const auto code = make_code(spec);
  EXPECT_NE(code, nullptr) << spec;
  ThreadPool pool(4);
  return evaluate_exhaustive(*code, max_weight, pool);
}

// --- per-family guarantees over every 1- and 2-bit pattern ----------------

TEST(CodesTest, EveryDefaultCodeCorrectsAllSingleBitUpsets) {
  for (const std::string& spec : default_code_specs()) {
    const auto code = make_code(spec);
    ASSERT_NE(code, nullptr) << spec;
    const CodeGeometry g = code->geometry();
    EXPECT_GE(g.guaranteed_correct, 1) << spec;
    for (int b = 0; b < g.codeword_bits; ++b) {
      const int bits[] = {b};
      ASSERT_EQ(code->evaluate(bits), Verdict::kCorrect)
          << spec << " bit " << b;
    }
    EXPECT_EQ(code->evaluate({}), Verdict::kCorrect) << spec;
  }
}

TEST(CodesTest, SecdedFamiliesDetectEveryDoubleBitUpset) {
  for (const char* spec : {"secded72", "hsiao:64/8", "hamming:64"}) {
    const ExhaustiveResult r = sweep(spec, 2);
    ASSERT_EQ(r.weights.size(), 2u) << spec;
    EXPECT_EQ(r.weights[1].counts.detect_only, r.weights[1].patterns) << spec;
    EXPECT_EQ(r.weights[1].counts.silent(), 0u) << spec;
  }
}

TEST(CodesTest, Bch2CorrectsEveryDoubleBitUpset) {
  const ExhaustiveResult r = sweep("bch:64/2", 2);
  EXPECT_EQ(r.codeword_bits, 78);
  EXPECT_EQ(r.weights[0].counts.correct, 78u);
  EXPECT_EQ(r.weights[1].counts.correct, 3003u);  // C(78,2)
  EXPECT_EQ(r.total().silent(), 0u);
}

// --- pinned miscorrection census for 3-/4-bit upsets ----------------------
//
// These exact tallies are the contract the report section, the CLI, and
// the policy cost menu quote.  A change here is a decoder change.

TEST(CodesTest, PinnedCensusSecded72) {
  const ExhaustiveResult r = sweep("secded72", 4);
  EXPECT_EQ(r.weights[2].patterns, 59640u);  // C(72,3)
  EXPECT_EQ(r.weights[2].counts.miscorrect, 34164u);
  EXPECT_EQ(r.weights[2].counts.detect_only, 25476u);
  EXPECT_EQ(r.weights[2].counts.sdc, 0u);
  EXPECT_EQ(r.weights[3].patterns, 1028790u);  // C(72,4)
  EXPECT_EQ(r.weights[3].counts.detect_only, 1020249u);
  EXPECT_EQ(r.weights[3].counts.sdc, 8541u);
  EXPECT_EQ(r.weights[3].counts.miscorrect, 0u);
}

TEST(CodesTest, HsiaoAutoSizedMatchesCanonicalSecded72Exactly) {
  // The generalized odd-weight-column construction at (64, 8) must
  // reproduce the hand-built Secded7264 H matrix outcome-for-outcome.
  const ExhaustiveResult hsiao = sweep("hsiao:64/8", 4);
  const ExhaustiveResult secded = sweep("secded72", 4);
  ASSERT_EQ(hsiao.weights.size(), secded.weights.size());
  for (std::size_t w = 0; w < hsiao.weights.size(); ++w)
    EXPECT_EQ(hsiao.weights[w], secded.weights[w]) << "weight " << (w + 1);
}

TEST(CodesTest, PinnedCensusHamming64) {
  const ExhaustiveResult r = sweep("hamming:64", 4);
  EXPECT_EQ(r.weights[2].counts.miscorrect, 45304u);
  EXPECT_EQ(r.weights[2].counts.detect_only, 14336u);
  EXPECT_EQ(r.weights[3].counts.detect_only, 1017464u);
  EXPECT_EQ(r.weights[3].counts.sdc, 11326u);
}

TEST(CodesTest, PinnedCensusBch64T2) {
  const ExhaustiveResult r = sweep("bch:64/2", 4);
  // d_min = 5: no pattern below weight 5 can reach another codeword, so
  // the census shows zero SDC; beyond t the decoder either miscorrects
  // into a radius-2 ball or fails (detected).
  EXPECT_EQ(r.weights[2].counts.miscorrect, 13450u);
  EXPECT_EQ(r.weights[2].counts.detect_only, 62626u);
  EXPECT_EQ(r.weights[2].counts.sdc, 0u);
  EXPECT_EQ(r.weights[3].counts.miscorrect, 247865u);
  EXPECT_EQ(r.weights[3].counts.detect_only, 1178560u);
  EXPECT_EQ(r.weights[3].counts.sdc, 0u);
}

// --- the fixed classifier agrees with real decode -------------------------

TEST(CodesTest, ClassifierAgreesWithRealDecodeOnAllMasksUpToWeight4) {
  const Secded7264Code secded;
  const ChipkillCode chipkill;
  ThreadPool pool(1);
  std::uint64_t checked = 0;
  for (std::uint32_t w1 = 0; w1 < 32; ++w1)
    for (std::uint32_t w2 = w1; w2 < 32; ++w2)
      for (std::uint32_t w3 = w2; w3 < 32; ++w3)
        for (std::uint32_t w4 = w3; w4 < 32; ++w4) {
          const Word mask = (Word{1} << w1) | (Word{1} << w2) |
                            (Word{1} << w3) | (Word{1} << w4);
          const std::vector<int> bits = bit_positions(mask);
          // Verdicts are data-independent for these linear codes; spot-check
          // that the classifier agrees regardless of the word it lands on.
          for (const Word expected : {Word{0}, Word{0xDEADBEEF}}) {
            const Word observed = expected ^ mask;
            ASSERT_EQ(verdict_of(secded_outcome(expected, observed)),
                      secded.evaluate(bits))
                << "secded mask 0x" << std::hex << mask;
            ASSERT_EQ(verdict_of(chipkill_outcome(expected, observed)),
                      chipkill.evaluate(bits))
                << "chipkill mask 0x" << std::hex << mask;
          }
          ++checked;
        }
  EXPECT_EQ(checked, 52360u);  // multisets of 4 positions from 32
}

TEST(CodesTest, ClassifierAgreesWithRealDecodeOnRandomHeavyMasks) {
  const Secded7264Code secded;
  const ChipkillCode chipkill;
  RngStream rng(7);
  for (int i = 0; i < 20000; ++i) {
    const int flips = 1 + static_cast<int>(rng.uniform_u64(16));
    Word mask = 0;
    for (int f = 0; f < flips; ++f)
      mask |= Word{1} << rng.uniform_u64(32);
    const std::vector<int> bits = bit_positions(mask);
    ASSERT_EQ(verdict_of(secded_outcome(0, mask)), secded.evaluate(bits));
    ASSERT_EQ(verdict_of(chipkill_outcome(0, mask)), chipkill.evaluate(bits));
  }
}

// --- large-codeword EDC-first behaviour -----------------------------------

TEST(LargeCodeTest, GeometryAndFastPath) {
  const LargeBlockCode code(512, 8);
  const CodeGeometry g = code.geometry();
  EXPECT_EQ(g.data_bits, 4096);
  EXPECT_GT(g.check_bits, LargeBlockCode::kEdcBits);
  // Data damage up to t takes the decode path and is repaired.
  EXPECT_EQ(code.evaluate(std::vector<int>{0}), Verdict::kCorrect);
  EXPECT_EQ(code.evaluate(std::vector<int>{5, 900, 4000}), Verdict::kCorrect);
  // A flipped EDC bit is itself correctable.
  EXPECT_EQ(code.evaluate(std::vector<int>{4096}), Verdict::kCorrect);
  // BCH-parity-only damage is invisible to the CRC: the fast path accepts
  // the (intact) data without running the ECC at all.
  const int parity_bit = g.data_bits + LargeBlockCode::kEdcBits;
  EXPECT_EQ(code.edc_syndrome(std::vector<int>{parity_bit}), 0u);
  EXPECT_EQ(code.evaluate(std::vector<int>{parity_bit}), Verdict::kCorrect);
}

TEST(LargeCodeTest, CrcAliasingPatternIsSilentDespiteCorrectableWeight) {
  // Lay the CRC-32 generator polynomial into the data: the EDC syndrome is
  // exactly zero, so the fast path returns the corrupted block untouched —
  // the SDC window the header documents, even though a weight-15 pattern
  // inside one block is something the t=16 BCH could have repaired.
  const LargeBlockCode code(512, 16);
  constexpr std::uint64_t kPoly = 0x104C11DB7ull;  // x^32 + CRC-32 terms
  const int base = 100;
  std::vector<int> pattern;
  for (int j = 32; j >= 0; --j)
    if ((kPoly >> j) & 1u) pattern.push_back(base - j + 32);
  ASSERT_EQ(pattern.size(), 15u);
  ASSERT_EQ(code.edc_syndrome(pattern), 0u);
  EXPECT_EQ(code.evaluate(pattern), Verdict::kSdc);
}

// --- registry contract ----------------------------------------------------

TEST(RegistryTest, DefaultSpecsAllConstruct) {
  for (const std::string& spec : default_code_specs()) {
    std::string error;
    const auto code = make_code(spec, &error);
    ASSERT_NE(code, nullptr) << spec << ": " << error;
    EXPECT_EQ(code->name(), spec);
    EXPECT_GT(code->geometry().data_bits, 0) << spec;
  }
}

TEST(RegistryTest, MalformedSpecsReturnNullWithDiagnostic) {
  for (const char* spec :
       {"", "bogus", "nosuch:64", "hamming:", "hamming:0", "hamming:abc",
        "bch:64", "bch:64/0", "bch:64/999", "hsiao:64/x", "large:777B/8",
        "large:512B/0", "secded72:1"}) {
    std::string error;
    EXPECT_EQ(make_code(spec, &error), nullptr) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    EXPECT_EQ(make_code(spec), nullptr) << spec;  // error sink optional
  }
}

}  // namespace
}  // namespace unp::ecc
