#include "ecc/secded.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "common/rng.hpp"

namespace unp::ecc {
namespace {

TEST(Secded, ColumnsAreDistinctOddWeight) {
  const Secded7264& code = Secded7264::instance();
  std::set<std::uint8_t> seen;
  for (int i = 0; i < 64; ++i) {
    const std::uint8_t col = code.data_column(i);
    EXPECT_EQ(std::popcount(static_cast<unsigned>(col)) % 2, 1);
    EXPECT_NE(std::popcount(static_cast<unsigned>(col)), 1)
        << "unit columns are reserved for check bits";
    EXPECT_TRUE(seen.insert(col).second) << "duplicate column " << int{col};
  }
}

TEST(Secded, EncodeIsLinear) {
  const Secded7264& code = Secded7264::instance();
  RngStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    EXPECT_EQ(code.encode(a ^ b),
              static_cast<std::uint8_t>(code.encode(a) ^ code.encode(b)));
  }
  EXPECT_EQ(code.encode(0), 0);
}

TEST(Secded, CleanWordDecodesClean) {
  const Secded7264& code = Secded7264::instance();
  RngStream rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t data = rng.next_u64();
    const auto res = code.decode(data, code.encode(data));
    EXPECT_EQ(res.action, Secded7264::Action::kClean);
    EXPECT_EQ(res.data, data);
  }
}

TEST(Secded, EverySingleDataBitErrorCorrected) {
  const Secded7264& code = Secded7264::instance();
  const std::uint64_t data = 0x0123456789ABCDEFULL;
  const std::uint8_t check = code.encode(data);
  for (int bit = 0; bit < 64; ++bit) {
    const auto res = code.decode(data ^ (1ULL << bit), check);
    EXPECT_EQ(res.action, Secded7264::Action::kCorrectedData);
    EXPECT_EQ(res.corrected_bit, bit);
    EXPECT_EQ(res.data, data);
  }
}

TEST(Secded, EverySingleCheckBitErrorFlagged) {
  const Secded7264& code = Secded7264::instance();
  const std::uint64_t data = 0xFEDCBA9876543210ULL;
  const std::uint8_t check = code.encode(data);
  for (int bit = 0; bit < 8; ++bit) {
    const auto res =
        code.decode(data, static_cast<std::uint8_t>(check ^ (1u << bit)));
    EXPECT_EQ(res.action, Secded7264::Action::kCorrectedCheck);
    EXPECT_EQ(res.data, data);
  }
}

TEST(Secded, EveryDoubleDataBitErrorDetected) {
  // Exhaustive over all C(64,2) = 2016 data-bit pairs: SECDED's guarantee.
  const Secded7264& code = Secded7264::instance();
  const std::uint64_t data = 0xA5A5A5A55A5A5A5AULL;
  const std::uint8_t check = code.encode(data);
  for (int i = 0; i < 64; ++i) {
    for (int j = i + 1; j < 64; ++j) {
      const std::uint64_t corrupted = data ^ (1ULL << i) ^ (1ULL << j);
      const auto res = code.decode(corrupted, check);
      EXPECT_EQ(res.action, Secded7264::Action::kDetected)
          << "bits " << i << "," << j;
    }
  }
}

TEST(Secded, DataPlusCheckDoubleErrorDetected) {
  const Secded7264& code = Secded7264::instance();
  const std::uint64_t data = 0x1122334455667788ULL;
  const std::uint8_t check = code.encode(data);
  for (int i = 0; i < 64; ++i) {
    for (int c = 0; c < 8; ++c) {
      const auto res = code.decode(data ^ (1ULL << i),
                                   static_cast<std::uint8_t>(check ^ (1u << c)));
      EXPECT_EQ(res.action, Secded7264::Action::kDetected);
    }
  }
}

TEST(Secded, TripleErrorsNeverDecodeClean) {
  const Secded7264& code = Secded7264::instance();
  RngStream rng(7);
  int miscorrected = 0, detected = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint64_t data = rng.next_u64();
    const std::uint8_t check = code.encode(data);
    std::uint64_t corrupted = data;
    int placed = 0;
    while (placed < 3) {
      const std::uint64_t bit = 1ULL << rng.uniform_u64(64);
      if ((corrupted ^ data) & bit) continue;
      corrupted ^= bit;
      ++placed;
    }
    const auto res = code.decode(corrupted, check);
    EXPECT_NE(res.action, Secded7264::Action::kClean);
    if (res.action == Secded7264::Action::kDetected) {
      ++detected;
    } else {
      ++miscorrected;
      EXPECT_NE(res.data, data);  // a "correction" that is wrong
    }
  }
  // Odd-weight syndromes of triples alias columns often: both outcomes occur.
  EXPECT_GT(miscorrected, 0);
  EXPECT_GT(detected, 0);
}

}  // namespace
}  // namespace unp::ecc
