// The evaluation drivers: combination ranking, exhaustive enumeration
// totals and thread invariance, population replay bucketing, and the
// promise that ecc's PopulationClass mirrors store::FaultClass exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ecc/engine.hpp"
#include "ecc/registry.hpp"
#include "store/format.hpp"

namespace unp::ecc {
namespace {

// --- combinatorics --------------------------------------------------------

TEST(CombinatoricsTest, BinomialValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(72, 2), 2556u);
  EXPECT_EQ(binomial(72, 4), 1028790u);
  EXPECT_EQ(binomial(78, 3), 76076u);
  EXPECT_EQ(binomial(4, 5), 0u);  // k > n
  EXPECT_EQ(binomial(60, 10), 75394027566u);
  // Saturation is conservative: it triggers when the intermediate product
  // overflows, even if the true value would fit.  Callers only ever ask
  // "is this enumerable", so UINT64_MAX is the right answer for both.
  EXPECT_EQ(binomial(64, 32), UINT64_MAX);
  EXPECT_EQ(binomial(200, 100), UINT64_MAX);
}

TEST(CombinatoricsTest, UnrankMatchesSuccessorWalk) {
  constexpr int n = 9;
  constexpr int k = 4;
  std::vector<int> combo = {0, 1, 2, 3};  // rank 0
  std::uint64_t rank = 0;
  do {
    std::vector<int> unranked(k);
    unrank_combination(rank, n, k, unranked);
    ASSERT_EQ(unranked, combo) << "rank " << rank;
    ++rank;
  } while (next_combination(combo, n));
  EXPECT_EQ(rank, binomial(n, k));
}

TEST(CombinatoricsTest, SuccessorWalkEndsAtLastCombination) {
  std::vector<int> combo = {3, 4, 5};
  EXPECT_FALSE(next_combination(combo, 6));
  combo = {0, 4, 5};
  EXPECT_TRUE(next_combination(combo, 6));
  EXPECT_EQ(combo, (std::vector<int>{1, 2, 3}));
}

// --- exhaustive enumeration ----------------------------------------------

TEST(ExhaustiveTest, TotalsAreBinomialSums) {
  const auto code = make_code("secded72");
  ThreadPool pool(2);
  const ExhaustiveResult r = evaluate_exhaustive(*code, 3, pool);
  EXPECT_EQ(r.code, "secded72");
  EXPECT_EQ(r.codeword_bits, 72);
  ASSERT_EQ(r.weights.size(), 3u);
  std::uint64_t expected_total = 0;
  for (int w = 1; w <= 3; ++w) {
    const ExhaustiveWeightResult& wr = r.weights[static_cast<std::size_t>(w - 1)];
    EXPECT_EQ(wr.weight, w);
    EXPECT_EQ(wr.patterns, binomial(72, w));
    EXPECT_EQ(wr.counts.total(), wr.patterns);  // every pattern tallied once
    expected_total += wr.patterns;
  }
  EXPECT_EQ(r.total_patterns(), expected_total);
  EXPECT_EQ(r.total().total(), expected_total);
}

TEST(ExhaustiveTest, CountsAreThreadCountInvariant) {
  for (const char* spec : {"secded72", "bch:64/2"}) {
    const auto code = make_code(spec);
    ThreadPool one(1);
    const ExhaustiveResult baseline = evaluate_exhaustive(*code, 3, one);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      ThreadPool pool(threads);
      const ExhaustiveResult r = evaluate_exhaustive(*code, 3, pool);
      ASSERT_EQ(r.weights.size(), baseline.weights.size()) << spec;
      for (std::size_t w = 0; w < r.weights.size(); ++w)
        EXPECT_EQ(r.weights[w], baseline.weights[w])
            << spec << " weight " << (w + 1) << " at " << threads
            << " threads";
    }
  }
}

// --- population replay ----------------------------------------------------

TEST(PopulationTest, ClassBoundariesMirrorStoreFaultClass) {
  // ecc is a leaf library and cannot include store, so it re-states the
  // bucketing; this is the assertion that keeps the two in lockstep.
  for (int bits = 0; bits <= 40; ++bits) {
    EXPECT_EQ(static_cast<int>(classify_population_bits(bits)),
              static_cast<int>(store::classify_bits(bits)))
        << bits << " flipped bits";
  }
}

TEST(PopulationTest, MasksLandInTheirMultiplicityBuckets) {
  const auto code = make_code("secded72");
  const std::vector<Word> masks = {
      0x1,        // single
      0x3,        // double
      0xFF,       // few (8)
      0x1FF,      // many (9)
      0x0,        // clean: skipped entirely
      0x80000000  // single again
  };
  ThreadPool pool(1);
  const PopulationResult r = evaluate_population(*code, masks, pool);
  EXPECT_EQ(r.code, "secded72");
  EXPECT_EQ(r.faults, 5u);  // zero mask skipped
  const auto at = [&](PopulationClass c) -> const VerdictCounts& {
    return r.by_class[static_cast<std::size_t>(c)];
  };
  EXPECT_EQ(at(PopulationClass::kSingleBit).total(), 2u);
  EXPECT_EQ(at(PopulationClass::kDoubleBit).total(), 1u);
  EXPECT_EQ(at(PopulationClass::kFewBit).total(), 1u);
  EXPECT_EQ(at(PopulationClass::kManyBit).total(), 1u);
  // SECDED verdicts per bucket: singles corrected, the double detected.
  EXPECT_EQ(at(PopulationClass::kSingleBit).correct, 2u);
  EXPECT_EQ(at(PopulationClass::kDoubleBit).detect_only, 1u);
  EXPECT_EQ(r.total().total(), 5u);
}

TEST(PopulationTest, SilentFractionCountsMiscorrectAndSdc) {
  PopulationResult r;
  r.faults = 8;
  r.by_class[0].correct = 5;
  r.by_class[2].miscorrect = 2;
  r.by_class[3].sdc = 1;
  EXPECT_DOUBLE_EQ(r.silent_fraction(), 3.0 / 8.0);
}

TEST(PopulationTest, ReplayIsThreadCountInvariant) {
  // Up to 8 flips: within every default code's guaranteed-or-cheap range,
  // so the full seven-code sweep over a large population stays fast.
  RngStream rng(23);
  std::vector<Word> masks(20000);
  for (auto& m : masks) {
    const int flips = static_cast<int>(rng.uniform_u64(9));  // incl. zeros
    m = 0;
    for (int f = 0; f < flips; ++f) m |= Word{1} << rng.uniform_u64(32);
  }
  for (const std::string& spec : default_code_specs()) {
    const auto code = make_code(spec);
    ThreadPool one(1);
    const PopulationResult baseline = evaluate_population(*code, masks, one);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      ThreadPool pool(threads);
      EXPECT_EQ(evaluate_population(*code, masks, pool), baseline)
          << spec << " at " << threads << " threads";
    }
  }
}

TEST(PopulationTest, ReplayIsThreadCountInvariantBeyondTheGuarantee) {
  // A small >t tail drives the expensive full-decode verdict paths (BCH
  // Berlekamp-Massey/Chien, large-codeword CRC re-check).  Kept small and
  // pointed at the m=7 and m=13 fields — the m=16 (4KB) Chien search costs
  // ~1M field ops per mask and adds nothing to the invariance argument.
  RngStream rng(29);
  std::vector<Word> masks(40);
  for (auto& m : masks) {
    const int flips = 9 + static_cast<int>(rng.uniform_u64(8));
    m = 0;
    for (int f = 0; f < flips; ++f) m |= Word{1} << rng.uniform_u64(32);
  }
  for (const char* spec : {"bch:64/2", "large:512B/8"}) {
    const auto code = make_code(spec);
    ThreadPool one(1);
    const PopulationResult baseline = evaluate_population(*code, masks, one);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      ThreadPool pool(threads);
      EXPECT_EQ(evaluate_population(*code, masks, pool), baseline)
          << spec << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace unp::ecc
