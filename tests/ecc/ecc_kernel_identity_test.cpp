// ECC member of the kernel-identity test group (alongside
// scanner_kernel_identity_test): the unp_ecc outcome tallies must be
// bit-identical no matter which store decode kernel ISA materializes the
// fault population, how many threads scan the store, and how many threads
// drive the ECC engine.  The chain under test is the exact population path
// of `unp_ecc --population --store`: store scan -> flip masks ->
// evaluate_population.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/extraction.hpp"
#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "common/simd_dispatch.hpp"
#include "common/thread_pool.hpp"
#include "ecc/engine.hpp"
#include "ecc/registry.hpp"
#include "store/builder.hpp"
#include "store/handle.hpp"
#include "store/kernels/kernels.hpp"
#include "store/query.hpp"
#include "store/reader.hpp"

namespace unp::ecc {
namespace {

constexpr TimePoint kStart = 1'440'000'000;
constexpr TimePoint kEnd = kStart + 500'000;

/// A population heavy on multi-bit corruptions so every verdict and every
/// multiplicity bucket is exercised, spread across segments so parallel
/// scans actually split the work.
store::StoreReader build_reader() {
  std::vector<analysis::FaultRecord> faults;
  Xoshiro256 rng(4242);
  for (int i = 0; i < 4000; ++i) {
    analysis::FaultRecord f;
    f.first_seen = kStart + static_cast<TimePoint>(i) * 100;
    f.last_seen = f.first_seen + 30;
    f.node = cluster::NodeId{(i / 150) % cluster::kStudyBlades,
                             static_cast<int>(rng.next() % 4)};
    f.raw_logs = 1 + rng.next() % 20;
    f.virtual_address = rng.next() % (1ull << 40);
    f.expected = static_cast<Word>(rng.next());
    Word mask = Word{1} << (rng.next() % 32);
    // Mostly <= 8 flips (cheap verdicts everywhere) with a sparse many-bit
    // tail so the expensive full-decode paths run, but don't dominate.
    const int extra = i % 50 == 0 ? 10 : static_cast<int>(rng.next() % 7);
    for (int b = 0; b < extra; ++b) mask |= Word{1} << (rng.next() % 32);
    f.actual = f.expected ^ mask;
    f.temperature_c = 25.0;
    faults.push_back(f);
  }

  store::StoreBuilder builder(store::StoreBuilder::Config{256});
  builder.set_window(CampaignWindow{kStart, kEnd});
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();
  return store::StoreReader(store::StoreHandle::from_bytes(builder.encode()));
}

std::vector<Word> masks_of(const std::vector<analysis::FaultRecord>& faults) {
  std::vector<Word> masks;
  masks.reserve(faults.size());
  for (const auto& f : faults) masks.push_back(f.flip_mask());
  return masks;
}

TEST(EccKernelIdentityTest, PopulationTalliesIdenticalAcrossKernelsAndThreads) {
  const store::StoreReader reader = build_reader();
  const auto code = make_code("secded72");

  // Baseline: scalar kernels, sequential scan, single-threaded engine.
  std::vector<PopulationResult> baseline;
  {
    store::ScanOptions scan;
    scan.kernels = &store::kernels::store_kernels_for(simd::Isa::kScalar);
    const auto faults = reader.materialize(store::Query{}, scan);
    ASSERT_EQ(faults.size(), 4000u);
    ThreadPool pool(1);
    for (const std::string& spec : default_code_specs()) {
      const auto c = make_code(spec);
      baseline.push_back(evaluate_population(*c, masks_of(faults), pool));
    }
  }

  // Cross product of kernel ISA x scan threads x engine threads, checked
  // with the two cheap canonical codes (what matters here is that every
  // execution shape hands the engine the identical mask population).
  const auto secded = make_code("secded72");
  const auto chipkill = make_code("chipkill");
  for (const simd::Isa isa : simd::supported_isas()) {
    for (const std::size_t scan_threads : {std::size_t{1}, std::size_t{2},
                                           std::size_t{8}}) {
      ThreadPool scan_pool(scan_threads);
      store::ScanOptions scan;
      scan.pool = &scan_pool;
      scan.kernels = &store::kernels::store_kernels_for(isa);
      const auto faults = reader.materialize(store::Query{}, scan);
      const std::vector<Word> masks = masks_of(faults);
      for (const std::size_t ecc_threads : {std::size_t{1}, std::size_t{2},
                                            std::size_t{8}}) {
        ThreadPool ecc_pool(ecc_threads);
        EXPECT_EQ(evaluate_population(*secded, masks, ecc_pool), baseline[0])
            << simd::to_string(isa) << " scan=" << scan_threads
            << " ecc=" << ecc_threads;
        EXPECT_EQ(evaluate_population(*chipkill, masks, ecc_pool), baseline[1])
            << simd::to_string(isa) << " scan=" << scan_threads
            << " ecc=" << ecc_threads;
      }
    }
  }

  // One full seven-code sweep at the most parallel shape with the
  // process-default kernels: the exact configuration unp_ecc runs.
  {
    ThreadPool scan_pool(8);
    store::ScanOptions scan;
    scan.pool = &scan_pool;
    const auto faults = reader.materialize(store::Query{}, scan);
    const std::vector<Word> masks = masks_of(faults);
    ThreadPool ecc_pool(8);
    for (std::size_t s = 0; s < default_code_specs().size(); ++s) {
      const auto c = make_code(default_code_specs()[s]);
      EXPECT_EQ(evaluate_population(*c, masks, ecc_pool), baseline[s])
          << default_code_specs()[s];
    }
  }
}

TEST(EccKernelIdentityTest, ExhaustiveTalliesIdenticalAcrossThreads) {
  // The exhaustive driver never touches the store, but it belongs to the
  // same identity promise the CLI makes: one tally, any execution shape.
  const auto code = make_code("hsiao:64/8");
  ThreadPool one(1);
  const ExhaustiveResult baseline = evaluate_exhaustive(*code, 3, one);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{5},
                                    std::size_t{8}}) {
    ThreadPool pool(threads);
    const ExhaustiveResult r = evaluate_exhaustive(*code, 3, pool);
    ASSERT_EQ(r.weights.size(), baseline.weights.size());
    for (std::size_t w = 0; w < r.weights.size(); ++w)
      EXPECT_EQ(r.weights[w], baseline.weights[w]) << threads << " threads";
  }
}

}  // namespace
}  // namespace unp::ecc
