#include "ecc/outcome.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/chipkill.hpp"

namespace unp::ecc {
namespace {

TEST(Chipkill, SymbolCounting) {
  EXPECT_EQ(ChipkillModel::symbols_touched(0), 0);
  EXPECT_EQ(ChipkillModel::symbols_touched(0xFULL), 1);
  EXPECT_EQ(ChipkillModel::symbols_touched(0x11ULL), 2);  // bits 0 and 4
  EXPECT_EQ(ChipkillModel::symbols_touched(0xF0F0ULL), 2);
  EXPECT_EQ(ChipkillModel::symbols_touched(~0ULL), 16);
}

TEST(Chipkill, Classification) {
  EXPECT_EQ(ChipkillModel::classify(0), ChipkillModel::Outcome::kClean);
  EXPECT_EQ(ChipkillModel::classify(0x3ULL), ChipkillModel::Outcome::kCorrected);
  EXPECT_EQ(ChipkillModel::classify(0xFULL), ChipkillModel::Outcome::kCorrected);
  EXPECT_EQ(ChipkillModel::classify(0x18ULL), ChipkillModel::Outcome::kDetected);
  EXPECT_EQ(ChipkillModel::classify(0x111ULL),
            ChipkillModel::Outcome::kUndetected);
}

TEST(Outcome, SecdedSingleBitCorrected) {
  for (int bit = 0; bit < 32; ++bit) {
    EXPECT_EQ(secded_outcome(0xFFFFFFFFu, 0xFFFFFFFFu ^ (1u << bit)),
              EccOutcome::kCorrected);
  }
}

TEST(Outcome, SecdedDoubleBitDetected) {
  // The paper's claim: every double-bit word error is detected by SECDED.
  RngStream rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const Word expected = rng.bernoulli(0.5) ? 0xFFFFFFFFu : 0x00000000u;
    const int a = static_cast<int>(rng.uniform_u64(32));
    int b = a;
    while (b == a) b = static_cast<int>(rng.uniform_u64(32));
    const Word observed = expected ^ (1u << a) ^ (1u << b);
    EXPECT_EQ(secded_outcome(expected, observed), EccOutcome::kDetected);
  }
}

TEST(Outcome, SecdedWideFaultsCanBeSilent) {
  // >2-bit faults are beyond the guarantee: at least some of Table I's
  // wide patterns decode as miscorrection or pass undetected.
  RngStream rng(13);
  int silent = 0, detected = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    Word mask = 0;
    while (std::popcount(mask) < 4) mask |= 1u << rng.uniform_u64(32);
    const EccOutcome outcome = secded_outcome(0xFFFFFFFFu, 0xFFFFFFFFu ^ mask);
    EXPECT_NE(outcome, EccOutcome::kNoError);
    EXPECT_NE(outcome, EccOutcome::kCorrected);  // correction would be wrong...
    if (is_silent(outcome)) ++silent;
    if (outcome == EccOutcome::kDetected) ++detected;
  }
  EXPECT_GT(silent, 0);
  EXPECT_GT(detected, 0);
}

TEST(Outcome, ParityDetectsOddMissesEven) {
  EXPECT_EQ(parity_outcome(0xFFFFFFFFu, 0xFFFFFFFFu), EccOutcome::kNoError);
  EXPECT_EQ(parity_outcome(0xFFFFFFFFu, 0xFFFFFFFEu), EccOutcome::kDetected);
  EXPECT_EQ(parity_outcome(0xFFFFFFFFu, 0xFFFF7BFFu), EccOutcome::kUndetected);
  EXPECT_EQ(parity_outcome(0xFFFFFFFFu, 0xFFFF73FFu), EccOutcome::kDetected);
  // Table I's 4-bit row: silent under parity.
  EXPECT_EQ(parity_outcome(0xFFFFFFFFu, 0xFC3FFFFFu), EccOutcome::kUndetected);
}

TEST(Outcome, NoErrorCase) {
  EXPECT_EQ(secded_outcome(0x1234u, 0x1234u), EccOutcome::kNoError);
  EXPECT_EQ(chipkill_outcome(0x1234u, 0x1234u), EccOutcome::kNoError);
}

TEST(Outcome, ChipkillCorrectsInSymbolClusters) {
  // A 4-bit flip inside one aligned nibble: SECDED cannot guarantee it,
  // chipkill repairs it - the related-work reliability gap.
  const Word expected = 0xFFFFFFFFu;
  const Word observed = expected ^ 0x000000F0u;
  EXPECT_EQ(chipkill_outcome(expected, observed), EccOutcome::kCorrected);
  EXPECT_NE(secded_outcome(expected, observed), EccOutcome::kCorrected);
}

TEST(Outcome, ChipkillDetectsTwoSymbols) {
  EXPECT_EQ(chipkill_outcome(0xFFFFFFFFu, 0xFFFFFFFFu ^ 0x00000101u),
            EccOutcome::kDetected);
}

TEST(Outcome, IsSilentPredicate) {
  EXPECT_TRUE(is_silent(EccOutcome::kUndetected));
  EXPECT_TRUE(is_silent(EccOutcome::kMiscorrected));
  EXPECT_FALSE(is_silent(EccOutcome::kDetected));
  EXPECT_FALSE(is_silent(EccOutcome::kCorrected));
  EXPECT_FALSE(is_silent(EccOutcome::kNoError));
}

TEST(Outcome, CountsAccumulate) {
  OutcomeCounts counts;
  counts.add(EccOutcome::kCorrected);
  counts.add(EccOutcome::kCorrected);
  counts.add(EccOutcome::kDetected);
  counts.add(EccOutcome::kUndetected);
  counts.add(EccOutcome::kMiscorrected);
  counts.add(EccOutcome::kNoError);
  EXPECT_EQ(counts.corrected, 2u);
  EXPECT_EQ(counts.detected, 1u);
  EXPECT_EQ(counts.total(), 6u);
  EXPECT_EQ(counts.silent(), 2u);
}

TEST(Outcome, ToStringNames) {
  EXPECT_STREQ(to_string(EccOutcome::kCorrected), "corrected");
  EXPECT_STREQ(to_string(EccOutcome::kUndetected), "undetected");
}

}  // namespace
}  // namespace unp::ecc
