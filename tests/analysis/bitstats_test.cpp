#include "analysis/bitstats.hpp"

#include <gtest/gtest.h>

namespace unp::analysis {
namespace {

FaultRecord fault(Word expected, Word actual, cluster::NodeId node = {1, 1},
                  std::uint64_t vaddr = 0, TimePoint t = 0) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.virtual_address = vaddr;
  f.expected = expected;
  f.actual = actual;
  return f;
}

TEST(Patterns, CensusCountsOccurrences) {
  std::vector<FaultRecord> faults{
      fault(0xFFFFFFFFu, 0xFFFF7BFFu), fault(0xFFFFFFFFu, 0xFFFF7BFFu),
      fault(0xFFFFFFFFu, 0xFFFFF3FFu), fault(0xFFFFFFFFu, 0xFFFFFFFEu)};
  const auto patterns = multibit_patterns(faults);
  ASSERT_EQ(patterns.size(), 2u);  // single-bit faults excluded
  // Sorted by (bits, occurrences): both are 2-bit; 0xFFFFF3FF occurs once.
  EXPECT_EQ(patterns[0].corrupted, 0xFFFFF3FFu);
  EXPECT_EQ(patterns[0].occurrences, 1u);
  EXPECT_TRUE(patterns[0].consecutive);  // bits 10, 11
  EXPECT_EQ(patterns[1].corrupted, 0xFFFF7BFFu);
  EXPECT_EQ(patterns[1].occurrences, 2u);
  EXPECT_FALSE(patterns[1].consecutive);  // bits 10, 15
}

TEST(Patterns, TableOrdering) {
  std::vector<FaultRecord> faults{
      fault(0xFFFFFFFFu, 0xFFFFFF00u),   // 8 bits
      fault(0xFFFFFFFFu, 0xFFFF7BFFu),   // 2 bits
      fault(0x00000058u, 0xE6006358u)};  // 9 bits (Table I's widest)
  const auto patterns = multibit_patterns(faults);
  ASSERT_EQ(patterns.size(), 3u);
  EXPECT_EQ(patterns[0].bits, 2);
  EXPECT_EQ(patterns[1].bits, 8);
  EXPECT_EQ(patterns[2].bits, 9);
}

TEST(Direction, CountsPerBit) {
  std::vector<FaultRecord> faults{
      fault(0xFFFFFFFFu, 0xFFFF7BFFu),   // two 1->0
      fault(0x000003C1u, 0x000003C2u)};  // one 1->0, one 0->1 (Table I row)
  const DirectionStats stats = direction_stats(faults);
  EXPECT_EQ(stats.one_to_zero, 3u);
  EXPECT_EQ(stats.zero_to_one, 1u);
  EXPECT_DOUBLE_EQ(stats.one_to_zero_fraction(), 0.75);
}

TEST(Direction, EmptyPopulation) {
  EXPECT_DOUBLE_EQ(direction_stats({}).one_to_zero_fraction(), 0.0);
}

TEST(Adjacency, StatsOverMixedPopulation) {
  std::vector<FaultRecord> faults{
      fault(0xFFFFFFFFu, 0xFFFFFFFEu),  // single-bit: excluded
      fault(0xFFFFFFFFu, 0xFFFFF3FFu),  // bits 10-11: consecutive, gap 1
      fault(0xFFFFFFFFu, 0xFFFF7BFFu),  // bits 10,15: gap 5
      fault(0xFFFFFFFFu, 0xFFFFEEFFu)}; // bits 8,12: gap 4
  const AdjacencyStats stats = adjacency_stats(faults);
  EXPECT_EQ(stats.multibit_faults, 3u);
  EXPECT_EQ(stats.consecutive, 1u);
  EXPECT_EQ(stats.non_adjacent, 2u);
  EXPECT_NEAR(stats.mean_distance, (1.0 + 5.0 + 4.0) / 3.0, 1e-12);
  EXPECT_EQ(stats.max_distance, 5);
  EXPECT_EQ(stats.low_half_majority, 3u);  // all masks in bits 0..15
}

TEST(NodeProfile, WeakBitSignature) {
  // The 04-05 / 58-02 signature: many faults, one address, one fixed bit.
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 100; ++i) {
    faults.push_back(fault(0xFFFFFFFFu, 0xFFFFFDFFu, {4, 5}, 4096,
                           1000 + i * 1000));
  }
  faults.push_back(fault(0xFFFFFFFFu, 0xFFFFFFFEu, {9, 9}, 64, 5));
  const NodePatternProfile profile = node_pattern_profile(faults, {4, 5});
  EXPECT_EQ(profile.faults, 100u);
  EXPECT_EQ(profile.distinct_addresses, 1u);
  EXPECT_EQ(profile.distinct_patterns, 1u);
  EXPECT_TRUE(profile.single_fixed_bit);
}

TEST(NodeProfile, DegradingSignature) {
  // Many addresses, a pool of patterns, not single-fixed-bit.
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 60; ++i) {
    faults.push_back(fault(0xFFFFFFFFu, 0xFFFFFFFFu ^ (1u << (i % 5)), {2, 4},
                           static_cast<std::uint64_t>(i) * 64, 1000 + i));
  }
  const NodePatternProfile profile = node_pattern_profile(faults, {2, 4});
  EXPECT_EQ(profile.faults, 60u);
  EXPECT_EQ(profile.distinct_addresses, 60u);
  EXPECT_EQ(profile.distinct_patterns, 5u);
  EXPECT_FALSE(profile.single_fixed_bit);
}

TEST(NodeProfile, AbsentNodeIsEmpty) {
  const NodePatternProfile profile = node_pattern_profile({}, {1, 1});
  EXPECT_EQ(profile.faults, 0u);
  EXPECT_FALSE(profile.single_fixed_bit);
}

}  // namespace
}  // namespace unp::analysis
