// The fault-analysis engine's acceptance property: every incremental
// analyzer is bit-identical to its batch counterpart on the full seed-42
// campaign, and the run_fault_sinks fan-out is invariant to thread count.
#include "analysis/fault_sink.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/alignment.hpp"
#include "analysis/bitstats.hpp"
#include "analysis/grouping.hpp"
#include "analysis/interarrival.hpp"
#include "analysis/markov.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "cluster/topology.hpp"
#include "common/thread_pool.hpp"
#include "dram/address_map.hpp"
#include "sim/campaign.hpp"
#include "telemetry/sink.hpp"

namespace unp::analysis {
namespace {

const ExtractionResult& default_extraction() {
  static const ExtractionResult result =
      extract_faults(sim::default_campaign().archive);
  return result;
}

FaultView default_faults() { return default_extraction().faults; }

const CampaignWindow& default_window() {
  return sim::default_campaign().archive.window();
}

void expect_grid_eq(const Grid2D& streamed, const Grid2D& batch) {
  ASSERT_EQ(streamed.rows(), batch.rows());
  ASSERT_EQ(streamed.cols(), batch.cols());
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    for (std::size_t c = 0; c < batch.cols(); ++c) {
      EXPECT_EQ(streamed.at(r, c), batch.at(r, c)) << "cell " << r << "," << c;
    }
  }
}

void expect_temperature_eq(const TemperatureProfile& streamed,
                           const TemperatureProfile& batch) {
  EXPECT_EQ(streamed.without_reading, batch.without_reading);
  ASSERT_EQ(streamed.by_class.size(), batch.by_class.size());
  for (std::size_t k = 0; k < batch.by_class.size(); ++k) {
    const Histogram1D& s = streamed.by_class[k];
    const Histogram1D& b = batch.by_class[k];
    ASSERT_EQ(s.bins(), b.bins());
    EXPECT_EQ(s.underflow(), b.underflow());
    EXPECT_EQ(s.overflow(), b.overflow());
    for (std::size_t bin = 0; bin < b.bins(); ++bin) {
      EXPECT_EQ(s.count(bin), b.count(bin)) << "class " << k << " bin " << bin;
    }
  }
}

void expect_top_nodes_eq(const TopNodeSeries& streamed,
                         const TopNodeSeries& batch) {
  EXPECT_EQ(streamed.nodes, batch.nodes);
  EXPECT_EQ(streamed.node_totals, batch.node_totals);
  EXPECT_EQ(streamed.per_day, batch.per_day);
  EXPECT_EQ(streamed.rest_per_day, batch.rest_per_day);
  EXPECT_EQ(streamed.rest_total, batch.rest_total);
}

void expect_regime_eq(const AutoRegime& streamed, const AutoRegime& batch) {
  EXPECT_EQ(streamed.excluded, batch.excluded);
  EXPECT_EQ(streamed.regime.degraded, batch.regime.degraded);
  EXPECT_EQ(streamed.regime.errors_per_day, batch.regime.errors_per_day);
  EXPECT_EQ(streamed.regime.normal_days, batch.regime.normal_days);
  EXPECT_EQ(streamed.regime.degraded_days, batch.regime.degraded_days);
  EXPECT_EQ(streamed.regime.normal_errors, batch.regime.normal_errors);
  EXPECT_EQ(streamed.regime.degraded_errors, batch.regime.degraded_errors);
  EXPECT_EQ(streamed.regime.normal_mtbf_hours, batch.regime.normal_mtbf_hours);
  EXPECT_EQ(streamed.regime.degraded_mtbf_hours,
            batch.regime.degraded_mtbf_hours);
}

void expect_groups_eq(const std::vector<SimultaneousGroup>& streamed,
                      const std::vector<SimultaneousGroup>& batch) {
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t g = 0; g < batch.size(); ++g) {
    EXPECT_EQ(streamed[g].node, batch[g].node) << "group " << g;
    EXPECT_EQ(streamed[g].time, batch[g].time) << "group " << g;
    ASSERT_EQ(streamed[g].members.size(), batch[g].members.size())
        << "group " << g;
    for (std::size_t m = 0; m < batch[g].members.size(); ++m) {
      // Both analyses ran over the same FaultView, so matching members are
      // the same FaultRecord objects.
      EXPECT_EQ(streamed[g].members[m], batch[g].members[m])
          << "group " << g << " member " << m;
    }
  }
}

// The full analyzer fleet the unified report driver fans out, plus the
// shared address map the alignment analyzer projects through.
struct Fleet {
  ErrorsGridAnalyzer errors_grid;
  MultibitPatternAnalyzer patterns;
  AdjacencyAnalyzer adjacency;
  DirectionAnalyzer direction;
  SimultaneousGroupAnalyzer grouping;
  HourOfDayAnalyzer hourly;
  TemperatureAnalyzer temperature;
  DailyErrorsAnalyzer daily;
  TopNodeAnalyzer top_nodes;
  NodePatternCensus node_patterns;
  RegimeAnalyzer regime;
  InterArrivalAnalyzer interarrival;
  RegimeDynamicsAnalyzer dynamics;
  dram::AddressMap map{dram::default_geometry()};
  AlignmentAnalyzer alignment{map};

  std::vector<FaultSink*> sinks() {
    return {&errors_grid, &patterns,     &adjacency, &direction,
            &grouping,    &hourly,       &temperature, &daily,
            &top_nodes,   &node_patterns, &regime,    &interarrival,
            &dynamics,    &alignment};
  }
};

void run_fleet(Fleet& fleet, ThreadPool* pool) {
  const std::vector<FaultSink*> sinks = fleet.sinks();
  const std::vector<FaultSinkTiming> timings =
      run_fault_sinks(default_faults(), {default_window()}, sinks, pool);
  ASSERT_EQ(timings.size(), sinks.size());
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    EXPECT_EQ(timings[i].sink, sinks[i]);
    EXPECT_GE(timings[i].milliseconds, 0.0);
  }
}

void expect_fleet_matches_batch(Fleet& fleet) {
  const FaultView faults = default_faults();
  const CampaignWindow& window = default_window();

  expect_grid_eq(fleet.errors_grid.grid(), errors_grid(faults));
  EXPECT_EQ(fleet.patterns.patterns(), multibit_patterns(faults));
  EXPECT_EQ(fleet.adjacency.stats(), adjacency_stats(faults));
  EXPECT_EQ(fleet.direction.stats(), direction_stats(faults));
  expect_groups_eq(fleet.grouping.groups(), group_simultaneous(faults));
  EXPECT_EQ(fleet.hourly.profile().counts, hour_of_day_profile(faults).counts);
  expect_temperature_eq(fleet.temperature.profile(),
                        temperature_profile(faults));
  EXPECT_EQ(fleet.daily.series(), daily_errors(faults, window));

  const TopNodeSeries batch_top = top_node_series(faults, window);
  expect_top_nodes_eq(fleet.top_nodes.series(), batch_top);
  for (const auto& node : batch_top.nodes) {
    EXPECT_EQ(fleet.node_patterns.profile(node),
              node_pattern_profile(faults, node));
  }

  const AutoRegime batch_regime =
      classify_regime_excluding_loudest(faults, window);
  expect_regime_eq(fleet.regime.result(), batch_regime);

  std::vector<cluster::NodeId> excluded;
  if (batch_regime.excluded) excluded.push_back(*batch_regime.excluded);
  EXPECT_EQ(fleet.interarrival.stats(), interarrival_stats(faults, excluded));
  EXPECT_EQ(fleet.interarrival.excluded(), batch_regime.excluded);

  const std::vector<bool> days(
      batch_regime.regime.degraded.begin(),
      batch_regime.regime.degraded.begin() +
          static_cast<std::ptrdiff_t>(window.duration_days()));
  const MarkovRegimeModel batch_model = fit_markov_regime(days);
  EXPECT_EQ(fleet.dynamics.days(), days);
  EXPECT_EQ(fleet.dynamics.model().p_stay_normal, batch_model.p_stay_normal);
  EXPECT_EQ(fleet.dynamics.model().p_stay_degraded, batch_model.p_stay_degraded);
  EXPECT_EQ(fleet.dynamics.model().transitions_observed,
            batch_model.transitions_observed);
  const SpellStats batch_spells = spell_stats(days);
  EXPECT_EQ(fleet.dynamics.spells().mean_normal_spell,
            batch_spells.mean_normal_spell);
  EXPECT_EQ(fleet.dynamics.spells().mean_degraded_spell,
            batch_spells.mean_degraded_spell);
  EXPECT_EQ(fleet.dynamics.spells().normal_spells, batch_spells.normal_spells);
  EXPECT_EQ(fleet.dynamics.spells().degraded_spells,
            batch_spells.degraded_spells);
  EXPECT_EQ(fleet.dynamics.spells().longest_degraded_spell,
            batch_spells.longest_degraded_spell);

  const std::vector<SimultaneousGroup> batch_groups = group_simultaneous(faults);
  const AlignmentStats batch_alignment =
      physical_alignment_stats(batch_groups, fleet.map);
  EXPECT_EQ(fleet.alignment.stats().groups_examined,
            batch_alignment.groups_examined);
  EXPECT_EQ(fleet.alignment.stats().same_row, batch_alignment.same_row);
  EXPECT_EQ(fleet.alignment.stats().same_column, batch_alignment.same_column);
  EXPECT_EQ(fleet.alignment.stats().same_bank, batch_alignment.same_bank);
  EXPECT_EQ(fleet.alignment.stats().scattered, batch_alignment.scattered);
  EXPECT_EQ(fleet.alignment.stats().with_aligned_pair,
            batch_alignment.with_aligned_pair);
  const LogicalSpread batch_spread = logical_spread(batch_groups);
  EXPECT_EQ(fleet.alignment.spread().mean_span_bytes,
            batch_spread.mean_span_bytes);
  EXPECT_EQ(fleet.alignment.spread().max_span_bytes,
            batch_spread.max_span_bytes);
}

// The acceptance property: every streaming analyzer reproduces its batch
// counterpart bit-for-bit over the full seed-42 campaign.
TEST(FaultSink, EveryAnalyzerMatchesItsBatchCounterpart) {
  ASSERT_GT(default_faults().size(), 10000u);
  Fleet fleet;
  run_fleet(fleet, nullptr);
  expect_fleet_matches_batch(fleet);
}

// One task per sink over a stable view: products must not depend on the
// pool's thread count.
TEST(FaultSink, ProductsInvariantAcrossThreadCounts) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ThreadPool pool(threads);
    Fleet fleet;
    run_fleet(fleet, &pool);
    expect_fleet_matches_batch(fleet);
  }
}

// The record-level sink: scan totals, grids and the daily series from a
// framed replay must equal the archive-based batch metrics.
TEST(FaultSink, ScanProfileSinkMatchesArchiveMetrics) {
  const sim::CampaignResult& campaign = sim::default_campaign();

  ScanProfileSink scan;
  scan.begin_campaign(campaign.archive.window());
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    scan.begin_node(node);
    telemetry::replay_node_log(campaign.archive.log(node), scan);
    scan.end_node(node);
  }
  scan.end_campaign();

  expect_grid_eq(scan.hours_grid(), hours_scanned_grid(campaign.archive));
  expect_grid_eq(scan.terabyte_hours_grid(),
                 terabyte_hours_grid(campaign.archive));
  EXPECT_EQ(scan.daily_terabyte_hours(),
            daily_terabyte_hours(campaign.archive));

  const HeadlineStats batch = headline_stats(campaign.archive,
                                             default_extraction());
  const HeadlineStats streamed = headline_stats(
      scan.total_monitored_hours(), scan.total_terabyte_hours(),
      scan.monitored_nodes(), scan.window(), default_extraction());
  EXPECT_EQ(streamed.raw_logs, batch.raw_logs);
  EXPECT_EQ(streamed.removed_fraction, batch.removed_fraction);
  EXPECT_EQ(streamed.independent_faults, batch.independent_faults);
  EXPECT_EQ(streamed.monitored_node_hours, batch.monitored_node_hours);
  EXPECT_EQ(streamed.terabyte_hours, batch.terabyte_hours);
  EXPECT_EQ(streamed.monitored_nodes, batch.monitored_nodes);
  EXPECT_EQ(streamed.node_mtbf_hours, batch.node_mtbf_hours);
  EXPECT_EQ(streamed.cluster_mtbe_minutes, batch.cluster_mtbe_minutes);
}

// Sinks with default framing handle an empty stream without touching a
// single fault.
TEST(FaultSink, EmptyStreamYieldsEmptyProducts) {
  Fleet fleet;
  const std::vector<FaultSink*> sinks = fleet.sinks();
  const std::vector<FaultSinkTiming> timings =
      run_fault_sinks({}, {default_window()}, sinks, nullptr);
  EXPECT_EQ(timings.size(), sinks.size());
  EXPECT_TRUE(fleet.patterns.patterns().empty());
  EXPECT_TRUE(fleet.grouping.groups().empty());
  EXPECT_EQ(fleet.interarrival.stats().gaps, 0u);
  EXPECT_EQ(fleet.top_nodes.series().rest_total, 0u);
}

}  // namespace
}  // namespace unp::analysis
