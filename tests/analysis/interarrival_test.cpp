#include "analysis/interarrival.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace unp::analysis {
namespace {

FaultRecord fault(cluster::NodeId node, TimePoint t) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.expected = 0xFFFFFFFFu;
  f.actual = 0xFFFFFFFEu;
  return f;
}

TEST(InterArrival, RegularGapsHaveZeroCv) {
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 100; ++i) faults.push_back(fault({1, 1}, 1000 + i * 600));
  const InterArrivalStats stats = interarrival_stats(faults);
  EXPECT_EQ(stats.gaps, 99u);
  EXPECT_DOUBLE_EQ(stats.mean_s, 600.0);
  EXPECT_DOUBLE_EQ(stats.median_s, 600.0);
  EXPECT_NEAR(stats.cv, 0.0, 1e-9);
  EXPECT_NEAR(stats.burstiness(), -1.0, 1e-9);  // sub-Poisson regularity
  EXPECT_DOUBLE_EQ(stats.within_minute, 0.0);
  EXPECT_DOUBLE_EQ(stats.within_hour, 1.0);
}

TEST(InterArrival, BurstsInflateCv) {
  // Ten bursts of 20 errors a second apart, bursts a week apart.
  std::vector<FaultRecord> faults;
  for (int burst = 0; burst < 10; ++burst) {
    const TimePoint base = burst * 7 * kSecondsPerDay;
    for (int i = 0; i < 20; ++i) faults.push_back(fault({1, 1}, base + i));
  }
  const InterArrivalStats stats = interarrival_stats(faults);
  EXPECT_GT(stats.cv, 3.0);
  EXPECT_GT(stats.burstiness(), 0.5);
  EXPECT_GT(stats.within_minute, 0.9);
  EXPECT_DOUBLE_EQ(stats.median_s, 1.0);
}

TEST(InterArrival, ExclusionRemovesNode) {
  std::vector<FaultRecord> faults{fault({1, 1}, 0), fault({2, 4}, 100),
                                  fault({1, 1}, 200)};
  const InterArrivalStats all = interarrival_stats(faults);
  const InterArrivalStats filtered = interarrival_stats(faults, {{2, 4}});
  EXPECT_EQ(all.gaps, 2u);
  EXPECT_EQ(filtered.gaps, 1u);
  EXPECT_DOUBLE_EQ(filtered.mean_s, 200.0);
}

TEST(InterArrival, UnsortedInputHandled) {
  std::vector<FaultRecord> faults{fault({1, 1}, 500), fault({1, 1}, 100),
                                  fault({1, 1}, 300)};
  const InterArrivalStats stats = interarrival_stats(faults);
  EXPECT_DOUBLE_EQ(stats.mean_s, 200.0);
}

TEST(InterArrival, DegenerateInputs) {
  EXPECT_EQ(interarrival_stats({}).gaps, 0u);
  const std::vector<FaultRecord> single{fault({1, 1}, 5)};
  EXPECT_EQ(interarrival_stats(single).gaps, 0u);
}

TEST(InterArrival, PoissonReferenceHasUnitCv) {
  const InterArrivalStats stats =
      poisson_reference(50000, 365 * kSecondsPerDay, 3);
  EXPECT_EQ(stats.gaps, 49999u);
  EXPECT_NEAR(stats.cv, 1.0, 0.05);
  EXPECT_NEAR(stats.burstiness(), 0.0, 0.05);
  // Exponential: median = mean * ln 2.
  EXPECT_NEAR(stats.median_s / stats.mean_s, std::log(2.0), 0.05);
}

}  // namespace
}  // namespace unp::analysis
