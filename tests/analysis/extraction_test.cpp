#include "analysis/extraction.hpp"

#include <gtest/gtest.h>

namespace unp::analysis {
namespace {

telemetry::ErrorRecord make_error(TimePoint t, std::uint64_t vaddr,
                                  Word expected = 0xFFFFFFFFu,
                                  Word actual = 0xFFFFFFFEu) {
  telemetry::ErrorRecord r;
  r.time = t;
  r.node = {3, 3};
  r.virtual_address = vaddr;
  r.expected = expected;
  r.actual = actual;
  return r;
}

TEST(Collapse, SingleLogIsOneFault) {
  telemetry::NodeLog log;
  log.add_error(make_error(1000, 64));
  const auto faults = collapse_node_log({3, 3}, log, 300);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].raw_logs, 1u);
  EXPECT_EQ(faults[0].first_seen, 1000);
  EXPECT_EQ(faults[0].flipped_bits(), 1);
}

TEST(Collapse, RunCollapsesToOneFault) {
  // The paper: thousands of consecutive iterations -> one memory error.
  telemetry::NodeLog log;
  log.add_error_run({make_error(1000, 64), 150, 5000});
  const auto faults = collapse_node_log({3, 3}, log, 300);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].raw_logs, 5000u);
  EXPECT_EQ(faults[0].first_seen, 1000);
  EXPECT_EQ(faults[0].last_seen, 1000 + 150 * 4999);
}

TEST(Collapse, NearbyLogsSameAddressMerge) {
  telemetry::NodeLog log;
  log.add_error(make_error(1000, 64));
  log.add_error(make_error(1200, 64));  // 200 s later, within the window
  const auto faults = collapse_node_log({3, 3}, log, 300);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].raw_logs, 2u);
}

TEST(Collapse, DistantLogsSameAddressStaySeparate) {
  // A clean stretch longer than the window: the weak bit leaked twice.
  telemetry::NodeLog log;
  log.add_error(make_error(1000, 64));
  log.add_error(make_error(10000, 64));
  const auto faults = collapse_node_log({3, 3}, log, 300);
  EXPECT_EQ(faults.size(), 2u);
}

TEST(Collapse, DifferentAddressesNeverMerge) {
  telemetry::NodeLog log;
  log.add_error(make_error(1000, 64));
  log.add_error(make_error(1001, 128));
  const auto faults = collapse_node_log({3, 3}, log, 300);
  EXPECT_EQ(faults.size(), 2u);
}

TEST(Collapse, ChainOfRunsMerges) {
  // Two-phase stuck fault: interleaved runs at the same address fuse.
  telemetry::NodeLog log;
  log.add_error_run({make_error(1000, 64, 0xFFFFFFFFu, 0xFFFFFFFEu), 200, 10});
  log.add_error_run({make_error(1100, 64, 0x00000000u, 0x00000002u), 200, 10});
  const auto faults = collapse_node_log({3, 3}, log, 300);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].raw_logs, 20u);
  // Representative context is the first observation.
  EXPECT_EQ(faults[0].expected, 0xFFFFFFFFu);
}

TEST(Collapse, OutputSortedByTime) {
  telemetry::NodeLog log;
  log.add_error(make_error(5000, 64));
  log.add_error(make_error(1000, 128));
  log.add_error(make_error(3000, 256));
  const auto faults = collapse_node_log({3, 3}, log, 300);
  ASSERT_EQ(faults.size(), 3u);
  EXPECT_LT(faults[0].first_seen, faults[1].first_seen);
  EXPECT_LT(faults[1].first_seen, faults[2].first_seen);
}

TEST(Collapse, SplitInvariance) {
  // Property: representing the same raw stream as one run or as many
  // adjacent runs must extract identical faults.
  telemetry::NodeLog one;
  one.add_error_run({make_error(1000, 64), 100, 30});
  telemetry::NodeLog split;
  split.add_error_run({make_error(1000, 64), 100, 10});
  split.add_error_run({make_error(2000, 64), 100, 10});
  split.add_error_run({make_error(3000, 64), 100, 10});
  const auto a = collapse_node_log({3, 3}, one, 300);
  const auto b = collapse_node_log({3, 3}, split, 300);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].raw_logs, b[0].raw_logs);
  EXPECT_EQ(a[0].first_seen, b[0].first_seen);
  EXPECT_EQ(a[0].last_seen, b[0].last_seen);
}

TEST(Extract, PathologicalNodeFiltered) {
  telemetry::CampaignArchive archive;
  // A node drowning the campaign in raw logs...
  telemetry::ErrorRecord bad = make_error(1000, 64);
  bad.node = {9, 9};
  archive.log({9, 9}).add_error_run({bad, 150, 2000000});
  // ...and a normal node with two real faults.
  telemetry::ErrorRecord ok = make_error(2000, 64);
  ok.node = {1, 1};
  archive.log({1, 1}).add_error(ok);
  ok.time = 100000;
  archive.log({1, 1}).add_error(ok);

  const ExtractionResult result = extract_faults(archive);
  ASSERT_EQ(result.removed_nodes.size(), 1u);
  EXPECT_EQ(result.removed_nodes[0], (cluster::NodeId{9, 9}));
  EXPECT_GT(result.removed_fraction(), 0.99);
  EXPECT_EQ(result.faults.size(), 2u);
  EXPECT_EQ(result.total_raw_logs, 2000002u);
  EXPECT_EQ(result.removed_raw_logs, 2000000u);
}

TEST(Extract, SmallNoisyNodeKept) {
  // Below the absolute threshold a node is loud but not pathological.
  telemetry::CampaignArchive archive;
  telemetry::ErrorRecord r = make_error(1000, 64);
  r.node = {9, 9};
  archive.log({9, 9}).add_error_run({r, 150, 5000});
  const ExtractionResult result = extract_faults(archive);
  EXPECT_TRUE(result.removed_nodes.empty());
  EXPECT_EQ(result.faults.size(), 1u);
}

TEST(Extract, FaultRecordDerivedFields) {
  FaultRecord f;
  f.expected = 0xFFFFFFFFu;
  f.actual = 0xFFFF7BFFu;
  EXPECT_EQ(f.flip_mask(), 0x00008400u);
  EXPECT_EQ(f.flipped_bits(), 2);
  EXPECT_TRUE(f.is_multibit());
}

}  // namespace
}  // namespace unp::analysis
