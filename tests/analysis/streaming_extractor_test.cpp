// StreamingExtractor must be bit-identical to the batch extract_faults -
// the property that licenses running analyses without a resident archive.
#include "analysis/streaming_extractor.hpp"

#include <gtest/gtest.h>

#include "analysis/extraction.hpp"
#include "sim/campaign.hpp"
#include "telemetry/sink.hpp"

namespace unp::analysis {
namespace {

void stream_archive(const telemetry::CampaignArchive& archive,
                    telemetry::RecordSink& sink) {
  sink.begin_campaign(archive.window());
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    sink.begin_node(node);
    telemetry::replay_node_log(archive.log(node), sink);
    sink.end_node(node);
  }
  sink.end_campaign();
}

void expect_identical(const ExtractionResult& streamed,
                      const ExtractionResult& batch) {
  EXPECT_EQ(streamed.total_raw_logs, batch.total_raw_logs);
  EXPECT_EQ(streamed.removed_raw_logs, batch.removed_raw_logs);
  ASSERT_EQ(streamed.removed_nodes.size(), batch.removed_nodes.size());
  for (std::size_t i = 0; i < batch.removed_nodes.size(); ++i) {
    EXPECT_EQ(streamed.removed_nodes[i], batch.removed_nodes[i]);
  }
  ASSERT_EQ(streamed.faults.size(), batch.faults.size());
  for (std::size_t i = 0; i < batch.faults.size(); ++i) {
    ASSERT_EQ(streamed.faults[i], batch.faults[i]) << "fault " << i;
  }
}

// The acceptance property: bit-identical output on the full seed-42
// default campaign, pathological node filter included.
TEST(StreamingExtractor, BitIdenticalToBatchOnDefaultCampaign) {
  const sim::CampaignResult& campaign = sim::default_campaign();
  const ExtractionResult batch = extract_faults(campaign.archive);

  StreamingExtractor extractor;
  stream_archive(campaign.archive, extractor);
  const ExtractionResult streamed = extractor.finish();

  EXPECT_FALSE(batch.removed_nodes.empty());  // the filter actually fired
  EXPECT_GT(batch.faults.size(), 10000u);
  expect_identical(streamed, batch);
}

// Same property fed directly from the simulator's sink emission (no
// archive replay in between), alongside an archive sink, on a short
// campaign with a non-default extraction config.
TEST(StreamingExtractor, MatchesBatchWhenFedByCampaignStream) {
  sim::CampaignConfig config;
  config.seed = 9;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 9, 21, 0, 0, 0});

  ExtractionConfig extraction_config;
  extraction_config.merge_window_s = 120;

  telemetry::CampaignArchive archive;
  StreamingExtractor extractor(extraction_config);
  (void)sim::run_campaign_streaming(config, {&archive, &extractor}, 2);

  expect_identical(extractor.finish(), extract_faults(archive, extraction_config));
}

TEST(StreamingExtractor, CountsSessionsAndRawErrors) {
  const sim::CampaignResult& campaign = sim::default_campaign();
  StreamingExtractor extractor;
  stream_archive(campaign.archive, extractor);
  EXPECT_EQ(extractor.raw_errors_seen(), campaign.archive.total_raw_errors());
  std::uint64_t starts = 0;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    starts += campaign.archive.log(cluster::node_from_index(i)).starts().size();
  }
  EXPECT_EQ(extractor.sessions_seen(), starts);
}

TEST(StreamingExtractor, EmptyStreamYieldsEmptyResult) {
  StreamingExtractor extractor;
  const ExtractionResult result = extractor.finish();
  EXPECT_TRUE(result.faults.empty());
  EXPECT_TRUE(result.removed_nodes.empty());
  EXPECT_EQ(result.total_raw_logs, 0u);
}

}  // namespace
}  // namespace unp::analysis
