// The sink-state algebra (FaultSink::serialize_state / merge_state): for
// every analyzer, partitioning the fault stream by node, serializing the
// per-partition accumulators and merging the blobs yields a state
// byte-identical to the monolithic pass — for any partition count — and the
// finalized products match the monolithic products exactly.
#include "analysis/fault_sink.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/alignment.hpp"
#include "analysis/bitstats.hpp"
#include "analysis/grouping.hpp"
#include "analysis/interarrival.hpp"
#include "analysis/markov.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "cluster/topology.hpp"
#include "common/require.hpp"
#include "dram/address_map.hpp"
#include "sim/campaign.hpp"

namespace unp::analysis {
namespace {

sim::CampaignConfig short_config() {
  sim::CampaignConfig config;
  config.seed = 7;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 9, 15, 0, 0, 0});
  return config;
}

const sim::CampaignResult& campaign() {
  static const sim::CampaignResult result = sim::run_campaign(short_config());
  return result;
}

const ExtractionResult& extraction() {
  static const ExtractionResult result = extract_faults(campaign().archive);
  return result;
}

FaultStreamContext context() { return {campaign().archive.window()}; }

/// Every mergeable analyzer, in one fixed order (mirrors the report fleet).
struct Fleet {
  ErrorsGridAnalyzer errors_grid;
  MultibitPatternAnalyzer patterns;
  AdjacencyAnalyzer adjacency;
  DirectionAnalyzer direction;
  SimultaneousGroupAnalyzer grouping;
  HourOfDayAnalyzer hourly;
  TemperatureAnalyzer temperature;
  DailyErrorsAnalyzer daily;
  TopNodeAnalyzer top_nodes;
  NodePatternCensus node_patterns;
  RegimeAnalyzer regime;
  InterArrivalAnalyzer interarrival;
  RegimeDynamicsAnalyzer dynamics;
  dram::AddressMap map{dram::default_geometry()};
  AlignmentAnalyzer alignment{map};

  std::vector<FaultSink*> sinks() {
    return {&errors_grid, &patterns,      &adjacency, &direction,
            &grouping,    &hourly,        &temperature, &daily,
            &top_nodes,   &node_patterns, &regime,    &interarrival,
            &dynamics,    &alignment};
  }
};

const std::vector<const char*>& sink_names() {
  static const std::vector<const char*> names = {
      "errors_grid", "patterns",      "adjacency", "direction",
      "grouping",    "hourly",        "temperature", "daily",
      "top_nodes",   "node_patterns", "regime",    "interarrival",
      "dynamics",    "alignment"};
  return names;
}

void begin_all(Fleet& fleet) {
  for (FaultSink* sink : fleet.sinks()) sink->begin_faults(context());
}

void feed(Fleet& fleet, int parts, int part) {
  const std::vector<FaultSink*> sinks = fleet.sinks();
  for (const FaultRecord& fault : extraction().faults) {
    if (cluster::node_index(fault.node) % parts != part) continue;
    for (FaultSink* sink : sinks) sink->on_fault(fault);
  }
}

std::vector<std::string> serialize_all(Fleet& fleet) {
  std::vector<std::string> blobs;
  for (FaultSink* sink : fleet.sinks()) blobs.push_back(sink->serialize_state());
  return blobs;
}

// The invariance property: merged partial states serialize to the exact
// bytes of the monolithic state, for K in {1, 2, 8}.
TEST(SinkState, MergedStateBytesInvariantAcrossPartitionCounts) {
  ASSERT_GT(extraction().faults.size(), 100u);

  Fleet mono;
  begin_all(mono);
  feed(mono, 1, 0);
  const std::vector<std::string> mono_blobs = serialize_all(mono);

  for (const int parts : {1, 2, 8}) {
    SCOPED_TRACE(testing::Message() << "parts=" << parts);
    Fleet total;
    begin_all(total);
    const std::vector<FaultSink*> into = total.sinks();
    for (int p = 0; p < parts; ++p) {
      Fleet shard;
      begin_all(shard);
      feed(shard, parts, p);
      const std::vector<FaultSink*> from = shard.sinks();
      for (std::size_t k = 0; k < from.size(); ++k)
        into[k]->merge_state(from[k]->serialize_state());
    }
    const std::vector<std::string> merged_blobs = serialize_all(total);
    ASSERT_EQ(merged_blobs.size(), mono_blobs.size());
    for (std::size_t k = 0; k < mono_blobs.size(); ++k) {
      EXPECT_EQ(merged_blobs[k], mono_blobs[k]) << sink_names()[k];
    }
  }
}

// After end_faults, the aggregated analyzers publish the same products as a
// monolithic pass (spot-checked on every product family).
TEST(SinkState, AggregatedProductsMatchMonolithic) {
  Fleet mono;
  begin_all(mono);
  feed(mono, 1, 0);
  for (FaultSink* sink : mono.sinks()) sink->end_faults();

  constexpr int kParts = 4;
  Fleet total;
  begin_all(total);
  const std::vector<FaultSink*> into = total.sinks();
  for (int p = 0; p < kParts; ++p) {
    Fleet shard;
    begin_all(shard);
    feed(shard, kParts, p);
    const std::vector<FaultSink*> from = shard.sinks();
    for (std::size_t k = 0; k < from.size(); ++k)
      into[k]->merge_state(from[k]->serialize_state());
  }
  for (FaultSink* sink : total.sinks()) sink->end_faults();

  EXPECT_EQ(total.errors_grid.grid().sum(), mono.errors_grid.grid().sum());
  EXPECT_EQ(total.patterns.patterns(), mono.patterns.patterns());
  EXPECT_EQ(total.adjacency.stats(), mono.adjacency.stats());
  EXPECT_EQ(total.direction.stats(), mono.direction.stats());
  for (int b = 0; b <= MultibitViewpoints::kMaxBits; ++b) {
    EXPECT_EQ(total.grouping.viewpoints().per_word[b],
              mono.grouping.viewpoints().per_word[b]) << "bits " << b;
    EXPECT_EQ(total.grouping.viewpoints().per_node[b],
              mono.grouping.viewpoints().per_node[b]) << "bits " << b;
  }
  EXPECT_EQ(total.grouping.co_occurrence().simultaneous_corruptions,
            mono.grouping.co_occurrence().simultaneous_corruptions);
  EXPECT_EQ(total.hourly.profile().counts, mono.hourly.profile().counts);
  EXPECT_EQ(total.daily.series(), mono.daily.series());
  EXPECT_EQ(total.top_nodes.series().nodes, mono.top_nodes.series().nodes);
  EXPECT_EQ(total.top_nodes.series().node_totals,
            mono.top_nodes.series().node_totals);
  EXPECT_EQ(total.regime.result().excluded, mono.regime.result().excluded);
  EXPECT_EQ(total.regime.result().regime.errors_per_day,
            mono.regime.result().regime.errors_per_day);
  EXPECT_EQ(total.interarrival.stats(), mono.interarrival.stats());
  EXPECT_EQ(total.dynamics.days(), mono.dynamics.days());
  EXPECT_EQ(total.alignment.stats().groups_examined,
            mono.alignment.stats().groups_examined);
  EXPECT_EQ(total.alignment.stats().scattered, mono.alignment.stats().scattered);
  EXPECT_EQ(total.alignment.spread().mean_span_bytes,
            mono.alignment.spread().mean_span_bytes);
  EXPECT_EQ(total.alignment.spread().max_span_bytes,
            mono.alignment.spread().max_span_bytes);
}

// Mixing locally streamed faults with merged partials is part of the
// contract: local faults count as one more partition.
TEST(SinkState, LocalFaultsMixWithMergedPartials) {
  Fleet mono;
  begin_all(mono);
  feed(mono, 1, 0);
  const std::vector<std::string> mono_blobs = serialize_all(mono);

  Fleet mixed;
  begin_all(mixed);
  feed(mixed, 2, 0);  // partition 0 streamed locally
  {
    Fleet other;
    begin_all(other);
    feed(other, 2, 1);  // partition 1 arrives as a serialized state
    const std::vector<FaultSink*> from = other.sinks();
    const std::vector<FaultSink*> into = mixed.sinks();
    for (std::size_t k = 0; k < from.size(); ++k)
      into[k]->merge_state(from[k]->serialize_state());
  }
  const std::vector<std::string> mixed_blobs = serialize_all(mixed);
  for (std::size_t k = 0; k < mono_blobs.size(); ++k) {
    EXPECT_EQ(mixed_blobs[k], mono_blobs[k]) << sink_names()[k];
  }
}

TEST(SinkState, DefaultImplementationsReject) {
  class Plain final : public FaultSink {
   public:
    void on_fault(const FaultRecord&) override {}
  };
  Plain sink;
  EXPECT_THROW((void)sink.serialize_state(), ContractViolation);
  EXPECT_THROW(sink.merge_state(""), ContractViolation);
}

TEST(SinkState, MergeRejectsForeignAndCorruptBlobs) {
  Fleet fleet;
  begin_all(fleet);
  const std::string grid_blob = fleet.errors_grid.serialize_state();
  // Wrong sink: the tag byte identifies the accumulator type.
  EXPECT_THROW(fleet.hourly.merge_state(grid_blob), ContractViolation);
  // Truncated payload.
  EXPECT_THROW(
      fleet.errors_grid.merge_state(grid_blob.substr(0, grid_blob.size() / 2)),
      ContractViolation);
  // Trailing garbage.
  EXPECT_THROW(fleet.errors_grid.merge_state(grid_blob + "xx"),
               ContractViolation);
  // Empty blob.
  EXPECT_THROW(fleet.errors_grid.merge_state(""), ContractViolation);
}

}  // namespace
}  // namespace unp::analysis
