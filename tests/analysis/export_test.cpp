#include "analysis/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace unp::analysis {
namespace {

FaultRecord fault(cluster::NodeId node, TimePoint t, int bits = 1,
                  double temp = 35.0) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.virtual_address = 4096;
  f.expected = 0xFFFFFFFFu;
  Word mask = 0;
  for (int b = 0; b < bits; ++b) mask |= 1u << b;
  f.actual = f.expected ^ mask;
  f.temperature_c = temp;
  return f;
}

int count_lines(const std::string& text) {
  int lines = 0;
  for (char c : text) lines += c == '\n';
  return lines;
}

TEST(Export, GridCsvShape) {
  Grid2D grid(63, 15);
  grid.at(2, 4) = 7.0;
  const std::string csv = csv_grid(grid, "errors");
  EXPECT_EQ(count_lines(csv), 1 + 63 * 15);
  EXPECT_NE(csv.find("blade,soc,errors\n"), std::string::npos);
  EXPECT_NE(csv.find("2,4,7\n"), std::string::npos);
}

TEST(Export, HourProfileCsvShape) {
  HourOfDayProfile profile;
  profile.counts[13][1] = 5;  // five 2-bit errors at 13:00
  const std::string csv = csv_hour_profile(profile);
  EXPECT_EQ(count_lines(csv), 25);
  EXPECT_NE(csv.find("13,0,5,0,0,0,0,5,5\n"), std::string::npos);
}

TEST(Export, DailyCsvHasDates) {
  telemetry::CampaignArchive archive;
  const CampaignWindow w = archive.window();
  const std::vector<FaultRecord> faults{
      fault({1, 1}, w.start + 10 * kSecondsPerDay + 3600, 2)};
  const std::string csv = csv_daily(archive, faults);
  EXPECT_NE(csv.find("2015-02-11"), std::string::npos);
  EXPECT_NE(csv.find(",1,1\n"), std::string::npos);  // one error, one multibit
}

TEST(Export, FaultsCsvFields) {
  const std::vector<FaultRecord> faults{
      fault({2, 4}, from_civil_utc({2015, 11, 3, 7, 8, 9}), 2),
      fault({1, 1}, from_civil_utc({2015, 3, 1, 0, 0, 0}), 1,
            telemetry::kNoTemperature)};
  const std::string csv = csv_faults(faults);
  EXPECT_NE(csv.find("02-04,2015-11-03T07:08:09"), std::string::npos);
  EXPECT_NE(csv.find(",2,35.00"), std::string::npos);
  EXPECT_NE(csv.find(",1,NA"), std::string::npos);
}

TEST(Export, ViewpointsSkipsEmptyRows) {
  MultibitViewpoints v;
  v.per_word[1] = 10;
  v.per_node[3] = 2;
  const std::string csv = csv_viewpoints(v);
  EXPECT_EQ(count_lines(csv), 3);  // header + bits 1 + bits 3
  EXPECT_NE(csv.find("1,10,0\n"), std::string::npos);
  EXPECT_NE(csv.find("3,0,2\n"), std::string::npos);
}

TEST(Export, FigureBundleWritesAllFiles) {
  const auto dir =
      std::filesystem::temp_directory_path() / "unp_export_test";
  std::filesystem::remove_all(dir);

  telemetry::CampaignArchive archive;
  archive.log({1, 1}).add_start(
      {archive.window().start, {1, 1}, 3ULL << 30, 30.0});
  archive.log({1, 1}).add_end(
      {archive.window().start + 3600, {1, 1}, 30.0});
  ExtractionResult extraction;
  extraction.faults.push_back(fault({1, 1}, archive.window().start + 100));

  const int files = write_figure_bundle(dir.string(), archive, extraction);
  EXPECT_EQ(files, 8);
  EXPECT_TRUE(std::filesystem::exists(dir / "fig01_hours_scanned.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir / "faults.csv"));
  EXPECT_GT(std::filesystem::file_size(dir / "fig09_fig10_fig11_daily.csv"),
            1000u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace unp::analysis
