#include "analysis/grouping.hpp"

#include <gtest/gtest.h>

namespace unp::analysis {
namespace {

FaultRecord fault(cluster::NodeId node, TimePoint t, std::uint64_t vaddr,
                  Word expected = 0xFFFFFFFFu, Word actual = 0xFFFFFFFEu) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.virtual_address = vaddr;
  f.expected = expected;
  f.actual = actual;
  return f;
}

TEST(Grouping, SameNodeSameInstantGroups) {
  std::vector<FaultRecord> faults{
      fault({1, 1}, 1000, 0), fault({1, 1}, 1000, 64), fault({1, 1}, 2000, 0)};
  const auto groups = group_simultaneous(faults);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members.size(), 2u);
  EXPECT_TRUE(groups[0].is_simultaneous());
  EXPECT_FALSE(groups[1].is_simultaneous());
}

TEST(Grouping, DifferentNodesNeverGroup) {
  std::vector<FaultRecord> faults{fault({1, 1}, 1000, 0),
                                  fault({2, 2}, 1000, 0)};
  const auto groups = group_simultaneous(faults);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(Grouping, GroupBitTotals) {
  std::vector<FaultRecord> faults{
      fault({1, 1}, 1000, 0, 0xFFFFFFFFu, 0xFFFF7BFFu),   // 2 bits
      fault({1, 1}, 1000, 64, 0xFFFFFFFFu, 0xFFFFFFFEu)}; // 1 bit
  const auto groups = group_simultaneous(faults);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].total_bits(), 3);
  EXPECT_EQ(groups[0].max_word_bits(), 2);
}

TEST(Grouping, ViewpointsConserveTotalFaults) {
  // Fig 4's invariant: "keeping the total number of corruptions constant".
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 10; ++i) {
    faults.push_back(
        fault({1, 1}, 1000 + (i / 3) * 100, static_cast<std::uint64_t>(i) * 64));
  }
  const auto groups = group_simultaneous(faults);
  const MultibitViewpoints v = count_viewpoints(groups);
  std::uint64_t word_weighted = 0, node_weighted = 0;
  for (int bits = 1; bits <= MultibitViewpoints::kMaxBits; ++bits) {
    word_weighted += v.per_word[bits] * static_cast<std::uint64_t>(bits);
    node_weighted += v.per_node[bits] * static_cast<std::uint64_t>(bits);
  }
  EXPECT_EQ(word_weighted, node_weighted);
  EXPECT_EQ(word_weighted, 10u);  // all single-bit words
}

TEST(Grouping, PerNodeMovesSinglesToMultis) {
  // Three single-bit words at one instant: per-word 3x 1-bit, per-node 1x 3-bit.
  std::vector<FaultRecord> faults{fault({1, 1}, 1000, 0),
                                  fault({1, 1}, 1000, 64),
                                  fault({1, 1}, 1000, 128)};
  const MultibitViewpoints v = count_viewpoints(group_simultaneous(faults));
  EXPECT_EQ(v.per_word[1], 3u);
  EXPECT_EQ(v.per_node[1], 0u);
  EXPECT_EQ(v.per_node[3], 1u);
}

TEST(CoOccurrence, ClassifiesGroups) {
  std::vector<FaultRecord> faults;
  // Group A: double + single (node 1, t=100).
  faults.push_back(fault({1, 1}, 100, 0, 0xFFFFFFFFu, 0xFFFF7BFFu));
  faults.push_back(fault({1, 1}, 100, 64));
  // Group B: triple + single (node 2, t=200).
  faults.push_back(fault({2, 2}, 200, 0, 0xFFFFFFFFu, 0xFFFF73FFu));  // 3 bits
  faults.push_back(fault({2, 2}, 200, 64));
  // Group C: double + double (node 3, t=300).
  faults.push_back(fault({3, 3}, 300, 0, 0xFFFFFFFFu, 0xFFFF7BFFu));
  faults.push_back(fault({3, 3}, 300, 64, 0xFFFFFFFFu, 0xFFFFF3FFu));
  // Group D: all singles (node 4, t=400).
  faults.push_back(fault({4, 4}, 400, 0));
  faults.push_back(fault({4, 4}, 400, 64));
  faults.push_back(fault({4, 4}, 400, 128));
  // Singleton (node 5).
  faults.push_back(fault({5, 5}, 500, 0));

  const CoOccurrence co = count_co_occurrence(group_simultaneous(faults));
  EXPECT_EQ(co.double_plus_single, 1u);
  EXPECT_EQ(co.triple_plus_single, 1u);
  EXPECT_EQ(co.double_plus_double, 1u);
  EXPECT_EQ(co.multi_single_groups, 1u);
  EXPECT_EQ(co.simultaneous_corruptions, 9u);  // everything except the singleton
  EXPECT_EQ(co.max_bits_one_instant, 4u);      // group C: 2 + 2
}

TEST(CoOccurrence, EmptyInput) {
  const CoOccurrence co = count_co_occurrence({});
  EXPECT_EQ(co.simultaneous_corruptions, 0u);
  EXPECT_EQ(co.max_bits_one_instant, 0u);
}

}  // namespace
}  // namespace unp::analysis
