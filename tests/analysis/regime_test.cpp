#include "analysis/regime.hpp"

#include <gtest/gtest.h>

namespace unp::analysis {
namespace {

FaultRecord fault(cluster::NodeId node, TimePoint t) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.expected = 0xFFFFFFFFu;
  f.actual = 0xFFFFFFFEu;
  return f;
}

std::vector<FaultRecord> day_burst(cluster::NodeId node, const CampaignWindow& w,
                                   int day, int count) {
  std::vector<FaultRecord> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(fault(node, w.start + day * kSecondsPerDay + 3600 + i * 60));
  }
  return out;
}

TEST(Regime, ThresholdSplitsDays) {
  const CampaignWindow w;
  std::vector<FaultRecord> faults;
  auto add = [&](std::vector<FaultRecord> v) {
    faults.insert(faults.end(), v.begin(), v.end());
  };
  add(day_burst({1, 1}, w, 10, 3));   // exactly at threshold: normal
  add(day_burst({1, 1}, w, 20, 4));   // above: degraded
  add(day_burst({1, 1}, w, 30, 50));  // burst day

  const RegimeResult r = classify_regime(faults, w, RegimeConfig{});
  EXPECT_FALSE(r.degraded[10]);
  EXPECT_TRUE(r.degraded[20]);
  EXPECT_TRUE(r.degraded[30]);
  EXPECT_EQ(r.degraded_days, 2u);
  EXPECT_EQ(r.normal_errors, 3u);
  EXPECT_EQ(r.degraded_errors, 54u);
}

TEST(Regime, MtbfComputation) {
  const CampaignWindow w;
  std::vector<FaultRecord> faults = day_burst({1, 1}, w, 5, 48);
  const RegimeResult r = classify_regime(faults, w, RegimeConfig{});
  // One degraded day with 48 errors: MTBF = 24h/48 = 0.5h.
  EXPECT_DOUBLE_EQ(r.degraded_mtbf_hours, 0.5);
  EXPECT_DOUBLE_EQ(r.normal_mtbf_hours, 0.0);  // zero normal errors
  EXPECT_NEAR(r.degraded_fraction(),
              1.0 / static_cast<double>(r.normal_days + r.degraded_days), 1e-9);
}

TEST(Regime, ExclusionRemovesNode) {
  const CampaignWindow w;
  std::vector<FaultRecord> faults = day_burst({2, 4}, w, 5, 100);
  auto extra = day_burst({1, 1}, w, 5, 2);
  faults.insert(faults.end(), extra.begin(), extra.end());

  RegimeConfig config;
  config.excluded_nodes.push_back({2, 4});
  const RegimeResult r = classify_regime(faults, w, config);
  EXPECT_EQ(r.errors_per_day[5], 2u);
  EXPECT_FALSE(r.degraded[5]);
}

TEST(Regime, AutoExclusionPicksLoudest) {
  const CampaignWindow w;
  std::vector<FaultRecord> faults = day_burst({2, 4}, w, 5, 100);
  auto extra = day_burst({7, 7}, w, 6, 10);
  faults.insert(faults.end(), extra.begin(), extra.end());

  const AutoRegime result = classify_regime_excluding_loudest(faults, w);
  ASSERT_TRUE(result.excluded.has_value());
  EXPECT_EQ(*result.excluded, (cluster::NodeId{2, 4}));
  EXPECT_EQ(result.regime.degraded_errors, 10u);
}

TEST(Regime, EmptyFaultsAllNormal) {
  const CampaignWindow w;
  const AutoRegime result = classify_regime_excluding_loudest({}, w);
  EXPECT_FALSE(result.excluded.has_value());
  EXPECT_EQ(result.regime.degraded_days, 0u);
  EXPECT_EQ(result.regime.normal_errors, 0u);
}

}  // namespace
}  // namespace unp::analysis
