#include "analysis/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace unp::analysis {
namespace {

constexpr std::uint64_t kGiB = 1ULL << 30;

FaultRecord fault(cluster::NodeId node, TimePoint t, int bits = 1,
                  double temp = 35.0) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.expected = 0xFFFFFFFFu;
  Word mask = 0;
  for (int b = 0; b < bits; ++b) mask |= 1u << b;
  f.actual = f.expected ^ mask;
  f.temperature_c = temp;
  return f;
}

TEST(BitClass, Mapping) {
  EXPECT_EQ(bit_class(1), 0);
  EXPECT_EQ(bit_class(5), 4);
  EXPECT_EQ(bit_class(6), 5);
  EXPECT_EQ(bit_class(9), 5);
  EXPECT_STREQ(bit_class_label(0), "1");
  EXPECT_STREQ(bit_class_label(5), "6+");
}

TEST(Grids, HoursGridPlacesNodes) {
  telemetry::CampaignArchive archive;
  archive.log({5, 7}).add_start({0, {5, 7}, 3 * kGiB, 30.0});
  archive.log({5, 7}).add_end({7200, {5, 7}, 30.0});
  const Grid2D grid = hours_scanned_grid(archive);
  EXPECT_EQ(grid.rows(), 63u);
  EXPECT_EQ(grid.cols(), 15u);
  EXPECT_DOUBLE_EQ(grid.at(5, 7), 2.0);
  EXPECT_DOUBLE_EQ(grid.sum(), 2.0);
}

TEST(Grids, ErrorsGrid) {
  const std::vector<FaultRecord> faults{fault({2, 4}, 100), fault({2, 4}, 200),
                                        fault({10, 1}, 100)};
  const Grid2D grid = errors_grid(faults);
  EXPECT_DOUBLE_EQ(grid.at(2, 4), 2.0);
  EXPECT_DOUBLE_EQ(grid.at(10, 1), 1.0);
}

TEST(HourProfile, BucketsByLocalHour) {
  // 11:30 UTC in June = 13:30 CEST.
  const TimePoint t = from_civil_utc({2015, 6, 10, 11, 30, 0});
  const std::vector<FaultRecord> faults{fault({1, 1}, t, 2)};
  const HourOfDayProfile profile = hour_of_day_profile(faults);
  EXPECT_EQ(profile.counts[13][1], 1u);
  EXPECT_EQ(profile.total(13), 1u);
  EXPECT_EQ(profile.multibit(13), 1u);
  EXPECT_EQ(profile.multibit(11), 0u);
}

TEST(HourProfile, DayNightRatio) {
  std::vector<FaultRecord> faults;
  // 8 multi-bit by day (12:00 UTC winter = 13:00 local), 2 by night.
  for (int i = 0; i < 8; ++i) {
    faults.push_back(fault({1, 1}, from_civil_utc({2015, 2, 1 + i, 12, 0, 0}), 2));
  }
  for (int i = 0; i < 2; ++i) {
    faults.push_back(fault({1, 1}, from_civil_utc({2015, 2, 1 + i, 2, 0, 0}), 2));
  }
  const HourOfDayProfile profile = hour_of_day_profile(faults);
  EXPECT_DOUBLE_EQ(profile.day_night_ratio_multibit(), 4.0);
}

TEST(TemperatureProfile, SplitsByReadingPresence) {
  std::vector<FaultRecord> faults{
      fault({1, 1}, 100, 1, 35.0),
      fault({1, 1}, 200, 2, 65.0),
      fault({1, 1}, 300, 1, telemetry::kNoTemperature)};
  const TemperatureProfile profile = temperature_profile(faults);
  EXPECT_EQ(profile.without_reading, 1u);
  // 35 degC lands in bin (35-20)/2 = 7; 65 degC in bin 22.
  EXPECT_EQ(profile.by_class[0].count(7), 1u);
  EXPECT_EQ(profile.by_class[1].count(22), 1u);
}

TEST(DailySeries, TerabyteHoursSplitAcrossDays) {
  telemetry::CampaignArchive archive;
  const CampaignWindow w = archive.window();
  // A 3 GiB session from 22:00 local on day 3 to 02:00 local on day 4.
  const TimePoint start = w.start + 3 * kSecondsPerDay + 21 * kSecondsPerHour;
  archive.log({1, 1}).add_start({start, {1, 1}, 3 * kGiB, 30.0});
  archive.log({1, 1}).add_end({start + 4 * kSecondsPerHour, {1, 1}, 30.0});
  const auto series = daily_terabyte_hours(archive);
  const double tb = 3.0 / 1024.0;
  EXPECT_NEAR(series[3], 2.0 * tb, 1e-9);
  EXPECT_NEAR(series[4], 2.0 * tb, 1e-9);
  double total = 0.0;
  for (double v : series) total += v;
  EXPECT_NEAR(total, 4.0 * tb, 1e-9);
}

TEST(DailySeries, ErrorsBucketByDayAndClass) {
  const CampaignWindow w;
  const std::vector<FaultRecord> faults{
      fault({1, 1}, w.start + 10 * kSecondsPerDay + 3600, 1),
      fault({1, 1}, w.start + 10 * kSecondsPerDay + 7200, 2),
      fault({1, 1}, w.start + 11 * kSecondsPerDay + 3600, 1)};
  const auto series = daily_errors(faults, w);
  EXPECT_EQ(series[10][0], 1u);
  EXPECT_EQ(series[10][1], 1u);
  EXPECT_EQ(series[11][0], 1u);
}

TEST(TopNodes, RanksAndSeparatesRest) {
  const CampaignWindow w;
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 50; ++i) faults.push_back(fault({2, 4}, w.start + i * 1000));
  for (int i = 0; i < 20; ++i) faults.push_back(fault({4, 5}, w.start + i * 1000));
  for (int i = 0; i < 10; ++i) faults.push_back(fault({58, 2}, w.start + i * 1000));
  faults.push_back(fault({30, 3}, w.start + 5000));
  const TopNodeSeries top = top_node_series(faults, w);
  ASSERT_EQ(top.nodes.size(), 3u);
  EXPECT_EQ(top.nodes[0], (cluster::NodeId{2, 4}));
  EXPECT_EQ(top.node_totals[0], 50u);
  EXPECT_EQ(top.nodes[2], (cluster::NodeId{58, 2}));
  EXPECT_EQ(top.rest_total, 1u);
}

TEST(TopNodes, FewerNodesThanRequested) {
  const CampaignWindow w;
  const std::vector<FaultRecord> faults{fault({1, 1}, w.start + 100)};
  const TopNodeSeries top = top_node_series(faults, w, 3);
  EXPECT_EQ(top.nodes.size(), 1u);
  EXPECT_EQ(top.rest_total, 0u);
}

TEST(Correlation, WiredThroughDailySeries) {
  telemetry::CampaignArchive archive;
  const CampaignWindow w = archive.window();
  std::vector<FaultRecord> faults;
  // Sessions every day of the whole campaign with identical size; errors on
  // alternating days -> no correlation with the flat scanning series.
  for (int d = 0; d < static_cast<int>(w.duration_days()); ++d) {
    const TimePoint start = w.start + d * kSecondsPerDay + 6 * kSecondsPerHour;
    archive.log({1, 1}).add_start({start, {1, 1}, 3 * kGiB, 30.0});
    archive.log({1, 1}).add_end({start + 10 * kSecondsPerHour, {1, 1}, 30.0});
    if (d % 2 == 0) faults.push_back(fault({1, 1}, start + 3600));
  }
  const PearsonResult r = scan_error_correlation(archive, faults);
  EXPECT_GT(r.n, 300u);
  EXPECT_LT(std::abs(r.r), 0.35);
}

TEST(Headline, ComputesRates) {
  telemetry::CampaignArchive archive;
  const CampaignWindow w = archive.window();
  archive.log({1, 1}).add_start({w.start, {1, 1}, 3 * kGiB, 30.0});
  archive.log({1, 1}).add_end({w.start + 100 * kSecondsPerHour, {1, 1}, 30.0});
  telemetry::ErrorRecord e;
  e.node = {1, 1};
  e.time = w.start + 3600;
  e.expected = 0xFFFFFFFFu;
  e.actual = 0xFFFFFFFEu;
  archive.log({1, 1}).add_error(e);

  const ExtractionResult extraction = extract_faults(archive);
  const HeadlineStats stats = headline_stats(archive, extraction);
  EXPECT_EQ(stats.independent_faults, 1u);
  EXPECT_EQ(stats.monitored_nodes, 1);
  EXPECT_DOUBLE_EQ(stats.monitored_node_hours, 100.0);
  EXPECT_DOUBLE_EQ(stats.node_mtbf_hours, 100.0);
  EXPECT_DOUBLE_EQ(stats.cluster_mtbe_minutes,
                   static_cast<double>(w.duration_seconds()) / 60.0);
}

}  // namespace
}  // namespace unp::analysis
