#include "analysis/diagnosis.hpp"

#include <gtest/gtest.h>

namespace unp::analysis {
namespace {

FaultRecord fault(cluster::NodeId node, TimePoint t, std::uint64_t vaddr,
                  Word flip = 0x1u, std::uint64_t raw = 1) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.virtual_address = vaddr;
  f.expected = 0xFFFFFFFFu;
  f.actual = 0xFFFFFFFFu ^ flip;
  f.raw_logs = raw;
  return f;
}

TEST(Diagnosis, HealthyNode) {
  const NodeDiagnosis d = diagnose_node({}, {1, 1});
  EXPECT_EQ(d.condition, NodeCondition::kHealthy);
  EXPECT_STREQ(d.recommendation(), "none");
}

TEST(Diagnosis, SporadicNode) {
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 3; ++i) {
    faults.push_back(fault({1, 1}, i * 1000000, static_cast<std::uint64_t>(i) * 4096));
  }
  const NodeDiagnosis d = diagnose_node(faults, {1, 1});
  EXPECT_EQ(d.condition, NodeCondition::kSporadic);
}

TEST(Diagnosis, WeakCellSignature) {
  // Thousands of faults, one address, one pattern, one raw log each.
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 2000; ++i) {
    faults.push_back(fault({4, 5}, i * 3600, 4096, 0x200u));
  }
  const NodeDiagnosis d = diagnose_node(faults, {4, 5});
  EXPECT_EQ(d.condition, NodeCondition::kWeakCell);
  EXPECT_EQ(d.distinct_addresses, 1u);
  EXPECT_EQ(d.distinct_patterns, 1u);
  EXPECT_STREQ(d.recommendation(), "retire the affected page");
}

TEST(Diagnosis, StuckRegionSignature) {
  // A few addresses re-logged every iteration: huge raw/fault ratio.
  std::vector<FaultRecord> faults;
  for (int a = 0; a < 20; ++a) {
    faults.push_back(fault({21, 7}, a, static_cast<std::uint64_t>(a) * 4096,
                           0x1u, 50000));
  }
  const NodeDiagnosis d = diagnose_node(faults, {21, 7});
  EXPECT_EQ(d.condition, NodeCondition::kStuckRegion);
  EXPECT_STREQ(d.recommendation(), "replace the DIMM");
}

TEST(Diagnosis, ComponentFailureSignature) {
  // Many faults over many addresses with many patterns, transient each.
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 5000; ++i) {
    faults.push_back(fault({2, 4}, i * 600,
                           static_cast<std::uint64_t>(i % 1700) * 64,
                           1u << (i % 28)));
  }
  const NodeDiagnosis d = diagnose_node(faults, {2, 4});
  EXPECT_EQ(d.condition, NodeCondition::kComponentFailure);
  EXPECT_GT(d.distinct_addresses, 1000u);
}

TEST(Diagnosis, FleetOrderedLoudestFirst) {
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 100; ++i) faults.push_back(fault({2, 4}, i, 64));
  faults.push_back(fault({9, 9}, 5, 4096));
  const auto fleet = diagnose_fleet(faults);
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet[0].node, (cluster::NodeId{2, 4}));
  EXPECT_EQ(fleet[0].faults, 100u);
  EXPECT_EQ(fleet[1].condition, NodeCondition::kSporadic);
}

TEST(Diagnosis, Names) {
  EXPECT_STREQ(to_string(NodeCondition::kWeakCell), "weak-cell");
  EXPECT_STREQ(to_string(NodeCondition::kComponentFailure), "component-failure");
}

}  // namespace
}  // namespace unp::analysis
