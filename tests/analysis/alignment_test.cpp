#include "analysis/alignment.hpp"

#include <gtest/gtest.h>

namespace unp::analysis {
namespace {

const dram::AddressMap& map() {
  static const dram::AddressMap m(dram::default_geometry());
  return m;
}

FaultRecord fault_at_word(std::uint64_t word, TimePoint t = 1000) {
  FaultRecord f;
  f.node = {1, 1};
  f.first_seen = t;
  f.last_seen = t;
  f.virtual_address = word * sizeof(Word);
  f.expected = 0xFFFFFFFFu;
  f.actual = 0xFFFFFFFEu;
  return f;
}

std::uint64_t word_at(int rank, int bank, std::uint32_t row, std::uint32_t col) {
  return map().encode({0, rank, bank, row, col});
}

SimultaneousGroup make_group(const std::vector<FaultRecord>& faults) {
  SimultaneousGroup g;
  g.node = {1, 1};
  g.time = 1000;
  for (const auto& f : faults) g.members.push_back(&f);
  return g;
}

TEST(Alignment, SameRowGroup) {
  const std::vector<FaultRecord> faults{
      fault_at_word(word_at(0, 3, 100, 5)),
      fault_at_word(word_at(0, 3, 100, 900)),
      fault_at_word(word_at(0, 3, 100, 17))};
  EXPECT_EQ(classify_geometry(make_group(faults), map()),
            GroupGeometry::kSameRow);
}

TEST(Alignment, SameColumnGroup) {
  const std::vector<FaultRecord> faults{
      fault_at_word(word_at(1, 2, 100, 7)),
      fault_at_word(word_at(1, 2, 4000, 7))};
  EXPECT_EQ(classify_geometry(make_group(faults), map()),
            GroupGeometry::kSameColumn);
}

TEST(Alignment, SameBankGroup) {
  const std::vector<FaultRecord> faults{
      fault_at_word(word_at(1, 2, 100, 7)),
      fault_at_word(word_at(1, 2, 4000, 9))};
  EXPECT_EQ(classify_geometry(make_group(faults), map()),
            GroupGeometry::kSameBank);
}

TEST(Alignment, ScatteredGroup) {
  const std::vector<FaultRecord> faults{
      fault_at_word(word_at(0, 1, 100, 7)),
      fault_at_word(word_at(1, 5, 4000, 9))};
  EXPECT_EQ(classify_geometry(make_group(faults), map()),
            GroupGeometry::kScattered);
}

TEST(Alignment, StatsAndAlignedPair) {
  // One all-row group, one scattered group that still hides a row pair,
  // one genuinely scattered group, plus a singleton (ignored).
  std::vector<FaultRecord> row_g{fault_at_word(word_at(0, 3, 50, 1)),
                                 fault_at_word(word_at(0, 3, 50, 2))};
  std::vector<FaultRecord> hidden{fault_at_word(word_at(0, 4, 60, 1)),
                                  fault_at_word(word_at(0, 4, 60, 9)),
                                  fault_at_word(word_at(1, 7, 999, 3))};
  std::vector<FaultRecord> scattered{fault_at_word(word_at(0, 1, 10, 1)),
                                     fault_at_word(word_at(1, 2, 20, 2))};
  std::vector<FaultRecord> singleton{fault_at_word(word_at(0, 0, 0, 0))};

  std::vector<SimultaneousGroup> groups{
      make_group(row_g), make_group(hidden), make_group(scattered),
      make_group(singleton)};
  const AlignmentStats stats = physical_alignment_stats(groups, map());
  EXPECT_EQ(stats.groups_examined, 3u);
  EXPECT_EQ(stats.same_row, 1u);
  EXPECT_EQ(stats.scattered, 2u);
  EXPECT_EQ(stats.with_aligned_pair, 2u);  // row_g and hidden
  EXPECT_NEAR(stats.aligned_fraction(), 1.0 / 3.0, 1e-9);
}

TEST(Alignment, LogicalSpread) {
  std::vector<FaultRecord> faults{fault_at_word(0), fault_at_word(1 << 20)};
  std::vector<SimultaneousGroup> groups{make_group(faults)};
  const LogicalSpread spread = logical_spread(groups);
  EXPECT_DOUBLE_EQ(spread.mean_span_bytes, static_cast<double>(4ULL << 20));
  EXPECT_EQ(spread.max_span_bytes, 4ULL << 20);
}

TEST(Alignment, EmptyInputs) {
  const AlignmentStats stats = physical_alignment_stats({}, map());
  EXPECT_EQ(stats.groups_examined, 0u);
  EXPECT_DOUBLE_EQ(stats.aligned_fraction(), 0.0);
  const LogicalSpread spread = logical_spread({});
  EXPECT_DOUBLE_EQ(spread.mean_span_bytes, 0.0);
}

}  // namespace
}  // namespace unp::analysis
