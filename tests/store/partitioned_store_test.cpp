// Partitioned UNPF stores: write_partitioned_store stripes canonical row
// ranges into standalone part files, and StoreReader::open_partitioned
// presents them as one logical store whose every query, replay, and
// metadata read is identical to the single-file store.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "store/builder.hpp"
#include "store/reader.hpp"

namespace unp::store {
namespace {

constexpr TimePoint kStart = 1'440'000'000;
constexpr TimePoint kEnd = kStart + 300'000;
constexpr std::uint64_t kFingerprint = 0xc0ffee;

std::vector<analysis::FaultRecord> make_population(int n = 1500) {
  std::vector<analysis::FaultRecord> faults;
  Xoshiro256 rng(41);
  for (int i = 0; i < n; ++i) {
    analysis::FaultRecord f;
    f.first_seen = kStart + static_cast<TimePoint>(i) * 90;
    f.last_seen = f.first_seen + static_cast<TimePoint>(rng.next() % 500);
    f.node = cluster::NodeId{static_cast<int>(rng.next() % cluster::kStudyBlades),
                             static_cast<int>(rng.next() % cluster::kSocsPerBlade)};
    f.raw_logs = 1 + rng.next() % 30;
    f.virtual_address = rng.next() % (1ull << 40);
    f.expected = static_cast<Word>(rng.next());
    Word mask = 1;
    if (rng.next() % 10 == 0) mask |= Word{1} << (rng.next() % 32);
    f.actual = f.expected ^ mask;
    f.temperature_c = 20.0 + static_cast<double>(rng.next() % 20);
    faults.push_back(f);
  }
  std::sort(faults.begin(), faults.end(),
            [](const analysis::FaultRecord& a, const analysis::FaultRecord& b) {
              return std::tie(a.first_seen, a.node, a.virtual_address) <
                     std::tie(b.first_seen, b.node, b.virtual_address);
            });
  return faults;
}

analysis::ExtractionResult make_extraction() {
  analysis::ExtractionResult extraction;
  extraction.faults = make_population();
  for (const auto& f : extraction.faults)
    extraction.total_raw_logs += f.raw_logs;
  return extraction;
}

/// Minimal (empty but well-formed) scan profile shared by all writes.
const analysis::ScanProfileSink& scan_profile() {
  static const analysis::ScanProfileSink* scan = [] {
    auto* s = new analysis::ScanProfileSink;
    s->begin_campaign({kStart, kEnd});
    s->end_campaign();
    return s;
  }();
  return *scan;
}

struct PartPaths {
  std::vector<std::string> paths;
  explicit PartPaths(int parts) {
    for (int p = 0; p < parts; ++p) {
      paths.push_back(::testing::TempDir() + "pst_part" + std::to_string(p) +
                      "_of" + std::to_string(parts) + ".unpf");
    }
  }
  ~PartPaths() {
    for (const auto& p : paths) std::remove(p.c_str());
  }
};

TEST(PartitionedStore, QueriesMatchSingleFileStoreForAnyPartCount) {
  const analysis::ExtractionResult extraction = make_extraction();
  const std::string single = ::testing::TempDir() + "pst_single.unpf";
  write_store(single, extraction, scan_profile(), kFingerprint, {128});
  const StoreReader mono = StoreReader::open(single);

  for (const int parts : {1, 2, 5}) {
    SCOPED_TRACE(testing::Message() << "parts=" << parts);
    PartPaths pp(parts);
    write_partitioned_store(pp.paths, extraction, scan_profile(),
                            kFingerprint, {128});

    const StoreReader reader = StoreReader::open_partitioned(pp.paths);
    EXPECT_EQ(reader.fingerprint(), mono.fingerprint());
    EXPECT_EQ(reader.window().start, mono.window().start);
    EXPECT_EQ(reader.window().end, mono.window().end);
    EXPECT_EQ(reader.rows_total(), mono.rows_total());
    EXPECT_EQ(reader.scan_profile().monitored_nodes,
              mono.scan_profile().monitored_nodes);

    // Full scan, selective scan, and the rebuilt extraction all agree.
    EXPECT_EQ(reader.materialize(Query{}), extraction.faults);
    Query selective;
    selective.min_bits = 2;
    EXPECT_EQ(reader.materialize(selective), mono.materialize(selective));
    Query windowed;
    windowed.since = kStart + 40'000;
    windowed.until = kStart + 100'000;
    EXPECT_EQ(reader.materialize(windowed), mono.materialize(windowed));

    const analysis::ExtractionResult rebuilt = reader.extraction_result();
    EXPECT_EQ(rebuilt.faults, extraction.faults);
    EXPECT_EQ(rebuilt.total_raw_logs, extraction.total_raw_logs);
  }
  std::remove(single.c_str());
}

TEST(PartitionedStore, PartsAreStandaloneStoresCoveringDisjointRanges) {
  const analysis::ExtractionResult extraction = make_extraction();
  PartPaths pp(3);
  write_partitioned_store(pp.paths, extraction, scan_profile(), kFingerprint);

  std::vector<analysis::FaultRecord> concatenated;
  for (const auto& path : pp.paths) {
    const StoreReader part = StoreReader::open(path);
    EXPECT_EQ(part.fingerprint(), kFingerprint);
    const std::vector<analysis::FaultRecord> rows = part.materialize(Query{});
    concatenated.insert(concatenated.end(), rows.begin(), rows.end());
  }
  // Canonical-range striping: parts concatenate to the canonical order.
  EXPECT_EQ(concatenated, extraction.faults);
}

TEST(PartitionedStore, RejectsMismatchedParts) {
  const analysis::ExtractionResult extraction = make_extraction();
  PartPaths pp(2);
  write_partitioned_store(pp.paths, extraction, scan_profile(), kFingerprint);

  // A part from a different campaign (different fingerprint) cannot join.
  const std::string foreign = ::testing::TempDir() + "pst_foreign.unpf";
  write_store(foreign, extraction, scan_profile(), kFingerprint + 1);
  try {
    (void)StoreReader::open_partitioned({pp.paths[0], foreign});
    FAIL() << "fingerprint mismatch not detected";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.detail()).find("fingerprint"), std::string::npos)
        << e.detail();
  }
  std::remove(foreign.c_str());

  EXPECT_THROW((void)StoreReader::open_partitioned({}), ContractViolation);
  EXPECT_THROW(
      (void)StoreReader::open_partitioned({pp.paths[0], "/nonexistent.unpf"}),
      ContractViolation);
}

}  // namespace
}  // namespace unp::store
