// Unit tests for the UNPF segment/zone/metadata codecs (src/store/format).
#include "store/format.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "telemetry/record.hpp"

using unp::telemetry::kNoTemperature;

namespace unp::store {
namespace {

// --- bit packing ----------------------------------------------------------

TEST(PackBits, RoundTripAcrossWidths) {
  Xoshiro256 rng(7);
  for (const int width : {1, 2, 3, 7, 8, 10, 31, 32, 33, 56, 63, 64}) {
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 97; ++i) {
      const std::uint64_t mask =
          width == 64 ? ~0ull : ((1ull << width) - 1ull);
      values.push_back(rng.next() & mask);
    }
    std::string buf = "xx";  // nonzero base offset
    pack_bits(buf, values, width);
    std::vector<std::uint64_t> decoded;
    unpack_bits(buf, 2, buf.size(), values.size(), width, decoded);
    EXPECT_EQ(decoded, values) << "width " << width;
  }
}

TEST(PackBits, WidthZeroWritesNothing) {
  std::string buf;
  const std::vector<std::uint64_t> zeros(5, 0);
  pack_bits(buf, zeros, 0);
  EXPECT_TRUE(buf.empty());
  std::vector<std::uint64_t> decoded;
  unpack_bits(buf, 0, 0, 5, 0, decoded);
  EXPECT_EQ(decoded, zeros);
}

TEST(PackBits, RejectsValueWiderThanWidth) {
  std::string buf;
  const std::vector<std::uint64_t> values = {4};  // needs 3 bits
  EXPECT_THROW(pack_bits(buf, values, 2), ContractViolation);
}

TEST(PackBits, UnpackThrowsOnTruncatedBlock) {
  std::string buf;
  const std::vector<std::uint64_t> values = {0x3ff, 0x2aa, 0x155};
  pack_bits(buf, values, 10);
  std::vector<std::uint64_t> decoded;
  EXPECT_THROW(unpack_bits(buf, 0, buf.size() - 1, 3, 10, decoded),
               DecodeError);
  EXPECT_THROW(unpack_bits(buf, 0, buf.size(), 4, 10, decoded), DecodeError);
}

// --- fault classes --------------------------------------------------------

TEST(FaultClassTest, ClassifiesBitCountBoundaries) {
  EXPECT_EQ(classify_bits(1), FaultClass::kSingleBit);
  EXPECT_EQ(classify_bits(2), FaultClass::kDoubleBit);
  EXPECT_EQ(classify_bits(3), FaultClass::kFewBit);
  EXPECT_EQ(classify_bits(8), FaultClass::kFewBit);
  EXPECT_EQ(classify_bits(9), FaultClass::kManyBit);
  EXPECT_EQ(classify_bits(32), FaultClass::kManyBit);
}

// --- segment codec --------------------------------------------------------

std::vector<analysis::FaultRecord> sample_rows() {
  std::vector<analysis::FaultRecord> rows;
  Xoshiro256 rng(11);
  TimePoint t = 1'444'000'000;
  for (int i = 0; i < 300; ++i) {
    analysis::FaultRecord f;
    f.node = cluster::node_from_index(
        static_cast<int>(rng.next() % cluster::kStudyNodeSlots));
    f.first_seen = t;
    f.last_seen = t + static_cast<TimePoint>(rng.next() % 4000);
    f.raw_logs = 1 + rng.next() % 900;
    f.virtual_address = rng.next() >> 12;
    f.expected = static_cast<Word>(rng.next());
    // Flip 1..12 bits so every FaultClass occurs.
    Word mask = 0;
    const int flips = 1 + static_cast<int>(rng.next() % 12);
    for (int b = 0; b < flips; ++b)
      mask |= Word{1} << (rng.next() % 32);
    f.actual = f.expected ^ (mask == 0 ? Word{1} : mask);
    f.temperature_c =
        i % 7 == 0 ? kNoTemperature : 20.0 + static_cast<double>(i % 30);
    rows.push_back(f);
    t += static_cast<TimePoint>(rng.next() % 600);
  }
  return rows;
}

TEST(SegmentCodec, RoundTripsEveryColumn) {
  const auto rows = sample_rows();
  SegmentZone zone;
  const std::string body = encode_segment(rows, zone);
  zone.size = body.size();

  SegmentColumns cols;
  decode_segment(body, 0, zone, kAllColumns, cols);
  ASSERT_EQ(cols.first_seen.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const analysis::FaultRecord& f = rows[i];
    EXPECT_EQ(cols.node_index[i],
              static_cast<std::uint32_t>(cluster::node_index(f.node)));
    EXPECT_EQ(cols.first_seen[i], f.first_seen);
    // The segment codec stores last_seen as an offset from first_seen; the
    // reader re-bases it after decoding.
    EXPECT_EQ(cols.last_seen[i], f.last_seen - f.first_seen);
    EXPECT_EQ(cols.raw_logs[i], f.raw_logs);
    EXPECT_EQ(cols.address[i], f.virtual_address);
    EXPECT_EQ(cols.expected[i], f.expected);
    EXPECT_EQ(cols.actual[i], f.actual);
    EXPECT_EQ(cols.temperature[i], f.temperature_c);
    EXPECT_EQ(cols.fault_class[i],
              static_cast<std::uint8_t>(classify_bits(f.flipped_bits())));
  }
}

TEST(SegmentCodec, ZoneCoversExactMinMaxRanges) {
  const auto rows = sample_rows();
  SegmentZone zone;
  const std::string body = encode_segment(rows, zone);
  EXPECT_EQ(zone.rows, rows.size());
  TimePoint tmin = rows.front().first_seen, tmax = rows.front().first_seen;
  std::uint32_t nmin = ~0u, nmax = 0;
  std::uint64_t amin = ~0ull, amax = 0;
  int bmin = 99, bmax = 0;
  for (const auto& f : rows) {
    tmin = std::min(tmin, f.first_seen);
    tmax = std::max(tmax, f.first_seen);
    const auto idx = static_cast<std::uint32_t>(cluster::node_index(f.node));
    nmin = std::min(nmin, idx);
    nmax = std::max(nmax, idx);
    amin = std::min(amin, f.virtual_address);
    amax = std::max(amax, f.virtual_address);
    bmin = std::min(bmin, f.flipped_bits());
    bmax = std::max(bmax, f.flipped_bits());
  }
  EXPECT_EQ(zone.time_min, tmin);
  EXPECT_EQ(zone.time_max, tmax);
  EXPECT_EQ(zone.node_min, nmin);
  EXPECT_EQ(zone.node_max, nmax);
  EXPECT_EQ(zone.addr_min, amin);
  EXPECT_EQ(zone.addr_max, amax);
  EXPECT_EQ(int{zone.bits_min}, bmin);
  EXPECT_EQ(int{zone.bits_max}, bmax);
}

TEST(SegmentCodec, ProjectionSkipsUnselectedColumns) {
  const auto rows = sample_rows();
  SegmentZone zone;
  const std::string body = encode_segment(rows, zone);
  zone.size = body.size();

  SegmentColumns cols;
  decode_segment(body, 0, zone, kColFirstSeen | kColClass, cols);
  EXPECT_EQ(cols.first_seen.size(), rows.size());
  EXPECT_EQ(cols.fault_class.size(), rows.size());
  EXPECT_TRUE(cols.node_index.empty());
  EXPECT_TRUE(cols.raw_logs.empty());
  EXPECT_TRUE(cols.address.empty());
  EXPECT_TRUE(cols.expected.empty());
  EXPECT_TRUE(cols.actual.empty());
  EXPECT_TRUE(cols.temperature.empty());
  // last_seen is stored as an offset from first_seen: decoding it requires
  // first_seen, which the planner adds; here it decodes standalone offsets.
  EXPECT_TRUE(cols.last_seen.empty() || cols.last_seen.size() == rows.size());
}

TEST(SegmentCodec, SingleNodeSegmentUsesZeroBitIndexes) {
  std::vector<analysis::FaultRecord> rows;
  for (int i = 0; i < 10; ++i) {
    analysis::FaultRecord f;
    f.node = cluster::NodeId{12, 3};
    f.first_seen = 1000 + i;
    f.last_seen = f.first_seen;
    f.virtual_address = 0x1000u + static_cast<std::uint64_t>(i);
    f.expected = 0xffffffffu;
    f.actual = 0xfffffffeu;
    f.temperature_c = kNoTemperature;
    rows.push_back(f);
  }
  SegmentZone zone;
  const std::string body = encode_segment(rows, zone);
  zone.size = body.size();
  SegmentColumns cols;
  decode_segment(body, 0, zone, kAllColumns, cols);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(cols.node_index[i],
              static_cast<std::uint32_t>(cluster::node_index({12, 3})));
}

TEST(SegmentCodec, ThrowsDecodeErrorOnTruncation) {
  const auto rows = sample_rows();
  SegmentZone zone;
  const std::string body = encode_segment(rows, zone);
  // Every strict prefix must fail loudly, never mis-decode.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, body.size() / 2,
                                body.size() - 1}) {
    SegmentZone short_zone = zone;
    short_zone.size = cut;
    SegmentColumns cols;
    EXPECT_THROW(
        decode_segment(body.substr(0, cut), 0, short_zone, kAllColumns, cols),
        DecodeError)
        << "cut at " << cut;
  }
}

TEST(SegmentCodec, ThrowsOnTrailingGarbageInsideSegment) {
  const auto rows = sample_rows();
  SegmentZone zone;
  std::string body = encode_segment(rows, zone);
  body += '\xff';
  zone.size = body.size();
  SegmentColumns cols;
  EXPECT_THROW(decode_segment(body, 0, zone, kAllColumns, cols), DecodeError);
}

TEST(SegmentCodec, DecodeErrorCarriesByteOffset) {
  const auto rows = sample_rows();
  SegmentZone zone;
  const std::string body = encode_segment(rows, zone);
  SegmentZone short_zone = zone;
  short_zone.size = body.size() / 2;
  SegmentColumns cols;
  try {
    decode_segment(body.substr(0, body.size() / 2), 0, short_zone, kAllColumns,
                    cols);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_LE(e.byte_offset(), body.size());
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

// --- zone directory codec -------------------------------------------------

TEST(ZoneCodec, RoundTrips) {
  SegmentZone zone;
  zone.offset = 123456;
  zone.size = 9999;
  zone.rows = 1024;
  zone.time_min = 1'444'000'000;
  zone.time_max = 1'444'999'999;
  zone.node_min = 3;
  zone.node_max = 901;
  zone.addr_min = 0x1000;
  zone.addr_max = 0xffff'ffff'fffull;
  zone.bits_min = 1;
  zone.bits_max = 17;

  std::string buf;
  encode_zone(buf, zone);
  std::size_t pos = 0;
  const SegmentZone back = decode_zone(buf, pos);
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(back.offset, zone.offset);
  EXPECT_EQ(back.size, zone.size);
  EXPECT_EQ(back.rows, zone.rows);
  EXPECT_EQ(back.time_min, zone.time_min);
  EXPECT_EQ(back.time_max, zone.time_max);
  EXPECT_EQ(back.node_min, zone.node_min);
  EXPECT_EQ(back.node_max, zone.node_max);
  EXPECT_EQ(back.addr_min, zone.addr_min);
  EXPECT_EQ(back.addr_max, zone.addr_max);
  EXPECT_EQ(back.bits_min, zone.bits_min);
  EXPECT_EQ(back.bits_max, zone.bits_max);
}

TEST(ZoneCodec, RejectsZeroRowSegments) {
  SegmentZone zone;
  zone.rows = 0;
  std::string buf;
  encode_zone(buf, zone);
  std::size_t pos = 0;
  EXPECT_THROW((void)decode_zone(buf, pos), DecodeError);
}

// --- campaign metadata codecs ---------------------------------------------

TEST(MetadataCodec, ScanProfileRoundTripsBitExact) {
  StoredScanProfile profile;
  profile.monitored_nodes = 900;
  profile.total_hours = 40941.25;
  profile.total_terabyte_hours = 319.921875;
  for (std::size_t b = 0; b < static_cast<std::size_t>(cluster::kStudyBlades); ++b)
    for (std::size_t s = 0; s < static_cast<std::size_t>(cluster::kSocsPerBlade); ++s) {
      profile.hours.at(b, s) =
          static_cast<double>(b) * 100.0 + static_cast<double>(s) + 0.125;
      profile.terabyte_hours.at(b, s) =
          static_cast<double>(b) + static_cast<double>(s) / 7.0;
    }
  profile.daily_terabyte_hours = {0.0, 1.5, 2.25, 1e-30, 3.9999999999};

  std::string buf;
  encode_scan_profile(buf, profile);
  std::size_t pos = 0;
  const StoredScanProfile back = decode_scan_profile(buf, pos);
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(back.monitored_nodes, profile.monitored_nodes);
  EXPECT_EQ(back.total_hours, profile.total_hours);
  EXPECT_EQ(back.total_terabyte_hours, profile.total_terabyte_hours);
  EXPECT_EQ(back.daily_terabyte_hours, profile.daily_terabyte_hours);
  for (std::size_t b = 0; b < static_cast<std::size_t>(cluster::kStudyBlades); ++b)
    for (std::size_t s = 0; s < static_cast<std::size_t>(cluster::kSocsPerBlade); ++s) {
      EXPECT_EQ(back.hours.at(b, s), profile.hours.at(b, s));
      EXPECT_EQ(back.terabyte_hours.at(b, s), profile.terabyte_hours.at(b, s));
    }
}

TEST(MetadataCodec, ExtractionMetaRoundTrips) {
  StoredExtractionMeta meta;
  meta.removed_nodes = {cluster::NodeId{0, 0}, cluster::NodeId{58, 2},
                        cluster::NodeId{62, 14}};
  meta.total_raw_logs = 25'000'000;
  meta.removed_raw_logs = 1'234'567;

  std::string buf;
  encode_extraction_meta(buf, meta);
  std::size_t pos = 0;
  const StoredExtractionMeta back = decode_extraction_meta(buf, pos);
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(back.removed_nodes, meta.removed_nodes);
  EXPECT_EQ(back.total_raw_logs, meta.total_raw_logs);
  EXPECT_EQ(back.removed_raw_logs, meta.removed_raw_logs);
}

}  // namespace
}  // namespace unp::store
