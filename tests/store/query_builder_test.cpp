// QueryBuilder: the single validation owner for every query front end.
// Invalid input must throw QueryError naming the field and never yield a
// Query object; valid input must round-trip into exactly the predicate the
// hand-built Query would carry.
#include <gtest/gtest.h>

#include <string>

#include "cluster/topology.hpp"
#include "store/query.hpp"
#include "store/query_builder.hpp"

namespace unp::store {
namespace {

TEST(QueryBuilderTest, DefaultBuildIsMatchAll) {
  const Query q = QueryBuilder().build();
  const Query match_all;
  EXPECT_EQ(q.describe(), match_all.describe());
}

TEST(QueryBuilderTest, TypedSettersRoundTrip) {
  const Query q = QueryBuilder()
                      .since(100)
                      .until(200)
                      .blade(7)
                      .soc(3)
                      .min_bits(2)
                      .max_bits(8)
                      .build();
  EXPECT_EQ(q.since, 100);
  EXPECT_EQ(q.until, 200);
  EXPECT_EQ(q.blade, 7);
  EXPECT_EQ(q.soc, 3);
  EXPECT_EQ(q.min_bits, 2);
  EXPECT_EQ(q.max_bits, 8);
}

TEST(QueryBuilderTest, NodeNameSetsBladeAndSoc) {
  const cluster::NodeId id{12, 4};
  const Query q = QueryBuilder().node(cluster::node_name(id)).build();
  EXPECT_EQ(q.blade, 12);
  EXPECT_EQ(q.soc, 4);
}

TEST(QueryBuilderTest, FaultClassNamesMapToBitRanges) {
  struct Case {
    const char* name;
    int min;
    int max;
  };
  for (const Case c : {Case{"single", 1, 1}, Case{"double", 2, 2},
                       Case{"few", 3, 8}, Case{"many", 9, 32},
                       Case{"multi", 2, 32}}) {
    const Query q = QueryBuilder().fault_class(c.name).build();
    EXPECT_EQ(q.min_bits, c.min) << c.name;
    EXPECT_EQ(q.max_bits, c.max) << c.name;
  }
  EXPECT_THROW((void)QueryBuilder().fault_class("quintuple"), QueryError);
}

TEST(QueryBuilderTest, OutOfRangeFieldsThrowNamingTheField) {
  try {
    (void)QueryBuilder().blade(cluster::kStudyBlades);
    FAIL() << "blade past the topology must throw";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "blade");
  }
  try {
    (void)QueryBuilder().soc(cluster::kSocsPerBlade);
    FAIL() << "soc past the topology must throw";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "soc");
  }
  EXPECT_THROW((void)QueryBuilder().blade(-1), QueryError);
  EXPECT_THROW((void)QueryBuilder().min_bits(0), QueryError);
  EXPECT_THROW((void)QueryBuilder().max_bits(33), QueryError);
}

TEST(QueryBuilderTest, CrossFieldValidationHappensAtBuild) {
  QueryBuilder builder;
  builder.min_bits(9).max_bits(3);  // individually valid, jointly absurd
  EXPECT_THROW((void)builder.build(), QueryError);
}

TEST(QueryBuilderTest, StringlySettersMatchTypedSetters) {
  const Query typed = QueryBuilder()
                          .since(1'440'000'000)
                          .until(1'440'100'000)
                          .blade(30)
                          .min_bits(2)
                          .max_bits(8)
                          .build();
  const Query stringly = QueryBuilder()
                             .set("since", "1440000000")
                             .set("until", "1440100000")
                             .set("blade", "30")
                             .set("min-bits", "2")
                             .set("max-bits", "8")
                             .build();
  EXPECT_EQ(stringly.describe(), typed.describe());

  const Query by_class = QueryBuilder().set("class", "multi").build();
  EXPECT_EQ(by_class.min_bits, 2);
  EXPECT_EQ(by_class.max_bits, 32);
}

TEST(QueryBuilderTest, StringlyParsingIsStrict) {
  // Whole-token base-10 only: trailing junk, empty, and overflow all fail.
  EXPECT_THROW((void)QueryBuilder().set("blade", "12x"), QueryError);
  EXPECT_THROW((void)QueryBuilder().set("blade", ""), QueryError);
  EXPECT_THROW((void)QueryBuilder().set("blade", "0x12"), QueryError);
  EXPECT_THROW((void)QueryBuilder().set("since", "not-a-time"), QueryError);
  EXPECT_THROW((void)QueryBuilder().set("min-bits", "999999999999999999999"),
               QueryError);
}

TEST(QueryBuilderTest, UnknownFieldThrowsNamingIt) {
  try {
    (void)QueryBuilder().set("rack", "3");
    FAIL() << "unknown field must throw";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "rack");
  }
}

TEST(QueryBuilderTest, MalformedNodeNamesThrow) {
  EXPECT_THROW((void)QueryBuilder().node(""), QueryError);
  EXPECT_THROW((void)QueryBuilder().node("7"), QueryError);
  EXPECT_THROW((void)QueryBuilder().node("ab-cd"), QueryError);
  EXPECT_THROW((void)QueryBuilder().node("99-99"), QueryError);
}

TEST(QueryBuilderTest, QueryErrorIsAContractViolationWithASentence) {
  try {
    (void)QueryBuilder().set("blade", "9999");
    FAIL();
  } catch (const ContractViolation& e) {  // catchable at the CLI top level
    EXPECT_NE(std::string(e.what()).find("blade"), std::string::npos);
  }
}

}  // namespace
}  // namespace unp::store
