// End-to-end tests of the UNPF store: builder -> reader round trip, query
// planning, zone-map pruning equivalence, thread invariance, sink replay.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "store/builder.hpp"
#include "store/handle.hpp"
#include "store/query.hpp"
#include "store/reader.hpp"
#include "telemetry/record.hpp"

using unp::telemetry::kNoTemperature;

namespace unp::store {
namespace {

constexpr TimePoint kStart = 1'440'000'000;
constexpr TimePoint kEnd = kStart + 200'000;

/// Synthetic population in canonical (time, node, address) order spanning
/// many blades, bit multiplicities, and both temperature states.
std::vector<analysis::FaultRecord> make_population(int n = 3000) {
  std::vector<analysis::FaultRecord> faults;
  Xoshiro256 rng(99);
  for (int i = 0; i < n; ++i) {
    analysis::FaultRecord f;
    f.first_seen = kStart + (static_cast<TimePoint>(i) * 60);
    f.last_seen = f.first_seen + static_cast<TimePoint>(rng.next() % 300);
    // Cluster nodes in time so node zones have pruning power.
    const int blade = (i / 200) % cluster::kStudyBlades;
    const int soc = static_cast<int>(rng.next() % cluster::kSocsPerBlade);
    f.node = cluster::NodeId{blade, soc};
    f.raw_logs = 1 + rng.next() % 40;
    f.virtual_address = (rng.next() % (1ull << 40));
    f.expected = static_cast<Word>(rng.next());
    Word mask = 1;
    const std::uint64_t roll = rng.next() % 100;
    if (roll >= 90) {  // ~10% multi-bit of varying class
      const int flips = 2 + static_cast<int>(rng.next() % 14);
      for (int b = 0; b < flips; ++b) mask |= Word{1} << (rng.next() % 32);
    }
    f.actual = f.expected ^ mask;
    f.temperature_c = i % 5 == 0 ? kNoTemperature
                                 : 18.0 + static_cast<double>(rng.next() % 25);
    faults.push_back(f);
  }
  std::sort(faults.begin(), faults.end(),
            [](const analysis::FaultRecord& a, const analysis::FaultRecord& b) {
              return std::tie(a.first_seen, a.node, a.virtual_address) <
                     std::tie(b.first_seen, b.node, b.virtual_address);
            });
  return faults;
}

StoreReader build_reader(const std::vector<analysis::FaultRecord>& faults,
                         std::size_t segment_rows = 128) {
  StoreBuilder builder(StoreBuilder::Config{segment_rows});
  builder.set_window(CampaignWindow{kStart, kEnd});
  builder.set_fingerprint(0xabcdef);
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();
  return StoreReader(StoreHandle::from_bytes(builder.encode()));
}

std::vector<analysis::FaultRecord> brute_force(
    const std::vector<analysis::FaultRecord>& faults, const Query& q) {
  std::vector<analysis::FaultRecord> out;
  for (const auto& f : faults) {
    if (q.matches(static_cast<std::uint32_t>(cluster::node_index(f.node)),
                  f.first_seen, f.flipped_bits()))
      out.push_back(f);
  }
  return out;
}

std::vector<Query> query_grid() {
  std::vector<Query> queries;
  queries.emplace_back();  // match-all
  {
    Query q;
    q.since = kStart + 20'000;
    q.until = kStart + 90'000;
    queries.push_back(q);
  }
  {
    Query q;
    q.blade = 7;
    queries.push_back(q);
  }
  {
    Query q;
    q.soc = 3;  // row-level only: node zones cannot prune a bare SoC
    queries.push_back(q);
  }
  {
    Query q;
    q.blade = 2;
    q.soc = 11;
    queries.push_back(q);
  }
  {
    Query q;
    q.min_bits = 2;  // class-aligned (multi-bit)
    queries.push_back(q);
  }
  {
    Query q;
    q.min_bits = 4;  // NOT class-aligned: needs the pattern pair
    q.max_bits = 10;
    queries.push_back(q);
  }
  {
    Query q;  // everything at once
    q.since = kStart + 5'000;
    q.until = kStart + 150'000;
    q.blade = 3;
    q.min_bits = 2;
    q.max_bits = 8;
    queries.push_back(q);
  }
  {
    Query q;  // empty result: time range before any fault
    q.until = kStart;
    queries.push_back(q);
  }
  return queries;
}

TEST(StoreQuery, MaterializeMatchesBruteForceAcrossQueryGrid) {
  const auto faults = make_population();
  const StoreReader reader = build_reader(faults);
  for (const Query& q : query_grid()) {
    ScanStats stats;
    const auto rows = reader.materialize(q, {}, &stats);
    EXPECT_EQ(rows, brute_force(faults, q)) << q.describe();
    EXPECT_EQ(stats.rows_matched, rows.size());
    EXPECT_EQ(stats.segments_total,
              stats.segments_pruned + stats.segments_scanned);
  }
}

TEST(StoreQuery, PrunedAndUnprunedScansAgree) {
  const auto faults = make_population();
  const StoreReader reader = build_reader(faults);
  for (const Query& q : query_grid()) {
    ScanStats pruned_stats;
    ScanStats full_stats;
    const auto pruned = reader.materialize(q, {nullptr, true}, &pruned_stats);
    const auto full = reader.materialize(q, {nullptr, false}, &full_stats);
    EXPECT_EQ(pruned, full) << q.describe();
    EXPECT_EQ(full_stats.segments_pruned, 0u);
    EXPECT_LE(pruned_stats.segments_scanned, full_stats.segments_scanned);
  }
}

TEST(StoreQuery, SelectivePredicatesActuallyPrune) {
  const auto faults = make_population();
  const StoreReader reader = build_reader(faults);

  Query time_slice;
  time_slice.since = kStart + 20'000;
  time_slice.until = kStart + 30'000;
  ScanStats stats;
  (void)reader.materialize(time_slice, {}, &stats);
  EXPECT_GT(stats.segments_pruned, 0u);
  EXPECT_LT(stats.segments_scanned, stats.segments_total);

  Query blade_slice;
  blade_slice.blade = 11;
  ScanStats blade_stats;
  (void)reader.materialize(blade_slice, {}, &blade_stats);
  EXPECT_GT(blade_stats.segments_pruned, 0u);
}

TEST(StoreQuery, ResultsAreThreadCountInvariant) {
  const auto faults = make_population();
  const StoreReader reader = build_reader(faults);
  ThreadPool pool(4);
  for (const Query& q : query_grid()) {
    const auto sequential = reader.materialize(q, {nullptr, true});
    const auto parallel = reader.materialize(q, {&pool, true});
    EXPECT_EQ(sequential, parallel) << q.describe();
  }
}

TEST(StoreQuery, CountOnlyProjectionDecodesNoPayloadColumns) {
  const auto faults = make_population();
  const StoreReader reader = build_reader(faults);
  Query q;
  q.min_bits = 2;
  q.projection = 0;
  ScanStats stats;
  const QueryResult result = reader.run(q, {}, &stats);
  EXPECT_EQ(result.rows, brute_force(faults, q).size());
  EXPECT_TRUE(result.columns.node_index.empty());
  EXPECT_TRUE(result.columns.expected.empty());
  EXPECT_TRUE(result.columns.temperature.empty());
}

TEST(StoreQuery, ClassAlignedBitRangesPlanOffTheClassColumn) {
  Query aligned;
  aligned.min_bits = 3;
  aligned.max_bits = 8;  // exactly kFewBit
  aligned.projection = 0;
  ASSERT_TRUE(aligned.class_range().has_value());
  EXPECT_EQ(aligned.class_range()->first, FaultClass::kFewBit);
  EXPECT_EQ(aligned.class_range()->second, FaultClass::kFewBit);
  EXPECT_EQ(aligned.required_columns() & kColPattern, 0u);
  EXPECT_NE(aligned.required_columns() & kColClass, 0u);

  Query unaligned;
  unaligned.min_bits = 4;
  unaligned.max_bits = 8;
  unaligned.projection = 0;
  EXPECT_FALSE(unaligned.class_range().has_value());
  EXPECT_NE(unaligned.required_columns() & kColPattern, 0u);

  Query unconstrained;
  unconstrained.projection = 0;
  EXPECT_TRUE(unconstrained.bits_unconstrained());
  EXPECT_EQ(unconstrained.required_columns(), 0u);
}

TEST(StoreQuery, RepresentativeBitsMatchesClassMinima) {
  EXPECT_EQ(representative_bits(FaultClass::kSingleBit), 1);
  EXPECT_EQ(representative_bits(FaultClass::kDoubleBit), 2);
  EXPECT_EQ(representative_bits(FaultClass::kFewBit), 3);
  EXPECT_EQ(representative_bits(FaultClass::kManyBit), 9);
}

TEST(StoreQuery, ReplayStreamsTheExactMatchSetThroughSinks) {
  struct Collector final : analysis::FaultSink {
    std::vector<analysis::FaultRecord> seen;
    CampaignWindow window{0, 0};
    void begin_faults(const analysis::FaultStreamContext& ctx) override {
      window = ctx.window;
    }
    void on_fault(const analysis::FaultRecord& f) override {
      seen.push_back(f);
    }
  };

  const auto faults = make_population();
  const StoreReader reader = build_reader(faults);
  Query q;
  q.blade = 5;
  Collector collector;
  analysis::FaultSink* sink = &collector;
  const auto kept = reader.replay(q, {&sink, 1});
  EXPECT_EQ(collector.seen, brute_force(faults, q));
  EXPECT_EQ(kept, collector.seen);
  EXPECT_EQ(collector.window.start, kStart);
  EXPECT_EQ(collector.window.end, kEnd);
}

TEST(StoreQuery, ExtractionResultRebuildsTheFullPopulation) {
  const auto faults = make_population();
  StoreBuilder builder(StoreBuilder::Config{256});
  builder.set_window(CampaignWindow{kStart, kEnd});
  StoredExtractionMeta meta;
  meta.removed_nodes = {cluster::NodeId{1, 2}};
  meta.total_raw_logs = 777'777;
  meta.removed_raw_logs = 111'111;
  builder.set_extraction_meta(meta);
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();

  const StoreReader reader{StoreHandle::from_bytes(builder.encode())};
  const analysis::ExtractionResult extraction = reader.extraction_result();
  EXPECT_EQ(extraction.faults, faults);
  EXPECT_EQ(extraction.removed_nodes, meta.removed_nodes);
  EXPECT_EQ(extraction.total_raw_logs, meta.total_raw_logs);
  EXPECT_EQ(extraction.removed_raw_logs, meta.removed_raw_logs);
}

TEST(StoreBuilderTest, SegmentRowsControlSegmentCount) {
  const auto faults = make_population(1000);
  StoreBuilder builder(StoreBuilder::Config{100});
  builder.set_window(CampaignWindow{kStart, kEnd});
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();
  EXPECT_EQ(builder.rows_written(), 1000u);
  EXPECT_EQ(builder.segments_written(), 10u);

  const StoreReader reader{StoreHandle::from_bytes(builder.encode())};
  EXPECT_EQ(reader.zones().size(), 10u);
  EXPECT_EQ(reader.rows_total(), 1000u);
}

TEST(StoreBuilderTest, EmptyStreamEncodesAndReadsBack) {
  StoreBuilder builder;
  builder.set_window(CampaignWindow{kStart, kEnd});
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  builder.end_faults();
  const StoreReader reader{StoreHandle::from_bytes(builder.encode())};
  EXPECT_EQ(reader.rows_total(), 0u);
  EXPECT_TRUE(reader.materialize(Query{}).empty());
}

TEST(StoreBuilderTest, WriteIsAtomicAndLeavesNoTempFile) {
  const auto faults = make_population(500);
  StoreBuilder builder;
  builder.set_window(CampaignWindow{kStart, kEnd});
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();

  const std::string path = ::testing::TempDir() + "store_atomic_test.unpf";
  builder.write(path);
  const StoreReader reader = StoreReader::open(path);
  EXPECT_EQ(reader.materialize(Query{}), faults);
  // No builder temp file may survive next to the target.
  EXPECT_EQ(std::remove(path.c_str()), 0);
  EXPECT_NE(std::remove((path + ".tmp." + std::to_string(::getpid())).c_str()),
            0);
}

TEST(StoreReaderTest, RejectsCorruptHeadersWithDecodeError) {
  const auto faults = make_population(200);
  StoreBuilder builder;
  builder.set_window(CampaignWindow{kStart, kEnd});
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();
  const std::string good = builder.encode();

  EXPECT_THROW((void)StoreHandle::from_bytes(std::string{}), DecodeError);
  EXPECT_THROW((void)StoreHandle::from_bytes(std::string("UNP")), DecodeError);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)StoreHandle::from_bytes(std::move(bad_magic)),
               DecodeError);

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(99);
  EXPECT_THROW((void)StoreHandle::from_bytes(std::move(bad_version)),
               DecodeError);

  // Truncation anywhere in the file must be loud.
  for (const std::size_t cut : {good.size() / 4, good.size() / 2,
                                good.size() - 1}) {
    EXPECT_THROW((void)StoreHandle::from_bytes(good.substr(0, cut)),
                 DecodeError)
        << cut;
  }

  // Trailing garbage after the declared data section must be loud too.
  std::string oversized = good + "junk";
  EXPECT_THROW((void)StoreHandle::from_bytes(std::move(oversized)),
               DecodeError);
}

TEST(StoreReaderTest, OpenMissingFileThrowsContractViolation) {
  EXPECT_THROW((void)StoreReader::open("/nonexistent/no.unpf"),
               ContractViolation);
}

TEST(StoreReaderTest, CorruptSegmentBodySurfacesDuringScanNotOpen) {
  const auto faults = make_population(400);
  StoreBuilder builder(StoreBuilder::Config{64});
  builder.set_window(CampaignWindow{kStart, kEnd});
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();
  std::string bytes = builder.encode();
  // Flip bytes near the end of the data section (inside the last segment).
  for (std::size_t i = bytes.size() - 16; i < bytes.size(); ++i)
    bytes[i] = static_cast<char>(~static_cast<unsigned char>(bytes[i]));

  // header+directory still parse
  const StoreReader reader{StoreHandle::from_bytes(std::move(bytes))};
  EXPECT_THROW((void)reader.materialize(Query{}), DecodeError);
}

TEST(StoreReaderTest, FromBytesRoundTrips) {
  // The canonical in-memory path (all call sites migrated off the removed
  // bytes-owning StoreReader constructor): StoreHandle::from_bytes owns and
  // parses, StoreReader views.  Same DecodeError contract as the file path.
  const auto faults = make_population(300);
  StoreBuilder builder;
  builder.set_window(CampaignWindow{kStart, kEnd});
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();

  const StoreReader reader{StoreHandle::from_bytes(builder.encode())};
  EXPECT_THROW(StoreHandle::from_bytes(std::string{}), DecodeError);
  EXPECT_EQ(reader.materialize(Query{}), faults);
}

}  // namespace
}  // namespace unp::store
