// StoreHandle: the shared mmap-backed open path.  Covers the I/O error
// contract (missing/unreadable files throw DecodeError naming the path —
// the silent-empty-buffer regression), metadata forwarding, and one handle
// feeding many readers.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "analysis/extraction.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "store/builder.hpp"
#include "store/handle.hpp"
#include "store/query.hpp"
#include "store/reader.hpp"
#include "telemetry/record.hpp"

namespace unp::store {
namespace {

constexpr TimePoint kStart = 1'440'000'000;
constexpr TimePoint kEnd = kStart + 100'000;

std::vector<analysis::FaultRecord> make_population(int n = 800) {
  std::vector<analysis::FaultRecord> faults;
  Xoshiro256 rng(7);
  for (int i = 0; i < n; ++i) {
    analysis::FaultRecord f;
    f.first_seen = kStart + static_cast<TimePoint>(i) * 100;
    f.last_seen = f.first_seen + 30;
    f.node = cluster::NodeId{(i / 50) % cluster::kStudyBlades,
                             static_cast<int>(rng.next() % 15)};
    f.raw_logs = 1 + rng.next() % 9;
    f.virtual_address = rng.next() % (1ull << 40);
    f.expected = static_cast<Word>(rng.next());
    f.actual = f.expected ^ (Word{1} << (rng.next() % 32));
    f.temperature_c = 20.0 + static_cast<double>(i % 30);
    faults.push_back(f);
  }
  std::sort(faults.begin(), faults.end(),
            [](const analysis::FaultRecord& a, const analysis::FaultRecord& b) {
              return std::tie(a.first_seen, a.node, a.virtual_address) <
                     std::tie(b.first_seen, b.node, b.virtual_address);
            });
  return faults;
}

analysis::ExtractionResult make_extraction(int n = 800) {
  analysis::ExtractionResult extraction;
  extraction.faults = make_population(n);
  extraction.total_raw_logs = 123'456;
  return extraction;
}

TEST(StoreHandleTest, OpenMissingFileNamesThePathInTheError) {
  const std::string path = ::testing::TempDir() + "does_not_exist.unpf";
  try {
    (void)StoreHandle::open(path);
    FAIL() << "open() of a missing file must throw";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error must name the missing path: " << e.what();
  }
}

TEST(StoreHandleTest, OpenPartitionedMissingPartNamesThePathInTheError) {
  // First part exists and is valid; the second is missing.  The error must
  // name the part that failed, not succeed with a truncated store.
  const analysis::ExtractionResult extraction = make_extraction(200);
  const analysis::ScanProfileSink scan;
  const std::string good = ::testing::TempDir() + "handle_part0.unpf";
  const std::string missing = ::testing::TempDir() + "handle_part_missing.unpf";
  write_store(good, extraction, scan);

  try {
    (void)StoreHandle::open_partitioned({good, missing});
    FAIL() << "open_partitioned() with a missing part must throw";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << "error must name the missing part: " << e.what();
  }
  EXPECT_EQ(std::remove(good.c_str()), 0);
}

TEST(StoreHandleTest, OpenDirectoryAsStoreThrowsDecodeError) {
  // A directory opens but cannot be read as a flat file; the failure must
  // be loud, not an empty store.
  EXPECT_THROW((void)StoreHandle::open(::testing::TempDir()), DecodeError);
}

TEST(StoreHandleTest, OpenEmptyFileThrowsDecodeError) {
  const std::string path = ::testing::TempDir() + "empty.unpf";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  EXPECT_THROW((void)StoreHandle::open(path), DecodeError);
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(StoreHandleTest, OneHandleFeedsManyReadersWithoutReparsing) {
  const auto faults = make_population();
  StoreBuilder builder(StoreBuilder::Config{64});
  builder.set_window(CampaignWindow{kStart, kEnd});
  builder.set_fingerprint(0x5eed);
  builder.begin_faults(analysis::FaultStreamContext{{kStart, kEnd}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();

  const std::shared_ptr<const StoreHandle> handle =
      StoreHandle::from_bytes(builder.encode());
  const StoreReader a(handle);
  const StoreReader b(handle);
  EXPECT_EQ(a.handle().get(), b.handle().get());
  EXPECT_EQ(a.fingerprint(), 0x5eedu);
  EXPECT_EQ(a.materialize(Query{}), b.materialize(Query{}));
  // Two readers + the local shared_ptr: shared, not copied.
  EXPECT_GE(handle.use_count(), 3);
}

TEST(StoreHandleTest, MappedOpenMatchesFromBytes) {
  const analysis::ExtractionResult extraction = make_extraction();
  const analysis::ScanProfileSink scan;
  const std::string path = ::testing::TempDir() + "handle_roundtrip.unpf";
  write_store(path, extraction, scan, 0xfeed);

  const std::shared_ptr<const StoreHandle> handle = StoreHandle::open(path);
  EXPECT_EQ(handle->fingerprint(), 0xfeedu);
  EXPECT_EQ(handle->part_count(), 1u);
  ASSERT_EQ(handle->part_paths().size(), 1u);
  EXPECT_EQ(handle->part_paths().front(), path);
  EXPECT_EQ(StoreReader(handle).materialize(Query{}), extraction.faults);
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(StoreHandleTest, PartitionedHandleMatchesSingleFileStore) {
  const analysis::ExtractionResult extraction = make_extraction(500);
  const analysis::ScanProfileSink scan;
  const std::string single = ::testing::TempDir() + "handle_single.unpf";
  const std::vector<std::string> parts = {
      ::testing::TempDir() + "handle_p0.unpf",
      ::testing::TempDir() + "handle_p1.unpf",
      ::testing::TempDir() + "handle_p2.unpf",
  };
  write_store(single, extraction, scan, 0xcafe);
  write_partitioned_store(parts, extraction, scan, 0xcafe);

  const std::shared_ptr<const StoreHandle> whole = StoreHandle::open(single);
  const std::shared_ptr<const StoreHandle> split =
      StoreHandle::open_partitioned(parts);
  EXPECT_EQ(split->part_count(), parts.size());
  EXPECT_EQ(split->part_paths(), parts);
  EXPECT_EQ(split->rows_total(), whole->rows_total());
  Query blade_query;
  blade_query.blade = 3;
  EXPECT_EQ(StoreReader(split).materialize(blade_query),
            StoreReader(whole).materialize(blade_query));
  EXPECT_EQ(std::remove(single.c_str()), 0);
  for (const std::string& p : parts) EXPECT_EQ(std::remove(p.c_str()), 0);
}

}  // namespace
}  // namespace unp::store
