// Store kernel equivalence: every supported ISA's column-decode and
// predicate kernels must be observationally identical to the scalar set —
// same outputs, same DecodeError offsets on malformed input — and a whole
// scan must return the same rows no matter which set runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/extraction.hpp"
#include "common/rng.hpp"
#include "common/simd_dispatch.hpp"
#include "store/builder.hpp"
#include "store/handle.hpp"
#include "store/kernels/kernels.hpp"
#include "store/query.hpp"
#include "store/reader.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::store::kernels {
namespace {

using telemetry::DecodeError;
using telemetry::put_varint;

/// A varint stream shaped like real store columns: mostly 1-byte values
/// (the SIMD fast path) with multi-byte values sprinkled in (the mixed-block
/// fallback), plus occasional maximal 10-byte encodings.
std::string make_varint_stream(std::vector<std::uint64_t>& values,
                               std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string bytes;
  values.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t roll = rng.next() % 100;
    std::uint64_t v;
    if (roll < 80)
      v = rng.next() % 128;  // 1 byte
    else if (roll < 95)
      v = 128 + rng.next() % (1u << 20);  // 2-3 bytes
    else
      v = rng.next();  // up to 10 bytes
    values.push_back(v);
    put_varint(bytes, v);
  }
  return bytes;
}

std::vector<Isa> isas() { return simd::supported_isas(); }

TEST(StoreKernelsTest, EveryIsaIsRegisteredAndSelfConsistent) {
  for (const Isa isa : isas()) {
    const StoreKernels& k = store_kernels_for(isa);
    EXPECT_EQ(k.isa, isa);
    EXPECT_NE(k.decode_varints, nullptr);
    EXPECT_NE(k.unpack_bits, nullptr);
    EXPECT_NE(k.mask_range_u32, nullptr);
    EXPECT_NE(k.mask_range_i64, nullptr);
    EXPECT_NE(k.mask_class, nullptr);
    EXPECT_NE(k.decode_zigzag_deltas, nullptr);
  }
  const StoreKernels& active = active_store_kernels();
  EXPECT_TRUE(simd::is_supported(active.isa));
}

TEST(StoreKernelsTest, DecodeVarintsMatchesScalarOnMixedStreams) {
  const StoreKernels& scalar = store_kernels_for(Isa::kScalar);
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{31}, std::size_t{32},
                                  std::size_t{1000}}) {
    std::vector<std::uint64_t> values;
    const std::string bytes = make_varint_stream(values, count, count + 17);
    std::vector<std::uint64_t> expect(count + 1, 0);
    const std::size_t expect_end =
        scalar.decode_varints(bytes, 0, count, expect.data());
    EXPECT_EQ(expect_end, bytes.size());
    EXPECT_TRUE(std::equal(values.begin(), values.end(), expect.begin()));

    for (const Isa isa : isas()) {
      std::vector<std::uint64_t> got(count + 1, 0);
      const std::size_t end =
          store_kernels_for(isa).decode_varints(bytes, 0, count, got.data());
      EXPECT_EQ(end, expect_end) << simd::to_string(isa);
      EXPECT_EQ(got, expect) << simd::to_string(isa);
    }
  }
}

TEST(StoreKernelsTest, DecodeVarintsTruncationThrowsIdenticalOffsets) {
  std::vector<std::uint64_t> values;
  const std::string bytes = make_varint_stream(values, 200, 5);
  // Cut the stream mid-value at several depths; every ISA must throw a
  // DecodeError with the scalar oracle's byte offset.
  for (const std::size_t cut :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{1}}) {
    const std::string_view truncated(bytes.data(), cut);
    std::uint64_t scalar_offset = 0;
    bool scalar_threw = false;
    std::vector<std::uint64_t> out(values.size(), 0);
    try {
      (void)store_kernels_for(Isa::kScalar)
          .decode_varints(truncated, 0, values.size(), out.data());
    } catch (const DecodeError& e) {
      scalar_threw = true;
      scalar_offset = e.byte_offset();
    }
    ASSERT_TRUE(scalar_threw) << cut;

    for (const Isa isa : isas()) {
      try {
        (void)store_kernels_for(isa).decode_varints(truncated, 0,
                                                    values.size(), out.data());
        FAIL() << simd::to_string(isa) << " accepted truncated input";
      } catch (const DecodeError& e) {
        EXPECT_EQ(e.byte_offset(), scalar_offset) << simd::to_string(isa);
      }
    }
  }
}

TEST(StoreKernelsTest, DecodeZigzagDeltasMatchesScalarAndUnfusedPath) {
  const StoreKernels& scalar = store_kernels_for(Isa::kScalar);
  for (const std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{33}, std::size_t{1000}}) {
    std::vector<std::uint64_t> values;
    const std::string bytes = make_varint_stream(values, count, count + 3);

    // The fused kernel must equal decode_varints followed by the original
    // zigzag-prefix loop (the pre-fusion decode_segment behaviour)...
    std::vector<std::uint64_t> unfused(count + 1, 0);
    (void)scalar.decode_varints(bytes, 0, count, unfused.data());
    std::uint64_t prev = 7;
    for (std::size_t i = 0; i < count; ++i) {
      prev += (unfused[i] >> 1) ^ (std::uint64_t{0} - (unfused[i] & 1));
      unfused[i] = prev;
    }
    std::vector<std::uint64_t> expect(count + 1, 0);
    const std::size_t expect_end =
        scalar.decode_zigzag_deltas(bytes, 0, count, 7, expect.data());
    EXPECT_EQ(expect_end, bytes.size());
    EXPECT_TRUE(std::equal(unfused.begin(), unfused.begin() +
                           static_cast<std::ptrdiff_t>(count), expect.begin()));

    // ...and every ISA must match the scalar oracle bit for bit.
    for (const Isa isa : isas()) {
      std::vector<std::uint64_t> got(count + 1, 0);
      const std::size_t end = store_kernels_for(isa).decode_zigzag_deltas(
          bytes, 0, count, 7, got.data());
      EXPECT_EQ(end, expect_end) << simd::to_string(isa);
      EXPECT_EQ(got, expect) << simd::to_string(isa);
    }
  }

  // Truncation mid-stream throws the scalar oracle's DecodeError offset.
  std::vector<std::uint64_t> values;
  const std::string bytes = make_varint_stream(values, 200, 9);
  const std::string_view truncated(bytes.data(), bytes.size() - 1);
  std::uint64_t scalar_offset = 0;
  std::vector<std::uint64_t> out(values.size(), 0);
  try {
    (void)scalar.decode_zigzag_deltas(truncated, 0, values.size(), 0,
                                      out.data());
    FAIL() << "scalar accepted truncated input";
  } catch (const DecodeError& e) {
    scalar_offset = e.byte_offset();
  }
  for (const Isa isa : isas()) {
    try {
      (void)store_kernels_for(isa).decode_zigzag_deltas(
          truncated, 0, values.size(), 0, out.data());
      FAIL() << simd::to_string(isa) << " accepted truncated input";
    } catch (const DecodeError& e) {
      EXPECT_EQ(e.byte_offset(), scalar_offset) << simd::to_string(isa);
    }
  }
}

TEST(StoreKernelsTest, UnpackBitsMatchesScalarAcrossAllWidths) {
  Xoshiro256 rng(42);
  for (int width = 1; width <= 64; ++width) {
    const std::size_t count = 200 + static_cast<std::size_t>(width);
    // Pack `count` random width-bit values LSB-first, the builder's layout.
    std::vector<std::uint64_t> values(count);
    const std::uint64_t mask =
        width == 64 ? ~0ull : (1ull << width) - 1;
    for (auto& v : values) v = rng.next() & mask;
    const std::size_t packed_bytes =
        (count * static_cast<std::size_t>(width) + 7) / 8;
    std::vector<unsigned char> packed(packed_bytes + 8, 0);  // slack ok
    std::size_t bit = 0;
    for (const std::uint64_t v : values) {
      for (int b = 0; b < width; ++b, ++bit)
        if ((v >> b) & 1) packed[bit / 8] |= static_cast<unsigned char>(1u << (bit % 8));
    }

    std::vector<std::uint64_t> expect(count, 0);
    store_kernels_for(Isa::kScalar)
        .unpack_bits(packed.data(), count, width, expect.data());
    EXPECT_EQ(expect, values) << "scalar disagrees with the packer, width "
                              << width;
    for (const Isa isa : isas()) {
      std::vector<std::uint64_t> got(count, 0);
      store_kernels_for(isa).unpack_bits(packed.data(), count, width,
                                         got.data());
      EXPECT_EQ(got, expect) << simd::to_string(isa) << " width " << width;
    }
  }
}

TEST(StoreKernelsTest, PredicateMasksMatchScalar) {
  Xoshiro256 rng(77);
  const std::size_t n = 4097;  // odd size: exercises every vector tail
  std::vector<std::uint32_t> u32(n);
  std::vector<std::int64_t> i64(n);
  std::vector<std::uint8_t> codes(n);
  for (std::size_t i = 0; i < n; ++i) {
    u32[i] = static_cast<std::uint32_t>(rng.next() % 1000);
    i64[i] = static_cast<std::int64_t>(rng.next() % 100'000) - 50'000;
    codes[i] = static_cast<std::uint8_t>(rng.next() % 4);
  }
  const std::vector<std::uint8_t> seed_mask = [&] {
    std::vector<std::uint8_t> m(n);
    for (auto& b : m) b = rng.next() % 2 ? 1 : 0;  // AND-into semantics
    return m;
  }();

  // Applies `apply` to scalar- and `isa`-kernel copies of the seed mask and
  // requires equal results (fresh vectors per check; AND-into semantics).
  const auto check = [&](Isa isa, const char* what,
                         auto&& apply) {
    std::vector<std::uint8_t> expect(seed_mask);
    std::vector<std::uint8_t> got(seed_mask);
    apply(store_kernels_for(Isa::kScalar), expect.data());
    apply(store_kernels_for(isa), got.data());
    EXPECT_EQ(got, expect) << simd::to_string(isa) << " " << what;
  };

  for (const Isa isa : isas()) {
    check(isa, "mask_range_u32",
          [&](const StoreKernels& k, std::uint8_t* mask) {
            k.mask_range_u32(u32.data(), n, 250, 700, mask);
          });
    check(isa, "mask_range_i64",
          [&](const StoreKernels& k, std::uint8_t* mask) {
            k.mask_range_i64(i64.data(), n, -10'000, 20'000, mask);
          });
    for (const int allowed : {0x1, 0x6, 0xf, 0x0}) {
      check(isa, "mask_class",
            [&](const StoreKernels& k, std::uint8_t* mask) {
              k.mask_class(codes.data(), n,
                           static_cast<std::uint8_t>(allowed), mask);
            });
    }
  }
}

TEST(StoreKernelsTest, WholeScanIsIsaInvariant) {
  constexpr TimePoint kStart = 1'440'000'000;
  std::vector<analysis::FaultRecord> faults;
  Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    analysis::FaultRecord f;
    f.first_seen = kStart + static_cast<TimePoint>(i) * 45;
    f.last_seen = f.first_seen + static_cast<TimePoint>(rng.next() % 500);
    f.node = cluster::NodeId{(i / 100) % cluster::kStudyBlades,
                             static_cast<int>(rng.next() % 15)};
    f.raw_logs = 1 + rng.next() % 30;
    f.virtual_address = rng.next() % (1ull << 40);
    f.expected = static_cast<Word>(rng.next());
    Word mask = 1;
    if (i % 9 == 0)
      for (int b = 0; b < 5; ++b) mask |= Word{1} << (rng.next() % 32);
    f.actual = f.expected ^ mask;
    f.temperature_c = i % 4 == 0 ? telemetry::kNoTemperature : 25.0;
    faults.push_back(f);
  }
  std::sort(faults.begin(), faults.end(),
            [](const analysis::FaultRecord& a, const analysis::FaultRecord& b) {
              return std::tie(a.first_seen, a.node, a.virtual_address) <
                     std::tie(b.first_seen, b.node, b.virtual_address);
            });
  StoreBuilder builder(StoreBuilder::Config{128});
  builder.set_window(CampaignWindow{kStart, kStart + 200'000});
  builder.begin_faults(
      analysis::FaultStreamContext{{kStart, kStart + 200'000}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();
  const StoreReader reader{StoreHandle::from_bytes(builder.encode())};

  std::vector<Query> queries;
  queries.emplace_back();
  {
    Query q;
    q.since = kStart + 10'000;
    q.until = kStart + 60'000;
    q.blade = 4;
    queries.push_back(q);
  }
  {
    Query q;
    q.min_bits = 2;
    queries.push_back(q);
  }

  for (const Query& q : queries) {
    ScanOptions scalar_options;
    scalar_options.kernels = &store_kernels_for(Isa::kScalar);
    const auto expect = reader.materialize(q, scalar_options);
    for (const Isa isa : isas()) {
      ScanOptions options;
      options.kernels = &store_kernels_for(isa);
      EXPECT_EQ(reader.materialize(q, options), expect)
          << simd::to_string(isa) << " on " << q.describe();
    }
  }
}

}  // namespace
}  // namespace unp::store::kernels
