// Server: transport, admin lines, store swap, and the shared-reader
// concurrency contract, over a real loopback socket.
//
// The render function used here is deliberately tiny — "count matching
// rows" — because these tests own the transport/lifecycle contract; the
// full query-language byte-identity contract lives with the query_render
// tests and the perf_serve gate.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "analysis/extraction.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "serve/server.hpp"
#include "store/builder.hpp"
#include "store/query_builder.hpp"
#include "store/reader.hpp"

namespace unp::serve {
namespace {

constexpr TimePoint kStart = 1'440'000'000;

/// Write a small store of `n` faults to a temp path and return the path.
std::string write_test_store(const std::string& name, int n,
                             std::uint64_t seed = 11) {
  std::vector<analysis::FaultRecord> faults;
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) {
    analysis::FaultRecord f;
    f.first_seen = kStart + static_cast<TimePoint>(i) * 10;
    f.last_seen = f.first_seen + 5;
    f.node = cluster::NodeId{(i / 20) % cluster::kStudyBlades,
                             static_cast<int>(rng.next() % 15)};
    f.raw_logs = 1 + rng.next() % 5;
    f.virtual_address = rng.next() % (1ull << 40);
    f.expected = static_cast<Word>(rng.next());
    f.actual = f.expected ^ 1u;
    f.temperature_c = 25.0;
    faults.push_back(f);
  }
  std::sort(faults.begin(), faults.end(),
            [](const analysis::FaultRecord& a, const analysis::FaultRecord& b) {
              return std::tie(a.first_seen, a.node, a.virtual_address) <
                     std::tie(b.first_seen, b.node, b.virtual_address);
            });
  analysis::ExtractionResult extraction;
  extraction.faults = std::move(faults);
  const analysis::ScanProfileSink scan;
  const std::string path = ::testing::TempDir() + name;
  store::write_store(path, extraction, scan, seed);
  return path;
}

/// Minimal deterministic render: a request line is a blank-separated list of
/// "field=value" predicates; the response is the matching row count.
std::string count_render(const std::string& line,
                         const store::StoreReader& reader) {
  store::QueryBuilder builder;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i == start) continue;
    const std::string token = line.substr(start, i - start);
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos)
      throw store::QueryError(token, "expects field=value");
    builder.set(token.substr(0, eq), token.substr(eq + 1));
  }
  store::Query query = builder.build();
  query.projection = 0;
  store::ScanStats stats;
  (void)reader.run(query, {}, &stats);
  return std::to_string(stats.rows_matched) + "\n";
}

/// Start a server over `paths` on an ephemeral port, or skip the test when
/// the sandbox forbids loopback sockets.
std::unique_ptr<Server> start_server(const std::vector<std::string>& paths,
                                     std::size_t workers = 4,
                                     std::size_t cache = 64) {
  auto server = std::make_unique<Server>(
      Server::Config{paths, 0, workers, cache}, count_render);
  server->start();
  return server;
}

Response ask(std::uint16_t port, const std::string& line) {
  const int fd = connect_local(port);
  const Response r = roundtrip(fd, line);
  (void)::close(fd);
  return r;
}

TEST(ServeServerTest, PingStatsAndQueriesOverLoopback) {
  const std::string path = write_test_store("serve_basic.unpf", 300);
  std::unique_ptr<Server> server;
  try {
    server = start_server({path});
  } catch (const ContractViolation& e) {
    GTEST_SKIP() << "loopback sockets unavailable: " << e.what();
  }
  const std::uint16_t port = server->port();
  ASSERT_NE(port, 0);

  EXPECT_EQ(ask(port, "ping").body, "pong\n");

  const Response count = ask(port, "since=0");
  EXPECT_TRUE(count.ok);
  EXPECT_EQ(count.body, "300\n");

  const Response blade = ask(port, "blade=0");
  EXPECT_TRUE(blade.ok);
  // Blades rotate every 20 rows across kStudyBlades; with 300 rows blade 0
  // owns rows [0,20).
  EXPECT_EQ(blade.body, "20\n");

  const Response stats = ask(port, "stats");
  EXPECT_TRUE(stats.ok);
  EXPECT_NE(stats.body.find("generation 1\n"), std::string::npos);
  EXPECT_NE(stats.body.find("queries 2\n"), std::string::npos);

  server->stop();
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(ServeServerTest, RejectedRequestsBecomeErrResponsesNotDeadServers) {
  const std::string path = write_test_store("serve_err.unpf", 50);
  std::unique_ptr<Server> server;
  try {
    server = start_server({path});
  } catch (const ContractViolation& e) {
    GTEST_SKIP() << "loopback sockets unavailable: " << e.what();
  }
  const std::uint16_t port = server->port();

  const Response bad = ask(port, "blade=9999");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.body.find("blade"), std::string::npos);

  const Response unknown = ask(port, "rack=2");
  EXPECT_FALSE(unknown.ok);

  // The worker survives the rejected requests on the same connection too.
  const int fd = connect_local(port);
  EXPECT_FALSE(roundtrip(fd, "blade=9999").ok);
  const Response after = roundtrip(fd, "blade=1");
  EXPECT_TRUE(after.ok);
  EXPECT_EQ(after.body, "20\n");
  (void)::close(fd);

  server->stop();
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(ServeServerTest, ConcurrentClientsGetByteIdenticalResponses) {
  const std::string path = write_test_store("serve_conc.unpf", 600);
  std::unique_ptr<Server> server;
  try {
    // Cache off: every response must come from a fresh concurrent scan of
    // the shared handle, not from a memoized body.
    server = start_server({path}, 8, 0);
  } catch (const ContractViolation& e) {
    GTEST_SKIP() << "loopback sockets unavailable: " << e.what();
  }
  const std::uint16_t port = server->port();

  const std::vector<std::string> workload = {
      "since=0", "blade=0", "blade=1", "min-bits=1", "class=single", "soc=3"};
  // Serial oracle first, then 8 threads replaying the same lines.
  std::vector<std::string> expected;
  for (const std::string& line : workload) {
    const Response r = ask(port, line);
    ASSERT_TRUE(r.ok) << line;
    expected.push_back(r.body);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 10;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const int fd = connect_local(port);
      for (int r = 0; r < kRounds; ++r) {
        for (std::size_t w = 0; w < workload.size(); ++w) {
          const Response resp = roundtrip(fd, workload[w]);
          if (!resp.ok || resp.body != expected[w])
            ++mismatches[static_cast<std::size_t>(t)];
        }
      }
      (void)::close(fd);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(std::accumulate(mismatches.begin(), mismatches.end(), 0), 0);

  server->stop();
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(ServeServerTest, SwapServesTheNewStoreAndInvalidatesTheCache) {
  const std::string old_path = write_test_store("serve_old.unpf", 100);
  const std::string new_path = write_test_store("serve_new.unpf", 250, 12);
  std::unique_ptr<Server> server;
  try {
    server = start_server({old_path});
  } catch (const ContractViolation& e) {
    GTEST_SKIP() << "loopback sockets unavailable: " << e.what();
  }
  const std::uint16_t port = server->port();

  EXPECT_EQ(ask(port, "since=0").body, "100\n");
  EXPECT_EQ(ask(port, "since=0").body, "100\n");  // cached
  Server::Stats stats = server->stats();
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.entries, 1u);

  const Response swapped = ask(port, "swap " + new_path);
  EXPECT_TRUE(swapped.ok);
  // Same request line, new generation: the stale "100\n" can never hit.
  EXPECT_EQ(ask(port, "since=0").body, "250\n");
  stats = server->stats();
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(stats.cache.entries, 1u);  // old generation reclaimed

  server->stop();
  EXPECT_EQ(std::remove(old_path.c_str()), 0);
  EXPECT_EQ(std::remove(new_path.c_str()), 0);
}

TEST(ServeServerTest, FailedSwapKeepsTheOldStoreServing) {
  const std::string path = write_test_store("serve_keep.unpf", 80);
  std::unique_ptr<Server> server;
  try {
    server = start_server({path});
  } catch (const ContractViolation& e) {
    GTEST_SKIP() << "loopback sockets unavailable: " << e.what();
  }
  const std::uint16_t port = server->port();

  const Response bad = ask(port, "swap /nonexistent/nowhere.unpf");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.body.find("/nonexistent/nowhere.unpf"), std::string::npos);
  EXPECT_EQ(server->stats().generation, 1u);
  EXPECT_EQ(ask(port, "since=0").body, "80\n");

  server->stop();
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(ServeServerTest, ShutdownLineReleasesWait) {
  const std::string path = write_test_store("serve_shutdown.unpf", 10);
  std::unique_ptr<Server> server;
  try {
    server = start_server({path});
  } catch (const ContractViolation& e) {
    GTEST_SKIP() << "loopback sockets unavailable: " << e.what();
  }
  const Response bye = ask(server->port(), "shutdown");
  EXPECT_TRUE(bye.ok);
  server->wait();  // must return because a client asked for shutdown
  server->stop();
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(ServeServerTest, StartThrowsDecodeErrorForAMissingStore) {
  Server server(Server::Config{{"/nonexistent/no.unpf"}, 0, 2, 0},
                count_render);
  EXPECT_THROW(server.start(), store::DecodeError);
}

TEST(ServeServerTest, FrameResponseRoundTrips) {
  EXPECT_EQ(frame_response(true, "abc"), "OK 3\nabc");
  EXPECT_EQ(frame_response(false, "nope"), "ERR 4\nnope");
  EXPECT_EQ(frame_response(true, ""), "OK 0\n");
}

}  // namespace
}  // namespace unp::serve
