// ResultCache: bounded LRU of rendered responses keyed by store generation.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/result_cache.hpp"

namespace unp::serve {
namespace {

TEST(ResultCacheTest, MissThenHitWithCounters) {
  ResultCache cache(8);
  EXPECT_EQ(cache.get(1, "--count"), std::nullopt);
  cache.put(1, "--count", "42\n");
  const std::optional<std::string> hit = cache.get(1, "--count");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "42\n");

  const ResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(ResultCacheTest, GenerationIsPartOfTheKey) {
  ResultCache cache(8);
  cache.put(1, "--count", "old\n");
  cache.put(2, "--count", "new\n");
  EXPECT_EQ(cache.get(1, "--count"), "old\n");
  EXPECT_EQ(cache.get(2, "--count"), "new\n");
  // A request whose text embeds a generation-like prefix must not collide
  // with a different generation's entry (the key composition is injective).
  cache.put(1, "2\n--count", "sneaky\n");
  EXPECT_EQ(cache.get(2, "--count"), "new\n");
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.put(1, "a", "A");
  cache.put(1, "b", "B");
  EXPECT_TRUE(cache.get(1, "a").has_value());  // refresh a; b is now LRU
  cache.put(1, "c", "C");                      // evicts b
  EXPECT_TRUE(cache.get(1, "a").has_value());
  EXPECT_FALSE(cache.get(1, "b").has_value());
  EXPECT_TRUE(cache.get(1, "c").has_value());
  EXPECT_EQ(cache.counters().entries, 2u);
}

TEST(ResultCacheTest, PutOfExistingKeyReplacesTheResponse) {
  ResultCache cache(4);
  cache.put(1, "a", "first");
  cache.put(1, "a", "second");
  EXPECT_EQ(cache.get(1, "a"), "second");
  EXPECT_EQ(cache.counters().entries, 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.put(1, "a", "A");
  EXPECT_FALSE(cache.get(1, "a").has_value());
  EXPECT_EQ(cache.counters().entries, 0u);
}

TEST(ResultCacheTest, InvalidateDropsEveryOtherGeneration) {
  ResultCache cache(16);
  cache.put(1, "a", "A1");
  cache.put(1, "b", "B1");
  cache.put(2, "a", "A2");
  cache.invalidate(2);  // the swap just installed generation 2
  EXPECT_FALSE(cache.get(1, "a").has_value());
  EXPECT_FALSE(cache.get(1, "b").has_value());
  EXPECT_EQ(cache.get(2, "a"), "A2");
  EXPECT_EQ(cache.counters().entries, 1u);
}

TEST(ResultCacheTest, ConcurrentGetPutStaysConsistent) {
  // Hammer one small cache from several threads; every hit must return the
  // exact bytes put for that key (no torn/crossed responses).
  ResultCache cache(32);
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> wrong{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "req-" + std::to_string((t + i) % 40);
        const std::string value = "body-of-" + key;
        if (i % 3 == 0) cache.put(7, key, value);
        const std::optional<std::string> got = cache.get(7, key);
        if (got.has_value() && *got != value) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace unp::serve
