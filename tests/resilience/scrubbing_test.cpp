#include "resilience/scrubbing.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace unp::resilience {
namespace {

using analysis::FaultRecord;

FaultRecord fault(cluster::NodeId node, TimePoint t, std::uint64_t vaddr,
                  Word flip = 0x1u) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.virtual_address = vaddr;
  f.expected = 0xFFFFFFFFu;
  f.actual = 0xFFFFFFFFu ^ flip;
  return f;
}

TEST(Scrubbing, AnalyticScalesWithIntervalSquaredOverPeriods) {
  ScrubbingConfig daily;
  daily.scrub_interval_h = 24.0;
  ScrubbingConfig hourly;
  hourly.scrub_interval_h = 1.0;
  const double rate = 1e-3;
  const std::uint64_t bytes = 4ULL << 30;
  const double a = analytic_accumulation_per_node_year(rate, bytes, daily);
  const double b = analytic_accumulation_per_node_year(rate, bytes, hourly);
  // lambda^2/(2W) per period x periods/year => linear in the interval.
  EXPECT_NEAR(a / b, 24.0, 1e-6);
  EXPECT_GT(a, 0.0);
}

TEST(Scrubbing, AnalyticZeroRate) {
  EXPECT_DOUBLE_EQ(
      analytic_accumulation_per_node_year(0.0, 4ULL << 30, ScrubbingConfig{}),
      0.0);
}

TEST(Scrubbing, ReplayDetectsSameWordPairWithinPeriod) {
  // Two different bits of the same 8-byte ECC word, 2 h apart.
  std::vector<FaultRecord> faults{
      fault({1, 1}, 1000, 4096, 0x1u),
      fault({1, 1}, 1000 + 2 * kSecondsPerHour, 4100, 0x2u)};
  ScrubbingConfig config;
  config.scrub_interval_h = 24.0;
  const ScrubbingOutcome outcome = replay_scrubbing(faults, config);
  EXPECT_EQ(outcome.accumulations, 1u);
  EXPECT_EQ(outcome.distinct_bit_accumulations, 1u);
}

TEST(Scrubbing, ReplayIgnoresPairsBeyondPeriod) {
  std::vector<FaultRecord> faults{
      fault({1, 1}, 1000, 4096),
      fault({1, 1}, 1000 + 48 * kSecondsPerHour, 4100, 0x2u)};
  ScrubbingConfig config;
  config.scrub_interval_h = 24.0;
  EXPECT_EQ(replay_scrubbing(faults, config).accumulations, 0u);
}

TEST(Scrubbing, SameBitReleakIsNotUncorrectable) {
  // The weak-bit signature: identical flip twice - re-corrected, not
  // accumulated as a double.
  std::vector<FaultRecord> faults{
      fault({4, 5}, 1000, 4096, 0x200u),
      fault({4, 5}, 2000, 4096, 0x200u)};
  ScrubbingConfig config;
  const ScrubbingOutcome outcome = replay_scrubbing(faults, config);
  EXPECT_EQ(outcome.accumulations, 1u);
  EXPECT_EQ(outcome.distinct_bit_accumulations, 0u);
}

TEST(Scrubbing, DifferentWordsOrNodesNeverPair) {
  std::vector<FaultRecord> faults{
      fault({1, 1}, 1000, 0),
      fault({1, 1}, 1001, 8),      // next ECC word
      fault({2, 2}, 1002, 0)};     // other node, same address
  const ScrubbingOutcome outcome = replay_scrubbing(faults, ScrubbingConfig{});
  EXPECT_EQ(outcome.accumulations, 0u);
}

TEST(Scrubbing, SweepMonotoneInInterval) {
  // Longer scrub intervals can only accumulate more pairs.
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 50; ++i) {
    faults.push_back(fault({1, 1}, 1000 + i * 10 * kSecondsPerHour, 4096,
                           (i % 2) ? 0x1u : 0x2u));
  }
  const auto sweep = scrubbing_sweep(faults, {1.0, 12.0, 48.0, 400.0});
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].accumulations, sweep[i - 1].accumulations);
  }
  EXPECT_EQ(sweep.back().accumulations, 49u);  // every consecutive pair
}

TEST(Scrubbing, InvalidConfigThrows) {
  ScrubbingConfig bad;
  bad.scrub_interval_h = 0.0;
  EXPECT_THROW((void)replay_scrubbing({}, bad), ContractViolation);
}

}  // namespace
}  // namespace unp::resilience
