#include "resilience/placement.hpp"

#include <gtest/gtest.h>

#include "resilience/checkpoint.hpp"

namespace unp::resilience {
namespace {

using analysis::FaultRecord;

FaultRecord fault(cluster::NodeId node, TimePoint t) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.expected = 0xFFFFFFFFu;
  f.actual = 0xFFFFFFFEu;
  return f;
}

std::vector<cluster::NodeId> small_fleet(int n) {
  std::vector<cluster::NodeId> fleet;
  for (int i = 0; i < n; ++i) fleet.push_back(cluster::node_from_index(i * 3 + 1));
  return fleet;
}

TEST(Placement, NoFaultsNoFailures) {
  const CampaignWindow w;
  const auto fleet = small_fleet(100);
  const PlacementComparison cmp = compare_placements({}, w, fleet);
  EXPECT_GT(cmp.random.jobs, 1000u);
  EXPECT_EQ(cmp.random.failed_jobs, 0u);
  EXPECT_EQ(cmp.history_aware.failed_jobs, 0u);
  EXPECT_EQ(cmp.random.jobs, cmp.history_aware.jobs);  // same job stream
}

TEST(Placement, HistoryAwareAvoidsLoudNodes) {
  // Two chronically loud nodes erring daily: random placement keeps landing
  // jobs on them; history-aware steers away after the first day.
  const CampaignWindow w;
  const auto fleet = small_fleet(120);
  std::vector<FaultRecord> faults;
  for (int d = 0; d < static_cast<int>(w.duration_days()); ++d) {
    for (int k = 0; k < 5; ++k) {
      faults.push_back(fault(fleet[3], w.start + d * kSecondsPerDay + k * 3000));
      faults.push_back(fault(fleet[77], w.start + d * kSecondsPerDay + k * 2900));
    }
  }
  JobMix mix;
  mix.nodes_min = 16;
  mix.nodes_max = 32;
  const PlacementComparison cmp = compare_placements(faults, w, fleet, mix);
  EXPECT_GT(cmp.random.failure_rate(), 0.1);
  EXPECT_LT(cmp.history_aware.failure_rate(), 0.02);
  EXPECT_GT(cmp.improvement(), 5.0);
  EXPECT_GT(cmp.random.node_hours_lost, cmp.history_aware.node_hours_lost);
}

TEST(Placement, UniformFaultsGiveNoEdge) {
  // Errors spread evenly over the fleet: history carries no signal, both
  // policies should fail at comparable rates.
  const CampaignWindow w;
  const auto fleet = small_fleet(100);
  std::vector<FaultRecord> faults;
  RngStream rng(9);
  for (int i = 0; i < 400; ++i) {
    const auto& node = fleet[rng.uniform_u64(fleet.size())];
    faults.push_back(fault(node, w.start + static_cast<TimePoint>(rng.uniform_u64(
                                     static_cast<std::uint64_t>(
                                         w.duration_seconds())))));
  }
  const PlacementComparison cmp = compare_placements(faults, w, fleet);
  EXPECT_GT(cmp.random.failed_jobs, 0u);
  EXPECT_GT(cmp.history_aware.failed_jobs, 0u);
  // No more than a 4x separation either way.
  const double a = cmp.random.failure_rate();
  const double b = cmp.history_aware.failure_rate();
  EXPECT_LT(std::max(a, b) / std::max(1e-9, std::min(a, b)), 4.0);
}

TEST(Placement, Deterministic) {
  const CampaignWindow w;
  const auto fleet = small_fleet(80);
  std::vector<FaultRecord> faults{fault(fleet[0], w.start + 1000)};
  const PlacementComparison a = compare_placements(faults, w, fleet, JobMix{}, 7);
  const PlacementComparison b = compare_placements(faults, w, fleet, JobMix{}, 7);
  EXPECT_EQ(a.random.failed_jobs, b.random.failed_jobs);
  EXPECT_EQ(a.history_aware.failed_jobs, b.history_aware.failed_jobs);
}

TEST(TraceCheckpoint, NoFaultsPureOverhead) {
  TraceJobConfig config;
  config.work_hours = 100.0;
  config.checkpoint_cost_h = 0.25;
  const TraceJobOutcome outcome = simulate_checkpoint_trace(
      {}, config, [](TimePoint) { return 10.0; });
  EXPECT_EQ(outcome.failures, 0u);
  EXPECT_DOUBLE_EQ(outcome.work_hours, 100.0);
  // 10 segments of 10h + 10 checkpoints of 0.25h.
  EXPECT_NEAR(outcome.wall_hours, 102.5, 0.01);
  EXPECT_NEAR(outcome.efficiency(), 100.0 / 102.5, 1e-6);
}

TEST(TraceCheckpoint, FaultCostsPartialSegment) {
  TraceJobConfig config;
  config.work_hours = 10.0;
  config.checkpoint_cost_h = 0.0;
  config.restart_cost_h = 1.0;
  config.start = 0;
  // One fault 5.5 h in: loses 0.5 h of the second 5 h segment.
  const std::vector<TimePoint> faults{
      static_cast<TimePoint>(5.5 * kSecondsPerHour)};
  const TraceJobOutcome outcome = simulate_checkpoint_trace(
      faults, config, [](TimePoint) { return 5.0; });
  EXPECT_EQ(outcome.failures, 1u);
  EXPECT_NEAR(outcome.lost_hours, 0.5, 0.01);
  EXPECT_NEAR(outcome.restart_hours, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(outcome.work_hours, 10.0);
  // 5 work + fault at 5.5 + 1 restart -> resume at 6.5, then 5 more work.
  EXPECT_NEAR(outcome.wall_hours, 11.5, 0.01);
}

TEST(TraceCheckpoint, BurstyTraceFavorsAdaptivePolicy) {
  // Faults every 20 min during 'degraded' days, nothing otherwise.
  const CampaignWindow w;
  analysis::RegimeResult regime;
  const auto days = static_cast<std::size_t>(w.duration_days()) + 2;
  regime.degraded.assign(days, false);
  std::vector<TimePoint> trace;
  for (int d = 20; d < 300; d += 10) {
    regime.degraded[static_cast<std::size_t>(d)] = true;
    for (int k = 0; k < 72; ++k) {
      trace.push_back(w.start + d * kSecondsPerDay + k * 1200);
    }
  }
  regime.normal_days = days - 28;
  regime.degraded_days = 28;
  regime.normal_errors = 0;
  regime.degraded_errors = 28 * 72;
  regime.normal_mtbf_hours = 2000.0;
  regime.degraded_mtbf_hours = 24.0 / 72.0;

  TraceJobConfig config;
  config.work_hours = 3000.0;
  config.start = w.start;
  const TracePolicyComparison cmp =
      compare_checkpoint_traces(trace, regime, w, config);
  EXPECT_GT(cmp.normal_interval_hours, cmp.degraded_interval_hours * 10.0);
  EXPECT_GT(cmp.adaptive_policy.efficiency(), cmp.static_policy.efficiency());
  EXPECT_DOUBLE_EQ(cmp.adaptive_policy.work_hours, 3000.0);
  EXPECT_DOUBLE_EQ(cmp.static_policy.work_hours, 3000.0);
}

}  // namespace
}  // namespace unp::resilience
