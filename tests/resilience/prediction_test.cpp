#include "resilience/prediction.hpp"

#include <gtest/gtest.h>

namespace unp::resilience {
namespace {

using analysis::FaultRecord;

FaultRecord fault(cluster::NodeId node, TimePoint t) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.expected = 0xFFFFFFFFu;
  f.actual = 0xFFFFFFFEu;
  return f;
}

void add_day(std::vector<FaultRecord>& faults, cluster::NodeId node,
             const CampaignWindow& w, int day, int count) {
  for (int i = 0; i < count; ++i) {
    faults.push_back(fault(node, w.start + day * kSecondsPerDay + 3600 + i * 60));
  }
}

TEST(Prediction, SustainedBurstIsPredicted) {
  // Errors on days 10..14: days 11..15 carry a warning (window 3, trigger 3);
  // days 11..14 are bad -> 4 TP, day 15 quiet -> 1 FP, day 10 unforeseen.
  const CampaignWindow w;
  std::vector<FaultRecord> faults;
  for (int d = 10; d <= 14; ++d) add_day(faults, {1, 1}, w, d, 10);

  const PredictionEvaluation eval =
      evaluate_predictor(faults, w, PredictorConfig{});
  EXPECT_EQ(eval.true_positives, 4u);
  EXPECT_EQ(eval.false_negatives, 1u);  // day 10, the burst's first day
  EXPECT_EQ(eval.false_positives, 3u);  // the 3-day window's trailing warnings
  EXPECT_NEAR(eval.recall(), 0.8, 1e-9);
  EXPECT_DOUBLE_EQ(eval.forewarned_fraction(), 0.8);
}

TEST(Prediction, IsolatedErrorsNeverFlagged) {
  const CampaignWindow w;
  std::vector<FaultRecord> faults;
  add_day(faults, {1, 1}, w, 10, 1);
  add_day(faults, {1, 1}, w, 100, 1);
  const PredictionEvaluation eval =
      evaluate_predictor(faults, w, PredictorConfig{});
  EXPECT_EQ(eval.true_positives, 0u);
  EXPECT_EQ(eval.false_positives, 0u);
  EXPECT_EQ(eval.flagged_node_days, 0u);
}

TEST(Prediction, ExclusionRemovesNode) {
  const CampaignWindow w;
  std::vector<FaultRecord> faults;
  for (int d = 10; d <= 20; ++d) add_day(faults, {2, 4}, w, d, 50);
  PredictorConfig config;
  config.excluded_nodes.push_back({2, 4});
  const PredictionEvaluation eval = evaluate_predictor(faults, w, config);
  EXPECT_EQ(eval.total_errors, 0u);
  EXPECT_EQ(eval.true_positives, 0u);
}

TEST(Prediction, LongerWindowExtendsWarnings) {
  const CampaignWindow w;
  std::vector<FaultRecord> faults;
  add_day(faults, {1, 1}, w, 10, 10);
  add_day(faults, {1, 1}, w, 13, 10);  // 3-day gap

  PredictorConfig short_window;
  short_window.history_days = 1;
  PredictorConfig long_window;
  long_window.history_days = 5;
  const PredictionEvaluation a = evaluate_predictor(faults, w, short_window);
  const PredictionEvaluation b = evaluate_predictor(faults, w, long_window);
  // The long window still remembers day 10 when day 13 arrives.
  EXPECT_EQ(a.true_positives, 0u);
  EXPECT_EQ(b.true_positives, 1u);
  EXPECT_GT(b.flagged_node_days, a.flagged_node_days);
}

TEST(Prediction, MetricsDegenerateCases) {
  PredictionEvaluation empty;
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.f1(), 0.0);
  EXPECT_DOUBLE_EQ(empty.forewarned_fraction(), 0.0);

  PredictionEvaluation perfect;
  perfect.true_positives = 10;
  EXPECT_DOUBLE_EQ(perfect.precision(), 1.0);
  EXPECT_DOUBLE_EQ(perfect.recall(), 1.0);
  EXPECT_DOUBLE_EQ(perfect.f1(), 1.0);
}

TEST(Prediction, WeakBitSignatureScoresWell) {
  // Multi-day episodes every ~10 days: after the first day of each episode
  // the predictor should be right most of the time.
  const CampaignWindow w;
  std::vector<FaultRecord> faults;
  for (int episode = 0; episode < 10; ++episode) {
    const int start = 20 + episode * 12;
    for (int d = 0; d < 3; ++d) add_day(faults, {4, 5}, w, start + d, 30);
  }
  const PredictionEvaluation eval =
      evaluate_predictor(faults, w, PredictorConfig{});
  EXPECT_GT(eval.recall(), 0.6);
  EXPECT_GT(eval.forewarned_fraction(), 0.6);
}

}  // namespace
}  // namespace unp::resilience
