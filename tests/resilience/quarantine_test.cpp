#include "resilience/quarantine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace unp::resilience {
namespace {

using analysis::FaultRecord;

FaultRecord fault(cluster::NodeId node, TimePoint t) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.expected = 0xFFFFFFFFu;
  f.actual = 0xFFFFFFFEu;
  return f;
}

std::vector<FaultRecord> burst(cluster::NodeId node, const CampaignWindow& w,
                               int day, int count, int spacing_s = 600) {
  std::vector<FaultRecord> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(fault(node, w.start + day * kSecondsPerDay + 3600 +
                                  i * spacing_s));
  }
  return out;
}

TEST(Quarantine, DisabledCountsEverything) {
  const CampaignWindow w;
  const auto faults = burst({1, 1}, w, 10, 20);
  const QuarantineOutcome outcome =
      simulate_quarantine(faults, w, QuarantineConfig{});
  EXPECT_EQ(outcome.counted_errors, 20u);
  EXPECT_EQ(outcome.suppressed_errors, 0u);
  EXPECT_DOUBLE_EQ(outcome.node_days_quarantined, 0.0);
}

TEST(Quarantine, TriggersAfterThreshold) {
  const CampaignWindow w;
  const auto faults = burst({1, 1}, w, 10, 20);
  QuarantineConfig config;
  config.period_days = 5;
  const QuarantineOutcome outcome = simulate_quarantine(faults, w, config);
  // Errors 1..4 counted (4th crosses the >3 threshold), the rest absorbed.
  EXPECT_EQ(outcome.counted_errors, 4u);
  EXPECT_EQ(outcome.suppressed_errors, 16u);
  EXPECT_EQ(outcome.quarantine_entries, 1u);
  EXPECT_NEAR(outcome.node_days_quarantined, 5.0, 0.01);
}

TEST(Quarantine, RecurringBurstsRetrigger) {
  const CampaignWindow w;
  std::vector<analysis::FaultRecord> faults = burst({1, 1}, w, 10, 20);
  auto later = burst({1, 1}, w, 30, 20);  // after the quarantine expires
  faults.insert(faults.end(), later.begin(), later.end());
  QuarantineConfig config;
  config.period_days = 5;
  const QuarantineOutcome outcome = simulate_quarantine(faults, w, config);
  EXPECT_EQ(outcome.quarantine_entries, 2u);
  EXPECT_EQ(outcome.counted_errors, 8u);
}

TEST(Quarantine, BurstInsideQuarantineAbsorbed) {
  const CampaignWindow w;
  std::vector<analysis::FaultRecord> faults = burst({1, 1}, w, 10, 20);
  auto inside = burst({1, 1}, w, 12, 20);  // still quarantined
  faults.insert(faults.end(), inside.begin(), inside.end());
  QuarantineConfig config;
  config.period_days = 10;
  const QuarantineOutcome outcome = simulate_quarantine(faults, w, config);
  EXPECT_EQ(outcome.quarantine_entries, 1u);
  EXPECT_EQ(outcome.counted_errors, 4u);
  EXPECT_EQ(outcome.suppressed_errors, 36u);
}

TEST(Quarantine, NodesIndependent) {
  const CampaignWindow w;
  std::vector<analysis::FaultRecord> faults = burst({1, 1}, w, 10, 20);
  auto other = burst({2, 2}, w, 10, 2);  // quiet node stays below threshold
  faults.insert(faults.end(), other.begin(), other.end());
  std::sort(faults.begin(), faults.end(),
            [](const FaultRecord& a, const FaultRecord& b) {
              return a.first_seen < b.first_seen;
            });
  QuarantineConfig config;
  config.period_days = 5;
  const QuarantineOutcome outcome = simulate_quarantine(faults, w, config);
  EXPECT_EQ(outcome.counted_errors, 6u);  // 4 from the loud one + 2 quiet
  EXPECT_EQ(outcome.quarantine_entries, 1u);
}

TEST(Quarantine, ExcludedNodeIgnoredEntirely) {
  const CampaignWindow w;
  const auto faults = burst({2, 4}, w, 10, 100);
  QuarantineConfig config;
  config.period_days = 5;
  config.excluded_nodes.push_back({2, 4});
  const QuarantineOutcome outcome = simulate_quarantine(faults, w, config);
  EXPECT_EQ(outcome.counted_errors, 0u);
  EXPECT_EQ(outcome.suppressed_errors, 0u);
}

TEST(Quarantine, MtbfFromCountedErrors) {
  const CampaignWindow w;
  const auto faults = burst({1, 1}, w, 10, 20);
  QuarantineConfig config;
  config.period_days = 5;
  const QuarantineOutcome outcome = simulate_quarantine(faults, w, config);
  const double campaign_hours =
      static_cast<double>(w.duration_seconds()) / kSecondsPerHour;
  EXPECT_DOUBLE_EQ(outcome.system_mtbf_hours, campaign_hours / 4.0);
}

TEST(Quarantine, QuarantineClippedAtCampaignEnd) {
  const CampaignWindow w;
  const int last_day = static_cast<int>(w.duration_days()) - 2;
  const auto faults = burst({1, 1}, w, last_day, 10);
  QuarantineConfig config;
  config.period_days = 30;
  const QuarantineOutcome outcome = simulate_quarantine(faults, w, config);
  EXPECT_LT(outcome.node_days_quarantined, 3.0);
}

TEST(Quarantine, PeriodZeroAccumulatesNoSeconds) {
  const CampaignWindow w;
  const auto faults = burst({1, 1}, w, 10, 20);
  const QuarantineOutcome outcome =
      simulate_quarantine(faults, w, QuarantineConfig{});
  EXPECT_EQ(outcome.quarantined_seconds, 0);
  EXPECT_EQ(outcome.quarantine_entries, 0u);
  EXPECT_DOUBLE_EQ(outcome.availability_loss, 0.0);
}

TEST(Quarantine, SingleEventNodeNeverTriggers) {
  const CampaignWindow w;
  const auto faults = burst({1, 1}, w, 10, 1);
  QuarantineConfig config;
  config.period_days = 30;
  const QuarantineOutcome outcome = simulate_quarantine(faults, w, config);
  EXPECT_EQ(outcome.counted_errors, 1u);
  EXPECT_EQ(outcome.suppressed_errors, 0u);
  EXPECT_EQ(outcome.quarantine_entries, 0u);
  EXPECT_EQ(outcome.quarantined_seconds, 0);
}

TEST(Quarantine, StraddlingWindowEndClipsExactSeconds) {
  const CampaignWindow w;
  const int last_day = static_cast<int>(w.duration_days()) - 2;
  const auto faults = burst({1, 1}, w, last_day, 10);
  QuarantineConfig config;
  config.period_days = 30;
  const QuarantineOutcome outcome = simulate_quarantine(faults, w, config);
  // The 4th error triggers; its 30-day quarantine is clipped at w.end and
  // the ledger holds the exact integer remainder.
  const TimePoint trigger =
      w.start + last_day * kSecondsPerDay + 3600 + 3 * 600;
  EXPECT_EQ(outcome.quarantine_entries, 1u);
  EXPECT_EQ(outcome.quarantined_seconds, w.end - trigger);
  EXPECT_DOUBLE_EQ(outcome.node_days_quarantined,
                   static_cast<double>(w.end - trigger) / kSecondsPerDay);
}

TEST(Quarantine, SweepMonotonicShape) {
  // Table II's qualitative shape: longer quarantine -> fewer (or equal)
  // surviving errors, more node-days, higher MTBF.
  const CampaignWindow w;
  std::vector<analysis::FaultRecord> faults;
  for (int day = 10; day < 300; day += 12) {
    auto b = burst({1, 1}, w, day, 30);
    faults.insert(faults.end(), b.begin(), b.end());
  }
  const auto sweep =
      quarantine_sweep(faults, w, {0, 5, 10, 15, 20, 25, 30});
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].counted_errors, sweep[i - 1].counted_errors);
    EXPECT_GE(sweep[i].system_mtbf_hours, sweep[i - 1].system_mtbf_hours);
  }
  EXPECT_GT(sweep[1].node_days_quarantined, 0.0);
  EXPECT_GT(sweep.back().system_mtbf_hours, 10.0 * sweep.front().system_mtbf_hours);
}

}  // namespace
}  // namespace unp::resilience
