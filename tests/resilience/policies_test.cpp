// Page retirement, checkpoint adaptation and the ECC what-if analysis.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/ecc_whatif.hpp"
#include "resilience/page_retirement.hpp"

namespace unp::resilience {
namespace {

using analysis::FaultRecord;

FaultRecord fault(cluster::NodeId node, TimePoint t, std::uint64_t vaddr,
                  Word expected = 0xFFFFFFFFu, Word actual = 0xFFFFFFFEu) {
  FaultRecord f;
  f.node = node;
  f.first_seen = t;
  f.last_seen = t;
  f.virtual_address = vaddr;
  f.expected = expected;
  f.actual = actual;
  return f;
}

TEST(PageRetirement, WeakBitAbsorbedAfterFirstFault) {
  // 100 recurrences of one weak bit: retire-after-1 absorbs 99.
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 100; ++i) {
    faults.push_back(fault({4, 5}, 1000 + i * 10000, 4096));
  }
  const PageRetirementOutcome outcome = simulate_page_retirement(faults);
  EXPECT_EQ(outcome.total_faults, 100u);
  EXPECT_EQ(outcome.avoided_faults, 99u);
  EXPECT_EQ(outcome.pages_retired, 1u);
  EXPECT_NEAR(outcome.avoided_fraction(), 0.99, 1e-9);
}

TEST(PageRetirement, ScatteredAddressesDefeatRetirement) {
  // The degrading node's signature: every fault on a fresh page.
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 100; ++i) {
    faults.push_back(
        fault({2, 4}, 1000 + i, static_cast<std::uint64_t>(i) * 8192));
  }
  const PageRetirementOutcome outcome = simulate_page_retirement(faults);
  EXPECT_EQ(outcome.avoided_faults, 0u);
  EXPECT_EQ(outcome.pages_retired, 100u);
}

TEST(PageRetirement, ThresholdDelaysRetirement) {
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 10; ++i) faults.push_back(fault({1, 1}, 1000 + i, 4096));
  PageRetirementConfig config;
  config.faults_to_retire = 3;
  const PageRetirementOutcome outcome = simulate_page_retirement(faults, config);
  EXPECT_EQ(outcome.avoided_faults, 7u);
}

TEST(PageRetirement, BudgetCapsPages) {
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 20; ++i) {
    faults.push_back(
        fault({1, 1}, 1000 + i, static_cast<std::uint64_t>(i % 4) * 4096));
    faults.push_back(
        fault({1, 1}, 1000 + i, static_cast<std::uint64_t>(i % 4) * 4096));
  }
  PageRetirementConfig config;
  config.max_pages_per_node = 2;
  const PageRetirementOutcome outcome = simulate_page_retirement(faults, config);
  EXPECT_EQ(outcome.pages_retired, 2u);
}

TEST(PageRetirement, PerNodeRowsRanked) {
  std::vector<FaultRecord> faults;
  for (int i = 0; i < 50; ++i) faults.push_back(fault({4, 5}, 1000 + i, 4096));
  for (int i = 0; i < 10; ++i) faults.push_back(fault({1, 1}, 1000 + i, 8192));
  const auto rows = page_retirement_by_node(faults);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].node, (cluster::NodeId{4, 5}));
  EXPECT_EQ(rows[0].avoided, 49u);
  EXPECT_EQ(rows[1].avoided, 9u);
}

TEST(Checkpoint, YoungIntervalFormula) {
  EXPECT_DOUBLE_EQ(young_interval_hours(0.5, 100.0), 10.0);
  EXPECT_THROW((void)young_interval_hours(0.0, 100.0), ContractViolation);
}

TEST(Checkpoint, WasteMinimizedAtYoungInterval) {
  const double cost = 0.1, mtbf = 167.0;
  const double best = young_interval_hours(cost, mtbf);
  const double at_best = waste_fraction(best, cost, mtbf);
  EXPECT_LT(at_best, waste_fraction(best * 2.0, cost, mtbf));
  EXPECT_LT(at_best, waste_fraction(best * 0.5, cost, mtbf));
}

TEST(Checkpoint, WasteCappedAtOne) {
  EXPECT_DOUBLE_EQ(waste_fraction(10.0, 0.1, 0.001), 1.0);
}

TEST(Checkpoint, AdaptivePolicyWinsUnderBimodalRegimes) {
  // The Section III-I situation: MTBF 167 h normal, 0.39 h degraded, ~18%
  // degraded days.  A regime-aware interval must strictly reduce waste.
  analysis::RegimeResult regime;
  regime.degraded.assign(425, false);
  for (std::size_t d = 0; d < 77; ++d) regime.degraded[d * 5] = true;
  regime.normal_days = 348;
  regime.degraded_days = 77;
  regime.normal_errors = 50;
  regime.degraded_errors = 4729;
  regime.normal_mtbf_hours = 167.0;
  regime.degraded_mtbf_hours = 0.39;

  const CheckpointComparison cmp = compare_checkpoint_policies(regime, 0.1);
  EXPECT_GT(cmp.normal_interval_hours, cmp.degraded_interval_hours * 5.0);
  EXPECT_LT(cmp.adaptive_waste_fraction, cmp.static_waste_fraction);
  EXPECT_GT(cmp.improvement(), 0.1);
}

TEST(EccWhatIf, CountsPerScheme) {
  std::vector<FaultRecord> faults{
      fault({1, 1}, 100, 0),                                     // single bit
      fault({1, 1}, 200, 64, 0xFFFFFFFFu, 0xFFFF7BFFu),          // double
      fault({1, 1}, 300, 128, 0xFFFFFFFFu, 0xFFFFFF0Fu),         // 4-bit nibble
  };
  const EccWhatIf result = ecc_what_if(faults);
  EXPECT_EQ(result.multibit_faults, 2u);
  EXPECT_EQ(result.double_bit_faults, 1u);
  EXPECT_EQ(result.beyond_secded_guarantee, 1u);
  EXPECT_EQ(result.secded.corrected, 1u);
  EXPECT_GE(result.secded.detected, 1u);
  // The aligned-nibble fault is chipkill-correctable.
  EXPECT_EQ(result.chipkill.corrected, 2u);
}

TEST(EccWhatIf, IsolationReportFindsQuietNodes) {
  std::vector<FaultRecord> faults{
      fault({1, 1}, 100, 0, 0xFFFFFFFFu, 0xFFFFFF0Fu),  // 4-bit, isolated
      fault({2, 2}, 5000000, 0),                        // unrelated, far away
      fault({3, 3}, 200, 0, 0xFFFFFFFFu, 0xFFFF0F0Fu),  // 8-bit, with company
      fault({3, 3}, 90000, 64),
  };
  const auto reports = sdc_isolation_report(faults, 4, 3600);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].fault.node, (cluster::NodeId{1, 1}));
  EXPECT_EQ(reports[0].same_node_other_faults, 0u);
  EXPECT_EQ(reports[0].same_time_other_faults, 1u);  // the {3,3} fault at 200
  EXPECT_EQ(reports[1].fault.node, (cluster::NodeId{3, 3}));
  EXPECT_EQ(reports[1].same_node_other_faults, 1u);
}

}  // namespace
}  // namespace unp::resilience
