// ArchiveWriter/ArchiveReader: the streaming on-disk spill format.
#include "telemetry/archive_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/require.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::telemetry {
namespace {

NodeLog sample_log(cluster::NodeId node) {
  NodeLog log;
  log.add_start({from_civil_utc({2015, 3, 1, 1, 0, 0}), node, 3ULL << 30, 31.5});
  log.add_end({from_civil_utc({2015, 3, 1, 9, 30, 0}), node, 32.25});
  log.add_alloc_fail({from_civil_utc({2015, 3, 2, 4, 0, 0}), node});
  ErrorRecord err;
  err.time = from_civil_utc({2015, 3, 1, 2, 0, 0});
  err.node = node;
  err.virtual_address = 0xBEEF00;
  err.expected = 0xFFFFFFFFu;
  err.actual = 0xFFFF7BFFu;
  err.temperature_c = 34.125;
  err.physical_page = 0x12345;
  log.add_error_run({err, 150, 42});
  return log;
}

std::string write_sample_stream(const CampaignWindow& window) {
  std::ostringstream os(std::ios::binary);
  ArchiveWriter writer(os);
  writer.begin_campaign(window);
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    writer.begin_node(node);
    if (i == 17 || i == 200) replay_node_log(sample_log(node), writer);
    writer.end_node(node);
  }
  writer.finish();
  return os.str();
}

TEST(ArchiveStream, RoundTripThroughSinkProtocol) {
  CampaignWindow window;
  const std::string bytes = write_sample_stream(window);

  std::istringstream is(bytes, std::ios::binary);
  ArchiveReader reader(is);
  EXPECT_EQ(reader.window().start, window.start);
  EXPECT_EQ(reader.window().end, window.end);

  CampaignArchive archive;
  reader.drain(archive);
  EXPECT_EQ(reader.frames_read(), 2u);  // empty nodes are elided
  EXPECT_EQ(archive.log({1, 2}).error_runs(),
            sample_log({1, 2}).error_runs());  // node_index({1,2}) == 17
  EXPECT_EQ(archive.log({0, 0}).starts().size(), 0u);
  EXPECT_EQ(archive.total_raw_errors(), 2u * 42u);
}

TEST(ArchiveStream, NodeByNodeIteration) {
  const std::string bytes = write_sample_stream(CampaignWindow{});
  std::istringstream is(bytes, std::ios::binary);
  ArchiveReader reader(is);

  cluster::NodeId node;
  NodeLog log;
  ASSERT_TRUE(reader.next(node, log));
  EXPECT_EQ(cluster::node_index(node), 17);
  EXPECT_EQ(log.starts(), sample_log(node).starts());
  ASSERT_TRUE(reader.next(node, log));
  EXPECT_EQ(cluster::node_index(node), 200);
  EXPECT_FALSE(reader.next(node, log));
  EXPECT_FALSE(reader.next(node, log));  // stays done
}

TEST(ArchiveStream, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "unp_stream_test.unps").string();
  CampaignArchive archive;
  archive.log({7, 3}) = sample_log({7, 3});
  archive.log({62, 14}) = sample_log({62, 14});
  save_archive_stream(archive, path);
  const CampaignArchive loaded = load_archive_stream(path);
  EXPECT_EQ(loaded.log({7, 3}).starts(), archive.log({7, 3}).starts());
  EXPECT_EQ(loaded.log({62, 14}).error_runs(), archive.log({62, 14}).error_runs());
  EXPECT_EQ(loaded.total_raw_errors(), archive.total_raw_errors());
  std::filesystem::remove(path);
}

TEST(ArchiveStream, RejectsCorruptMagicAndVersion) {
  const std::string bytes = write_sample_stream(CampaignWindow{});
  {
    std::string bad = bytes;
    bad[0] = 'X';
    std::istringstream is(bad, std::ios::binary);
    EXPECT_THROW(ArchiveReader reader(is), ContractViolation);
  }
  {
    std::string bad = bytes;
    bad[4] = 99;  // unknown version
    std::istringstream is(bad, std::ios::binary);
    EXPECT_THROW(ArchiveReader reader(is), ContractViolation);
  }
}

TEST(ArchiveStream, RejectsTruncation) {
  const std::string bytes = write_sample_stream(CampaignWindow{});
  // Truncate at every suffix length: the reader must throw (or, for a cut
  // exactly after the header, report frames but never validate the end
  // frame) - it must never return corrupt data silently.
  for (std::size_t cut = 5; cut + 1 < bytes.size(); cut += 7) {
    std::istringstream is(bytes.substr(0, cut), std::ios::binary);
    bool threw = false;
    try {
      ArchiveReader reader(is);
      CampaignArchive archive;
      reader.drain(archive);
    } catch (const ContractViolation&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "no rejection when truncated to " << cut << " bytes";
  }
}

TEST(ArchiveStream, RejectsWrongFrameCount) {
  std::string bytes = write_sample_stream(CampaignWindow{});
  // The end frame is ...<sentinel varint><count varint>; count is 2 (one
  // byte).  Patch it to 3.
  ASSERT_EQ(static_cast<unsigned char>(bytes.back()), 2u);
  bytes.back() = 3;
  std::istringstream is(bytes, std::ios::binary);
  ArchiveReader reader(is);
  CampaignArchive archive;
  EXPECT_THROW(reader.drain(archive), ContractViolation);
}

TEST(ArchiveStream, RejectsOutOfRangeNodeIndex) {
  std::ostringstream os(std::ios::binary);
  ArchiveWriter writer(os);
  writer.begin_campaign(CampaignWindow{});
  writer.finish();
  std::string bytes = os.str();
  // Remove the end frame and splice in a frame claiming an invalid index
  // one past the sentinel.
  bytes.resize(bytes.size() - 3);
  std::string frame;
  put_varint(frame, static_cast<std::uint64_t>(cluster::kStudyNodeSlots) + 1);
  put_varint(frame, 0);
  bytes += frame;
  std::istringstream is(bytes, std::ios::binary);
  ArchiveReader reader(is);
  cluster::NodeId node;
  NodeLog log;
  EXPECT_THROW((void)reader.next(node, log), ContractViolation);
}

TEST(ArchiveWriterContract, RecordsOutsideNodeFrameThrow) {
  std::ostringstream os(std::ios::binary);
  ArchiveWriter writer(os);
  writer.begin_campaign(CampaignWindow{});
  EXPECT_THROW(writer.on_start({0, {1, 1}, 0, kNoTemperature}),
               ContractViolation);
  writer.begin_node({1, 1});
  EXPECT_THROW(writer.begin_node({1, 2}), ContractViolation);  // nested frame
}

}  // namespace
}  // namespace unp::telemetry
