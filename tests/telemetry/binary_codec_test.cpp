#include "telemetry/binary_codec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace unp::telemetry {
namespace {

TEST(Varint, RoundTripKnownValues) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL,
                          16384ULL, ~0ULL, 1ULL << 63}) {
    std::string buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, Compactness) {
  std::string buf;
  put_varint(buf, 0);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Varint, TruncationThrows) {
  std::string buf;
  put_varint(buf, 1ULL << 40);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW((void)get_varint(buf, pos), ContractViolation);
}

TEST(Varint, MaxLengthEncodingsRoundTrip) {
  // The 64-bit ceiling needs all ten LEB128 groups; both extremes of the
  // ten-byte form must decode exactly.
  for (const std::uint64_t v : std::initializer_list<std::uint64_t>{
           std::numeric_limits<std::uint64_t>::max(), 1ULL << 63}) {
    std::string buf;
    put_varint(buf, v);
    EXPECT_EQ(buf.size(), 10u);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, 10u);
  }
}

TEST(Varint, RejectsTenthByteBitsBeyond64) {
  // Nine continuation groups consume 63 bits; any tenth-byte payload bit
  // other than the lowest would overflow u64 and must be rejected, not
  // silently wrapped.
  for (const char last : {'\x02', '\x7e', '\x7f'}) {
    std::string buf(9, '\x80');
    buf += last;
    std::size_t pos = 0;
    EXPECT_THROW((void)get_varint(buf, pos), DecodeError);
  }
  // The same shape with only bit 63 set stays valid.
  std::string ok(9, '\x80');
  ok += '\x01';
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(ok, pos), 1ULL << 63);
}

TEST(Varint, RejectsEncodingsLongerThanTenBytes) {
  std::string buf(10, '\x80');
  buf += '\x01';
  std::size_t pos = 0;
  EXPECT_THROW((void)get_varint(buf, pos), DecodeError);
}

TEST(Varint, MidVarintTruncationReportsOffset) {
  std::string buf;
  put_varint(buf, 5);            // one complete varint...
  put_varint(buf, 1ULL << 40);   // ...then one cut mid-encoding
  buf.resize(buf.size() - 2);
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(buf, pos), 5u);
  try {
    (void)get_varint(buf, pos);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_LE(e.byte_offset(), buf.size());
    EXPECT_GE(e.byte_offset(), 1u);  // past the first, intact varint
    EXPECT_FALSE(e.detail().empty());
  }
}

TEST(Varint, GroupBoundaryValuesUseExpectedLengths) {
  // 2^(7k) is the first value needing k+1 bytes; its predecessor fits in k.
  for (int k = 1; k <= 9; ++k) {
    const std::uint64_t boundary = 1ULL << (7 * k);
    for (const std::uint64_t v : {boundary - 1, boundary, boundary + 1}) {
      std::string buf;
      put_varint(buf, v);
      EXPECT_EQ(buf.size(), static_cast<std::size_t>(k) + (v >= boundary))
          << "value " << v;
      std::size_t pos = 0;
      EXPECT_EQ(get_varint(buf, pos), v);
      EXPECT_EQ(pos, buf.size());
    }
  }
}

TEST(Varint, RoundTripRandom) {
  RngStream rng(3);
  std::string buf;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next_u64() >> rng.uniform_u64(64);
    values.push_back(v);
    put_varint(buf, v);
  }
  std::size_t pos = 0;
  for (const std::uint64_t v : values) EXPECT_EQ(get_varint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(ZigZag, RoundTrip) {
  for (std::int64_t v :
       std::initializer_list<std::int64_t>{
           0, 1, -1, 1234567, -1234567,
           std::numeric_limits<std::int64_t>::max(),
           std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes (the point of zigzag).
  EXPECT_LE(zigzag_encode(-1), 2u);
  EXPECT_LE(zigzag_encode(1), 2u);
}

NodeLog sample_log(cluster::NodeId node) {
  NodeLog log;
  log.add_start({from_civil_utc({2015, 3, 1, 1, 0, 0}), node, 3ULL << 30, 31.5});
  log.add_start({from_civil_utc({2015, 3, 2, 1, 0, 0}), node, 3ULL << 30,
                 kNoTemperature});
  log.add_end({from_civil_utc({2015, 3, 1, 9, 30, 0}), node, 32.25});
  log.add_alloc_fail({from_civil_utc({2015, 3, 2, 4, 0, 0}), node});
  ErrorRecord err;
  err.time = from_civil_utc({2015, 3, 1, 2, 0, 0});
  err.node = node;
  err.virtual_address = 0x12345678;
  err.expected = 0xFFFFFFFFu;
  err.actual = 0xFFFF7BFFu;
  err.temperature_c = 34.125;
  err.physical_page = 0x12345;
  log.add_error(err);
  err.time += 12345;
  log.add_error_run({err, 150, 42});
  return log;
}

TEST(BinaryCodec, NodeLogRoundTripExact) {
  const NodeLog original = sample_log({7, 3});
  const std::string bytes = encode_node_log(original);
  std::size_t pos = 0;
  const NodeLog parsed = decode_node_log(bytes, pos, {7, 3});
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(parsed.starts(), original.starts());
  EXPECT_EQ(parsed.ends(), original.ends());
  EXPECT_EQ(parsed.alloc_fails(), original.alloc_fails());
  EXPECT_EQ(parsed.error_runs(), original.error_runs());
}

TEST(BinaryCodec, ArchiveRoundTrip) {
  CampaignArchive archive;
  archive.log({7, 3}) = sample_log({7, 3});
  archive.log({62, 14}) = sample_log({62, 14});
  const std::string bytes = encode_archive(archive);
  const CampaignArchive parsed = decode_archive(bytes);
  EXPECT_EQ(parsed.window().start, archive.window().start);
  EXPECT_EQ(parsed.log({7, 3}).error_runs(), archive.log({7, 3}).error_runs());
  EXPECT_EQ(parsed.log({62, 14}).starts(), archive.log({62, 14}).starts());
  EXPECT_EQ(parsed.log({0, 0}).starts().size(), 0u);
  EXPECT_EQ(parsed.total_raw_errors(), archive.total_raw_errors());
}

TEST(BinaryCodec, RejectsCorruptHeader) {
  CampaignArchive archive;
  archive.log({1, 1}) = sample_log({1, 1});
  std::string bytes = encode_archive(archive);
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_THROW((void)decode_archive(bad), ContractViolation);
  bad = bytes;
  bad[4] = 99;  // unknown version
  EXPECT_THROW((void)decode_archive(bad), ContractViolation);
  bad = bytes.substr(0, bytes.size() - 3);  // truncated
  EXPECT_THROW((void)decode_archive(bad), ContractViolation);
}

TEST(BinaryCodec, FileSaveLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "unp_archive_test.bin").string();
  CampaignArchive archive;
  archive.log({5, 5}) = sample_log({5, 5});
  save_archive(archive, path);
  const CampaignArchive loaded = load_archive(path);
  EXPECT_EQ(loaded.log({5, 5}).error_runs(), archive.log({5, 5}).error_runs());
  std::filesystem::remove(path);
}

TEST(BinaryCodec, MissingFileThrows) {
  EXPECT_THROW((void)load_archive("/nonexistent/unp.bin"), ContractViolation);
}

TEST(BinaryCodec, DeltaEncodingIsCompact) {
  // 1000 error records one pass apart should cost only a few bytes each.
  NodeLog log;
  ErrorRecord err;
  err.node = {1, 1};
  err.expected = 0xFFFFFFFFu;
  err.actual = 0xFFFFFFFEu;
  err.temperature_c = kNoTemperature;
  for (int i = 0; i < 1000; ++i) {
    err.time = 1000000 + i * 75;
    err.virtual_address = 4096;
    log.add_error(err);
  }
  const std::string bytes = encode_node_log(log);
  EXPECT_LT(bytes.size(), 1000u * 24u);
}

}  // namespace
}  // namespace unp::telemetry
