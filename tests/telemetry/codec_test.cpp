#include "telemetry/codec.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/require.hpp"

namespace unp::telemetry {
namespace {

TEST(Codec, SerializeStart) {
  const StartRecord r{from_civil_utc({2015, 2, 1, 0, 12, 3}),
                      cluster::NodeId{7, 3}, 3221225472ULL, 33.4};
  EXPECT_EQ(serialize(r),
            "START 2015-02-01T00:12:03 host=07-03 bytes=3221225472 temp=33.4");
}

TEST(Codec, SerializeStartWithoutTemperature) {
  const StartRecord r{from_civil_utc({2015, 2, 1, 0, 0, 0}),
                      cluster::NodeId{0, 1}, 100, kNoTemperature};
  EXPECT_EQ(serialize(r), "START 2015-02-01T00:00:00 host=00-01 bytes=100");
}

TEST(Codec, SerializeError) {
  ErrorRecord r;
  r.time = from_civil_utc({2015, 11, 3, 7, 8, 9});
  r.node = {2, 4};
  r.virtual_address = 0x12345678;
  r.expected = 0xFFFFFFFFu;
  r.actual = 0xFFFF7BFFu;
  r.temperature_c = 34.1;
  r.physical_page = 0x12345;
  EXPECT_EQ(serialize(r),
            "ERROR 2015-11-03T07:08:09 host=02-04 vaddr=0x000012345678 "
            "expected=0xffffffff actual=0xffff7bff temp=34.1 page=0x000012345");
}

TEST(Codec, RoundTripAllKinds) {
  NodeLog original;
  original.add_start({from_civil_utc({2015, 3, 1, 1, 0, 0}),
                      {5, 5}, 3ULL << 30, 31.0});
  original.add_end({from_civil_utc({2015, 3, 1, 9, 30, 0}), {5, 5}, 32.5});
  original.add_alloc_fail({from_civil_utc({2015, 3, 2, 4, 0, 0}), {5, 5}});
  ErrorRecord err;
  err.time = from_civil_utc({2015, 3, 1, 2, 0, 0});
  err.node = {5, 5};
  err.virtual_address = 4096;
  err.expected = 0xFFFFFFFFu;
  err.actual = 0xFFFFFFFEu;
  err.temperature_c = kNoTemperature;
  err.physical_page = 1;
  original.add_error(err);
  ErrorRun run{err, 150, 12000};
  run.first.time = from_civil_utc({2015, 3, 1, 3, 0, 0});
  original.add_error_run(run);

  std::ostringstream os;
  write_node_log(os, original);
  std::istringstream is(os.str());
  const NodeLog parsed = read_node_log(is);

  EXPECT_EQ(parsed.starts(), original.starts());
  EXPECT_EQ(parsed.ends(), original.ends());
  EXPECT_EQ(parsed.alloc_fails(), original.alloc_fails());
  ASSERT_EQ(parsed.error_runs().size(), 2u);
  EXPECT_EQ(parsed.raw_error_count(), original.raw_error_count());
  // read_node_log sorts by time: the single error (02:00) precedes the run.
  EXPECT_EQ(parsed.error_runs()[0].count, 1u);
  EXPECT_EQ(parsed.error_runs()[1].count, 12000u);
  EXPECT_EQ(parsed.error_runs()[1].period_s, 150);
}

TEST(Codec, IgnoresCommentsAndBlankLines) {
  NodeLog log;
  EXPECT_FALSE(parse_line("", log));
  EXPECT_FALSE(parse_line("# a comment", log));
  EXPECT_TRUE(parse_line("ALLOCFAIL 2015-02-01T00:00:00 host=00-01", log));
  EXPECT_EQ(log.alloc_fails().size(), 1u);
}

TEST(Codec, RejectsMalformedLines) {
  NodeLog log;
  EXPECT_THROW((void)parse_line("BOGUS 2015-02-01T00:00:00 host=00-01", log),
               ContractViolation);
  EXPECT_THROW((void)parse_line("START notadate host=00-01 bytes=1", log),
               ContractViolation);
  EXPECT_THROW((void)parse_line("START 2015-02-01T00:00:00 bytes=1", log),
               ContractViolation);  // missing host
  EXPECT_THROW(
      (void)parse_line("ERROR 2015-02-01T00:00:00 host=00-01 vaddr=0x0", log),
      ContractViolation);  // missing fields
}

TEST(Codec, ErrorRunExpandMatchesFields) {
  ErrorRecord first;
  first.time = 1000;
  first.node = {1, 2};
  first.virtual_address = 64;
  const ErrorRun run{first, 150, 4};
  const auto expanded = run.expand();
  ASSERT_EQ(expanded.size(), 4u);
  EXPECT_EQ(expanded[0].time, 1000);
  EXPECT_EQ(expanded[3].time, 1450);
  EXPECT_EQ(run.last_time(), 1450);
  for (const auto& r : expanded) EXPECT_EQ(r.virtual_address, 64u);
}

}  // namespace
}  // namespace unp::telemetry
