// Encode kernel equivalence: every supported ISA's varint / zigzag-delta
// encode kernels must emit bytes identical to the put_varint scalar oracle —
// across all head/tail residues of the blocked loops, at every LEB128
// length boundary (the 2^7k edges), and through the block-buffered
// VarintWriter.  Also pins the growth-counter contract: encoding into a
// buffer pre-sized from node_log_encoded_bound never reallocates.
#include "telemetry/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd_dispatch.hpp"
#include "telemetry/archive.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::telemetry::kernels {
namespace {

std::vector<Isa> isas() { return simd::supported_isas(); }

/// Every LEB128 length boundary: 2^(7k) - 1, 2^(7k), 2^(7k) + 1 for each
/// group count, plus the 10-byte extremes.
std::vector<std::uint64_t> boundary_values() {
  std::vector<std::uint64_t> v{0, 1, 0x7F, 0x80, 0x81};
  for (int k = 2; k <= 9; ++k) {
    const std::uint64_t edge = std::uint64_t{1} << (7 * k);
    v.push_back(edge - 1);
    v.push_back(edge);
    v.push_back(edge + 1);
  }
  v.push_back(~std::uint64_t{0} >> 1);
  v.push_back((~std::uint64_t{0} >> 1) + 1);
  v.push_back(~std::uint64_t{0});
  return v;
}

/// Mixed stream shaped like real telemetry: mostly 1-byte values with
/// multi-byte and maximal encodings sprinkled in.
std::vector<std::uint64_t> mixed_values(std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t roll = rng.next() % 100;
    if (roll < 70)
      values.push_back(rng.next() % 128);  // 1 byte (packed-run path)
    else if (roll < 90)
      values.push_back(128 + rng.next() % (1u << 20));  // 2-3 bytes
    else
      values.push_back(rng.next());  // up to 10 bytes
  }
  return values;
}

std::string oracle_bytes(const std::vector<std::uint64_t>& values) {
  std::string out;
  for (const std::uint64_t v : values) put_varint(out, v);
  return out;
}

TEST(EncodeKernelsTest, EveryIsaIsRegisteredAndSelfConsistent) {
  for (const Isa isa : isas()) {
    const EncodeKernels& k = encode_kernels_for(isa);
    EXPECT_EQ(k.isa, isa);
    EXPECT_NE(k.encode_varint, nullptr);
    EXPECT_NE(k.encode_varints, nullptr);
    EXPECT_NE(k.encode_zigzag_deltas, nullptr);
  }
  const EncodeKernels& active = active_encode_kernels();
  EXPECT_TRUE(simd::is_supported(active.isa));
}

TEST(EncodeKernelsTest, EncodeVarintMatchesPutVarintAtEveryLengthBoundary) {
  for (const std::uint64_t v : boundary_values()) {
    std::string expect;
    put_varint(expect, v);
    for (const Isa isa : isas()) {
      char buffer[16];
      std::memset(buffer, 0x5A, sizeof buffer);
      const std::size_t len = encode_kernels_for(isa).encode_varint(v, buffer);
      ASSERT_EQ(len, expect.size()) << simd::to_string(isa) << " value " << v;
      EXPECT_EQ(std::string(buffer, len), expect)
          << simd::to_string(isa) << " value " << v;
    }
  }
}

TEST(EncodeKernelsTest, EncodeVarintsMatchesOracleOnEveryResidue) {
  // Counts 0..40 cover every head/tail residue of the 8-wide packed-run
  // check and the 512-byte block spill; 3000 exercises multiple spills.
  for (std::size_t count = 0; count <= 40; ++count) {
    const auto values = mixed_values(count, count * 31 + 7);
    const std::string expect = oracle_bytes(values);
    for (const Isa isa : isas()) {
      std::string got;
      encode_kernels_for(isa).encode_varints(values.data(), values.size(), got);
      EXPECT_EQ(got, expect) << simd::to_string(isa) << " count " << count;
    }
  }
  const auto values = mixed_values(3000, 99);
  const std::string expect = oracle_bytes(values);
  for (const Isa isa : isas()) {
    std::string got;
    encode_kernels_for(isa).encode_varints(values.data(), values.size(), got);
    EXPECT_EQ(got, expect) << simd::to_string(isa);
  }
}

TEST(EncodeKernelsTest, EncodeVarintsPacksBoundaryRuns) {
  // All-small runs at lengths straddling the 8-value packed store, and a
  // boundary-value stream stressing every encoded length back to back.
  for (const std::size_t count : {std::size_t{7}, std::size_t{8},
                                  std::size_t{9}, std::size_t{16},
                                  std::size_t{17}}) {
    std::vector<std::uint64_t> small(count);
    for (std::size_t i = 0; i < count; ++i) small[i] = i % 128;
    const std::string expect = oracle_bytes(small);
    for (const Isa isa : isas()) {
      std::string got;
      encode_kernels_for(isa).encode_varints(small.data(), small.size(), got);
      EXPECT_EQ(got, expect) << simd::to_string(isa) << " count " << count;
    }
  }
  const auto edges = boundary_values();
  const std::string expect = oracle_bytes(edges);
  for (const Isa isa : isas()) {
    std::string got;
    encode_kernels_for(isa).encode_varints(edges.data(), edges.size(), got);
    EXPECT_EQ(got, expect) << simd::to_string(isa);
  }
}

TEST(EncodeKernelsTest, EncodeZigzagDeltasMatchesSignedScalarChain) {
  Xoshiro256 rng(2024);
  for (const std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{33}, std::size_t{1000}}) {
    // Random walk with small steps (packed-run path), regressions (negative
    // deltas), and occasional huge jumps (multi-byte and wraparound cases).
    std::vector<std::uint64_t> values(count);
    std::uint64_t v = 1'440'000'000;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t roll = rng.next() % 100;
      if (roll < 70)
        v += rng.next() % 32;
      else if (roll < 90)
        v -= rng.next() % 1000;  // regression: negative delta
      else
        v = rng.next();  // arbitrary jump, including wraparound deltas
      values[i] = v;
    }
    const std::uint64_t base = count % 2 == 0 ? 0 : 1'439'999'000;

    // Oracle: the original signed delta chain the section writers ran.
    std::string expect;
    std::uint64_t previous = base;
    for (const std::uint64_t value : values) {
      put_varint(expect,
                 zigzag_encode(static_cast<std::int64_t>(value - previous)));
      previous = value;
    }

    for (const Isa isa : isas()) {
      std::string got;
      encode_kernels_for(isa).encode_zigzag_deltas(values.data(), values.size(),
                                                   base, got);
      EXPECT_EQ(got, expect) << simd::to_string(isa) << " count " << count;
    }
  }
}

TEST(EncodeKernelsTest, VarintWriterMatchesDirectAppends) {
  const auto values = mixed_values(700, 5);
  for (const Isa isa : isas()) {
    std::string expect;
    for (std::size_t i = 0; i < values.size(); ++i) {
      put_varint(expect, values[i]);
      if (i % 5 == 0) expect.push_back('\1');
      if (i % 7 == 0) put_f64(expect, static_cast<double>(values[i]) * 0.25);
    }
    std::string got;
    {
      VarintWriter w(got, encode_kernels_for(isa));
      for (std::size_t i = 0; i < values.size(); ++i) {
        w.varint(values[i]);
        if (i % 5 == 0) w.byte('\1');
        if (i % 7 == 0) w.f64(static_cast<double>(values[i]) * 0.25);
      }
    }  // destructor flushes
    EXPECT_EQ(got, expect) << simd::to_string(isa);
  }
}

NodeLog busy_log(cluster::NodeId node, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  NodeLog log;
  TimePoint t = from_civil_utc({2015, 6, 1, 0, 0, 0});
  for (int s = 0; s < 40; ++s) {
    t += static_cast<TimePoint>(3600 + rng.next() % 7200);
    log.add_start({t, node, 3ULL << 30,
                   s % 3 == 0 ? kNoTemperature : 25.0 + static_cast<double>(s)});
    for (int e = 0; e < 12; ++e) {
      ErrorRecord err;
      err.time = t + 60 * (e + 1);
      err.node = node;
      err.virtual_address = (rng.next() % (1ull << 33)) & ~std::uint64_t{3};
      err.expected = static_cast<Word>(rng.next());
      err.actual = err.expected ^ static_cast<Word>(1u << (rng.next() % 32));
      err.temperature_c = e % 2 == 0 ? kNoTemperature : 31.25;
      err.physical_page = err.virtual_address >> 12;
      log.add_error_run({err, static_cast<std::int64_t>(rng.next() % 400),
                         1 + rng.next() % 90});
    }
    for (int a = 0; a < 6; ++a)
      log.add_alloc_fail({t + 10 * (a + 1), node});
    t += 8 * 3600;
    log.add_end({t, node, 26.5});
  }
  log.sort_by_time();
  return log;
}

TEST(EncodeKernelsTest, NodeLogBoundPreSizingNeverReallocates) {
  const NodeLog log = busy_log({3, 7}, 11);
  const std::size_t bound = node_log_encoded_bound(log);
  const std::string expect = encode_node_log(log);
  ASSERT_LE(expect.size(), bound);

  for (const Isa isa : isas()) {
    std::string out;
    EncodeArena arena;
    arena.scratch.reserve(1024);
    // Warm the buffer once (first reserve is an expected allocation), then
    // assert the steady-state contract: reuse never grows the buffer.
    encode_node_log_into(log, out, encode_kernels_for(isa), &arena);
    EXPECT_EQ(out, expect) << simd::to_string(isa);
    reset_encode_growth_count();
    for (int round = 0; round < 3; ++round) {
      out.clear();
      encode_node_log_into(log, out, encode_kernels_for(isa), &arena);
    }
    EXPECT_EQ(encode_growth_count(), 0u) << simd::to_string(isa);
    EXPECT_EQ(out, expect) << simd::to_string(isa);
  }
}

TEST(EncodeKernelsTest, GrowthCounterSeesUnreservedAppends) {
  // Sanity-check the instrument itself: a deliberately unreserved
  // destination must register growth.
  const auto values = mixed_values(5000, 1);
  reset_encode_growth_count();
  std::string out;
  out.shrink_to_fit();
  active_encode_kernels().encode_varints(values.data(), values.size(), out);
  EXPECT_GT(encode_growth_count(), 0u);
  reset_encode_growth_count();
}

}  // namespace
}  // namespace unp::telemetry::kernels
