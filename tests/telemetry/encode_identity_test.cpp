// Kernel-identity guarantees for the persisted formats: a UNPS stream and a
// UNPF store must be byte-identical no matter which encode kernel set built
// them, whether the stream went through the bulk node-log path or the
// per-record sink protocol, and whether an encode arena was supplied.
// Anything less would make archives non-reproducible across machines.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/extraction.hpp"
#include "common/rng.hpp"
#include "common/simd_dispatch.hpp"
#include "store/builder.hpp"
#include "store/format.hpp"
#include "telemetry/archive_io.hpp"
#include "telemetry/binary_codec.hpp"
#include "telemetry/kernels/kernels.hpp"

namespace unp::telemetry {
namespace {

namespace k = kernels;

std::vector<simd::Isa> isas() { return simd::supported_isas(); }

NodeLog varied_log(cluster::NodeId node, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  NodeLog log;
  TimePoint t = from_civil_utc({2015, 9, 1, 0, 0, 0});
  const int sessions = 3 + static_cast<int>(rng.next() % 5);
  for (int s = 0; s < sessions; ++s) {
    t += static_cast<TimePoint>(1800 + rng.next() % 7200);
    log.add_start({t, node, (2ULL + rng.next() % 3) << 30,
                   s % 2 == 0 ? kNoTemperature : 28.5});
    const int errors = static_cast<int>(rng.next() % 30);
    for (int e = 0; e < errors; ++e) {
      ErrorRecord err;
      err.time = t + 30 * (e + 1);
      err.node = node;
      err.virtual_address = (rng.next() % (1ull << 34)) & ~std::uint64_t{3};
      err.expected = static_cast<Word>(rng.next());
      err.actual = err.expected ^ static_cast<Word>(1u << (rng.next() % 32));
      err.temperature_c = e % 3 == 0 ? kNoTemperature : 30.0 + e;
      err.physical_page = err.virtual_address >> 12;
      log.add_error_run({err, static_cast<std::int64_t>(rng.next() % 300),
                         1 + rng.next() % 50});
    }
    const int fails = static_cast<int>(rng.next() % 10);
    for (int a = 0; a < fails; ++a) log.add_alloc_fail({t + 5 * (a + 1), node});
    t += 6 * 3600;
    log.add_end({t, node, 27.0});
  }
  log.sort_by_time();
  return log;
}

TEST(EncodeIdentityTest, NodeLogBytesIdenticalAcrossIsasAndArenas) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const NodeLog log = varied_log({5, 9}, seed);
    const std::string expect = encode_node_log(log);
    for (const simd::Isa isa : isas()) {
      std::string plain;
      encode_node_log_into(log, plain, k::encode_kernels_for(isa), nullptr);
      EXPECT_EQ(plain, expect) << simd::to_string(isa) << " seed " << seed;

      std::string with_arena;
      EncodeArena arena;
      encode_node_log_into(log, with_arena, k::encode_kernels_for(isa), &arena);
      EXPECT_EQ(with_arena, expect) << simd::to_string(isa) << " seed " << seed;
    }
  }
}

std::string write_stream_per_record(const k::EncodeKernels& encode) {
  std::ostringstream os(std::ios::binary);
  ArchiveWriter writer(os, &encode);
  writer.begin_campaign(CampaignWindow{});
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    writer.begin_node(node);
    if (i % 97 == 3)
      replay_node_log(varied_log(node, 100 + static_cast<std::uint64_t>(i)),
                      writer);
    writer.end_node(node);
  }
  writer.finish();
  return os.str();
}

std::string write_stream_bulk(const k::EncodeKernels& encode) {
  std::ostringstream os(std::ios::binary);
  ArchiveWriter writer(os, &encode);
  writer.begin_campaign(CampaignWindow{});
  std::string scratch;
  EncodeArena arena;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    NodeLog log;
    if (i % 97 == 3) log = varied_log(node, 100 + static_cast<std::uint64_t>(i));
    writer.begin_node(node);
    EncodedNodeLog enc(node, log, scratch, encode, &arena);
    writer.on_node_log(enc);
    writer.end_node(node);
  }
  writer.finish();
  return os.str();
}

TEST(EncodeIdentityTest, ArchiveStreamIdenticalAcrossIsasAndEmitPaths) {
  const std::string expect =
      write_stream_per_record(k::encode_kernels_for(simd::Isa::kScalar));
  ASSERT_GT(expect.size(), 16u);
  for (const simd::Isa isa : isas()) {
    EXPECT_EQ(write_stream_per_record(k::encode_kernels_for(isa)), expect)
        << "per-record " << simd::to_string(isa);
    EXPECT_EQ(write_stream_bulk(k::encode_kernels_for(isa)), expect)
        << "bulk " << simd::to_string(isa);
  }
}

std::vector<analysis::FaultRecord> canonical_faults(std::size_t count,
                                                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<analysis::FaultRecord> faults;
  faults.reserve(count);
  TimePoint t = from_civil_utc({2015, 9, 1, 0, 0, 0});
  for (std::size_t i = 0; i < count; ++i) {
    t += static_cast<TimePoint>(rng.next() % 600);
    analysis::FaultRecord fault;
    fault.node = {static_cast<int>(rng.next() % 94),
                  static_cast<int>(rng.next() % 16)};
    fault.first_seen = t;
    fault.last_seen = t + static_cast<TimePoint>(rng.next() % 50'000);
    fault.raw_logs = 1 + rng.next() % 4000;
    fault.virtual_address = (rng.next() % (1ull << 34)) & ~std::uint64_t{3};
    fault.expected = static_cast<Word>(rng.next());
    Word mask = static_cast<Word>(1u << (rng.next() % 32));
    if (i % 5 == 0) mask |= static_cast<Word>(1u << (rng.next() % 32));
    fault.actual = fault.expected ^ mask;
    fault.temperature_c =
        i % 4 == 0 ? kNoTemperature : 20.0 + static_cast<double>(rng.next() % 30);
    faults.push_back(fault);
  }
  return faults;
}

std::string build_store(const std::vector<analysis::FaultRecord>& faults,
                        const k::EncodeKernels* encode) {
  store::StoreBuilder builder(store::StoreBuilder::Config{128});
  if (encode != nullptr) builder.set_encode_kernels(*encode);
  builder.set_fingerprint(0xC0FFEE);
  const TimePoint start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  builder.begin_faults(analysis::FaultStreamContext{{start, start + 400'000}});
  for (const analysis::FaultRecord& fault : faults) builder.on_fault(fault);
  builder.end_faults();
  return builder.encode();
}

TEST(EncodeIdentityTest, StoreFileIdenticalAcrossIsasAndDefaultSet) {
  // 777 rows over 128-row segments: five full segments plus a short tail,
  // so the column loops hit both bulk and residue paths.
  const auto faults = canonical_faults(777, 42);
  const std::string expect =
      build_store(faults, &k::encode_kernels_for(simd::Isa::kScalar));
  ASSERT_GT(expect.size(), 64u);
  EXPECT_EQ(build_store(faults, nullptr), expect) << "process-default set";
  for (const simd::Isa isa : isas())
    EXPECT_EQ(build_store(faults, &k::encode_kernels_for(isa)), expect)
        << simd::to_string(isa);
}

TEST(EncodeIdentityTest, SegmentWrapperMatchesHotPathForm) {
  const auto faults = canonical_faults(200, 7);
  const std::span<const analysis::FaultRecord> rows(faults);

  store::SegmentZone zone_wrapper;
  const std::string expect = store::encode_segment(rows, zone_wrapper);

  for (const simd::Isa isa : isas()) {
    store::SegmentZone zone;
    store::SegmentEncodeArena arena;
    std::string out = "prefix";  // offsets must be caller-relative
    store::encode_segment_into(rows, zone, out, arena,
                               k::encode_kernels_for(isa));
    EXPECT_EQ(out.substr(6), expect) << simd::to_string(isa);
    EXPECT_EQ(zone.size, expect.size()) << simd::to_string(isa);
    EXPECT_EQ(zone.rows, zone_wrapper.rows);
    EXPECT_EQ(zone.time_min, zone_wrapper.time_min);
    EXPECT_EQ(zone.time_max, zone_wrapper.time_max);
    EXPECT_EQ(zone.addr_min, zone_wrapper.addr_min);
    EXPECT_EQ(zone.addr_max, zone_wrapper.addr_max);

    // Arena reuse across segments must not leak state between bodies.
    std::string again;
    store::SegmentZone zone2;
    store::encode_segment_into(rows, zone2, again, arena,
                               k::encode_kernels_for(isa));
    EXPECT_EQ(again, expect) << simd::to_string(isa) << " (reused arena)";
  }
}

}  // namespace
}  // namespace unp::telemetry
