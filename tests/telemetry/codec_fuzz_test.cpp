// Robustness of the log parsers against malformed input: every line either
// parses, is ignored, or throws ContractViolation - never crashes, loops,
// or silently corrupts.  Mutations are seeded random edits of valid lines
// plus unstructured garbage, for both the text and the binary codec.
#include <gtest/gtest.h>

#include <string>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "telemetry/binary_codec.hpp"
#include "telemetry/codec.hpp"

namespace unp::telemetry {
namespace {

const char* kValidLines[] = {
    "START 2015-02-01T00:12:03 host=07-03 bytes=3221225472 temp=33.4",
    "END 2015-02-01T06:00:00 host=07-03 temp=33.9",
    "ALLOCFAIL 2015-02-02T10:00:00 host=07-03",
    "ERROR 2015-11-03T07:08:09 host=02-04 vaddr=0x000012345678 "
    "expected=0xffffffff actual=0xffff7bff temp=34.1 page=0x000012345",
    "ERRRUN 2015-11-03T07:08:09 host=02-04 vaddr=0x000012345678 "
    "expected=0xffffffff actual=0xffff7bff temp=34.1 page=0x000012345 "
    "period=150 count=12000",
};

class TextCodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TextCodecFuzz, MutatedLinesNeverCrash) {
  RngStream rng(GetParam());
  for (int trial = 0; trial < 4000; ++trial) {
    std::string line = kValidLines[rng.uniform_u64(std::size(kValidLines))];
    const auto edits = 1 + rng.uniform_u64(6);
    for (std::uint64_t e = 0; e < edits; ++e) {
      if (line.empty()) break;
      const std::size_t pos = rng.uniform_u64(line.size());
      switch (rng.uniform_u64(3)) {
        case 0:  // replace with random byte
          line[pos] = static_cast<char>(rng.uniform_u64(256));
          break;
        case 1:  // delete
          line.erase(pos, 1);
          break;
        default:  // duplicate a chunk
          line.insert(pos, line.substr(pos, rng.uniform_u64(8)));
          break;
      }
    }
    NodeLog log;
    try {
      (void)parse_line(line, log);
    } catch (const ContractViolation&) {
      // Rejection is a valid outcome; anything else would fail the test.
    }
  }
}

TEST_P(TextCodecFuzz, PureGarbageNeverCrashes) {
  RngStream rng(GetParam() + 1000);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string line;
    const auto len = rng.uniform_u64(120);
    for (std::uint64_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(1 + rng.uniform_u64(255)));
    }
    NodeLog log;
    try {
      (void)parse_line(line, log);
    } catch (const ContractViolation&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextCodecFuzz, ::testing::Values(1, 2, 3));

class BinaryCodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryCodecFuzz, MutatedArchivesNeverCrash) {
  // Build a small valid archive, then hammer it with random mutations.
  CampaignArchive archive;
  ErrorRecord err;
  err.node = {3, 3};
  err.time = from_civil_utc({2015, 5, 1, 0, 0, 0});
  err.expected = 0xFFFFFFFFu;
  err.actual = 0xFFFFFFFEu;
  archive.log({3, 3}).add_error(err);
  archive.log({3, 3}).add_start({err.time - 100, {3, 3}, 1 << 20, 30.0});
  const std::string valid = encode_archive(archive);

  RngStream rng(GetParam());
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = valid;
    const auto edits = 1 + rng.uniform_u64(8);
    for (std::uint64_t e = 0; e < edits; ++e) {
      switch (rng.uniform_u64(3)) {
        case 0:
          bytes[rng.uniform_u64(bytes.size())] =
              static_cast<char>(rng.uniform_u64(256));
          break;
        case 1:
          bytes.resize(rng.uniform_u64(bytes.size()) + 1);
          break;
        default:
          bytes.push_back(static_cast<char>(rng.uniform_u64(256)));
          break;
      }
    }
    try {
      (void)decode_archive(bytes);
    } catch (const ContractViolation&) {
      // Expected for corrupt input.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryCodecFuzz, ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace unp::telemetry
