// Edge cases of the streaming shard merge (telemetry/shard_merge): header
// round trips, empty and single-record shards, partition validation,
// truncation diagnostics carrying the failing shard id and byte offset, and
// cursor-based resumption.
#include "telemetry/shard_merge.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/archive_io.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::telemetry {
namespace {

constexpr TimePoint kStart = 1'440'000'000;
constexpr TimePoint kEnd = kStart + 100'000;
constexpr CampaignWindow kWindow{kStart, kEnd};
constexpr std::uint64_t kFingerprint = 0xfeedbeef;

ErrorRun run_for_node(int node_index) {
  ErrorRun run;
  run.first.time = kStart + 10 + node_index;
  run.first.node = cluster::node_from_index(node_index);
  run.first.virtual_address = 0x1000u + static_cast<std::uint64_t>(node_index);
  run.first.expected = 0;
  run.first.actual = 1;
  return run;
}

/// UNPS stream holding one single-record frame per listed node.
std::string stream_bytes(const std::vector<int>& nodes) {
  std::ostringstream os;
  ArchiveWriter writer(os);
  writer.begin_campaign(kWindow);
  for (const int n : nodes) {
    const cluster::NodeId id = cluster::node_from_index(n);
    writer.begin_node(id);
    writer.on_error_run(run_for_node(n));
    writer.end_node(id);
  }
  writer.end_campaign();
  return os.str();
}

/// Shard archive = UNPH prefix + the node frames this shard owns.
std::string shard_bytes(std::uint32_t count, std::uint32_t index,
                        const std::vector<int>& nodes,
                        std::uint64_t fingerprint = kFingerprint) {
  std::ostringstream os;
  write_shard_header(os, {count, index, fingerprint});
  os << stream_bytes(nodes);
  return os.str();
}

std::string write_temp(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
  return path;
}

TEST(ShardHeader, RoundTrips) {
  std::ostringstream os;
  const ShardHeader header{7, 3, 0x123456789abcdef0ull};
  write_shard_header(os, header);
  std::istringstream is(os.str());
  EXPECT_EQ(read_shard_header(is), header);
}

TEST(ShardHeader, RejectsBadMagicAndTruncation) {
  std::ostringstream os;
  write_shard_header(os, {2, 0, kFingerprint});
  std::string bytes = os.str();

  std::string corrupt = bytes;
  corrupt[0] = 'X';
  std::istringstream bad_magic(corrupt);
  EXPECT_THROW((void)read_shard_header(bad_magic), DecodeError);

  std::istringstream truncated(bytes.substr(0, bytes.size() - 1));
  EXPECT_THROW((void)read_shard_header(truncated), DecodeError);
}

TEST(ShardMerge, EmptyAndSingleRecordShardsMergeToMonolithic) {
  // Shard 1 owns no loud node at all: its stream is header + end frame.
  const std::string p0 = write_temp("smt_e0.unph", shard_bytes(3, 0, {0, 6}));
  const std::string p1 = write_temp("smt_e1.unph", shard_bytes(3, 1, {}));
  const std::string p2 = write_temp("smt_e2.unph", shard_bytes(3, 2, {2}));

  std::ostringstream merged;
  merge_shard_archives({p0, p1, p2}, merged);
  EXPECT_EQ(merged.view(), stream_bytes({0, 2, 6}));

  // The reader agrees on the partition metadata.
  ShardMergeReader reader({p2, p0, p1});  // any path order
  EXPECT_EQ(reader.shard_count(), 3);
  EXPECT_EQ(reader.fingerprint(), kFingerprint);
  EXPECT_EQ(reader.window().start, kWindow.start);
  EXPECT_EQ(reader.window().end, kWindow.end);
  cluster::NodeId node;
  NodeLog log;
  std::vector<int> seen;
  while (reader.next(node, log)) seen.push_back(cluster::node_index(node));
  EXPECT_EQ(seen, (std::vector<int>{0, 2, 6}));
  EXPECT_EQ(reader.frames_merged(), 3u);

  for (const auto& p : {p0, p1, p2}) std::remove(p.c_str());
}

TEST(ShardMerge, AllShardsEmptyYieldsEmptyMonolithicStream) {
  const std::string p0 = write_temp("smt_ae0.unph", shard_bytes(2, 0, {}));
  const std::string p1 = write_temp("smt_ae1.unph", shard_bytes(2, 1, {}));
  std::ostringstream merged;
  merge_shard_archives({p0, p1}, merged);
  EXPECT_EQ(merged.view(), stream_bytes({}));
  std::remove(p0.c_str());
  std::remove(p1.c_str());
}

TEST(ShardMerge, RejectsIncompleteOrMismatchedPartitions) {
  const std::string p0 = write_temp("smt_m0.unph", shard_bytes(2, 0, {0}));
  const std::string p1 = write_temp("smt_m1.unph", shard_bytes(2, 1, {1}));
  const std::string p1_of3 = write_temp("smt_m2.unph", shard_bytes(3, 1, {1}));
  const std::string p1_fp =
      write_temp("smt_m3.unph", shard_bytes(2, 1, {1}, 0x999));

  EXPECT_THROW(ShardMergeReader({p0}), ContractViolation);         // missing
  EXPECT_THROW(ShardMergeReader({p0, p0}), ContractViolation);     // duplicate
  EXPECT_THROW(ShardMergeReader({p0, p1_of3}), ContractViolation); // count
  EXPECT_THROW(ShardMergeReader({p0, p1_fp}), ContractViolation);  // ensemble

  ShardMergeReader ok({p0, p1});
  EXPECT_EQ(ok.shard_count(), 2);
  for (const auto& p : {p0, p1, p1_of3, p1_fp}) std::remove(p.c_str());
}

TEST(ShardMerge, OverlappingPartitionIsRejected) {
  // Both shards claim node 5: the partition invariant is broken and a
  // "stable merge" of the streams would be ambiguous.
  const std::string p0 = write_temp("smt_o0.unph", shard_bytes(2, 0, {5}));
  const std::string p1 = write_temp("smt_o1.unph", shard_bytes(2, 1, {5}));
  std::ostringstream merged;
  try {
    merge_shard_archives({p0, p1}, merged);
    FAIL() << "overlapping partition not detected";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.detail()).find("overlapping"), std::string::npos)
        << e.detail();
  }
  std::remove(p0.c_str());
  std::remove(p1.c_str());
}

TEST(ShardMerge, TruncationNamesShardAndByteOffset) {
  const std::string p0 = write_temp("smt_t0.unph", shard_bytes(2, 0, {0, 2}));
  const std::string full = shard_bytes(2, 1, {1, 3});
  // Cut mid-frame, well past the header, so the failure surfaces while
  // decoding shard 1's second frame.
  const std::string p1 =
      write_temp("smt_t1.unph", full.substr(0, full.size() - 4));

  try {
    ShardMergeReader reader({p0, p1});
    cluster::NodeId node;
    NodeLog log;
    while (reader.next(node, log)) {
    }
    FAIL() << "truncated shard not detected";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.detail()).find("shard 1"), std::string::npos)
        << e.detail();
    EXPECT_GT(e.byte_offset(), 0u);
    EXPECT_LT(e.byte_offset(), full.size());
  }
  std::remove(p0.c_str());
  std::remove(p1.c_str());
}

TEST(ShardMerge, CursorsResumeExactlyWhereTheMergeStopped) {
  const std::string p0 =
      write_temp("smt_c0.unph", shard_bytes(2, 0, {0, 2, 4, 8}));
  const std::string p1 = write_temp("smt_c1.unph", shard_bytes(2, 1, {1, 5}));
  const std::vector<std::string> paths = {p0, p1};

  std::vector<int> all;
  {
    ShardMergeReader reader(paths);
    cluster::NodeId node;
    NodeLog log;
    while (reader.next(node, log)) all.push_back(cluster::node_index(node));
  }
  ASSERT_EQ(all, (std::vector<int>{0, 1, 2, 4, 5, 8}));

  // Stop after every possible prefix, snapshot, resume, finish.
  for (std::size_t stop = 0; stop <= all.size(); ++stop) {
    SCOPED_TRACE(testing::Message() << "stop=" << stop);
    ShardMergeReader first(paths);
    cluster::NodeId node;
    NodeLog log;
    std::vector<int> seen;
    for (std::size_t i = 0; i < stop; ++i) {
      ASSERT_TRUE(first.next(node, log));
      seen.push_back(cluster::node_index(node));
    }
    const std::vector<ShardCursor> cursors = first.cursors();

    ShardMergeReader resumed(paths, cursors);
    while (resumed.next(node, log)) seen.push_back(cluster::node_index(node));
    EXPECT_EQ(seen, all);
  }

  std::remove(p0.c_str());
  std::remove(p1.c_str());
}

}  // namespace
}  // namespace unp::telemetry
