// Codec round trips over a real, full-scale archive: the seed-42 default
// campaign pushed through the binary codec, the streaming spill format and
// the text codec.  binary_codec_test covers hand-built records; this suite
// covers the actual 13-month record population (runs, missing temperatures,
// alloc failures, the pathological node's megarun stream).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "sim/campaign.hpp"
#include "telemetry/archive_io.hpp"
#include "telemetry/binary_codec.hpp"
#include "telemetry/codec.hpp"

namespace unp::telemetry {
namespace {

const CampaignArchive& campaign_archive() {
  return sim::default_campaign().archive;
}

TEST(CampaignRoundTrip, BinaryCodecIsExactOnFullArchive) {
  const CampaignArchive& archive = campaign_archive();
  ASSERT_GT(archive.total_raw_errors(), 1000000u);  // full-scale input

  const std::string bytes = encode_archive(archive);
  const CampaignArchive parsed = decode_archive(bytes);
  EXPECT_EQ(parsed.window().start, archive.window().start);
  EXPECT_EQ(parsed.window().end, archive.window().end);
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    const NodeLog& a = archive.log(node);
    const NodeLog& b = parsed.log(node);
    ASSERT_EQ(a.starts(), b.starts()) << "node " << i;
    ASSERT_EQ(a.ends(), b.ends()) << "node " << i;
    ASSERT_EQ(a.alloc_fails(), b.alloc_fails()) << "node " << i;
    ASSERT_EQ(a.error_runs(), b.error_runs()) << "node " << i;
  }
}

TEST(CampaignRoundTrip, StreamFormatIsExactOnFullArchive) {
  const CampaignArchive& archive = campaign_archive();
  const std::string path =
      (std::filesystem::temp_directory_path() / "unp_campaign_roundtrip.unps")
          .string();
  save_archive_stream(archive, path);
  const CampaignArchive loaded = load_archive_stream(path);
  std::filesystem::remove(path);

  EXPECT_EQ(encode_archive(loaded), encode_archive(archive));
}

TEST(CampaignRoundTrip, TextCodecRoundTripsFullArchive) {
  // The text format keeps temperatures at 0.1 degC resolution (the log files'
  // human-facing precision); every other field must survive exactly.
  const CampaignArchive& archive = campaign_archive();
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const NodeLog& original = archive.log(cluster::node_from_index(i));
    std::stringstream ss;
    write_node_log(ss, original);
    const NodeLog parsed = read_node_log(ss);

    ASSERT_EQ(parsed.starts().size(), original.starts().size()) << "node " << i;
    for (std::size_t r = 0; r < original.starts().size(); ++r) {
      const StartRecord& a = original.starts()[r];
      const StartRecord& b = parsed.starts()[r];
      ASSERT_EQ(b.time, a.time);
      ASSERT_EQ(b.node, a.node);
      ASSERT_EQ(b.allocated_bytes, a.allocated_bytes);
      ASSERT_EQ(has_temperature(b.temperature_c), has_temperature(a.temperature_c));
      if (has_temperature(a.temperature_c)) {
        ASSERT_NEAR(b.temperature_c, a.temperature_c, 0.05 + 1e-9);
      }
    }
    ASSERT_EQ(parsed.ends().size(), original.ends().size()) << "node " << i;
    for (std::size_t r = 0; r < original.ends().size(); ++r) {
      ASSERT_EQ(parsed.ends()[r].time, original.ends()[r].time);
      if (has_temperature(original.ends()[r].temperature_c)) {
        ASSERT_NEAR(parsed.ends()[r].temperature_c,
                    original.ends()[r].temperature_c, 0.05 + 1e-9);
      }
    }
    ASSERT_EQ(parsed.alloc_fails(), original.alloc_fails()) << "node " << i;
    ASSERT_EQ(parsed.error_runs().size(), original.error_runs().size());
    for (std::size_t r = 0; r < original.error_runs().size(); ++r) {
      const ErrorRun& a = original.error_runs()[r];
      const ErrorRun& b = parsed.error_runs()[r];
      ASSERT_EQ(b.first.time, a.first.time);
      ASSERT_EQ(b.first.virtual_address, a.first.virtual_address);
      ASSERT_EQ(b.first.expected, a.first.expected);
      ASSERT_EQ(b.first.actual, a.first.actual);
      ASSERT_EQ(b.first.physical_page, a.first.physical_page);
      ASSERT_EQ(b.period_s, a.period_s);
      ASSERT_EQ(b.count, a.count);
      if (has_temperature(a.first.temperature_c)) {
        ASSERT_NEAR(b.first.temperature_c, a.first.temperature_c, 0.05 + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace unp::telemetry
