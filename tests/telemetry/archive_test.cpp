#include "telemetry/archive.hpp"

#include <gtest/gtest.h>

namespace unp::telemetry {
namespace {

constexpr std::uint64_t kGiB = 1ULL << 30;

NodeLog make_session_log(TimePoint start, TimePoint end,
                         std::uint64_t bytes = 3 * kGiB) {
  NodeLog log;
  log.add_start({start, {1, 1}, bytes, 30.0});
  log.add_end({end, {1, 1}, 30.0});
  return log;
}

TEST(NodeLog, MonitoredHoursSimpleSession) {
  const NodeLog log = make_session_log(0, 7200);
  EXPECT_DOUBLE_EQ(log.monitored_hours(), 2.0);
}

TEST(NodeLog, MonitoredHoursMultipleSessions) {
  NodeLog log;
  log.add_start({0, {1, 1}, kGiB, 30.0});
  log.add_end({3600, {1, 1}, 30.0});
  log.add_start({10000, {1, 1}, kGiB, 30.0});
  log.add_end({10000 + 7200, {1, 1}, 30.0});
  EXPECT_DOUBLE_EQ(log.monitored_hours(), 3.0);
}

TEST(NodeLog, HardRebootContributesZero) {
  // START followed by another START (END lost): the paper's conservative
  // rule counts zero hours for the first session.
  NodeLog log;
  log.add_start({0, {1, 1}, kGiB, 30.0});
  log.add_start({50000, {1, 1}, kGiB, 30.0});  // reboot: no END in between
  log.add_end({50000 + 3600, {1, 1}, 30.0});
  EXPECT_DOUBLE_EQ(log.monitored_hours(), 1.0);
}

TEST(NodeLog, TrailingStartWithoutEnd) {
  NodeLog log;
  log.add_start({0, {1, 1}, kGiB, 30.0});
  EXPECT_DOUBLE_EQ(log.monitored_hours(), 0.0);
  EXPECT_DOUBLE_EQ(log.terabyte_hours(), 0.0);
}

TEST(NodeLog, TerabyteHoursWeightsAllocation) {
  // 3 GiB for 1 hour = 3/1024 TB-h.
  const NodeLog log = make_session_log(0, 3600, 3 * kGiB);
  EXPECT_NEAR(log.terabyte_hours(), 3.0 / 1024.0, 1e-9);
  // Hours are unchanged by allocation size; TB-h scale with it.
  const NodeLog small = make_session_log(0, 3600, kGiB);
  EXPECT_DOUBLE_EQ(small.monitored_hours(), 1.0);
  EXPECT_NEAR(small.terabyte_hours(), 1.0 / 1024.0, 1e-9);
}

TEST(NodeLog, RawErrorCountSumsRuns) {
  NodeLog log;
  ErrorRecord e;
  e.node = {1, 1};
  log.add_error(e);
  log.add_error_run({e, 150, 999});
  EXPECT_EQ(log.raw_error_count(), 1000u);
}

TEST(NodeLog, SortByTime) {
  NodeLog log;
  ErrorRecord late;
  late.time = 100;
  ErrorRecord early;
  early.time = 10;
  log.add_error(late);
  log.add_error(early);
  log.sort_by_time();
  EXPECT_EQ(log.error_runs()[0].first.time, 10);
}

TEST(Archive, AggregatesAcrossNodes) {
  CampaignArchive archive;
  archive.log({0, 1}) = make_session_log(0, 3600);
  archive.log({5, 9}) = make_session_log(0, 7200);
  ErrorRecord e;
  e.node = {0, 1};
  archive.log({0, 1}).add_error(e);
  EXPECT_DOUBLE_EQ(archive.total_monitored_hours(), 3.0);
  EXPECT_NEAR(archive.total_terabyte_hours(), 9.0 / 1024.0, 1e-9);
  EXPECT_EQ(archive.total_raw_errors(), 1u);
}

TEST(Archive, WindowDefaultsToCampaign) {
  const CampaignArchive archive;
  EXPECT_EQ(archive.window().duration_days(), 394);
}

}  // namespace
}  // namespace unp::telemetry
