// The shadow engine's acceptance property: a ThresholdQuarantinePolicy run
// online against the record stream produces an outcome ledger bit-identical
// to resilience::simulate_quarantine over the finished extraction — field
// for field, including the derived doubles.
#include "policy/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "analysis/regime.hpp"
#include "policy/builtin.hpp"
#include "resilience/quarantine.hpp"
#include "sim/campaign.hpp"
#include "telemetry/sink.hpp"

namespace unp::policy {
namespace {

/// One synthetic raw error: (node index, time, distinct address).
struct RawError {
  int node_index;
  TimePoint time;
  std::uint64_t virtual_address;
};

/// Feed a synthetic node-ordered stream (the RecordSink protocol the
/// campaign and the cache replay both speak) into `sink`.  Addresses are
/// distinct and times spaced beyond the merge window, so every raw error
/// collapses to exactly one independent fault.
void stream_errors(telemetry::RecordSink& sink, const CampaignWindow& window,
                   const std::vector<RawError>& errors) {
  sink.begin_campaign(window);
  for (int index = 0; index < cluster::kStudyNodeSlots; ++index) {
    const cluster::NodeId node = cluster::node_from_index(index);
    bool any = false;
    for (const RawError& e : errors) {
      if (e.node_index != index) continue;
      if (!any) sink.begin_node(node);
      any = true;
      telemetry::ErrorRun run;
      run.first.time = e.time;
      run.first.node = node;
      run.first.virtual_address = e.virtual_address;
      run.first.expected = 0xFFFFFFFFu;
      run.first.actual = 0xFFFFFFFEu;
      run.count = 1;
      sink.on_error_run(run);
    }
    if (any) sink.end_node(node);
  }
  sink.end_campaign();
}

/// Synthetic burst: `count` errors on `day`, 600 s apart (beyond the 300 s
/// merge window), each at a fresh address.
void add_burst(std::vector<RawError>& out, int node_index,
               const CampaignWindow& w, int day, int count) {
  for (int i = 0; i < count; ++i) {
    out.push_back({node_index,
                   w.start + day * kSecondsPerDay + 3600 + i * 600,
                   0x1000u + static_cast<std::uint64_t>(out.size()) * 0x40u});
  }
}

EngineResult run_engine(const CampaignWindow& window,
                        const std::vector<RawError>& errors, int period_days,
                        bool exclude_loudest = false) {
  PolicyEngine::Config config;
  config.exclude_loudest = exclude_loudest;
  PolicyEngine engine(config);
  ThresholdQuarantinePolicy::Config tq;
  tq.period_days = period_days;
  engine.add_policy(std::make_unique<ThresholdQuarantinePolicy>(tq));
  stream_errors(engine, window, errors);
  return engine.finish();
}

void expect_bit_identical(const resilience::QuarantineOutcome& online,
                          const resilience::QuarantineOutcome& batch) {
  EXPECT_EQ(online.period_days, batch.period_days);
  EXPECT_EQ(online.counted_errors, batch.counted_errors);
  EXPECT_EQ(online.suppressed_errors, batch.suppressed_errors);
  EXPECT_EQ(online.quarantine_entries, batch.quarantine_entries);
  EXPECT_EQ(online.quarantined_seconds, batch.quarantined_seconds);
  // == on doubles: both sides compute the same expression from the same
  // integers, so these are bitwise-equal, not just close.
  EXPECT_EQ(online.node_days_quarantined, batch.node_days_quarantined);
  EXPECT_EQ(online.system_mtbf_hours, batch.system_mtbf_hours);
  EXPECT_EQ(online.availability_loss, batch.availability_loss);
}

TEST(PolicyEngine, OnlineThresholdMatchesBatchOnSyntheticStream) {
  const CampaignWindow w;
  std::vector<RawError> errors;
  add_burst(errors, 10, w, 10, 20);   // triggers, then re-triggers later
  add_burst(errors, 10, w, 60, 20);
  add_burst(errors, 25, w, 10, 2);    // quiet node, never triggers
  add_burst(errors, 40, w, 200, 8);   // second loud node

  const EngineResult result = run_engine(w, errors, 5);
  ASSERT_TRUE(result.excluded_nodes.empty());
  resilience::QuarantineConfig config;
  config.period_days = 5;
  expect_bit_identical(result.outcomes[0].quarantine,
                       simulate_quarantine(result.extraction.faults, w, config));
}

// Satellite edge case: period 0 disables quarantine — everything is counted,
// nothing suppressed, no entries, and online still matches batch exactly.
TEST(PolicyEngine, PeriodZeroCountsEverything) {
  const CampaignWindow w;
  std::vector<RawError> errors;
  add_burst(errors, 10, w, 10, 20);
  const EngineResult result = run_engine(w, errors, 0);
  const auto& outcome = result.outcomes[0].quarantine;
  EXPECT_EQ(outcome.counted_errors, 20u);
  EXPECT_EQ(outcome.suppressed_errors, 0u);
  EXPECT_EQ(outcome.quarantine_entries, 0u);
  EXPECT_EQ(outcome.quarantined_seconds, 0);
  expect_bit_identical(outcome, simulate_quarantine(result.extraction.faults, w,
                                                    resilience::QuarantineConfig{}));
}

// Satellite edge case: a node with a single event never crosses the >3/day
// threshold, so it contributes one counted error and no quarantine.
TEST(PolicyEngine, SingleEventNodeNeverTriggers) {
  const CampaignWindow w;
  std::vector<RawError> errors;
  errors.push_back({7, w.start + 5 * kSecondsPerDay + 3600, 0x1000});
  const EngineResult result = run_engine(w, errors, 30);
  const auto& outcome = result.outcomes[0].quarantine;
  EXPECT_EQ(outcome.counted_errors, 1u);
  EXPECT_EQ(outcome.quarantine_entries, 0u);
  EXPECT_EQ(outcome.quarantined_seconds, 0);
}

// Satellite edge case: a quarantine triggered near the end of the campaign
// is clipped at window.end; the clipped integer seconds match batch exactly.
TEST(PolicyEngine, QuarantineStraddlingCampaignEndIsClipped) {
  const CampaignWindow w;
  const int last_day = static_cast<int>(w.duration_days()) - 2;
  std::vector<RawError> errors;
  add_burst(errors, 10, w, last_day, 10);
  const EngineResult result = run_engine(w, errors, 30);
  const auto& outcome = result.outcomes[0].quarantine;
  EXPECT_EQ(outcome.quarantine_entries, 1u);
  // Trigger = 4th error; the cut runs from it to the end of the campaign.
  const TimePoint trigger = w.start + last_day * kSecondsPerDay + 3600 + 3 * 600;
  EXPECT_EQ(outcome.quarantined_seconds, w.end - trigger);
  resilience::QuarantineConfig config;
  config.period_days = 30;
  expect_bit_identical(outcome,
                       simulate_quarantine(result.extraction.faults, w, config));
}

// Satellite: the full batch sweep and seven online threshold policies agree
// period by period on identical input (one engine pass).
TEST(PolicyEngine, SweepAgreesWithBatchSweepOnIdenticalInput) {
  const CampaignWindow w;
  std::vector<RawError> errors;
  for (int day = 10; day < 300; day += 12) add_burst(errors, 10, w, day, 30);
  add_burst(errors, 25, w, 50, 6);
  add_burst(errors, 40, w, 120, 2);

  PolicyEngine::Config config;
  config.exclude_loudest = false;
  PolicyEngine engine(config);
  const std::vector<int> periods{0, 5, 10, 15, 20, 25, 30};
  for (const int p : periods) {
    ThresholdQuarantinePolicy::Config tq;
    tq.period_days = p;
    engine.add_policy(std::make_unique<ThresholdQuarantinePolicy>(tq));
  }
  stream_errors(engine, w, errors);
  const EngineResult result = engine.finish();

  const auto batch =
      resilience::quarantine_sweep(result.extraction.faults, w, periods);
  ASSERT_EQ(batch.size(), result.outcomes.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_bit_identical(result.outcomes[i].quarantine, batch[i]);
  }
}

// The engine resolves the same exclusions as the batch analyses: the loudest
// node's ledger is dropped, exactly as Table II drops it up front.
TEST(PolicyEngine, LoudestNodeExcludedFromLedgers) {
  const CampaignWindow w;
  std::vector<RawError> errors;
  add_burst(errors, 10, w, 10, 50);  // loudest by far
  add_burst(errors, 25, w, 10, 2);
  const EngineResult result = run_engine(w, errors, 5, /*exclude_loudest=*/true);
  ASSERT_TRUE(result.loudest.has_value());
  EXPECT_EQ(cluster::node_index(*result.loudest), 10);
  const auto& outcome = result.outcomes[0].quarantine;
  EXPECT_EQ(outcome.counted_errors, 2u);  // only the quiet node remains
  EXPECT_EQ(outcome.quarantine_entries, 0u);

  resilience::QuarantineConfig config;
  config.period_days = 5;
  config.excluded_nodes.push_back(*result.loudest);
  expect_bit_identical(outcome,
                       simulate_quarantine(result.extraction.faults, w, config));
}

// Acceptance: the full default campaign, streamed once, reproduces the
// entire batch Table II sweep bit-identically (what `unp_policy --sweep`
// prints vs bench_tab2_quarantine).
TEST(PolicyEngine, DefaultCampaignSweepBitIdenticalToBatch) {
  const sim::CampaignResult& campaign = sim::default_campaign();
  PolicyEngine engine;
  const std::vector<int> periods{0, 5, 10, 15, 20, 25, 30};
  for (const int p : periods) {
    ThresholdQuarantinePolicy::Config tq;
    tq.period_days = p;
    engine.add_policy(std::make_unique<ThresholdQuarantinePolicy>(tq));
  }
  engine.begin_campaign(campaign.archive.window());
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    engine.begin_node(node);
    telemetry::replay_node_log(campaign.archive.log(node), engine);
    engine.end_node(node);
  }
  engine.end_campaign();
  const EngineResult result = engine.finish();

  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      result.extraction.faults, campaign.archive.window());
  resilience::QuarantineConfig base;
  if (regimes.excluded) base.excluded_nodes.push_back(*regimes.excluded);
  const auto batch = resilience::quarantine_sweep(
      result.extraction.faults, campaign.archive.window(), periods, base);
  ASSERT_EQ(result.outcomes.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_bit_identical(result.outcomes[i].quarantine, batch[i]);
  }
}

// Outcomes must not depend on how many threads produced the stream.
TEST(PolicyEngine, OutcomesInvariantAcrossStreamThreadCounts) {
  sim::CampaignConfig config;
  config.seed = 9;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 9, 21, 0, 0, 0});

  std::vector<resilience::QuarantineOutcome> outcomes;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    PolicyEngine engine;
    engine.add_policy(std::make_unique<ThresholdQuarantinePolicy>());
    (void)sim::run_campaign_streaming(config, {&engine}, threads);
    outcomes.push_back(engine.finish().outcomes[0].quarantine);
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    expect_bit_identical(outcomes[i], outcomes[0]);
  }
}

}  // namespace
}  // namespace unp::policy
