// Closed-loop campaign: actuated quarantines must reduce what the scanner
// observes, deterministically, with consistent accounting.
#include "policy/loop.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"

namespace unp::policy {
namespace {

ClosedLoopConfig short_config(std::size_t threads = 1) {
  ClosedLoopConfig config;
  config.campaign.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.campaign.window.end = from_civil_utc({2015, 11, 1, 0, 0, 0});
  // Hair trigger so the short window reliably actuates.
  config.controller.trigger_threshold = 0;
  config.controller.period_days = 10;
  config.threads = threads;
  return config;
}

TEST(ClosedLoop, ActuationReducesObservedErrors) {
  const ClosedLoopResult result = run_closed_loop(short_config());
  EXPECT_GT(result.open_loop_errors, 0u);
  EXPECT_GT(result.quarantine_entries, 0u);
  EXPECT_LT(result.closed_loop_errors, result.open_loop_errors);
  EXPECT_GT(result.closed_mtbf_hours, result.open_mtbf_hours);
  EXPECT_GT(result.scan_seconds_removed, 0);
  EXPECT_GT(result.node_days_quarantined, 0.0);
}

TEST(ClosedLoop, AccountingIsConsistent) {
  const ClosedLoopResult result = run_closed_loop(short_config());

  std::uint64_t cuts = 0, retirements = 0;
  std::int64_t removed = 0;
  for (const Actuation& a : result.actuations) {
    if (a.is_retirement) {
      ++retirements;
    } else {
      ++cuts;
      removed += a.summary.seconds_removed;
    }
  }
  EXPECT_EQ(cuts, result.quarantine_entries);
  EXPECT_EQ(retirements, result.pages_retired);
  EXPECT_EQ(removed, result.scan_seconds_removed);

  std::uint64_t open = 0, closed = 0;
  int per_node_actuations = 0;
  for (const ClosedLoopNodeReport& node : result.per_node) {
    open += node.open_faults;
    closed += node.closed_faults;
    per_node_actuations += node.actuations;
    EXPECT_GE(node.rounds, 1);
  }
  EXPECT_EQ(open, result.open_loop_errors);
  EXPECT_EQ(closed, result.closed_loop_errors);
  EXPECT_EQ(static_cast<std::size_t>(per_node_actuations),
            result.actuations.size());
}

TEST(ClosedLoop, DeterministicAcrossRunsAndThreads) {
  const ClosedLoopResult a = run_closed_loop(short_config(1));
  const ClosedLoopResult b = run_closed_loop(short_config(1));
  const ClosedLoopResult c = run_closed_loop(short_config(2));
  for (const ClosedLoopResult* other : {&b, &c}) {
    EXPECT_EQ(a.open_loop_errors, other->open_loop_errors);
    EXPECT_EQ(a.closed_loop_errors, other->closed_loop_errors);
    EXPECT_EQ(a.quarantine_entries, other->quarantine_entries);
    EXPECT_EQ(a.quarantined_seconds, other->quarantined_seconds);
    EXPECT_EQ(a.scan_seconds_removed, other->scan_seconds_removed);
    EXPECT_EQ(a.actuations.size(), other->actuations.size());
    EXPECT_EQ(a.causal_static_waste, other->causal_static_waste);
    EXPECT_EQ(a.causal_adaptive_waste, other->causal_adaptive_waste);
  }
}

TEST(ClosedLoop, PageRetirementRemovesRepeatOffenders) {
  ClosedLoopConfig config = short_config();
  config.controller.period_days = 0;  // isolate retirement
  config.controller.retire_page_repeats = 2;
  const ClosedLoopResult result = run_closed_loop(config);
  // Whether any page repeats twice in two months is data-dependent; the
  // invariants that must hold either way:
  EXPECT_EQ(result.quarantine_entries, 0u);
  EXPECT_EQ(result.scan_seconds_removed, 0);
  EXPECT_LE(result.closed_loop_errors, result.open_loop_errors);
}

}  // namespace
}  // namespace unp::policy
