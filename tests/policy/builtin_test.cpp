// The built-in policies' semantics, exercised through the engine on
// synthetic streams where the expected decisions are computable by hand.
#include "policy/builtin.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/regime.hpp"
#include "policy/engine.hpp"
#include "telemetry/sink.hpp"

namespace unp::policy {
namespace {

struct RawError {
  int node_index;
  TimePoint time;
  std::uint64_t virtual_address;
};

void stream_errors(telemetry::RecordSink& sink, const CampaignWindow& window,
                   const std::vector<RawError>& errors) {
  sink.begin_campaign(window);
  for (int index = 0; index < cluster::kStudyNodeSlots; ++index) {
    const cluster::NodeId node = cluster::node_from_index(index);
    bool any = false;
    for (const RawError& e : errors) {
      if (e.node_index != index) continue;
      if (!any) sink.begin_node(node);
      any = true;
      telemetry::ErrorRun run;
      run.first.time = e.time;
      run.first.node = node;
      run.first.virtual_address = e.virtual_address;
      run.first.expected = 0xFFFFFFFFu;
      run.first.actual = 0xFFFFFFFEu;
      run.count = 1;
      sink.on_error_run(run);
    }
    if (any) sink.end_node(node);
  }
  sink.end_campaign();
}

TimePoint at(const CampaignWindow& w, int day, int i) {
  return w.start + day * kSecondsPerDay + 3600 + i * 600;
}

// Five errors on day 2 put the trailing window over the >3 trigger, so the
// next day's first error arrives on a predicted-at-risk day: the policy
// flags the node and quarantines it one day ahead.  By day 10 the window
// has drained and nothing fires.
TEST(PredictiveQuarantine, FlagsAndQuarantinesAfterBurst) {
  const CampaignWindow w;
  std::vector<RawError> errors;
  for (int i = 0; i < 5; ++i) errors.push_back({10, at(w, 2, i), 0x1000u + static_cast<std::uint64_t>(i) * 0x40u});
  errors.push_back({10, at(w, 3, 0), 0x8000});
  errors.push_back({10, at(w, 10, 0), 0x9000});

  PolicyEngine::Config config;
  config.exclude_loudest = false;
  PolicyEngine engine(config);
  engine.add_policy(std::make_unique<PredictiveQuarantinePolicy>());
  stream_errors(engine, w, errors);
  const EngineResult result = engine.finish();
  const PolicyOutcome& outcome = result.outcomes[0];

  EXPECT_EQ(outcome.placement_flags, 1u);
  EXPECT_EQ(outcome.quarantine.quarantine_entries, 1u);
  // Day-3 error triggered the one-day quarantine from its own timestamp;
  // nothing else that day, so nothing was suppressed, and the day-10 error
  // arrived long after it lapsed.
  EXPECT_EQ(outcome.quarantine.counted_errors, 7u);
  EXPECT_EQ(outcome.quarantine.suppressed_errors, 0u);
  EXPECT_EQ(outcome.quarantine.quarantined_seconds, kSecondsPerDay);

  bool saw_flag = false, saw_quarantine = false;
  for (const Action& action : engine.actions(0)) {
    saw_flag |= action.kind == ActionKind::kAvoidPlacement;
    saw_quarantine |= action.kind == ActionKind::kQuarantineNode;
  }
  EXPECT_TRUE(saw_flag);
  EXPECT_TRUE(saw_quarantine);
}

// A second error at the same address retires its page; later faults on the
// page are absorbed by the ledger instead of counted.
TEST(ThresholdQuarantine, RetiredPageAbsorbsLaterFaults) {
  const CampaignWindow w;
  std::vector<RawError> errors;
  for (int i = 0; i < 5; ++i) errors.push_back({10, at(w, 2, i), 0x5000});

  PolicyEngine::Config config;
  config.exclude_loudest = false;
  PolicyEngine engine(config);
  ThresholdQuarantinePolicy::Config tq;
  tq.period_days = 0;  // isolate retirement from quarantine
  tq.retire_page_repeats = 2;
  engine.add_policy(std::make_unique<ThresholdQuarantinePolicy>(tq));
  stream_errors(engine, w, errors);
  const EngineResult result = engine.finish();
  const PolicyOutcome& outcome = result.outcomes[0];

  EXPECT_EQ(outcome.pages_retired, 1u);
  EXPECT_EQ(outcome.quarantine.counted_errors, 2u);
  EXPECT_EQ(outcome.retired_absorbed_errors, 3u);
  EXPECT_EQ(outcome.quarantine.quarantine_entries, 0u);
}

// The checkpoint policy's live census, finalized with the engine-resolved
// exclusions, must reproduce classify_regime_excluding_loudest exactly.
TEST(AdaptiveCheckpoint, RegimeMatchesBatchClassification) {
  const CampaignWindow w;
  std::vector<RawError> errors;
  for (int day = 10; day < 60; day += 7) {
    for (int i = 0; i < 9; ++i) {
      errors.push_back({10, at(w, day, i),
                        0x1000u + static_cast<std::uint64_t>(errors.size()) * 0x40u});
    }
  }
  for (int i = 0; i < 5; ++i) errors.push_back({25, at(w, 30, i), 0x2000u + static_cast<std::uint64_t>(i) * 0x40u});
  errors.push_back({40, at(w, 80, 0), 0x3000});

  PolicyEngine engine;  // exclude_loudest defaults on, as the batch path does
  auto policy = std::make_unique<AdaptiveCheckpointPolicy>();
  AdaptiveCheckpointPolicy* raw = policy.get();
  engine.add_policy(std::move(policy));
  stream_errors(engine, w, errors);
  const EngineResult result = engine.finish();

  const analysis::AutoRegime batch = analysis::classify_regime_excluding_loudest(
      result.extraction.faults, w);
  ASSERT_TRUE(result.loudest.has_value());
  ASSERT_TRUE(batch.excluded.has_value());
  EXPECT_EQ(*result.loudest, *batch.excluded);
  EXPECT_FALSE(result.outcomes[0].report.empty());

  EXPECT_EQ(raw->regime().degraded_days, batch.regime.degraded_days);
  EXPECT_EQ(raw->regime().normal_days, batch.regime.normal_days);
  EXPECT_EQ(raw->regime().errors_per_day, batch.regime.errors_per_day);
  EXPECT_EQ(raw->regime().normal_mtbf_hours, batch.regime.normal_mtbf_hours);
  EXPECT_EQ(raw->regime().degraded_mtbf_hours, batch.regime.degraded_mtbf_hours);
}

// Degraded days emit interval-shrink actions online (one per node-day that
// crosses the threshold).
TEST(AdaptiveCheckpoint, EmitsIntervalChangeOnDegradedDay) {
  const CampaignWindow w;
  std::vector<RawError> errors;
  for (int i = 0; i < 6; ++i) errors.push_back({10, at(w, 5, i), 0x1000u + static_cast<std::uint64_t>(i) * 0x40u});

  PolicyEngine::Config config;
  config.exclude_loudest = false;
  PolicyEngine engine(config);
  engine.add_policy(std::make_unique<AdaptiveCheckpointPolicy>());
  stream_errors(engine, w, errors);
  const EngineResult result = engine.finish();
  EXPECT_EQ(result.outcomes[0].interval_changes, 1u);
  bool saw_interval = false;
  for (const Action& action : engine.actions(0)) {
    if (action.kind == ActionKind::kSetCheckpointInterval) {
      saw_interval = true;
      EXPECT_GT(action.interval_hours, 0.0);
    }
  }
  EXPECT_TRUE(saw_interval);
}

// Multi-bit faults walk the node up the protection menu at the configured
// thresholds (1 -> SECDED, 3 -> chipkill, 10 -> large-block), each rung
// change emitting one set-protection action; single-bit faults never move
// the rung.
TEST(ProtectionSelection, EscalatesThroughMenuOnMultibitFaults) {
  const CampaignWindow w;
  PolicyEngine::Config config;
  config.exclude_loudest = false;
  PolicyEngine engine(config);
  engine.add_policy(std::make_unique<ProtectionSelectionPolicy>());

  engine.begin_campaign(w);
  const cluster::NodeId node = cluster::node_from_index(10);
  engine.begin_node(node);
  for (int i = 0; i < 12; ++i) {
    telemetry::ErrorRun run;
    run.first.time = at(w, 2, i);
    run.first.node = node;
    run.first.virtual_address = 0x1000u + static_cast<std::uint64_t>(i) * 0x40u;
    run.first.expected = 0xFFFFFFFFu;
    // Two single-bit faults mixed in: they must not advance the rung.
    run.first.actual = i % 6 == 5 ? 0xFFFFFFFEu : 0xFFFFFF00u;
    run.count = 1;
    engine.on_error_run(run);
  }
  engine.end_node(node);
  engine.end_campaign();
  const EngineResult result = engine.finish();

  // 10 multi-bit faults: rung changes at the 1st, 3rd, and 10th.
  EXPECT_EQ(result.outcomes[0].protection_changes, 3u);
  std::vector<ProtectionLevel> levels;
  for (const Action& action : engine.actions(0)) {
    if (action.kind == ActionKind::kSetProtectionLevel)
      levels.push_back(action.protection);
  }
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], ProtectionLevel::kSecded);
  EXPECT_EQ(levels[1], ProtectionLevel::kChipkill);
  EXPECT_EQ(levels[2], ProtectionLevel::kLargeBlock);
  EXPECT_FALSE(result.outcomes[0].report.empty());
}

TEST(ProtectionSelection, SingleBitFaultsNeverEscalate) {
  const CampaignWindow w;
  std::vector<RawError> errors;  // stream_errors emits single-bit flips
  for (int i = 0; i < 20; ++i)
    errors.push_back({10, at(w, 2, i),
                      0x1000u + static_cast<std::uint64_t>(i) * 0x40u});

  PolicyEngine::Config config;
  config.exclude_loudest = false;
  PolicyEngine engine(config);
  engine.add_policy(std::make_unique<ProtectionSelectionPolicy>());
  stream_errors(engine, w, errors);
  const EngineResult result = engine.finish();
  EXPECT_EQ(result.outcomes[0].protection_changes, 0u);
  for (const Action& action : engine.actions(0))
    EXPECT_NE(action.kind, ActionKind::kSetProtectionLevel);
}

}  // namespace
}  // namespace unp::policy
