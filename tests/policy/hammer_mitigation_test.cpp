// Closed-loop hammer mitigation: the detector-driven retirement loop must
// retire >= 95% of the true victim rows while keeping false retirement
// bounded, and the online policy must emit retire-page actions the moment
// a row trips.
#include <gtest/gtest.h>

#include <set>

#include "faults/hammer/generator.hpp"
#include "policy/hammer.hpp"

namespace unp::policy {
namespace {

sim::CampaignConfig hammer_campaign() {
  sim::CampaignConfig config;
  config.seed = 17;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 10, 1, 0, 0, 0});
  config.faults.enable_hammer = true;
  config.faults.hammer.hammered_node_fraction = 0.10;
  config.faults.hammer.episodes_per_node_mean = 2.0;
  return config;
}

TEST(RowPages, Lpddr3RowIsExactlyOnePage) {
  const dram::mapping::DramMapping mapping(
      dram::mapping::make_mapping_config("lpddr3:mb"));
  const auto pages = row_pages(mapping, /*bank=*/5, /*row=*/1234);
  ASSERT_EQ(pages.size(), 1u);
  // 1024 columns x 4 bytes = 4 KiB: the row IS the page containing its
  // first word.
  const std::uint64_t first = mapping.encode({5, 1234, 0});
  EXPECT_EQ(pages[0], (first * 4) >> 12);
}

TEST(HammerMitigation, RetiresTrueVictimRowsWithBoundedFalseRetirement) {
  HammerLoopConfig config;
  config.campaign = hammer_campaign();
  config.threads = 8;
  const HammerMitigationResult result = run_hammer_mitigation(config);

  // The campaign genuinely hammers: dozens of victim rows fleet-wide.
  EXPECT_GT(result.true_victim_rows, 20u);

  // Acceptance gate: >= 95% of true victim rows retired.
  EXPECT_GE(result.recall, 0.95)
      << "retired_true=" << result.retired_true
      << " true_victim_rows=" << result.true_victim_rows;

  // False retirement stays bounded: spurious retirements (rows with
  // neither hammer ground truth nor a dense fault region) must be a small
  // fraction of all retirements, and collateral ones must be genuinely
  // dense by construction (classified as such only with >= min_distinct
  // ground-truth words).
  EXPECT_LE(result.retired_spurious,
            1 + result.rows_retired / 10)
      << "rows_retired=" << result.rows_retired;
  EXPECT_EQ(result.rows_retired,
            result.retired_true + result.retired_collateral +
                result.retired_spurious);

  // Retirement actually absorbs faults on re-simulation.
  EXPECT_GT(result.absorbed_faults, 0u);
  EXPECT_EQ(result.absorbed_faults,
            result.open_observed - result.closed_observed);
  EXPECT_LE(result.max_rounds_used, config.max_rounds);

  // The per-row ledger is consistent with the totals and in node order.
  std::uint64_t trues = 0;
  for (const RetiredRow& r : result.retired) {
    if (r.kind == RetiredRow::Kind::kTrue) ++trues;
  }
  EXPECT_EQ(trues, result.retired_true);
}

TEST(HammerMitigation, DeterministicAcrossThreadCounts) {
  HammerLoopConfig config;
  config.campaign = hammer_campaign();
  // A shorter window keeps the two full runs cheap.
  config.campaign.window.end = from_civil_utc({2015, 9, 15, 0, 0, 0});

  config.threads = 1;
  const HammerMitigationResult a = run_hammer_mitigation(config);
  config.threads = 8;
  const HammerMitigationResult b = run_hammer_mitigation(config);

  EXPECT_EQ(a.rows_retired, b.rows_retired);
  EXPECT_EQ(a.retired_true, b.retired_true);
  EXPECT_EQ(a.retired_spurious, b.retired_spurious);
  EXPECT_EQ(a.open_observed, b.open_observed);
  EXPECT_EQ(a.closed_observed, b.closed_observed);
  ASSERT_EQ(a.retired.size(), b.retired.size());
  for (std::size_t i = 0; i < a.retired.size(); ++i) {
    EXPECT_EQ(a.retired[i].node, b.retired[i].node);
    EXPECT_EQ(a.retired[i].row, b.retired[i].row);
    EXPECT_EQ(a.retired[i].trigger_time, b.retired[i].trigger_time);
  }
}

TEST(HammerMitigation, RequiresHammerEnabledCampaign) {
  HammerLoopConfig config;
  config.campaign = hammer_campaign();
  config.campaign.faults.enable_hammer = false;
  EXPECT_THROW((void)run_hammer_mitigation(config), ContractViolation);
}

TEST(HammerMitigationPolicy, EmitsRetirePageOnTrigger) {
  HammerMitigationPolicy policy;
  EXPECT_EQ(policy.name(), "hammer-mitigation");

  const dram::mapping::DramMapping mapping(
      dram::mapping::make_mapping_config("lpddr3:mb"));
  const cluster::NodeId node{1, 2};
  std::vector<Action> actions;
  NodeHealth health;

  // Three distinct words of one (bank, row) within the window: the third
  // observation trips the detector and the policy retires the row's page.
  for (int i = 0; i < 3; ++i) {
    analysis::FaultRecord fault;
    fault.node = node;
    fault.first_seen = 1000 + i * 600;
    fault.virtual_address =
        mapping.encode({7, 4242, static_cast<std::uint64_t>(10 + 3 * i)}) * 4;
    policy.on_fault(fault, health, actions);
    if (i < 2) {
      EXPECT_TRUE(actions.empty());
    }
  }
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, ActionKind::kRetirePage);
  EXPECT_EQ(actions[0].node, node);
  EXPECT_EQ(actions[0].virtual_address,
            (mapping.encode({7, 4242, 0}) * 4) >> 12 << 12);
  EXPECT_EQ(policy.rows_retired(), 1u);

  // A fourth fault on the retired row does not re-trigger.
  analysis::FaultRecord fault;
  fault.node = node;
  fault.first_seen = 4000;
  fault.virtual_address = mapping.encode({7, 4242, 99}) * 4;
  policy.on_fault(fault, health, actions);
  EXPECT_EQ(actions.size(), 1u);
  EXPECT_NE(policy.report().find("1"), std::string::npos);
}

}  // namespace
}  // namespace unp::policy
