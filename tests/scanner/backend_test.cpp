#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "scanner/pattern.hpp"
#include "scanner/real_backend.hpp"
#include "scanner/sim_backend.hpp"

namespace unp::scanner {
namespace {

using Mismatch = std::pair<std::uint64_t, Word>;

std::vector<Mismatch> collect(MemoryBackend& backend, Word expected, Word next) {
  std::vector<Mismatch> out;
  backend.verify_and_write(expected, next, [&](std::uint64_t w, Word actual) {
    out.emplace_back(w, actual);
  });
  return out;
}

TEST(RealBackend, CleanPassReportsNothing) {
  RealMemoryBackend backend(1 << 16);
  backend.fill(0x00000000u);
  EXPECT_TRUE(collect(backend, 0x00000000u, 0xFFFFFFFFu).empty());
  EXPECT_TRUE(collect(backend, 0xFFFFFFFFu, 0x00000000u).empty());
}

TEST(RealBackend, PokeIsDetectedOnceThenRepaired) {
  RealMemoryBackend backend(1 << 16);
  backend.fill(0xFFFFFFFFu);
  backend.poke(100, 0xFFFF7BFFu);
  const auto first = collect(backend, 0xFFFFFFFFu, 0x00000000u);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], (Mismatch{100, 0xFFFF7BFFu}));
  // The pass rewrote the word: the next check is clean.
  EXPECT_TRUE(collect(backend, 0x00000000u, 0xFFFFFFFFu).empty());
  EXPECT_EQ(backend.peek(100), 0xFFFFFFFFu);
}

TEST(RealBackend, MismatchesReportedInAddressOrder) {
  RealMemoryBackend backend(1 << 16);
  backend.fill(0u);
  backend.poke(500, 1u);
  backend.poke(10, 2u);
  backend.poke(9000, 3u);
  const auto hits = collect(backend, 0u, 0u);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].first, 10u);
  EXPECT_EQ(hits[1].first, 500u);
  EXPECT_EQ(hits[2].first, 9000u);
}

class RealBackendThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealBackendThreads, ParallelPassMatchesSequential) {
  const std::size_t threads = GetParam();
  RealMemoryBackend seq(1 << 18, 1);
  RealMemoryBackend par(1 << 18, threads);
  seq.fill(0xFFFFFFFFu);
  par.fill(0xFFFFFFFFu);
  RngStream rng(42);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t w = rng.uniform_u64(seq.word_count());
    const auto v = static_cast<Word>(rng.next_u64());
    seq.poke(w, v);
    par.poke(w, v);
  }
  EXPECT_EQ(collect(seq, 0xFFFFFFFFu, 0u), collect(par, 0xFFFFFFFFu, 0u));
}

INSTANTIATE_TEST_SUITE_P(Threads, RealBackendThreads,
                         ::testing::Values(2, 3, 4, 8));

TEST(RealBackend, BorrowedPoolMatchesOwnedPool) {
  // A caller that already holds a pool (e.g. a campaign driver) can lend it
  // instead of paying for a second set of workers.
  ThreadPool pool(3);
  RealMemoryBackend owned(1 << 18, 3);
  RealMemoryBackend borrowed(1 << 18, pool);
  owned.fill(0x00FF00FFu);
  borrowed.fill(0x00FF00FFu);
  RngStream rng(7);
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t w = rng.uniform_u64(owned.word_count());
    const auto v = static_cast<Word>(rng.next_u64());
    owned.poke(w, v);
    borrowed.poke(w, v);
  }
  EXPECT_EQ(collect(owned, 0x00FF00FFu, 0u), collect(borrowed, 0x00FF00FFu, 0u));
  // A second backend can share the same pool concurrently with the first.
  RealMemoryBackend second(1 << 16, pool);
  second.fill(1u);
  EXPECT_TRUE(collect(second, 1u, 2u).empty());
}

TEST(RealBackend, ManyThreadsOnTinyBufferStillCoversEveryWord) {
  // Lane chunks are rounded up to whole cache lines; with 8 workers on 100
  // words most lanes are empty, and every word must still be swept once.
  RealMemoryBackend backend(100 * sizeof(Word), 8);
  backend.fill(0xABCDABCDu);
  backend.poke(0, 1u);
  backend.poke(15, 2u);   // last word of the first cache line
  backend.poke(16, 3u);   // first word of the second
  backend.poke(99, 4u);   // final word
  const auto hits = collect(backend, 0xABCDABCDu, 0u);
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0], (Mismatch{0, 1u}));
  EXPECT_EQ(hits[1], (Mismatch{15, 2u}));
  EXPECT_EQ(hits[2], (Mismatch{16, 3u}));
  EXPECT_EQ(hits[3], (Mismatch{99, 4u}));
  for (std::uint64_t w = 0; w < backend.word_count(); ++w) {
    ASSERT_EQ(backend.peek(w), 0u) << "word " << w << " not rewritten";
  }
}

TEST(RealBackend, MaskedWordsAreUnmapped) {
  // Page retirement on the real backend: masked words are neither read,
  // written, nor reported — and pokes into them are dropped.
  RealMemoryBackend backend(1000 * sizeof(Word), 2);
  backend.fill(0xFFFFFFFFu);
  backend.poke(100, 0x1u);
  backend.poke(200, 0x2u);
  backend.mask_words(90, 20);  // covers word 100, not 200
  auto hits = collect(backend, 0xFFFFFFFFu, 0x00000000u);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Mismatch{200, 0x2u}));
  // The masked word was not rewritten by the pass...
  EXPECT_EQ(backend.peek(100), 0x1u);
  // ...nor by fill, and pokes into it are dropped.
  backend.fill(0x77777777u);
  EXPECT_EQ(backend.peek(100), 0x1u);
  EXPECT_EQ(backend.peek(200), 0x77777777u);
  // Word 95 is masked: the first pass never rewrote it, fill skipped it,
  // and this poke is dropped — it still holds the original fill value.
  backend.poke(95, 0xABCDu);
  EXPECT_EQ(backend.peek(95), 0xFFFFFFFFu);
  EXPECT_TRUE(backend.is_masked(95));
  EXPECT_TRUE(collect(backend, 0x77777777u, 0u).empty());
}

TEST(RealBackend, MaskRangesCoalesceAndClampLikeSim) {
  RealMemoryBackend backend(100 * sizeof(Word), 1);
  backend.mask_words(10, 10);
  backend.mask_words(15, 10);
  backend.mask_words(25, 5);
  EXPECT_EQ(backend.masked_word_count(), 20u);
  EXPECT_TRUE(backend.is_masked(10));
  EXPECT_TRUE(backend.is_masked(29));
  EXPECT_FALSE(backend.is_masked(9));
  EXPECT_FALSE(backend.is_masked(30));
  backend.mask_words(95, 50);  // clipped to the word count
  EXPECT_EQ(backend.masked_word_count(), 25u);
  EXPECT_TRUE(backend.is_masked(99));
}

TEST(RealBackend, MaskedSimAndRealReportIdentically) {
  RealMemoryBackend real(512 * sizeof(Word), 2);
  SimulatedMemoryBackend sim(512);
  real.fill(0xFFFFFFFFu);
  sim.fill(0xFFFFFFFFu);
  for (const std::uint64_t w : {5ull, 60ull, 300ull, 501ull}) {
    real.poke(w, 0xFFFF0FFFu);
    sim.inject_transient(w, dram::CellLeakModel::all_discharge(0x0000F000u));
  }
  real.mask_words(50, 16);
  sim.mask_words(50, 16);
  real.mask_words(500, 12);
  sim.mask_words(500, 12);
  EXPECT_EQ(collect(real, 0xFFFFFFFFu, 0u), collect(sim, 0xFFFFFFFFu, 0u));
}

TEST(SimBackend, TransientVisibleOnceThenHealed) {
  SimulatedMemoryBackend backend(1ULL << 30);
  backend.fill(0xFFFFFFFFu);
  backend.inject_transient(12345, dram::CellLeakModel::all_discharge(0x10u));
  const auto hits = collect(backend, 0xFFFFFFFFu, 0x00000000u);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Mismatch{12345, 0xFFFFFFEFu}));
  EXPECT_TRUE(collect(backend, 0x00000000u, 0xFFFFFFFFu).empty());
}

TEST(SimBackend, TransientDischargeInvisibleOverZeros) {
  SimulatedMemoryBackend backend(1000);
  backend.fill(0x00000000u);
  backend.inject_transient(7, dram::CellLeakModel::all_discharge(0xFFu));
  EXPECT_TRUE(collect(backend, 0x00000000u, 0xFFFFFFFFu).empty());
}

TEST(SimBackend, StuckReassertsEveryVisiblePhase) {
  SimulatedMemoryBackend backend(1000);
  backend.fill(0x00000000u);
  backend.inject_stuck(3, dram::CellLeakModel::all_discharge(0x1u));
  // Alternating passes: stuck-at-0 is visible whenever 0xFFFFFFFF expected.
  EXPECT_TRUE(collect(backend, 0x00000000u, 0xFFFFFFFFu).empty());
  auto hits = collect(backend, 0xFFFFFFFFu, 0x00000000u);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Mismatch{3, 0xFFFFFFFEu}));
  EXPECT_TRUE(collect(backend, 0x00000000u, 0xFFFFFFFFu).empty());
  hits = collect(backend, 0xFFFFFFFFu, 0x00000000u);
  EXPECT_EQ(hits.size(), 1u);
  // After healing, the next write repairs the cell.
  backend.clear_stuck(3);
  EXPECT_EQ(backend.stuck_fault_count(), 0u);
  (void)collect(backend, 0x00000000u, 0xFFFFFFFFu);
  EXPECT_TRUE(collect(backend, 0xFFFFFFFFu, 0x00000000u).empty());
}

TEST(SimBackend, LoadSeesThroughInjections) {
  SimulatedMemoryBackend backend(100);
  backend.fill(0xFFFFFFFFu);
  EXPECT_EQ(backend.load(5), 0xFFFFFFFFu);
  backend.inject_transient(5, dram::CellLeakModel::all_discharge(0xF0u));
  EXPECT_EQ(backend.load(5), 0xFFFFFF0Fu);
}

TEST(SimBackend, MaskedWordsNeverReport) {
  SimulatedMemoryBackend backend(1000);
  backend.fill(0xFFFFFFFFu);
  backend.inject_stuck(100, dram::CellLeakModel::all_discharge(0x1u));
  backend.inject_stuck(200, dram::CellLeakModel::all_discharge(0x1u));
  backend.mask_words(90, 20);  // covers word 100, not 200
  const auto hits = collect(backend, 0xFFFFFFFFu, 0x00000000u);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 200u);
}

TEST(SimBackend, InjectionsIntoMaskedWordsAreDropped) {
  SimulatedMemoryBackend backend(1000);
  backend.fill(0xFFFFFFFFu);
  backend.mask_words(10, 5);
  backend.inject_transient(12, dram::CellLeakModel::all_discharge(0xFFu));
  backend.inject_stuck(13, dram::CellLeakModel::all_discharge(0xFFu));
  EXPECT_EQ(backend.stuck_fault_count(), 0u);
  EXPECT_TRUE(collect(backend, 0xFFFFFFFFu, 0x00000000u).empty());
}

TEST(SimBackend, MaskRangesCoalesceAndClamp) {
  SimulatedMemoryBackend backend(100);
  backend.mask_words(10, 10);
  backend.mask_words(15, 10);  // overlaps the first range
  backend.mask_words(25, 5);   // adjacent: [10, 30) in total
  EXPECT_EQ(backend.masked_word_count(), 20u);
  EXPECT_TRUE(backend.is_masked(10));
  EXPECT_TRUE(backend.is_masked(29));
  EXPECT_FALSE(backend.is_masked(9));
  EXPECT_FALSE(backend.is_masked(30));
  backend.mask_words(95, 50);  // clipped to the word count
  EXPECT_EQ(backend.masked_word_count(), 25u);
  EXPECT_TRUE(backend.is_masked(99));
}

class BackendEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackendEquivalence, SimMatchesRealUnderRandomFaultSchedule) {
  // Property: over any random schedule of transient faults and passes, the
  // sparse simulated backend reports exactly what a real buffer would.
  const std::uint64_t seed = GetParam();
  RngStream rng(seed);
  constexpr std::uint64_t kWords = 4096;
  RealMemoryBackend real(kWords * sizeof(Word), 1);
  SimulatedMemoryBackend sim(kWords);
  Pattern pattern(rng.bernoulli(0.5) ? PatternKind::kAlternating
                                     : PatternKind::kCounter);
  real.fill(pattern.written_at(0));
  sim.fill(pattern.written_at(0));

  for (std::uint64_t iter = 1; iter < 60; ++iter) {
    // Inject a few transient faults before the pass.
    const std::uint64_t faults = rng.uniform_u64(4);
    for (std::uint64_t f = 0; f < faults; ++f) {
      const std::uint64_t w = rng.uniform_u64(kWords);
      Word mask = 0;
      const std::uint64_t bits = 1 + rng.uniform_u64(3);
      for (std::uint64_t b = 0; b < bits; ++b) mask |= 1u << rng.uniform_u64(32);
      dram::WordCorruption corruption{
          mask, rng.bernoulli(0.9) ? Word{0} : mask};
      // Real backend: apply to the stored value directly.
      real.poke(w, corruption.apply(real.peek(w)));
      sim.inject_transient(w, corruption);
    }
    const Word expected = pattern.expected_at(iter);
    const Word next = pattern.written_at(iter);
    EXPECT_EQ(collect(real, expected, next), collect(sim, expected, next))
        << "iteration " << iter << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace unp::scanner
