// Acceptance criterion of PR 5: the scanner's record stream is
// byte-identical across UNP_KERNEL=scalar and the best dispatched path.
//
// active_kernels() latches the environment once per process, so instead of
// re-exec'ing the suite per UNP_KERNEL value, this test drives the same
// resolution path (resolve_isa -> kernels_for) and forces the result onto a
// RealMemoryBackend — exactly what the env var does, minus the exec.  Each
// scanner run serializes every record through the production codec; the
// resulting byte streams must match character for character.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "scanner/kernels/kernels.hpp"
#include "scanner/real_backend.hpp"
#include "scanner/scanner.hpp"
#include "telemetry/codec.hpp"

namespace unp::scanner {
namespace {

/// Sink rendering every record exactly as the per-node log files would.
class SerializingSink final : public LogSink {
 public:
  void on_start(const telemetry::StartRecord& r) override { append(r); }
  void on_end(const telemetry::EndRecord& r) override { append(r); }
  void on_alloc_fail(const telemetry::AllocFailRecord& r) override {
    append(r);
  }
  void on_error(const telemetry::ErrorRecord& r) override { append(r); }

  [[nodiscard]] const std::string& bytes() const noexcept { return bytes_; }

 private:
  template <typename Record>
  void append(const Record& r) {
    bytes_ += telemetry::serialize(r);
    bytes_ += '\n';
  }
  std::string bytes_;
};

/// One deterministic scan session: fixed fault schedule, optional page
/// retirement mid-run, serialized record stream as the result.
std::string run_session(const kernels::Kernels& k, std::size_t threads,
                        PatternKind pattern) {
  constexpr std::uint64_t kBytes = 1 << 18;
  RealMemoryBackend backend(kBytes, threads);
  backend.set_kernel_set(k);

  SerializingSink sink;
  ManualClock clock(1430000000);
  FixedProbe probe(31.5);
  MemoryScanner scan(backend, sink, clock, probe,
                     {cluster::NodeId{3, 17}, pattern, kBytes});
  scan.start();

  RngStream rng(99);
  for (int pass = 0; pass < 12; ++pass) {
    // Poke a few words with fault-like corruptions between passes.
    const std::uint64_t faults = rng.uniform_u64(5);
    for (std::uint64_t f = 0; f < faults; ++f) {
      const std::uint64_t w = rng.uniform_u64(backend.word_count());
      const Word mask = static_cast<Word>(1u << rng.uniform_u64(32)) |
                        static_cast<Word>(1u << rng.uniform_u64(32));
      backend.poke(w, backend.peek(w) ^ mask);
    }
    if (pass == 5) backend.mask_words(1000, 2048);  // retire a page mid-run
    clock.advance(97);
    scan.step();
  }
  scan.finish();
  return sink.bytes();
}

TEST(KernelIdentity, RecordStreamByteIdenticalScalarVsDispatched) {
  // What UNP_KERNEL=scalar resolves to...
  std::string warning;
  const kernels::Kernels& scalar =
      kernels::kernels_for(kernels::resolve_isa("scalar", &warning));
  ASSERT_TRUE(warning.empty()) << warning;
  ASSERT_EQ(scalar.isa, kernels::Isa::kScalar);
  // ...versus the unset-environment dispatch (the best path).
  const kernels::Kernels& best =
      kernels::kernels_for(kernels::resolve_isa(nullptr, nullptr));

  for (const PatternKind pattern :
       {PatternKind::kAlternating, PatternKind::kCounter}) {
    const std::string want = run_session(scalar, 1, pattern);
    ASSERT_FALSE(want.empty());
    EXPECT_NE(want.find("ERROR"), std::string::npos)
        << "schedule produced no mismatches; test is vacuous";
    EXPECT_EQ(run_session(best, 1, pattern), want);
    // Thread count must not change the bytes either (lane merge order).
    EXPECT_EQ(run_session(best, 4, pattern), want);
    EXPECT_EQ(run_session(scalar, 3, pattern), want);
  }
}

TEST(KernelIdentity, EverySupportedIsaProducesTheSameBytes) {
  const std::string want =
      run_session(kernels::kernels_for(kernels::Isa::kScalar), 1,
                  PatternKind::kAlternating);
  for (const kernels::Isa isa : kernels::supported_isas()) {
    EXPECT_EQ(run_session(kernels::kernels_for(isa), 2,
                          PatternKind::kAlternating),
              want)
        << to_string(isa);
  }
}

}  // namespace
}  // namespace unp::scanner
