#include "scanner/pattern.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace unp::scanner {
namespace {

TEST(Pattern, AlternatingSequence) {
  const Pattern p(PatternKind::kAlternating);
  EXPECT_EQ(p.written_at(0), 0x00000000u);
  EXPECT_EQ(p.written_at(1), 0xFFFFFFFFu);
  EXPECT_EQ(p.written_at(2), 0x00000000u);
  EXPECT_EQ(p.written_at(1000001), 0xFFFFFFFFu);
}

TEST(Pattern, AlternatingExpectedLagsWritten) {
  const Pattern p(PatternKind::kAlternating);
  for (std::uint64_t i = 1; i < 10; ++i) {
    EXPECT_EQ(p.expected_at(i), p.written_at(i - 1));
    EXPECT_EQ(p.expected_at(i) ^ p.written_at(i), 0xFFFFFFFFu);
  }
}

TEST(Pattern, CounterStartsAtOneAndIncrements) {
  // Section II-B: "we start with 0x00000001 and then keep increasing by 1".
  const Pattern p(PatternKind::kCounter);
  EXPECT_EQ(p.written_at(0), 0x00000001u);
  EXPECT_EQ(p.written_at(1), 0x00000002u);
  EXPECT_EQ(p.written_at(0x16ba), 0x000016bbu);  // a Table I expected value
  EXPECT_EQ(p.expected_at(0x16bb), 0x000016bbu);
}

TEST(Pattern, CounterWraps) {
  const Pattern p(PatternKind::kCounter);
  EXPECT_EQ(p.written_at(0xFFFFFFFFull), 0x00000000u);
  EXPECT_EQ(p.written_at(0x100000000ull), 0x00000001u);
}

TEST(Pattern, ExpectedAtZeroIsInvalid) {
  const Pattern p(PatternKind::kAlternating);
  EXPECT_THROW((void)p.expected_at(0), ContractViolation);
}

TEST(Pattern, KindNames) {
  EXPECT_STREQ(to_string(PatternKind::kAlternating), "alternating");
  EXPECT_STREQ(to_string(PatternKind::kCounter), "counter");
}

}  // namespace
}  // namespace unp::scanner
