#include "scanner/scanner.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "scanner/alloc_policy.hpp"
#include "scanner/real_backend.hpp"
#include "scanner/sim_backend.hpp"

namespace unp::scanner {
namespace {

struct Fixture {
  RealMemoryBackend backend{1 << 16};
  telemetry::NodeLog log;
  NodeLogSink sink{log};
  ManualClock clock{from_civil_utc({2015, 5, 1, 10, 0, 0})};
  FixedProbe probe{34.5};
  MemoryScanner scanner{backend, sink, clock, probe,
                        {cluster::NodeId{7, 3}, PatternKind::kAlternating, 0}};
};

TEST(Scanner, StartLogsStartRecord) {
  Fixture f;
  f.scanner.start();
  ASSERT_EQ(f.log.starts().size(), 1u);
  const auto& start = f.log.starts()[0];
  EXPECT_EQ(start.node, (cluster::NodeId{7, 3}));
  EXPECT_EQ(start.allocated_bytes, (1u << 16));
  EXPECT_DOUBLE_EQ(start.temperature_c, 34.5);
  EXPECT_EQ(start.time, f.clock.now());
}

TEST(Scanner, CleanStepsLogNoErrors) {
  Fixture f;
  f.scanner.start();
  for (int i = 0; i < 10; ++i) {
    f.clock.advance(60);
    EXPECT_TRUE(f.scanner.step());
  }
  EXPECT_EQ(f.scanner.iterations(), 10u);
  EXPECT_EQ(f.scanner.errors_logged(), 0u);
  EXPECT_TRUE(f.log.error_runs().empty());
}

TEST(Scanner, CorruptionProducesFullErrorRecord) {
  Fixture f;
  f.scanner.start();
  f.clock.advance(60);
  f.scanner.step();  // now 0xFFFFFFFF is stored
  f.backend.poke(321, 0xFFFF7BFFu);
  f.clock.advance(60);
  f.scanner.step();
  ASSERT_EQ(f.log.error_runs().size(), 1u);
  const auto& err = f.log.error_runs()[0].first;
  EXPECT_EQ(err.virtual_address, 321u * 4);
  EXPECT_EQ(err.expected, 0xFFFFFFFFu);
  EXPECT_EQ(err.actual, 0xFFFF7BFFu);
  EXPECT_EQ(err.physical_page, (321u * 4) >> 12);
  EXPECT_DOUBLE_EQ(err.temperature_c, 34.5);
  EXPECT_EQ(err.time, f.clock.now());
  EXPECT_EQ(err.flipped_bits(), 2);
}

TEST(Scanner, RequestStopEndsRun) {
  Fixture f;
  f.scanner.start();
  f.scanner.request_stop();
  f.scanner.run(1000000);
  EXPECT_EQ(f.scanner.iterations(), 1u);  // the in-flight step completes
}

TEST(Scanner, FinishLogsEnd) {
  Fixture f;
  f.scanner.start();
  f.scanner.run(5);
  f.clock.advance(500);
  f.scanner.finish();
  ASSERT_EQ(f.log.ends().size(), 1u);
  EXPECT_EQ(f.log.ends()[0].time, f.clock.now());
  // finish() closes the session; a second finish is a contract violation.
  EXPECT_THROW(f.scanner.finish(), ContractViolation);
}

TEST(Scanner, StepBeforeStartIsInvalid) {
  Fixture f;
  EXPECT_THROW((void)f.scanner.step(), ContractViolation);
}

TEST(Scanner, CounterPatternChecksPreviousValue) {
  RealMemoryBackend backend(1 << 12);
  telemetry::NodeLog log;
  NodeLogSink sink(log);
  ManualClock clock;
  FixedProbe probe;
  MemoryScanner scanner(backend, sink, clock, probe,
                        {cluster::NodeId{1, 1}, PatternKind::kCounter, 0});
  scanner.start();
  scanner.run(10);  // stored value is now 11 (0x0B)
  backend.poke(5, 0x0000000Au);  // one increment behind
  scanner.step();
  ASSERT_EQ(log.error_runs().size(), 1u);
  EXPECT_EQ(log.error_runs()[0].first.expected, 0x0000000Bu);
  EXPECT_EQ(log.error_runs()[0].first.actual, 0x0000000Au);
}

TEST(Scanner, WorksOverSimulatedBackend) {
  SimulatedMemoryBackend backend(1ULL << 28);
  telemetry::NodeLog log;
  NodeLogSink sink(log);
  ManualClock clock;
  FixedProbe probe(telemetry::kNoTemperature);
  MemoryScanner scanner(backend, sink, clock, probe,
                        {cluster::NodeId{0, 1}, PatternKind::kAlternating, 0});
  scanner.start();
  scanner.step();  // stores 0xFFFFFFFF
  backend.inject_transient(99, dram::CellLeakModel::all_discharge(0x00000300u));
  scanner.step();
  EXPECT_EQ(scanner.errors_logged(), 1u);
  EXPECT_EQ(log.error_runs()[0].first.actual, 0xFFFFFCFFu);
  // No sensor: record carries the sentinel.
  EXPECT_FALSE(telemetry::has_temperature(log.error_runs()[0].first.temperature_c));
}

TEST(AllocPolicy, FullAllocationFirstTry) {
  const AllocPolicy policy;
  const std::uint64_t got = negotiate_allocation(
      policy, [](std::uint64_t) { return true; });
  EXPECT_EQ(got, policy.target_bytes);
}

TEST(AllocPolicy, BacksOffInTenMegabyteSteps) {
  const AllocPolicy policy;
  std::vector<std::uint64_t> attempts;
  const std::uint64_t got = negotiate_allocation(policy, [&](std::uint64_t b) {
    attempts.push_back(b);
    return b <= policy.target_bytes - 3 * policy.step_bytes;
  });
  EXPECT_EQ(got, policy.target_bytes - 3 * policy.step_bytes);
  ASSERT_EQ(attempts.size(), 4u);
  EXPECT_EQ(attempts[0] - attempts[1], policy.step_bytes);
}

TEST(AllocPolicy, TotalFailureReturnsZero) {
  const AllocPolicy policy{.target_bytes = 50 << 20, .step_bytes = 10 << 20};
  int attempts = 0;
  const std::uint64_t got = negotiate_allocation(policy, [&](std::uint64_t) {
    ++attempts;
    return false;
  });
  EXPECT_EQ(got, 0u);
  EXPECT_EQ(attempts, 5);
}

}  // namespace
}  // namespace unp::scanner
