// Kernel-equivalence suite: every ISA path the CPU supports must be
// observationally identical to the scalar oracle — same mismatch stream
// (order and values), same final buffer — for every alignment, every
// head/tail residue, planted faults exactly on vector and lane boundaries,
// and the masked sweep against a plain mask loop.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "scanner/kernels/kernels.hpp"

namespace unp::scanner::kernels {
namespace {

using Hits = std::vector<Hit>;

/// The reference semantics, written as naively as possible.
void oracle_verify(Word* data, std::size_t n, std::uint64_t base, Word expected,
                   Word next, Hits& out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] != expected) out.push_back({base + i, data[i]});
    data[i] = next;
  }
}

struct KernelRun {
  Hits hits;
  std::vector<Word> buffer;
};

KernelRun run_kernel(const Kernels& k, const std::vector<Word>& input,
               std::size_t offset, std::uint64_t base, Word expected,
               Word next, bool nontemporal) {
  std::vector<Word> buf = input;
  KernelRun r;
  k.verify_and_write(buf.data() + offset, buf.size() - offset, base, expected,
                     next, nontemporal, r.hits);
  r.buffer = std::move(buf);
  return r;
}

TEST(KernelDispatch, ToStringParseRoundTrip) {
  for (const Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon}) {
    Isa parsed = Isa::kScalar;
    ASSERT_TRUE(parse_isa(to_string(isa), parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa out;
  EXPECT_FALSE(parse_isa("", out));
  EXPECT_FALSE(parse_isa("avx512", out));
  EXPECT_FALSE(parse_isa("Scalar", out));
}

TEST(KernelDispatch, ScalarAlwaysSupportedAndFirst) {
  EXPECT_TRUE(is_supported(Isa::kScalar));
  const auto isas = supported_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (const Isa isa : isas) EXPECT_TRUE(is_supported(isa));
  EXPECT_TRUE(is_supported(best_supported_isa()));
}

TEST(KernelDispatch, ResolveHonoursSupportedRequest) {
  for (const Isa isa : supported_isas()) {
    std::string warning;
    EXPECT_EQ(resolve_isa(to_string(isa), &warning), isa);
    EXPECT_TRUE(warning.empty()) << warning;
  }
}

TEST(KernelDispatch, ResolveFallsBackWithWarning) {
  std::string warning;
  EXPECT_EQ(resolve_isa(nullptr, &warning), best_supported_isa());
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(resolve_isa("", &warning), best_supported_isa());
  EXPECT_TRUE(warning.empty());

  EXPECT_EQ(resolve_isa("not-an-isa", &warning), best_supported_isa());
  EXPECT_NE(warning.find("not recognised"), std::string::npos) << warning;

#if defined(__x86_64__)
  warning.clear();
  EXPECT_EQ(resolve_isa("neon", &warning), best_supported_isa());
  EXPECT_NE(warning.find("not supported"), std::string::npos) << warning;
#endif
}

TEST(KernelDispatch, ActiveKernelsIsSupported) {
  const Kernels& k = active_kernels();
  EXPECT_TRUE(is_supported(k.isa));
  EXPECT_STREQ(k.name, to_string(k.isa));
  EXPECT_NE(k.fill, nullptr);
  EXPECT_NE(k.verify_and_write, nullptr);
}

class KernelEquivalence : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (!is_supported(GetParam())) GTEST_SKIP() << "ISA not supported here";
  }
};

TEST_P(KernelEquivalence, RandomizedBuffersMatchScalarOracle) {
  const Kernels& k = kernels_for(GetParam());
  RngStream rng(2024);
  for (int round = 0; round < 40; ++round) {
    const std::size_t offset = rng.uniform_u64(8);  // break 32-byte alignment
    const std::size_t n = 1 + rng.uniform_u64(5000);
    const Word expected = static_cast<Word>(rng.next_u64());
    const Word next = static_cast<Word>(rng.next_u64());
    const std::uint64_t base = rng.uniform_u64(1 << 20);
    const bool nontemporal = rng.bernoulli(0.5);

    std::vector<Word> input(n + offset, expected);
    const std::uint64_t plants = rng.uniform_u64(12);
    for (std::uint64_t p = 0; p < plants; ++p) {
      input[offset + rng.uniform_u64(n)] ^= static_cast<Word>(rng.next_u64());
    }

    std::vector<Word> want_buf = input;
    Hits want_hits;
    oracle_verify(want_buf.data() + offset, n, base, expected, next,
                  want_hits);

    const KernelRun got = run_kernel(k, input, offset, base, expected, next,
                               nontemporal);
    EXPECT_EQ(got.hits, want_hits) << "round " << round << " n=" << n
                                   << " offset=" << offset;
    EXPECT_EQ(got.buffer, want_buf) << "round " << round;
  }
}

TEST_P(KernelEquivalence, MismatchesAtVectorAndLaneBoundaries) {
  const Kernels& k = kernels_for(GetParam());
  // 16 words per kernel block; plant exactly at every boundary a 4/8/16-wide
  // vector could mis-handle, plus the final words of the tail.
  const std::size_t n = 256;
  const std::vector<std::size_t> plants{0,  1,  3,  4,  7,  8,   15,  16,
                                        17, 31, 32, 63, 64, 127, 128, 240,
                                        241, 254, 255};
  for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                   std::size_t{3}, std::size_t{7}}) {
    std::vector<Word> input(n + offset, 0xAAAAAAAAu);
    for (const std::size_t p : plants) input[offset + p] = 0x55555555u;

    const KernelRun got =
        run_kernel(k, input, offset, 1000, 0xAAAAAAAAu, 0x33333333u, false);
    ASSERT_EQ(got.hits.size(), plants.size()) << "offset " << offset;
    for (std::size_t i = 0; i < plants.size(); ++i) {
      EXPECT_EQ(got.hits[i].index, 1000 + plants[i]);
      EXPECT_EQ(got.hits[i].actual, 0x55555555u);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got.buffer[offset + i], 0x33333333u) << "word " << i;
    }
  }
}

TEST_P(KernelEquivalence, EveryHeadTailResidue) {
  const Kernels& k = kernels_for(GetParam());
  // n mod 16 in {0..15}: the tail loop must cover every residue, and an
  // all-mismatch buffer forces the slow path everywhere.
  for (std::size_t residue = 0; residue < 16; ++residue) {
    const std::size_t n = 64 + residue;
    for (const std::size_t offset : {std::size_t{0}, std::size_t{5}}) {
      std::vector<Word> input(n + offset, 0x12345678u);
      const KernelRun got =
          run_kernel(k, input, offset, 7, 0x9ABCDEF0u, 0x11111111u, false);
      ASSERT_EQ(got.hits.size(), n) << "residue " << residue;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got.hits[i].index, 7 + i);
        EXPECT_EQ(got.hits[i].actual, 0x12345678u);
        EXPECT_EQ(got.buffer[offset + i], 0x11111111u);
      }
    }
  }
}

TEST_P(KernelEquivalence, FillMatchesScalarForAllResidues) {
  const Kernels& k = kernels_for(GetParam());
  for (std::size_t residue = 0; residue < 16; ++residue) {
    const std::size_t n = 48 + residue;
    for (const bool nontemporal : {false, true}) {
      std::vector<Word> buf(n + 3, 0xDEADBEEFu);
      k.fill(buf.data() + 3, n, 0x0F0F0F0Fu, nontemporal);
      for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(buf[i], 0xDEADBEEFu);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(buf[3 + i], 0x0F0F0F0Fu);
    }
  }
}

TEST_P(KernelEquivalence, MaskedSweepMatchesScalarMaskLoop) {
  const Kernels& k = kernels_for(GetParam());
  RngStream rng(77);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 200 + rng.uniform_u64(800);
    const std::uint64_t base = 100 + rng.uniform_u64(5000);
    IntervalSet masked;
    const std::uint64_t ranges = rng.uniform_u64(6);
    for (std::uint64_t r = 0; r < ranges; ++r) {
      // Some ranges straddle the window edges or sit entirely outside it.
      const std::uint64_t start = base + rng.uniform_u64(n + 40) - 20;
      masked.insert(start, 1 + rng.uniform_u64(60));
    }

    std::vector<Word> input(n);
    for (auto& w : input) w = rng.bernoulli(0.2)
                                   ? static_cast<Word>(rng.next_u64())
                                   : 0xCAFEBABEu;

    // Reference: the plain per-word mask loop.
    std::vector<Word> want_buf = input;
    Hits want_hits;
    for (std::size_t i = 0; i < n; ++i) {
      if (masked.contains(base + i)) continue;  // unmapped: untouched
      if (want_buf[i] != 0xCAFEBABEu) want_hits.push_back({base + i, want_buf[i]});
      want_buf[i] = 0x0BADF00Du;
    }

    std::vector<Word> got_buf = input;
    Hits got_hits;
    masked_verify_and_write(k, got_buf.data(), n, base, 0xCAFEBABEu,
                            0x0BADF00Du, false, masked, got_hits);
    EXPECT_EQ(got_hits, want_hits) << "round " << round;
    EXPECT_EQ(got_buf, want_buf) << "round " << round;

    // Masked fill over the same decomposition: gaps filled, masks untouched.
    std::vector<Word> fill_buf = input;
    masked_fill(k, fill_buf.data(), n, base, 0x77777777u, false, masked);
    for (std::size_t i = 0; i < n; ++i) {
      if (masked.contains(base + i)) {
        EXPECT_EQ(fill_buf[i], input[i]) << "masked word written";
      } else {
        EXPECT_EQ(fill_buf[i], 0x77777777u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, KernelEquivalence,
                         ::testing::Values(Isa::kScalar, Isa::kSse2,
                                           Isa::kAvx2, Isa::kNeon),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(IntervalSetTest, CoalescesOverlapsAndAdjacency) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  s.insert(10, 10);
  s.insert(15, 10);  // overlap
  s.insert(25, 5);   // adjacent
  EXPECT_EQ(s.ranges().size(), 1u);
  EXPECT_EQ(s.total(), 20u);
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(29));
  EXPECT_FALSE(s.contains(9));
  EXPECT_FALSE(s.contains(30));
  s.insert(50, 0);  // no-op
  EXPECT_EQ(s.total(), 20u);
  s.insert(40, 5);
  EXPECT_EQ(s.ranges().size(), 2u);
  s.insert(28, 14);  // bridges both
  EXPECT_EQ(s.ranges().size(), 1u);
  EXPECT_EQ(s.total(), 35u);
}

TEST(IntervalSetTest, GapWalkDecomposesExactly) {
  IntervalSet s;
  s.insert(10, 5);   // [10, 15)
  s.insert(20, 10);  // [20, 30)
  std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps;
  s.for_each_gap(0, 40, [&](std::uint64_t a, std::uint64_t b) {
    gaps.emplace_back(a, b);
  });
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> want{
      {0, 10}, {15, 20}, {30, 40}};
  EXPECT_EQ(gaps, want);

  // Window starting inside a range.
  gaps.clear();
  s.for_each_gap(12, 25, [&](std::uint64_t a, std::uint64_t b) {
    gaps.emplace_back(a, b);
  });
  EXPECT_EQ(gaps, (std::vector<std::pair<std::uint64_t, std::uint64_t>>{
                      {15, 20}}));

  // Fully covered window: no gaps.
  gaps.clear();
  s.for_each_gap(21, 29, [&](std::uint64_t a, std::uint64_t b) {
    gaps.emplace_back(a, b);
  });
  EXPECT_TRUE(gaps.empty());

  // Empty set: one gap, the whole window.
  IntervalSet empty;
  gaps.clear();
  empty.for_each_gap(5, 9, [&](std::uint64_t a, std::uint64_t b) {
    gaps.emplace_back(a, b);
  });
  EXPECT_EQ(gaps, (std::vector<std::pair<std::uint64_t, std::uint64_t>>{
                      {5, 9}}));
}

/// Canonical-form invariants after any churn: ranges strictly ascending,
/// pairwise disjoint, never abutting (adjacency must have coalesced), and
/// total() equal to the summed widths.
void expect_canonical(const IntervalSet& s) {
  std::uint64_t total = 0;
  std::uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [begin, end] : s.ranges()) {
    ASSERT_LT(begin, end);
    if (!first) {
      // A zero-width gap between stored ranges means a missed coalesce.
      ASSERT_GT(begin, prev_end);
    }
    total += end - begin;
    prev_end = end;
    first = false;
  }
  EXPECT_EQ(total, s.total());
}

TEST(IntervalSetTest, AdversarialChurnKeepsGapWalkCanonical) {
  // Retirement churn as the closed loop produces it: pages retired out of
  // order, re-retired, nested inside earlier retirements, and abutting
  // them exactly.  A bitmap over a small universe is the oracle.
  constexpr std::uint64_t kUniverse = 512;
  IntervalSet s;
  std::vector<bool> bitmap(kUniverse, false);

  const auto insert_both = [&](std::uint64_t first, std::uint64_t count) {
    s.insert(first, count);
    for (std::uint64_t x = first; x < first + count; ++x) bitmap[x] = true;
    expect_canonical(s);
  };
  const auto expect_matches_bitmap = [&] {
    for (std::uint64_t x = 0; x < kUniverse; ++x) {
      ASSERT_EQ(s.contains(x), bitmap[x]) << "word " << x;
    }
    // The gap walk must decompose [0, kUniverse) into exactly the maximal
    // uncovered runs of the bitmap, in order, with no empty or split gaps.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps;
    s.for_each_gap(0, kUniverse, [&](std::uint64_t a, std::uint64_t b) {
      gaps.emplace_back(a, b);
    });
    std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
    for (std::uint64_t x = 0; x < kUniverse; ++x) {
      if (bitmap[x]) continue;
      if (!want.empty() && want.back().second == x) {
        ++want.back().second;
      } else {
        want.emplace_back(x, x + 1);
      }
    }
    ASSERT_EQ(gaps, want);
  };

  // Round 1: scattered seeds.
  insert_both(100, 20);
  insert_both(300, 40);
  insert_both(10, 5);
  expect_matches_bitmap();

  // Round 2: fully nested inside existing ranges (must be no-ops on the
  // range structure) and exact abutments on both sides.
  insert_both(105, 5);   // nested in [100,120)
  insert_both(300, 40);  // exact duplicate
  insert_both(310, 1);   // single word, nested
  EXPECT_EQ(s.ranges().size(), 3u);
  insert_both(120, 30);  // abuts [100,120) on the right
  insert_both(95, 5);    // abuts the merged [95,150) on the left
  insert_both(290, 10);  // abuts [300,340) on the left
  EXPECT_EQ(s.ranges().size(), 3u);
  expect_matches_bitmap();

  // Round 3: one insert bridging everything, then churn nested inside it.
  insert_both(14, 280);  // swallows [10,15) tail, [95,150), touches [290..)
  insert_both(0, 10);
  insert_both(200, 50);  // fully nested in the merged giant
  expect_matches_bitmap();

  // Round 4: deterministic pseudo-random churn, re-checking the full
  // decomposition after every insert batch.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int round = 0; round < 200; ++round) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t first = (state >> 33) % kUniverse;
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t count =
        std::min<std::uint64_t>((state >> 33) % 32, kUniverse - first);
    insert_both(first, count);
    if (round % 20 == 19) expect_matches_bitmap();
  }
  expect_matches_bitmap();
}

TEST(KernelNontemporal, ThresholdIsStableAndPositive) {
  const std::size_t t = nontemporal_threshold_bytes();
  EXPECT_GT(t, 0u);
  EXPECT_EQ(t, nontemporal_threshold_bytes());
}

}  // namespace
}  // namespace unp::scanner::kernels
