#include "sched/planner.hpp"

#include <gtest/gtest.h>

namespace unp::sched {
namespace {

cluster::AvailabilityTimeline full_window() {
  const CampaignWindow w;
  return cluster::AvailabilityTimeline({{w.start, w.end}});
}

TEST(Planner, SessionsWithinAvailabilityAndOrdered) {
  const ScanPlanner planner;
  const ScanPlan plan = planner.plan({10, 4}, full_window());
  ASSERT_FALSE(plan.sessions.empty());
  const CampaignWindow w;
  TimePoint previous_end = w.start;
  for (const auto& s : plan.sessions) {
    EXPECT_GE(s.window.start, previous_end);
    EXPECT_GT(s.window.end, s.window.start);
    EXPECT_LE(s.window.end, w.end);
    previous_end = s.window.end;
  }
}

TEST(Planner, SessionsRespectOutages) {
  const ScanPlanner planner;
  const CampaignWindow w;
  const TimePoint gap_start = from_civil_utc({2015, 6, 1, 0, 0, 0});
  const TimePoint gap_end = from_civil_utc({2015, 7, 1, 0, 0, 0});
  cluster::AvailabilityTimeline timeline({{w.start, w.end}});
  timeline.subtract({gap_start, gap_end});
  const ScanPlan plan = planner.plan({10, 4}, timeline);
  for (const auto& s : plan.sessions) {
    EXPECT_TRUE(s.window.end <= gap_start || s.window.start >= gap_end);
  }
}

TEST(Planner, DeterministicPerNode) {
  const ScanPlanner planner;
  const ScanPlan a = planner.plan({3, 7}, full_window());
  const ScanPlan b = planner.plan({3, 7}, full_window());
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_EQ(a.sessions[i].window, b.sessions[i].window);
    EXPECT_EQ(a.sessions[i].pattern, b.sessions[i].pattern);
    EXPECT_EQ(a.sessions[i].allocated_bytes, b.sessions[i].allocated_bytes);
  }
}

TEST(Planner, DifferentNodesDiffer) {
  const ScanPlanner planner;
  const ScanPlan a = planner.plan({3, 7}, full_window());
  const ScanPlan b = planner.plan({3, 8}, full_window());
  EXPECT_NE(a.sessions.size(), 0u);
  EXPECT_TRUE(a.sessions.size() != b.sessions.size() ||
              a.sessions[0].window.start != b.sessions[0].window.start);
}

TEST(Planner, ScannedHoursNearIdleFraction) {
  // Over the whole campaign the idle duty cycle averages roughly one half;
  // a node should scan ~40-60% of the wall-clock.
  const ScanPlanner planner;
  const ScanPlan plan = planner.plan({10, 4}, full_window());
  const double wall_hours =
      static_cast<double>(CampaignWindow{}.duration_seconds()) / kSecondsPerHour;
  EXPECT_GT(plan.scanned_hours(), 0.30 * wall_hours);
  EXPECT_LT(plan.scanned_hours(), 0.70 * wall_hours);
}

TEST(Planner, AugustScansMoreThanMay) {
  const ScanPlanner planner;
  double august = 0.0, may = 0.0;
  for (int blade = 10; blade < 25; ++blade) {
    const ScanPlan plan = planner.plan({blade, 4}, full_window());
    for (const auto& s : plan.sessions) {
      const int month = to_civil_utc(s.window.start).month;
      const double h = s.hours();
      if (month == 8) august += h;
      if (month == 5) may += h;
    }
  }
  EXPECT_GT(august, may * 1.3);  // vacations leave nodes idle (Fig 9)
}

TEST(Planner, MostSessionsAlternatingPattern) {
  const ScanPlanner planner;
  int alternating = 0, counter = 0;
  for (int blade = 0; blade < 10; ++blade) {
    const ScanPlan plan = planner.plan({blade, 2}, full_window());
    for (const auto& s : plan.sessions) {
      (s.pattern == scanner::PatternKind::kAlternating ? alternating : counter)++;
    }
  }
  EXPECT_GT(alternating, 3 * counter);  // "most of the study" (Section II-B)
  EXPECT_GT(counter, 0);
}

TEST(Planner, AllocationsAreThreeGiBOrBackedOff) {
  const ScanPlanner planner;
  const ScanPlan plan = planner.plan({20, 6}, full_window());
  int full = 0, reduced = 0;
  for (const auto& s : plan.sessions) {
    EXPECT_GT(s.allocated_bytes, 0u);
    EXPECT_LE(s.allocated_bytes, cluster::kScannableBytes);
    EXPECT_EQ((cluster::kScannableBytes - s.allocated_bytes) % (10ULL << 20), 0u)
        << "back-off must be whole 10 MB steps";
    (s.allocated_bytes == cluster::kScannableBytes ? full : reduced)++;
  }
  EXPECT_GT(full, reduced);  // the full allocation usually succeeds
}

TEST(Planner, PassPeriodScalesWithAllocation) {
  const ScanPlanner planner;
  const ScanPlan plan = planner.plan({20, 6}, full_window());
  for (const auto& s : plan.sessions) {
    const auto expected = static_cast<std::int64_t>(
        static_cast<double>(planner.config().base_pass_seconds) *
        static_cast<double>(s.allocated_bytes) /
        static_cast<double>(cluster::kScannableBytes));
    EXPECT_NEAR(static_cast<double>(s.pass_period_s),
                static_cast<double>(std::max<std::int64_t>(1, expected)), 1.0);
  }
}

TEST(Planner, SessionIterationsMatchWindow) {
  ScanSession s;
  s.window = {0, 1000};
  s.pass_period_s = 75;
  EXPECT_EQ(s.iterations(), 13u);
  EXPECT_NEAR(s.hours(), 1000.0 / 3600.0, 1e-12);
}

TEST(Planner, SessionAtLookup) {
  ScanPlan plan;
  plan.sessions.push_back({{100, 200}, scanner::PatternKind::kAlternating,
                           1000, 75, false});
  plan.sessions.push_back({{300, 400}, scanner::PatternKind::kAlternating,
                           1000, 75, false});
  EXPECT_EQ(plan.session_at(150), &plan.sessions[0]);
  EXPECT_EQ(plan.session_at(250), nullptr);
  EXPECT_EQ(plan.session_at(300), &plan.sessions[1]);
  EXPECT_EQ(plan.session_at(400), nullptr);
}

TEST(Planner, EndLostSessionsExcludedFromHours) {
  ScanPlan plan;
  plan.sessions.push_back({{0, 3600}, scanner::PatternKind::kAlternating,
                           3ULL << 30, 75, false});
  plan.sessions.push_back({{7200, 10800}, scanner::PatternKind::kAlternating,
                           3ULL << 30, 75, true});  // END lost
  EXPECT_DOUBLE_EQ(plan.scanned_hours(), 1.0);
}

TEST(Planner, EmptyAvailabilityYieldsEmptyPlan) {
  const ScanPlanner planner;
  const ScanPlan plan = planner.plan({1, 1}, cluster::AvailabilityTimeline{});
  EXPECT_TRUE(plan.sessions.empty());
  EXPECT_DOUBLE_EQ(plan.scanned_hours(), 0.0);
}

}  // namespace
}  // namespace unp::sched
