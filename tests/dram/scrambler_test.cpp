#include "dram/scrambler.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

namespace unp::dram {
namespace {

class ScramblerBijection : public ::testing::TestWithParam<int> {};

TEST_P(ScramblerBijection, PermutationIsBijective) {
  const int which = GetParam();
  const BitScrambler s = which == 0   ? BitScrambler::identity()
                         : which == 1 ? BitScrambler::stride3()
                                      : BitScrambler::from_seed(
                                            static_cast<std::uint64_t>(which));
  std::set<int> logicals;
  for (int p = 0; p < 32; ++p) {
    const int l = s.to_logical(p);
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 32);
    logicals.insert(l);
    EXPECT_EQ(s.to_physical(l), p);
  }
  EXPECT_EQ(logicals.size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ScramblerBijection,
                         ::testing::Values(0, 1, 2, 3, 17, 99, 12345));

TEST(Scrambler, IdentityIsIdentity) {
  const BitScrambler s = BitScrambler::identity();
  for (int p = 0; p < 32; ++p) EXPECT_EQ(s.to_logical(p), p);
  EXPECT_EQ(s.logical_mask(0xDEADBEEFu), 0xDEADBEEFu);
}

TEST(Scrambler, MaskRoundTrip) {
  const BitScrambler s = BitScrambler::stride3();
  for (Word mask : {Word{0x1}, Word{0xFF}, Word{0x80000001}, Word{0xDEADBEEF}}) {
    EXPECT_EQ(s.physical_mask(s.logical_mask(mask)), mask);
    EXPECT_EQ(std::popcount(s.logical_mask(mask)), std::popcount(mask));
  }
}

TEST(Scrambler, Stride3AdjacentLinesLandThreeApart) {
  const BitScrambler s = BitScrambler::stride3();
  int distance3 = 0, distance13 = 0;
  for (int p = 0; p < 31; ++p) {
    if (p == 15) continue;  // half boundary: lines in different lanes
    const int d = std::abs(s.to_logical(p + 1) - s.to_logical(p));
    if (d == 3) ++distance3;
    if (d == 13) ++distance13;
    EXPECT_TRUE(d == 3 || d == 13) << "pair " << p;
  }
  EXPECT_GT(distance3, distance13);  // mean distance ~3
}

TEST(Scrambler, ContiguousUpsetNonAdjacent) {
  // The paper's key layout effect: a contiguous physical upset produces a
  // non-adjacent logical flip mask.
  const BitScrambler s = BitScrambler::stride3();
  int non_adjacent = 0;
  for (int start = 0; start < 32; ++start) {
    const Word mask = s.contiguous_upset(start, 2);
    EXPECT_EQ(std::popcount(mask), 2);
    if (!flipped_bits_adjacent(mask)) ++non_adjacent;
  }
  EXPECT_GT(non_adjacent, 24);  // the large majority
}

TEST(Scrambler, ContiguousUpsetIdentityIsAdjacent) {
  const BitScrambler s = BitScrambler::identity();
  for (int start = 0; start < 30; ++start) {
    EXPECT_TRUE(flipped_bits_adjacent(s.contiguous_upset(start, 3)));
  }
}

TEST(Scrambler, ContiguousUpsetWrapsAt32) {
  const BitScrambler s = BitScrambler::identity();
  const Word mask = s.contiguous_upset(31, 2);
  EXPECT_EQ(mask, (Word{1} << 31) | Word{1});
}

TEST(Scrambler, SeededPermutationsDiffer) {
  const BitScrambler a = BitScrambler::from_seed(1);
  const BitScrambler b = BitScrambler::from_seed(2);
  bool differ = false;
  for (int p = 0; p < 32; ++p) differ |= a.to_logical(p) != b.to_logical(p);
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace unp::dram
