#include "dram/retention.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace unp::dram {
namespace {

TEST(Retention, TemperatureFactorHalvesPerStep) {
  const RetentionModel model;
  const double ref = model.config().reference_c;
  EXPECT_DOUBLE_EQ(model.temperature_factor(ref), 1.0);
  EXPECT_NEAR(model.temperature_factor(ref + 10.0), 0.5, 1e-12);
  EXPECT_NEAR(model.temperature_factor(ref - 10.0), 2.0, 1e-12);
  EXPECT_NEAR(model.temperature_factor(ref + 20.0), 0.25, 1e-12);
}

TEST(Retention, HealthyCellsNeverLeakAtNominalTemperature) {
  const RetentionModel model;
  RngStream rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double retention = model.sample_retention_s(rng);
    EXPECT_FALSE(model.leaks_at(retention, 35.0));
    EXPECT_FALSE(model.leaks_at(retention, 45.0));
  }
}

TEST(Retention, SampledRetentionIsLognormalAroundMedian) {
  const RetentionModel model;
  RngStream rng(7);
  int below = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    below += model.sample_retention_s(rng) < model.config().median_retention_s;
  }
  EXPECT_NEAR(static_cast<double>(below) / kN, 0.5, 0.02);
}

TEST(Retention, CriticalTemperatureInvertsLeakage) {
  const RetentionModel model;
  for (double retention : {0.5, 2.0, 10.0}) {
    const double critical = model.critical_temperature_c(retention);
    EXPECT_FALSE(model.leaks_at(retention, critical - 1.0));
    EXPECT_TRUE(model.leaks_at(retention, critical + 1.0));
  }
}

TEST(Retention, HotterCellsLeakSooner) {
  const RetentionModel model;
  // A marginal cell: retention 0.1 s at reference.
  EXPECT_FALSE(model.leaks_at(0.1, 45.0));
  EXPECT_TRUE(model.leaks_at(0.1, 60.0));
}

TEST(Retention, ExpectedWeakBitsMatchesFleetObservation) {
  // The calibration anchor: a 4 GB node at idle-scanning temperature should
  // carry ~0.005 observable weak bits, i.e. a few per 923-node fleet -
  // the study saw two (nodes 04-05 and 58-02).
  const RetentionModel model;
  const double per_node = model.expected_weak_bits(4ULL << 30, 35.0);
  const double fleet = per_node * 923.0;
  EXPECT_GT(fleet, 0.3);
  EXPECT_LT(fleet, 40.0);
}

TEST(Retention, WeakBitsExplodeWithHeat) {
  // The counterfactual the paper could not run: on the overheating column
  // (>60 degC) weak bits would be pervasive, consistent with its suspicion
  // that heat damage seeded the isolated SDC events.
  const RetentionModel model;
  const double cool = model.expected_weak_bits(4ULL << 30, 35.0);
  const double hot = model.expected_weak_bits(4ULL << 30, 65.0);
  EXPECT_GT(hot, 1000.0 * cool);
}

TEST(Retention, ExpectedWeakBitsMonotoneInTemperature) {
  const RetentionModel model;
  double previous = 0.0;
  for (double t = 20.0; t <= 90.0; t += 5.0) {
    const double expected = model.expected_weak_bits(4ULL << 30, t);
    EXPECT_GE(expected, previous);
    previous = expected;
  }
}

}  // namespace
}  // namespace unp::dram
