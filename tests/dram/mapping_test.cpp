// DramMapping: encode/decode inversion, menu well-formedness, GF(2) helper
// algebra, and the physical-adjacency guarantees the hammer model leans on.
#include "dram/mapping/mapping.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "dram/mapping/gf2.hpp"

namespace unp::dram::mapping {
namespace {

TEST(Gf2, RrefIsCanonicalBasisOfRowSpace) {
  // Two generating sets of the same space reduce to the same basis.
  const std::vector<std::uint64_t> a = {0b1100, 0b0110, 0b1010};
  const std::vector<std::uint64_t> b = {0b0110, 0b1100};
  EXPECT_EQ(gf2_rref(a), gf2_rref(b));
  EXPECT_EQ(gf2_rank(a), 2);

  // Pivots are lowest set bits and appear in exactly one basis vector.
  const auto basis = gf2_rref(a);
  std::uint64_t pivots = 0;
  for (const std::uint64_t v : basis) {
    const std::uint64_t pivot = v & (~v + 1);
    EXPECT_EQ(pivots & pivot, 0u);
    pivots |= pivot;
    for (const std::uint64_t other : basis) {
      if (other != v) {
        EXPECT_EQ(other & pivot, 0u);
      }
    }
  }
  EXPECT_EQ(pivots, gf2_pivot_mask(basis));
}

TEST(Gf2, NullspaceIsOrthogonalComplement) {
  const std::vector<std::uint64_t> rows = {0b100101, 0b010011};
  const int n = 6;
  const auto null = gf2_nullspace(rows, n);
  EXPECT_EQ(static_cast<int>(null.size()), n - gf2_rank(rows));
  for (const std::uint64_t v : null) {
    for (const std::uint64_t r : rows) {
      EXPECT_EQ(gf2_dot(v, r), 0);
    }
  }
  // Free-variable form: one vector per non-pivot bit.
  const std::uint64_t pivots = gf2_pivot_mask(gf2_rref(rows));
  std::set<std::uint64_t> free_bits;
  for (const std::uint64_t v : null) {
    EXPECT_TRUE(free_bits.insert(v & ~pivots).second);
    EXPECT_EQ(std::popcount(v & ~pivots), 1);
  }
}

TEST(Mapping, MenuConfigsAreWellFormed) {
  for (const std::string& name : mapping_menu()) {
    SCOPED_TRACE(name);
    const DramMapping mapping{make_mapping_config(name)};
    EXPECT_EQ(mapping.config().name, name);
    EXPECT_EQ(mapping.total_words(),
              mapping.banks() * mapping.rows() * mapping.columns());
  }
  EXPECT_THROW((void)make_mapping_config("ddr9:7ch"), ContractViolation);
}

TEST(Mapping, EncodeDecodeRoundTripsEveryMenuGeometry) {
  RngStream rng(7);
  for (const std::string& name : mapping_menu()) {
    SCOPED_TRACE(name);
    const DramMapping mapping{make_mapping_config(name)};
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t addr = rng.uniform_u64(mapping.total_words());
      const DramCoordinate c = mapping.decode(addr);
      EXPECT_LT(c.bank, mapping.banks());
      EXPECT_LT(c.row, mapping.rows());
      EXPECT_LT(c.column, mapping.columns());
      EXPECT_EQ(mapping.encode(c), addr);
    }
    for (int i = 0; i < 2000; ++i) {
      DramCoordinate c;
      c.bank = static_cast<std::uint32_t>(rng.uniform_u64(mapping.banks()));
      c.row = rng.uniform_u64(mapping.rows());
      c.column = rng.uniform_u64(mapping.columns());
      EXPECT_EQ(mapping.decode(mapping.encode(c)), c);
    }
  }
}

TEST(Mapping, AdjacentRowsShareBankAndDifferOnlyInRow) {
  // The hammer victim model flips rows +-1 around an aggressor within the
  // same bank; encode must honor that adjacency for every geometry.
  RngStream rng(11);
  for (const std::string& name : mapping_menu()) {
    SCOPED_TRACE(name);
    const DramMapping mapping{make_mapping_config(name)};
    for (int i = 0; i < 500; ++i) {
      DramCoordinate c;
      c.bank = static_cast<std::uint32_t>(rng.uniform_u64(mapping.banks()));
      c.row = 1 + rng.uniform_u64(mapping.rows() - 2);
      c.column = rng.uniform_u64(mapping.columns());
      for (const std::int64_t delta : {-1, +1}) {
        DramCoordinate v = c;
        v.row = c.row + static_cast<std::uint64_t>(delta);
        const DramCoordinate back = mapping.decode(mapping.encode(v));
        EXPECT_EQ(back.bank, c.bank);
        EXPECT_EQ(back.row, c.row + static_cast<std::uint64_t>(delta));
        EXPECT_EQ(back.column, c.column);
      }
    }
  }
}

TEST(Mapping, CanonicalBankFunctionsAreStableUnderRowMixing) {
  // Replacing one function with its XOR against another changes the
  // representation but not the addressing scheme; the canonical basis
  // must not change.
  MappingConfig config = make_mapping_config("ddr3:1ch");
  const DramMapping original{config};
  MappingConfig mixed = config;
  // fn0 ^= fn1's fold (select bits must stay dedicated, so mix fold masks
  // and express the same span by folding fn1's taps into fn0)...
  mixed.bank_functions[0].fold_mask ^=
      mixed.bank_functions[1].fold_mask |
      (std::uint64_t{1} << mixed.bank_functions[1].select_bit);
  // ...which is no longer a valid *config* (fold touches a select bit), so
  // compare spans directly at the GF(2) level instead of constructing it.
  std::vector<std::uint64_t> masks;
  for (const BankFunction& fn : mixed.bank_functions) masks.push_back(fn.mask());
  EXPECT_EQ(gf2_rref(masks), original.canonical_bank_functions());
}

TEST(Mapping, RejectsIllFormedConfigs) {
  MappingConfig config = make_mapping_config("ddr3:1ch");
  config.row_mask |= config.column_mask & 1;  // overlap
  EXPECT_THROW(DramMapping{config}, ContractViolation);

  config = make_mapping_config("ddr3:1ch");
  config.bank_functions[0].select_bit = config.bank_functions[1].select_bit;
  EXPECT_THROW(DramMapping{config}, ContractViolation);

  config = make_mapping_config("ddr3:1ch");
  config.bank_functions[0].fold_mask =
      std::uint64_t{1} << config.bank_functions[1].select_bit;
  EXPECT_THROW(DramMapping{config}, ContractViolation);

  config = make_mapping_config("ddr3:1ch");
  config.row_mask &= ~(config.row_mask & (~config.row_mask + 1));  // gap
  EXPECT_THROW(DramMapping{config}, ContractViolation);
}

}  // namespace
}  // namespace unp::dram::mapping
