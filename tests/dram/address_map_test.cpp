#include "dram/address_map.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace unp::dram {
namespace {

TEST(Geometry, DefaultIsFourGigabytes) {
  const Geometry g = default_geometry();
  EXPECT_EQ(g.total_bytes(), 4ULL << 30);
  EXPECT_EQ(g.total_words(), 1ULL << 30);
  EXPECT_EQ(g.words_per_row(), 1024u);
  EXPECT_EQ(g.words_per_bank(), 1024ULL * 65536);
}

TEST(AddressMap, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(1024), 10);
  EXPECT_THROW((void)log2_exact(0), ContractViolation);
  EXPECT_THROW((void)log2_exact(3), ContractViolation);
}

TEST(AddressMap, RoundTripProperty) {
  const AddressMap map(default_geometry());
  RngStream rng(31);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t word = rng.uniform_u64(map.geometry().total_words());
    const WordLocation loc = map.decode(word);
    EXPECT_EQ(map.encode(loc), word);
    EXPECT_LT(loc.column, map.geometry().columns);
    EXPECT_LT(loc.row, map.geometry().rows);
    EXPECT_LT(loc.bank, map.geometry().banks);
    EXPECT_LT(loc.rank, map.geometry().ranks);
  }
}

TEST(AddressMap, ConsecutiveWordsShareRow) {
  const AddressMap map(default_geometry());
  const WordLocation a = map.decode(100);
  const WordLocation b = map.decode(101);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.column + 1, b.column);
}

TEST(AddressMap, BankXorInterleavingSpreadsRows) {
  // Words at the same column of neighbouring rows must land in different
  // banks (the XOR fold).
  const AddressMap map(default_geometry());
  WordLocation loc = map.decode(0);
  WordLocation next = loc;
  next.row = loc.row + 1;
  const std::uint64_t same_col_next_row = map.encode(next);
  EXPECT_EQ(map.decode(same_col_next_row).bank, next.bank);
  EXPECT_NE(map.decode(same_col_next_row ^ 0).bank ^ loc.bank, -1);
  // The stored index differs in more than the row bits alone.
  EXPECT_NE(same_col_next_row,
            0 + (std::uint64_t{1} << 14));  // row stride without interleave
}

TEST(AddressMap, RowNeighborsCoverWholeRow) {
  const AddressMap map(default_geometry());
  const std::uint64_t word = 123456789;
  const auto neighbors = map.row_neighbors(word);
  EXPECT_EQ(neighbors.size(), map.geometry().columns);
  const WordLocation base = map.decode(word);
  std::set<std::uint32_t> columns;
  for (const std::uint64_t n : neighbors) {
    const WordLocation loc = map.decode(n);
    EXPECT_EQ(loc.row, base.row);
    EXPECT_EQ(loc.bank, base.bank);
    EXPECT_EQ(loc.rank, base.rank);
    columns.insert(loc.column);
  }
  EXPECT_EQ(columns.size(), map.geometry().columns);
}

TEST(AddressMap, ColumnNeighborsWalkRows) {
  const AddressMap map(default_geometry());
  const std::uint64_t word = 424242;
  const auto neighbors = map.column_neighbors(word, 16);
  EXPECT_EQ(neighbors.size(), 16u);
  const WordLocation base = map.decode(word);
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    const WordLocation loc = map.decode(neighbors[i]);
    EXPECT_EQ(loc.column, base.column);
    EXPECT_EQ(loc.bank, base.bank);
    EXPECT_EQ(loc.row, base.row + i);
  }
}

TEST(AddressMap, PhysicalNeighborsScatterLogically) {
  // The paper's observation: same-bank/aligned cells map to distant logical
  // addresses.  Same-column words 1 row apart must be >= a full row apart
  // logically.
  const AddressMap map(default_geometry());
  const auto neighbors = map.column_neighbors(5000, 2);
  ASSERT_EQ(neighbors.size(), 2u);
  const auto distance = neighbors[1] > neighbors[0]
                            ? neighbors[1] - neighbors[0]
                            : neighbors[0] - neighbors[1];
  EXPECT_GE(distance, map.geometry().words_per_row());
}

TEST(AddressMap, DecodeRejectsOutOfRange) {
  const AddressMap map(default_geometry());
  EXPECT_THROW((void)map.decode(map.geometry().total_words()), ContractViolation);
}

}  // namespace
}  // namespace unp::dram
