#include "dram/cell_model.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace unp::dram {
namespace {

TEST(WordCorruption, ApplyOverridesAffectedCellsOnly) {
  const WordCorruption c{0x000000FFu, 0x000000A5u};
  EXPECT_EQ(c.apply(0xFFFFFFFFu), 0xFFFFFFA5u);
  EXPECT_EQ(c.apply(0x00000000u), 0x000000A5u);
  EXPECT_EQ(c.apply(0x12345600u), 0x123456A5u);
}

TEST(WordCorruption, VisibilityDependsOnExpected) {
  // An all-discharge fault is invisible while zeros are stored.
  const WordCorruption c = CellLeakModel::all_discharge(0x00001100u);
  EXPECT_FALSE(c.visible(0x00000000u));
  EXPECT_TRUE(c.visible(0xFFFFFFFFu));
  EXPECT_EQ(c.visible_mask(0xFFFFFFFFu), 0x00001100u);
  // Visible only partially when just one affected cell held a 1.
  EXPECT_EQ(c.visible_mask(0x00001000u), 0x00001000u);
}

TEST(WordCorruption, ChargeGainVisibleInZeroPhase) {
  const WordCorruption c{0x1u, 0x1u};  // cell reads 1
  EXPECT_TRUE(c.visible(0x00000000u));
  EXPECT_FALSE(c.visible(0xFFFFFFFFu));
}

TEST(CellLeakModel, MakeCorruptionCoversMask) {
  CellLeakModel model;
  RngStream rng(5);
  for (int i = 0; i < 100; ++i) {
    const Word mask = 0x0F0F0F0Fu;
    const WordCorruption c = model.make_corruption(mask, rng);
    EXPECT_EQ(c.affected_mask, mask);
    EXPECT_EQ(c.stuck_value & ~mask, 0u);  // stuck bits only inside the mask
  }
}

TEST(CellLeakModel, DischargeFractionNearNinetyPercent) {
  CellLeakModel model;  // default 0.90
  RngStream rng(7);
  int discharge = 0, total = 0;
  for (int i = 0; i < 5000; ++i) {
    const WordCorruption c = model.make_corruption(0xFFFFFFFFu, rng);
    discharge += 32 - std::popcount(c.stuck_value);
    total += 32;
  }
  EXPECT_NEAR(static_cast<double>(discharge) / total, 0.90, 0.01);
}

TEST(CellLeakModel, AllDischargeReadsZero) {
  const WordCorruption c = CellLeakModel::all_discharge(0xFFFF0000u);
  EXPECT_EQ(c.apply(0xFFFFFFFFu), 0x0000FFFFu);
  EXPECT_EQ(std::popcount(c.visible_mask(0xFFFFFFFFu)), 16);
}

TEST(CellLeakModel, ConfigurableDirection) {
  CellLeakModel::Config config;
  config.discharge_probability = 0.0;  // every cell gains charge
  CellLeakModel model(config);
  RngStream rng(9);
  const WordCorruption c = model.make_corruption(0x000000FFu, rng);
  EXPECT_EQ(c.stuck_value, 0x000000FFu);
}

}  // namespace
}  // namespace unp::dram
