// MappingSolver self-test: every menu geometry is recovered exactly - bank
// XOR functions and row mask - from oracle timings alone.
#include "dram/mapping/solver.hpp"

#include <gtest/gtest.h>

#include "dram/mapping/gf2.hpp"
#include "dram/mapping/mapping.hpp"
#include "dram/mapping/timing_oracle.hpp"

namespace unp::dram::mapping {
namespace {

TEST(MappingSolver, RecoversEveryMenuGeometryFromTimingAlone) {
  for (const std::string& name : mapping_menu()) {
    SCOPED_TRACE(name);
    const DramMapping mapping{make_mapping_config(name)};
    AccessTimingOracle oracle(mapping, TimingConfig{}, /*seed=*/1234);
    const MappingSolver solver;
    const SolveResult result =
        solver.solve(oracle, mapping.config().address_bits);

    EXPECT_EQ(result.bank_functions, mapping.canonical_bank_functions());
    EXPECT_EQ(result.row_mask, mapping.config().row_mask);
    // Free bits that are not row bits: column bits plus any select bit
    // displaced from RREF pivot position by a lower fold tap.
    const std::uint64_t space =
        (std::uint64_t{1} << mapping.config().address_bits) - 1;
    const std::uint64_t pivots = gf2_pivot_mask(result.bank_functions);
    EXPECT_EQ(result.column_mask, space & ~pivots & ~result.row_mask);
    EXPECT_GE(result.verify_agreement, 0.999);
    EXPECT_GT(result.measurements, 0u);
  }
}

TEST(MappingSolver, RowClassificationSurvivesNoisyTiming) {
  // 3x the default measurement noise: the per-pair averaging must still
  // separate the modes cleanly.
  const DramMapping mapping{make_mapping_config("ddr4:2ch")};
  TimingConfig timing;
  timing.noise_sigma_ns = 9.0;
  AccessTimingOracle oracle(mapping, timing, /*seed=*/99);
  const MappingSolver solver;
  const SolveResult result =
      solver.solve(oracle, mapping.config().address_bits);
  EXPECT_EQ(result.bank_functions, mapping.canonical_bank_functions());
  EXPECT_EQ(result.row_mask, mapping.config().row_mask);
}

TEST(MappingSolver, DeterministicForAFixedSeed) {
  const DramMapping mapping{make_mapping_config("ddr3:2ch")};
  SolveResult results[2];
  for (SolveResult& r : results) {
    AccessTimingOracle oracle(mapping, TimingConfig{}, /*seed=*/7);
    r = MappingSolver{}.solve(oracle, mapping.config().address_bits);
  }
  EXPECT_EQ(results[0].bank_functions, results[1].bank_functions);
  EXPECT_EQ(results[0].row_mask, results[1].row_mask);
  EXPECT_EQ(results[0].measurements, results[1].measurements);
  EXPECT_EQ(results[0].threshold_ns, results[1].threshold_ns);
}

}  // namespace
}  // namespace unp::dram::mapping
