#include "env/temperature.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace unp::env {
namespace {

TEST(Temperature, RoomStaysInBand) {
  const TemperatureModel model;
  for (int h = 0; h < 48; ++h) {
    const double room =
        model.room_c(from_civil_utc({2015, 5, 1, 0, 0, 0}) + h * kSecondsPerHour);
    EXPECT_GE(room, model.config().room_min_c);
    EXPECT_LE(room, model.config().room_max_c);
  }
}

TEST(Temperature, IdleDeltaDeterministicPerNode) {
  const TemperatureModel model;
  EXPECT_DOUBLE_EQ(model.node_idle_delta_c(17), model.node_idle_delta_c(17));
  // Different nodes spread.
  bool any_different = false;
  for (std::uint32_t n = 1; n < 20; ++n) {
    any_different |= model.node_idle_delta_c(n) != model.node_idle_delta_c(0);
  }
  EXPECT_TRUE(any_different);
}

TEST(Temperature, IdleDeltaFloor) {
  const TemperatureModel model;
  for (std::uint32_t n = 0; n < 500; ++n) {
    EXPECT_GE(model.node_idle_delta_c(n), 4.0);
  }
}

TEST(Temperature, NominalNodesScanAround30To40) {
  // Fig 7's premise: an idle scanning node reads ~30-40 degC.
  const TemperatureModel model;
  RngStream rng(1);
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.add(model.sample_node_c(
        from_civil_utc({2015, 5, 1, 0, 0, 0}) + i * 977,
        static_cast<std::uint32_t>(i % 900), false, rng));
  }
  EXPECT_GT(stats.mean(), 28.0);
  EXPECT_LT(stats.mean(), 40.0);
}

TEST(Temperature, OverheatingSlotsExceedSixty) {
  const TemperatureModel model;
  RngStream rng(2);
  RunningStats stats;
  for (int i = 0; i < 500; ++i) {
    stats.add(model.sample_node_c(from_civil_utc({2015, 5, 1, 12, 0, 0}),
                                  12, true, rng));
  }
  EXPECT_GT(stats.mean(), 55.0);  // the >60 degC tail of Fig 7
}

}  // namespace
}  // namespace unp::env
