#include "env/solar.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace unp::env {
namespace {

TEST(Solar, JulianDateOfEpoch) {
  EXPECT_DOUBLE_EQ(julian_date(0), 2440587.5);
  EXPECT_DOUBLE_EQ(julian_date(kSecondsPerDay / 2), 2440588.0);
}

TEST(Solar, DeclinationWithinEarthTilt) {
  for (int month = 1; month <= 12; ++month) {
    const TimePoint t = from_civil_utc({2015, month, 15, 12, 0, 0});
    const double decl = solar_declination_deg(t);
    EXPECT_GE(decl, -23.6);
    EXPECT_LE(decl, 23.6);
  }
}

TEST(Solar, DeclinationSeasons) {
  // Positive near the June solstice, negative near December.
  EXPECT_GT(solar_declination_deg(from_civil_utc({2015, 6, 21, 12, 0, 0})), 23.0);
  EXPECT_LT(solar_declination_deg(from_civil_utc({2015, 12, 21, 12, 0, 0})), -23.0);
  // Near zero at the equinoxes.
  EXPECT_NEAR(solar_declination_deg(from_civil_utc({2015, 3, 20, 12, 0, 0})), 0.0, 1.0);
}

TEST(Solar, EquationOfTimeBounded) {
  for (int day = 0; day < 365; day += 5) {
    const TimePoint t =
        from_civil_utc({2015, 1, 1, 12, 0, 0}) + day * kSecondsPerDay;
    const double eot = equation_of_time_minutes(t);
    EXPECT_GE(eot, -15.0);
    EXPECT_LE(eot, 17.5);
  }
}

TEST(Solar, NoonHighDeepNightLow) {
  // Barcelona mid-June: high sun at 12 UTC (~13-14 h local solar).
  const TimePoint noon = from_civil_utc({2015, 6, 15, 12, 0, 0});
  EXPECT_GT(solar_elevation_deg(noon), 60.0);
  const TimePoint midnight = from_civil_utc({2015, 6, 15, 0, 0, 0});
  EXPECT_LT(solar_elevation_deg(midnight), -20.0);
}

TEST(Solar, WinterNoonLowerThanSummerNoon) {
  const double summer =
      solar_elevation_deg(from_civil_utc({2015, 6, 21, 12, 0, 0}));
  const double winter =
      solar_elevation_deg(from_civil_utc({2015, 12, 21, 12, 0, 0}));
  EXPECT_GT(summer, winter + 40.0);
  EXPECT_GT(winter, 15.0);  // Barcelona winter noon is still well up
}

TEST(Solar, ElevationPeaksNearTrueSolarNoon) {
  // Scan one day in 10-minute steps; the max must fall where the true solar
  // time is close to 12h.
  const TimePoint base = from_civil_utc({2015, 7, 1, 0, 0, 0});
  double best_elev = -90.0;
  TimePoint best_t = base;
  for (int step = 0; step < 24 * 6; ++step) {
    const TimePoint t = base + step * 600;
    const double e = solar_elevation_deg(t);
    if (e > best_elev) {
      best_elev = e;
      best_t = t;
    }
  }
  EXPECT_NEAR(true_solar_time_hours(best_t), 12.0, 0.25);
}

TEST(Solar, TrueSolarTimeWraps) {
  for (int h = 0; h < 24; ++h) {
    const double tst =
        true_solar_time_hours(from_civil_utc({2015, 4, 10, h, 0, 0}));
    EXPECT_GE(tst, 0.0);
    EXPECT_LT(tst, 24.0);
  }
}

TEST(Solar, DaytimePredicate) {
  EXPECT_TRUE(is_daytime(from_civil_utc({2015, 6, 15, 12, 0, 0})));
  EXPECT_FALSE(is_daytime(from_civil_utc({2015, 6, 15, 1, 0, 0})));
}

TEST(Solar, DayLengthSummerLongerThanWinter) {
  auto daylight_hours = [](int month, int day) {
    int count = 0;
    const TimePoint base = from_civil_utc({2015, month, day, 0, 0, 0});
    for (int m = 0; m < 24 * 60; m += 10) {
      if (is_daytime(base + m * 60)) ++count;
    }
    return count / 6.0;
  };
  const double june = daylight_hours(6, 21);
  const double december = daylight_hours(12, 21);
  EXPECT_NEAR(june, 15.1, 0.7);     // Barcelona summer solstice ~15h04
  EXPECT_NEAR(december, 9.2, 0.7);  // winter solstice ~9h12
}

}  // namespace
}  // namespace unp::env
