#include "env/calendar.hpp"

#include <gtest/gtest.h>

namespace unp::env {
namespace {

double month_mean_utilization(const AcademicCalendar& cal, int year, int month) {
  double sum = 0.0;
  int n = 0;
  const TimePoint start = from_civil_utc({year, month, 1, 12, 0, 0});
  for (int d = 0; d < 28; ++d) {
    sum += cal.utilization(start + d * kSecondsPerDay);
    ++n;
  }
  return sum / n;
}

TEST(Calendar, VacationMonthsIdle) {
  const AcademicCalendar cal;
  const double august = month_mean_utilization(cal, 2015, 8);
  const double may = month_mean_utilization(cal, 2015, 5);
  const double december = month_mean_utilization(cal, 2015, 12);
  EXPECT_LT(august, 0.45);
  EXPECT_LT(december, 0.45);
  EXPECT_GT(may, 0.55);
  EXPECT_GT(may, august + 0.2);
}

TEST(Calendar, WeekendsQuieter) {
  const AcademicCalendar cal;
  double weekday = 0.0, weekend = 0.0;
  int wd = 0, we = 0;
  const TimePoint start = from_civil_utc({2015, 5, 1, 12, 0, 0});
  for (int d = 0; d < 28; ++d) {
    const TimePoint t = start + d * kSecondsPerDay;
    const int dow = weekday_from_days(BarcelonaClock::local_day_index(t));
    if (dow == 0 || dow == 6) {
      weekend += cal.utilization(t);
      ++we;
    } else {
      weekday += cal.utilization(t);
      ++wd;
    }
  }
  EXPECT_LT(weekend / we, weekday / wd);
}

TEST(Calendar, Bounded) {
  const AcademicCalendar cal;
  for (int d = 0; d < 400; ++d) {
    const double u = cal.utilization(
        from_civil_utc({2015, 2, 1, 6, 0, 0}) + d * kSecondsPerDay);
    EXPECT_GE(u, 0.02);
    EXPECT_LE(u, 0.98);
  }
}

TEST(Calendar, DeterministicPerDay) {
  const AcademicCalendar cal;
  const TimePoint t = from_civil_utc({2015, 3, 10, 9, 0, 0});
  EXPECT_DOUBLE_EQ(cal.utilization(t), cal.utilization(t + 3600));
  EXPECT_DOUBLE_EQ(cal.utilization(t), cal.utilization(t));
}

TEST(Calendar, IdleFractionComplements) {
  const AcademicCalendar cal;
  const TimePoint t = from_civil_utc({2015, 3, 10, 9, 0, 0});
  EXPECT_DOUBLE_EQ(cal.utilization(t) + cal.idle_fraction(t), 1.0);
}

}  // namespace
}  // namespace unp::env
