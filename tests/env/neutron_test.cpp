#include "env/neutron.hpp"

#include <gtest/gtest.h>

namespace unp::env {
namespace {

TEST(Neutron, NightFluxIsAltitudeBaseline) {
  const NeutronFluxModel model;
  const TimePoint night = from_civil_utc({2015, 6, 15, 1, 0, 0});
  EXPECT_DOUBLE_EQ(model.flux(night), model.altitude_factor());
}

TEST(Neutron, AltitudeFactorNearOneAtBarcelona) {
  const NeutronFluxModel model;
  EXPECT_GT(model.altitude_factor(), 1.0);
  EXPECT_LT(model.altitude_factor(), 1.1);  // 100 m is nearly sea level
}

TEST(Neutron, AltitudeScalingExponential) {
  NeutronFluxModel::Config high;
  high.site.altitude_m = 1900.0;  // one e-fold
  const NeutronFluxModel model(high);
  EXPECT_NEAR(model.altitude_factor(), 2.718, 0.01);
}

TEST(Neutron, NoonAboveNight) {
  const NeutronFluxModel model;
  const double noon = model.flux(from_civil_utc({2015, 6, 15, 12, 0, 0}));
  const double night = model.flux(from_civil_utc({2015, 6, 15, 0, 30, 0}));
  EXPECT_GT(noon, 2.5 * night);
}

TEST(Neutron, FluxBounded) {
  const NeutronFluxModel model;
  const double cap =
      model.altitude_factor() * (1.0 + model.config().solar_amplitude);
  for (int h = 0; h < 24; ++h) {
    const double f = model.flux(from_civil_utc({2015, 8, 3, h, 0, 0}));
    EXPECT_GE(f, model.altitude_factor());
    EXPECT_LE(f, cap);
  }
}

TEST(Neutron, ZeroAmplitudeIsFlat) {
  NeutronFluxModel::Config config;
  config.solar_amplitude = 0.0;
  const NeutronFluxModel model(config);
  const double a = model.flux(from_civil_utc({2015, 6, 15, 12, 0, 0}));
  const double b = model.flux(from_civil_utc({2015, 6, 15, 3, 0, 0}));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Neutron, MeanFluxBetweenExtremes) {
  const NeutronFluxModel model;
  const TimePoint day = from_civil_utc({2015, 6, 15, 0, 0, 0});
  const double mean = model.mean_flux_over_day(day);
  EXPECT_GT(mean, model.altitude_factor());
  EXPECT_LT(mean, model.flux(from_civil_utc({2015, 6, 15, 12, 0, 0})));
}

TEST(Neutron, IntegratedDayNightRatioNearTwo) {
  // The property Fig 6 rests on: events thinned by this flux come out with
  // a day(07-18h local) to night ratio of roughly 2 over the year.
  const NeutronFluxModel model;
  double day = 0.0, night = 0.0;
  for (int doy = 0; doy < 365; doy += 7) {
    const TimePoint base =
        from_civil_utc({2015, 2, 1, 0, 0, 0}) + doy * kSecondsPerDay;
    for (int m = 0; m < 24 * 60; m += 15) {
      const TimePoint t = base + m * 60;
      const double h = BarcelonaClock::local_hour(t);
      (h >= 7.0 && h < 19.0 ? day : night) += model.flux(t);
    }
  }
  const double ratio = day / night;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.6);
}

}  // namespace
}  // namespace unp::env
