// The campaign cache key must cover everything that shapes the shared
// pipeline's products: the simulated campaign's identity AND the extraction
// parameters, so changing e.g. the merge window can never serve stale faults
// from a cache written under different settings.
#include "util/campaign_cache.hpp"

#include <gtest/gtest.h>

#include "analysis/extraction.hpp"
#include "sim/campaign.hpp"

namespace unp::bench {
namespace {

TEST(CampaignFingerprint, StableForIdenticalInputs) {
  const sim::CampaignConfig config;
  const analysis::ExtractionConfig extraction;
  EXPECT_EQ(campaign_fingerprint(config, extraction),
            campaign_fingerprint(config, extraction));
}

TEST(CampaignFingerprint, SensitiveToCampaignSeed) {
  const analysis::ExtractionConfig extraction;
  sim::CampaignConfig a;
  sim::CampaignConfig b;
  b.seed = a.seed + 1;
  EXPECT_NE(campaign_fingerprint(a, extraction),
            campaign_fingerprint(b, extraction));
}

TEST(CampaignFingerprint, SensitiveToMergeWindow) {
  const sim::CampaignConfig config;
  analysis::ExtractionConfig a;
  analysis::ExtractionConfig b;
  b.merge_window_s = a.merge_window_s + 60;
  EXPECT_NE(campaign_fingerprint(config, a), campaign_fingerprint(config, b));
}

TEST(CampaignFingerprint, SensitiveToPathologicalFilter) {
  const sim::CampaignConfig config;
  const analysis::ExtractionConfig base;

  analysis::ExtractionConfig fraction = base;
  fraction.pathological_raw_fraction = 0.75;
  EXPECT_NE(campaign_fingerprint(config, base),
            campaign_fingerprint(config, fraction));

  analysis::ExtractionConfig min_raw = base;
  min_raw.pathological_min_raw = base.pathological_min_raw / 2;
  EXPECT_NE(campaign_fingerprint(config, base),
            campaign_fingerprint(config, min_raw));
}

}  // namespace
}  // namespace unp::bench
