// The campaign cache key must cover everything that shapes the shared
// pipeline's products: the simulated campaign's identity AND the extraction
// parameters, so changing e.g. the merge window can never serve stale faults
// from a cache written under different settings.
#include "util/campaign_cache.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "analysis/extraction.hpp"
#include "common/civil_time.hpp"
#include "sim/campaign.hpp"

namespace unp::bench {
namespace {

TEST(CampaignFingerprint, StableForIdenticalInputs) {
  const sim::CampaignConfig config;
  const analysis::ExtractionConfig extraction;
  EXPECT_EQ(campaign_fingerprint(config, extraction),
            campaign_fingerprint(config, extraction));
}

TEST(CampaignFingerprint, SensitiveToCampaignSeed) {
  const analysis::ExtractionConfig extraction;
  sim::CampaignConfig a;
  sim::CampaignConfig b;
  b.seed = a.seed + 1;
  EXPECT_NE(campaign_fingerprint(a, extraction),
            campaign_fingerprint(b, extraction));
}

TEST(CampaignFingerprint, SensitiveToMergeWindow) {
  const sim::CampaignConfig config;
  analysis::ExtractionConfig a;
  analysis::ExtractionConfig b;
  b.merge_window_s = a.merge_window_s + 60;
  EXPECT_NE(campaign_fingerprint(config, a), campaign_fingerprint(config, b));
}

TEST(CampaignFingerprint, SensitiveToPathologicalFilter) {
  const sim::CampaignConfig config;
  const analysis::ExtractionConfig base;

  analysis::ExtractionConfig fraction = base;
  fraction.pathological_raw_fraction = 0.75;
  EXPECT_NE(campaign_fingerprint(config, base),
            campaign_fingerprint(config, fraction));

  analysis::ExtractionConfig min_raw = base;
  min_raw.pathological_min_raw = base.pathological_min_raw / 2;
  EXPECT_NE(campaign_fingerprint(config, base),
            campaign_fingerprint(config, min_raw));
}

// A cache spill must be atomic: the entry materializes under a pid-unique
// temp name and is renamed into place, so a crashing or concurrent writer
// can never leave a torn .unpc file (or a stray temp) for readers to trip
// over.
TEST(CampaignCacheSpill, AtomicWriteLeavesNoTempFiles) {
  const std::string dir =
      ::testing::TempDir() + "unp_cache_atomic_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_EQ(::setenv("UNP_CACHE_DIR", dir.c_str(), 1), 0);

  sim::CampaignConfig config;  // two days keeps the spill-side sim fast
  config.window = {from_civil_utc({2015, 3, 1, 0, 0, 0}),
                   from_civil_utc({2015, 3, 3, 0, 0, 0})};
  const analysis::ExtractionConfig extraction;

  const StreamStats first = stream_campaign(config, extraction, {}, 2);
  EXPECT_FALSE(first.from_cache);
  ASSERT_FALSE(first.cache_path.empty());
  EXPECT_TRUE(std::filesystem::exists(first.cache_path));

  int entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << entry.path();
  }
  EXPECT_EQ(entries, 1);

  const StreamStats second = stream_campaign(config, extraction, {}, 2);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  EXPECT_EQ(second.cache_path, first.cache_path);

  ::unsetenv("UNP_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace unp::bench
