// CLI contract of the report/policy drivers: malformed arguments must fail
// fast with exit code 2 and a usage message, --help must succeed, and no
// campaign may be simulated on the error path (these run in milliseconds).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>

namespace {

int run(const std::string& args_for_binary) {
  const std::string command = args_for_binary + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << command;
  return WEXITSTATUS(status);
}

/// Run with stderr captured (stdout discarded), for diagnostics contracts.
std::string run_stderr(const std::string& args_for_binary, int& exit_code) {
  const std::string command = args_for_binary + " 2>&1 >/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  std::string output;
  char buffer[256];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) output += buffer;
  const int status = pclose(pipe);
  EXPECT_TRUE(WIFEXITED(status)) << command;
  exit_code = WEXITSTATUS(status);
  return output;
}

const std::string kReport = UNP_REPORT_BIN;
const std::string kPolicy = UNP_POLICY_BIN;
const std::string kQuery = UNP_QUERY_BIN;
const std::string kEcc = UNP_ECC_BIN;
const std::string kHammer = UNP_HAMMER_BIN;

TEST(ReportCli, UnknownFlagExitsTwo) {
  EXPECT_EQ(run(kReport + " --frobnicate"), 2);
}

TEST(ReportCli, OutOfRangeFigExitsTwo) {
  EXPECT_EQ(run(kReport + " --fig 99"), 2);
  EXPECT_EQ(run(kReport + " --fig 0"), 2);
}

TEST(ReportCli, MalformedNumberExitsTwo) {
  EXPECT_EQ(run(kReport + " --fig 1x"), 2);
  EXPECT_EQ(run(kReport + " --seed banana"), 2);
  EXPECT_EQ(run(kReport + " --threads 0"), 2);
}

TEST(ReportCli, MissingValueExitsTwo) {
  EXPECT_EQ(run(kReport + " --fig"), 2);
}

TEST(ReportCli, HelpExitsZero) {
  EXPECT_EQ(run(kReport + " --help"), 0);
}

TEST(ReportCli, UnknownExtSectionListsRegisteredNames) {
  int exit_code = 0;
  const std::string err = run_stderr(kReport + " --ext bogus", exit_code);
  EXPECT_EQ(exit_code, 2);
  // The diagnostic enumerates the section registry, so a user who guesses
  // wrong learns every valid name - including newly registered ones.
  for (const char* name : {"temporal", "markov", "alignment", "ecc", "hammer"}) {
    EXPECT_NE(err.find(name), std::string::npos)
        << "missing '" << name << "' in: " << err;
  }
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
}

TEST(PolicyCli, UnknownFlagExitsTwo) {
  EXPECT_EQ(run(kPolicy + " --frobnicate"), 2);
}

TEST(PolicyCli, UnknownPolicyNameExitsTwo) {
  EXPECT_EQ(run(kPolicy + " --policy bogus"), 2);
}

TEST(PolicyCli, MalformedNumberExitsTwo) {
  EXPECT_EQ(run(kPolicy + " --period -3"), 2);
  EXPECT_EQ(run(kPolicy + " --trigger 3.5"), 2);
  EXPECT_EQ(run(kPolicy + " --threads 0"), 2);
}

TEST(PolicyCli, ExclusiveModesExitTwo) {
  EXPECT_EQ(run(kPolicy + " --sweep --closed-loop"), 2);
}

TEST(PolicyCli, HelpExitsZero) {
  EXPECT_EQ(run(kPolicy + " --help"), 0);
}

TEST(ReportCli, StoreExcludesLivePipelineFlags) {
  EXPECT_EQ(run(kReport + " --store x.unpf --seed 5"), 2);
  EXPECT_EQ(run(kReport + " --store x.unpf --merge-window 60"), 2);
  EXPECT_EQ(run(kReport + " --store x.unpf --cache-dir /tmp"), 2);
}

TEST(ReportCli, MissingStoreFileExitsTwo) {
  EXPECT_EQ(run(kReport + " --store /nonexistent/no.unpf"), 2);
}

TEST(ReportCli, CorruptStoreFileExitsTwo) {
  const std::string path = ::testing::TempDir() + "corrupt_report.unpf";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("UNPF this is not a valid store", f);
  std::fclose(f);
  EXPECT_EQ(run(kReport + " --store " + path), 2);
  std::remove(path.c_str());
}

TEST(QueryCli, UnknownFlagExitsTwo) {
  EXPECT_EQ(run(kQuery + " --frobnicate"), 2);
}

TEST(QueryCli, RequiresASource) {
  EXPECT_EQ(run(kQuery + " --count"), 2);
  EXPECT_EQ(run(kQuery), 2);
}

TEST(QueryCli, ExclusiveSourcesExitTwo) {
  EXPECT_EQ(run(kQuery + " --build a.unpf --store b.unpf"), 2);
}

TEST(QueryCli, MalformedPredicatesExitTwo) {
  EXPECT_EQ(run(kQuery + " --store x.unpf --blade 63"), 2);
  EXPECT_EQ(run(kQuery + " --store x.unpf --soc 15"), 2);
  EXPECT_EQ(run(kQuery + " --store x.unpf --node banana"), 2);
  EXPECT_EQ(run(kQuery + " --store x.unpf --class huge"), 2);
  EXPECT_EQ(run(kQuery + " --store x.unpf --min-bits 0"), 2);
  EXPECT_EQ(run(kQuery + " --store x.unpf --min-bits 5 --max-bits 2"), 2);
  EXPECT_EQ(run(kQuery + " --store x.unpf --fig 14"), 2);
}

TEST(QueryCli, MissingStoreFileExitsTwo) {
  EXPECT_EQ(run(kQuery + " --store /nonexistent/no.unpf --count"), 2);
}

TEST(QueryCli, CorruptStoreFileExitsTwo) {
  const std::string path = ::testing::TempDir() + "corrupt_query.unpf";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not even the right magic", f);
  std::fclose(f);
  EXPECT_EQ(run(kQuery + " --store " + path + " --count"), 2);
  std::remove(path.c_str());
}

TEST(QueryCli, HelpExitsZero) {
  EXPECT_EQ(run(kQuery + " --help"), 0);
}

TEST(EccCli, UnknownFlagExitsTwo) {
  EXPECT_EQ(run(kEcc + " --frobnicate"), 2);
}

TEST(EccCli, RequiresAMode) {
  EXPECT_EQ(run(kEcc), 2);
  EXPECT_EQ(run(kEcc + " --code secded72"), 2);
}

TEST(EccCli, MalformedCodeSpecExitsTwo) {
  EXPECT_EQ(run(kEcc + " --code bogus --exhaustive 2"), 2);
  EXPECT_EQ(run(kEcc + " --code hamming:zero --exhaustive 2"), 2);
  EXPECT_EQ(run(kEcc + " --code large:777B/8 --exhaustive 2"), 2);
}

TEST(EccCli, MalformedNumbersExitTwo) {
  EXPECT_EQ(run(kEcc + " --exhaustive 0"), 2);
  EXPECT_EQ(run(kEcc + " --exhaustive 65"), 2);
  EXPECT_EQ(run(kEcc + " --exhaustive banana"), 2);
  EXPECT_EQ(run(kEcc + " --threads 0 --exhaustive 2"), 2);
}

TEST(EccCli, ExhaustiveWorkloadRefusalExitsTwo) {
  // C(72,16) patterns is far beyond the enumerable ceiling; the CLI must
  // refuse with an estimate instead of starting a year-long loop.
  EXPECT_EQ(run(kEcc + " --code secded72 --exhaustive 16"), 2);
}

TEST(EccCli, StoreRequiresPopulationMode) {
  EXPECT_EQ(run(kEcc + " --store x.unpf --exhaustive 2"), 2);
}

TEST(EccCli, StoreExcludesLivePipelineFlags) {
  EXPECT_EQ(run(kEcc + " --population --store x.unpf --seed 5"), 2);
}

TEST(EccCli, CheckClassifierRequiresPopulation) {
  EXPECT_EQ(run(kEcc + " --check-classifier --exhaustive 2"), 2);
}

TEST(EccCli, MissingStoreFileExitsTwo) {
  EXPECT_EQ(run(kEcc + " --population --store /nonexistent/no.unpf"), 2);
}

TEST(EccCli, HelpExitsZero) {
  EXPECT_EQ(run(kEcc + " --help"), 0);
}

TEST(EccCli, SmallExhaustiveSweepSucceeds) {
  EXPECT_EQ(run(kEcc + " --code secded72 --exhaustive 2"), 0);
}

TEST(HammerCli, UnknownFlagExitsTwo) {
  EXPECT_EQ(run(kHammer + " --frobnicate"), 2);
}

TEST(HammerCli, RequiresExactlyOneMode) {
  EXPECT_EQ(run(kHammer), 2);
  EXPECT_EQ(run(kHammer + " --solve --campaign"), 2);
  EXPECT_EQ(run(kHammer + " --campaign --mitigate"), 2);
}

TEST(HammerCli, UnknownGeometryListsMenu) {
  int exit_code = 0;
  const std::string err =
      run_stderr(kHammer + " --solve --geometry bogus", exit_code);
  EXPECT_EQ(exit_code, 2);
  EXPECT_NE(err.find("lpddr3:mb"), std::string::npos) << err;
  EXPECT_NE(err.find("ddr4:2ch"), std::string::npos) << err;
}

TEST(HammerCli, GeometryRequiresSolveMode) {
  EXPECT_EQ(run(kHammer + " --campaign --geometry lpddr3:mb"), 2);
}

TEST(HammerCli, MalformedNumbersExitTwo) {
  EXPECT_EQ(run(kHammer + " --solve --days 0"), 2);
  EXPECT_EQ(run(kHammer + " --solve --days 400"), 2);
  EXPECT_EQ(run(kHammer + " --solve --fraction-pct 101"), 2);
  EXPECT_EQ(run(kHammer + " --solve --episodes banana"), 2);
  EXPECT_EQ(run(kHammer + " --solve --threads 0"), 2);
}

TEST(HammerCli, HelpExitsZero) {
  EXPECT_EQ(run(kHammer + " --help"), 0);
}

TEST(HammerCli, SingleGeometrySolveSucceeds) {
  EXPECT_EQ(run(kHammer + " --solve --geometry ddr3:1ch"), 0);
}

}  // namespace
