// CLI contract of the report/policy drivers: malformed arguments must fail
// fast with exit code 2 and a usage message, --help must succeed, and no
// campaign may be simulated on the error path (these run in milliseconds).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <sys/wait.h>

namespace {

int run(const std::string& args_for_binary) {
  const std::string command = args_for_binary + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << command;
  return WEXITSTATUS(status);
}

const std::string kReport = UNP_REPORT_BIN;
const std::string kPolicy = UNP_POLICY_BIN;

TEST(ReportCli, UnknownFlagExitsTwo) {
  EXPECT_EQ(run(kReport + " --frobnicate"), 2);
}

TEST(ReportCli, OutOfRangeFigExitsTwo) {
  EXPECT_EQ(run(kReport + " --fig 99"), 2);
  EXPECT_EQ(run(kReport + " --fig 0"), 2);
}

TEST(ReportCli, MalformedNumberExitsTwo) {
  EXPECT_EQ(run(kReport + " --fig 1x"), 2);
  EXPECT_EQ(run(kReport + " --seed banana"), 2);
  EXPECT_EQ(run(kReport + " --threads 0"), 2);
}

TEST(ReportCli, MissingValueExitsTwo) {
  EXPECT_EQ(run(kReport + " --fig"), 2);
}

TEST(ReportCli, HelpExitsZero) {
  EXPECT_EQ(run(kReport + " --help"), 0);
}

TEST(PolicyCli, UnknownFlagExitsTwo) {
  EXPECT_EQ(run(kPolicy + " --frobnicate"), 2);
}

TEST(PolicyCli, UnknownPolicyNameExitsTwo) {
  EXPECT_EQ(run(kPolicy + " --policy bogus"), 2);
}

TEST(PolicyCli, MalformedNumberExitsTwo) {
  EXPECT_EQ(run(kPolicy + " --period -3"), 2);
  EXPECT_EQ(run(kPolicy + " --trigger 3.5"), 2);
  EXPECT_EQ(run(kPolicy + " --threads 0"), 2);
}

TEST(PolicyCli, ExclusiveModesExitTwo) {
  EXPECT_EQ(run(kPolicy + " --sweep --closed-loop"), 2);
}

TEST(PolicyCli, HelpExitsZero) {
  EXPECT_EQ(run(kPolicy + " --help"), 0);
}

}  // namespace
