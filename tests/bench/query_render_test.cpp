// util/query_render: the request vocabulary shared by unp_query and
// unp_serve.  Parsing must fail closed (QueryError before any scan can
// start), and rendering must be deterministic and thread-safe — the
// properties the server's byte-identity and result-cache contracts rest on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "analysis/extraction.hpp"
#include "common/rng.hpp"
#include "store/builder.hpp"
#include "store/handle.hpp"
#include "store/query_builder.hpp"
#include "store/reader.hpp"
#include "telemetry/record.hpp"
#include "util/query_render.hpp"

namespace unp::bench {
namespace {

using store::QueryError;

constexpr TimePoint kStart = 1'440'000'000;

store::StoreReader build_reader(int n = 1200) {
  std::vector<analysis::FaultRecord> faults;
  Xoshiro256 rng(21);
  for (int i = 0; i < n; ++i) {
    analysis::FaultRecord f;
    f.first_seen = kStart + static_cast<TimePoint>(i) * 50;
    f.last_seen = f.first_seen + 10;
    f.node = cluster::NodeId{(i / 40) % cluster::kStudyBlades,
                             static_cast<int>(rng.next() % 15)};
    f.raw_logs = 1 + rng.next() % 7;
    f.virtual_address = rng.next() % (1ull << 40);
    f.expected = static_cast<Word>(rng.next());
    Word mask = 1;
    if (i % 8 == 0)
      for (int b = 0; b < 4; ++b) mask |= Word{1} << (rng.next() % 32);
    f.actual = f.expected ^ mask;
    f.temperature_c =
        i % 6 == 0 ? telemetry::kNoTemperature : 22.0 + i % 10;
    faults.push_back(f);
  }
  std::sort(faults.begin(), faults.end(),
            [](const analysis::FaultRecord& a, const analysis::FaultRecord& b) {
              return std::tie(a.first_seen, a.node, a.virtual_address) <
                     std::tie(b.first_seen, b.node, b.virtual_address);
            });
  store::StoreBuilder builder(store::StoreBuilder::Config{128});
  builder.set_window(CampaignWindow{kStart, kStart + 100'000});
  builder.begin_faults(
      analysis::FaultStreamContext{{kStart, kStart + 100'000}});
  for (const auto& f : faults) builder.on_fault(f);
  builder.end_faults();
  return store::StoreReader(store::StoreHandle::from_bytes(builder.encode()));
}

TEST(QueryRenderParseTest, FlagArityTableKnowsTheVocabulary) {
  bool needs_value = false;
  EXPECT_TRUE(is_request_flag("--blade", &needs_value));
  EXPECT_TRUE(needs_value);
  EXPECT_TRUE(is_request_flag("--count", &needs_value));
  EXPECT_FALSE(needs_value);
  EXPECT_TRUE(is_request_flag("--no-prune", &needs_value));
  EXPECT_FALSE(needs_value);
  EXPECT_FALSE(is_request_flag("--store", &needs_value));
  EXPECT_FALSE(is_request_flag("blade", &needs_value));
}

TEST(QueryRenderParseTest, PredicatesAndActionsParseTogether) {
  const QueryRequest req = parse_request(
      {"--since", "100", "--until", "900", "--blade", "12", "--count"});
  EXPECT_EQ(req.query.since, 100);
  EXPECT_EQ(req.query.until, 900);
  EXPECT_EQ(req.query.blade, 12);
  EXPECT_TRUE(req.count_only);
  EXPECT_FALSE(req.any_section);
  EXPECT_TRUE(req.any_query_action);
}

TEST(QueryRenderParseTest, SectionFlagsSelectRenderers) {
  EXPECT_TRUE(parse_request({"--headline"}).any_section);
  EXPECT_TRUE(parse_request({"--tab1"}).any_section);
  EXPECT_TRUE(parse_request({"--fig", "3"}).any_section);
  EXPECT_TRUE(parse_request({"--ext", "temporal"}).any_section);
  const QueryRequest all = parse_request({"--all"});
  EXPECT_TRUE(all.any_section);
  EXPECT_TRUE(
      std::all_of(all.want, all.want + kSectionCount, [](bool b) { return b; }));
}

TEST(QueryRenderParseTest, InvalidRequestsThrowBeforeAnyQueryExists) {
  EXPECT_THROW((void)parse_request({"--bogus"}), QueryError);
  EXPECT_THROW((void)parse_request({"--blade"}), QueryError);          // no value
  EXPECT_THROW((void)parse_request({"--blade", "999"}), QueryError);   // range
  EXPECT_THROW((void)parse_request({"--blade", "1x"}), QueryError);    // junk
  EXPECT_THROW((void)parse_request({"--fig", "0"}), QueryError);
  EXPECT_THROW((void)parse_request({"--fig", "14"}), QueryError);
  EXPECT_THROW((void)parse_request({"--ext", "nope"}), QueryError);
  EXPECT_THROW((void)parse_request({"--class", "sextuple"}), QueryError);
  EXPECT_THROW((void)parse_request({"--min-bits", "9", "--max-bits", "2"}),
               QueryError);
  // The rejected flag is named for the error line / ERR payload.
  try {
    (void)parse_request({"--bogus"});
    FAIL();
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "--bogus");
  }
}

TEST(QueryRenderParseTest, RequestLineSplittingMatchesTokenParsing) {
  const QueryRequest from_line =
      parse_request_line("  --blade 7\t--class multi   --count ");
  const QueryRequest from_tokens =
      parse_request({"--blade", "7", "--class", "multi", "--count"});
  EXPECT_EQ(from_line.query.describe(), from_tokens.query.describe());
  EXPECT_EQ(from_line.count_only, from_tokens.count_only);
}

TEST(QueryRenderTest, CountRowsAndSectionPathsAllRender) {
  const store::StoreReader reader = build_reader();

  const std::string count = render_request_to_string(
      reader, parse_request({"--count"}), store::ScanOptions{});
  EXPECT_EQ(count, "1200\n");

  const std::string rows = render_request_to_string(
      reader, parse_request({"--limit", "3"}), store::ScanOptions{});
  // Header + 3 rows + the "more rows" footer.
  EXPECT_EQ(static_cast<int>(std::count(rows.begin(), rows.end(), '\n')), 5);
  EXPECT_NE(rows.find("... 1197 more row(s)"), std::string::npos);

  const std::string fig = render_request_to_string(
      reader, parse_request({"--fig", "3"}), store::ScanOptions{});
  EXPECT_NE(fig.find("Fig 3"), std::string::npos);
}

TEST(QueryRenderTest, RenderingIsDeterministic) {
  const store::StoreReader reader = build_reader();
  for (const char* line : {"--count", "--class multi --count", "--limit 10",
                           "--blade 3", "--fig 5"}) {
    const QueryRequest req = parse_request_line(line);
    EXPECT_EQ(render_request_to_string(reader, req, store::ScanOptions{}),
              render_request_to_string(reader, req, store::ScanOptions{}))
        << line;
  }
}

TEST(QueryRenderTest, NoPruneChangesTheScanNeverTheBytes) {
  const store::StoreReader reader = build_reader();
  const QueryRequest pruned = parse_request_line("--blade 2 --count");
  const QueryRequest full = parse_request_line("--blade 2 --count --no-prune");
  EXPECT_EQ(render_request_to_string(reader, pruned, store::ScanOptions{}),
            render_request_to_string(reader, full, store::ScanOptions{}));
}

TEST(QueryRenderTest, ConcurrentSharedReaderRendersAreByteIdentical) {
  // The server's core concurrency claim, minus the sockets: N threads
  // rendering mixed requests against ONE shared handle produce exactly the
  // serial bytes.  Run under the sanitizer CI jobs, this is also the data
  // race proof for the shared mmap/decode path.
  const store::StoreReader reader = build_reader(2000);
  const std::vector<std::string> workload = {
      "--count",
      "--class multi --count",
      "--blade 3 --count",
      "--since 1440010000 --until 1440040000 --count",
      "--limit 7",
      "--class single --limit 4",
      "--min-bits 2 --max-bits 8 --count",
  };
  std::vector<std::string> expected;
  for (const std::string& line : workload)
    expected.push_back(render_request_to_string(
        reader, parse_request_line(line), store::ScanOptions{}));

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger each thread's starting offset so different requests overlap.
      for (int r = 0; r < kRounds; ++r) {
        for (std::size_t w = 0; w < workload.size(); ++w) {
          const std::size_t idx =
              (w + static_cast<std::size_t>(t)) % workload.size();
          const std::string got = render_request_to_string(
              reader, parse_request_line(workload[idx]),
              store::ScanOptions{});
          if (got != expected[idx])
            ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << t;
}

}  // namespace
}  // namespace unp::bench
