#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>

#include "faults/suite.hpp"

namespace unp::faults {
namespace {

/// Synthetic plan: daily 12 h alternating-pattern sessions over the window.
sched::ScanPlan make_plan(TimePoint start, TimePoint end,
                          scanner::PatternKind pattern =
                              scanner::PatternKind::kAlternating) {
  sched::ScanPlan plan;
  for (TimePoint day = start; day < end; day += kSecondsPerDay) {
    sched::ScanSession s;
    s.window = {day, std::min(day + 12 * kSecondsPerHour, end)};
    s.pattern = pattern;
    s.allocated_bytes = cluster::kScannableBytes;
    s.pass_period_s = 75;
    plan.sessions.push_back(s);
  }
  return plan;
}

std::vector<NodeContext> make_fleet(const sched::ScanPlan& plan,
                                    int nodes = 40) {
  std::vector<NodeContext> fleet;
  for (int i = 0; i < nodes; ++i) {
    NodeContext ctx;
    ctx.node = cluster::node_from_index(i * 16 + 1);
    ctx.plan = &plan;
    ctx.scanned_hours = plan.scanned_hours();
    ctx.near_overheating_slot =
        ctx.node.soc == cluster::kOverheatingSoc - 1 ||
        ctx.node.soc == cluster::kOverheatingSoc + 1;
    fleet.push_back(ctx);
  }
  return fleet;
}

const CampaignWindow kWindow;

TEST(Background, RateScalesWithScannedHours) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  const auto fleet = make_fleet(plan, 100);
  BackgroundTransientGenerator::Config config;
  config.rate_per_scanned_hour = 1e-3;   // high rate for statistics
  config.overheat_rate_multiplier = 1.0; // uniform fleet for this check
  const BackgroundTransientGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 1, events);
  const double expected =
      1e-3 * plan.scanned_hours() * static_cast<double>(fleet.size());
  EXPECT_NEAR(static_cast<double>(events.size()), expected,
              4.0 * std::sqrt(expected));
  for (const auto& ev : events) {
    EXPECT_EQ(ev.mechanism, Mechanism::kBackgroundTransient);
    EXPECT_EQ(ev.persistence, Persistence::kTransient);
    ASSERT_EQ(ev.words.size(), 1u);
    EXPECT_EQ(std::popcount(ev.words[0].corruption.affected_mask), 1);
    EXPECT_NE(plan.session_at(ev.time), nullptr) << "event outside sessions";
  }
}

TEST(Background, Deterministic) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  const auto fleet = make_fleet(plan, 10);
  BackgroundTransientGenerator::Config config;
  config.rate_per_scanned_hour = 1e-4;
  const BackgroundTransientGenerator gen(config);
  std::vector<FaultEvent> a, b;
  gen.generate(fleet, 7, a);
  gen.generate(fleet, 7, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].words[0].word_index, b[i].words[0].word_index);
  }
}

TEST(Neutron, EventsFollowDaylight) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  const auto fleet = make_fleet(plan, 50);
  NeutronEventGenerator::Config config;
  config.multibit_events_fleet = 4000.0;  // statistics
  config.repeat_site_fraction = 0.0;
  config.single_shower_events_fleet = 0.0;
  const NeutronEventGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 3, events);
  ASSERT_GT(events.size(), 2000u);
  std::uint64_t day = 0, night = 0;
  for (const auto& ev : events) {
    const double h = BarcelonaClock::local_hour(ev.time);
    (h >= 7.0 && h < 19.0 ? day : night)++;
  }
  // Sessions only cover the first 12h UTC of each day, so compare rates.
  EXPECT_GT(day, night);
}

TEST(Neutron, MasksAreMultibit) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  const auto fleet = make_fleet(plan, 20);
  NeutronEventGenerator::Config config;
  config.multibit_events_fleet = 500.0;
  config.repeat_site_fraction = 0.0;
  config.p_accompanied = 0.0;
  config.single_shower_events_fleet = 0.0;
  const NeutronEventGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 5, events);
  for (const auto& ev : events) {
    ASSERT_EQ(ev.words.size(), 1u);
    EXPECT_GE(std::popcount(ev.words[0].corruption.affected_mask), 2);
    EXPECT_LE(std::popcount(ev.words[0].corruption.affected_mask), 3);
  }
}

TEST(Neutron, RepeatSitesProduceIdenticalCorruptions) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 20);
  NeutronEventGenerator::Config config;
  config.multibit_events_fleet = 300.0;
  config.repeat_site_fraction = 1.0;
  config.repeat_sites = 1;
  config.repeat_site_nodes = {fleet[3].node};
  config.p_accompanied = 0.0;
  config.single_shower_events_fleet = 0.0;
  const NeutronEventGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 9, events);
  ASSERT_GT(events.size(), 100u);
  std::set<std::pair<std::uint64_t, Word>> distinct;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.node, fleet[3].node);
    distinct.insert({ev.words[0].word_index,
                     ev.words[0].corruption.affected_mask});
  }
  EXPECT_EQ(distinct.size(), 1u);  // one site, one fixed pattern
}

TEST(Neutron, AccompanimentAddsSingleBitWords) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  const auto fleet = make_fleet(plan, 20);
  NeutronEventGenerator::Config config;
  config.multibit_events_fleet = 400.0;
  config.repeat_site_fraction = 0.0;
  config.p_accompanied = 1.0;
  config.p_double_double = 0.0;
  config.single_shower_events_fleet = 0.0;
  const NeutronEventGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 11, events);
  for (const auto& ev : events) {
    ASSERT_GE(ev.words.size(), 2u);
    for (std::size_t w = 1; w < ev.words.size(); ++w) {
      EXPECT_EQ(std::popcount(ev.words[w].corruption.affected_mask), 1);
    }
  }
}

TEST(WeakBit, AllEventsHitTheSameBit) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 20);
  WeakBitGenerator::Config config;
  WeakBitSpec spec;
  spec.node = fleet[5].node;
  spec.bit = 21;
  spec.activity_start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  spec.activity_end = from_civil_utc({2015, 12, 1, 0, 0, 0});
  spec.episodes_per_day = 0.3;
  spec.leak_rate_per_scanned_hour = 5.0;
  config.specs.push_back(spec);
  const WeakBitGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 13, events);
  ASSERT_GT(events.size(), 100u);
  std::set<std::uint64_t> words;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.node, spec.node);
    EXPECT_EQ(ev.mechanism, Mechanism::kWeakBit);
    ASSERT_EQ(ev.words.size(), 1u);
    EXPECT_EQ(ev.words[0].corruption.affected_mask, Word{1} << 21);
    EXPECT_EQ(ev.words[0].corruption.stuck_value, 0u);  // discharge
    words.insert(ev.words[0].word_index);
    EXPECT_GE(ev.time, spec.activity_start);
  }
  EXPECT_EQ(words.size(), 1u);  // one weak cell
}

TEST(WeakBit, QuietOutsideActivityWindow) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 20);
  WeakBitGenerator::Config config;
  WeakBitSpec spec;
  spec.node = fleet[5].node;
  spec.activity_start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  spec.activity_end = from_civil_utc({2015, 10, 1, 0, 0, 0});
  spec.episodes_per_day = 0.5;
  config.specs.push_back(spec);
  const WeakBitGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 17, events);
  const TimePoint slack = 4 * kSecondsPerDay;  // episodes can straddle the end
  for (const auto& ev : events) {
    EXPECT_GE(ev.time, spec.activity_start);
    EXPECT_LE(ev.time, spec.activity_end + slack);
  }
}

TEST(Degrading, RateRampsExponentially) {
  const DegradingComponentGenerator gen;
  const TimePoint onset = gen.config().onset;
  EXPECT_DOUBLE_EQ(gen.rate_at(onset - 1), 0.0);
  const double r0 = gen.rate_at(onset);
  const auto tau_days =
      static_cast<std::int64_t>(gen.config().ramp_tau_days);
  const double r_tau = gen.rate_at(onset + tau_days * kSecondsPerDay);
  EXPECT_NEAR(r_tau / r0, 2.718, 0.01);  // one e-fold per tau
  // The ceiling binds eventually.
  EXPECT_DOUBLE_EQ(gen.rate_at(onset + 1000 * kSecondsPerDay),
                   gen.config().max_rate_per_scanned_hour);
}

TEST(Degrading, BurstsOnlyAfterOnsetOnConfiguredNode) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 20);
  DegradingComponentGenerator::Config config;
  config.node = fleet[2].node;
  const DegradingComponentGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 19, events);
  ASSERT_GT(events.size(), 1000u);
  std::set<std::uint64_t> addresses;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.node, config.node);
    EXPECT_GE(ev.time, config.onset);
    for (const auto& w : ev.words) addresses.insert(w.word_index);
  }
  // The address pool keeps growing into the thousands (Section III-H).
  EXPECT_GT(addresses.size(), 1000u);
}

TEST(Degrading, PatternPoolBounded) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 20);
  DegradingComponentGenerator::Config config;
  config.node = fleet[2].node;
  const DegradingComponentGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 23, events);
  std::set<std::pair<Word, Word>> patterns;
  for (const auto& ev : events) {
    for (const auto& w : ev.words) {
      patterns.insert({w.corruption.affected_mask, w.corruption.stuck_value});
    }
  }
  EXPECT_LE(patterns.size(),
            static_cast<std::size_t>(config.pattern_pool));
  EXPECT_GE(patterns.size(), 20u);
}

TEST(Degrading, ComponentSwapMovesErrors) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 20);
  DegradingComponentGenerator::Config config;
  config.node = fleet[2].node;
  config.swap_to = fleet[9].node;
  config.swap_date = from_civil_utc({2015, 10, 1, 0, 0, 0});
  const DegradingComponentGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 43, events);
  ASSERT_GT(events.size(), 500u);
  for (const auto& ev : events) {
    if (ev.time < config.swap_date) {
      EXPECT_EQ(ev.node, config.node);
    } else {
      EXPECT_EQ(ev.node, config.swap_to);
    }
  }
  // Both hosts must actually appear (the swap happened mid-ramp).
  std::size_t before = 0;
  for (const auto& ev : events) before += ev.time < config.swap_date;
  EXPECT_GT(before, 0u);
  EXPECT_LT(before, events.size());
}

TEST(Degrading, SwapDisabledKeepsSingleHost) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 20);
  DegradingComponentGenerator::Config config;
  config.node = fleet[2].node;
  const DegradingComponentGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 43, events);
  for (const auto& ev : events) EXPECT_EQ(ev.node, config.node);
}

TEST(Pathological, StuckEventsMatchConfig) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 20);
  PathologicalNodeGenerator::Config config;
  config.node = fleet[1].node;
  config.stuck_addresses = 50;
  const PathologicalNodeGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 29, events);
  ASSERT_EQ(events.size(), 50u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.node, config.node);
    EXPECT_EQ(ev.persistence, Persistence::kStuck);
    EXPECT_EQ(ev.active_until, config.removal);
    EXPECT_GE(ev.time, config.onset);
    EXPECT_LT(ev.time, config.onset + kSecondsPerDay);
  }
}

TEST(IsolatedSdc, ExactBitCountsOnDistinctQuietNodes) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 60);
  IsolatedSdcGenerator::Config config;
  config.avoid_nodes = {fleet[0].node};
  const IsolatedSdcGenerator gen(config);
  std::vector<FaultEvent> events;
  gen.generate(fleet, 31, events);
  ASSERT_EQ(events.size(), 7u);
  std::multiset<int> bits;
  std::set<int> nodes;
  for (const auto& ev : events) {
    ASSERT_EQ(ev.words.size(), 1u);
    bits.insert(std::popcount(ev.words[0].corruption.affected_mask));
    nodes.insert(cluster::node_index(ev.node));
    EXPECT_EQ(ev.words[0].corruption.stuck_value, 0u);  // all-discharge
    EXPECT_NE(cluster::node_index(ev.node),
              cluster::node_index(fleet[0].node));
  }
  EXPECT_EQ(bits, (std::multiset<int>{4, 4, 4, 5, 6, 8, 9}));
  EXPECT_EQ(nodes.size(), 5u);
}

TEST(WeakBit, PhysicalConfigMatchesFleetIncidence) {
  // Emergent incidence: sampling 30 fleets from the retention model should
  // give a few weak bits per 923-node fleet on average - the study saw 2.
  const dram::RetentionModel retention;
  const env::TemperatureModel temperature;
  const CampaignWindow window;
  std::vector<cluster::NodeId> fleet;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    fleet.push_back(cluster::node_from_index(i));
  }
  double total = 0.0;
  std::uint64_t max_specs = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const WeakBitGenerator::Config config = WeakBitGenerator::physical_config(
        fleet, retention, temperature, window, seed);
    total += static_cast<double>(config.specs.size());
    max_specs = std::max<std::uint64_t>(max_specs, config.specs.size());
    for (const auto& spec : config.specs) {
      EXPECT_GE(spec.activity_start, window.start);
      EXPECT_LE(spec.activity_end, window.end);
      EXPECT_LT(spec.activity_start, spec.activity_end);
      EXPECT_GE(spec.bit, 0);
      EXPECT_LT(spec.bit, 32);
    }
  }
  const double mean = total / 30.0;
  EXPECT_GT(mean, 0.5);    // weak bits do occur
  EXPECT_LT(mean, 40.0);   // ...but remain rare per fleet
  EXPECT_GT(max_specs, 0u);
}

TEST(WeakBit, PhysicalConfigDeterministicPerSeed) {
  const dram::RetentionModel retention;
  const env::TemperatureModel temperature;
  const CampaignWindow window;
  std::vector<cluster::NodeId> fleet;
  for (int i = 0; i < 300; ++i) fleet.push_back(cluster::node_from_index(i * 3));
  const auto a = WeakBitGenerator::physical_config(fleet, retention,
                                                   temperature, window, 5);
  const auto b = WeakBitGenerator::physical_config(fleet, retention,
                                                   temperature, window, 5);
  ASSERT_EQ(a.specs.size(), b.specs.size());
  for (std::size_t i = 0; i < a.specs.size(); ++i) {
    EXPECT_EQ(cluster::node_index(a.specs[i].node),
              cluster::node_index(b.specs[i].node));
    EXPECT_EQ(a.specs[i].bit, b.specs[i].bit);
  }
}

TEST(Suite, TogglesSuppressMechanisms) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 60);
  FaultModelSuite::Config config;
  config.enable_background = false;
  config.enable_neutron = false;
  config.enable_weak_bits = false;
  config.enable_degrading = false;
  config.enable_pathological = false;
  // Only isolated SDC remains (its default hosts may miss this tiny fleet,
  // so route it at real nodes).
  config.isolated_sdc.avoid_nodes.clear();
  const FaultModelSuite suite(config);
  const auto events = suite.generate(fleet, 37);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.mechanism, Mechanism::kIsolatedSdc);
  }
}

TEST(Suite, OutputSortedByTime) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  auto fleet = make_fleet(plan, 60);
  FaultModelSuite::Config config;
  config.degrading.node = fleet[2].node;
  config.pathological.node = fleet[1].node;
  config.weak_bits.specs[0].node = fleet[5].node;
  config.weak_bits.specs[1].node = fleet[6].node;
  config.neutron.repeat_site_nodes = {fleet[2].node};
  const FaultModelSuite suite(config);
  const auto events = suite.generate(fleet, 41);
  ASSERT_GT(events.size(), 100u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST(Event, AffectedBitsSumsWords) {
  FaultEvent ev;
  ev.words.push_back({0, dram::CellLeakModel::all_discharge(0x3u)});
  ev.words.push_back({1, dram::CellLeakModel::all_discharge(0x10u)});
  EXPECT_EQ(ev.affected_bits(), 3);
}

}  // namespace
}  // namespace unp::faults
