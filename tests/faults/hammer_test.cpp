// HammerFaultGenerator: pattern algebra, physical victim adjacency,
// determinism, the pinned stream-derivation contract, and the detector's
// clustering behavior.
#include "faults/hammer/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "dram/mapping/mapping.hpp"
#include "faults/hammer/detect.hpp"
#include "faults/suite.hpp"

namespace unp::faults::hammer {
namespace {

sched::ScanPlan make_plan(TimePoint start, TimePoint end) {
  sched::ScanPlan plan;
  for (TimePoint day = start; day < end; day += kSecondsPerDay) {
    sched::ScanSession s;
    s.window = {day, std::min(day + 12 * kSecondsPerHour, end)};
    s.pattern = scanner::PatternKind::kAlternating;
    s.allocated_bytes = cluster::kScannableBytes;
    s.pass_period_s = 75;
    plan.sessions.push_back(s);
  }
  return plan;
}

std::vector<NodeContext> make_fleet(const sched::ScanPlan& plan,
                                    int nodes = 60) {
  std::vector<NodeContext> fleet;
  for (int i = 0; i < nodes; ++i) {
    NodeContext ctx;
    ctx.node = cluster::node_from_index(i * 8 + 1);
    ctx.plan = &plan;
    ctx.scanned_hours = plan.scanned_hours();
    fleet.push_back(ctx);
  }
  return fleet;
}

const CampaignWindow kWindow;

/// Config tuned so a small fleet produces a solid event population.
HammerFaultGenerator::Config loud_config() {
  HammerFaultGenerator::Config config;
  config.hammered_node_fraction = 0.5;
  config.episodes_per_node_mean = 4.0;
  return config;
}

TEST(Pattern, BuilderLayoutsAreWellFormed) {
  RngStream rng(3);
  const PatternBuilder builder;
  std::set<PatternKind> kinds;
  for (int i = 0; i < 200; ++i) {
    const HammerPattern p = builder.build(rng);
    kinds.insert(p.kind);
    ASSERT_EQ(p.aggressor_offsets.size(), p.frequencies.size());
    ASSERT_FALSE(p.aggressor_offsets.empty());
    // Offsets strictly increasing, every other row.
    for (std::size_t k = 0; k < p.aggressor_offsets.size(); ++k) {
      EXPECT_EQ(p.aggressor_offsets[k], static_cast<std::int64_t>(2 * k));
    }
    // Frequencies normalized to mean 1.
    double total = 0.0;
    for (const double f : p.frequencies) {
      EXPECT_GT(f, 0.0);
      total += f;
    }
    EXPECT_NEAR(total, static_cast<double>(p.frequencies.size()), 1e-9);
    switch (p.kind) {
      case PatternKind::kSingleSided:
        EXPECT_EQ(p.aggressor_offsets.size(), 1u);
        break;
      case PatternKind::kDoubleSided:
        EXPECT_EQ(p.aggressor_offsets.size(), 2u);
        break;
      case PatternKind::kNSided:
        EXPECT_GE(p.aggressor_offsets.size(), 3u);
        break;
    }
  }
  EXPECT_EQ(kinds.size(), 3u);  // all layouts exercised
}

TEST(Pattern, VictimPressuresSandwichAndFlankCorrectly) {
  HammerPattern p;
  p.kind = PatternKind::kDoubleSided;
  p.aggressor_offsets = {0, 2};
  p.frequencies = {1.0, 1.0};
  const auto victims = victim_pressures(p, 0.1);
  // Victims: -2 (d2), -1, +1 (sandwiched), +3, +4 (d2).
  ASSERT_EQ(victims.size(), 5u);
  std::map<std::int64_t, double> by_offset;
  for (const auto& v : victims) by_offset[v.row_offset] = v.pressure;
  EXPECT_NEAR(by_offset.at(-2), 0.1, 1e-12);  // distance 2 from agg 0
  EXPECT_NEAR(by_offset.at(-1), 1.0, 1e-12);  // flank of agg 0
  EXPECT_NEAR(by_offset.at(+1), 2.0, 1e-12);  // sandwiched by both
  EXPECT_NEAR(by_offset.at(+3), 1.0, 1e-12);  // flank of agg 2
  EXPECT_NEAR(by_offset.at(+4), 0.1, 1e-12);  // distance 2 from agg 2
  // Aggressor rows are never victims.
  EXPECT_FALSE(by_offset.contains(0));
  EXPECT_FALSE(by_offset.contains(2));
}

TEST(Hammer, StreamDerivationIsPinned) {
  // The derivation recipe is part of the campaign-output contract: these
  // values changing means every hammer campaign silently changes.  Bump
  // kHammerDerivationVersion if any of this is intentional.
  EXPECT_EQ(kHammerDerivationVersion, 1u);
  EXPECT_EQ(kHammerWorkloadStreamId, 0x4A33u);
  EXPECT_EQ(kHammerThresholdStreamId, 0x7B17u);
  // First draws of the derived streams, pinned against rng refactors.
  RngStream workload(42, kHammerWorkloadStreamId, 17);
  RngStream threshold(42, kHammerThresholdStreamId,
                      mix64(17, (std::uint64_t{3} << 48) | 1234));
  EXPECT_EQ(workload.next_u64(), RngStream(mix64(mix64(42, 0x4A33), 17))
                                     .next_u64());
  EXPECT_EQ(threshold.next_u64(),
            RngStream(mix64(mix64(42, 0x7B17),
                            mix64(17, (std::uint64_t{3} << 48) | 1234)))
                .next_u64());
}

TEST(Hammer, RowThresholdIsAFixedFunctionOfCellCoordinates) {
  const HammerFaultGenerator gen;
  const double t1 = gen.row_threshold(42, 17, 3, 1234);
  EXPECT_EQ(t1, gen.row_threshold(42, 17, 3, 1234));  // repeatable
  EXPECT_NE(t1, gen.row_threshold(43, 17, 3, 1234));  // keyed by seed
  EXPECT_NE(t1, gen.row_threshold(42, 18, 3, 1234));  // ... node
  EXPECT_NE(t1, gen.row_threshold(42, 17, 2, 1234));  // ... bank
  EXPECT_NE(t1, gen.row_threshold(42, 17, 3, 1235));  // ... row
  EXPECT_GT(t1, 0.0);
}

TEST(Hammer, GenerateIsDeterministicAndWellFormed) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  const auto fleet = make_fleet(plan);
  const HammerFaultGenerator gen(loud_config());
  std::vector<FaultEvent> a, b;
  gen.generate(fleet, 7, a);
  gen.generate(fleet, 7, b);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].words, b[i].words);
  }
  const std::uint64_t scannable_words = cluster::kScannableBytes / sizeof(Word);
  for (const auto& ev : a) {
    EXPECT_EQ(ev.mechanism, Mechanism::kRowhammer);
    EXPECT_EQ(ev.persistence, Persistence::kTransient);
    ASSERT_EQ(ev.words.size(), 1u);
    EXPECT_LT(ev.words[0].word_index, scannable_words);
    EXPECT_EQ(std::popcount(ev.words[0].corruption.affected_mask), 1);
    // Every event lands inside a scan session.
    bool in_session = false;
    for (const auto& s : plan.sessions) {
      in_session |= ev.time >= s.window.start && ev.time < s.window.end;
    }
    EXPECT_TRUE(in_session);
  }
}

TEST(Hammer, FlipsClusterOnPhysicallyAdjacentRows) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  const auto fleet = make_fleet(plan);
  const HammerFaultGenerator gen(loud_config());
  std::vector<FaultEvent> events;
  gen.generate(fleet, 11, events);
  ASSERT_FALSE(events.empty());

  const dram::mapping::DramMapping mapping{
      dram::mapping::make_mapping_config(gen.config().mapping)};
  // Group flips per (node, bank, row): every tripped row carries a burst
  // of distinct words, and each node's rows concentrate in few banks.
  std::map<std::uint64_t, std::set<std::uint64_t>> row_words;
  for (const auto& ev : events) {
    const auto c = mapping.decode(ev.words[0].word_index);
    const std::uint64_t node_index =
        static_cast<std::uint64_t>(cluster::node_index(ev.node));
    row_words[(node_index << 40) | (std::uint64_t{c.bank} << 32) | c.row]
        .insert(ev.words[0].word_index);
  }
  int burst_rows = 0;
  for (const auto& [key, words] : row_words) {
    if (static_cast<int>(words.size()) >= gen.config().flip_words_min / 2) {
      ++burst_rows;
    }
  }
  // The dominant share of tripped rows shows a wide burst of distinct
  // words - the clustering signature the detector keys on.
  EXPECT_GT(burst_rows, static_cast<int>(row_words.size()) / 2);
}

TEST(Hammer, DetectorFlagsBurstRowsAndAbsorbsFollowups) {
  const dram::mapping::DramMapping mapping{
      dram::mapping::make_mapping_config("lpddr3:mb")};
  DetectorConfig config;
  config.min_distinct_words = 3;
  config.window_seconds = 3600;
  HammerRowDetector detector(mapping, config);

  const dram::mapping::DramCoordinate base{2, 100, 0};
  // Two distinct words: below threshold.
  EXPECT_FALSE(detector.observe(1000, mapping.encode({2, 100, 5})));
  EXPECT_FALSE(detector.observe(1100, mapping.encode({2, 100, 9})));
  // Same word again refreshes, still 2 distinct.
  EXPECT_FALSE(detector.observe(1200, mapping.encode({2, 100, 9})));
  // Different row: no interference.
  EXPECT_FALSE(detector.observe(1300, mapping.encode({2, 101, 5})));
  // Third distinct word in-window: trigger.
  EXPECT_TRUE(detector.observe(1400, mapping.encode({2, 100, 77})));
  ASSERT_EQ(detector.detections().size(), 1u);
  EXPECT_EQ(detector.detections()[0].bank, base.bank);
  EXPECT_EQ(detector.detections()[0].row, base.row);
  EXPECT_EQ(detector.detections()[0].trigger_time, 1400);
  // Post-trigger faults on the row are absorbable.
  EXPECT_FALSE(detector.observe(1500, mapping.encode({2, 100, 78})));
  EXPECT_EQ(detector.absorbable_faults(), 1u);
  EXPECT_EQ(detector.detections()[0].distinct_words, 4);

  // A slow drip outside the window never triggers.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(detector.observe(
        10000 + i * 7200,
        mapping.encode({5, 700, static_cast<std::uint64_t>(10 + i)})));
  }
  EXPECT_EQ(detector.detections().size(), 1u);
}

TEST(Hammer, SuiteDisabledByDefaultAndAdditiveWhenEnabled) {
  const sched::ScanPlan plan = make_plan(kWindow.start, kWindow.end);
  std::vector<NodeContext> fleet = make_fleet(plan);

  FaultModelSuite::Config base_config;
  EXPECT_FALSE(base_config.enable_hammer);
  const auto base = FaultModelSuite(base_config).generate(fleet, 42);
  for (const auto& ev : base) {
    EXPECT_NE(ev.mechanism, Mechanism::kRowhammer);
  }

  FaultModelSuite::Config hammer_config = base_config;
  hammer_config.enable_hammer = true;
  hammer_config.hammer = loud_config();
  const auto with = FaultModelSuite(hammer_config).generate(fleet, 42);
  EXPECT_GT(with.size(), base.size());
  // The time-driven population is unchanged: the hammer events are purely
  // additive and the merged stream stays (time, node)-sorted.
  std::vector<FaultEvent> non_hammer;
  for (const auto& ev : with) {
    if (ev.mechanism != Mechanism::kRowhammer) non_hammer.push_back(ev);
  }
  ASSERT_EQ(non_hammer.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(non_hammer[i].time, base[i].time);
    EXPECT_EQ(non_hammer[i].node, base[i].node);
    EXPECT_EQ(non_hammer[i].words, base[i].words);
  }
  for (std::size_t i = 1; i < with.size(); ++i) {
    EXPECT_LE(with[i - 1].time, with[i].time);
  }
}

}  // namespace
}  // namespace unp::faults::hammer
