#include "common/civil_time.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace unp {
namespace {

TEST(CivilTime, EpochRoundTrip) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  const CivilDateTime c = civil_from_days(0);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
}

TEST(CivilTime, KnownDates) {
  EXPECT_EQ(days_from_civil(2015, 2, 1), 16467);
  EXPECT_EQ(days_from_civil(2016, 2, 29), 16860);  // leap day exists
  EXPECT_EQ(days_from_civil(2000, 3, 1), 11017);
}

TEST(CivilTime, RoundTripAllCampaignDays) {
  for (std::int64_t d = days_from_civil(2015, 1, 1);
       d <= days_from_civil(2016, 12, 31); ++d) {
    const CivilDateTime c = civil_from_days(d);
    EXPECT_EQ(days_from_civil(c.year, c.month, c.day), d);
  }
}

TEST(CivilTime, ToFromCivilUtc) {
  const CivilDateTime c{2015, 6, 15, 13, 45, 12};
  EXPECT_EQ(to_civil_utc(from_civil_utc(c)), c);
}

TEST(CivilTime, WeekdayKnownValues) {
  EXPECT_EQ(weekday_from_days(days_from_civil(1970, 1, 1)), 4);   // Thursday
  EXPECT_EQ(weekday_from_days(days_from_civil(2015, 2, 1)), 0);   // Sunday
  EXPECT_EQ(weekday_from_days(days_from_civil(2016, 2, 29)), 1);  // Monday
}

TEST(CivilTime, LeapYears) {
  EXPECT_TRUE(is_leap_year(2016));
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_FALSE(is_leap_year(2015));
  EXPECT_FALSE(is_leap_year(1900));
}

TEST(BarcelonaClock, WinterIsCet) {
  const TimePoint jan = from_civil_utc({2015, 1, 15, 12, 0, 0});
  EXPECT_EQ(BarcelonaClock::utc_offset(jan), kSecondsPerHour);
  EXPECT_EQ(BarcelonaClock::to_local(jan).hour, 13);
}

TEST(BarcelonaClock, SummerIsCest) {
  const TimePoint jul = from_civil_utc({2015, 7, 15, 12, 0, 0});
  EXPECT_EQ(BarcelonaClock::utc_offset(jul), 2 * kSecondsPerHour);
  EXPECT_EQ(BarcelonaClock::to_local(jul).hour, 14);
}

TEST(BarcelonaClock, DstTransition2015) {
  // DST 2015 started on Sunday March 29 at 01:00 UTC.
  const TimePoint before = from_civil_utc({2015, 3, 29, 0, 59, 59});
  const TimePoint after = from_civil_utc({2015, 3, 29, 1, 0, 0});
  EXPECT_EQ(BarcelonaClock::utc_offset(before), kSecondsPerHour);
  EXPECT_EQ(BarcelonaClock::utc_offset(after), 2 * kSecondsPerHour);
  // ...and ended on Sunday October 25 at 01:00 UTC.
  const TimePoint oct_before = from_civil_utc({2015, 10, 25, 0, 59, 59});
  const TimePoint oct_after = from_civil_utc({2015, 10, 25, 1, 0, 0});
  EXPECT_EQ(BarcelonaClock::utc_offset(oct_before), 2 * kSecondsPerHour);
  EXPECT_EQ(BarcelonaClock::utc_offset(oct_after), kSecondsPerHour);
}

TEST(BarcelonaClock, LocalHourWrapsMidnight) {
  const TimePoint t = from_civil_utc({2015, 1, 15, 23, 30, 0});  // 00:30 local
  EXPECT_NEAR(BarcelonaClock::local_hour(t), 0.5, 1e-9);
  EXPECT_EQ(BarcelonaClock::local_day_index(t),
            days_from_civil(2015, 1, 16));
}

TEST(CampaignWindow, ThirteenMonths) {
  const CampaignWindow w;
  EXPECT_EQ(w.duration_days(), 394);  // Feb 2015 through Feb 2016 inclusive
  EXPECT_TRUE(w.contains(from_civil_utc({2015, 8, 1, 0, 0, 0})));
  EXPECT_FALSE(w.contains(from_civil_utc({2016, 3, 1, 0, 0, 0})));
}

TEST(CampaignWindow, DayOfCampaign) {
  const CampaignWindow w;
  EXPECT_EQ(w.day_of_campaign(w.start), 0);
  EXPECT_EQ(w.day_of_campaign(from_civil_utc({2015, 2, 2, 10, 0, 0})), 1);
}

TEST(Iso8601, RoundTrip) {
  const TimePoint t = from_civil_utc({2015, 11, 3, 7, 8, 9});
  EXPECT_EQ(format_iso8601(t), "2015-11-03T07:08:09");
  EXPECT_EQ(parse_iso8601("2015-11-03T07:08:09"), t);
}

TEST(Iso8601, RejectsMalformed) {
  EXPECT_THROW((void)parse_iso8601("not a date"), ContractViolation);
  EXPECT_THROW((void)parse_iso8601("2015-13-01T00:00:00"), ContractViolation);
  EXPECT_THROW((void)parse_iso8601("2015-01-01"), ContractViolation);
}

}  // namespace
}  // namespace unp
