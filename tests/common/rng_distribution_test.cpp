// Statistical quality checks of the RNG layer: chi-square uniformity over
// bins and bits.  These guard against silent bias regressions in the local
// xoshiro/distribution implementations every stochastic result rests on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.hpp"

namespace unp {
namespace {

/// Chi-square statistic for observed counts vs a uniform expectation.
double chi_square_uniform(const std::vector<std::uint64_t>& counts,
                          double expected_per_bin) {
  double chi = 0.0;
  for (const std::uint64_t c : counts) {
    const double d = static_cast<double>(c) - expected_per_bin;
    chi += d * d / expected_per_bin;
  }
  return chi;
}

class RngChiSquare : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngChiSquare, UniformDoubleBins) {
  RngStream rng(GetParam());
  constexpr int kBins = 100;
  constexpr int kN = 200000;
  std::vector<std::uint64_t> counts(kBins, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform() * kBins)];
  }
  // 99 dof: the 0.999 quantile is ~148.2; failures at several seeds would
  // indicate real bias rather than bad luck.
  EXPECT_LT(chi_square_uniform(counts, kN / static_cast<double>(kBins)), 148.2);
}

TEST_P(RngChiSquare, BoundedIntegerBins) {
  RngStream rng(GetParam());
  constexpr std::uint64_t kBins = 37;  // non-power-of-two exercises Lemire
  constexpr int kN = 200000;
  std::vector<std::uint64_t> counts(kBins, 0);
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_u64(kBins)];
  // 36 dof: 0.999 quantile ~67.98.
  EXPECT_LT(chi_square_uniform(counts, kN / static_cast<double>(kBins)), 68.0);
}

TEST_P(RngChiSquare, EveryOutputBitBalanced) {
  RngStream rng(GetParam());
  constexpr int kN = 100000;
  std::array<std::uint64_t, 64> ones{};
  for (int i = 0; i < kN; ++i) {
    std::uint64_t v = rng.next_u64();
    for (int b = 0; b < 64; ++b) {
      ones[static_cast<std::size_t>(b)] += (v >> b) & 1;
    }
  }
  // Each bit ~ Binomial(kN, 0.5): 5 sigma band.
  const double sigma = std::sqrt(kN * 0.25);
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[static_cast<std::size_t>(b)]),
                kN / 2.0, 5.0 * sigma)
        << "bit " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngChiSquare,
                         ::testing::Values(1, 42, 987654321, 0xDEADBEEF));

TEST(RngIndependence, LaggedCorrelationNearZero) {
  RngStream rng(7);
  constexpr int kN = 100000;
  double prev = rng.uniform();
  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = prev;
    const double y = rng.uniform();
    sum_xy += x * y;
    sum_x += x;
    sum_x2 += x * x;
    prev = y;
  }
  const double mean = sum_x / kN;
  const double var = sum_x2 / kN - mean * mean;
  const double cov = sum_xy / kN - mean * mean;
  EXPECT_LT(std::abs(cov / var), 0.02);
}

}  // namespace
}  // namespace unp
