#include "common/table.hpp"

#include <gtest/gtest.h>

namespace unp {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"xxx", "1"});
  const std::string out = t.render();
  // Header, rule, one row.
  EXPECT_NE(out.find("a    long-header"), std::string::npos);
  EXPECT_NE(out.find("xxx  1"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTable, RowArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(RenderBars, ScalesToMax) {
  const std::string out =
      render_bars({{"x", 10.0}, {"y", 5.0}}, /*width=*/10);
  // x gets the full 10 hashes, y five.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####  5"), std::string::npos);
}

TEST(RenderBars, AllZeros) {
  const std::string out = render_bars({{"x", 0.0}}, 10);
  EXPECT_NE(out.find("x  "), std::string::npos);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(RenderHeatmap, ZeroIsBlankAndMaxIsDense) {
  Grid2D g(1, 3);
  g.at(0, 1) = 1.0;
  g.at(0, 2) = 100.0;
  const std::string out = render_heatmap(g);
  ASSERT_GE(out.size(), 4u);
  EXPECT_EQ(out[0], ' ');   // zero cell
  EXPECT_EQ(out[3], '\n');
  EXPECT_EQ(out[2], '@');   // max cell
  EXPECT_NE(out[1], ' ');   // nonzero cell is visible
}

TEST(RenderHeatmap, LogScaleCompresses) {
  Grid2D g(1, 2);
  g.at(0, 0) = 100.0;
  g.at(0, 1) = 10000.0;
  const std::string lin = render_heatmap(g, false);
  const std::string log = render_heatmap(g, true);
  // Linear: the small value collapses to the lowest ramp level; log keeps
  // it several levels up.
  EXPECT_LT(lin[0], log[0]);
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Format, CountGroupsThousands) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(25000000), "25,000,000");
  EXPECT_EQ(format_count(12135), "12,135");
}

TEST(Format, Hex32) {
  EXPECT_EQ(format_hex32(0xFFFF7BFFu), "0xffff7bff");
  EXPECT_EQ(format_hex32(0), "0x00000000");
}

}  // namespace
}  // namespace unp
