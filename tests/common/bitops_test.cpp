#include "common/bitops.hpp"

#include <gtest/gtest.h>

namespace unp {
namespace {

TEST(BitOps, SetBitPositions) {
  EXPECT_TRUE(set_bit_positions(0).empty());
  EXPECT_EQ(set_bit_positions(0b1), (std::vector<int>{0}));
  EXPECT_EQ(set_bit_positions(0b1010'0001), (std::vector<int>{0, 5, 7}));
  EXPECT_EQ(set_bit_positions(0x80000000u), (std::vector<int>{31}));
}

TEST(BitOps, FlippedBitCount) {
  EXPECT_EQ(flipped_bit_count(0xFFFFFFFFu, 0xFFFFFFFFu), 0);
  EXPECT_EQ(flipped_bit_count(0xFFFFFFFFu, 0xFFFF7BFFu), 2);  // Table I row
  EXPECT_EQ(flipped_bit_count(0x00000058u, 0xE6006358u), 9);  // 9-bit SDC row
}

TEST(BitOps, DirectionMasks) {
  // 0xffffffff -> 0xffffeeff: bits 8 and 12 lost charge.
  EXPECT_EQ(one_to_zero_mask(0xFFFFFFFFu, 0xFFFFEEFFu), 0x00001100u);
  EXPECT_EQ(zero_to_one_mask(0xFFFFFFFFu, 0xFFFFEEFFu), 0u);
  // 0x000003c1 -> 0x000003c2: bit 0 lost, bit 1 gained (Table I).
  EXPECT_EQ(one_to_zero_mask(0x000003C1u, 0x000003C2u), 0x1u);
  EXPECT_EQ(zero_to_one_mask(0x000003C1u, 0x000003C2u), 0x2u);
}

TEST(BitOps, AdjacencySingleAndRuns) {
  EXPECT_TRUE(flipped_bits_adjacent(0));
  EXPECT_TRUE(flipped_bits_adjacent(0b1));
  EXPECT_TRUE(flipped_bits_adjacent(0b11));
  EXPECT_TRUE(flipped_bits_adjacent(0b1110000));
  EXPECT_TRUE(flipped_bits_adjacent(0xFFFFFFFFu));
  EXPECT_FALSE(flipped_bits_adjacent(0b101));
  EXPECT_FALSE(flipped_bits_adjacent(0x00001100u));
}

TEST(BitOps, TableIAdjacencyRows) {
  // 0xfffff3ff: bits 10, 11 -> consecutive.
  EXPECT_TRUE(flipped_bits_adjacent(0xFFFFFFFFu ^ 0xFFFFF3FFu));
  // 0xffff7bff: bits 10, 15 -> not consecutive.
  EXPECT_FALSE(flipped_bits_adjacent(0xFFFFFFFFu ^ 0xFFFF7BFFu));
}

TEST(BitOps, Gaps) {
  EXPECT_TRUE(flipped_bit_gaps(0b1).empty());
  EXPECT_EQ(flipped_bit_gaps(0b101), (std::vector<int>{2}));
  EXPECT_EQ(flipped_bit_gaps(0b1001001), (std::vector<int>{3, 3}));
}

TEST(BitOps, MaxGapBetweenFlippedBits) {
  EXPECT_EQ(max_gap_between_flipped_bits(0b11), 0);
  EXPECT_EQ(max_gap_between_flipped_bits(0b101), 1);
  // Bits 0 and 12: 11 clean bits between - the paper's maximum.
  EXPECT_EQ(max_gap_between_flipped_bits((1u << 0) | (1u << 12)), 11);
}

TEST(BitOps, MeanDistance) {
  EXPECT_DOUBLE_EQ(mean_distance_between_flipped_bits(0b1), 0.0);
  EXPECT_DOUBLE_EQ(mean_distance_between_flipped_bits(0b1001), 3.0);
  EXPECT_DOUBLE_EQ(mean_distance_between_flipped_bits(0b1001001), 3.0);
  EXPECT_DOUBLE_EQ(mean_distance_between_flipped_bits(0b10001 | (1u << 10)),
                   5.0);  // gaps 4 and 6
}

}  // namespace
}  // namespace unp
