#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/require.hpp"

namespace unp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, ParallelForResultIndependentOfThreads) {
  std::vector<double> out1(257), out4(257);
  {
    ThreadPool pool(1);
    pool.parallel_for(out1.size(),
                      [&](std::size_t i) { out1[i] = static_cast<double>(i * i); });
  }
  {
    ThreadPool pool(4);
    pool.parallel_for(out4.size(),
                      [&](std::size_t i) { out4[i] = static_cast<double>(i * i); });
  }
  EXPECT_EQ(out1, out4);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, RequiresAtLeastOneThread) {
  EXPECT_THROW(ThreadPool(0), ContractViolation);
}

}  // namespace
}  // namespace unp
