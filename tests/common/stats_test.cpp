#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace unp {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RngStream rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricHalf) {
  // I_{0.5}(a, a) = 0.5 for any a.
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(incomplete_beta(7.5, 7.5, 0.5), 0.5, 1e-10);
}

TEST(IncompleteBeta, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.37, 0.8}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(StudentT, TwoSidedKnownValues) {
  // t = 0 -> p = 1.
  EXPECT_NEAR(student_t_two_sided_p(0.0, 10.0), 1.0, 1e-12);
  // Large |t| -> p ~ 0.
  EXPECT_LT(student_t_two_sided_p(50.0, 10.0), 1e-10);
  // t distribution with 1 dof (Cauchy): P(|T| > 1) = 0.5.
  EXPECT_NEAR(student_t_two_sided_p(1.0, 1.0), 0.5, 1e-9);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  const PearsonResult r = pearson(x, y);
  EXPECT_NEAR(r.r, 1.0, 1e-12);
  EXPECT_NEAR(r.p_value, 0.0, 1e-9);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y).r, -1.0, 1e-12);
}

TEST(Pearson, IndependentSeriesNearZero) {
  RngStream rng(99);
  std::vector<double> x(2000), y(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  const PearsonResult r = pearson(x, y);
  EXPECT_LT(std::abs(r.r), 0.06);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> x{3, 3, 3, 3};
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(x, y).r, 0.0);
}

TEST(Pearson, MatchesPaperScaleExample) {
  // A weak anti-correlation with n ~ 400 days should produce a small
  // p-value, mirroring the paper's r = -0.18, p = 0.0002 situation.
  RngStream rng(7);
  std::vector<double> x(420), y(420);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal(10.0, 2.0);
    y[i] = -0.2 * x[i] + rng.normal(0.0, 2.0);
  }
  const PearsonResult r = pearson(x, y);
  EXPECT_LT(r.r, -0.1);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(Pearson, SizeMismatchThrows) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{1, 2};
  EXPECT_THROW((void)pearson(x, y), ContractViolation);
}

TEST(OrderStats, MeanMedianPercentile) {
  const std::vector<double> xs{5, 1, 9, 3, 7};
  EXPECT_DOUBLE_EQ(mean_of(xs), 5.0);
  EXPECT_DOUBLE_EQ(median_of(xs), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100.0), 9.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50.0), 5.0);
}

TEST(OrderStats, EvenMedian) {
  const std::vector<double> xs{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median_of(xs), 2.5);
}

TEST(OrderStats, EmptyInputs) {
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(mean_of(none), 0.0);
  EXPECT_DOUBLE_EQ(median_of(none), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of(none, 50.0), 0.0);
}

}  // namespace
}  // namespace unp
