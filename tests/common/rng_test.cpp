#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace unp {
namespace {

TEST(Splitmix64, KnownSequence) {
  // Reference values for seed 0 (from the public-domain reference code).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

TEST(Mix64, OrderSensitive) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), 0u);
}

TEST(Mix64, Deterministic) {
  EXPECT_EQ(mix64(42, 7), mix64(42, 7));
}

TEST(Xoshiro256, ReproducibleAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LE(same, 1);
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256 a(9), b(9);
  b.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LE(same, 1);
}

TEST(RngStream, StreamsAreIndependentOfConsumptionOrder) {
  // Drawing from one stream must not affect a sibling stream.
  RngStream a1(42, 1), b1(42, 2);
  const std::uint64_t a_first = a1.next_u64();
  const std::uint64_t b_first = b1.next_u64();

  RngStream b2(42, 2);
  for (int i = 0; i < 50; ++i) (void)RngStream(42, 1).next_u64();
  EXPECT_EQ(b2.next_u64(), b_first);
  RngStream a2(42, 1);
  EXPECT_EQ(a2.next_u64(), a_first);
}

TEST(RngStream, UniformInUnitInterval) {
  RngStream rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, UniformU64RespectsBound) {
  RngStream rng(11);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_u64(n), n);
  }
}

TEST(RngStream, UniformU64CoversSmallRange) {
  RngStream rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform_u64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngStream, UniformIntInclusiveBounds) {
  RngStream rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngStream, ExponentialMeanMatchesRate) {
  RngStream rng(19);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(RngStream, PoissonSmallMean) {
  RngStream rng(23);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(2.5));
  EXPECT_NEAR(sum / kN, 2.5, 0.05);
}

TEST(RngStream, PoissonLargeMeanUsesPtrs) {
  RngStream rng(29);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const auto v = static_cast<double>(rng.poisson(100.0));
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 100.0, 0.5);
  EXPECT_NEAR(var, 100.0, 5.0);  // Poisson: variance == mean
}

TEST(RngStream, PoissonZeroMean) {
  RngStream rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(RngStream, NormalMoments) {
  RngStream rng(37);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(std::sqrt(sq / kN - mean * mean), 2.0, 0.03);
}

TEST(RngStream, BernoulliFrequency) {
  RngStream rng(41);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngStream, WeightedIndexFollowsWeights) {
  RngStream rng(43);
  const std::array<double, 3> weights{1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.weighted_index(weights.data(), weights.size())];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.7, 0.015);
}

}  // namespace
}  // namespace unp
