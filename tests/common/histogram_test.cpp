#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace unp {
namespace {

TEST(Histogram1D, BinPlacement) {
  Histogram1D h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.5);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram1D, UnderOverflow) {
  Histogram1D h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram1D, Weights) {
  Histogram1D h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.count(1), 10u);
}

TEST(Histogram1D, BinGeometry) {
  Histogram1D h(20.0, 80.0, 30);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 20.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 21.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(29), 78.0);
}

TEST(Histogram1D, Merge) {
  Histogram1D a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(1.0);
  b.add(1.5);
  b.add(20.0);
  a.merge(b);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.overflow(), 1u);
}

TEST(Histogram1D, MergeRejectsMismatch) {
  Histogram1D a(0.0, 10.0, 10), b(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(b), ContractViolation);
}

TEST(Histogram1D, InvalidConstruction) {
  EXPECT_THROW(Histogram1D(0.0, 10.0, 0), ContractViolation);
  EXPECT_THROW(Histogram1D(10.0, 0.0, 5), ContractViolation);
}

TEST(Grid2D, Basics) {
  Grid2D g(3, 4, 1.0);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 4u);
  EXPECT_DOUBLE_EQ(g.sum(), 12.0);
  g.at(2, 3) = 5.0;
  EXPECT_DOUBLE_EQ(g.at(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(g.max_value(), 5.0);
}

TEST(Grid2D, BoundsChecked) {
  Grid2D g(2, 2);
  EXPECT_THROW((void)g.at(2, 0), ContractViolation);
  EXPECT_THROW((void)g.at(0, 2), ContractViolation);
}

}  // namespace
}  // namespace unp
