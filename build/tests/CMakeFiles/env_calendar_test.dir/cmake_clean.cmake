file(REMOVE_RECURSE
  "CMakeFiles/env_calendar_test.dir/env/calendar_test.cpp.o"
  "CMakeFiles/env_calendar_test.dir/env/calendar_test.cpp.o.d"
  "env_calendar_test"
  "env_calendar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_calendar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
