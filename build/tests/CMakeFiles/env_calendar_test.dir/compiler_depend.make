# Empty compiler generated dependencies file for env_calendar_test.
# This may be replaced when dependencies are built.
