file(REMOVE_RECURSE
  "CMakeFiles/resilience_prediction_test.dir/resilience/prediction_test.cpp.o"
  "CMakeFiles/resilience_prediction_test.dir/resilience/prediction_test.cpp.o.d"
  "resilience_prediction_test"
  "resilience_prediction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_prediction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
