# Empty dependencies file for scanner_pattern_test.
# This may be replaced when dependencies are built.
