file(REMOVE_RECURSE
  "CMakeFiles/scanner_pattern_test.dir/scanner/pattern_test.cpp.o"
  "CMakeFiles/scanner_pattern_test.dir/scanner/pattern_test.cpp.o.d"
  "scanner_pattern_test"
  "scanner_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanner_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
