# Empty dependencies file for env_solar_test.
# This may be replaced when dependencies are built.
