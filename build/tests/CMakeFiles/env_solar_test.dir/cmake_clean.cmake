file(REMOVE_RECURSE
  "CMakeFiles/env_solar_test.dir/env/solar_test.cpp.o"
  "CMakeFiles/env_solar_test.dir/env/solar_test.cpp.o.d"
  "env_solar_test"
  "env_solar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_solar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
