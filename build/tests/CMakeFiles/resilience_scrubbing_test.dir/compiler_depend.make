# Empty compiler generated dependencies file for resilience_scrubbing_test.
# This may be replaced when dependencies are built.
