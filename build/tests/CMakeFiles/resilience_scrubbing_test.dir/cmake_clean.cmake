file(REMOVE_RECURSE
  "CMakeFiles/resilience_scrubbing_test.dir/resilience/scrubbing_test.cpp.o"
  "CMakeFiles/resilience_scrubbing_test.dir/resilience/scrubbing_test.cpp.o.d"
  "resilience_scrubbing_test"
  "resilience_scrubbing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_scrubbing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
