file(REMOVE_RECURSE
  "CMakeFiles/common_bitops_test.dir/common/bitops_test.cpp.o"
  "CMakeFiles/common_bitops_test.dir/common/bitops_test.cpp.o.d"
  "common_bitops_test"
  "common_bitops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_bitops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
