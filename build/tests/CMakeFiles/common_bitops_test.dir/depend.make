# Empty dependencies file for common_bitops_test.
# This may be replaced when dependencies are built.
