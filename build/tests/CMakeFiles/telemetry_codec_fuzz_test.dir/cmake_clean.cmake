file(REMOVE_RECURSE
  "CMakeFiles/telemetry_codec_fuzz_test.dir/telemetry/codec_fuzz_test.cpp.o"
  "CMakeFiles/telemetry_codec_fuzz_test.dir/telemetry/codec_fuzz_test.cpp.o.d"
  "telemetry_codec_fuzz_test"
  "telemetry_codec_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_codec_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
