# Empty compiler generated dependencies file for cluster_availability_test.
# This may be replaced when dependencies are built.
