file(REMOVE_RECURSE
  "CMakeFiles/cluster_availability_test.dir/cluster/availability_test.cpp.o"
  "CMakeFiles/cluster_availability_test.dir/cluster/availability_test.cpp.o.d"
  "cluster_availability_test"
  "cluster_availability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_availability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
