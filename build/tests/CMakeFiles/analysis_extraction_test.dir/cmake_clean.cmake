file(REMOVE_RECURSE
  "CMakeFiles/analysis_extraction_test.dir/analysis/extraction_test.cpp.o"
  "CMakeFiles/analysis_extraction_test.dir/analysis/extraction_test.cpp.o.d"
  "analysis_extraction_test"
  "analysis_extraction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_extraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
