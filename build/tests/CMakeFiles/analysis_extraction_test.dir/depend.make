# Empty dependencies file for analysis_extraction_test.
# This may be replaced when dependencies are built.
