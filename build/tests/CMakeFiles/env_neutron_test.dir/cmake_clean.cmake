file(REMOVE_RECURSE
  "CMakeFiles/env_neutron_test.dir/env/neutron_test.cpp.o"
  "CMakeFiles/env_neutron_test.dir/env/neutron_test.cpp.o.d"
  "env_neutron_test"
  "env_neutron_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_neutron_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
