# Empty dependencies file for env_neutron_test.
# This may be replaced when dependencies are built.
