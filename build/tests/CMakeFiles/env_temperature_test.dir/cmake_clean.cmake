file(REMOVE_RECURSE
  "CMakeFiles/env_temperature_test.dir/env/temperature_test.cpp.o"
  "CMakeFiles/env_temperature_test.dir/env/temperature_test.cpp.o.d"
  "env_temperature_test"
  "env_temperature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_temperature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
