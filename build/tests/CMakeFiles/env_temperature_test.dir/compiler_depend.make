# Empty compiler generated dependencies file for env_temperature_test.
# This may be replaced when dependencies are built.
