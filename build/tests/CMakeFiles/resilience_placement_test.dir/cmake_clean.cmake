file(REMOVE_RECURSE
  "CMakeFiles/resilience_placement_test.dir/resilience/placement_test.cpp.o"
  "CMakeFiles/resilience_placement_test.dir/resilience/placement_test.cpp.o.d"
  "resilience_placement_test"
  "resilience_placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
