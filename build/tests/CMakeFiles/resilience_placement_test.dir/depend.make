# Empty dependencies file for resilience_placement_test.
# This may be replaced when dependencies are built.
