# Empty compiler generated dependencies file for resilience_policies_test.
# This may be replaced when dependencies are built.
