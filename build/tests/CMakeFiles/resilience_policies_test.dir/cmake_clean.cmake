file(REMOVE_RECURSE
  "CMakeFiles/resilience_policies_test.dir/resilience/policies_test.cpp.o"
  "CMakeFiles/resilience_policies_test.dir/resilience/policies_test.cpp.o.d"
  "resilience_policies_test"
  "resilience_policies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
