file(REMOVE_RECURSE
  "CMakeFiles/resilience_quarantine_test.dir/resilience/quarantine_test.cpp.o"
  "CMakeFiles/resilience_quarantine_test.dir/resilience/quarantine_test.cpp.o.d"
  "resilience_quarantine_test"
  "resilience_quarantine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_quarantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
