# Empty dependencies file for resilience_quarantine_test.
# This may be replaced when dependencies are built.
