# Empty compiler generated dependencies file for telemetry_codec_test.
# This may be replaced when dependencies are built.
