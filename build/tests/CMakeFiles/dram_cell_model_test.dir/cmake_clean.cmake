file(REMOVE_RECURSE
  "CMakeFiles/dram_cell_model_test.dir/dram/cell_model_test.cpp.o"
  "CMakeFiles/dram_cell_model_test.dir/dram/cell_model_test.cpp.o.d"
  "dram_cell_model_test"
  "dram_cell_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_cell_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
