file(REMOVE_RECURSE
  "CMakeFiles/common_rng_distribution_test.dir/common/rng_distribution_test.cpp.o"
  "CMakeFiles/common_rng_distribution_test.dir/common/rng_distribution_test.cpp.o.d"
  "common_rng_distribution_test"
  "common_rng_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_rng_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
