# Empty compiler generated dependencies file for common_rng_distribution_test.
# This may be replaced when dependencies are built.
