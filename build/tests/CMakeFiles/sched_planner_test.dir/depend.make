# Empty dependencies file for sched_planner_test.
# This may be replaced when dependencies are built.
