file(REMOVE_RECURSE
  "CMakeFiles/sched_planner_test.dir/sched/planner_test.cpp.o"
  "CMakeFiles/sched_planner_test.dir/sched/planner_test.cpp.o.d"
  "sched_planner_test"
  "sched_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
