file(REMOVE_RECURSE
  "CMakeFiles/telemetry_archive_test.dir/telemetry/archive_test.cpp.o"
  "CMakeFiles/telemetry_archive_test.dir/telemetry/archive_test.cpp.o.d"
  "telemetry_archive_test"
  "telemetry_archive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_archive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
