# Empty dependencies file for telemetry_archive_test.
# This may be replaced when dependencies are built.
