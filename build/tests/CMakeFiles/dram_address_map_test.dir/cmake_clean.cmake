file(REMOVE_RECURSE
  "CMakeFiles/dram_address_map_test.dir/dram/address_map_test.cpp.o"
  "CMakeFiles/dram_address_map_test.dir/dram/address_map_test.cpp.o.d"
  "dram_address_map_test"
  "dram_address_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_address_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
