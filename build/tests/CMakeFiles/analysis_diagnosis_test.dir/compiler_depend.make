# Empty compiler generated dependencies file for analysis_diagnosis_test.
# This may be replaced when dependencies are built.
