file(REMOVE_RECURSE
  "CMakeFiles/analysis_diagnosis_test.dir/analysis/diagnosis_test.cpp.o"
  "CMakeFiles/analysis_diagnosis_test.dir/analysis/diagnosis_test.cpp.o.d"
  "analysis_diagnosis_test"
  "analysis_diagnosis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_diagnosis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
