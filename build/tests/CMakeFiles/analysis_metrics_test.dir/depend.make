# Empty dependencies file for analysis_metrics_test.
# This may be replaced when dependencies are built.
