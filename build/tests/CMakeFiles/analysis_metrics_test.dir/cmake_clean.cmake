file(REMOVE_RECURSE
  "CMakeFiles/analysis_metrics_test.dir/analysis/metrics_test.cpp.o"
  "CMakeFiles/analysis_metrics_test.dir/analysis/metrics_test.cpp.o.d"
  "analysis_metrics_test"
  "analysis_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
