file(REMOVE_RECURSE
  "CMakeFiles/analysis_alignment_test.dir/analysis/alignment_test.cpp.o"
  "CMakeFiles/analysis_alignment_test.dir/analysis/alignment_test.cpp.o.d"
  "analysis_alignment_test"
  "analysis_alignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_alignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
