# Empty compiler generated dependencies file for analysis_alignment_test.
# This may be replaced when dependencies are built.
