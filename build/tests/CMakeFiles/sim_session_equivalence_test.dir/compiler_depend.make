# Empty compiler generated dependencies file for sim_session_equivalence_test.
# This may be replaced when dependencies are built.
