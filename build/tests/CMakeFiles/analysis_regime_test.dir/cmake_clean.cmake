file(REMOVE_RECURSE
  "CMakeFiles/analysis_regime_test.dir/analysis/regime_test.cpp.o"
  "CMakeFiles/analysis_regime_test.dir/analysis/regime_test.cpp.o.d"
  "analysis_regime_test"
  "analysis_regime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_regime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
