# Empty dependencies file for analysis_regime_test.
# This may be replaced when dependencies are built.
