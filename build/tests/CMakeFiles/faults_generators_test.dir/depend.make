# Empty dependencies file for faults_generators_test.
# This may be replaced when dependencies are built.
