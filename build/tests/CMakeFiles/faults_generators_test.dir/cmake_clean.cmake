file(REMOVE_RECURSE
  "CMakeFiles/faults_generators_test.dir/faults/generators_test.cpp.o"
  "CMakeFiles/faults_generators_test.dir/faults/generators_test.cpp.o.d"
  "faults_generators_test"
  "faults_generators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faults_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
