# Empty dependencies file for ecc_outcome_test.
# This may be replaced when dependencies are built.
