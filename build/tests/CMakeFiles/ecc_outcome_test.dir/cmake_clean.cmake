file(REMOVE_RECURSE
  "CMakeFiles/ecc_outcome_test.dir/ecc/outcome_test.cpp.o"
  "CMakeFiles/ecc_outcome_test.dir/ecc/outcome_test.cpp.o.d"
  "ecc_outcome_test"
  "ecc_outcome_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_outcome_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
