file(REMOVE_RECURSE
  "CMakeFiles/scanner_scanner_test.dir/scanner/scanner_test.cpp.o"
  "CMakeFiles/scanner_scanner_test.dir/scanner/scanner_test.cpp.o.d"
  "scanner_scanner_test"
  "scanner_scanner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanner_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
