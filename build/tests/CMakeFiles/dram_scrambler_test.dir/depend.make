# Empty dependencies file for dram_scrambler_test.
# This may be replaced when dependencies are built.
