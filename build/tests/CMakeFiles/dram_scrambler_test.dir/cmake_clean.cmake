file(REMOVE_RECURSE
  "CMakeFiles/dram_scrambler_test.dir/dram/scrambler_test.cpp.o"
  "CMakeFiles/dram_scrambler_test.dir/dram/scrambler_test.cpp.o.d"
  "dram_scrambler_test"
  "dram_scrambler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_scrambler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
