# Empty compiler generated dependencies file for analysis_bitstats_test.
# This may be replaced when dependencies are built.
