file(REMOVE_RECURSE
  "CMakeFiles/analysis_bitstats_test.dir/analysis/bitstats_test.cpp.o"
  "CMakeFiles/analysis_bitstats_test.dir/analysis/bitstats_test.cpp.o.d"
  "analysis_bitstats_test"
  "analysis_bitstats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_bitstats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
