file(REMOVE_RECURSE
  "CMakeFiles/scanner_backend_test.dir/scanner/backend_test.cpp.o"
  "CMakeFiles/scanner_backend_test.dir/scanner/backend_test.cpp.o.d"
  "scanner_backend_test"
  "scanner_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanner_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
