# Empty compiler generated dependencies file for analysis_interarrival_test.
# This may be replaced when dependencies are built.
