file(REMOVE_RECURSE
  "CMakeFiles/analysis_interarrival_test.dir/analysis/interarrival_test.cpp.o"
  "CMakeFiles/analysis_interarrival_test.dir/analysis/interarrival_test.cpp.o.d"
  "analysis_interarrival_test"
  "analysis_interarrival_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_interarrival_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
