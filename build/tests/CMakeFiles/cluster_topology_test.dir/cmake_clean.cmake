file(REMOVE_RECURSE
  "CMakeFiles/cluster_topology_test.dir/cluster/topology_test.cpp.o"
  "CMakeFiles/cluster_topology_test.dir/cluster/topology_test.cpp.o.d"
  "cluster_topology_test"
  "cluster_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
