file(REMOVE_RECURSE
  "CMakeFiles/sim_campaign_test.dir/sim/campaign_test.cpp.o"
  "CMakeFiles/sim_campaign_test.dir/sim/campaign_test.cpp.o.d"
  "sim_campaign_test"
  "sim_campaign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
