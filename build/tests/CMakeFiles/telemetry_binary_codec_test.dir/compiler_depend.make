# Empty compiler generated dependencies file for telemetry_binary_codec_test.
# This may be replaced when dependencies are built.
