file(REMOVE_RECURSE
  "CMakeFiles/telemetry_binary_codec_test.dir/telemetry/binary_codec_test.cpp.o"
  "CMakeFiles/telemetry_binary_codec_test.dir/telemetry/binary_codec_test.cpp.o.d"
  "telemetry_binary_codec_test"
  "telemetry_binary_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_binary_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
