# Empty dependencies file for sim_session_sim_test.
# This may be replaced when dependencies are built.
