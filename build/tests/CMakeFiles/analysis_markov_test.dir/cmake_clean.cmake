file(REMOVE_RECURSE
  "CMakeFiles/analysis_markov_test.dir/analysis/markov_test.cpp.o"
  "CMakeFiles/analysis_markov_test.dir/analysis/markov_test.cpp.o.d"
  "analysis_markov_test"
  "analysis_markov_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
