# Empty compiler generated dependencies file for analysis_markov_test.
# This may be replaced when dependencies are built.
