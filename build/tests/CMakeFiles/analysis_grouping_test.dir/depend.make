# Empty dependencies file for analysis_grouping_test.
# This may be replaced when dependencies are built.
