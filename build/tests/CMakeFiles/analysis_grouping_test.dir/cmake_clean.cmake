file(REMOVE_RECURSE
  "CMakeFiles/analysis_grouping_test.dir/analysis/grouping_test.cpp.o"
  "CMakeFiles/analysis_grouping_test.dir/analysis/grouping_test.cpp.o.d"
  "analysis_grouping_test"
  "analysis_grouping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
