file(REMOVE_RECURSE
  "CMakeFiles/unp_bench_util.dir/util/campaign_cache.cpp.o"
  "CMakeFiles/unp_bench_util.dir/util/campaign_cache.cpp.o.d"
  "libunp_bench_util.a"
  "libunp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
