file(REMOVE_RECURSE
  "libunp_bench_util.a"
)
