# Empty dependencies file for unp_bench_util.
# This may be replaced when dependencies are built.
