file(REMOVE_RECURSE
  "../bench/bench_ext_scrubbing"
  "../bench/bench_ext_scrubbing.pdb"
  "CMakeFiles/bench_ext_scrubbing.dir/ext_scrubbing.cpp.o"
  "CMakeFiles/bench_ext_scrubbing.dir/ext_scrubbing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_scrubbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
