# Empty compiler generated dependencies file for bench_ext_scrubbing.
# This may be replaced when dependencies are built.
