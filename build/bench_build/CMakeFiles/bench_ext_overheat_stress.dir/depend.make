# Empty dependencies file for bench_ext_overheat_stress.
# This may be replaced when dependencies are built.
