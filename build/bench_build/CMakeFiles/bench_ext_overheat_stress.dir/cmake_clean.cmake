file(REMOVE_RECURSE
  "../bench/bench_ext_overheat_stress"
  "../bench/bench_ext_overheat_stress.pdb"
  "CMakeFiles/bench_ext_overheat_stress.dir/ext_overheat_stress.cpp.o"
  "CMakeFiles/bench_ext_overheat_stress.dir/ext_overheat_stress.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_overheat_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
