file(REMOVE_RECURSE
  "../bench/bench_fig03_errors_per_node"
  "../bench/bench_fig03_errors_per_node.pdb"
  "CMakeFiles/bench_fig03_errors_per_node.dir/fig03_errors_per_node.cpp.o"
  "CMakeFiles/bench_fig03_errors_per_node.dir/fig03_errors_per_node.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_errors_per_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
