# Empty dependencies file for bench_fig03_errors_per_node.
# This may be replaced when dependencies are built.
