# Empty dependencies file for bench_fig10_daily_errors.
# This may be replaced when dependencies are built.
