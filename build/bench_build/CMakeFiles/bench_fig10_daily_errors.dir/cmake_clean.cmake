file(REMOVE_RECURSE
  "../bench/bench_fig10_daily_errors"
  "../bench/bench_fig10_daily_errors.pdb"
  "CMakeFiles/bench_fig10_daily_errors.dir/fig10_daily_errors.cpp.o"
  "CMakeFiles/bench_fig10_daily_errors.dir/fig10_daily_errors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_daily_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
