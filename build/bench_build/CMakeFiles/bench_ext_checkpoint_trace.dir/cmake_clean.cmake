file(REMOVE_RECURSE
  "../bench/bench_ext_checkpoint_trace"
  "../bench/bench_ext_checkpoint_trace.pdb"
  "CMakeFiles/bench_ext_checkpoint_trace.dir/ext_checkpoint_trace.cpp.o"
  "CMakeFiles/bench_ext_checkpoint_trace.dir/ext_checkpoint_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_checkpoint_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
