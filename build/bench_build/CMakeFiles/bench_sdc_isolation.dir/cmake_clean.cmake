file(REMOVE_RECURSE
  "../bench/bench_sdc_isolation"
  "../bench/bench_sdc_isolation.pdb"
  "CMakeFiles/bench_sdc_isolation.dir/sdc_isolation.cpp.o"
  "CMakeFiles/bench_sdc_isolation.dir/sdc_isolation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdc_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
