file(REMOVE_RECURSE
  "../bench/bench_ext_alignment"
  "../bench/bench_ext_alignment.pdb"
  "CMakeFiles/bench_ext_alignment.dir/ext_alignment.cpp.o"
  "CMakeFiles/bench_ext_alignment.dir/ext_alignment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
