file(REMOVE_RECURSE
  "../bench/bench_fig09_daily_scan"
  "../bench/bench_fig09_daily_scan.pdb"
  "CMakeFiles/bench_fig09_daily_scan.dir/fig09_daily_scan.cpp.o"
  "CMakeFiles/bench_fig09_daily_scan.dir/fig09_daily_scan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_daily_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
