# Empty compiler generated dependencies file for bench_fig09_daily_scan.
# This may be replaced when dependencies are built.
