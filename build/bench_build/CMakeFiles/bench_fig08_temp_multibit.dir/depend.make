# Empty dependencies file for bench_fig08_temp_multibit.
# This may be replaced when dependencies are built.
