file(REMOVE_RECURSE
  "../bench/bench_fig08_temp_multibit"
  "../bench/bench_fig08_temp_multibit.pdb"
  "CMakeFiles/bench_fig08_temp_multibit.dir/fig08_temp_multibit.cpp.o"
  "CMakeFiles/bench_fig08_temp_multibit.dir/fig08_temp_multibit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_temp_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
