file(REMOVE_RECURSE
  "../bench/bench_fig01_hours_scanned"
  "../bench/bench_fig01_hours_scanned.pdb"
  "CMakeFiles/bench_fig01_hours_scanned.dir/fig01_hours_scanned.cpp.o"
  "CMakeFiles/bench_fig01_hours_scanned.dir/fig01_hours_scanned.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_hours_scanned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
