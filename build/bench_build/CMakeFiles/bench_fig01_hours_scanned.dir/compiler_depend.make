# Empty compiler generated dependencies file for bench_fig01_hours_scanned.
# This may be replaced when dependencies are built.
