file(REMOVE_RECURSE
  "../bench/bench_headline_stats"
  "../bench/bench_headline_stats.pdb"
  "CMakeFiles/bench_headline_stats.dir/headline_stats.cpp.o"
  "CMakeFiles/bench_headline_stats.dir/headline_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
