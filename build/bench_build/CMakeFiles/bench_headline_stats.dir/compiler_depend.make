# Empty compiler generated dependencies file for bench_headline_stats.
# This may be replaced when dependencies are built.
