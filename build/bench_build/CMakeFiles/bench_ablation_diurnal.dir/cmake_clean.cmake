file(REMOVE_RECURSE
  "../bench/bench_ablation_diurnal"
  "../bench/bench_ablation_diurnal.pdb"
  "CMakeFiles/bench_ablation_diurnal.dir/ablation_diurnal.cpp.o"
  "CMakeFiles/bench_ablation_diurnal.dir/ablation_diurnal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
