# Empty compiler generated dependencies file for bench_fig12_top_nodes.
# This may be replaced when dependencies are built.
