# Empty compiler generated dependencies file for bench_ext_component_swap.
# This may be replaced when dependencies are built.
