file(REMOVE_RECURSE
  "../bench/bench_ext_component_swap"
  "../bench/bench_ext_component_swap.pdb"
  "CMakeFiles/bench_ext_component_swap.dir/ext_component_swap.cpp.o"
  "CMakeFiles/bench_ext_component_swap.dir/ext_component_swap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_component_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
