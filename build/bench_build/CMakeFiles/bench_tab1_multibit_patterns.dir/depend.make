# Empty dependencies file for bench_tab1_multibit_patterns.
# This may be replaced when dependencies are built.
