file(REMOVE_RECURSE
  "../bench/bench_tab1_multibit_patterns"
  "../bench/bench_tab1_multibit_patterns.pdb"
  "CMakeFiles/bench_tab1_multibit_patterns.dir/tab1_multibit_patterns.cpp.o"
  "CMakeFiles/bench_tab1_multibit_patterns.dir/tab1_multibit_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_multibit_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
