file(REMOVE_RECURSE
  "../bench/bench_ext_placement"
  "../bench/bench_ext_placement.pdb"
  "CMakeFiles/bench_ext_placement.dir/ext_placement.cpp.o"
  "CMakeFiles/bench_ext_placement.dir/ext_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
