file(REMOVE_RECURSE
  "../bench/bench_fig05_hourly_all"
  "../bench/bench_fig05_hourly_all.pdb"
  "CMakeFiles/bench_fig05_hourly_all.dir/fig05_hourly_all.cpp.o"
  "CMakeFiles/bench_fig05_hourly_all.dir/fig05_hourly_all.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_hourly_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
