# Empty dependencies file for bench_fig05_hourly_all.
# This may be replaced when dependencies are built.
