# Empty dependencies file for bench_ext_diagnosis.
# This may be replaced when dependencies are built.
