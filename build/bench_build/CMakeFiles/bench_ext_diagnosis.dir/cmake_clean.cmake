file(REMOVE_RECURSE
  "../bench/bench_ext_diagnosis"
  "../bench/bench_ext_diagnosis.pdb"
  "CMakeFiles/bench_ext_diagnosis.dir/ext_diagnosis.cpp.o"
  "CMakeFiles/bench_ext_diagnosis.dir/ext_diagnosis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
