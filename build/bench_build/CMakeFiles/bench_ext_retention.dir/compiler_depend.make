# Empty compiler generated dependencies file for bench_ext_retention.
# This may be replaced when dependencies are built.
