file(REMOVE_RECURSE
  "../bench/bench_ext_retention"
  "../bench/bench_ext_retention.pdb"
  "CMakeFiles/bench_ext_retention.dir/ext_retention.cpp.o"
  "CMakeFiles/bench_ext_retention.dir/ext_retention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
