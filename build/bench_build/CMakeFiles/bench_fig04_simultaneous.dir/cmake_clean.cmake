file(REMOVE_RECURSE
  "../bench/bench_fig04_simultaneous"
  "../bench/bench_fig04_simultaneous.pdb"
  "CMakeFiles/bench_fig04_simultaneous.dir/fig04_simultaneous.cpp.o"
  "CMakeFiles/bench_fig04_simultaneous.dir/fig04_simultaneous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_simultaneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
