file(REMOVE_RECURSE
  "../bench/bench_fig11_daily_multibit"
  "../bench/bench_fig11_daily_multibit.pdb"
  "CMakeFiles/bench_fig11_daily_multibit.dir/fig11_daily_multibit.cpp.o"
  "CMakeFiles/bench_fig11_daily_multibit.dir/fig11_daily_multibit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_daily_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
