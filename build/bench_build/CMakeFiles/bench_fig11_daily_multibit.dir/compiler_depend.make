# Empty compiler generated dependencies file for bench_fig11_daily_multibit.
# This may be replaced when dependencies are built.
