file(REMOVE_RECURSE
  "../bench/bench_fig07_temp_all"
  "../bench/bench_fig07_temp_all.pdb"
  "CMakeFiles/bench_fig07_temp_all.dir/fig07_temp_all.cpp.o"
  "CMakeFiles/bench_fig07_temp_all.dir/fig07_temp_all.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_temp_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
