# Empty dependencies file for bench_fig07_temp_all.
# This may be replaced when dependencies are built.
