# Empty dependencies file for bench_perf_scanner.
# This may be replaced when dependencies are built.
