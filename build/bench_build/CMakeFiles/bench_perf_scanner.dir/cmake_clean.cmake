file(REMOVE_RECURSE
  "../bench/bench_perf_scanner"
  "../bench/bench_perf_scanner.pdb"
  "CMakeFiles/bench_perf_scanner.dir/perf_scanner.cpp.o"
  "CMakeFiles/bench_perf_scanner.dir/perf_scanner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
