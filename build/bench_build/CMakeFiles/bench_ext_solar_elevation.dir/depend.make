# Empty dependencies file for bench_ext_solar_elevation.
# This may be replaced when dependencies are built.
