file(REMOVE_RECURSE
  "../bench/bench_ext_solar_elevation"
  "../bench/bench_ext_solar_elevation.pdb"
  "CMakeFiles/bench_ext_solar_elevation.dir/ext_solar_elevation.cpp.o"
  "CMakeFiles/bench_ext_solar_elevation.dir/ext_solar_elevation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_solar_elevation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
