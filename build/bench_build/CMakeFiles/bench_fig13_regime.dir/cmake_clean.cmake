file(REMOVE_RECURSE
  "../bench/bench_fig13_regime"
  "../bench/bench_fig13_regime.pdb"
  "CMakeFiles/bench_fig13_regime.dir/fig13_regime.cpp.o"
  "CMakeFiles/bench_fig13_regime.dir/fig13_regime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
