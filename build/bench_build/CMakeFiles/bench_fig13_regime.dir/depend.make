# Empty dependencies file for bench_fig13_regime.
# This may be replaced when dependencies are built.
