file(REMOVE_RECURSE
  "../bench/bench_tab2_quarantine"
  "../bench/bench_tab2_quarantine.pdb"
  "CMakeFiles/bench_tab2_quarantine.dir/tab2_quarantine.cpp.o"
  "CMakeFiles/bench_tab2_quarantine.dir/tab2_quarantine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_quarantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
