file(REMOVE_RECURSE
  "../bench/bench_ext_altitude"
  "../bench/bench_ext_altitude.pdb"
  "CMakeFiles/bench_ext_altitude.dir/ext_altitude.cpp.o"
  "CMakeFiles/bench_ext_altitude.dir/ext_altitude.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_altitude.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
