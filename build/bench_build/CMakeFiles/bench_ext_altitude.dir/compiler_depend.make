# Empty compiler generated dependencies file for bench_ext_altitude.
# This may be replaced when dependencies are built.
