file(REMOVE_RECURSE
  "../bench/bench_fig06_hourly_multibit"
  "../bench/bench_fig06_hourly_multibit.pdb"
  "CMakeFiles/bench_fig06_hourly_multibit.dir/fig06_hourly_multibit.cpp.o"
  "CMakeFiles/bench_fig06_hourly_multibit.dir/fig06_hourly_multibit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_hourly_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
