# Empty compiler generated dependencies file for bench_fig06_hourly_multibit.
# This may be replaced when dependencies are built.
