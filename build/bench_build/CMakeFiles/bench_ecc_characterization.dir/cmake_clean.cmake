file(REMOVE_RECURSE
  "../bench/bench_ecc_characterization"
  "../bench/bench_ecc_characterization.pdb"
  "CMakeFiles/bench_ecc_characterization.dir/ecc_characterization.cpp.o"
  "CMakeFiles/bench_ecc_characterization.dir/ecc_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecc_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
