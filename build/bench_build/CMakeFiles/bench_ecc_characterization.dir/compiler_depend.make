# Empty compiler generated dependencies file for bench_ecc_characterization.
# This may be replaced when dependencies are built.
