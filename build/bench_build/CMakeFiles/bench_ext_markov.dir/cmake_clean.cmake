file(REMOVE_RECURSE
  "../bench/bench_ext_markov"
  "../bench/bench_ext_markov.pdb"
  "CMakeFiles/bench_ext_markov.dir/ext_markov.cpp.o"
  "CMakeFiles/bench_ext_markov.dir/ext_markov.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
