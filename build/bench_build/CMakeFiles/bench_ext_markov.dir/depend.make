# Empty dependencies file for bench_ext_markov.
# This may be replaced when dependencies are built.
