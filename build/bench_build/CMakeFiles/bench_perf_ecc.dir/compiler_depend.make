# Empty compiler generated dependencies file for bench_perf_ecc.
# This may be replaced when dependencies are built.
