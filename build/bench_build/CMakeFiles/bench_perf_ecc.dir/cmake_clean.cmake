file(REMOVE_RECURSE
  "../bench/bench_perf_ecc"
  "../bench/bench_perf_ecc.pdb"
  "CMakeFiles/bench_perf_ecc.dir/perf_ecc.cpp.o"
  "CMakeFiles/bench_perf_ecc.dir/perf_ecc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
