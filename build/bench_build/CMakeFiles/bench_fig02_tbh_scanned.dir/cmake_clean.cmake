file(REMOVE_RECURSE
  "../bench/bench_fig02_tbh_scanned"
  "../bench/bench_fig02_tbh_scanned.pdb"
  "CMakeFiles/bench_fig02_tbh_scanned.dir/fig02_tbh_scanned.cpp.o"
  "CMakeFiles/bench_fig02_tbh_scanned.dir/fig02_tbh_scanned.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_tbh_scanned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
