# Empty compiler generated dependencies file for bench_fig02_tbh_scanned.
# This may be replaced when dependencies are built.
