file(REMOVE_RECURSE
  "../bench/bench_ext_temporal"
  "../bench/bench_ext_temporal.pdb"
  "CMakeFiles/bench_ext_temporal.dir/ext_temporal.cpp.o"
  "CMakeFiles/bench_ext_temporal.dir/ext_temporal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
