# Empty dependencies file for bench_ablation_scrambling.
# This may be replaced when dependencies are built.
