file(REMOVE_RECURSE
  "../bench/bench_ablation_scrambling"
  "../bench/bench_ablation_scrambling.pdb"
  "CMakeFiles/bench_ablation_scrambling.dir/ablation_scrambling.cpp.o"
  "CMakeFiles/bench_ablation_scrambling.dir/ablation_scrambling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scrambling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
