# Empty compiler generated dependencies file for analyze_logs.
# This may be replaced when dependencies are built.
