file(REMOVE_RECURSE
  "CMakeFiles/analyze_logs.dir/analyze_logs.cpp.o"
  "CMakeFiles/analyze_logs.dir/analyze_logs.cpp.o.d"
  "analyze_logs"
  "analyze_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
