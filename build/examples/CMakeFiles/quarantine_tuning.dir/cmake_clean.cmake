file(REMOVE_RECURSE
  "CMakeFiles/quarantine_tuning.dir/quarantine_tuning.cpp.o"
  "CMakeFiles/quarantine_tuning.dir/quarantine_tuning.cpp.o.d"
  "quarantine_tuning"
  "quarantine_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarantine_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
