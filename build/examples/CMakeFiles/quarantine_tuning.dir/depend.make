# Empty dependencies file for quarantine_tuning.
# This may be replaced when dependencies are built.
