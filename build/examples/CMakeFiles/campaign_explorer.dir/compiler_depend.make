# Empty compiler generated dependencies file for campaign_explorer.
# This may be replaced when dependencies are built.
