file(REMOVE_RECURSE
  "CMakeFiles/campaign_explorer.dir/campaign_explorer.cpp.o"
  "CMakeFiles/campaign_explorer.dir/campaign_explorer.cpp.o.d"
  "campaign_explorer"
  "campaign_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
