# Empty compiler generated dependencies file for live_scan.
# This may be replaced when dependencies are built.
