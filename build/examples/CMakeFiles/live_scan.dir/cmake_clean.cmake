file(REMOVE_RECURSE
  "CMakeFiles/live_scan.dir/live_scan.cpp.o"
  "CMakeFiles/live_scan.dir/live_scan.cpp.o.d"
  "live_scan"
  "live_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
