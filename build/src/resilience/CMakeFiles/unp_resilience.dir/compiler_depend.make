# Empty compiler generated dependencies file for unp_resilience.
# This may be replaced when dependencies are built.
