
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resilience/checkpoint.cpp" "src/resilience/CMakeFiles/unp_resilience.dir/checkpoint.cpp.o" "gcc" "src/resilience/CMakeFiles/unp_resilience.dir/checkpoint.cpp.o.d"
  "/root/repo/src/resilience/ecc_whatif.cpp" "src/resilience/CMakeFiles/unp_resilience.dir/ecc_whatif.cpp.o" "gcc" "src/resilience/CMakeFiles/unp_resilience.dir/ecc_whatif.cpp.o.d"
  "/root/repo/src/resilience/page_retirement.cpp" "src/resilience/CMakeFiles/unp_resilience.dir/page_retirement.cpp.o" "gcc" "src/resilience/CMakeFiles/unp_resilience.dir/page_retirement.cpp.o.d"
  "/root/repo/src/resilience/placement.cpp" "src/resilience/CMakeFiles/unp_resilience.dir/placement.cpp.o" "gcc" "src/resilience/CMakeFiles/unp_resilience.dir/placement.cpp.o.d"
  "/root/repo/src/resilience/prediction.cpp" "src/resilience/CMakeFiles/unp_resilience.dir/prediction.cpp.o" "gcc" "src/resilience/CMakeFiles/unp_resilience.dir/prediction.cpp.o.d"
  "/root/repo/src/resilience/quarantine.cpp" "src/resilience/CMakeFiles/unp_resilience.dir/quarantine.cpp.o" "gcc" "src/resilience/CMakeFiles/unp_resilience.dir/quarantine.cpp.o.d"
  "/root/repo/src/resilience/scrubbing.cpp" "src/resilience/CMakeFiles/unp_resilience.dir/scrubbing.cpp.o" "gcc" "src/resilience/CMakeFiles/unp_resilience.dir/scrubbing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/unp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/unp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/unp_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/unp_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unp_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
