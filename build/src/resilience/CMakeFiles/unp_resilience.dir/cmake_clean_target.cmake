file(REMOVE_RECURSE
  "libunp_resilience.a"
)
