file(REMOVE_RECURSE
  "CMakeFiles/unp_resilience.dir/checkpoint.cpp.o"
  "CMakeFiles/unp_resilience.dir/checkpoint.cpp.o.d"
  "CMakeFiles/unp_resilience.dir/ecc_whatif.cpp.o"
  "CMakeFiles/unp_resilience.dir/ecc_whatif.cpp.o.d"
  "CMakeFiles/unp_resilience.dir/page_retirement.cpp.o"
  "CMakeFiles/unp_resilience.dir/page_retirement.cpp.o.d"
  "CMakeFiles/unp_resilience.dir/placement.cpp.o"
  "CMakeFiles/unp_resilience.dir/placement.cpp.o.d"
  "CMakeFiles/unp_resilience.dir/prediction.cpp.o"
  "CMakeFiles/unp_resilience.dir/prediction.cpp.o.d"
  "CMakeFiles/unp_resilience.dir/quarantine.cpp.o"
  "CMakeFiles/unp_resilience.dir/quarantine.cpp.o.d"
  "CMakeFiles/unp_resilience.dir/scrubbing.cpp.o"
  "CMakeFiles/unp_resilience.dir/scrubbing.cpp.o.d"
  "libunp_resilience.a"
  "libunp_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
