# Empty dependencies file for unp_sim.
# This may be replaced when dependencies are built.
