
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/campaign.cpp" "src/sim/CMakeFiles/unp_sim.dir/campaign.cpp.o" "gcc" "src/sim/CMakeFiles/unp_sim.dir/campaign.cpp.o.d"
  "/root/repo/src/sim/session_sim.cpp" "src/sim/CMakeFiles/unp_sim.dir/session_sim.cpp.o" "gcc" "src/sim/CMakeFiles/unp_sim.dir/session_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/unp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/unp_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/unp_env.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/unp_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/unp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/unp_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unp_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
