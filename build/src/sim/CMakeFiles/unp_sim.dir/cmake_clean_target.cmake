file(REMOVE_RECURSE
  "libunp_sim.a"
)
