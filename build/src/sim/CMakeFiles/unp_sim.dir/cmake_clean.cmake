file(REMOVE_RECURSE
  "CMakeFiles/unp_sim.dir/campaign.cpp.o"
  "CMakeFiles/unp_sim.dir/campaign.cpp.o.d"
  "CMakeFiles/unp_sim.dir/session_sim.cpp.o"
  "CMakeFiles/unp_sim.dir/session_sim.cpp.o.d"
  "libunp_sim.a"
  "libunp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
