# Empty dependencies file for unp_scanner.
# This may be replaced when dependencies are built.
