
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scanner/alloc_policy.cpp" "src/scanner/CMakeFiles/unp_scanner.dir/alloc_policy.cpp.o" "gcc" "src/scanner/CMakeFiles/unp_scanner.dir/alloc_policy.cpp.o.d"
  "/root/repo/src/scanner/backend.cpp" "src/scanner/CMakeFiles/unp_scanner.dir/backend.cpp.o" "gcc" "src/scanner/CMakeFiles/unp_scanner.dir/backend.cpp.o.d"
  "/root/repo/src/scanner/pattern.cpp" "src/scanner/CMakeFiles/unp_scanner.dir/pattern.cpp.o" "gcc" "src/scanner/CMakeFiles/unp_scanner.dir/pattern.cpp.o.d"
  "/root/repo/src/scanner/real_backend.cpp" "src/scanner/CMakeFiles/unp_scanner.dir/real_backend.cpp.o" "gcc" "src/scanner/CMakeFiles/unp_scanner.dir/real_backend.cpp.o.d"
  "/root/repo/src/scanner/scanner.cpp" "src/scanner/CMakeFiles/unp_scanner.dir/scanner.cpp.o" "gcc" "src/scanner/CMakeFiles/unp_scanner.dir/scanner.cpp.o.d"
  "/root/repo/src/scanner/sim_backend.cpp" "src/scanner/CMakeFiles/unp_scanner.dir/sim_backend.cpp.o" "gcc" "src/scanner/CMakeFiles/unp_scanner.dir/sim_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/unp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/unp_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unp_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
