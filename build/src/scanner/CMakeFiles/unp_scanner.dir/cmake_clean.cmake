file(REMOVE_RECURSE
  "CMakeFiles/unp_scanner.dir/alloc_policy.cpp.o"
  "CMakeFiles/unp_scanner.dir/alloc_policy.cpp.o.d"
  "CMakeFiles/unp_scanner.dir/backend.cpp.o"
  "CMakeFiles/unp_scanner.dir/backend.cpp.o.d"
  "CMakeFiles/unp_scanner.dir/pattern.cpp.o"
  "CMakeFiles/unp_scanner.dir/pattern.cpp.o.d"
  "CMakeFiles/unp_scanner.dir/real_backend.cpp.o"
  "CMakeFiles/unp_scanner.dir/real_backend.cpp.o.d"
  "CMakeFiles/unp_scanner.dir/scanner.cpp.o"
  "CMakeFiles/unp_scanner.dir/scanner.cpp.o.d"
  "CMakeFiles/unp_scanner.dir/sim_backend.cpp.o"
  "CMakeFiles/unp_scanner.dir/sim_backend.cpp.o.d"
  "libunp_scanner.a"
  "libunp_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
