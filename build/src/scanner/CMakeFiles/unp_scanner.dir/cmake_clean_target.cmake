file(REMOVE_RECURSE
  "libunp_scanner.a"
)
