# Empty dependencies file for unp_cluster.
# This may be replaced when dependencies are built.
