file(REMOVE_RECURSE
  "libunp_cluster.a"
)
