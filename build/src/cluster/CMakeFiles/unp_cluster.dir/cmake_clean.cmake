file(REMOVE_RECURSE
  "CMakeFiles/unp_cluster.dir/availability.cpp.o"
  "CMakeFiles/unp_cluster.dir/availability.cpp.o.d"
  "CMakeFiles/unp_cluster.dir/topology.cpp.o"
  "CMakeFiles/unp_cluster.dir/topology.cpp.o.d"
  "libunp_cluster.a"
  "libunp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
