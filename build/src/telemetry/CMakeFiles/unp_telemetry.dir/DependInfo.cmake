
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/archive.cpp" "src/telemetry/CMakeFiles/unp_telemetry.dir/archive.cpp.o" "gcc" "src/telemetry/CMakeFiles/unp_telemetry.dir/archive.cpp.o.d"
  "/root/repo/src/telemetry/binary_codec.cpp" "src/telemetry/CMakeFiles/unp_telemetry.dir/binary_codec.cpp.o" "gcc" "src/telemetry/CMakeFiles/unp_telemetry.dir/binary_codec.cpp.o.d"
  "/root/repo/src/telemetry/codec.cpp" "src/telemetry/CMakeFiles/unp_telemetry.dir/codec.cpp.o" "gcc" "src/telemetry/CMakeFiles/unp_telemetry.dir/codec.cpp.o.d"
  "/root/repo/src/telemetry/record.cpp" "src/telemetry/CMakeFiles/unp_telemetry.dir/record.cpp.o" "gcc" "src/telemetry/CMakeFiles/unp_telemetry.dir/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/unp_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
