file(REMOVE_RECURSE
  "CMakeFiles/unp_telemetry.dir/archive.cpp.o"
  "CMakeFiles/unp_telemetry.dir/archive.cpp.o.d"
  "CMakeFiles/unp_telemetry.dir/binary_codec.cpp.o"
  "CMakeFiles/unp_telemetry.dir/binary_codec.cpp.o.d"
  "CMakeFiles/unp_telemetry.dir/codec.cpp.o"
  "CMakeFiles/unp_telemetry.dir/codec.cpp.o.d"
  "CMakeFiles/unp_telemetry.dir/record.cpp.o"
  "CMakeFiles/unp_telemetry.dir/record.cpp.o.d"
  "libunp_telemetry.a"
  "libunp_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
