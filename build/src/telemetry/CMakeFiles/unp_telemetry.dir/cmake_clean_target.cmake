file(REMOVE_RECURSE
  "libunp_telemetry.a"
)
