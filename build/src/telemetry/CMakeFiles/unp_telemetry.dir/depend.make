# Empty dependencies file for unp_telemetry.
# This may be replaced when dependencies are built.
