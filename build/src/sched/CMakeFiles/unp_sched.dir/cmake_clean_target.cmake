file(REMOVE_RECURSE
  "libunp_sched.a"
)
