# Empty dependencies file for unp_sched.
# This may be replaced when dependencies are built.
