file(REMOVE_RECURSE
  "CMakeFiles/unp_sched.dir/planner.cpp.o"
  "CMakeFiles/unp_sched.dir/planner.cpp.o.d"
  "CMakeFiles/unp_sched.dir/scan_plan.cpp.o"
  "CMakeFiles/unp_sched.dir/scan_plan.cpp.o.d"
  "libunp_sched.a"
  "libunp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
