file(REMOVE_RECURSE
  "libunp_env.a"
)
