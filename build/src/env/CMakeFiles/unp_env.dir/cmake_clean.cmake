file(REMOVE_RECURSE
  "CMakeFiles/unp_env.dir/calendar.cpp.o"
  "CMakeFiles/unp_env.dir/calendar.cpp.o.d"
  "CMakeFiles/unp_env.dir/neutron.cpp.o"
  "CMakeFiles/unp_env.dir/neutron.cpp.o.d"
  "CMakeFiles/unp_env.dir/solar.cpp.o"
  "CMakeFiles/unp_env.dir/solar.cpp.o.d"
  "CMakeFiles/unp_env.dir/temperature.cpp.o"
  "CMakeFiles/unp_env.dir/temperature.cpp.o.d"
  "libunp_env.a"
  "libunp_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
