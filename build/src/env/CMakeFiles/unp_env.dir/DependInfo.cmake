
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/calendar.cpp" "src/env/CMakeFiles/unp_env.dir/calendar.cpp.o" "gcc" "src/env/CMakeFiles/unp_env.dir/calendar.cpp.o.d"
  "/root/repo/src/env/neutron.cpp" "src/env/CMakeFiles/unp_env.dir/neutron.cpp.o" "gcc" "src/env/CMakeFiles/unp_env.dir/neutron.cpp.o.d"
  "/root/repo/src/env/solar.cpp" "src/env/CMakeFiles/unp_env.dir/solar.cpp.o" "gcc" "src/env/CMakeFiles/unp_env.dir/solar.cpp.o.d"
  "/root/repo/src/env/temperature.cpp" "src/env/CMakeFiles/unp_env.dir/temperature.cpp.o" "gcc" "src/env/CMakeFiles/unp_env.dir/temperature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
