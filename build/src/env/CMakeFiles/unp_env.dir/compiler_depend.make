# Empty compiler generated dependencies file for unp_env.
# This may be replaced when dependencies are built.
