file(REMOVE_RECURSE
  "CMakeFiles/unp_faults.dir/background.cpp.o"
  "CMakeFiles/unp_faults.dir/background.cpp.o.d"
  "CMakeFiles/unp_faults.dir/degrading.cpp.o"
  "CMakeFiles/unp_faults.dir/degrading.cpp.o.d"
  "CMakeFiles/unp_faults.dir/event.cpp.o"
  "CMakeFiles/unp_faults.dir/event.cpp.o.d"
  "CMakeFiles/unp_faults.dir/generator.cpp.o"
  "CMakeFiles/unp_faults.dir/generator.cpp.o.d"
  "CMakeFiles/unp_faults.dir/isolated_sdc.cpp.o"
  "CMakeFiles/unp_faults.dir/isolated_sdc.cpp.o.d"
  "CMakeFiles/unp_faults.dir/neutron.cpp.o"
  "CMakeFiles/unp_faults.dir/neutron.cpp.o.d"
  "CMakeFiles/unp_faults.dir/pathological.cpp.o"
  "CMakeFiles/unp_faults.dir/pathological.cpp.o.d"
  "CMakeFiles/unp_faults.dir/suite.cpp.o"
  "CMakeFiles/unp_faults.dir/suite.cpp.o.d"
  "CMakeFiles/unp_faults.dir/weak_bit.cpp.o"
  "CMakeFiles/unp_faults.dir/weak_bit.cpp.o.d"
  "libunp_faults.a"
  "libunp_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
