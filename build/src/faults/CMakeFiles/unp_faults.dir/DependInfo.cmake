
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/background.cpp" "src/faults/CMakeFiles/unp_faults.dir/background.cpp.o" "gcc" "src/faults/CMakeFiles/unp_faults.dir/background.cpp.o.d"
  "/root/repo/src/faults/degrading.cpp" "src/faults/CMakeFiles/unp_faults.dir/degrading.cpp.o" "gcc" "src/faults/CMakeFiles/unp_faults.dir/degrading.cpp.o.d"
  "/root/repo/src/faults/event.cpp" "src/faults/CMakeFiles/unp_faults.dir/event.cpp.o" "gcc" "src/faults/CMakeFiles/unp_faults.dir/event.cpp.o.d"
  "/root/repo/src/faults/generator.cpp" "src/faults/CMakeFiles/unp_faults.dir/generator.cpp.o" "gcc" "src/faults/CMakeFiles/unp_faults.dir/generator.cpp.o.d"
  "/root/repo/src/faults/isolated_sdc.cpp" "src/faults/CMakeFiles/unp_faults.dir/isolated_sdc.cpp.o" "gcc" "src/faults/CMakeFiles/unp_faults.dir/isolated_sdc.cpp.o.d"
  "/root/repo/src/faults/neutron.cpp" "src/faults/CMakeFiles/unp_faults.dir/neutron.cpp.o" "gcc" "src/faults/CMakeFiles/unp_faults.dir/neutron.cpp.o.d"
  "/root/repo/src/faults/pathological.cpp" "src/faults/CMakeFiles/unp_faults.dir/pathological.cpp.o" "gcc" "src/faults/CMakeFiles/unp_faults.dir/pathological.cpp.o.d"
  "/root/repo/src/faults/suite.cpp" "src/faults/CMakeFiles/unp_faults.dir/suite.cpp.o" "gcc" "src/faults/CMakeFiles/unp_faults.dir/suite.cpp.o.d"
  "/root/repo/src/faults/weak_bit.cpp" "src/faults/CMakeFiles/unp_faults.dir/weak_bit.cpp.o" "gcc" "src/faults/CMakeFiles/unp_faults.dir/weak_bit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/unp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/unp_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/unp_env.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/unp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/unp_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unp_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
