# Empty dependencies file for unp_faults.
# This may be replaced when dependencies are built.
