file(REMOVE_RECURSE
  "libunp_faults.a"
)
