# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("env")
subdirs("cluster")
subdirs("dram")
subdirs("ecc")
subdirs("faults")
subdirs("sched")
subdirs("scanner")
subdirs("telemetry")
subdirs("sim")
subdirs("analysis")
subdirs("resilience")
