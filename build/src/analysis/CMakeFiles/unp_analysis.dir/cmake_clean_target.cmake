file(REMOVE_RECURSE
  "libunp_analysis.a"
)
