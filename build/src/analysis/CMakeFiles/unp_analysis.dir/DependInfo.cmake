
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/alignment.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/alignment.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/alignment.cpp.o.d"
  "/root/repo/src/analysis/bitstats.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/bitstats.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/bitstats.cpp.o.d"
  "/root/repo/src/analysis/diagnosis.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/diagnosis.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/diagnosis.cpp.o.d"
  "/root/repo/src/analysis/export.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/export.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/export.cpp.o.d"
  "/root/repo/src/analysis/extraction.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/extraction.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/extraction.cpp.o.d"
  "/root/repo/src/analysis/grouping.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/grouping.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/grouping.cpp.o.d"
  "/root/repo/src/analysis/interarrival.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/interarrival.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/interarrival.cpp.o.d"
  "/root/repo/src/analysis/markov.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/markov.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/markov.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/metrics.cpp.o.d"
  "/root/repo/src/analysis/regime.cpp" "src/analysis/CMakeFiles/unp_analysis.dir/regime.cpp.o" "gcc" "src/analysis/CMakeFiles/unp_analysis.dir/regime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/unp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/unp_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unp_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/unp_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
