# Empty compiler generated dependencies file for unp_analysis.
# This may be replaced when dependencies are built.
