file(REMOVE_RECURSE
  "CMakeFiles/unp_analysis.dir/alignment.cpp.o"
  "CMakeFiles/unp_analysis.dir/alignment.cpp.o.d"
  "CMakeFiles/unp_analysis.dir/bitstats.cpp.o"
  "CMakeFiles/unp_analysis.dir/bitstats.cpp.o.d"
  "CMakeFiles/unp_analysis.dir/diagnosis.cpp.o"
  "CMakeFiles/unp_analysis.dir/diagnosis.cpp.o.d"
  "CMakeFiles/unp_analysis.dir/export.cpp.o"
  "CMakeFiles/unp_analysis.dir/export.cpp.o.d"
  "CMakeFiles/unp_analysis.dir/extraction.cpp.o"
  "CMakeFiles/unp_analysis.dir/extraction.cpp.o.d"
  "CMakeFiles/unp_analysis.dir/grouping.cpp.o"
  "CMakeFiles/unp_analysis.dir/grouping.cpp.o.d"
  "CMakeFiles/unp_analysis.dir/interarrival.cpp.o"
  "CMakeFiles/unp_analysis.dir/interarrival.cpp.o.d"
  "CMakeFiles/unp_analysis.dir/markov.cpp.o"
  "CMakeFiles/unp_analysis.dir/markov.cpp.o.d"
  "CMakeFiles/unp_analysis.dir/metrics.cpp.o"
  "CMakeFiles/unp_analysis.dir/metrics.cpp.o.d"
  "CMakeFiles/unp_analysis.dir/regime.cpp.o"
  "CMakeFiles/unp_analysis.dir/regime.cpp.o.d"
  "libunp_analysis.a"
  "libunp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
