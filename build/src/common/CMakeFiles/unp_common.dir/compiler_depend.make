# Empty compiler generated dependencies file for unp_common.
# This may be replaced when dependencies are built.
