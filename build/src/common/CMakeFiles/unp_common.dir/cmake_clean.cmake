file(REMOVE_RECURSE
  "CMakeFiles/unp_common.dir/civil_time.cpp.o"
  "CMakeFiles/unp_common.dir/civil_time.cpp.o.d"
  "CMakeFiles/unp_common.dir/histogram.cpp.o"
  "CMakeFiles/unp_common.dir/histogram.cpp.o.d"
  "CMakeFiles/unp_common.dir/rng.cpp.o"
  "CMakeFiles/unp_common.dir/rng.cpp.o.d"
  "CMakeFiles/unp_common.dir/stats.cpp.o"
  "CMakeFiles/unp_common.dir/stats.cpp.o.d"
  "CMakeFiles/unp_common.dir/table.cpp.o"
  "CMakeFiles/unp_common.dir/table.cpp.o.d"
  "CMakeFiles/unp_common.dir/thread_pool.cpp.o"
  "CMakeFiles/unp_common.dir/thread_pool.cpp.o.d"
  "libunp_common.a"
  "libunp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
