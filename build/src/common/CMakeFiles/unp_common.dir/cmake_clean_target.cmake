file(REMOVE_RECURSE
  "libunp_common.a"
)
