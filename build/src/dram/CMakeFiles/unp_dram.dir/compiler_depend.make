# Empty compiler generated dependencies file for unp_dram.
# This may be replaced when dependencies are built.
