file(REMOVE_RECURSE
  "CMakeFiles/unp_dram.dir/address_map.cpp.o"
  "CMakeFiles/unp_dram.dir/address_map.cpp.o.d"
  "CMakeFiles/unp_dram.dir/cell_model.cpp.o"
  "CMakeFiles/unp_dram.dir/cell_model.cpp.o.d"
  "CMakeFiles/unp_dram.dir/geometry.cpp.o"
  "CMakeFiles/unp_dram.dir/geometry.cpp.o.d"
  "CMakeFiles/unp_dram.dir/retention.cpp.o"
  "CMakeFiles/unp_dram.dir/retention.cpp.o.d"
  "CMakeFiles/unp_dram.dir/scrambler.cpp.o"
  "CMakeFiles/unp_dram.dir/scrambler.cpp.o.d"
  "libunp_dram.a"
  "libunp_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
