file(REMOVE_RECURSE
  "libunp_dram.a"
)
