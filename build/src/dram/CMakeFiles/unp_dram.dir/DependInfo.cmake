
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/address_map.cpp" "src/dram/CMakeFiles/unp_dram.dir/address_map.cpp.o" "gcc" "src/dram/CMakeFiles/unp_dram.dir/address_map.cpp.o.d"
  "/root/repo/src/dram/cell_model.cpp" "src/dram/CMakeFiles/unp_dram.dir/cell_model.cpp.o" "gcc" "src/dram/CMakeFiles/unp_dram.dir/cell_model.cpp.o.d"
  "/root/repo/src/dram/geometry.cpp" "src/dram/CMakeFiles/unp_dram.dir/geometry.cpp.o" "gcc" "src/dram/CMakeFiles/unp_dram.dir/geometry.cpp.o.d"
  "/root/repo/src/dram/retention.cpp" "src/dram/CMakeFiles/unp_dram.dir/retention.cpp.o" "gcc" "src/dram/CMakeFiles/unp_dram.dir/retention.cpp.o.d"
  "/root/repo/src/dram/scrambler.cpp" "src/dram/CMakeFiles/unp_dram.dir/scrambler.cpp.o" "gcc" "src/dram/CMakeFiles/unp_dram.dir/scrambler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
