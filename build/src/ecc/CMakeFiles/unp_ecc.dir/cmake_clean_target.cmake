file(REMOVE_RECURSE
  "libunp_ecc.a"
)
