file(REMOVE_RECURSE
  "CMakeFiles/unp_ecc.dir/chipkill.cpp.o"
  "CMakeFiles/unp_ecc.dir/chipkill.cpp.o.d"
  "CMakeFiles/unp_ecc.dir/outcome.cpp.o"
  "CMakeFiles/unp_ecc.dir/outcome.cpp.o.d"
  "CMakeFiles/unp_ecc.dir/secded.cpp.o"
  "CMakeFiles/unp_ecc.dir/secded.cpp.o.d"
  "libunp_ecc.a"
  "libunp_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unp_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
