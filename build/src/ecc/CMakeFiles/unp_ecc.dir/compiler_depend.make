# Empty compiler generated dependencies file for unp_ecc.
# This may be replaced when dependencies are built.
