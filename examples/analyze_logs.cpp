// analyze_logs: the offline analysis pipeline over on-disk telemetry.
//
// This is the downstream-user workflow: collect scanner logs (from the real
// live_scan tool or an exported campaign), then run the paper's complete
// Section II-C + III analysis over them.
//
//   analyze_logs --export-archive camp.bin     # write the default campaign
//   analyze_logs --archive camp.bin            # analyze a binary archive
//   analyze_logs node1.log node2.log ...       # analyze text log files
//
// Text logs use the line format produced by live_scan / telemetry codec;
// each file may contain records of one node (host= field names it).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/bitstats.hpp"
#include "analysis/grouping.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "telemetry/binary_codec.hpp"
#include "telemetry/codec.hpp"

namespace {

using namespace unp;

void report(const telemetry::CampaignArchive& archive) {
  const analysis::ExtractionResult extraction = analysis::extract_faults(archive);
  const analysis::HeadlineStats stats =
      analysis::headline_stats(archive, extraction);

  std::printf("== headline =============================================\n");
  std::printf("nodes with data      : %d\n", stats.monitored_nodes);
  std::printf("monitored node-hours : %.1f\n", stats.monitored_node_hours);
  std::printf("terabyte-hours       : %.2f\n", stats.terabyte_hours);
  std::printf("raw ERROR logs       : %s\n",
              format_count(stats.raw_logs).c_str());
  if (!extraction.removed_nodes.empty()) {
    std::printf("pathological nodes removed:");
    for (const auto& n : extraction.removed_nodes) {
      std::printf(" %s", cluster::node_name(n).c_str());
    }
    std::printf(" (%.1f%% of raw logs)\n", 100.0 * extraction.removed_fraction());
  }
  std::printf("independent faults   : %s\n",
              format_count(stats.independent_faults).c_str());
  if (stats.independent_faults == 0) return;

  std::printf("\n== corruption character =================================\n");
  const analysis::DirectionStats dir =
      analysis::direction_stats(extraction.faults);
  const analysis::AdjacencyStats adj =
      analysis::adjacency_stats(extraction.faults);
  std::printf("bits flipped 1->0    : %.1f%%\n",
              100.0 * dir.one_to_zero_fraction());
  std::printf("multi-bit faults     : %s (consecutive %s / spread %s)\n",
              format_count(adj.multibit_faults).c_str(),
              format_count(adj.consecutive).c_str(),
              format_count(adj.non_adjacent).c_str());

  const auto patterns = analysis::multibit_patterns(extraction.faults);
  if (!patterns.empty()) {
    TextTable table({"Bits", "Expected", "Corrupted", "Occurrences", "Consecutive"});
    for (const auto& p : patterns) {
      table.add_row({std::to_string(p.bits), format_hex32(p.expected),
                     format_hex32(p.corrupted), std::to_string(p.occurrences),
                     p.consecutive ? "Yes" : "No"});
    }
    std::printf("\n%s", table.render().c_str());
  }

  std::printf("\n== spatial concentration ================================\n");
  const analysis::TopNodeSeries top =
      analysis::top_node_series(extraction.faults, archive.window());
  for (std::size_t k = 0; k < top.nodes.size(); ++k) {
    const analysis::NodePatternProfile profile =
        analysis::node_pattern_profile(extraction.faults, top.nodes[k]);
    std::printf("%s: %s faults, %s addresses%s\n",
                cluster::node_name(top.nodes[k]).c_str(),
                format_count(top.node_totals[k]).c_str(),
                format_count(profile.distinct_addresses).c_str(),
                profile.single_fixed_bit ? " [single fixed bit]" : "");
  }
  std::printf("all others: %s faults\n", format_count(top.rest_total).c_str());

  std::printf("\n== simultaneity =========================================\n");
  const auto groups = analysis::group_simultaneous(extraction.faults);
  const analysis::CoOccurrence co = analysis::count_co_occurrence(groups);
  std::printf("simultaneous corruptions : %s (widest %s bits)\n",
              format_count(co.simultaneous_corruptions).c_str(),
              format_count(co.max_bits_one_instant).c_str());

  std::printf("\n== regimes ==============================================\n");
  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      extraction.faults, archive.window());
  std::printf("normal days %llu (MTBF %.1f h) / degraded days %llu (MTBF %.2f h)\n",
              static_cast<unsigned long long>(regimes.regime.normal_days),
              regimes.regime.normal_mtbf_hours,
              static_cast<unsigned long long>(regimes.regime.degraded_days),
              regimes.regime.degraded_mtbf_hours);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--export-archive") == 0) {
    std::printf("simulating the default campaign...\n");
    const sim::CampaignResult& campaign = sim::default_campaign();
    telemetry::save_archive(campaign.archive, argv[2]);
    std::printf("wrote %s\n", argv[2]);
    return 0;
  }
  if (argc >= 3 && std::strcmp(argv[1], "--archive") == 0) {
    report(telemetry::load_archive(argv[2]));
    return 0;
  }
  if (argc >= 2 && argv[1][0] != '-') {
    telemetry::CampaignArchive archive;
    for (int i = 1; i < argc; ++i) {
      std::ifstream is(argv[i]);
      if (!is.good()) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      const telemetry::NodeLog log = telemetry::read_node_log(is);
      // Route records into the archive by the host field of each class.
      const cluster::NodeId node =
          !log.starts().empty()       ? log.starts()[0].node
          : !log.error_runs().empty() ? log.error_runs()[0].first.node
          : !log.ends().empty()       ? log.ends()[0].node
                                      : cluster::NodeId{0, 1};
      archive.log(node) = log;
    }
    report(archive);
    return 0;
  }
  std::fprintf(stderr,
               "usage: analyze_logs --export-archive <file> | --archive <file> "
               "| <node.log> ...\n");
  return 2;
}
