// live_scan: the deployable memory scanner - the actual tool of the study.
//
// Allocates a resident buffer (3 GB with 10 MB back-off by default, like
// the original; configurable for laptops), then runs the check-and-flip
// loop until SIGTERM/SIGINT or a pass budget, logging START/ERROR/END in
// the campaign's log format.  On an ECC machine this should stay silent
// forever; the --inject flag plants synthetic upsets so the detection path
// can be watched end to end.
//
// Usage:
//   live_scan [--mb <megabytes>] [--passes <n>] [--threads <n>]
//             [--pattern alt|counter] [--inject <faults-per-pass>]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/rng.hpp"
#include "scanner/alloc_policy.hpp"
#include "scanner/real_backend.hpp"
#include "scanner/scanner.hpp"
#include "telemetry/codec.hpp"

namespace {

unp::scanner::MemoryScanner* g_scanner = nullptr;

void handle_signal(int) {
  if (g_scanner != nullptr) g_scanner->request_stop();
}

/// Sink printing each record as a log line, like the per-node files.
class StdoutSink final : public unp::scanner::LogSink {
 public:
  void on_start(const unp::telemetry::StartRecord& r) override {
    std::puts(unp::telemetry::serialize(r).c_str());
  }
  void on_end(const unp::telemetry::EndRecord& r) override {
    std::puts(unp::telemetry::serialize(r).c_str());
  }
  void on_alloc_fail(const unp::telemetry::AllocFailRecord& r) override {
    std::puts(unp::telemetry::serialize(r).c_str());
  }
  void on_error(const unp::telemetry::ErrorRecord& r) override {
    std::puts(unp::telemetry::serialize(r).c_str());
    ++errors;
  }
  std::uint64_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace unp;

  std::uint64_t megabytes = 256;  // laptop-friendly default; the study used 3072
  std::uint64_t passes = 8;
  std::size_t threads = 2;
  scanner::PatternKind pattern = scanner::PatternKind::kAlternating;
  std::uint64_t inject_per_pass = 0;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--mb") == 0) {
      megabytes = std::strtoull(next("--mb"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--passes") == 0) {
      passes = std::strtoull(next("--passes"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::strtoull(next("--threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--pattern") == 0) {
      const char* v = next("--pattern");
      pattern = std::strcmp(v, "counter") == 0 ? scanner::PatternKind::kCounter
                                               : scanner::PatternKind::kAlternating;
    } else if (std::strcmp(argv[i], "--inject") == 0) {
      inject_per_pass = std::strtoull(next("--inject"), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  // Allocation with the study's back-off policy.
  scanner::AllocPolicy policy;
  policy.target_bytes = megabytes << 20;
  policy.step_bytes = std::min<std::uint64_t>(10ULL << 20, policy.target_bytes);
  std::unique_ptr<scanner::RealMemoryBackend> backend;
  const std::uint64_t got = scanner::negotiate_allocation(policy, [&](std::uint64_t b) {
    try {
      backend = std::make_unique<scanner::RealMemoryBackend>(b, threads);
      return true;
    } catch (const std::bad_alloc&) {
      return false;
    }
  });
  if (got == 0) {
    std::fprintf(stderr, "allocation failed entirely\n");
    return 1;
  }
  std::fprintf(stderr,
               "# scanning %llu MB with %zu threads, pattern=%s, kernel=%s%s\n",
               static_cast<unsigned long long>(got >> 20), threads,
               scanner::to_string(pattern), backend->kernel_set().name,
               backend->uses_nontemporal_stores() ? " (non-temporal stores)"
                                                  : "");

  StdoutSink sink;
  scanner::SystemClock clock;
  scanner::FixedProbe probe(telemetry::kNoTemperature);
  scanner::MemoryScanner scan(*backend, sink, clock, probe,
                              {cluster::NodeId{0, 1}, pattern, got});
  g_scanner = &scan;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  scan.start();
  RngStream rng(42);
  for (std::uint64_t p = 0; p < passes; ++p) {
    for (std::uint64_t f = 0; f < inject_per_pass; ++f) {
      // Flip 1-2 bits of a random resident word, mid-pass, like an upset.
      const std::uint64_t w = rng.uniform_u64(backend->word_count());
      Word mask = Word{1} << rng.uniform_u64(32);
      if (rng.bernoulli(0.1)) mask |= Word{1} << rng.uniform_u64(32);
      backend->poke(w, backend->peek(w) ^ mask);
    }
    if (!scan.step()) break;
  }
  scan.finish();
  g_scanner = nullptr;

  std::fprintf(stderr, "# %llu iterations, %llu errors logged\n",
               static_cast<unsigned long long>(scan.iterations()),
               static_cast<unsigned long long>(sink.errors));
  return 0;
}
