// Quickstart: simulate one month of the unprotected cluster, extract the
// independent faults, and print the numbers a reliability engineer would
// look at first.
//
// This walks the library's central pipeline:
//   CampaignConfig -> run_campaign -> CampaignArchive
//                  -> extract_faults -> FaultRecords
//                  -> metrics / regime / resilience policies
#include <cstdio>

#include "analysis/bitstats.hpp"
#include "analysis/extraction.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "resilience/quarantine.hpp"
#include "sim/campaign.hpp"

int main() {
  using namespace unp;

  // 1. Configure a short campaign: September 2015, when the weak-bit nodes
  //    were active.  Everything else keeps the calibrated defaults.
  sim::CampaignConfig config;
  config.seed = 7;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 10, 1, 0, 0, 0});

  std::printf("running a 30-day campaign over %d candidate nodes...\n",
              cluster::kStudyNodeSlots);
  const sim::CampaignResult campaign = sim::run_campaign(config);

  // 2. Extraction: raw logs -> independent faults (Section II-C rules).
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);

  const analysis::HeadlineStats stats =
      analysis::headline_stats(campaign.archive, extraction);
  std::printf("\n-- campaign summary ------------------------------------\n");
  std::printf("monitored nodes      : %d\n", stats.monitored_nodes);
  std::printf("node-hours scanned   : %.0f\n", stats.monitored_node_hours);
  std::printf("terabyte-hours       : %.0f\n", stats.terabyte_hours);
  std::printf("raw ERROR logs       : %llu\n",
              static_cast<unsigned long long>(stats.raw_logs));
  std::printf("independent faults   : %llu\n",
              static_cast<unsigned long long>(stats.independent_faults));

  // 3. Who is failing?  Direction and spatial concentration.
  const analysis::DirectionStats direction =
      analysis::direction_stats(extraction.faults);
  std::printf("\n-- corruption character --------------------------------\n");
  std::printf("bit flips 1->0       : %.1f%%\n",
              100.0 * direction.one_to_zero_fraction());

  const analysis::TopNodeSeries top =
      analysis::top_node_series(extraction.faults, config.window);
  for (std::size_t k = 0; k < top.nodes.size(); ++k) {
    std::printf("top node %zu           : %s (%llu faults)\n", k + 1,
                cluster::node_name(top.nodes[k]).c_str(),
                static_cast<unsigned long long>(top.node_totals[k]));
  }
  std::printf("all other nodes      : %llu faults\n",
              static_cast<unsigned long long>(top.rest_total));

  // 4. Regimes and a quarantine what-if.
  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      extraction.faults, config.window);
  std::printf("\n-- regimes (loudest node excluded) ---------------------\n");
  std::printf("normal days          : %llu (MTBF %.1f h)\n",
              static_cast<unsigned long long>(regimes.regime.normal_days),
              regimes.regime.normal_mtbf_hours);
  std::printf("degraded days        : %llu (MTBF %.2f h)\n",
              static_cast<unsigned long long>(regimes.regime.degraded_days),
              regimes.regime.degraded_mtbf_hours);

  resilience::QuarantineConfig quarantine;
  quarantine.period_days = 10;
  if (regimes.excluded) quarantine.excluded_nodes.push_back(*regimes.excluded);
  const resilience::QuarantineOutcome outcome = resilience::simulate_quarantine(
      extraction.faults, config.window, quarantine);
  std::printf("\n-- 10-day quarantine what-if ---------------------------\n");
  std::printf("errors reaching users: %llu (was %llu)\n",
              static_cast<unsigned long long>(outcome.counted_errors),
              static_cast<unsigned long long>(outcome.counted_errors +
                                              outcome.suppressed_errors));
  std::printf("system MTBF          : %.1f h\n", outcome.system_mtbf_hours);
  std::printf("availability lost    : %.3f%%\n", 100.0 * outcome.availability_loss);
  return 0;
}
