// campaign_explorer: rerun the study under different assumptions and watch
// what the analyses report - the "what if our machine were different" tool.
//
// Usage:
//   campaign_explorer [--seed <n>] [--months <n>] [--altitude <meters>]
//                     [--no-degrading] [--no-weak-bits] [--dump-node BB-SS]
//
// --export-csv writes the full figure bundle (CSV per figure) to a dir;
// --altitude places the cluster higher in the atmosphere (neutron flux
// scales exponentially); --no-degrading / --no-weak-bits remove the two
// pathological mechanisms, showing what the campaign would have looked
// like on a healthy fleet; --dump-node prints a node's raw log.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/bitstats.hpp"
#include "analysis/export.hpp"
#include "analysis/grouping.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "sim/campaign.hpp"
#include "telemetry/codec.hpp"

int main(int argc, char** argv) {
  using namespace unp;

  sim::CampaignConfig config;
  int months = 13;
  double altitude_m = env::kBarcelona.altitude_m;
  std::string dump_node;
  std::string export_dir;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--months") == 0) {
      months = std::atoi(next("--months"));
    } else if (std::strcmp(argv[i], "--altitude") == 0) {
      altitude_m = std::atof(next("--altitude"));
    } else if (std::strcmp(argv[i], "--no-degrading") == 0) {
      config.faults.enable_degrading = false;
      config.faults.neutron.repeat_site_nodes.clear();
    } else if (std::strcmp(argv[i], "--no-weak-bits") == 0) {
      config.faults.enable_weak_bits = false;
    } else if (std::strcmp(argv[i], "--dump-node") == 0) {
      dump_node = next("--dump-node");
    } else if (std::strcmp(argv[i], "--export-csv") == 0) {
      export_dir = next("--export-csv");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  if (months < 13) {
    config.window.end =
        config.window.start + static_cast<TimePoint>(months) * 30 * kSecondsPerDay;
  }
  if (altitude_m != env::kBarcelona.altitude_m) {
    env::NeutronFluxModel::Config flux = config.faults.neutron.flux.config();
    flux.site.altitude_m = altitude_m;
    config.faults.neutron.flux = env::NeutronFluxModel(flux);
    std::printf("altitude %.0f m -> neutron flux x%.2f\n", altitude_m,
                config.faults.neutron.flux.altitude_factor());
  }

  std::printf("running campaign: seed=%llu months=%d ...\n",
              static_cast<unsigned long long>(config.seed), months);
  const sim::CampaignResult campaign = sim::run_campaign(config);
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);

  if (!export_dir.empty()) {
    const int files = analysis::write_figure_bundle(export_dir,
                                                    campaign.archive, extraction);
    std::printf("wrote %d CSV files to %s\n", files, export_dir.c_str());
  }

  if (!dump_node.empty()) {
    const cluster::NodeId node = cluster::parse_node_name(dump_node);
    std::printf("---- raw log of node %s ----\n", dump_node.c_str());
    telemetry::write_node_log(std::cout, campaign.archive.log(node));
    return 0;
  }

  const analysis::HeadlineStats stats =
      analysis::headline_stats(campaign.archive, extraction);
  std::printf("\nnodes=%d  node-hours=%.0f  TB-h=%.0f\n", stats.monitored_nodes,
              stats.monitored_node_hours, stats.terabyte_hours);
  std::printf("raw logs=%llu  independent faults=%llu  cluster error every "
              "%.1f min\n",
              static_cast<unsigned long long>(stats.raw_logs),
              static_cast<unsigned long long>(stats.independent_faults),
              stats.cluster_mtbe_minutes);

  const analysis::DirectionStats dir = analysis::direction_stats(extraction.faults);
  const analysis::AdjacencyStats adj = analysis::adjacency_stats(extraction.faults);
  std::printf("1->0 flips: %.1f%%   multibit: %llu (consecutive %llu / "
              "spread %llu)\n",
              100.0 * dir.one_to_zero_fraction(),
              static_cast<unsigned long long>(adj.multibit_faults),
              static_cast<unsigned long long>(adj.consecutive),
              static_cast<unsigned long long>(adj.non_adjacent));

  const auto groups = analysis::group_simultaneous(extraction.faults);
  const analysis::CoOccurrence co = analysis::count_co_occurrence(groups);
  std::printf("simultaneous corruptions: %llu (widest %llu bits at once)\n",
              static_cast<unsigned long long>(co.simultaneous_corruptions),
              static_cast<unsigned long long>(co.max_bits_one_instant));

  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      extraction.faults, campaign.archive.window());
  std::printf("regimes: %llu normal days (MTBF %.0f h), %llu degraded days "
              "(MTBF %.2f h)%s\n",
              static_cast<unsigned long long>(regimes.regime.normal_days),
              regimes.regime.normal_mtbf_hours,
              static_cast<unsigned long long>(regimes.regime.degraded_days),
              regimes.regime.degraded_mtbf_hours,
              regimes.excluded
                  ? (" [excluded " + cluster::node_name(*regimes.excluded) + "]").c_str()
                  : "");

  const analysis::HourOfDayProfile hours =
      analysis::hour_of_day_profile(extraction.faults);
  std::printf("multi-bit day/night ratio: %.2f\n",
              hours.day_night_ratio_multibit());
  return 0;
}
