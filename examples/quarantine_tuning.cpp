// quarantine_tuning: an operator's walk through Section IV.
//
// Given the campaign's fault stream, sweep the quarantine period and the
// trigger threshold together, pick the knee (most MTBF per node-day lost),
// then show what the winning policy plus regime-adaptive checkpointing and
// page retirement would do in production.
#include <cstdio>
#include <memory>

#include "analysis/extraction.hpp"
#include "analysis/regime.hpp"
#include "common/table.hpp"
#include "policy/builtin.hpp"
#include "policy/engine.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/page_retirement.hpp"
#include "resilience/quarantine.hpp"
#include "sim/campaign.hpp"
#include "telemetry/sink.hpp"

int main() {
  using namespace unp;

  std::printf("replaying the 13-month campaign...\n");
  const sim::CampaignResult& campaign = sim::default_campaign();
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);
  const CampaignWindow& window = campaign.archive.window();

  // Pull the permanently failing node like the paper does.
  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      extraction.faults, window);
  resilience::QuarantineConfig base;
  if (regimes.excluded) {
    base.excluded_nodes.push_back(*regimes.excluded);
    std::printf("replaced permanent-failure node %s up front\n\n",
                cluster::node_name(*regimes.excluded).c_str());
  }

  // 2-D sweep: period x trigger threshold.
  std::printf("== policy sweep: quarantine period x trigger threshold ==\n");
  TextTable table({"Trigger >N/day", "Period (d)", "Errors", "Node-days",
                   "MTBF (h)", "MTBF per node-day"});
  double best_score = 0.0;
  resilience::QuarantineConfig best = base;
  for (std::uint64_t threshold : {1u, 3u, 10u}) {
    for (int period : {5, 10, 20, 30}) {
      resilience::QuarantineConfig config = base;
      config.trigger_threshold = threshold;
      config.period_days = period;
      const resilience::QuarantineOutcome outcome =
          resilience::simulate_quarantine(extraction.faults, window, config);
      const double score =
          outcome.node_days_quarantined > 0.0
              ? outcome.system_mtbf_hours / outcome.node_days_quarantined
              : 0.0;
      table.add_row({std::to_string(threshold), std::to_string(period),
                     format_count(outcome.counted_errors),
                     format_fixed(outcome.node_days_quarantined, 0),
                     format_fixed(outcome.system_mtbf_hours, 1),
                     format_fixed(score, 3)});
      if (score > best_score) {
        best_score = score;
        best = config;
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("knee: trigger >%llu errors/day, %d-day quarantine\n\n",
              static_cast<unsigned long long>(best.trigger_threshold),
              best.period_days);

  // Checkpoint adaptation under the observed regimes.
  std::printf("== regime-adaptive checkpointing (10-minute checkpoints) ==\n");
  const resilience::CheckpointComparison cmp =
      resilience::compare_checkpoint_policies(regimes.regime, 10.0 / 60.0);
  std::printf("static interval   : %.1f h (waste %.2f%%)\n",
              cmp.static_interval_hours, 100.0 * cmp.static_waste_fraction);
  std::printf("adaptive intervals: %.1f h normal / %.2f h degraded "
              "(waste %.2f%%)\n",
              cmp.normal_interval_hours, cmp.degraded_interval_hours,
              100.0 * cmp.adaptive_waste_fraction);
  std::printf("adaptive saves %.1f%% of the static policy's waste\n\n",
              100.0 * cmp.improvement());

  // Page retirement: who it helps, who it cannot.
  std::printf("== page retirement (retire after 1 fault, 4 KB pages) ==\n");
  const auto rows = resilience::page_retirement_by_node(extraction.faults);
  TextTable retire({"Node", "Faults", "Avoided", "Pages retired", "Practical?"});
  for (const auto& row : rows) {
    if (row.faults < 5) continue;
    const double frac = static_cast<double>(row.avoided) /
                        static_cast<double>(row.faults);
    // Retirement is a real fix only when a *few* pages absorb the fault
    // stream; needing thousands of pages means the component, not the
    // memory, is broken.
    const bool practical = frac > 0.5 && row.pages_retired <= 64;
    retire.add_row({cluster::node_name(row.node), format_count(row.faults),
                    format_count(row.avoided), format_count(row.pages_retired),
                    practical ? "yes" : "no"});
  }
  std::printf("%s", retire.render().c_str());
  std::printf("\n(one retired page fixes each weak-bit node; the degrading\n"
              " component would need tens of thousands of retirements and\n"
              " keeps corrupting fresh regions - the paper's Section IV\n"
              " conclusion that retirement cannot cover every case)\n\n");

  // The same decisions, taken online: replay the campaign's record stream
  // through the policy engine with the tuned controller, the one-day-ahead
  // predictor, and regime-adaptive checkpointing shadowed side by side.
  // One pass scores all three (bench_perf_policy measures the saving).
  std::printf("== online shadow evaluation: the knee policy run live ==\n");
  policy::PolicyEngine engine;
  policy::ThresholdQuarantinePolicy::Config knee;
  knee.period_days = best.period_days;
  knee.trigger_threshold = best.trigger_threshold;
  engine.add_policy(std::make_unique<policy::ThresholdQuarantinePolicy>(knee));
  engine.add_policy(std::make_unique<policy::PredictiveQuarantinePolicy>());
  engine.add_policy(std::make_unique<policy::AdaptiveCheckpointPolicy>());

  engine.begin_campaign(window);
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    engine.begin_node(node);
    telemetry::replay_node_log(campaign.archive.log(node), engine);
    engine.end_node(node);
  }
  engine.end_campaign();
  const policy::EngineResult shadow = engine.finish();

  TextTable online({"Policy", "Errors", "Entries", "Node-days", "MTBF (h)"});
  for (const auto& outcome : shadow.outcomes) {
    online.add_row({outcome.policy_name,
                    format_count(outcome.quarantine.counted_errors),
                    format_count(outcome.quarantine.quarantine_entries),
                    format_fixed(outcome.quarantine.node_days_quarantined, 0),
                    format_fixed(outcome.quarantine.system_mtbf_hours, 1)});
  }
  std::printf("%s\n", online.render().c_str());
  for (const auto& outcome : shadow.outcomes) {
    std::printf("%-22s : %s\n", outcome.policy_name.c_str(),
                outcome.report.c_str());
  }
  std::printf("\n(the threshold row reproduces the batch sweep above\n"
              " bit-for-bit - the engine's acceptance property)\n");
  return 0;
}
