// Online policy engine driver: quarantine / prediction / checkpoint policies
// evaluated live against the streaming campaign.
//
// Modes:
//
//   (default)      shadow-evaluate the selected policies (all three when
//                  none is named) in ONE campaign pass and print their
//                  outcome ledgers side by side;
//   --sweep        run the seven Table II quarantine periods as seven
//                  shadowed policies in one pass and print Table II through
//                  the same renderer as bench_tab2_quarantine — outcomes,
//                  and hence output, are bit-identical to the batch sweep;
//   --closed-loop  actually actuate the threshold policy: quarantines cut
//                  scan sessions, the node is re-simulated, and the fleet
//                  report compares open- vs closed-loop observation.
//
// Report sections go to stdout; the observability footer (cache hit/miss,
// fingerprint, per-stage wall clock) goes to stderr.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "common/civil_time.hpp"
#include "common/table.hpp"
#include "policy/builtin.hpp"
#include "policy/engine.hpp"
#include "policy/loop.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"
#include "util/figures.hpp"

namespace {

using namespace unp;

struct Options {
  bool sweep = false;
  bool closed_loop = false;
  bool want_quarantine = false;
  bool want_predict = false;
  bool want_checkpoint = false;
  bool want_protection = false;
  int period_days = 30;
  std::uint64_t trigger_threshold = 3;
  std::uint64_t seed = 42;
  std::size_t threads = sim::default_campaign_threads();
  analysis::ExtractionConfig extraction;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: unp_policy [options]\n"
      "  --policy NAME      shadow-evaluate NAME: quarantine | predict | "
      "checkpoint | protection; repeatable (default: all four)\n"
      "  --sweep            Table II: the seven quarantine periods as seven\n"
      "                     shadowed policies in one campaign pass\n"
      "  --closed-loop      actuate the threshold policy: cut scan plans,\n"
      "                     re-simulate, report open vs closed loop\n"
      "  --period N         quarantine period in days (default 30)\n"
      "  --trigger N        errors/day threshold that triggers quarantine "
      "(default 3)\n"
      "  --seed S           campaign seed (default 42)\n"
      "  --threads T        worker threads (default: hardware concurrency)\n"
      "  --cache-dir DIR    campaign cache directory (sets UNP_CACHE_DIR)\n"
      "  --merge-window S   fault merge window in seconds (default %lld)\n",
      static_cast<long long>(analysis::ExtractionConfig{}.merge_window_s));
}

bool parse_args(int argc, char** argv, Options& opts) {
  const bench::CliParser cli("unp_policy", argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--sweep") == 0) {
      opts.sweep = true;
    } else if (std::strcmp(arg, "--closed-loop") == 0) {
      opts.closed_loop = true;
    } else if (std::strcmp(arg, "--policy") == 0) {
      const char* v = cli.next_value(i, "--policy");
      if (!v) return false;
      if (std::strcmp(v, "quarantine") == 0) {
        opts.want_quarantine = true;
      } else if (std::strcmp(v, "predict") == 0) {
        opts.want_predict = true;
      } else if (std::strcmp(v, "checkpoint") == 0) {
        opts.want_checkpoint = true;
      } else if (std::strcmp(v, "protection") == 0) {
        opts.want_protection = true;
      } else {
        std::fprintf(stderr,
                     "unp_policy: --policy expects "
                     "quarantine|predict|checkpoint|protection, got '%s'\n",
                     v);
        return false;
      }
    } else if (std::strcmp(arg, "--period") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--period", 0, bench::CliParser::kNoUpperBound, n))
        return false;
      opts.period_days = static_cast<int>(n);
    } else if (std::strcmp(arg, "--trigger") == 0) {
      if (!cli.u64(i, "--trigger", opts.trigger_threshold)) return false;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!cli.u64(i, "--seed", opts.seed)) return false;
    } else if (std::strcmp(arg, "--threads") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--threads", 1, bench::CliParser::kNoUpperBound, n))
        return false;
      opts.threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = cli.next_value(i, "--cache-dir");
      if (!v) return false;
      setenv("UNP_CACHE_DIR", v, 1);
    } else if (std::strcmp(arg, "--merge-window") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--merge-window", 0, bench::CliParser::kNoUpperBound,
                       n))
        return false;
      opts.extraction.merge_window_s = n;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unp_policy: unknown option '%s'\n", arg);
      usage(stderr);
      return false;
    }
  }
  if (opts.sweep && opts.closed_loop) {
    std::fprintf(stderr, "unp_policy: --sweep and --closed-loop are exclusive\n");
    return false;
  }
  if (!opts.want_quarantine && !opts.want_predict && !opts.want_checkpoint &&
      !opts.want_protection) {
    opts.want_quarantine = opts.want_predict = opts.want_checkpoint =
        opts.want_protection = true;
  }
  return true;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void print_shadow(const policy::EngineResult& result) {
  bench::print_header(
      "Online policy engine - shadow evaluation (one campaign pass)",
      "Table II quarantine + Section III-I prediction and checkpoint "
      "adaptation, run live against the record stream");

  for (const auto& node : result.excluded_nodes) {
    std::printf("excluded node                  : %s\n",
                cluster::node_name(node).c_str());
  }
  std::printf("\n");

  TextTable table({"Policy", "Errors", "Suppressed", "Entries",
                   "Node-days quarantined", "System MTBF (h)", "Actions"});
  for (const auto& out : result.outcomes) {
    table.add_row({out.policy_name, format_count(out.quarantine.counted_errors),
                   format_count(out.quarantine.suppressed_errors),
                   format_count(out.quarantine.quarantine_entries),
                   format_fixed(out.quarantine.node_days_quarantined, 0),
                   format_fixed(out.quarantine.system_mtbf_hours, 1),
                   format_count(out.actions_emitted)});
  }
  std::printf("%s\n", table.render().c_str());
  for (const auto& out : result.outcomes) {
    std::printf("%-22s : %s\n", out.policy_name.c_str(), out.report.c_str());
  }
}

void print_closed_loop(const policy::ClosedLoopResult& result) {
  bench::print_header(
      "Closed-loop policy campaign (quarantines actuate scan plans)",
      "the threshold policy's cuts remove real scan sessions; nodes are "
      "re-simulated until the controller converges");

  for (const auto& node : result.excluded_nodes) {
    std::printf("excluded node                  : %s\n",
                cluster::node_name(node).c_str());
  }
  std::printf("open-loop observed errors      : %llu\n",
              static_cast<unsigned long long>(result.open_loop_errors));
  std::printf("closed-loop observed errors    : %llu\n",
              static_cast<unsigned long long>(result.closed_loop_errors));
  std::printf("quarantine entries             : %llu\n",
              static_cast<unsigned long long>(result.quarantine_entries));
  std::printf("node-days quarantined          : %.0f\n",
              result.node_days_quarantined);
  std::printf("scan hours removed by cuts     : %.0f\n",
              static_cast<double>(result.scan_seconds_removed) / kSecondsPerHour);
  std::printf("availability loss              : %.3f%%\n",
              100.0 * result.availability_loss);
  std::printf("system MTBF open -> closed     : %.1f h -> %.1f h\n",
              result.open_mtbf_hours, result.closed_mtbf_hours);
  std::printf("degraded days (closed loop)    : %llu of %llu\n",
              static_cast<unsigned long long>(result.regime.degraded_days),
              static_cast<unsigned long long>(result.regime.degraded_days +
                                              result.regime.normal_days));
  std::printf("checkpoint waste static/causal : %.4f -> %.4f (%.1f%% less)\n",
              result.causal_static_waste, result.causal_adaptive_waste,
              result.causal_static_waste > 0.0
                  ? 100.0 * (1.0 - result.causal_adaptive_waste /
                                       result.causal_static_waste)
                  : 0.0);

  std::printf("\nactuated nodes (first 10):\n");
  std::size_t shown = 0;
  for (const auto& node : result.per_node) {
    if (node.actuations == 0 || shown >= 10) continue;
    std::printf("  %s : %llu -> %llu observed errors, %d actuations, %d rounds\n",
                cluster::node_name(node.node).c_str(),
                static_cast<unsigned long long>(node.open_faults),
                static_cast<unsigned long long>(node.closed_faults),
                node.actuations, node.rounds);
    ++shown;
  }
}

int run_policy(const Options& opts) {
  sim::CampaignConfig config;
  config.seed = opts.seed;

  if (opts.closed_loop) {
    policy::ClosedLoopConfig loop;
    loop.campaign = config;
    loop.extraction = opts.extraction;
    loop.controller.period_days = opts.period_days;
    loop.controller.trigger_threshold = opts.trigger_threshold;
    loop.threads = opts.threads;
    const auto t0 = std::chrono::steady_clock::now();
    const policy::ClosedLoopResult result = policy::run_closed_loop(loop);
    const double loop_ms = ms_since(t0);
    print_closed_loop(result);
    std::fprintf(stderr, "\n== unp_policy: timings ==\n");
    std::fprintf(stderr,
                 "closed loop (no cache; %zu thr)  : %9.1f ms  (%zu actuations)\n",
                 opts.threads, loop_ms, result.actuations.size());
    return 0;
  }

  policy::PolicyEngine::Config engine_config;
  engine_config.extraction = opts.extraction;
  policy::PolicyEngine engine(engine_config);

  std::vector<std::size_t> sweep_slots;
  const std::vector<int> sweep_periods{0, 5, 10, 15, 20, 25, 30};
  if (opts.sweep) {
    for (const int period : sweep_periods) {
      policy::ThresholdQuarantinePolicy::Config tq;
      tq.period_days = period;
      tq.trigger_threshold = opts.trigger_threshold;
      sweep_slots.push_back(engine.add_policy(
          std::make_unique<policy::ThresholdQuarantinePolicy>(tq)));
    }
  } else {
    if (opts.want_quarantine) {
      policy::ThresholdQuarantinePolicy::Config tq;
      tq.period_days = opts.period_days;
      tq.trigger_threshold = opts.trigger_threshold;
      engine.add_policy(std::make_unique<policy::ThresholdQuarantinePolicy>(tq));
    }
    if (opts.want_predict) {
      engine.add_policy(std::make_unique<policy::PredictiveQuarantinePolicy>());
    }
    if (opts.want_checkpoint) {
      engine.add_policy(std::make_unique<policy::AdaptiveCheckpointPolicy>());
    }
    if (opts.want_protection) {
      engine.add_policy(std::make_unique<policy::ProtectionSelectionPolicy>());
    }
  }

  const bench::StreamStats acquire =
      bench::stream_campaign(config, opts.extraction, {&engine}, opts.threads);
  const auto t_finish = std::chrono::steady_clock::now();
  const policy::EngineResult result = engine.finish();
  const double finish_ms = ms_since(t_finish);

  if (opts.sweep) {
    std::vector<resilience::QuarantineOutcome> sweep;
    for (const std::size_t slot : sweep_slots) {
      sweep.push_back(result.outcomes[slot].quarantine);
    }
    bench::print_tab2(sweep);
  } else {
    print_shadow(result);
  }

  std::fprintf(stderr, "\n== unp_policy: one-pass timings ==\n");
  std::fprintf(stderr, "campaign cache %s  fingerprint %016llx%s%s\n",
               acquire.cache_path.empty() ? "OFF "
               : acquire.from_cache      ? "HIT "
                                         : "MISS",
               static_cast<unsigned long long>(acquire.fingerprint),
               acquire.cache_path.empty() ? "" : "  ",
               acquire.cache_path.c_str());
  std::fprintf(stderr, "record stream (%s)%s : %9.1f ms\n",
               acquire.from_cache ? "cache replay" : "simulate+spill",
               acquire.from_cache ? "  " : "", acquire.acquire_ms);
  std::fprintf(stderr,
               "engine finish (%zu policies)     : %9.1f ms  (%llu faults)\n",
               result.outcomes.size(), finish_ms,
               static_cast<unsigned long long>(result.extraction.faults.size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;
  try {
    return run_policy(opts);
  } catch (const ContractViolation& e) {
    // Corrupt cache input or a violated pipeline contract: report and exit
    // instead of aborting with an uncaught-exception trace.
    std::fprintf(stderr, "unp_policy: fatal: %s\n", e.what());
    return 2;
  }
}
