// Fig 10: number of errors per day, by corrupted-bit class - plus the
// Section III-G correlation between scanning volume and error count.
//
// Paper shape: more errors September-December than the first half of the
// year; Pearson(scanned TB-h, errors) = -0.17966 with p = 0.0002 - a low
// anti-correlation proving the methodology does not drive the error count.
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  bench::print_fig10(analysis::daily_errors(data.extraction.faults, window),
                     analysis::scan_error_correlation(data.campaign->archive,
                                                      data.extraction.faults),
                     window);
  return 0;
}
