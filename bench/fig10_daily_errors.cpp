// Fig 10: number of errors per day, by corrupted-bit class - plus the
// Section III-G correlation between scanning volume and error count.
//
// Paper shape: more errors September-December than the first half of the
// year; Pearson(scanned TB-h, errors) = -0.17966 with p = 0.0002 - a low
// anti-correlation proving the methodology does not drive the error count.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 10 - errors per day (and scan-vs-error correlation)",
      "errors concentrate Sep-Dec; Pearson r ~ -0.18, p ~ 2e-4: scanning "
      "volume does not drive error counts");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const auto series = analysis::daily_errors(data.extraction.faults, window);

  // Monthly totals keep the printout readable.
  struct Month {
    int year, month;
    std::uint64_t errors = 0;
  };
  std::vector<Month> months;
  for (std::size_t d = 0; d < series.size(); ++d) {
    const CivilDateTime c = to_civil_utc(
        window.start + static_cast<TimePoint>(d) * kSecondsPerDay);
    if (months.empty() || months.back().month != c.month ||
        months.back().year != c.year) {
      months.push_back({c.year, c.month, 0});
    }
    for (int k = 0; k < analysis::kBitClasses; ++k) {
      months.back().errors += series[d][static_cast<std::size_t>(k)];
    }
  }
  std::vector<BarEntry> bars;
  for (const auto& m : months) {
    char label[16];
    std::snprintf(label, sizeof label, "%04d-%02d", m.year, m.month);
    bars.push_back({label, static_cast<double>(m.errors)});
  }
  std::printf("errors per month:\n%s\n", render_bars(bars, 50).c_str());

  const PearsonResult corr = analysis::scan_error_correlation(
      data.campaign->archive, data.extraction.faults);
  std::printf("Pearson(daily TB-h, daily errors) : r = %.5f (paper: -0.17966)\n",
              corr.r);
  std::printf("p-value                           : %.4g (paper: 0.0002)\n",
              corr.p_value);
  std::printf("n (days)                          : %zu\n", corr.n);
  return 0;
}
