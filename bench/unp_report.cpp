// Unified figure driver: every paper figure/table from ONE pass.
//
// The per-figure binaries each pay a full campaign acquisition (cache reload
// or simulation) plus a batch extraction before printing one section.  This
// driver acquires the record stream once (ScanProfileSink + StreamingExtractor
// riding the same replay), fans the fault-level analyzers out on the thread
// pool, and prints any requested subset of sections through the same
// bench::print_* renderers the individual binaries use - so each section is
// byte-identical to its standalone binary's stdout.
//
// Report sections go to stdout; the observability footer (per-stage and
// per-analyzer wall clock) goes to stderr so section output stays clean.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/alignment.hpp"
#include "analysis/bitstats.hpp"
#include "analysis/fault_sink.hpp"
#include "analysis/grouping.hpp"
#include "analysis/interarrival.hpp"
#include "analysis/markov.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "analysis/streaming_extractor.hpp"
#include "common/thread_pool.hpp"
#include "dram/address_map.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

namespace {

using namespace unp;

enum Section : int {
  kHeadline = 0,
  kFig01,
  kFig02,
  kFig03,
  kTab1,
  kFig04,
  kFig05,
  kFig06,
  kFig07,
  kFig08,
  kFig09,
  kFig10,
  kFig11,
  kFig12,
  kFig13,
  kExtTemporal,
  kExtMarkov,
  kExtAlignment,
  kSectionCount
};

struct Options {
  bool want[kSectionCount] = {};
  std::uint64_t seed = 42;
  std::size_t threads = sim::default_campaign_threads();
  analysis::ExtractionConfig extraction;
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: unp_report [options]\n"
               "  --all              print every section (default when none "
               "requested)\n"
               "  --headline         Section III-B headline statistics\n"
               "  --fig N            figure N (1-13); repeatable\n"
               "  --tab1             Table I multi-bit census\n"
               "  --ext NAME         extension: temporal | markov | alignment; "
               "repeatable\n"
               "  --seed S           campaign seed (default 42)\n"
               "  --threads T        worker threads (default: hardware "
               "concurrency)\n"
               "  --cache-dir DIR    campaign cache directory (sets "
               "UNP_CACHE_DIR)\n"
               "  --merge-window S   fault merge window in seconds (default "
               "%lld)\n",
               static_cast<long long>(analysis::ExtractionConfig{}.merge_window_s));
}

constexpr Section kFigSections[] = {kFig01, kFig02, kFig03, kFig04, kFig05,
                                    kFig06, kFig07, kFig08, kFig09, kFig10,
                                    kFig11, kFig12, kFig13};

/// Whole-string signed parse; rejects "1x", "", "0x10" style inputs that
/// strtol would silently truncate.
bool parse_long_strict(const char* text, long& out) {
  char* end = nullptr;
  out = std::strtol(text, &end, 10);
  return end != text && *end == '\0';
}

bool parse_u64_strict(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

bool parse_args(int argc, char** argv, Options& opts) {
  bool any_section = false;
  auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "unp_report: %s needs a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--all") == 0) {
      for (int s = 0; s < kSectionCount; ++s) opts.want[s] = true;
      any_section = true;
    } else if (std::strcmp(arg, "--headline") == 0) {
      opts.want[kHeadline] = true;
      any_section = true;
    } else if (std::strcmp(arg, "--tab1") == 0) {
      opts.want[kTab1] = true;
      any_section = true;
    } else if (std::strcmp(arg, "--fig") == 0) {
      const char* v = next_value(i, "--fig");
      if (!v) return false;
      long n = 0;
      if (!parse_long_strict(v, n) || n < 1 || n > 13) {
        std::fprintf(stderr, "unp_report: --fig expects 1..13, got '%s'\n", v);
        return false;
      }
      opts.want[kFigSections[n - 1]] = true;
      any_section = true;
    } else if (std::strcmp(arg, "--ext") == 0) {
      const char* v = next_value(i, "--ext");
      if (!v) return false;
      if (std::strcmp(v, "temporal") == 0) {
        opts.want[kExtTemporal] = true;
      } else if (std::strcmp(v, "markov") == 0) {
        opts.want[kExtMarkov] = true;
      } else if (std::strcmp(v, "alignment") == 0) {
        opts.want[kExtAlignment] = true;
      } else {
        std::fprintf(stderr,
                     "unp_report: --ext expects temporal|markov|alignment, "
                     "got '%s'\n",
                     v);
        return false;
      }
      any_section = true;
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* v = next_value(i, "--seed");
      if (!v) return false;
      if (!parse_u64_strict(v, opts.seed)) {
        std::fprintf(stderr, "unp_report: --seed expects an integer, got '%s'\n",
                     v);
        return false;
      }
    } else if (std::strcmp(arg, "--threads") == 0) {
      const char* v = next_value(i, "--threads");
      if (!v) return false;
      long n = 0;
      if (!parse_long_strict(v, n) || n < 1) {
        std::fprintf(stderr, "unp_report: --threads expects >= 1, got '%s'\n",
                     v);
        return false;
      }
      opts.threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = next_value(i, "--cache-dir");
      if (!v) return false;
      setenv("UNP_CACHE_DIR", v, 1);
    } else if (std::strcmp(arg, "--merge-window") == 0) {
      const char* v = next_value(i, "--merge-window");
      if (!v) return false;
      long n = 0;
      if (!parse_long_strict(v, n) || n < 0) {
        std::fprintf(stderr,
                     "unp_report: --merge-window expects seconds >= 0, got "
                     "'%s'\n",
                     v);
        return false;
      }
      opts.extraction.merge_window_s = n;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unp_report: unknown option '%s'\n", arg);
      usage(stderr);
      return false;
    }
  }
  if (!any_section)
    for (int s = 0; s < kSectionCount; ++s) opts.want[s] = true;
  return true;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;
  const auto want = [&](Section s) { return opts.want[s]; };

  sim::CampaignConfig config;
  config.seed = opts.seed;

  // --- Pass 1: one record stream feeds scan totals AND fault extraction. ---
  analysis::ScanProfileSink scan;
  analysis::StreamingExtractor extractor(opts.extraction);
  const bench::StreamStats acquire = bench::stream_campaign(
      config, opts.extraction, {&scan, &extractor}, opts.threads);

  const auto t_extract = std::chrono::steady_clock::now();
  const analysis::ExtractionResult extraction = extractor.finish();
  const double finish_ms = ms_since(t_extract);
  const CampaignWindow& window = scan.window();

  // --- Pass 2: fan the fault-level analyzers out on the pool. -------------
  analysis::ErrorsGridAnalyzer errors_grid;
  analysis::MultibitPatternAnalyzer patterns;
  analysis::AdjacencyAnalyzer adjacency;
  analysis::DirectionAnalyzer direction;
  analysis::SimultaneousGroupAnalyzer grouping;
  analysis::HourOfDayAnalyzer hourly;
  analysis::TemperatureAnalyzer temperature;
  analysis::DailyErrorsAnalyzer daily;
  analysis::TopNodeAnalyzer top_nodes;
  analysis::NodePatternCensus node_patterns;
  analysis::RegimeAnalyzer regime;
  analysis::InterArrivalAnalyzer interarrival;
  analysis::RegimeDynamicsAnalyzer dynamics;
  const dram::AddressMap address_map(dram::default_geometry());
  analysis::AlignmentAnalyzer alignment(address_map);

  struct Registered {
    const char* label;
    analysis::FaultSink* sink;
  };
  std::vector<Registered> registered;
  auto add_sink = [&](bool needed, const char* label, analysis::FaultSink* s) {
    if (needed) registered.push_back({label, s});
  };
  add_sink(want(kFig03), "errors-grid", &errors_grid);
  add_sink(want(kTab1), "multibit-patterns", &patterns);
  add_sink(want(kTab1), "adjacency", &adjacency);
  add_sink(want(kTab1), "direction", &direction);
  add_sink(want(kFig04), "grouping", &grouping);
  add_sink(want(kFig05) || want(kFig06), "hour-of-day", &hourly);
  add_sink(want(kFig07) || want(kFig08), "temperature", &temperature);
  add_sink(want(kFig10), "daily-errors", &daily);
  add_sink(want(kFig12), "top-nodes", &top_nodes);
  add_sink(want(kFig12), "node-patterns", &node_patterns);
  add_sink(want(kFig13), "regime", &regime);
  add_sink(want(kExtTemporal), "interarrival", &interarrival);
  add_sink(want(kExtMarkov), "regime-dynamics", &dynamics);
  add_sink(want(kExtAlignment), "alignment", &alignment);

  std::vector<analysis::FaultSink*> sinks;
  for (const auto& r : registered) sinks.push_back(r.sink);

  std::unique_ptr<ThreadPool> pool;
  if (opts.threads > 1 && sinks.size() > 1)
    pool = std::make_unique<ThreadPool>(opts.threads);
  const auto t_fanout = std::chrono::steady_clock::now();
  const std::vector<analysis::FaultSinkTiming> timings = analysis::run_fault_sinks(
      extraction.faults, {window}, sinks, pool.get());
  const double fanout_ms = ms_since(t_fanout);

  // --- Render the requested sections in canonical report order. -----------
  if (want(kHeadline)) {
    bench::print_headline(
        analysis::headline_stats(scan.total_monitored_hours(),
                                 scan.total_terabyte_hours(),
                                 scan.monitored_nodes(), window, extraction),
        extraction);
  }
  if (want(kFig01)) bench::print_fig01(scan.hours_grid());
  if (want(kFig02))
    bench::print_fig02(scan.hours_grid(), scan.terabyte_hours_grid());
  if (want(kFig03)) bench::print_fig03(errors_grid.grid());
  if (want(kTab1))
    bench::print_tab1(patterns.patterns(), adjacency.stats(), direction.stats());
  if (want(kFig04)) {
    bench::print_fig04(analysis::count_viewpoints(grouping.groups()),
                       analysis::count_co_occurrence(grouping.groups()));
  }
  if (want(kFig05)) bench::print_fig05(hourly.profile());
  if (want(kFig06)) bench::print_fig06(hourly.profile());
  if (want(kFig07)) bench::print_fig07(temperature.profile());
  if (want(kFig08)) bench::print_fig08(temperature.profile());
  if (want(kFig09)) bench::print_fig09(scan.daily_terabyte_hours(), window);
  if (want(kFig10)) {
    bench::print_fig10(daily.series(),
                       analysis::scan_error_correlation(
                           scan.daily_terabyte_hours(), daily.series()),
                       window);
  }
  if (want(kFig11)) bench::print_fig11(extraction.faults, window);
  if (want(kFig12)) {
    std::vector<analysis::NodePatternProfile> profiles;
    for (const auto& node : top_nodes.series().nodes)
      profiles.push_back(node_patterns.profile(node));
    bench::print_fig12(top_nodes.series(), profiles, window);
  }
  if (want(kFig13)) bench::print_fig13(regime.result(), window);
  if (want(kExtTemporal)) {
    bench::print_ext_temporal(
        interarrival.stats(),
        analysis::poisson_reference(interarrival.stats().gaps + 1,
                                    window.duration_seconds(), 17));
  }
  if (want(kExtMarkov)) {
    bench::print_ext_markov(dynamics.days(), dynamics.model(), dynamics.spells(),
                            dynamics.regime().regime.degraded_fraction());
  }
  if (want(kExtAlignment))
    bench::print_ext_alignment(alignment.stats(), alignment.spread());

  // --- Observability footer (stderr keeps section stdout byte-clean). -----
  std::fprintf(stderr, "\n== unp_report: one-pass timings ==\n");
  std::fprintf(stderr, "campaign cache %s  fingerprint %016llx%s%s\n",
               acquire.cache_path.empty() ? "OFF "
               : acquire.from_cache      ? "HIT "
                                         : "MISS",
               static_cast<unsigned long long>(acquire.fingerprint),
               acquire.cache_path.empty() ? "" : "  ",
               acquire.cache_path.c_str());
  std::fprintf(stderr, "record stream (%s)%s : %9.1f ms\n",
               acquire.from_cache ? "cache replay" : "simulate+spill",
               acquire.from_cache ? "  " : "", acquire.acquire_ms);
  std::fprintf(stderr, "extraction finish (filter+sort) : %9.1f ms  (%llu faults)\n",
               finish_ms,
               static_cast<unsigned long long>(extraction.faults.size()));
  std::fprintf(stderr, "analyzer fan-out (%zu sinks, %zu thr) : %7.1f ms\n",
               sinks.size(), opts.threads, fanout_ms);
  for (std::size_t i = 0; i < timings.size(); ++i) {
    std::fprintf(stderr, "  %-22s : %9.2f ms\n", registered[i].label,
                 timings[i].milliseconds);
  }
  return 0;
}
