// Unified figure driver: every paper figure/table from ONE pass.
//
// The per-figure binaries each pay a full campaign acquisition (cache reload
// or simulation) plus a batch extraction before printing one section.  This
// driver acquires the record stream once (ScanProfileSink + StreamingExtractor
// riding the same replay), fans the fault-level analyzers out on the thread
// pool, and prints any requested subset of sections through the same
// bench::print_* renderers the individual binaries use - so each section is
// byte-identical to its standalone binary's stdout.
//
// --store PATH skips simulation and extraction entirely: faults and the scan
// profile replay out of a prebuilt UNPF columnar store (see unp_query
// --build), through the same renderers, producing byte-identical sections in
// a fraction of the time.
//
// Report sections go to stdout; the observability footer (per-stage and
// per-analyzer wall clock) goes to stderr so section output stays clean.
// Exit status: 0 on success, 2 on bad usage or unreadable/corrupt input.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/fault_sink.hpp"
#include "analysis/metrics.hpp"
#include "analysis/streaming_extractor.hpp"
#include "common/thread_pool.hpp"
#include "sim/campaign.hpp"
#include "store/reader.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"
#include "util/report_sections.hpp"

namespace {

using namespace unp;
using bench::kSectionCount;
using bench::Section;

struct Options {
  bool want[kSectionCount] = {};
  std::uint64_t seed = 42;
  bool hammer = false;  ///< enable the Rowhammer generator (live pipeline)
  std::size_t threads = sim::default_campaign_threads();
  analysis::ExtractionConfig extraction;
  std::string store_path;  ///< non-empty: replay a UNPF store
  bool live_flags_used = false;  ///< --seed/--merge-window/--cache-dir seen
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: unp_report [options]\n"
               "  --all              print every section (default when none "
               "requested)\n"
               "  --headline         Section III-B headline statistics\n"
               "  --fig N            figure N (1-13); repeatable\n"
               "  --tab1             Table I multi-bit census\n"
               "  --ext NAME         extension: temporal | markov | alignment "
               "| ecc | hammer; repeatable\n"
               "  --hammer           enable the Rowhammer fault generator in "
               "the live campaign\n"
               "  --store PATH       replay a prebuilt UNPF fault store "
               "instead of\n"
               "                     simulating (excludes --seed, "
               "--merge-window,\n"
               "                     --cache-dir; see unp_query --build)\n"
               "  --seed S           campaign seed (default 42)\n"
               "  --threads T        worker threads (default: hardware "
               "concurrency)\n"
               "  --cache-dir DIR    campaign cache directory (sets "
               "UNP_CACHE_DIR)\n"
               "  --merge-window S   fault merge window in seconds (default "
               "%lld)\n",
               static_cast<long long>(analysis::ExtractionConfig{}.merge_window_s));
}

bool parse_args(int argc, char** argv, Options& opts) {
  bool any_section = false;
  const bench::CliParser cli("unp_report", argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--all") == 0) {
      for (int s = 0; s < kSectionCount; ++s) opts.want[s] = true;
      any_section = true;
    } else if (std::strcmp(arg, "--headline") == 0) {
      opts.want[bench::kHeadline] = true;
      any_section = true;
    } else if (std::strcmp(arg, "--tab1") == 0) {
      opts.want[bench::kTab1] = true;
      any_section = true;
    } else if (std::strcmp(arg, "--fig") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--fig", 1, 13, n)) return false;
      opts.want[bench::kFigSections[n - 1]] = true;
      any_section = true;
    } else if (std::strcmp(arg, "--ext") == 0) {
      const char* v = cli.next_value(i, "--ext");
      if (!v) return false;
      bool found = false;
      for (const bench::ExtSection& ext : bench::ext_sections()) {
        if (std::strcmp(v, ext.name) == 0) {
          opts.want[ext.section] = true;
          found = true;
          break;
        }
      }
      if (!found) {
        std::string names;
        for (const bench::ExtSection& ext : bench::ext_sections()) {
          if (!names.empty()) names += " | ";
          names += ext.name;
        }
        std::fprintf(stderr, "unp_report: --ext expects %s, got '%s'\n",
                     names.c_str(), v);
        return false;
      }
      any_section = true;
    } else if (std::strcmp(arg, "--store") == 0) {
      const char* v = cli.next_value(i, "--store");
      if (!v) return false;
      opts.store_path = v;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!cli.u64(i, "--seed", opts.seed)) return false;
      opts.live_flags_used = true;
    } else if (std::strcmp(arg, "--hammer") == 0) {
      opts.hammer = true;
      opts.live_flags_used = true;
    } else if (std::strcmp(arg, "--threads") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--threads", 1, bench::CliParser::kNoUpperBound, n))
        return false;
      opts.threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = cli.next_value(i, "--cache-dir");
      if (!v) return false;
      setenv("UNP_CACHE_DIR", v, 1);
      opts.live_flags_used = true;
    } else if (std::strcmp(arg, "--merge-window") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--merge-window", 0, bench::CliParser::kNoUpperBound,
                       n))
        return false;
      opts.extraction.merge_window_s = n;
      opts.live_flags_used = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unp_report: unknown option '%s'\n", arg);
      usage(stderr);
      return false;
    }
  }
  if (!opts.store_path.empty() && opts.live_flags_used) {
    std::fprintf(stderr,
                 "unp_report: --store replays a prebuilt store; --seed, "
                 "--merge-window and --cache-dir configure the live pipeline "
                 "and cannot apply to it\n");
    return false;
  }
  if (!any_section)
    for (int s = 0; s < kSectionCount; ++s) opts.want[s] = true;
  return true;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void print_sink_timings(const std::vector<const char*>& labels,
                        const std::vector<analysis::FaultSinkTiming>& timings) {
  for (std::size_t i = 0; i < timings.size(); ++i) {
    std::fprintf(stderr, "  %-22s : %9.2f ms\n", labels[i],
                 timings[i].milliseconds);
  }
}

/// Store-backed path: faults + scan profile replay from a UNPF store.
int run_store_report(const Options& opts) {
  // One parse, shared bytes: the handle owns the mapping; the reader is a
  // throwaway view over it (any number could share this handle).
  const auto t_open = std::chrono::steady_clock::now();
  const std::shared_ptr<const store::StoreHandle> handle =
      store::StoreHandle::open(opts.store_path);
  const store::StoreReader reader(handle);
  const double open_ms = ms_since(t_open);

  std::unique_ptr<ThreadPool> pool;
  if (opts.threads > 1) pool = std::make_unique<ThreadPool>(opts.threads);

  const auto t_scan = std::chrono::steady_clock::now();
  const analysis::ExtractionResult extraction =
      reader.extraction_result(pool.get());
  const double scan_ms = ms_since(t_scan);

  bench::ReportAnalyzers analyzers(opts.want);
  const auto t_fanout = std::chrono::steady_clock::now();
  const std::vector<analysis::FaultSinkTiming> timings =
      analysis::run_fault_sinks(extraction.faults, {reader.window()},
                                analyzers.sinks(), pool.get());
  const double fanout_ms = ms_since(t_fanout);

  const store::StoredScanProfile& profile = reader.scan_profile();
  bench::ReportInputs inputs;
  inputs.window = reader.window();
  inputs.hours = &profile.hours;
  inputs.terabyte_hours = &profile.terabyte_hours;
  inputs.daily_terabyte_hours = profile.daily_terabyte_hours;
  inputs.total_hours = profile.total_hours;
  inputs.total_terabyte_hours = profile.total_terabyte_hours;
  inputs.monitored_nodes = profile.monitored_nodes;
  inputs.extraction = &extraction;
  analyzers.render(inputs);

  std::fprintf(stderr, "\n== unp_report: store-replay timings ==\n");
  std::fprintf(stderr, "store %s  fingerprint %016llx\n",
               opts.store_path.c_str(),
               static_cast<unsigned long long>(reader.fingerprint()));
  std::fprintf(stderr, "store open (header+directory)   : %9.1f ms\n", open_ms);
  std::fprintf(stderr,
               "fault scan (%zu segments)        : %9.1f ms  (%llu faults)\n",
               reader.zones().size(), scan_ms,
               static_cast<unsigned long long>(extraction.faults.size()));
  std::fprintf(stderr, "analyzer fan-out (%zu sinks, %zu thr) : %7.1f ms\n",
               analyzers.sinks().size(), opts.threads, fanout_ms);
  print_sink_timings(analyzers.labels(), timings);
  return 0;
}

int run_report(const Options& opts) {
  sim::CampaignConfig config;
  config.seed = opts.seed;
  config.faults.enable_hammer = opts.hammer;

  // --- Pass 1: one record stream feeds scan totals AND fault extraction. ---
  analysis::ScanProfileSink scan;
  analysis::StreamingExtractor extractor(opts.extraction);
  const bench::StreamStats acquire = bench::stream_campaign(
      config, opts.extraction, {&scan, &extractor}, opts.threads);

  const auto t_extract = std::chrono::steady_clock::now();
  const analysis::ExtractionResult extraction = extractor.finish();
  const double finish_ms = ms_since(t_extract);
  const CampaignWindow& window = scan.window();

  // --- Pass 2: fan the fault-level analyzers out on the pool. -------------
  bench::ReportAnalyzers analyzers(opts.want);
  std::unique_ptr<ThreadPool> pool;
  if (opts.threads > 1 && analyzers.sinks().size() > 1)
    pool = std::make_unique<ThreadPool>(opts.threads);
  const auto t_fanout = std::chrono::steady_clock::now();
  const std::vector<analysis::FaultSinkTiming> timings = analysis::run_fault_sinks(
      extraction.faults, {window}, analyzers.sinks(), pool.get());
  const double fanout_ms = ms_since(t_fanout);

  // --- Render the requested sections in canonical report order. -----------
  bench::ReportInputs inputs;
  inputs.window = window;
  inputs.hours = &scan.hours_grid();
  inputs.terabyte_hours = &scan.terabyte_hours_grid();
  inputs.daily_terabyte_hours = scan.daily_terabyte_hours();
  inputs.total_hours = scan.total_monitored_hours();
  inputs.total_terabyte_hours = scan.total_terabyte_hours();
  inputs.monitored_nodes = scan.monitored_nodes();
  inputs.extraction = &extraction;
  analyzers.render(inputs);

  // --- Observability footer (stderr keeps section stdout byte-clean). -----
  std::fprintf(stderr, "\n== unp_report: one-pass timings ==\n");
  std::fprintf(stderr, "campaign cache %s  fingerprint %016llx%s%s\n",
               acquire.cache_path.empty() ? "OFF "
               : acquire.from_cache      ? "HIT "
                                         : "MISS",
               static_cast<unsigned long long>(acquire.fingerprint),
               acquire.cache_path.empty() ? "" : "  ",
               acquire.cache_path.c_str());
  std::fprintf(stderr, "record stream (%s)%s : %9.1f ms\n",
               acquire.from_cache ? "cache replay" : "simulate+spill",
               acquire.from_cache ? "  " : "", acquire.acquire_ms);
  std::fprintf(stderr, "extraction finish (filter+sort) : %9.1f ms  (%llu faults)\n",
               finish_ms,
               static_cast<unsigned long long>(extraction.faults.size()));
  std::fprintf(stderr, "analyzer fan-out (%zu sinks, %zu thr) : %7.1f ms\n",
               analyzers.sinks().size(), opts.threads, fanout_ms);
  print_sink_timings(analyzers.labels(), timings);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;
  try {
    return opts.store_path.empty() ? run_report(opts) : run_store_report(opts);
  } catch (const ContractViolation& e) {
    // Covers telemetry::DecodeError (corrupt cache/store input) and any
    // violated pipeline contract: report and exit instead of aborting with
    // an uncaught-exception trace.
    std::fprintf(stderr, "unp_report: fatal: %s\n", e.what());
    return 2;
  }
}
