// Robustness: the reproduction's headline shapes across campaign seeds.
//
// A calibration that only works at seed 42 would be curve-fitting, not a
// model.  This bench reruns the full campaign at several seeds and reports
// the spread of every headline quantity; the paper-shape must survive.
#include <cstdio>

#include "analysis/bitstats.hpp"
#include "analysis/extraction.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Seed sensitivity - headline shapes across campaigns",
      "every paper shape must hold at any seed, not just the default");

  RunningStats faults, multibit, one_to_zero, day_night, degraded_frac;

  constexpr std::uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 42};
  TextTable table({"Seed", "Faults", "Multi-bit", "1->0 %", "Day/night",
                   "Degraded days %"});
  for (const std::uint64_t seed : kSeeds) {
    sim::CampaignConfig config;
    config.seed = seed;
    const sim::CampaignResult campaign = sim::run_campaign(config);
    const analysis::ExtractionResult extraction =
        analysis::extract_faults(campaign.archive);

    const analysis::AdjacencyStats adj =
        analysis::adjacency_stats(extraction.faults);
    const analysis::DirectionStats dir =
        analysis::direction_stats(extraction.faults);
    const analysis::HourOfDayProfile hours =
        analysis::hour_of_day_profile(extraction.faults);
    const analysis::AutoRegime regimes =
        analysis::classify_regime_excluding_loudest(extraction.faults,
                                                    config.window);

    faults.add(static_cast<double>(extraction.faults.size()));
    multibit.add(static_cast<double>(adj.multibit_faults));
    one_to_zero.add(100.0 * dir.one_to_zero_fraction());
    day_night.add(hours.day_night_ratio_multibit());
    degraded_frac.add(100.0 * regimes.regime.degraded_fraction());

    table.add_row({std::to_string(seed),
                   format_count(extraction.faults.size()),
                   format_count(adj.multibit_faults),
                   format_fixed(100.0 * dir.one_to_zero_fraction(), 1),
                   format_fixed(hours.day_night_ratio_multibit(), 2),
                   format_fixed(100.0 * regimes.regime.degraded_fraction(), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  auto row = [](const char* name, const RunningStats& s, const char* paper) {
    std::printf("%-22s mean %10.1f  sd %8.1f   (paper: %s)\n", name, s.mean(),
                s.stddev(), paper);
  };
  row("independent faults", faults, ">55,000");
  row("multi-bit faults", multibit, "85");
  row("1->0 share (%)", one_to_zero, "~90");
  row("day/night ratio", day_night, "~2");
  row("degraded days (%)", degraded_frac, "18.1");
  return 0;
}
