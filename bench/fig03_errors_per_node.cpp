// Fig 3: number of independent memory errors per node (log colour scale).
//
// Paper shape: most nodes error-free; most faulty nodes show exactly one
// error; a handful show thousands - orders of magnitude beyond the spread
// in scan time.
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_fig03(analysis::errors_grid(data.extraction.faults));
  return 0;
}
