// Fig 3: number of independent memory errors per node (log colour scale).
//
// Paper shape: most nodes error-free; most faulty nodes show exactly one
// error; a handful show thousands - orders of magnitude beyond the spread
// in scan time.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 3 - independent memory errors per node (log scale)",
      "most nodes zero; single-error nodes dominate the faulty set; a few "
      "nodes carry thousands");

  const bench::CampaignData& data = bench::default_data();
  const Grid2D grid = analysis::errors_grid(data.extraction.faults);

  std::printf("rows = blades, cols = SoCs; max = %.0f errors (log ramp)\n\n",
              grid.max_value());
  std::printf("%s\n", render_heatmap(grid, /*log_scale=*/true).c_str());

  int zero = 0, one = 0, two_to_ten = 0, more = 0, thousands = 0;
  for (std::size_t b = 0; b < grid.rows(); ++b) {
    for (std::size_t s = 0; s < grid.cols(); ++s) {
      const double v = grid.at(b, s);
      if (v == 0.0) {
        ++zero;
      } else if (v == 1.0) {
        ++one;
      } else if (v <= 10.0) {
        ++two_to_ten;
      } else if (v < 1000.0) {
        ++more;
      } else {
        ++thousands;
      }
    }
  }
  std::printf("nodes with zero errors   : %d\n", zero);
  std::printf("nodes with one error     : %d\n", one);
  std::printf("nodes with 2-10 errors   : %d\n", two_to_ten);
  std::printf("nodes with 11-999 errors : %d\n", more);
  std::printf("nodes with >=1000 errors : %d\n", thousands);
  return 0;
}
