// Ad-hoc query CLI over the UNPF columnar fault store.
//
// Two halves, composable in one invocation:
//
//   --build PATH   run the shared campaign pipeline once (cache reload or
//                  simulate+spill, then streaming extraction) and persist
//                  faults + scan profile + extraction accounting as a
//                  columnar store at PATH;
//   --store PATH   open an existing store (implied by --build).
//
// Against the open store, SQL-lite predicate flags select faults
// (--since/--until epoch-second time range, --node/--blade/--soc location,
// --class or --min-bits/--max-bits multiplicity) and one action renders
// them: --count, a row listing (default, bounded by --limit), or any report
// section (--fig N / --tab1 / --headline / --ext NAME) replayed through the
// exact renderers unp_report uses — with no predicates the section output is
// byte-identical to the live pipeline's.
//
// Query results go to stdout; --stats adds a scan-observability footer
// (segments pruned/scanned, rows, wall clock) on stderr.  Exit status: 0 on
// success, 2 on bad usage or unreadable/corrupt input.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/fault_sink.hpp"
#include "analysis/metrics.hpp"
#include "analysis/streaming_extractor.hpp"
#include "common/thread_pool.hpp"
#include "sim/campaign.hpp"
#include "store/builder.hpp"
#include "store/reader.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"
#include "util/report_sections.hpp"

namespace {

using namespace unp;
using bench::kSectionCount;

struct Options {
  std::string build_path;
  std::string store_path;
  store::Query query;
  bool count_only = false;
  bool no_prune = false;
  bool stats = false;
  std::size_t limit = 20;
  bool want[kSectionCount] = {};
  bool any_section = false;
  bool any_query_action = false;  ///< a predicate, --count, --limit or section
  std::uint64_t seed = 42;
  std::size_t threads = sim::default_campaign_threads();
  analysis::ExtractionConfig extraction;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: unp_query (--build PATH | --store PATH) [predicates] [action]\n"
      "sources:\n"
      "  --build PATH       distill the campaign into a columnar store at "
      "PATH\n"
      "  --store PATH       query an existing store (implied by --build)\n"
      "predicates (AND-ed):\n"
      "  --since T          first_seen >= T (epoch seconds)\n"
      "  --until T          first_seen <  T (epoch seconds)\n"
      "  --node BB-SS       exact node (e.g. 58-02)\n"
      "  --blade B          blade 0..62\n"
      "  --soc S            SoC 0..14\n"
      "  --class NAME       single | double | few | many | multi\n"
      "  --min-bits N       flipped bits >= N (1..32)\n"
      "  --max-bits N       flipped bits <= N (1..32)\n"
      "actions (default: list matching rows):\n"
      "  --count            print the match count only\n"
      "  --limit N          list at most N rows (default 20; 0 = all)\n"
      "  --headline | --fig N | --tab1 | --ext NAME | --all\n"
      "                     replay matches through the unp_report renderers\n"
      "tuning:\n"
      "  --no-prune         scan every segment (zone-map pruning off)\n"
      "  --stats            scan observability footer on stderr\n"
      "  --threads T        worker threads (default: hardware concurrency)\n"
      "  --seed S           campaign seed for --build (default 42)\n"
      "  --merge-window S   extraction merge window for --build\n"
      "  --cache-dir DIR    campaign cache directory for --build\n");
}

bool parse_args(int argc, char** argv, Options& opts) {
  const bench::CliParser cli("unp_query", argc, argv);
  auto parse_bound = [&](int& i, const char* flag, long lo, long hi,
                         long& out) -> bool {
    return cli.long_in(i, flag, lo, hi, out);
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--build") == 0) {
      const char* v = cli.next_value(i, "--build");
      if (!v) return false;
      opts.build_path = v;
    } else if (std::strcmp(arg, "--store") == 0) {
      const char* v = cli.next_value(i, "--store");
      if (!v) return false;
      opts.store_path = v;
    } else if (std::strcmp(arg, "--since") == 0 ||
               std::strcmp(arg, "--until") == 0) {
      const bool since = std::strcmp(arg, "--since") == 0;
      long t = 0;
      if (!cli.long_in(i, arg, bench::CliParser::kNoLowerBound,
                       bench::CliParser::kNoUpperBound, t))
        return false;
      (since ? opts.query.since : opts.query.until) = t;
      opts.any_query_action = true;
    } else if (std::strcmp(arg, "--node") == 0) {
      const char* v = cli.next_value(i, "--node");
      if (!v) return false;
      cluster::NodeId node;
      try {
        node = cluster::parse_node_name(v);
      } catch (const ContractViolation&) {
        std::fprintf(stderr, "unp_query: --node expects BB-SS, got '%s'\n", v);
        return false;
      }
      opts.query.blade = node.blade;
      opts.query.soc = node.soc;
      opts.any_query_action = true;
    } else if (std::strcmp(arg, "--blade") == 0) {
      long n = 0;
      if (!parse_bound(i, "--blade", 0, cluster::kStudyBlades - 1, n))
        return false;
      opts.query.blade = static_cast<int>(n);
      opts.any_query_action = true;
    } else if (std::strcmp(arg, "--soc") == 0) {
      long n = 0;
      if (!parse_bound(i, "--soc", 0, cluster::kSocsPerBlade - 1, n))
        return false;
      opts.query.soc = static_cast<int>(n);
      opts.any_query_action = true;
    } else if (std::strcmp(arg, "--class") == 0) {
      const char* v = cli.next_value(i, "--class");
      if (!v) return false;
      if (std::strcmp(v, "single") == 0) {
        opts.query.min_bits = 1;
        opts.query.max_bits = 1;
      } else if (std::strcmp(v, "double") == 0) {
        opts.query.min_bits = 2;
        opts.query.max_bits = 2;
      } else if (std::strcmp(v, "few") == 0) {
        opts.query.min_bits = 3;
        opts.query.max_bits = 8;
      } else if (std::strcmp(v, "many") == 0) {
        opts.query.min_bits = 9;
        opts.query.max_bits = 32;
      } else if (std::strcmp(v, "multi") == 0) {
        opts.query.min_bits = 2;
        opts.query.max_bits = 32;
      } else {
        std::fprintf(stderr,
                     "unp_query: --class expects "
                     "single|double|few|many|multi, got '%s'\n",
                     v);
        return false;
      }
      opts.any_query_action = true;
    } else if (std::strcmp(arg, "--min-bits") == 0) {
      long n = 0;
      if (!parse_bound(i, "--min-bits", 1, 32, n)) return false;
      opts.query.min_bits = static_cast<int>(n);
      opts.any_query_action = true;
    } else if (std::strcmp(arg, "--max-bits") == 0) {
      long n = 0;
      if (!parse_bound(i, "--max-bits", 1, 32, n)) return false;
      opts.query.max_bits = static_cast<int>(n);
      opts.any_query_action = true;
    } else if (std::strcmp(arg, "--count") == 0) {
      opts.count_only = true;
      opts.any_query_action = true;
    } else if (std::strcmp(arg, "--limit") == 0) {
      long n = 0;
      if (!parse_bound(i, "--limit", 0, 1L << 40, n)) return false;
      opts.limit = static_cast<std::size_t>(n);
      opts.any_query_action = true;
    } else if (std::strcmp(arg, "--no-prune") == 0) {
      opts.no_prune = true;
    } else if (std::strcmp(arg, "--stats") == 0) {
      opts.stats = true;
    } else if (std::strcmp(arg, "--all") == 0) {
      for (int s = 0; s < kSectionCount; ++s) opts.want[s] = true;
      opts.any_section = opts.any_query_action = true;
    } else if (std::strcmp(arg, "--headline") == 0) {
      opts.want[bench::kHeadline] = true;
      opts.any_section = opts.any_query_action = true;
    } else if (std::strcmp(arg, "--tab1") == 0) {
      opts.want[bench::kTab1] = true;
      opts.any_section = opts.any_query_action = true;
    } else if (std::strcmp(arg, "--fig") == 0) {
      long n = 0;
      if (!parse_bound(i, "--fig", 1, 13, n)) return false;
      opts.want[bench::kFigSections[n - 1]] = true;
      opts.any_section = opts.any_query_action = true;
    } else if (std::strcmp(arg, "--ext") == 0) {
      const char* v = cli.next_value(i, "--ext");
      if (!v) return false;
      if (std::strcmp(v, "temporal") == 0) {
        opts.want[bench::kExtTemporal] = true;
      } else if (std::strcmp(v, "markov") == 0) {
        opts.want[bench::kExtMarkov] = true;
      } else if (std::strcmp(v, "alignment") == 0) {
        opts.want[bench::kExtAlignment] = true;
      } else {
        std::fprintf(stderr,
                     "unp_query: --ext expects temporal|markov|alignment, got "
                     "'%s'\n",
                     v);
        return false;
      }
      opts.any_section = opts.any_query_action = true;
    } else if (std::strcmp(arg, "--threads") == 0) {
      long n = 0;
      if (!parse_bound(i, "--threads", 1, 4096, n)) return false;
      opts.threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!cli.u64(i, "--seed", opts.seed)) return false;
    } else if (std::strcmp(arg, "--merge-window") == 0) {
      long n = 0;
      if (!parse_bound(i, "--merge-window", 0, 1L << 40, n)) return false;
      opts.extraction.merge_window_s = n;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = cli.next_value(i, "--cache-dir");
      if (!v) return false;
      setenv("UNP_CACHE_DIR", v, 1);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unp_query: unknown option '%s'\n", arg);
      usage(stderr);
      return false;
    }
  }
  if (opts.build_path.empty() && opts.store_path.empty()) {
    std::fprintf(stderr, "unp_query: need --build PATH or --store PATH\n");
    usage(stderr);
    return false;
  }
  if (!opts.build_path.empty() && !opts.store_path.empty()) {
    std::fprintf(stderr,
                 "unp_query: --build and --store are exclusive (--build "
                 "queries the store it just wrote)\n");
    return false;
  }
  if (opts.query.min_bits > opts.query.max_bits) {
    std::fprintf(stderr, "unp_query: --min-bits exceeds --max-bits\n");
    return false;
  }
  return true;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Run the shared campaign pipeline once and persist it as a store.
void build_store(const Options& opts) {
  sim::CampaignConfig config;
  config.seed = opts.seed;
  analysis::ScanProfileSink scan;
  analysis::StreamingExtractor extractor(opts.extraction);
  const auto t0 = std::chrono::steady_clock::now();
  const bench::StreamStats acquire = bench::stream_campaign(
      config, opts.extraction, {&scan, &extractor}, opts.threads);
  const analysis::ExtractionResult extraction = extractor.finish();
  store::write_store(opts.build_path, extraction, scan, acquire.fingerprint);
  std::fprintf(stderr,
               "unp_query: built %s  (%llu faults, fingerprint %016llx, "
               "%.1f ms, stream %s)\n",
               opts.build_path.c_str(),
               static_cast<unsigned long long>(extraction.faults.size()),
               static_cast<unsigned long long>(acquire.fingerprint),
               ms_since(t0), acquire.from_cache ? "cache" : "simulated");
}

void print_rows(const std::vector<analysis::FaultRecord>& faults,
                std::size_t limit) {
  std::printf(
      "node   first_seen  last_seen   raw_logs  address       expected  "
      "actual    bits  class       temp_c\n");
  const std::size_t shown =
      limit == 0 ? faults.size() : std::min(limit, faults.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const analysis::FaultRecord& f = faults[i];
    const int bits = f.flipped_bits();
    char temp[32];
    if (f.temperature_c == telemetry::kNoTemperature)
      std::snprintf(temp, sizeof temp, "-");
    else
      std::snprintf(temp, sizeof temp, "%.1f", f.temperature_c);
    std::printf(
        "%-6s %-11lld %-11lld %-9llu 0x%010llx  %08x  %08x  %-5d %-11s %s\n",
        cluster::node_name(f.node).c_str(),
        static_cast<long long>(f.first_seen),
        static_cast<long long>(f.last_seen),
        static_cast<unsigned long long>(f.raw_logs),
        static_cast<unsigned long long>(f.virtual_address), f.expected,
        f.actual, bits, store::to_string(store::classify_bits(bits)), temp);
  }
  if (shown < faults.size())
    std::printf("... %zu more row(s); raise --limit to list them\n",
                faults.size() - shown);
}

int run_query(const Options& opts) {
  if (!opts.build_path.empty()) {
    build_store(opts);
    // --build alone is a complete command; queries ride along if given.
    if (!opts.any_query_action) return 0;
  }
  const std::string store_path =
      opts.store_path.empty() ? opts.build_path : opts.store_path;

  const auto t_open = std::chrono::steady_clock::now();
  const store::StoreReader reader = store::StoreReader::open(store_path);
  const double open_ms = ms_since(t_open);

  std::unique_ptr<ThreadPool> pool;
  if (opts.threads > 1) pool = std::make_unique<ThreadPool>(opts.threads);
  const store::ScanOptions scan_options{pool.get(), !opts.no_prune};

  store::ScanStats stats;
  const auto t_scan = std::chrono::steady_clock::now();

  if (opts.any_section) {
    // Replay the selected faults through the exact unp_report renderers.
    analysis::ExtractionResult extraction;
    extraction.faults = reader.materialize(opts.query, scan_options, &stats);
    extraction.removed_nodes = reader.extraction_meta().removed_nodes;
    extraction.total_raw_logs = reader.extraction_meta().total_raw_logs;
    extraction.removed_raw_logs = reader.extraction_meta().removed_raw_logs;

    bench::ReportAnalyzers analyzers(opts.want);
    analysis::run_fault_sinks(extraction.faults, {reader.window()},
                              analyzers.sinks(), pool.get());

    const store::StoredScanProfile& profile = reader.scan_profile();
    bench::ReportInputs inputs;
    inputs.window = reader.window();
    inputs.hours = &profile.hours;
    inputs.terabyte_hours = &profile.terabyte_hours;
    inputs.daily_terabyte_hours = profile.daily_terabyte_hours;
    inputs.total_hours = profile.total_hours;
    inputs.total_terabyte_hours = profile.total_terabyte_hours;
    inputs.monitored_nodes = profile.monitored_nodes;
    inputs.extraction = &extraction;
    analyzers.render(inputs);
  } else if (opts.count_only) {
    store::Query query = opts.query;
    query.projection = 0;  // predicate columns only
    (void)reader.run(query, scan_options, &stats);
    std::printf("%llu\n", static_cast<unsigned long long>(stats.rows_matched));
  } else {
    const std::vector<analysis::FaultRecord> faults =
        reader.materialize(opts.query, scan_options, &stats);
    print_rows(faults, opts.limit);
  }
  const double scan_ms = ms_since(t_scan);

  if (opts.stats) {
    std::fprintf(stderr, "\n== unp_query: scan stats ==\n");
    std::fprintf(stderr, "store      : %s  (fingerprint %016llx, %llu rows, "
                         "open %.1f ms)\n",
                 store_path.c_str(),
                 static_cast<unsigned long long>(reader.fingerprint()),
                 static_cast<unsigned long long>(reader.rows_total()),
                 open_ms);
    std::fprintf(stderr, "predicate  : %s\n", opts.query.describe().c_str());
    std::fprintf(stderr, "segments   : %zu total, %zu pruned, %zu scanned%s\n",
                 stats.segments_total, stats.segments_pruned,
                 stats.segments_scanned,
                 opts.no_prune ? "  (pruning off)" : "");
    std::fprintf(stderr, "rows       : %llu scanned, %llu matched\n",
                 static_cast<unsigned long long>(stats.rows_scanned),
                 static_cast<unsigned long long>(stats.rows_matched));
    std::fprintf(stderr, "scan       : %9.1f ms  (%zu threads)\n", scan_ms,
                 opts.threads);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;
  try {
    return run_query(opts);
  } catch (const ContractViolation& e) {
    // Covers telemetry::DecodeError (corrupt store/cache bytes, with byte
    // offset) and any violated pipeline contract.
    std::fprintf(stderr, "unp_query: fatal: %s\n", e.what());
    return 2;
  }
}
