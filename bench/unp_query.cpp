// Ad-hoc query CLI over the UNPF columnar fault store.
//
// Two halves, composable in one invocation:
//
//   --build PATH   run the shared campaign pipeline once (cache reload or
//                  simulate+spill, then streaming extraction) and persist
//                  faults + scan profile + extraction accounting as a
//                  columnar store at PATH;
//   --store PATH   open an existing store (implied by --build).
//
// Against the open store, SQL-lite predicate flags select faults
// (--since/--until epoch-second time range, --node/--blade/--soc location,
// --class or --min-bits/--max-bits multiplicity) and one action renders
// them: --count, a row listing (default, bounded by --limit), or any report
// section (--fig N / --tab1 / --headline / --ext NAME) replayed through the
// exact renderers unp_report uses — with no predicates the section output is
// byte-identical to the live pipeline's.
//
// The predicate/action vocabulary is parsed and rendered through
// util/query_render (shared with unp_serve), so a served response is
// byte-identical to this CLI's stdout and both front ends validate through
// the same store::QueryBuilder: an invalid request exits 2 with a
// field-naming diagnostic before any scan starts.
//
// Query results go to stdout; --stats adds a scan-observability footer
// (segments pruned/scanned, rows, wall clock) on stderr.  Exit status: 0 on
// success, 2 on bad usage or unreadable/corrupt input.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/streaming_extractor.hpp"
#include "common/thread_pool.hpp"
#include "sim/campaign.hpp"
#include "store/builder.hpp"
#include "store/reader.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"
#include "util/query_render.hpp"

namespace {

using namespace unp;

struct Options {
  std::string build_path;
  std::string store_path;
  std::vector<std::string> request_tokens;  ///< shared-vocabulary flags
  bool stats = false;
  std::uint64_t seed = 42;
  std::size_t threads = sim::default_campaign_threads();
  analysis::ExtractionConfig extraction;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: unp_query (--build PATH | --store PATH) [predicates] [action]\n"
      "sources:\n"
      "  --build PATH       distill the campaign into a columnar store at "
      "PATH\n"
      "  --store PATH       query an existing store (implied by --build)\n"
      "predicates (AND-ed):\n"
      "  --since T          first_seen >= T (epoch seconds)\n"
      "  --until T          first_seen <  T (epoch seconds)\n"
      "  --node BB-SS       exact node (e.g. 58-02)\n"
      "  --blade B          blade 0..62\n"
      "  --soc S            SoC 0..14\n"
      "  --class NAME       single | double | few | many | multi\n"
      "  --min-bits N       flipped bits >= N (1..32)\n"
      "  --max-bits N       flipped bits <= N (1..32)\n"
      "actions (default: list matching rows):\n"
      "  --count            print the match count only\n"
      "  --limit N          list at most N rows (default 20; 0 = all)\n"
      "  --headline | --fig N | --tab1 | --ext NAME | --all\n"
      "                     replay matches through the unp_report renderers\n"
      "tuning:\n"
      "  --no-prune         scan every segment (zone-map pruning off)\n"
      "  --stats            scan observability footer on stderr\n"
      "  --threads T        worker threads (default: hardware concurrency)\n"
      "  --seed S           campaign seed for --build (default 42)\n"
      "  --merge-window S   extraction merge window for --build\n"
      "  --cache-dir DIR    campaign cache directory for --build\n");
}

bool parse_args(int argc, char** argv, Options& opts) {
  const bench::CliParser cli("unp_query", argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    bool needs_value = false;
    if (bench::is_request_flag(arg, &needs_value)) {
      // Shared query vocabulary: collect verbatim, validate in one place
      // (parse_request -> QueryBuilder) before the store is touched.
      opts.request_tokens.emplace_back(arg);
      if (needs_value) {
        const char* v = cli.next_value(i, arg);
        if (!v) return false;
        opts.request_tokens.emplace_back(v);
      }
    } else if (std::strcmp(arg, "--build") == 0) {
      const char* v = cli.next_value(i, "--build");
      if (!v) return false;
      opts.build_path = v;
    } else if (std::strcmp(arg, "--store") == 0) {
      const char* v = cli.next_value(i, "--store");
      if (!v) return false;
      opts.store_path = v;
    } else if (std::strcmp(arg, "--stats") == 0) {
      opts.stats = true;
    } else if (std::strcmp(arg, "--threads") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--threads", 1, 4096, n)) return false;
      opts.threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!cli.u64(i, "--seed", opts.seed)) return false;
    } else if (std::strcmp(arg, "--merge-window") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--merge-window", 0, 1L << 40, n)) return false;
      opts.extraction.merge_window_s = n;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = cli.next_value(i, "--cache-dir");
      if (!v) return false;
      setenv("UNP_CACHE_DIR", v, 1);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unp_query: unknown option '%s'\n", arg);
      usage(stderr);
      return false;
    }
  }
  if (opts.build_path.empty() && opts.store_path.empty()) {
    std::fprintf(stderr, "unp_query: need --build PATH or --store PATH\n");
    usage(stderr);
    return false;
  }
  if (!opts.build_path.empty() && !opts.store_path.empty()) {
    std::fprintf(stderr,
                 "unp_query: --build and --store are exclusive (--build "
                 "queries the store it just wrote)\n");
    return false;
  }
  return true;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Run the shared campaign pipeline once and persist it as a store.
void build_store(const Options& opts) {
  sim::CampaignConfig config;
  config.seed = opts.seed;
  analysis::ScanProfileSink scan;
  analysis::StreamingExtractor extractor(opts.extraction);
  const auto t0 = std::chrono::steady_clock::now();
  const bench::StreamStats acquire = bench::stream_campaign(
      config, opts.extraction, {&scan, &extractor}, opts.threads);
  const analysis::ExtractionResult extraction = extractor.finish();
  store::write_store(opts.build_path, extraction, scan, acquire.fingerprint);
  std::fprintf(stderr,
               "unp_query: built %s  (%llu faults, fingerprint %016llx, "
               "%.1f ms, stream %s)\n",
               opts.build_path.c_str(),
               static_cast<unsigned long long>(extraction.faults.size()),
               static_cast<unsigned long long>(acquire.fingerprint),
               ms_since(t0), acquire.from_cache ? "cache" : "simulated");
}

int run_query(const Options& opts) {
  // Validate the request before building or opening anything: a rejected
  // request must never leave a half-done scan (or a fresh store build)
  // behind the exit-2.
  const bench::QueryRequest req = bench::parse_request(opts.request_tokens);

  if (!opts.build_path.empty()) {
    build_store(opts);
    // --build alone is a complete command; queries ride along if given.
    if (!req.any_query_action) return 0;
  }
  const std::string store_path =
      opts.store_path.empty() ? opts.build_path : opts.store_path;

  const auto t_open = std::chrono::steady_clock::now();
  const store::StoreReader reader = store::StoreReader::open(store_path);
  const double open_ms = ms_since(t_open);

  std::unique_ptr<ThreadPool> pool;
  if (opts.threads > 1) pool = std::make_unique<ThreadPool>(opts.threads);
  const store::ScanOptions scan_options{pool.get(), true, nullptr};

  store::ScanStats stats;
  const auto t_scan = std::chrono::steady_clock::now();
  bench::render_request(reader, req, scan_options, stdout, &stats);
  const double scan_ms = ms_since(t_scan);

  if (opts.stats) {
    std::fprintf(stderr, "\n== unp_query: scan stats ==\n");
    std::fprintf(stderr, "store      : %s  (fingerprint %016llx, %llu rows, "
                         "open %.1f ms)\n",
                 store_path.c_str(),
                 static_cast<unsigned long long>(reader.fingerprint()),
                 static_cast<unsigned long long>(reader.rows_total()),
                 open_ms);
    std::fprintf(stderr, "predicate  : %s\n", req.query.describe().c_str());
    std::fprintf(stderr, "segments   : %zu total, %zu pruned, %zu scanned%s\n",
                 stats.segments_total, stats.segments_pruned,
                 stats.segments_scanned,
                 req.no_prune ? "  (pruning off)" : "");
    std::fprintf(stderr, "rows       : %llu scanned, %llu matched\n",
                 static_cast<unsigned long long>(stats.rows_scanned),
                 static_cast<unsigned long long>(stats.rows_matched));
    std::fprintf(stderr, "scan       : %9.1f ms  (%zu threads)\n", scan_ms,
                 opts.threads);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;
  try {
    return run_query(opts);
  } catch (const ContractViolation& e) {
    // Covers store::QueryError (invalid request, with the offending field),
    // telemetry::DecodeError (corrupt store/cache bytes, with byte offset)
    // and any violated pipeline contract.
    std::fprintf(stderr, "unp_query: fatal: %s\n", e.what());
    return 2;
  }
}
