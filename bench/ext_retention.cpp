// Extension: the retention-time physics beneath the weak bits.
//
// Section III-H attributes the two single-fixed-bit nodes to weak cells
// that escaped burn-in (ref [17] - cells whose retention time occasionally
// collapses).  The VRT retention model quantifies that story: at idle-scan
// temperatures a 4 GB node carries ~0.005 observable weak bits (a few per
// 923-node fleet - the study saw two), while a node running at the
// overheating column's temperature would carry thousands.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "dram/retention.hpp"
#include "env/temperature.hpp"
#include "faults/weak_bit.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - VRT retention model: weak bits vs temperature",
      "a handful of weak bits fleet-wide at 30-40 degC; thousands per node "
      "at the hot column's temperature");

  const dram::RetentionModel model;
  constexpr std::uint64_t kNodeBytes = 4ULL << 30;

  TextTable table({"Node temperature", "Expected weak bits / node",
                   "Expected / 923-node fleet"});
  for (double temp : {25.0, 35.0, 45.0, 55.0, 65.0, 75.0}) {
    const double per_node = model.expected_weak_bits(kNodeBytes, temp);
    table.add_row({format_fixed(temp, 0) + " C",
                   per_node < 0.01 ? format_fixed(per_node, 5)
                                   : format_fixed(per_node, 1),
                   per_node * 923.0 < 10.0 ? format_fixed(per_node * 923.0, 2)
                                           : format_count(static_cast<std::uint64_t>(
                                                 per_node * 923.0))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("fleet observation        : 2 weak-bit nodes in 923 "
              "(Section III-H)\n");
  std::printf("model at 35 C            : %.2f observable weak bits per fleet\n",
              model.expected_weak_bits(kNodeBytes, 35.0) * 923.0);

  // Critical temperatures for increasingly marginal cells.
  std::printf("\ncritical temperature (cell starts missing refresh):\n");
  for (double retention : {2.0, 0.5, 0.1, 0.02}) {
    std::printf("  base retention %5.2f s -> %.0f C\n", retention,
                model.critical_temperature_c(retention));
  }
  std::printf("\n(a median cell needs ~95 C to leak; the weak tail crosses "
              "at the hot column's 60-70 C - the physics behind the "
              "suspicion that heat damage seeded the isolated SDC nodes)\n");

  // Emergent incidence: sample whole fleets from the model and count how
  // many weak-bit nodes each campaign would exhibit.
  std::vector<cluster::NodeId> fleet;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    fleet.push_back(cluster::node_from_index(i));
  }
  const env::TemperatureModel temperature;
  const CampaignWindow window;
  RunningStats incidence;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto config = faults::WeakBitGenerator::physical_config(
        fleet, model, temperature, window, seed);
    incidence.add(static_cast<double>(config.specs.size()));
  }
  std::printf("\nsampled fleets (50 draws): %.1f +/- %.1f weak bits per "
              "923-node campaign (study observed 2)\n",
              incidence.mean(), incidence.stddev());
  return 0;
}
