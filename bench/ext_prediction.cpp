// Extension: scoring the paper's failure-prediction claim (Section III-I).
//
// "When the system starts to experience several failures in a short period
// of time, it is relatively simple to foresee future failures."  The
// sliding-window predictor flags node-days one day ahead; we sweep the
// history window and the trigger threshold and report precision / recall /
// forewarned-error fraction over the campaign (permanent node excluded,
// like every Section III-I analysis).
#include <cstdio>

#include "analysis/regime.hpp"
#include "common/table.hpp"
#include "resilience/prediction.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - one-day-ahead failure prediction (Section III-I)",
      "bursty weak-bit episodes make next-day failures predictable from "
      "short error histories");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      data.extraction.faults, window);

  TextTable table({"History (days)", "Trigger >N", "Precision", "Recall", "F1",
                   "Forewarned errors", "Flagged node-days"});
  for (int history : {1, 3, 7}) {
    for (std::uint64_t trigger : {0u, 3u, 10u}) {
      resilience::PredictorConfig config;
      config.history_days = history;
      config.trigger_errors = trigger;
      if (regimes.excluded) config.excluded_nodes.push_back(*regimes.excluded);
      const resilience::PredictionEvaluation eval =
          resilience::evaluate_predictor(data.extraction.faults, window, config);
      table.add_row({std::to_string(history), std::to_string(trigger),
                     format_fixed(eval.precision(), 3),
                     format_fixed(eval.recall(), 3),
                     format_fixed(eval.f1(), 3),
                     format_fixed(100.0 * eval.forewarned_fraction(), 1) + "%",
                     format_count(eval.flagged_node_days)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(recall counts bad node-days seen coming; forewarned errors "
              "are the errors a scheduler could have dodged by vacating "
              "flagged nodes)\n");
  return 0;
}
