// Section III-C/D: what ECC would have seen, and the isolation of the
// undetectable errors.
//
// Paper shape: 76 double-bit errors would be detected by SECDED; 9 errors
// beyond 2 bits could pass undetected (SDC); the seven >3-bit errors all
// struck nodes with no other error during the whole study, uncorrelated
// with anything else; 4 affected nodes sit near the overheating SoC-12
// column; 6 of them predate the temperature logging.
#include <cstdio>

#include "common/table.hpp"
#include "resilience/ecc_whatif.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "SDC analysis - ECC what-if and isolation (Sections III-C/D)",
      "76 doubles detected by SECDED; 9 wider faults can be silent; the "
      "seven >3-bit faults hit otherwise error-free nodes, uncorrelated");

  const bench::CampaignData& data = bench::default_data();
  const resilience::EccWhatIf whatif =
      resilience::ecc_what_if(data.extraction.faults);

  std::printf("multi-bit faults                 : %s (paper: 85)\n",
              format_count(whatif.multibit_faults).c_str());
  std::printf("double-bit faults                : %s (paper: 76)\n",
              format_count(whatif.double_bit_faults).c_str());
  std::printf("faults beyond SECDED guarantee   : %s (paper: 9)\n",
              format_count(whatif.beyond_secded_guarantee).c_str());

  TextTable table({"Scheme", "Corrected", "Detected", "Miscorrected",
                   "Undetected", "Silent total"});
  auto add_scheme = [&](const char* name, const ecc::OutcomeCounts& c) {
    table.add_row({name, format_count(c.corrected), format_count(c.detected),
                   format_count(c.miscorrected), format_count(c.undetected),
                   format_count(c.silent())});
  };
  add_scheme("SECDED(72,64)", whatif.secded);
  add_scheme("Chipkill SSC-DSD", whatif.chipkill);
  std::printf("\n%s\n", table.render().c_str());

  const auto reports =
      resilience::sdc_isolation_report(data.extraction.faults, /*min_bits=*/4);
  std::printf("isolated >3-bit faults (paper: 7, on 5 quiet nodes):\n");
  TextTable iso({"Node", "Date (UTC)", "Bits", "Expected", "Corrupted",
                 "Ordinary faults same node", "Faults within 1h anywhere"});
  for (const auto& r : reports) {
    iso.add_row({cluster::node_name(r.fault.node),
                 format_iso8601(r.fault.first_seen).substr(0, 10),
                 std::to_string(r.fault.flipped_bits()),
                 format_hex32(r.fault.expected), format_hex32(r.fault.actual),
                 format_count(r.same_node_small_faults),
                 format_count(r.same_time_other_faults)});
  }
  std::printf("%s\n", iso.render().c_str());
  return 0;
}
