// Fig 13 + Section III-I: regime of the system for each day of the study.
//
// Paper shape (permanent-failure node excluded): 77 degraded days (18.1%)
// vs 348 normal days; ~50 errors over the normal days -> MTBF 167 h; almost
// 5000 errors over degraded days -> MTBF 0.39 h.
#include <cstdio>

#include "analysis/regime.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 13 - normal vs degraded days (Section III-I)",
      "77 degraded days (18.1%) vs 348 normal; MTBF 167 h normal vs 0.39 h "
      "degraded; loudest (permanent) node excluded first");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const analysis::AutoRegime result =
      analysis::classify_regime_excluding_loudest(data.extraction.faults, window);

  if (result.excluded) {
    std::printf("excluded permanent-failure node : %s\n\n",
                cluster::node_name(*result.excluded).c_str());
  }

  // Calendar strip: one character per day ('.' normal, '#' degraded),
  // wrapped by month.
  std::printf("campaign calendar (.=normal  #=degraded):\n");
  int cur_month = -1;
  std::string line;
  for (std::size_t d = 0; d < result.regime.degraded.size(); ++d) {
    const TimePoint t = window.start + static_cast<TimePoint>(d) * kSecondsPerDay;
    if (t >= window.end) break;
    const CivilDateTime c = to_civil_utc(t);
    if (c.month != cur_month) {
      if (!line.empty()) std::printf("%s\n", line.c_str());
      char label[16];
      std::snprintf(label, sizeof label, "%04d-%02d ", c.year, c.month);
      line = label;
      cur_month = c.month;
    }
    line += result.regime.degraded[d] ? '#' : '.';
  }
  if (!line.empty()) std::printf("%s\n", line.c_str());

  const analysis::RegimeResult& regime = result.regime;
  std::printf("\nnormal days     : %llu\n",
              static_cast<unsigned long long>(regime.normal_days));
  std::printf("degraded days   : %llu (%.1f%%; paper: 77 = 18.1%%)\n",
              static_cast<unsigned long long>(regime.degraded_days),
              100.0 * regime.degraded_fraction());
  std::printf("normal errors   : %llu (paper: ~50)\n",
              static_cast<unsigned long long>(regime.normal_errors));
  std::printf("degraded errors : %llu (paper: ~5000)\n",
              static_cast<unsigned long long>(regime.degraded_errors));
  std::printf("normal MTBF     : %.0f h (paper: 167 h)\n",
              regime.normal_mtbf_hours);
  std::printf("degraded MTBF   : %.2f h (paper: 0.39 h)\n",
              regime.degraded_mtbf_hours);
  return 0;
}
