// Fig 13 + Section III-I: regime of the system for each day of the study.
//
// Paper shape (permanent-failure node excluded): 77 degraded days (18.1%)
// vs 348 normal days; ~50 errors over the normal days -> MTBF 167 h; almost
// 5000 errors over degraded days -> MTBF 0.39 h.
#include "analysis/regime.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  bench::print_fig13(
      analysis::classify_regime_excluding_loudest(data.extraction.faults,
                                                  window),
      window);
  return 0;
}
