// Extension: error rate vs solar elevation - Fig 6 done properly.
//
// The paper bins multi-bit errors by wall-clock hour and eyeballs the sun;
// here each multi-bit fault is tagged with the sun's *elevation* at its
// timestamp, and counts are normalized by the fleet's exposure to each
// elevation band (wall time spent in the band over the campaign).  A
// neutron-driven mechanism must show a monotone rate increase with
// elevation; a flat profile would falsify the cosmic-ray reading.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "env/solar.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - multi-bit error rate vs solar elevation",
      "exposure-normalized rates must rise monotonically with the sun");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();

  // Elevation bands: night, low, mid, high sun.
  const double edges[] = {-90.0, 0.0, 20.0, 40.0, 90.0};
  const char* labels[] = {"night (<0 deg)", "low (0-20 deg)", "mid (20-40 deg)",
                          "high (>40 deg)"};
  constexpr int kBands = 4;

  auto band_of = [&](double elevation) {
    for (int b = 0; b < kBands; ++b) {
      if (elevation < edges[b + 1]) return b;
    }
    return kBands - 1;
  };

  // Fleet exposure per band: sample the campaign every 15 minutes (the
  // fleet's scan duty is hour-of-day-uniform, so wall time is the right
  // exposure proxy).
  double exposure_h[kBands] = {};
  for (TimePoint t = window.start; t < window.end; t += 900) {
    exposure_h[band_of(env::solar_elevation_deg(t))] += 0.25;
  }

  std::uint64_t multibit[kBands] = {};
  std::uint64_t singles[kBands] = {};
  for (const auto& f : data.extraction.faults) {
    const int band = band_of(env::solar_elevation_deg(f.first_seen));
    if (f.is_multibit()) {
      ++multibit[band];
    } else {
      ++singles[band];
    }
  }

  TextTable table({"Solar elevation", "Exposure (h)", "Multi-bit errors",
                   "Rate (per 1000 h)", "Single-bit rate (/1000 h)"});
  std::vector<double> rates;
  for (int b = 0; b < kBands; ++b) {
    const double rate =
        exposure_h[b] > 0 ? static_cast<double>(multibit[b]) / exposure_h[b] * 1000.0
                          : 0.0;
    const double single_rate =
        exposure_h[b] > 0 ? static_cast<double>(singles[b]) / exposure_h[b] * 1000.0
                          : 0.0;
    rates.push_back(rate);
    table.add_row({labels[b], format_fixed(exposure_h[b], 0),
                   format_count(multibit[b]), format_fixed(rate, 2),
                   format_fixed(single_rate, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  // Seasonal confound warning: the >40-degree band only exists around
  // summer midday, while the susceptible-site burst peaks in November when
  // the sun never climbs past ~30 degrees - so the top band under-counts.
  // The robust claim is daylight vs night.
  double day_exposure = 0.0, night_exposure = exposure_h[0];
  std::uint64_t day_multibit = 0, night_multibit = multibit[0];
  for (int b = 1; b < kBands; ++b) {
    day_exposure += exposure_h[b];
    day_multibit += multibit[b];
  }
  const double day_rate =
      day_exposure > 0 ? static_cast<double>(day_multibit) / day_exposure : 0.0;
  const double night_rate =
      night_exposure > 0 ? static_cast<double>(night_multibit) / night_exposure
                         : 0.0;
  std::printf("sun-up multi-bit rate   : %.2f / 1000 h\n", 1000.0 * day_rate);
  std::printf("night multi-bit rate    : %.2f / 1000 h\n", 1000.0 * night_rate);
  std::printf("sun-up / night ratio    : %.1fx (neutron mechanism confirmed; "
              "the top band is season-confounded with the November burst)\n",
              night_rate > 0 ? day_rate / night_rate : 0.0);
  return 0;
}
