// Extension experiment (Section VI future work): "stress test our system by
// turning on the nodes with heating issues and monitoring them as well as
// their neighbors."
//
// We rerun the campaign with the SoC-12 shutdown cancelled (the column
// stays powered and scanned all year) and compare the per-slot error rates
// of the hot column and its neighbours against the baseline run.
#include <cstdio>

#include "analysis/extraction.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"

namespace {

struct SlotRates {
  double soc12_hours = 0.0;
  std::uint64_t soc12_errors = 0;
  double neighbor_hours = 0.0;
  std::uint64_t neighbor_errors = 0;

  [[nodiscard]] double soc12_rate() const {
    return soc12_hours > 0 ? static_cast<double>(soc12_errors) / soc12_hours : 0;
  }
  [[nodiscard]] double neighbor_rate() const {
    return neighbor_hours > 0
               ? static_cast<double>(neighbor_errors) / neighbor_hours
               : 0;
  }
};

SlotRates measure(const unp::sim::CampaignResult& campaign) {
  using namespace unp;
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);
  SlotRates rates;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    const double hours = campaign.archive.log(node).monitored_hours();
    if (node.soc == cluster::kOverheatingSoc) {
      rates.soc12_hours += hours;
    } else if (node.soc == cluster::kOverheatingSoc - 1 ||
               node.soc == cluster::kOverheatingSoc + 1) {
      rates.neighbor_hours += hours;
    }
  }
  for (const auto& f : extraction.faults) {
    // Skip the three pathological nodes so the hot-column signal shows.
    if (f.node == cluster::NodeId{2, 4} || f.node == cluster::NodeId{4, 5} ||
        f.node == cluster::NodeId{58, 2}) {
      continue;
    }
    if (f.node.soc == cluster::kOverheatingSoc) {
      ++rates.soc12_errors;
    } else if (f.node.soc == cluster::kOverheatingSoc - 1 ||
               f.node.soc == cluster::kOverheatingSoc + 1) {
      ++rates.neighbor_errors;
    }
  }
  return rates;
}

}  // namespace

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - overheating-column stress test (Section VI future work)",
      "keeping SoC-12 powered multiplies its scanned hours and exposes the "
      "heat-stressed error rate against its neighbours");

  const SlotRates baseline = measure(sim::default_campaign());

  sim::CampaignConfig stress;
  // Cancel the admin shutdown: the column stays up all campaign.
  stress.availability.overheat_shutdown = stress.window.end;
  const sim::CampaignResult stressed = sim::run_campaign(stress);
  const SlotRates after = measure(stressed);

  TextTable table({"Run", "SoC-12 hours", "SoC-12 errors", "SoC-12 err/Mh",
                   "Neighbor err/Mh"});
  auto add = [&](const char* name, const SlotRates& r) {
    table.add_row({name, format_fixed(r.soc12_hours, 0),
                   format_count(r.soc12_errors),
                   format_fixed(r.soc12_rate() * 1e6, 1),
                   format_fixed(r.neighbor_rate() * 1e6, 1)});
  };
  add("baseline (shutdown in July)", baseline);
  add("stress (column powered all year)", after);
  std::printf("%s\n", table.render().c_str());

  std::printf("scanned-hours gained on the hot column : %.0f\n",
              after.soc12_hours - baseline.soc12_hours);
  std::printf("hot column vs neighbours error ratio   : %.1fx\n",
              after.neighbor_rate() > 0
                  ? after.soc12_rate() / after.neighbor_rate()
                  : 0.0);
  return 0;
}
