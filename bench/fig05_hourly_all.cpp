// Fig 5: number of errors per hour of day, per corrupted-bit class.
//
// Paper shape: single-bit errors dominate and are spread homogeneously
// across the day - no hour stands out when all corruptions are counted.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 5 - errors per hour of day, by corrupted bits",
      "single-bit dominates every hour; overall distribution homogeneous "
      "across the day");

  const bench::CampaignData& data = bench::default_data();
  const analysis::HourOfDayProfile profile =
      analysis::hour_of_day_profile(data.extraction.faults);

  TextTable table({"Hour", "1", "2", "3", "4", "5", "6+", "Total"});
  for (int h = 0; h < 24; ++h) {
    std::vector<std::string> row{std::to_string(h)};
    for (int c = 0; c < analysis::kBitClasses; ++c) {
      row.push_back(std::to_string(
          profile.counts[static_cast<std::size_t>(h)][static_cast<std::size_t>(c)]));
    }
    row.push_back(format_count(profile.total(h)));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<BarEntry> bars;
  for (int h = 0; h < 24; ++h) {
    bars.push_back({(h < 10 ? "0" : "") + std::to_string(h) + "h",
                    static_cast<double>(profile.total(h))});
  }
  std::printf("%s\n", render_bars(bars, 50).c_str());

  // Homogeneity check: max/min hourly totals stay within a small factor.
  std::uint64_t lo = profile.total(0), hi = profile.total(0);
  for (int h = 1; h < 24; ++h) {
    lo = std::min(lo, profile.total(h));
    hi = std::max(hi, profile.total(h));
  }
  std::printf("hourly total spread (max/min) : %.2f (paper: homogeneous)\n",
              lo > 0 ? static_cast<double>(hi) / static_cast<double>(lo) : 0.0);
  return 0;
}
