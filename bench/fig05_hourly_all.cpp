// Fig 5: number of errors per hour of day, per corrupted-bit class.
//
// Paper shape: single-bit errors dominate and are spread homogeneously
// across the day - no hour stands out when all corruptions are counted.
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_fig05(analysis::hour_of_day_profile(data.extraction.faults));
  return 0;
}
