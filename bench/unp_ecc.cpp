// ECC evaluation engine driver: exhaustive upset enumeration and fault-
// population replay over the pluggable code set (src/ecc).
//
// Modes (combinable; at least one is required):
//
//   --exhaustive K   enumerate EVERY error pattern of weight 1..K over each
//                    selected code's codeword and tabulate the verdicts —
//                    the code's complete multi-bit-upset characterization;
//   --population     replay the campaign's extracted fault masks through
//                    each code, tallied per corruption-multiplicity class
//                    (faults come from --store, else the live pipeline);
//   --sweep          shorthand for the canonical comparison: the default
//                    code set, --exhaustive 3 plus --population.
//
// --check-classifier cross-checks the fixed mask classifier (ecc/outcome.hpp)
// against real decoding on every population mask and fails loudly on any
// disagreement — the CI gate that keeps the two ECC answers coherent.
//
// All tallies are additive u64 counters over deterministic enumeration
// orders, so output is bit-identical for any --threads value (asserted by
// tests/ecc and bench_perf_ecc).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/streaming_extractor.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "ecc/adapters.hpp"
#include "ecc/engine.hpp"
#include "ecc/outcome.hpp"
#include "ecc/registry.hpp"
#include "store/reader.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"
#include "util/figures.hpp"

namespace {

using namespace unp;

struct Options {
  std::vector<std::string> codes;  ///< empty = default sweep set
  int exhaustive_weight = 0;       ///< 0 = exhaustive mode off
  bool population = false;
  bool check_classifier = false;
  std::string store_path;
  std::uint64_t seed = 42;
  std::size_t threads = sim::default_campaign_threads();
  analysis::ExtractionConfig extraction;
  bool live_flags_used = false;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: unp_ecc [options]\n"
      "  --code SPEC        evaluate SPEC; repeatable (default: the full\n"
      "                     sweep set).  Specs: secded72 | chipkill |\n"
      "                     hamming:D | hsiao:D[/K] | bch:D/T |\n"
      "                     large:512B|1KB|4KB[/T]\n"
      "  --exhaustive K     enumerate all error patterns of weight 1..K\n"
      "                     (refused when the pattern count is intractable)\n"
      "  --population       replay extracted fault masks through each code\n"
      "  --sweep            default codes, --exhaustive 3 + --population\n"
      "  --check-classifier verify the fixed outcome classifier against\n"
      "                     real decode on every population mask (exit 1 on\n"
      "                     any disagreement)\n"
      "  --store PATH       fault source for --population: a UNPF store\n"
      "                     (default: the live campaign pipeline)\n"
      "  --seed S           campaign seed for the live source (default 42)\n"
      "  --threads T        worker threads (default: hardware concurrency)\n"
      "  --cache-dir DIR    campaign cache directory (sets UNP_CACHE_DIR)\n"
      "  --merge-window S   fault merge window in seconds (default %lld)\n",
      static_cast<long long>(analysis::ExtractionConfig{}.merge_window_s));
}

bool parse_args(int argc, char** argv, Options& opts) {
  const bench::CliParser cli("unp_ecc", argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--code") == 0) {
      const char* v = cli.next_value(i, "--code");
      if (!v) return false;
      std::string error;
      if (ecc::make_code(v, &error) == nullptr) {
        std::fprintf(stderr, "unp_ecc: %s\n", error.c_str());
        return false;
      }
      opts.codes.emplace_back(v);
    } else if (std::strcmp(arg, "--exhaustive") == 0) {
      long k = 0;
      if (!cli.long_in(i, "--exhaustive", 1, 64, k)) return false;
      opts.exhaustive_weight = static_cast<int>(k);
    } else if (std::strcmp(arg, "--population") == 0) {
      opts.population = true;
    } else if (std::strcmp(arg, "--sweep") == 0) {
      if (opts.exhaustive_weight == 0) opts.exhaustive_weight = 3;
      opts.population = true;
    } else if (std::strcmp(arg, "--check-classifier") == 0) {
      opts.check_classifier = true;
    } else if (std::strcmp(arg, "--store") == 0) {
      const char* v = cli.next_value(i, "--store");
      if (!v) return false;
      opts.store_path = v;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!cli.u64(i, "--seed", opts.seed)) return false;
      opts.live_flags_used = true;
    } else if (std::strcmp(arg, "--threads") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--threads", 1, bench::CliParser::kNoUpperBound, n))
        return false;
      opts.threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = cli.next_value(i, "--cache-dir");
      if (!v) return false;
      setenv("UNP_CACHE_DIR", v, 1);
      opts.live_flags_used = true;
    } else if (std::strcmp(arg, "--merge-window") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--merge-window", 0, bench::CliParser::kNoUpperBound,
                       n))
        return false;
      opts.extraction.merge_window_s = n;
      opts.live_flags_used = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unp_ecc: unknown option '%s'\n", arg);
      usage(stderr);
      return false;
    }
  }
  if (opts.exhaustive_weight == 0 && !opts.population) {
    std::fprintf(stderr,
                 "unp_ecc: nothing to do — pass --exhaustive K, --population, "
                 "or --sweep\n");
    usage(stderr);
    return false;
  }
  const bool needs_population = opts.population || opts.check_classifier;
  if (!needs_population && !opts.store_path.empty()) {
    std::fprintf(stderr,
                 "unp_ecc: --store supplies the --population fault source; "
                 "pass --population (or --sweep) with it\n");
    return false;
  }
  if (!opts.store_path.empty() && opts.live_flags_used) {
    std::fprintf(stderr,
                 "unp_ecc: --store replays a prebuilt store; --seed, "
                 "--merge-window and --cache-dir configure the live pipeline "
                 "and cannot apply to it\n");
    return false;
  }
  if (opts.check_classifier && !opts.population) {
    std::fprintf(stderr,
                 "unp_ecc: --check-classifier verifies population masks; "
                 "pass --population (or --sweep) with it\n");
    return false;
  }
  return true;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Workload ceiling for --exhaustive: enumerating beyond this many patterns
/// for one code is refused with the estimate instead of running for hours.
constexpr std::uint64_t kMaxExhaustivePatterns = 2'000'000'000ULL;

int run_exhaustive(const std::vector<std::unique_ptr<ecc::Code>>& codes,
                   int max_weight, ThreadPool& pool) {
  bench::print_header(
      "ECC evaluation engine - exhaustive multi-bit-upset enumeration",
      "every C(n,k) error pattern per code for k<=" +
          std::to_string(max_weight) +
          "; verdict = real decode vs injected truth");

  for (const auto& code : codes) {
    const ecc::CodeGeometry geom = code->geometry();
    std::uint64_t workload = 0;
    for (int k = 1; k <= max_weight; ++k) {
      const std::uint64_t patterns = ecc::binomial(geom.codeword_bits, k);
      workload = patterns == UINT64_MAX ? UINT64_MAX
                                        : std::max(workload + patterns, workload);
    }
    if (workload > kMaxExhaustivePatterns) {
      std::fprintf(stderr,
                   "unp_ecc: refusing exhaustive K=%d for %s: ~%llu patterns "
                   "(limit %llu); lower K or pick a shorter code\n",
                   max_weight, std::string(code->name()).c_str(),
                   static_cast<unsigned long long>(workload),
                   static_cast<unsigned long long>(kMaxExhaustivePatterns));
      return 2;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const ecc::ExhaustiveResult result =
        ecc::evaluate_exhaustive(*code, max_weight, pool);
    const double run_ms = ms_since(t0);

    std::printf("%s  (n=%d, data=%d, overhead %.1f%%, guarantees %d/%d)\n",
                result.code.c_str(), geom.codeword_bits, geom.data_bits,
                100.0 * geom.overhead_fraction(), geom.guaranteed_correct,
                geom.guaranteed_detect);
    TextTable table({"Weight", "Patterns", "Correct", "Miscorrect", "Detected",
                     "SDC", "Silent"});
    for (const auto& w : result.weights) {
      table.add_row(
          {std::to_string(w.weight), format_count(w.patterns),
           format_count(w.counts.correct),
           format_count(w.counts.miscorrect),
           format_count(w.counts.detect_only),
           format_count(w.counts.sdc),
           format_fixed(100.0 *
                                   static_cast<double>(w.counts.silent()) /
                                   static_cast<double>(w.patterns),
                               4) +
               "%"});
    }
    std::printf("%s\n", table.render().c_str());
    std::fprintf(stderr, "exhaustive %-14s : %9.1f ms  (%llu patterns)\n",
                 result.code.c_str(), run_ms,
                 static_cast<unsigned long long>(result.total_patterns()));
  }
  return 0;
}

/// Map the fixed classifier's vocabulary onto the engine's.
ecc::Verdict verdict_of(ecc::EccOutcome outcome) {
  switch (outcome) {
    case ecc::EccOutcome::kNoError:
    case ecc::EccOutcome::kCorrected: return ecc::Verdict::kCorrect;
    case ecc::EccOutcome::kDetected: return ecc::Verdict::kDetectOnly;
    case ecc::EccOutcome::kMiscorrected: return ecc::Verdict::kMiscorrect;
    case ecc::EccOutcome::kUndetected: return ecc::Verdict::kSdc;
  }
  return ecc::Verdict::kDetectOnly;
}

/// Cross-check the fixed mask classifier against real decode per fault.
/// Returns the number of disagreements (printing the first few).
std::uint64_t check_classifier(const analysis::ExtractionResult& extraction) {
  const ecc::Secded7264Code secded;
  const ecc::ChipkillCode chipkill;
  std::uint64_t mismatches = 0;
  for (const auto& f : extraction.faults) {
    const Word mask = f.flip_mask();
    if (mask == 0) continue;
    const std::vector<int> bits = set_bit_positions(mask);
    const ecc::Verdict s_real = secded.evaluate(bits);
    const ecc::Verdict s_cls = verdict_of(ecc::secded_outcome(f.expected, f.actual));
    const ecc::Verdict c_real = chipkill.evaluate(bits);
    const ecc::Verdict c_cls =
        verdict_of(ecc::chipkill_outcome(f.expected, f.actual));
    if (s_real != s_cls || c_real != c_cls) {
      if (++mismatches <= 5) {
        std::fprintf(stderr,
                     "unp_ecc: classifier disagreement on mask %08x: "
                     "secded %s vs %s, chipkill %s vs %s\n",
                     mask, ecc::to_string(s_cls), ecc::to_string(s_real),
                     ecc::to_string(c_cls), ecc::to_string(c_real));
      }
    }
  }
  return mismatches;
}

int run(const Options& opts) {
  std::vector<std::unique_ptr<ecc::Code>> codes;
  const std::vector<std::string>& specs =
      opts.codes.empty() ? ecc::default_code_specs() : opts.codes;
  for (const auto& spec : specs) codes.push_back(ecc::make_code(spec));

  ThreadPool pool(opts.threads);

  if (opts.exhaustive_weight > 0) {
    const int rc = run_exhaustive(codes, opts.exhaustive_weight, pool);
    if (rc != 0) return rc;
  }

  if (!opts.population) return 0;

  // --- Acquire the fault population: store replay or the live pipeline. ----
  analysis::ExtractionResult extraction;
  const auto t_acquire = std::chrono::steady_clock::now();
  if (!opts.store_path.empty()) {
    const store::StoreReader reader = store::StoreReader::open(opts.store_path);
    extraction = reader.extraction_result(&pool);
  } else {
    sim::CampaignConfig config;
    config.seed = opts.seed;
    analysis::StreamingExtractor extractor(opts.extraction);
    bench::stream_campaign(config, opts.extraction, {&extractor}, opts.threads);
    extraction = extractor.finish();
  }
  const double acquire_ms = ms_since(t_acquire);

  bench::print_header(
      "ECC evaluation engine - fault-population replay",
      "the campaign's extracted corruption masks decoded by each code; "
      "outcomes per corruption-multiplicity class");

  std::vector<Word> masks;
  masks.reserve(extraction.faults.size());
  for (const auto& f : extraction.faults) masks.push_back(f.flip_mask());

  const auto t_replay = std::chrono::steady_clock::now();
  for (const auto& code : codes) {
    const ecc::PopulationResult result =
        ecc::evaluate_population(*code, masks, pool);
    const ecc::VerdictCounts total = result.total();
    std::printf("%s : %llu faults -> %llu correct, %llu miscorrect, "
                "%llu detected, %llu sdc  (silent %.4f%%)\n",
                result.code.c_str(),
                static_cast<unsigned long long>(result.faults),
                static_cast<unsigned long long>(total.correct),
                static_cast<unsigned long long>(total.miscorrect),
                static_cast<unsigned long long>(total.detect_only),
                static_cast<unsigned long long>(total.sdc),
                100.0 * result.silent_fraction());
    for (int c = 0; c < ecc::kPopulationClassCount; ++c) {
      const auto& counts = result.by_class[static_cast<std::size_t>(c)];
      if (counts.total() == 0) continue;
      std::printf("  %-8s : %llu faults, %llu silent\n",
                  ecc::to_string(static_cast<ecc::PopulationClass>(c)),
                  static_cast<unsigned long long>(counts.total()),
                  static_cast<unsigned long long>(counts.silent()));
    }
  }
  const double replay_ms = ms_since(t_replay);

  std::fprintf(stderr, "\n== unp_ecc: timings ==\n");
  std::fprintf(stderr, "population acquire (%s)   : %9.1f ms  (%zu faults)\n",
               opts.store_path.empty() ? "live" : "store", acquire_ms,
               extraction.faults.size());
  std::fprintf(stderr, "population replay (%zu codes)  : %9.1f ms\n",
               codes.size(), replay_ms);

  if (opts.check_classifier) {
    const std::uint64_t mismatches = check_classifier(extraction);
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "unp_ecc: FAIL: classifier disagrees with real decode on "
                   "%llu of %zu faults\n",
                   static_cast<unsigned long long>(mismatches),
                   extraction.faults.size());
      return 1;
    }
    std::printf("\nclassifier check: fixed classifier == real decode on all "
                "%zu fault masks\n",
                extraction.faults.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;
  try {
    return run(opts);
  } catch (const ContractViolation& e) {  // includes store::DecodeError
    std::fprintf(stderr, "unp_ecc: fatal: %s\n", e.what());
    return 2;
  }
}
