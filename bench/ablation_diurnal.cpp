// Ablation: diurnal neutron modulation on vs off (DESIGN.md #2).
//
// The Fig 6 bell (day ~2x night, noon peak) is driven entirely by the
// solar-elevation term of the flux model; with the amplitude set to zero
// the multi-bit hour-of-day profile flattens, which is exactly the paper's
// null hypothesis for the single-bit population (Fig 5).
#include <cstdio>

#include "analysis/extraction.hpp"
#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"

namespace {

unp::analysis::HourOfDayProfile run_with_amplitude(double amplitude) {
  using namespace unp;
  sim::CampaignConfig config;
  env::NeutronFluxModel::Config flux;
  flux.solar_amplitude = amplitude;
  config.faults.neutron.flux = env::NeutronFluxModel(flux);
  const sim::CampaignResult campaign = sim::run_campaign(config);
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);
  return analysis::hour_of_day_profile(extraction.faults);
}

}  // namespace

int main() {
  using namespace unp;
  bench::print_header(
      "Ablation - diurnal neutron modulation",
      "solar amplitude 3.0 reproduces Fig 6's day/night ~2; amplitude 0 "
      "flattens the multi-bit profile");

  TextTable table({"Solar amplitude", "Multi-bit day (07-18h)",
                   "Multi-bit night", "Day/night ratio"});
  for (double amplitude : {3.0, 1.0, 0.0}) {
    const analysis::HourOfDayProfile profile = run_with_amplitude(amplitude);
    std::uint64_t day = 0, night = 0;
    for (int h = 0; h < 24; ++h) {
      (h >= 7 && h <= 18 ? day : night) += profile.multibit(h);
    }
    table.add_row({format_fixed(amplitude, 1), format_count(day),
                   format_count(night),
                   format_fixed(profile.day_night_ratio_multibit(), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
