// Performance gate: the campaign-generation hot path end to end.
//
// The emission machinery makes two promises.  It is EXACT: the UNPS record
// stream is byte-identical whether it is produced by the scalar or the
// vector encode kernels, by the bulk node-log path or per-record replay, on
// any thread count, monolithically or sharded-and-merged.  And it is FAST:
// the optimized pipeline (SIMD batched encode kernels + per-thread buffer
// arenas + encode-once bulk emission) must beat the pre-kernel scalar,
// no-arena pipeline by a real margin on an archive-scale stream.  This
// bench gates both:
//
//   1. Identity matrix - a campaign slice streamed under
//      {scalar, best-dispatch} x {1, 2, 8} threads x {1, 4} shards (shards
//      written with headers and merged back); every stream must equal the
//      scalar 1-thread monolithic reference byte for byte.
//
//   2. Throughput gate - a record-dense campaign whose UNPS spill exceeds
//      16 MiB is simulated ONCE (the repo's cached-campaign bench idiom:
//      simulation is identical work on both sides and only dilutes the
//      comparison), then its records are driven through the full emission
//      pipeline - sink protocol, per-node encode, framing, stream write -
//      twice: through a frozen replica of the pre-optimization writer
//      (baseline::Writer below) and through the optimized bulk path.  Both
//      streams must equal the simulate-time reference byte for byte, and
//      the optimized side must sustain >= 1.8x the baseline's node-days/s
//      (best of N interleaved runs).
//
// Writes machine-readable results to BENCH_campaign.json (override with
// --json <path>).  --smoke shrinks the slice and skips the speedup gate
// (identity still enforced) so CI can run it on noisy shared runners.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/topology.hpp"
#include "common/simd_dispatch.hpp"
#include "sim/campaign.hpp"
#include "sim/shard.hpp"
#include "telemetry/archive.hpp"
#include "telemetry/archive_io.hpp"
#include "telemetry/binary_codec.hpp"
#include "telemetry/kernels/kernels.hpp"
#include "telemetry/shard_merge.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"

namespace {

using namespace unp;

constexpr double kMinSpeedup = 1.8;
constexpr double kMinStreamBytes = 16.0 * 1024 * 1024;

/// Error-dense slice: the background upset rate is cranked far above the
/// paper's calibrated value so the record stream reaches archive scale
/// (tens of MiB) instead of the calibrated few MB.
sim::CampaignConfig bench_config(int days, double rate) {
  sim::CampaignConfig config;
  config.seed = 42;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = config.window.start + static_cast<TimePoint>(days) * 86400;
  config.faults.background.rate_per_scanned_hour = rate;
  return config;
}

/// Record-dense slice for the throughput gate.  The scheduler is tuned for
/// short job bursts, so every node cycles through many scan sessions (and
/// frequent ALLOCFAILs) per day; together with the raised upset rate the
/// stream carries every record class in volume - short varint sections
/// (START/END/ALLOCFAIL) and the wide ERROR-run records alike.
sim::CampaignConfig perf_bench_config(int days, double rate) {
  sim::CampaignConfig config = bench_config(days, rate);
  config.planner.mean_busy_hours = 0.5;
  config.planner.min_session_seconds = 120;
  config.planner.alloc_fail_probability = 0.3;
  return config;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

const telemetry::kernels::EncodeKernels& scalar_kernels() {
  return telemetry::kernels::encode_kernels_for(simd::Isa::kScalar);
}

// ---------------------------------------------------------------------------
// The baseline: a line-for-line replica of the emission machinery as it
// stood before the kernel/arena work - scalar per-value encoding, a fresh
// unreserved body string grown push_back by push_back for every node, a
// fresh NodeLog per frame, one virtual call per record, and a temporary
// std::string allocated per frame-header varint.  It is deliberately NOT
// built from the library helpers: the library keeps getting faster, and a
// baseline that silently inherits those wins measures nothing.  Its output
// must still equal the optimized stream byte for byte - asserted every run.
namespace baseline {

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void put_f64(std::string& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void put_temp(std::string& out, double celsius) {
  if (!telemetry::has_temperature(celsius)) {
    out.push_back('\0');
    return;
  }
  out.push_back('\1');
  put_f64(out, celsius);
}

struct TimeDelta {
  TimePoint previous = 0;
  void put(std::string& out, TimePoint t) {
    put_varint(out, telemetry::zigzag_encode(t - previous));
    previous = t;
  }
};

std::string encode_node_log(const telemetry::NodeLog& log) {
  std::string out;
  {  // STARTs
    put_varint(out, log.starts().size());
    TimeDelta td;
    for (const auto& r : log.starts()) {
      td.put(out, r.time);
      put_varint(out, r.allocated_bytes);
      put_temp(out, r.temperature_c);
    }
  }
  {  // ENDs
    put_varint(out, log.ends().size());
    TimeDelta td;
    for (const auto& r : log.ends()) {
      td.put(out, r.time);
      put_temp(out, r.temperature_c);
    }
  }
  {  // ALLOCFAILs
    put_varint(out, log.alloc_fails().size());
    TimeDelta td;
    for (const auto& r : log.alloc_fails()) td.put(out, r.time);
  }
  {  // ERROR runs
    put_varint(out, log.error_runs().size());
    TimeDelta td;
    for (const auto& run : log.error_runs()) {
      td.put(out, run.first.time);
      put_varint(out, run.first.virtual_address);
      put_varint(out, run.first.expected);
      put_varint(out, run.first.actual);
      put_temp(out, run.first.temperature_c);
      put_varint(out, run.first.physical_page);
      put_varint(out, static_cast<std::uint64_t>(run.period_s));
      put_varint(out, run.count);
    }
  }
  return out;
}

void write_varint(std::ostream& os, std::uint64_t value) {
  std::string buf;
  put_varint(buf, value);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

constexpr std::uint64_t kEndFrame =
    static_cast<std::uint64_t>(cluster::kStudyNodeSlots);

class Writer final : public telemetry::RecordSink {
 public:
  explicit Writer(std::ostream& os) : os_(&os) {}

  void begin_campaign(const CampaignWindow& window) override {
    os_->write("UNPS", 4);
    os_->put('\1');  // stream version
    write_varint(*os_, telemetry::zigzag_encode(window.start));
    write_varint(*os_, telemetry::zigzag_encode(window.end));
  }
  void begin_node(cluster::NodeId) override { pending_ = telemetry::NodeLog{}; }
  void on_start(const telemetry::StartRecord& r) override {
    pending_.add_start(r);
  }
  void on_end(const telemetry::EndRecord& r) override { pending_.add_end(r); }
  void on_alloc_fail(const telemetry::AllocFailRecord& r) override {
    pending_.add_alloc_fail(r);
  }
  void on_error_run(const telemetry::ErrorRun& r) override {
    pending_.add_error_run(r);
  }
  void end_node(cluster::NodeId node) override {
    if (pending_.empty()) return;
    write_varint(*os_, static_cast<std::uint64_t>(cluster::node_index(node)));
    const std::string body = baseline::encode_node_log(pending_);
    write_varint(*os_, body.size());
    os_->write(body.data(), static_cast<std::streamsize>(body.size()));
    pending_ = telemetry::NodeLog{};
    ++frames_;
  }
  void end_campaign() override {
    write_varint(*os_, kEndFrame);
    write_varint(*os_, frames_);
    os_->flush();
  }

 private:
  std::ostream* os_;
  telemetry::NodeLog pending_;
  std::uint64_t frames_ = 0;
};

}  // namespace baseline

/// Stream the campaign through an ArchiveWriter and return (bytes, summary).
std::string stream_campaign(const sim::CampaignConfig& config,
                            const telemetry::kernels::EncodeKernels* encode,
                            std::size_t threads,
                            const sim::CampaignEmitOptions& emit,
                            sim::CampaignSummary* summary_out = nullptr) {
  std::ostringstream os(std::ios::binary);
  telemetry::ArchiveWriter writer(os, encode);
  sim::CampaignSummary summary =
      sim::run_campaign_streaming(config, {&writer}, threads, emit);
  if (summary_out != nullptr) *summary_out = std::move(summary);
  return os.str();
}

/// Shard the campaign K ways, spill each shard with a header, merge.
std::string stream_sharded(const sim::CampaignConfig& config,
                           const telemetry::kernels::EncodeKernels* encode,
                           std::size_t threads, int shards,
                           const sim::CampaignEmitOptions& emit) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  std::vector<std::string> paths;
  for (int i = 0; i < shards; ++i) {
    const std::string path = dir + "/unp_perf_campaign_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(i) + ".unph";
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    telemetry::write_shard_header(
        os, {static_cast<std::uint32_t>(shards), static_cast<std::uint32_t>(i),
             0});
    telemetry::ArchiveWriter writer(os, encode);
    (void)sim::run_campaign_shard(config, sim::ShardSpec{shards, i}, {&writer},
                                  threads, emit);
    paths.push_back(path);
  }
  std::ostringstream merged(std::ios::binary);
  telemetry::merge_shard_archives(paths, merged);
  for (const std::string& path : paths) std::remove(path.c_str());
  return merged.str();
}

/// Gate 1: the full kernel x threads x shards identity matrix.
int run_identity_matrix(const sim::CampaignConfig& config, bool smoke) {
  const std::string reference =
      stream_campaign(config, &scalar_kernels(), 1, {});
  std::printf("identity reference     : scalar, 1 thread, monolithic "
              "(%zu bytes)\n",
              reference.size());

  struct Variant {
    const telemetry::kernels::EncodeKernels* encode;
    std::size_t threads;
    int shards;
  };
  const telemetry::kernels::EncodeKernels& best =
      telemetry::kernels::active_encode_kernels();
  std::vector<Variant> variants;
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 2, 8};
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1} : std::vector<int>{1, 4};
  for (const std::size_t threads : thread_counts)
    for (const int shards : shard_counts) {
      variants.push_back({&scalar_kernels(), threads, shards});
      if (best.isa != simd::Isa::kScalar)
        variants.push_back({&best, threads, shards});
    }

  int failures = 0;
  for (const Variant& v : variants) {
    const std::string bytes =
        v.shards == 1
            ? stream_campaign(config, v.encode, v.threads, {})
            : stream_sharded(config, v.encode, v.threads, v.shards, {});
    const bool identical = bytes == reference;
    if (!identical) ++failures;
    std::printf("  %-6s x %zu threads x %d shard%s : %s\n", v.encode->name,
                v.threads, v.shards, v.shards == 1 ? " " : "s",
                identical ? "identical" : "DIVERGED");
  }
  // The legacy emit configuration must also reproduce the stream exactly —
  // otherwise the emit-path comparisons would not be apples to apples.
  sim::CampaignEmitOptions legacy;
  legacy.reuse_buffers = false;
  legacy.bulk_node_logs = false;
  legacy.encode = &scalar_kernels();
  const bool legacy_identical =
      stream_campaign(config, &scalar_kernels(), 1, legacy) == reference;
  if (!legacy_identical) ++failures;
  std::printf("  legacy emit path           : %s\n",
              legacy_identical ? "identical" : "DIVERGED");
  return failures;
}

// ---------------------------------------------------------------------------
// Gate 2: emission throughput over a cached campaign.

/// The campaign under measurement, simulated once: the materialized records,
/// the reference stream bytes (spilled during the same producer pass), and
/// the node-day denominator for the throughput metric.
struct PerfCampaign {
  telemetry::CampaignArchive archive;
  std::string reference;
  double node_days = 0.0;
};

PerfCampaign materialize(const sim::CampaignConfig& config,
                         std::size_t threads) {
  PerfCampaign out;
  std::ostringstream os(std::ios::binary);
  telemetry::ArchiveWriter writer(os);
  const sim::CampaignSummary summary = sim::run_campaign_streaming(
      config, {&writer, &out.archive}, threads, {});
  out.reference = os.str();
  out.node_days = summary.total_scanned_hours() / 24.0;
  return out;
}

/// Which emission pipeline carries the records to the stream.
enum class EmitPath {
  kBaseline,   ///< frozen pre-optimization replica (baseline::Writer)
  kPerRecord,  ///< current writer, one virtual call per record
  kBulk,       ///< encode-once bulk path (arena + EncodedNodeLog splice)
};

/// Drive every node's records through the full emission pipeline (sink
/// protocol, per-node encode, framing) into `os`.
void emit_stream(const telemetry::CampaignArchive& archive, EmitPath path,
                 const telemetry::kernels::EncodeKernels& kernels,
                 std::ostream& os) {
  if (path == EmitPath::kBaseline) {
    baseline::Writer writer(os);
    writer.begin_campaign(archive.window());
    for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
      const cluster::NodeId node = cluster::node_from_index(i);
      const telemetry::NodeLog& log = archive.log(node);
      if (log.empty()) continue;
      writer.begin_node(node);
      telemetry::replay_node_log(log, writer);
      writer.end_node(node);
    }
    writer.end_campaign();
    return;
  }
  telemetry::ArchiveWriter writer(os, &kernels);
  writer.begin_campaign(archive.window());
  std::string body;
  telemetry::EncodeArena arena;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    const telemetry::NodeLog& log = archive.log(node);
    if (log.empty()) continue;
    writer.begin_node(node);
    if (path == EmitPath::kBulk) {
      // Mirror the campaign driver: encode once into a reused buffer (in
      // the driver this happens in the producer worker), splice the bytes.
      body.clear();
      telemetry::encode_node_log_into(log, body, kernels, &arena);
      telemetry::EncodedNodeLog enc(node, log, body, kernels, &arena,
                                    /*pre_encoded=*/true);
      writer.on_node_log(enc);
    } else {
      telemetry::replay_node_log(log, writer);
    }
    writer.end_node(node);
  }
  writer.end_campaign();
}

struct Throughput {
  double node_days = 0.0;
  double best_elapsed_s = 0.0;
  std::size_t stream_bytes = 0;
  [[nodiscard]] double per_second() const noexcept {
    return node_days / best_elapsed_s;
  }
};

/// Preallocated in-memory sink for the timed runs.  An ostringstream grows
/// its buffer geometrically, and on a tens-of-MiB stream those realloc+copy
/// cycles are pure harness cost paid identically by both sides of the
/// comparison — inflating the common term and flattening the measured
/// speedup.  This buffer is sized once, before the clock starts.
class StringSink : public std::streambuf {
 public:
  explicit StringSink(std::size_t capacity) {
    data_.resize(capacity);
    setp(data_.data(), data_.data() + data_.size());
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(pptr() - pbase());
  }
  [[nodiscard]] std::string_view bytes() const noexcept {
    return {data_.data(), size()};
  }

 protected:
  int_type overflow(int_type ch) override {
    const std::size_t used = size();
    data_.resize(data_.size() * 2);
    setp(data_.data(), data_.data() + data_.size());
    pbump(static_cast<int>(used));
    return ch == traits_type::eof() ? 0 : sputc(traits_type::to_char_type(ch));
  }

 private:
  std::string data_;
};

constexpr std::size_t kSinkCapacity = 64u * 1024 * 1024;

/// Best-of-N timed emission of the cached campaign.
Throughput measure_emit(const PerfCampaign& campaign, EmitPath path,
                        const telemetry::kernels::EncodeKernels& kernels,
                        int reps) {
  Throughput result;
  result.node_days = campaign.node_days;
  for (int rep = 0; rep < reps; ++rep) {
    StringSink sink(kSinkCapacity);
    std::ostream os(&sink);
    const auto t0 = std::chrono::steady_clock::now();
    emit_stream(campaign.archive, path, kernels, os);
    const double elapsed = seconds_since(t0);
    if (rep == 0 || elapsed < result.best_elapsed_s) {
      result.best_elapsed_s = elapsed;
      result.stream_bytes = sink.size();
    }
  }
  return result;
}

/// Both measured pipelines must reproduce the simulate-time reference
/// stream exactly; a baseline that drifted from the format would make the
/// timing comparison meaningless.  Returns the number of divergent paths.
int check_emit_identity(const PerfCampaign& campaign,
                        const telemetry::kernels::EncodeKernels& best) {
  struct Row {
    const char* label;
    EmitPath path;
    const telemetry::kernels::EncodeKernels* kernels;
  };
  const Row rows[] = {
      {"baseline writer ", EmitPath::kBaseline, &scalar_kernels()},
      {"optimized bulk  ", EmitPath::kBulk, &best},
  };
  int failures = 0;
  for (const Row& row : rows) {
    StringSink sink(kSinkCapacity);
    std::ostream os(&sink);
    emit_stream(campaign.archive, row.path, *row.kernels, os);
    const bool identical = sink.bytes() == campaign.reference;
    if (!identical) ++failures;
    std::printf("  %s           : %s\n", row.label,
                identical ? "identical" : "DIVERGED");
  }
  return failures;
}

void write_json(const std::string& path, bool smoke, int identity_failures,
                const Throughput& legacy, const Throughput& optimized,
                const char* optimized_kernels, double speedup, bool size_ok,
                bool speedup_ok, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_campaign\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"identity_failures\": %d,\n"
               "  \"stream_bytes\": %zu,\n"
               "  \"stream_bytes_min\": %.0f,\n"
               "  \"stream_size_ok\": %s,\n"
               "  \"node_days\": %.1f,\n"
               "  \"legacy_elapsed_s\": %.3f,\n"
               "  \"legacy_node_days_per_s\": %.1f,\n"
               "  \"optimized_kernels\": \"%s\",\n"
               "  \"optimized_elapsed_s\": %.3f,\n"
               "  \"optimized_node_days_per_s\": %.1f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"min_speedup\": %.2f,\n"
               "  \"speedup_ok\": %s,\n"
               "  \"pass\": %s\n"
               "}\n",
               smoke ? "smoke" : "full", identity_failures,
               optimized.stream_bytes, kMinStreamBytes,
               size_ok ? "true" : "false", optimized.node_days,
               legacy.best_elapsed_s, legacy.per_second(), optimized_kernels,
               optimized.best_elapsed_s, optimized.per_second(), speedup,
               kMinSpeedup, speedup_ok ? "true" : "false",
               pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_campaign.json";
  bool smoke = false;
  bool matrix = false;
  long reps = 5;
  const bench::CliParser cli("bench_perf_campaign", argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = cli.next_value(i, "--json");
      if (v == nullptr) return 2;
      json_path = v;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--matrix") == 0) {
      matrix = true;
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      if (!cli.long_in(i, "--reps", 1, bench::CliParser::kNoUpperBound, reps))
        return 2;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--smoke] [--matrix] "
                   "[--reps <n>]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "perf_campaign - campaign-generation hot path end to end",
      "record stream byte-identical across kernels/threads/shards; optimized "
      "emit (SIMD kernels + arenas + bulk logs) vs pre-optimization baseline "
      "in node-days/s");

  // Identity runs end to end on a short slice (byte equality does not need
  // scale); throughput runs on an archive-scale cached campaign.
  const sim::CampaignConfig identity_config =
      bench_config(smoke ? 2 : 5, smoke ? 0.5 : 1.0);
  const sim::CampaignConfig perf_config =
      perf_bench_config(smoke ? 3 : 70, smoke ? 1.0 : 2.0);

  const std::size_t threads = sim::default_campaign_threads();
  const telemetry::kernels::EncodeKernels& best =
      telemetry::kernels::active_encode_kernels();

  if (matrix) {
    // Diagnostic breakdown: how much each emission stage contributes.
    const PerfCampaign campaign = materialize(perf_config, threads);
    struct Step {
      const char* label;
      EmitPath path;
      const telemetry::kernels::EncodeKernels* kernels;
    };
    const Step steps[] = {
        {"baseline (fresh buffers, per record)", EmitPath::kBaseline,
         &scalar_kernels()},
        {"+ arenas (reused buffers)           ", EmitPath::kPerRecord,
         &scalar_kernels()},
        {"+ bulk node logs                    ", EmitPath::kBulk,
         &scalar_kernels()},
        {"+ SIMD kernels                      ", EmitPath::kBulk, &best},
    };
    double base_s = 0.0;
    for (const Step& step : steps) {
      const Throughput t = measure_emit(campaign, step.path, *step.kernels,
                                        static_cast<int>(reps));
      if (base_s == 0.0) base_s = t.best_elapsed_s;
      std::printf("%s : %.3f s  (%.1f node-days/s, %.2fx)\n", step.label,
                  t.best_elapsed_s, t.per_second(), base_s / t.best_elapsed_s);
    }
    return 0;
  }

  int identity_failures = run_identity_matrix(identity_config, smoke);

  const PerfCampaign campaign = materialize(perf_config, threads);
  std::printf("cached campaign        : %.1f node-days, %zu bytes\n",
              campaign.node_days, campaign.reference.size());
  identity_failures += check_emit_identity(campaign, best);

  // Interleave the two sides rep by rep: the bench often shares a machine
  // with other load, and alternating exposes both pipelines to the same
  // drift before best-of-N picks each side's cleanest run.
  const int effective_reps = smoke ? 1 : static_cast<int>(reps);
  Throughput legacy, optimized;
  for (int rep = 0; rep < effective_reps; ++rep) {
    const Throughput l =
        measure_emit(campaign, EmitPath::kBaseline, scalar_kernels(), 1);
    const Throughput o = measure_emit(campaign, EmitPath::kBulk, best, 1);
    if (rep == 0 || l.best_elapsed_s < legacy.best_elapsed_s) legacy = l;
    if (rep == 0 || o.best_elapsed_s < optimized.best_elapsed_s) optimized = o;
  }

  const double speedup = legacy.best_elapsed_s / optimized.best_elapsed_s;
  const bool size_ok =
      smoke || static_cast<double>(optimized.stream_bytes) >= kMinStreamBytes;
  const bool speedup_ok = smoke || speedup >= kMinSpeedup;

  std::printf("\nstream size            : %.1f MiB (gate needs >= %.0f MiB)%s\n",
              static_cast<double>(optimized.stream_bytes) / (1024.0 * 1024.0),
              kMinStreamBytes / (1024.0 * 1024.0),
              size_ok ? "" : "  TOO SMALL");
  std::printf("baseline (scalar, churn) : %.1f node-days/s  (%.3f s)\n",
              legacy.per_second(), legacy.best_elapsed_s);
  std::printf("optimized (%-6s)       : %.1f node-days/s  (%.3f s)\n",
              best.name, optimized.per_second(), optimized.best_elapsed_s);
  std::printf("speedup                : %.2fx (gate %.2fx)%s\n", speedup,
              kMinSpeedup,
              smoke ? "  [not gated in smoke mode]"
                    : (speedup_ok ? "" : "  BELOW GATE"));

  const bool pass = identity_failures == 0 && size_ok && speedup_ok;
  write_json(json_path, smoke, identity_failures, legacy, optimized, best.name,
             speedup, size_ok, speedup_ok, pass);
  std::printf("results written to %s\n", json_path.c_str());
  if (!pass) {
    std::printf("\nPERF GATE FAILED (%s%s%s)\n",
                identity_failures != 0 ? "identity" : "",
                identity_failures != 0 && (!size_ok || !speedup_ok) ? ", " : "",
                !size_ok ? "stream size" : (!speedup_ok ? "speedup" : ""));
    return 1;
  }
  std::printf("\nperf gates met\n");
  return 0;
}
