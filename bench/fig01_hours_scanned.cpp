// Fig 1: hours each node was scanned for memory errors.
//
// Paper shape: most nodes ~5000 h; SoC-0 of the first blades blank (login
// nodes); the SoC-12 column starved (overheating shutdown); blade 33 cut
// short; a few dead nodes blank.
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_fig01(analysis::hours_scanned_grid(data.campaign->archive));
  return 0;
}
