// Fig 1: hours each node was scanned for memory errors.
//
// Paper shape: most nodes ~5000 h; SoC-0 of the first blades blank (login
// nodes); the SoC-12 column starved (overheating shutdown); blade 33 cut
// short; a few dead nodes blank.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 1 - hours each node was scanned",
      "most nodes ~5000 h; login SoC-0 blank on first blades; SoC-12 column "
      "starved; blade 33 truncated");

  const bench::CampaignData& data = bench::default_data();
  const Grid2D grid = analysis::hours_scanned_grid(data.campaign->archive);

  std::printf("rows = blades 0..%zu, cols = SoCs 0..%zu; max = %.0f h\n\n",
              grid.rows() - 1, grid.cols() - 1, grid.max_value());
  std::printf("%s\n", render_heatmap(grid).c_str());

  // Column means expose the SoC-12 starvation; a few reference columns.
  RunningStats all;
  RunningStats soc12;
  for (std::size_t b = 0; b < grid.rows(); ++b) {
    for (std::size_t s = 0; s < grid.cols(); ++s) {
      if (grid.at(b, s) <= 0.0) continue;
      (s == 12 ? soc12 : all).add(grid.at(b, s));
    }
  }
  std::printf("mean hours, SoCs != 12 : %.0f\n", all.mean());
  std::printf("mean hours, SoC 12     : %.0f (overheating column)\n",
              soc12.mean());
  return 0;
}
