// Extension: how fast must production scrubbing be?
//
// On a SECDED machine a fault only matters if a *second* fault lands in
// the same ECC word before the scrubber cleans it.  The uniform-Poisson
// model says that is astronomically rare at the fleet's background rate -
// but the campaign's faults are not uniform: weak bits re-leak into the
// same word for weeks and the degrading component re-strikes its address
// pool.  The trace replay shows the gap between the two answers.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "resilience/scrubbing.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - scrub-interval requirements (SECDED accumulation)",
      "uniform model: accumulation ~never; the real clustered trace "
      "accumulates at any practical interval - scrubbing cannot replace "
      "node replacement");

  const bench::CampaignData& data = bench::default_data();
  const analysis::HeadlineStats stats =
      analysis::headline_stats(data.campaign->archive, data.extraction);

  // Fleet-average single-bit rate per node-hour (dominated by the loud
  // nodes; that is the point).
  const double rate = static_cast<double>(stats.independent_faults) /
                      stats.monitored_node_hours;
  std::printf("fleet fault rate: %.2e faults per node-hour\n\n", rate);

  TextTable table({"Scrub interval", "Analytic acc./node-year (uniform)",
                   "Trace accumulations", "Distinct-bit (uncorrectable)"});
  const std::vector<double> intervals{1.0, 6.0, 24.0, 24.0 * 7, 24.0 * 30};
  const auto sweep =
      resilience::scrubbing_sweep(data.extraction.faults, intervals);
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    resilience::ScrubbingConfig config;
    config.scrub_interval_h = intervals[i];
    const double analytic = resilience::analytic_accumulation_per_node_year(
        rate, cluster::kScannableBytes, config);
    char label[32];
    if (intervals[i] < 24.0) {
      std::snprintf(label, sizeof label, "%.0f h", intervals[i]);
    } else {
      std::snprintf(label, sizeof label, "%.0f d", intervals[i] / 24.0);
    }
    table.add_row({label, format_fixed(analytic, 9),
                   format_count(sweep[i].accumulations),
                   format_count(sweep[i].distinct_bit_accumulations)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "(uniform-model accumulations are ~1e-6/node-year even at monthly\n"
      " scrubbing, yet the trace accumulates thousands of same-word pairs:\n"
      " fault clustering - not average rate - sets the ECC failure budget,\n"
      " which is why the paper pushes quarantine/replacement over cleverer\n"
      " per-word protection)\n");
  return 0;
}
