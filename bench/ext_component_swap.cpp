// Extension experiment (the paper's future work, Section VI): "swap some
// components from the most faulty nodes with some healthy nodes to further
// improve the memory error characterization."
//
// We move the degrading component from node 02-04 into healthy node 40-08
// on 2015-10-01 and watch where the errors go.  If the per-day error series
// follows the component (02-04 silent after the swap, 40-08 erupting with
// the same ramp and the same corruption-pattern pool), the root cause is
// the component, not the slot - the diagnostic the authors wanted.
#include <cstdio>

#include "analysis/bitstats.hpp"
#include "analysis/extraction.hpp"
#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - component-swap experiment (Section VI future work)",
      "errors must follow the swapped component to its new host, with the "
      "same corruption-pattern pool");

  const TimePoint swap = from_civil_utc({2015, 10, 1, 9, 0, 0});
  const cluster::NodeId old_host{2, 4};
  const cluster::NodeId new_host{40, 8};

  sim::CampaignConfig config;
  config.faults.degrading.swap_date = swap;
  config.faults.degrading.swap_to = new_host;
  // The experiment ends mid-December and caps the ramp: enough signal to
  // read the verdict without letting the exponential run away for months.
  config.window.end = from_civil_utc({2015, 12, 15, 0, 0, 0});
  config.faults.degrading.max_rate_per_scanned_hour = 60.0;
  // The administrative outages tied to 02-04's story don't apply here.
  config.wire_special_outages = false;
  const sim::CampaignResult campaign = sim::run_campaign(config);
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);

  std::uint64_t old_before = 0, old_after = 0, new_before = 0, new_after = 0;
  for (const auto& f : extraction.faults) {
    if (f.node == old_host) {
      (f.first_seen < swap ? old_before : old_after)++;
    } else if (f.node == new_host) {
      (f.first_seen < swap ? new_before : new_after)++;
    }
  }

  TextTable table({"Node", "Faults before swap", "Faults after swap"});
  table.add_row({cluster::node_name(old_host) + " (original host)",
                 format_count(old_before), format_count(old_after)});
  table.add_row({cluster::node_name(new_host) + " (receives component)",
                 format_count(new_before), format_count(new_after)});
  std::printf("swap date: %s\n\n%s\n", format_iso8601(swap).c_str(),
              table.render().c_str());

  const analysis::NodePatternProfile old_profile =
      analysis::node_pattern_profile(extraction.faults, old_host);
  const analysis::NodePatternProfile new_profile =
      analysis::node_pattern_profile(extraction.faults, new_host);
  std::printf("distinct patterns %s : %s\n", cluster::node_name(old_host).c_str(),
              format_count(old_profile.distinct_patterns).c_str());
  std::printf("distinct patterns %s : %s (same component -> same pool)\n",
              cluster::node_name(new_host).c_str(),
              format_count(new_profile.distinct_patterns).c_str());

  const bool followed = old_after < old_before / 10 && new_after > 100 &&
                        new_before < 10;
  std::printf("\nverdict: errors %s the component\n",
              followed ? "FOLLOWED" : "did NOT follow");
  return followed ? 0 : 1;
}
