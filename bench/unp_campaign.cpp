// Sharded campaign driver: the command-line face of the shard fabric.
//
// Three modes, one per fabric stage:
//
//   --shards K --shard I --out DIR
//       Simulate shard I of a K-way partition and write the self-describing
//       shard archive DIR/shard-I-of-K.unph (UNPH header + UNPS record
//       stream, sim/shard.hpp ownership rule).  Run once per I to produce a
//       complete partition; the K processes are independent and can run on
//       different machines.
//
//   --merge --out FILE SHARD...
//       Streaming K-way merge of one partition's shard archives into a
//       monolithic UNPS stream, byte-identical to the stream a single
//       un-sharded run would spill (telemetry/shard_merge.hpp).
//
//   --aggregate SHARD...
//       Merge the shard record streams in memory and print the full report.
//       The fault-level analyzers run hierarchically: faults are analyzed in
//       K per-partition sink instances whose serialized states are folded
//       into one aggregate via FaultSink::serialize_state/merge_state, so
//       the output also exercises the sink-state algebra end to end.  The
//       stdout is byte-identical to `unp_report --all` for the same seed.
//
// Report/merge output goes to stdout/--out; status goes to stderr.  Exit
// status: 0 on success, 2 on bad usage or unreadable/corrupt input.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/fault_sink.hpp"
#include "analysis/metrics.hpp"
#include "analysis/streaming_extractor.hpp"
#include "sim/campaign.hpp"
#include "sim/shard.hpp"
#include "store/builder.hpp"
#include "store/handle.hpp"
#include "telemetry/shard_merge.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"
#include "util/report_sections.hpp"

namespace {

using namespace unp;

enum class Mode { kNone, kSimulate, kMerge, kAggregate };

struct Options {
  Mode mode = Mode::kNone;
  long shards = 0;  ///< K (simulate mode)
  long shard = -1;  ///< I (simulate mode)
  std::string out;  ///< simulate: directory; merge: output file
  std::string store_out;  ///< aggregate: also distill into a UNPF store
  std::vector<std::string> inputs;  ///< shard archives (merge/aggregate)
  std::uint64_t seed = 42;
  std::size_t threads = sim::default_campaign_threads();
  analysis::ExtractionConfig extraction;
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: unp_campaign --shards K --shard I --out DIR [options]\n"
               "       unp_campaign --merge --out FILE SHARD...\n"
               "       unp_campaign --aggregate SHARD...\n"
               "  --shards K         partition the campaign into K shards\n"
               "  --shard I          simulate shard I (0-based) of the "
               "partition\n"
               "  --out PATH         output directory (simulate) or file "
               "(merge)\n"
               "  --merge            merge shard archives into one UNPS "
               "stream\n"
               "  --aggregate        merge + hierarchical analysis; prints "
               "the\n"
               "                     full report (byte-identical to "
               "unp_report --all)\n"
               "  --store-out PATH   aggregate: also distill the merged "
               "faults +\n"
               "                     scan profile into a queryable UNPF "
               "store\n"
               "  --seed S           campaign seed (default 42)\n"
               "  --threads T        worker threads (default: hardware "
               "concurrency)\n"
               "  --merge-window S   fault merge window in seconds (default "
               "%lld)\n",
               static_cast<long long>(analysis::ExtractionConfig{}.merge_window_s));
}

bool set_mode(Options& opts, Mode mode) {
  if (opts.mode != Mode::kNone && opts.mode != mode) {
    std::fprintf(stderr,
                 "unp_campaign: --shards/--shard, --merge and --aggregate "
                 "select exclusive modes\n");
    return false;
  }
  opts.mode = mode;
  return true;
}

bool parse_args(int argc, char** argv, Options& opts) {
  const bench::CliParser cli("unp_campaign", argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--shards") == 0) {
      if (!set_mode(opts, Mode::kSimulate)) return false;
      if (!cli.long_in(i, "--shards", 1, bench::CliParser::kNoUpperBound,
                       opts.shards))
        return false;
    } else if (std::strcmp(arg, "--shard") == 0) {
      if (!set_mode(opts, Mode::kSimulate)) return false;
      if (!cli.long_in(i, "--shard", 0, bench::CliParser::kNoUpperBound,
                       opts.shard))
        return false;
    } else if (std::strcmp(arg, "--merge") == 0) {
      if (!set_mode(opts, Mode::kMerge)) return false;
    } else if (std::strcmp(arg, "--aggregate") == 0) {
      if (!set_mode(opts, Mode::kAggregate)) return false;
    } else if (std::strcmp(arg, "--out") == 0) {
      const char* v = cli.next_value(i, "--out");
      if (!v) return false;
      opts.out = v;
    } else if (std::strcmp(arg, "--store-out") == 0) {
      if (!set_mode(opts, Mode::kAggregate)) return false;
      const char* v = cli.next_value(i, "--store-out");
      if (!v) return false;
      opts.store_out = v;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!cli.u64(i, "--seed", opts.seed)) return false;
    } else if (std::strcmp(arg, "--threads") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--threads", 1, bench::CliParser::kNoUpperBound, n))
        return false;
      opts.threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--merge-window") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--merge-window", 0, bench::CliParser::kNoUpperBound,
                       n))
        return false;
      opts.extraction.merge_window_s = n;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unp_campaign: unknown option '%s'\n", arg);
      usage(stderr);
      return false;
    } else {
      opts.inputs.emplace_back(arg);
    }
  }
  switch (opts.mode) {
    case Mode::kNone:
      std::fprintf(stderr, "unp_campaign: no mode selected\n");
      usage(stderr);
      return false;
    case Mode::kSimulate:
      if (opts.shards < 1 || opts.shard < 0) {
        std::fprintf(stderr,
                     "unp_campaign: simulate mode needs both --shards and "
                     "--shard\n");
        return false;
      }
      if (opts.shard >= opts.shards) {
        std::fprintf(stderr,
                     "unp_campaign: --shard must be < --shards, got %ld of "
                     "%ld\n",
                     opts.shard, opts.shards);
        return false;
      }
      if (opts.out.empty()) {
        std::fprintf(stderr,
                     "unp_campaign: simulate mode needs --out DIR\n");
        return false;
      }
      if (!opts.inputs.empty()) {
        std::fprintf(stderr,
                     "unp_campaign: simulate mode takes no shard-archive "
                     "arguments\n");
        return false;
      }
      return true;
    case Mode::kMerge:
      if (opts.out.empty()) {
        std::fprintf(stderr, "unp_campaign: --merge needs --out FILE\n");
        return false;
      }
      [[fallthrough]];
    case Mode::kAggregate:
      if (opts.inputs.empty()) {
        std::fprintf(stderr,
                     "unp_campaign: no shard archives given\n");
        return false;
      }
      return true;
  }
  return false;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Stage 1: simulate one shard into DIR/shard-I-of-K.unph.
int run_simulate(const Options& opts) {
  sim::CampaignConfig config;
  config.seed = opts.seed;
  const sim::ShardSpec spec{static_cast<int>(opts.shards),
                            static_cast<int>(opts.shard)};

  char name[64];
  std::snprintf(name, sizeof name, "shard-%d-of-%d.unph", spec.index,
                spec.count);
  const std::string path = opts.out + "/" + name;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "unp_campaign: cannot open '%s' for writing\n",
                 path.c_str());
    return 2;
  }

  // All shards of one campaign stamp the ensemble fingerprint (the
  // monolithic cache key), which is what lets the merge reader verify the
  // K files belong together.
  telemetry::ShardHeader header;
  header.shard_count = static_cast<std::uint32_t>(spec.count);
  header.shard_index = static_cast<std::uint32_t>(spec.index);
  header.fingerprint = bench::campaign_fingerprint(config, opts.extraction);
  telemetry::write_shard_header(os, header);

  const auto t0 = std::chrono::steady_clock::now();
  telemetry::ArchiveWriter writer(os);
  const sim::CampaignSummary summary =
      sim::run_campaign_shard(config, spec, {&writer}, opts.threads);
  const double sim_ms = ms_since(t0);
  os.flush();
  if (!os) {
    std::fprintf(stderr, "unp_campaign: write to '%s' failed\n", path.c_str());
    return 2;
  }

  std::fprintf(stderr,
               "unp_campaign: shard %d/%d -> %s  (%llu frames, %zu owned "
               "nodes, fingerprint %016llx, %.1f ms)\n",
               spec.index, spec.count, path.c_str(),
               static_cast<unsigned long long>(writer.frames_written()),
               summary.accounting.size(),
               static_cast<unsigned long long>(header.fingerprint), sim_ms);
  return 0;
}

/// Stage 2: stream-merge the shard archives into one monolithic UNPS file.
int run_merge(const Options& opts) {
  std::ofstream os(opts.out, std::ios::binary | std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "unp_campaign: cannot open '%s' for writing\n",
                 opts.out.c_str());
    return 2;
  }
  const auto t0 = std::chrono::steady_clock::now();
  telemetry::merge_shard_archives(opts.inputs, os);
  const double merge_ms = ms_since(t0);
  os.flush();
  if (!os) {
    std::fprintf(stderr, "unp_campaign: write to '%s' failed\n",
                 opts.out.c_str());
    return 2;
  }
  std::fprintf(stderr, "unp_campaign: merged %zu shards -> %s  (%.1f ms)\n",
               opts.inputs.size(), opts.out.c_str(), merge_ms);
  return 0;
}

/// Stage 3: merged replay + hierarchical sink aggregation + full report.
int run_aggregate(const Options& opts) {
  // One pass over the merged record stream feeds scan totals and fault
  // extraction, exactly like unp_report's live pipeline.
  telemetry::ShardMergeReader reader(opts.inputs);
  analysis::ScanProfileSink scan;
  analysis::StreamingExtractor extractor(opts.extraction);
  telemetry::FanOutSink fan;
  fan.add(scan);
  fan.add(extractor);
  const auto t_drain = std::chrono::steady_clock::now();
  reader.drain(fan);
  const double drain_ms = ms_since(t_drain);

  const analysis::ExtractionResult extraction = extractor.finish();
  const CampaignWindow& window = scan.window();

  // Hierarchical fan-out: partition the faults by node, run a private
  // analyzer set per partition, then fold the serialized partial states
  // into one aggregate — the same algebra a distributed reduction over the
  // K shard machines would use.  Faults of one node never split across
  // partitions, and each partition preserves canonical fault order.
  bool want_all[bench::kSectionCount];
  for (int s = 0; s < bench::kSectionCount; ++s) want_all[s] = true;
  const analysis::FaultStreamContext ctx{window};
  const int parts = reader.shard_count();

  const auto t_agg = std::chrono::steady_clock::now();
  bench::ReportAnalyzers total(want_all);
  for (analysis::FaultSink* sink : total.sinks()) sink->begin_faults(ctx);
  for (int p = 0; p < parts; ++p) {
    bench::ReportAnalyzers part(want_all);
    for (analysis::FaultSink* sink : part.sinks()) sink->begin_faults(ctx);
    for (const analysis::FaultRecord& fault : extraction.faults) {
      if (cluster::node_index(fault.node) % parts != p) continue;
      for (analysis::FaultSink* sink : part.sinks()) sink->on_fault(fault);
    }
    const std::span<analysis::FaultSink* const> from = part.sinks();
    const std::span<analysis::FaultSink* const> into = total.sinks();
    for (std::size_t k = 0; k < from.size(); ++k)
      into[k]->merge_state(from[k]->serialize_state());
  }
  for (analysis::FaultSink* sink : total.sinks()) sink->end_faults();
  const double agg_ms = ms_since(t_agg);

  bench::ReportInputs inputs;
  inputs.window = window;
  inputs.hours = &scan.hours_grid();
  inputs.terabyte_hours = &scan.terabyte_hours_grid();
  inputs.daily_terabyte_hours = scan.daily_terabyte_hours();
  inputs.total_hours = scan.total_monitored_hours();
  inputs.total_terabyte_hours = scan.total_terabyte_hours();
  inputs.monitored_nodes = scan.monitored_nodes();
  inputs.extraction = &extraction;
  total.render(inputs);

  std::fprintf(stderr, "\n== unp_campaign: aggregate timings ==\n");
  std::fprintf(stderr,
               "merged replay (%d shards)       : %9.1f ms  (%llu frames, "
               "fingerprint %016llx)\n",
               parts, drain_ms,
               static_cast<unsigned long long>(reader.frames_merged()),
               static_cast<unsigned long long>(reader.fingerprint()));
  std::fprintf(stderr,
               "hierarchical sink aggregation   : %9.1f ms  (%llu faults, "
               "%zu sinks x %d partitions)\n",
               agg_ms, static_cast<unsigned long long>(extraction.faults.size()),
               total.sinks().size(), parts);

  if (!opts.store_out.empty()) {
    // Distill the merged campaign into a queryable UNPF store and prove the
    // round trip through the shared StoreHandle open path (the same handle
    // unp_query / unp_serve would share).
    const auto t_store = std::chrono::steady_clock::now();
    store::write_store(opts.store_out, extraction, scan, reader.fingerprint());
    const std::shared_ptr<const store::StoreHandle> handle =
        store::StoreHandle::open(opts.store_out);
    const double store_ms = ms_since(t_store);
    std::fprintf(stderr,
                 "store distill -> %s : %9.1f ms  (%llu rows, "
                 "fingerprint %016llx)\n",
                 opts.store_out.c_str(), store_ms,
                 static_cast<unsigned long long>(handle->rows_total()),
                 static_cast<unsigned long long>(handle->fingerprint()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;
  try {
    switch (opts.mode) {
      case Mode::kSimulate:
        return run_simulate(opts);
      case Mode::kMerge:
        return run_merge(opts);
      case Mode::kAggregate:
        return run_aggregate(opts);
      case Mode::kNone:
        break;
    }
  } catch (const ContractViolation& e) {
    // Covers telemetry::DecodeError (corrupt/mismatched shard archives) and
    // any violated pipeline contract.
    std::fprintf(stderr, "unp_campaign: fatal: %s\n", e.what());
    return 2;
  }
  return 2;
}
