// Performance gate: the serve path end to end.
//
// Three measurements against one store built from the warm campaign cache:
//
//   1. decode throughput — the same predicate workload scanned once with
//      the scalar store kernels and once with the active SIMD set; gate:
//      SIMD >= 2x scalar (skipped as trivially met when the machine's best
//      ISA IS scalar);
//   2. byte-identity — every served response body, read back through a real
//      loopback connection, must equal the bytes render_request produces
//      directly (the CLI path), for the whole mixed workload;
//   3. serve latency — N client threads (>= 8) replay the mixed
//      figure/predicate workload against the server; reports p50/p99
//      latency and queries/s.
//
// Results go to BENCH_serve.json (override with --json <path>); non-zero
// exit on gate failure so CI can gate on it.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "analysis/streaming_extractor.hpp"
#include "serve/server.hpp"
#include "sim/campaign.hpp"
#include "store/builder.hpp"
#include "store/handle.hpp"
#include "store/kernels/kernels.hpp"
#include "store/reader.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"
#include "util/query_render.hpp"

namespace {

using namespace unp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// The mixed workload: predicate scans (cheap, decode-bound) interleaved
/// with figure renders (heavier, analyzer-bound) — the request mix a
/// dashboard actually issues.
const char* const kWorkload[] = {
    "--count",
    "--class multi --count",
    "--blade 30 --count",
    "--since 1434000000 --until 1435000000 --count",
    "--class single --blade 7 --count",
    "--limit 5",
    "--class many --limit 3",
    "--fig 3",
    "--fig 5",
    "--tab1",
    "--headline",
    "--min-bits 2 --max-bits 8 --count",
};

/// Scans whose required columns are the predicate set (first_seen varints +
/// class bit-pack): the columns the SIMD decode kernels accelerate.
store::Query decode_gate_query() {
  store::Query q;
  q.since = 0;
  q.until = std::numeric_limits<TimePoint>::max();
  q.min_bits = 2;  // class-aligned => class column, no pattern pair
  q.projection = 0;
  return q;
}

/// Total stored bytes of the segments a no-prune scan decodes.
double store_data_bytes(const store::StoreReader& reader) {
  double bytes = 0.0;
  for (const store::SegmentZone& zone : reader.zones())
    bytes += static_cast<double>(zone.size);
  return bytes;
}

struct DecodeResult {
  double ms = 0.0;
  std::uint64_t rows = 0;
};

DecodeResult time_decode(const store::StoreReader& reader,
                         const store::kernels::StoreKernels& kernels) {
  store::Query q = decode_gate_query();
  store::ScanOptions options;
  options.prune = false;  // decode every segment: throughput, not pruning
  options.kernels = &kernels;
  constexpr int kIterations = 5;
  DecodeResult best{1e300, 0};
  for (int i = 0; i < kIterations; ++i) {
    store::ScanStats stats;
    const auto t0 = Clock::now();
    (void)reader.run(q, options, &stats);
    const double ms = ms_since(t0);
    if (ms < best.ms) best.ms = ms;
    best.rows = stats.rows_scanned;
  }
  return best;
}

void write_json(const std::string& path, double scalar_gbps, double simd_gbps,
                double speedup, const char* simd_name, bool identical,
                std::size_t client_threads, std::size_t requests,
                double p50_ms, double p99_ms, double qps, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_serve\",\n"
               "  \"decode_scalar_gbps\": %.3f,\n"
               "  \"decode_simd_gbps\": %.3f,\n"
               "  \"decode_speedup\": %.2f,\n"
               "  \"simd_kernel\": \"%s\",\n"
               "  \"responses_byte_identical\": %s,\n"
               "  \"client_threads\": %zu,\n"
               "  \"requests\": %zu,\n"
               "  \"latency_p50_ms\": %.3f,\n"
               "  \"latency_p99_ms\": %.3f,\n"
               "  \"queries_per_s\": %.1f,\n"
               "  \"pass\": %s\n"
               "}\n",
               scalar_gbps, simd_gbps, speedup, simd_name,
               identical ? "true" : "false", client_threads, requests, p50_ms,
               p99_ms, qps, pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  const bench::CliParser cli("bench_perf_serve", argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = cli.next_value(i, "--json");
      if (!v) return 2;
      json_path = v;
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "perf_serve - concurrent query/report serving over a shared store",
      "SIMD store decode >= 2x scalar; served responses byte-identical to "
      "unp_query; p50/p99 latency and queries/s under >= 8 client threads");

  (void)bench::default_data();
  if (bench::default_cache_path().empty()) {
    std::printf("campaign cache disabled (UNP_CAMPAIGN_CACHE=off); nothing "
                "to serve.\n");
    return 0;
  }
  const std::string store_path = bench::default_cache_path() + ".serve.unpf";
  analysis::ExtractionResult extraction;
  {
    analysis::ScanProfileSink scan;
    analysis::StreamingExtractor extractor;
    const bench::StreamStats acquire = bench::stream_campaign(
        sim::CampaignConfig{}, analysis::ExtractionConfig{},
        {&scan, &extractor}, sim::default_campaign_threads());
    extraction = extractor.finish();
    store::write_store(store_path, extraction, scan, acquire.fingerprint);
    std::printf("store: %s  (%llu faults)\n", store_path.c_str(),
                static_cast<unsigned long long>(extraction.faults.size()));
  }
  const store::StoreReader reader = store::StoreReader::open(store_path);

  // Decode-gate store: the campaign population replicated (time-shifted so
  // canonical order is preserved) until column decode — not per-scan fixed
  // costs like zone iteration and output allocation — dominates the
  // measurement.  Held in memory; the serve phase below uses the real file.
  const store::StoreReader decode_reader = [&extraction] {
    constexpr int kReplicas = 20;
    const TimePoint first = extraction.faults.front().first_seen;
    const TimePoint shift = extraction.faults.back().first_seen - first + 1;
    store::StoreBuilder builder;
    builder.set_window(
        CampaignWindow{first, first + shift * (kReplicas + 1)});
    builder.begin_faults(analysis::FaultStreamContext{
        {first, first + shift * (kReplicas + 1)}});
    for (int k = 0; k < kReplicas; ++k) {
      for (analysis::FaultRecord f : extraction.faults) {
        f.first_seen += shift * k;
        f.last_seen += shift * k;
        builder.on_fault(f);
      }
    }
    builder.end_faults();
    return store::StoreReader(
        store::StoreHandle::from_bytes(builder.encode()));
  }();
  const double data_bytes = store_data_bytes(decode_reader);

  // --- Gate 1: SIMD decode throughput vs the scalar oracle. ---------------
  const store::kernels::StoreKernels& scalar =
      store::kernels::store_kernels_for(store::kernels::Isa::kScalar);
  const store::kernels::StoreKernels& active =
      store::kernels::active_store_kernels();
  const DecodeResult scalar_run = time_decode(decode_reader, scalar);
  const DecodeResult simd_run = time_decode(decode_reader, active);
  const double scalar_gbps = data_bytes / (scalar_run.ms * 1e6);
  const double simd_gbps = data_bytes / (simd_run.ms * 1e6);
  const double speedup = simd_run.ms > 0.0 ? scalar_run.ms / simd_run.ms : 0.0;
  const bool simd_available = active.isa != store::kernels::Isa::kScalar;
  std::printf("\ndecode (no-prune predicate scan, %llu rows, %.1f MiB)\n",
              static_cast<unsigned long long>(scalar_run.rows),
              data_bytes / (1024.0 * 1024.0));
  std::printf("  scalar               : %9.2f ms  (%6.2f GB/s)\n",
              scalar_run.ms, scalar_gbps);
  std::printf("  %-20s : %9.2f ms  (%6.2f GB/s)  %.2fx\n", active.name,
              simd_run.ms, simd_gbps, speedup);
  const bool gate_decode = !simd_available || speedup >= 2.0;
  if (!simd_available)
    std::printf("  (best supported ISA is scalar; decode gate trivially "
                "met)\n");

  // --- Serve: byte-identity + latency under concurrent clients. -----------
  serve::Server server(
      serve::Server::Config{{store_path}, 0, 8, 256},
      [](const std::string& line, const store::StoreReader& r) {
        return bench::render_request_to_string(r, bench::parse_request_line(line),
                                               store::ScanOptions{});
      });
  server.start();

  // Expected bodies straight through the CLI render path (equal store, equal
  // code => the server must return these exact bytes over the wire).
  std::vector<std::string> expected;
  for (const char* line : kWorkload)
    expected.push_back(bench::render_request_to_string(
        reader, bench::parse_request_line(line), store::ScanOptions{}));

  constexpr std::size_t kClientThreads = 8;
  constexpr std::size_t kRounds = 8;  // workload replays per client thread
  const std::size_t per_client = kRounds * std::size(kWorkload);
  std::vector<std::vector<double>> latencies(kClientThreads);
  std::vector<int> mismatches(kClientThreads, 0);

  const auto t_serve = Clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      const int fd = serve::connect_local(server.port());
      latencies[c].reserve(per_client);
      for (std::size_t r = 0; r < kRounds; ++r) {
        for (std::size_t w = 0; w < std::size(kWorkload); ++w) {
          const auto t0 = Clock::now();
          const serve::Response resp = serve::roundtrip(fd, kWorkload[w]);
          latencies[c].push_back(ms_since(t0));
          if (!resp.ok || resp.body != expected[w]) ++mismatches[c];
        }
      }
      (void)::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  const double serve_ms = ms_since(t_serve);
  server.stop();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const std::size_t requests = all.size();
  const double p50 = all[requests / 2];
  const double p99 = all[std::min(requests - 1, requests * 99 / 100)];
  const double qps = static_cast<double>(requests) / (serve_ms / 1000.0);
  int total_mismatches = 0;
  for (int m : mismatches) total_mismatches += m;
  const bool identical = total_mismatches == 0;

  std::printf("\nserve (%zu clients x %zu requests, cache on)\n",
              kClientThreads, per_client);
  std::printf("  responses            : %zu, %s\n", requests,
              identical ? "all byte-identical to the CLI render"
                        : "MISMATCHED bodies");
  std::printf("  latency              : p50 %.3f ms, p99 %.3f ms\n", p50, p99);
  std::printf("  throughput           : %.1f queries/s\n", qps);

  const bool pass = gate_decode && identical;
  write_json(json_path, scalar_gbps, simd_gbps, speedup, active.name,
             identical, kClientThreads, requests, p50, p99, qps, pass);
  std::printf("results written to %s\n", json_path.c_str());

  std::remove(store_path.c_str());
  if (!pass) {
    std::printf("\nPERF GATE FAILED (%s%s%s)\n",
                gate_decode ? "" : "decode speedup",
                !gate_decode && !identical ? ", " : "",
                identical ? "" : "byte-identity");
    return 1;
  }
  std::printf("\nperf gates met\n");
  return 0;
}
