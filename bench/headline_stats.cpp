// Section III-B headline statistics of the campaign.
//
// Paper targets: >25M raw logs, >98% from one removed node, >55,000
// independent errors, ~4.2M node-hours, 12,135 TB-h, 923 monitored nodes,
// a node error every ~41 h / a cluster error every ~10 min.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Headline statistics (Section III-B)",
      ">25M raw logs; >98% from one removed node; >55k independent errors; "
      "4.2M node-hours; 12,135 TB-h; 923 nodes; node MTBF ~41h; cluster "
      "error every ~10 min");

  const bench::CampaignData& data = bench::default_data();
  const analysis::HeadlineStats stats =
      analysis::headline_stats(data.campaign->archive, data.extraction);

  std::printf("monitored nodes                : %d\n", stats.monitored_nodes);
  std::printf("raw ERROR logs                 : %llu\n",
              static_cast<unsigned long long>(stats.raw_logs));
  std::printf("removed (pathological) nodes   : %zu\n",
              data.extraction.removed_nodes.size());
  for (const auto& n : data.extraction.removed_nodes) {
    std::printf("  removed node                 : %s\n",
                cluster::node_name(n).c_str());
  }
  std::printf("raw-log fraction removed       : %.2f%%\n",
              100.0 * stats.removed_fraction);
  std::printf("independent memory errors      : %llu\n",
              static_cast<unsigned long long>(stats.independent_faults));
  std::printf("monitored node-hours           : %.0f\n",
              stats.monitored_node_hours);
  std::printf("terabyte-hours scanned         : %.0f\n", stats.terabyte_hours);
  std::printf("node MTBF (hours per error)    : %.1f\n", stats.node_mtbf_hours);
  std::printf("cluster error interval (min)   : %.1f\n",
              stats.cluster_mtbe_minutes);
  return 0;
}
