// Section III-B headline statistics of the campaign.
//
// Paper targets: >25M raw logs, >98% from one removed node, >55,000
// independent errors, ~4.2M node-hours, 12,135 TB-h, 923 monitored nodes,
// a node error every ~41 h / a cluster error every ~10 min.
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  const analysis::HeadlineStats stats =
      analysis::headline_stats(data.campaign->archive, data.extraction);
  bench::print_headline(stats, data.extraction);
  return 0;
}
