// Extension: the same cluster at altitude.
//
// Section II-A notes the machine sits ~100 m above sea level; accelerated
// studies (the paper's ref [13]) put DRAM under beam because natural flux
// at sea level is tiny.  The flux model scales exponentially with altitude,
// so a Leadville-style 3,000 m data centre should multiply the *neutron*
// mechanisms (multi-bit word errors, showers) while leaving weak bits and
// the degrading component untouched - a clean falsifiable split.
#include <cstdio>

#include "analysis/bitstats.hpp"
#include "analysis/extraction.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - campaign vs site altitude",
      "neutron-driven multi-bit counts scale ~exp(h/1900m); weak bits and "
      "the degrading component do not care");

  TextTable table({"Altitude (m)", "Flux factor", "Multi-bit faults",
                   "All faults", "Multi-bit scaling"});
  double baseline_multibit = 0.0;
  for (const double altitude : {100.0, 1500.0, 3000.0}) {
    sim::CampaignConfig config;
    env::NeutronFluxModel::Config flux;
    flux.site.altitude_m = altitude;
    config.faults.neutron.flux = env::NeutronFluxModel(flux);
    // The strike rate scales with the flux: keep the per-flux-unit rate
    // fixed by scaling the fleet event budget with the altitude factor.
    const double factor = config.faults.neutron.flux.altitude_factor() /
                          env::NeutronFluxModel().altitude_factor();
    config.faults.neutron.multibit_events_fleet *= factor;
    config.faults.neutron.single_shower_events_fleet *= factor;

    const sim::CampaignResult campaign = sim::run_campaign(config);
    const analysis::ExtractionResult extraction =
        analysis::extract_faults(campaign.archive);
    const analysis::AdjacencyStats adj =
        analysis::adjacency_stats(extraction.faults);

    if (baseline_multibit == 0.0) {
      baseline_multibit = static_cast<double>(adj.multibit_faults);
    }
    table.add_row(
        {format_fixed(altitude, 0),
         format_fixed(config.faults.neutron.flux.altitude_factor(), 2),
         format_count(adj.multibit_faults),
         format_count(extraction.faults.size()),
         format_fixed(static_cast<double>(adj.multibit_faults) /
                          baseline_multibit,
                      2) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(total fault counts barely move - the loud mechanisms are "
              "component defects, not cosmic rays; only the multi-bit "
              "population rides the atmosphere)\n");
  return 0;
}
