// Rowhammer subsystem driver: mapping reverse engineering, hammer-enabled
// campaigns, and the closed detect-and-quarantine loop.
//
// Modes (exactly one):
//
//   --solve     run the DRAMA-style MappingSolver against the synthetic
//               timing oracle for each requested geometry (default: the
//               whole mapping menu) and compare the recovered bank
//               functions and row mask against the ground-truth mapping;
//               exits 1 if any geometry fails to recover exactly;
//   --campaign  run a hammer-enabled campaign and print the Rowhammer
//               victim-row census (the same `--ext hammer` section
//               unp_report prints) over its extracted faults;
//   --mitigate  run the closed loop: detect spatially clustered victim
//               rows per node, retire them, re-simulate, and score the
//               retired set against kRowhammer ground truth.
//
// Report sections go to stdout; timings go to stderr.  Malformed input
// exits 2 via the shared strict CliParser contract.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/streaming_extractor.hpp"
#include "cluster/topology.hpp"
#include "common/civil_time.hpp"
#include "common/table.hpp"
#include "dram/mapping/solver.hpp"
#include "policy/hammer.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"
#include "util/figures.hpp"

namespace {

using namespace unp;

struct Options {
  bool solve = false;
  bool campaign = false;
  bool mitigate = false;
  std::vector<std::string> geometries;  ///< --solve targets; empty = menu
  std::uint64_t seed = 42;
  std::uint64_t solver_seed = 1;
  int days = 30;
  int fraction_pct = 10;  ///< hammered-node fraction, percent
  int episodes = 2;       ///< hammer episodes per hammered node (mean)
  std::size_t threads = sim::default_campaign_threads();
  analysis::ExtractionConfig extraction;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: unp_hammer --solve | --campaign | --mitigate [options]\n"
      "  --solve            recover each geometry's bank functions and row\n"
      "                     mask from timing alone; exit 1 on any mismatch\n"
      "  --campaign         hammer-enabled campaign + victim-row census\n"
      "  --mitigate         closed loop: detect, retire, re-simulate, score\n"
      "  --geometry NAME    restrict --solve to NAME; repeatable\n"
      "  --seed S           campaign seed (default 42)\n"
      "  --solver-seed S    probe-sequence seed for --solve (default 1)\n"
      "  --days N           campaign length in days from 2015-09-01 "
      "(default 30)\n"
      "  --fraction-pct P   hammered-node fraction in percent (default 10)\n"
      "  --episodes N       mean hammer episodes per hammered node "
      "(default 2)\n"
      "  --threads T        worker threads (default: hardware concurrency)\n"
      "  --cache-dir DIR    campaign cache directory (sets UNP_CACHE_DIR)\n"
      "  --merge-window S   fault merge window in seconds (default %lld)\n",
      static_cast<long long>(analysis::ExtractionConfig{}.merge_window_s));
}

bool parse_args(int argc, char** argv, Options& opts) {
  const bench::CliParser cli("unp_hammer", argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--solve") == 0) {
      opts.solve = true;
    } else if (std::strcmp(arg, "--campaign") == 0) {
      opts.campaign = true;
    } else if (std::strcmp(arg, "--mitigate") == 0) {
      opts.mitigate = true;
    } else if (std::strcmp(arg, "--geometry") == 0) {
      const char* v = cli.next_value(i, "--geometry");
      if (!v) return false;
      bool known = false;
      for (const std::string& name : dram::mapping::mapping_menu()) {
        if (name == v) known = true;
      }
      if (!known) {
        std::string names;
        for (const std::string& name : dram::mapping::mapping_menu()) {
          if (!names.empty()) names += " | ";
          names += name;
        }
        std::fprintf(stderr, "unp_hammer: --geometry expects %s, got '%s'\n",
                     names.c_str(), v);
        return false;
      }
      opts.geometries.emplace_back(v);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!cli.u64(i, "--seed", opts.seed)) return false;
    } else if (std::strcmp(arg, "--solver-seed") == 0) {
      if (!cli.u64(i, "--solver-seed", opts.solver_seed)) return false;
    } else if (std::strcmp(arg, "--days") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--days", 1, 366, n)) return false;
      opts.days = static_cast<int>(n);
    } else if (std::strcmp(arg, "--fraction-pct") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--fraction-pct", 0, 100, n)) return false;
      opts.fraction_pct = static_cast<int>(n);
    } else if (std::strcmp(arg, "--episodes") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--episodes", 0, 100, n)) return false;
      opts.episodes = static_cast<int>(n);
    } else if (std::strcmp(arg, "--threads") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--threads", 1, bench::CliParser::kNoUpperBound, n))
        return false;
      opts.threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = cli.next_value(i, "--cache-dir");
      if (!v) return false;
      setenv("UNP_CACHE_DIR", v, 1);
    } else if (std::strcmp(arg, "--merge-window") == 0) {
      long n = 0;
      if (!cli.long_in(i, "--merge-window", 0, bench::CliParser::kNoUpperBound,
                       n))
        return false;
      opts.extraction.merge_window_s = n;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unp_hammer: unknown option '%s'\n", arg);
      usage(stderr);
      return false;
    }
  }
  const int modes = (opts.solve ? 1 : 0) + (opts.campaign ? 1 : 0) +
                    (opts.mitigate ? 1 : 0);
  if (modes != 1) {
    std::fprintf(stderr,
                 "unp_hammer: exactly one of --solve, --campaign, --mitigate "
                 "is required\n");
    usage(stderr);
    return false;
  }
  if (!opts.geometries.empty() && !opts.solve) {
    std::fprintf(stderr, "unp_hammer: --geometry only applies to --solve\n");
    return false;
  }
  return true;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The campaign the --campaign and --mitigate modes share.
sim::CampaignConfig hammer_campaign(const Options& opts) {
  sim::CampaignConfig config;
  config.seed = opts.seed;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end =
      config.window.start + static_cast<TimePoint>(opts.days) * kSecondsPerDay;
  config.faults.enable_hammer = true;
  config.faults.hammer.hammered_node_fraction = opts.fraction_pct / 100.0;
  config.faults.hammer.episodes_per_node_mean = opts.episodes;
  return config;
}

int run_solve(const Options& opts) {
  bench::print_header(
      "Mapping reverse engineering - DRAMA-style timing attack",
      "bank XOR functions and row masks recovered from access timing alone; "
      "recovered model must equal the oracle's canonical basis exactly");

  std::vector<std::string> targets = opts.geometries;
  if (targets.empty()) targets = dram::mapping::mapping_menu();

  dram::mapping::SolverConfig solver_config;
  solver_config.seed = opts.solver_seed;
  const dram::mapping::MappingSolver solver(solver_config);

  TextTable table({"Geometry", "Bank fns", "Row mask", "Verify", "Accesses",
                   "Exact"});
  bool all_exact = true;
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& name : targets) {
    const dram::mapping::DramMapping mapping(
        dram::mapping::make_mapping_config(name));
    dram::mapping::AccessTimingOracle oracle(mapping, {}, opts.solver_seed);
    const dram::mapping::SolveResult result =
        solver.solve(oracle, mapping.config().address_bits);
    const bool exact = result.bank_functions ==
                           mapping.canonical_bank_functions() &&
                       result.row_mask == mapping.config().row_mask;
    all_exact = all_exact && exact;
    char row_mask[32];
    std::snprintf(row_mask, sizeof row_mask, "%#llx",
                  static_cast<unsigned long long>(result.row_mask));
    table.add_row({name, std::to_string(result.bank_functions.size()),
                   row_mask, format_fixed(result.verify_agreement, 3),
                   format_count(result.measurements),
                   exact ? "yes" : "NO"});
  }
  const double solve_ms = ms_since(t0);
  std::printf("%s\n", table.render().c_str());
  std::printf("all geometries recovered exactly: %s\n",
              all_exact ? "yes" : "NO");
  std::fprintf(stderr, "\n== unp_hammer: timings ==\n");
  std::fprintf(stderr, "solve (%zu geometries)            : %9.1f ms\n",
               targets.size(), solve_ms);
  return all_exact ? 0 : 1;
}

int run_campaign(const Options& opts) {
  const sim::CampaignConfig config = hammer_campaign(opts);
  analysis::StreamingExtractor extractor(opts.extraction);
  const bench::StreamStats acquire = bench::stream_campaign(
      config, opts.extraction, {&extractor}, opts.threads);
  const auto t_finish = std::chrono::steady_clock::now();
  const analysis::ExtractionResult extraction = extractor.finish();
  const double finish_ms = ms_since(t_finish);

  bench::print_ext_hammer(extraction);

  std::fprintf(stderr, "\n== unp_hammer: timings ==\n");
  std::fprintf(stderr, "campaign cache %s  fingerprint %016llx\n",
               acquire.cache_path.empty() ? "OFF "
               : acquire.from_cache      ? "HIT "
                                         : "MISS",
               static_cast<unsigned long long>(acquire.fingerprint));
  std::fprintf(stderr, "record stream                    : %9.1f ms\n",
               acquire.acquire_ms);
  std::fprintf(stderr, "extraction finish                : %9.1f ms  (%llu "
               "faults)\n",
               finish_ms,
               static_cast<unsigned long long>(extraction.faults.size()));
  return 0;
}

int run_mitigate(const Options& opts) {
  policy::HammerLoopConfig loop;
  loop.campaign = hammer_campaign(opts);
  loop.extraction = opts.extraction;
  loop.threads = opts.threads;
  const auto t0 = std::chrono::steady_clock::now();
  const policy::HammerMitigationResult result =
      policy::run_hammer_mitigation(loop);
  const double loop_ms = ms_since(t0);

  bench::print_header(
      "Closed-loop hammer mitigation (detect, retire, re-simulate)",
      "spatially clustered same-row flips trigger page retirement; retired "
      "rows scored against kRowhammer ground truth");

  for (const auto& node : result.excluded_nodes) {
    std::printf("excluded node                  : %s\n",
                cluster::node_name(node).c_str());
  }
  std::printf("true victim rows (ground truth): %llu\n",
              static_cast<unsigned long long>(result.true_victim_rows));
  std::printf("rows retired                   : %llu\n",
              static_cast<unsigned long long>(result.rows_retired));
  std::printf("  true victims                 : %llu\n",
              static_cast<unsigned long long>(result.retired_true));
  std::printf("  collateral (dense regions)   : %llu\n",
              static_cast<unsigned long long>(result.retired_collateral));
  std::printf("  spurious                     : %llu\n",
              static_cast<unsigned long long>(result.retired_spurious));
  std::printf("recall                         : %.3f\n", result.recall);
  std::printf("observed faults open -> closed : %llu -> %llu (%llu absorbed)\n",
              static_cast<unsigned long long>(result.open_observed),
              static_cast<unsigned long long>(result.closed_observed),
              static_cast<unsigned long long>(result.absorbed_faults));
  std::printf("max re-simulation rounds       : %d\n", result.max_rounds_used);

  std::printf("\nretired rows (first 10):\n");
  std::size_t shown = 0;
  for (const auto& r : result.retired) {
    if (shown >= 10) break;
    const char* kind = r.kind == policy::RetiredRow::Kind::kTrue ? "true"
                       : r.kind == policy::RetiredRow::Kind::kCollateral
                           ? "collateral"
                           : "spurious";
    std::printf("  %s bank %2u row %6llu : %s\n",
                cluster::node_name(r.node).c_str(), r.bank,
                static_cast<unsigned long long>(r.row), kind);
    ++shown;
  }

  std::fprintf(stderr, "\n== unp_hammer: timings ==\n");
  std::fprintf(stderr, "closed loop (no cache; %zu thr)   : %9.1f ms\n",
               opts.threads, loop_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;
  try {
    if (opts.solve) return run_solve(opts);
    if (opts.campaign) return run_campaign(opts);
    return run_mitigate(opts);
  } catch (const ContractViolation& e) {
    std::fprintf(stderr, "unp_hammer: fatal: %s\n", e.what());
    return 2;
  }
}
