// Fig 2: amount of memory analyzed per node (terabyte-hours).
//
// Paper shape: strongly correlated with Fig 1; most nodes ~15 TB-h;
// homogeneous distribution with a few marked differences from variable
// allocation sizes.
#include <cstdio>
#include <vector>

#include "analysis/metrics.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 2 - terabyte-hours scanned per node",
      "mirrors Fig 1; most nodes ~15 TB-h; total 12,135 TB-h");

  const bench::CampaignData& data = bench::default_data();
  const Grid2D hours = analysis::hours_scanned_grid(data.campaign->archive);
  const Grid2D tbh = analysis::terabyte_hours_grid(data.campaign->archive);

  std::printf("rows = blades, cols = SoCs; max = %.1f TB-h; total = %.0f TB-h\n\n",
              tbh.max_value(), tbh.sum());
  std::printf("%s\n", render_heatmap(tbh).c_str());

  // Correlation with Fig 1 across scanned nodes.
  std::vector<double> x, y;
  RunningStats per_node;
  for (std::size_t b = 0; b < tbh.rows(); ++b) {
    for (std::size_t s = 0; s < tbh.cols(); ++s) {
      if (hours.at(b, s) <= 0.0) continue;
      x.push_back(hours.at(b, s));
      y.push_back(tbh.at(b, s));
      per_node.add(tbh.at(b, s));
    }
  }
  const PearsonResult corr = pearson(x, y);
  std::printf("median TB-h per scanned node : %.1f\n",
              median_of(std::span<const double>(y)));
  std::printf("corr(hours, TB-h)            : r = %.3f (paper: strong)\n",
              corr.r);
  return 0;
}
