// Fig 2: amount of memory analyzed per node (terabyte-hours).
//
// Paper shape: strongly correlated with Fig 1; most nodes ~15 TB-h;
// homogeneous distribution with a few marked differences from variable
// allocation sizes.
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_fig02(analysis::hours_scanned_grid(data.campaign->archive),
                     analysis::terabyte_hours_grid(data.campaign->archive));
  return 0;
}
