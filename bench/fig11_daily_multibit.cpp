// Fig 11: number of multi-bit errors per day.
//
// Paper shape: rare, a few days across the year; an unusually dense stretch
// in November 2015 coinciding with high single-bit rates; two days (one in
// March, one in May) each carry two undetectable (>3-bit) errors separated
// by hours.
#include <cstdio>
#include <map>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 11 - multi-bit errors per day",
      "rare all year; November burst correlated with single-bit surge; two "
      "same-day undetectable pairs (March, May), hours apart");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();

  TextTable table({"Date", "Multi-bit errors", "of which >3 bits"});
  std::map<std::int64_t, std::pair<int, int>> days;  // day -> (multibit, sdc)
  std::map<std::int64_t, std::vector<TimePoint>> sdc_times;
  for (const auto& f : data.extraction.faults) {
    const int bits = f.flipped_bits();
    if (bits < 2) continue;
    const std::int64_t day = window.day_of_campaign(f.first_seen);
    ++days[day].first;
    if (bits > 3) {
      ++days[day].second;
      sdc_times[day].push_back(f.first_seen);
    }
  }
  int november = 0;
  for (const auto& [day, counts] : days) {
    const TimePoint t = window.start + day * kSecondsPerDay;
    const CivilDateTime c = to_civil_utc(t);
    char date[16];
    std::snprintf(date, sizeof date, "%04d-%02d-%02d", c.year, c.month, c.day);
    table.add_row({date, std::to_string(counts.first),
                   std::to_string(counts.second)});
    if (c.year == 2015 && c.month == 11) november += counts.first;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("days with any multi-bit error : %zu (paper: a few dozen)\n",
              days.size());
  std::printf("multi-bit errors in Nov 2015  : %d (paper: unusually high)\n",
              november);

  for (const auto& [day, times] : sdc_times) {
    if (times.size() < 2) continue;
    const double hours_apart =
        static_cast<double>(times.back() - times.front()) / kSecondsPerHour;
    const CivilDateTime c =
        to_civil_utc(window.start + day * kSecondsPerDay);
    std::printf("same-day undetectable pair    : %04d-%02d, %.1f h apart "
                "(paper: March & May pairs, hours apart)\n",
                c.year, c.month, hours_apart);
  }
  return 0;
}
