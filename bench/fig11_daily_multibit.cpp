// Fig 11: number of multi-bit errors per day.
//
// Paper shape: rare, a few days across the year; an unusually dense stretch
// in November 2015 coinciding with high single-bit rates; two days (one in
// March, one in May) each carry two undetectable (>3-bit) errors separated
// by hours.
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_fig11(data.extraction.faults, data.campaign->archive.window());
  return 0;
}
