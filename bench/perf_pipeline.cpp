// Performance: the campaign and analysis pipeline end to end.
//
// Establishes the cost of (a) planning+simulating a full 13-month fleet,
// (b) extracting faults from the archive, and (c) the simultaneity
// grouping - the three stages every experiment replays.
#include <benchmark/benchmark.h>

#include "analysis/extraction.hpp"
#include "analysis/grouping.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace unp;

void BM_CampaignMonth(benchmark::State& state) {
  // One-month fleet simulation (the quickstart workload).
  for (auto _ : state) {
    sim::CampaignConfig config;
    config.seed = 11;
    config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
    config.window.end = from_civil_utc({2015, 10, 1, 0, 0, 0});
    benchmark::DoNotOptimize(sim::run_campaign(config));
  }
}
BENCHMARK(BM_CampaignMonth)->Unit(benchmark::kMillisecond);

void BM_FullCampaign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(sim::CampaignConfig{}));
  }
}
BENCHMARK(BM_FullCampaign)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Extraction(benchmark::State& state) {
  const sim::CampaignResult& campaign = sim::default_campaign();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::extract_faults(campaign.archive));
  }
}
BENCHMARK(BM_Extraction)->Unit(benchmark::kMillisecond);

void BM_Grouping(benchmark::State& state) {
  const sim::CampaignResult& campaign = sim::default_campaign();
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::group_simultaneous(extraction.faults));
  }
}
BENCHMARK(BM_Grouping)->Unit(benchmark::kMillisecond);

}  // namespace
