// Performance: the campaign and analysis pipeline end to end.
//
// Establishes the cost of (a) planning+simulating a full 13-month fleet,
// (b) extracting faults from the archive, and (c) the simultaneity
// grouping - the three stages every experiment replays - plus the streaming
// variants: on-disk cache reload (how the other bench binaries acquire the
// campaign) and single-pass streaming extraction.
//
// Before the google-benchmark suites run, main() prints the shared
// pipeline's per-stage wall-clock/record-count report and compares the
// seed-style cold start (single-threaded simulate + batch extract) against
// the cached streaming path.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "analysis/extraction.hpp"
#include "analysis/grouping.hpp"
#include "analysis/streaming_extractor.hpp"
#include "sim/campaign.hpp"
#include "telemetry/archive_io.hpp"
#include "util/campaign_cache.hpp"

namespace {

using namespace unp;

void BM_CampaignMonth(benchmark::State& state) {
  // One-month fleet simulation (the quickstart workload).
  for (auto _ : state) {
    sim::CampaignConfig config;
    config.seed = 11;
    config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
    config.window.end = from_civil_utc({2015, 10, 1, 0, 0, 0});
    benchmark::DoNotOptimize(sim::run_campaign(config));
  }
}
BENCHMARK(BM_CampaignMonth)->Unit(benchmark::kMillisecond);

void BM_FullCampaign(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(sim::CampaignConfig{}, threads));
  }
}
BENCHMARK(BM_FullCampaign)
    ->Arg(1)
    ->Arg(static_cast<long>(sim::default_campaign_threads()))
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_CacheReload(benchmark::State& state) {
  // The bench fleet's startup path: stream the campaign archive back from
  // the on-disk cache (default_data() has populated it by the time main
  // reaches the benchmarks).
  if (bench::default_cache_path().empty()) {
    state.SkipWithError("campaign cache disabled");
    return;
  }
  for (auto _ : state) {
    sim::CampaignResult reloaded;
    if (!bench::reload_default_campaign(reloaded)) {
      state.SkipWithError("campaign cache missing");
      return;
    }
    benchmark::DoNotOptimize(&reloaded);
  }
}
BENCHMARK(BM_CacheReload)->Unit(benchmark::kMillisecond);

void BM_Extraction(benchmark::State& state) {
  const sim::CampaignResult& campaign = sim::default_campaign();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::extract_faults(campaign.archive));
  }
}
BENCHMARK(BM_Extraction)->Unit(benchmark::kMillisecond);

void BM_StreamingExtraction(benchmark::State& state) {
  // Same methodology, consumed as a record stream instead of a resident
  // archive (replayed from the in-memory archive here; the cost is the
  // extractor, not the source).
  const sim::CampaignResult& campaign = sim::default_campaign();
  for (auto _ : state) {
    analysis::StreamingExtractor extractor;
    for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
      const cluster::NodeId node = cluster::node_from_index(i);
      telemetry::replay_node_log(campaign.archive.log(node), extractor);
      extractor.end_node(node);
    }
    benchmark::DoNotOptimize(extractor.finish());
  }
}
BENCHMARK(BM_StreamingExtraction)->Unit(benchmark::kMillisecond);

void BM_Grouping(benchmark::State& state) {
  const sim::CampaignResult& campaign = sim::default_campaign();
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::group_simultaneous(extraction.faults));
  }
}
BENCHMARK(BM_Grouping)->Unit(benchmark::kMillisecond);

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void print_stage_report() {
  const bench::CampaignData& data = bench::default_data();
  const bench::PipelineStats& s = data.stats;

  bench::print_header("perf_pipeline - shared bench pipeline stages",
                      "per-stage wall clock + record counts");
  std::printf("cache file       : %s\n",
              s.cache_path.empty() ? "(disabled)" : s.cache_path.c_str());
  std::printf("acquisition      : %9.2f ms  (%s, %llu raw error lines)\n",
              s.acquire_ms, s.from_cache ? "cache reload" : "simulated + spilled",
              static_cast<unsigned long long>(s.raw_records));
  std::printf("extraction       : %9.2f ms  (%llu independent faults)\n",
              s.extract_ms, static_cast<unsigned long long>(s.faults));
  std::printf("grouping         : %9.2f ms  (%llu simultaneous groups)\n",
              s.group_ms, static_cast<unsigned long long>(s.groups));
  std::printf("bench startup    : %9.2f ms  (acquisition + extraction)\n",
              s.acquire_ms + s.extract_ms);

  // Seed-baseline comparison: what every bench binary used to pay -
  // single-threaded full simulation plus batch extraction, no cache.
  const auto baseline_start = std::chrono::steady_clock::now();
  const sim::CampaignResult baseline = sim::run_campaign(sim::CampaignConfig{}, 1);
  const analysis::ExtractionResult baseline_extraction =
      analysis::extract_faults(baseline.archive);
  const double baseline_ms = ms_since(baseline_start);
  benchmark::DoNotOptimize(&baseline_extraction);

  const double streaming_ms = s.acquire_ms + s.extract_ms;
  std::printf("seed baseline    : %9.2f ms  (1-thread simulate + batch extract)\n",
              baseline_ms);
  if (streaming_ms > 0.0) {
    std::printf("startup speedup  : %9.2fx %s\n", baseline_ms / streaming_ms,
                s.from_cache ? "(cache reload)"
                             : "(first run simulates; rerun to hit the cache)");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_stage_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
