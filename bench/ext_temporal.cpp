// Extension: temporal correlation quantified (Section III-I).
//
// The paper shows clustering via the normal/degraded day split; here the
// inter-arrival distribution nails it: the campaign's error gaps are
// massively over-dispersed against the Poisson null with the same event
// count - the statistical license for lazy checkpointing and quarantine.
#include <vector>

#include "analysis/interarrival.hpp"
#include "analysis/regime.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      data.extraction.faults, window);

  std::vector<cluster::NodeId> excluded;
  if (regimes.excluded) excluded.push_back(*regimes.excluded);
  const analysis::InterArrivalStats observed =
      analysis::interarrival_stats(data.extraction.faults, excluded);
  const analysis::InterArrivalStats null_model = analysis::poisson_reference(
      observed.gaps + 1, window.duration_seconds(), 17);

  bench::print_ext_temporal(observed, null_model);
  return 0;
}
