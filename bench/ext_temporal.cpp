// Extension: temporal correlation quantified (Section III-I).
//
// The paper shows clustering via the normal/degraded day split; here the
// inter-arrival distribution nails it: the campaign's error gaps are
// massively over-dispersed against the Poisson null with the same event
// count - the statistical license for lazy checkpointing and quarantine.
#include <cmath>
#include <cstdio>

#include "analysis/interarrival.hpp"
#include "analysis/regime.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - inter-arrival structure of the error process",
      "cv >> 1 (Poisson would be 1): errors arrive in bursts separated by "
      "long silences");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      data.extraction.faults, window);

  std::vector<cluster::NodeId> excluded;
  if (regimes.excluded) excluded.push_back(*regimes.excluded);
  const analysis::InterArrivalStats observed =
      analysis::interarrival_stats(data.extraction.faults, excluded);
  const analysis::InterArrivalStats null_model = analysis::poisson_reference(
      observed.gaps + 1, window.duration_seconds(), 17);

  TextTable table({"Quantity", "Campaign", "Poisson null"});
  auto fmt_s = [](double seconds) {
    if (seconds < 120.0) return format_fixed(seconds, 1) + " s";
    if (seconds < 7200.0) return format_fixed(seconds / 60.0, 1) + " min";
    return format_fixed(seconds / 3600.0, 1) + " h";
  };
  table.add_row({"gaps", format_count(observed.gaps),
                 format_count(null_model.gaps)});
  table.add_row({"mean gap", fmt_s(observed.mean_s), fmt_s(null_model.mean_s)});
  table.add_row({"median gap", fmt_s(observed.median_s),
                 fmt_s(null_model.median_s)});
  table.add_row({"coefficient of variation", format_fixed(observed.cv, 2),
                 format_fixed(null_model.cv, 2)});
  table.add_row({"burstiness index", format_fixed(observed.burstiness(), 3),
                 format_fixed(null_model.burstiness(), 3)});
  table.add_row({"gaps <= 1 min",
                 format_fixed(100.0 * observed.within_minute, 1) + "%",
                 format_fixed(100.0 * null_model.within_minute, 1) + "%"});
  table.add_row({"gaps <= 1 h",
                 format_fixed(100.0 * observed.within_hour, 1) + "%",
                 format_fixed(100.0 * null_model.within_hour, 1) + "%"});
  std::printf("%s\n", table.render().c_str());

  std::printf("(median gap of %s against a mean of %s: most errors chase a "
              "predecessor within minutes while the mean is dragged out by "
              "week-long silences - the Section III-I clustering, in one "
              "number: cv %.1f vs Poisson 1.0)\n",
              fmt_s(observed.median_s).c_str(), fmt_s(observed.mean_s).c_str(),
              observed.cv);
  return 0;
}
