// Performance + correctness gate for the Rowhammer subsystem.
//
// Three promises are gated:
//
//   1. Solver - the DRAMA-style MappingSolver recovers every menu
//      geometry's bank XOR functions and row mask EXACTLY from the timing
//      oracle; any mismatch fails the gate (the attack is deterministic,
//      so a miss is a real regression, not noise).
//
//   2. Throughput - enabling the hammer generator must not tax the
//      campaign: a hammer-enabled campaign sustains >= 90% of the
//      time-driven baseline's record throughput over the same window
//      (best-of-2 wall times on both sides to damp scheduler noise).
//
//   3. Mitigation - the closed detect-and-retire loop recovers >= 95% of
//      the true victim rows (kRowhammer ground truth) with bounded false
//      retirement: spurious rows (neither hammered nor genuinely dense)
//      stay within 10% of all retirements.
//
// Writes machine-readable results to BENCH_hammer.json (override with
// --json <path>).  Exits non-zero on failure so CI can gate on it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dram/mapping/solver.hpp"
#include "policy/hammer.hpp"
#include "sim/campaign.hpp"
#include "telemetry/sink.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"

namespace {

using namespace unp;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Swallows the record stream: both throughput legs pay identical sink
/// costs (none), so the measured delta is the generator's alone.
class DiscardSink final : public telemetry::RecordSink {
 public:
  void on_start(const telemetry::StartRecord&) override { ++records_; }
  void on_end(const telemetry::EndRecord&) override { ++records_; }
  void on_alloc_fail(const telemetry::AllocFailRecord&) override {
    ++records_;
  }
  void on_error_run(const telemetry::ErrorRun&) override { ++records_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  std::uint64_t records_ = 0;
};

bool run_solver_gate() {
  dram::mapping::MappingSolver solver;
  bool ok = true;
  for (const std::string& name : dram::mapping::mapping_menu()) {
    const dram::mapping::DramMapping mapping(
        dram::mapping::make_mapping_config(name));
    dram::mapping::AccessTimingOracle oracle(mapping, {}, /*seed=*/1);
    const dram::mapping::SolveResult result =
        solver.solve(oracle, mapping.config().address_bits);
    const bool exact = result.bank_functions ==
                           mapping.canonical_bank_functions() &&
                       result.row_mask == mapping.config().row_mask;
    if (!exact) {
      std::printf("SOLVER MISS: %s not recovered exactly\n", name.c_str());
      ok = false;
    }
  }
  std::printf("solver                 : all menu geometries recovered "
              "exactly %s\n",
              ok ? "" : "FAILED");
  return ok;
}

/// Throughput legs run the generator at its DEFAULT loudness (2% of the
/// fleet hammered): the gate prices what enabling the subsystem costs a
/// realistic campaign, not an artificially loud one.
sim::CampaignConfig throughput_campaign(bool hammer) {
  sim::CampaignConfig config;
  config.seed = 17;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 11, 1, 0, 0, 0});
  config.faults.enable_hammer = hammer;
  return config;
}

/// The mitigation leg hammers a tenth of the fleet so the recall and
/// false-retirement statistics rest on hundreds of victim rows.
sim::CampaignConfig mitigation_campaign() {
  sim::CampaignConfig config = throughput_campaign(true);
  config.faults.hammer.hammered_node_fraction = 0.10;
  config.faults.hammer.episodes_per_node_mean = 2.0;
  return config;
}

double best_of_two_campaign_s(const sim::CampaignConfig& config,
                              std::uint64_t& records) {
  double best = 0.0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    DiscardSink sink;
    const auto t0 = std::chrono::steady_clock::now();
    (void)sim::run_campaign_streaming(config, {&sink}, /*threads=*/8);
    const double elapsed = seconds_since(t0);
    records = sink.records();
    best = attempt == 0 ? elapsed : std::min(best, elapsed);
  }
  return best;
}

void write_json(const std::string& path, bool solver_ok, double baseline_s,
                double hammer_s, double ratio, bool throughput_ok,
                std::uint64_t true_rows, std::uint64_t retired_true,
                std::uint64_t retired_spurious, std::uint64_t rows_retired,
                double recall, bool mitigation_ok, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_hammer\",\n"
               "  \"solver_ok\": %s,\n"
               "  \"baseline_s\": %.3f,\n"
               "  \"hammer_s\": %.3f,\n"
               "  \"throughput_ratio\": %.3f,\n"
               "  \"required_ratio\": 0.90,\n"
               "  \"throughput_ok\": %s,\n"
               "  \"true_victim_rows\": %llu,\n"
               "  \"retired_true\": %llu,\n"
               "  \"retired_spurious\": %llu,\n"
               "  \"rows_retired\": %llu,\n"
               "  \"recall\": %.4f,\n"
               "  \"required_recall\": 0.95,\n"
               "  \"mitigation_ok\": %s,\n"
               "  \"pass\": %s\n"
               "}\n",
               solver_ok ? "true" : "false", baseline_s, hammer_s, ratio,
               throughput_ok ? "true" : "false",
               static_cast<unsigned long long>(true_rows),
               static_cast<unsigned long long>(retired_true),
               static_cast<unsigned long long>(retired_spurious),
               static_cast<unsigned long long>(rows_retired), recall,
               mitigation_ok ? "true" : "false", pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_hammer.json";
  const bench::CliParser cli("bench_perf_hammer", argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = cli.next_value(i, "--json");
      if (v == nullptr) return 2;
      json_path = v;
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "perf_hammer - solver exactness, campaign throughput, mitigation",
      "every geometry recovered from timing alone; hammer campaign >= 90% "
      "of baseline throughput; closed loop retires >= 95% of victim rows");

  const bool solver_ok = run_solver_gate();

  // --- Throughput: hammer-enabled vs time-driven baseline. ------------------
  std::uint64_t baseline_records = 0;
  std::uint64_t hammer_records = 0;
  const double baseline_s =
      best_of_two_campaign_s(throughput_campaign(false), baseline_records);
  const double hammer_s =
      best_of_two_campaign_s(throughput_campaign(true), hammer_records);
  const double baseline_rps = static_cast<double>(baseline_records) / baseline_s;
  const double hammer_rps = static_cast<double>(hammer_records) / hammer_s;
  const double ratio = hammer_rps / baseline_rps;
  const bool throughput_ok = ratio >= 0.90;
  std::printf("throughput             : baseline %.0f rec/s (%.2f s), "
              "hammer %.0f rec/s (%.2f s), ratio %.2f %s\n",
              baseline_rps, baseline_s, hammer_rps, hammer_s, ratio,
              throughput_ok ? "" : "FAILED");

  // --- Mitigation: the closed loop against ground truth. --------------------
  policy::HammerLoopConfig loop;
  loop.campaign = mitigation_campaign();
  loop.threads = 8;
  const policy::HammerMitigationResult result =
      policy::run_hammer_mitigation(loop);
  const bool recall_ok = result.recall >= 0.95;
  const bool spurious_ok =
      result.retired_spurious <= 1 + result.rows_retired / 10;
  const bool mitigation_ok = recall_ok && spurious_ok;
  std::printf("mitigation             : recall %.3f (%llu of %llu rows), "
              "%llu spurious of %llu retired %s\n",
              result.recall,
              static_cast<unsigned long long>(result.retired_true),
              static_cast<unsigned long long>(result.true_victim_rows),
              static_cast<unsigned long long>(result.retired_spurious),
              static_cast<unsigned long long>(result.rows_retired),
              mitigation_ok ? "" : "FAILED");

  const bool pass = solver_ok && throughput_ok && mitigation_ok;
  write_json(json_path, solver_ok, baseline_s, hammer_s, ratio, throughput_ok,
             result.true_victim_rows, result.retired_true,
             result.retired_spurious, result.rows_retired, result.recall,
             mitigation_ok, pass);
  std::printf("results written to %s\n", json_path.c_str());
  if (!pass) {
    std::printf("\nPERF GATE FAILED (%s%s%s)\n",
                solver_ok ? "" : "solver ",
                throughput_ok ? "" : "throughput ",
                mitigation_ok ? "" : "mitigation");
    return 1;
  }
  std::printf("\nperf gates met\n");
  return 0;
}
