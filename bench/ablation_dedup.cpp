// Ablation: the extraction merge window (DESIGN.md #3, Section II-C).
//
// The paper's accounting collapses consecutive re-logs of the same fault
// into one error.  The merge window controls what "consecutive" means:
// too short and a stuck cell inflates into thousands of phantom faults;
// too long and distinct weak-bit leak episodes fuse, hiding the recurrence
// the whole degraded-regime analysis is built on.
#include <cstdio>

#include "analysis/extraction.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Ablation - extraction merge window",
      "fault counts must be stable around the chosen window (300 s); "
      "degenerate windows multiply or fuse the weak-bit episodes");

  const bench::CampaignData& data = bench::default_data();

  TextTable table({"Merge window", "Independent faults", "Raw logs kept"});
  for (std::int64_t window_s : {0L, 60L, 150L, 300L, 900L, 3600L, 86400L}) {
    analysis::ExtractionConfig config;
    config.merge_window_s = window_s;
    const analysis::ExtractionResult result =
        analysis::extract_faults(data.campaign->archive, config);
    std::uint64_t raw = 0;
    for (const auto& f : result.faults) raw += f.raw_logs;
    table.add_row({std::to_string(window_s) + " s",
                   format_count(result.faults.size()), format_count(raw)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(the library default is 300 s; the campaign's scan pass is "
              "~75 s, so stuck-cell re-logs fuse while leak episodes minutes "
              "apart stay separate)\n");
  return 0;
}
