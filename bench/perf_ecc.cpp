// Performance: SECDED(72,64) codec and chipkill outcome classification.
//
// The ECC what-if analysis decodes every observed corruption; these cases
// establish the codec cost per word and the classification throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "ecc/outcome.hpp"

namespace {

using namespace unp;

void BM_SecdedEncode(benchmark::State& state) {
  const ecc::Secded7264& code = ecc::Secded7264::instance();
  RngStream rng(3);
  std::vector<std::uint64_t> words(4096);
  for (auto& w : words) w = rng.next_u64();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(words[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SecdedEncode);

void BM_SecdedDecode(benchmark::State& state) {
  // Mix of clean words, single-bit and double-bit errors.
  const ecc::Secded7264& code = ecc::Secded7264::instance();
  RngStream rng(5);
  struct Case {
    std::uint64_t data;
    std::uint8_t check;
  };
  std::vector<Case> cases(4096);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::uint64_t data = rng.next_u64();
    const std::uint8_t check = code.encode(data);
    if (i % 3 == 1) data ^= 1ULL << rng.uniform_u64(64);
    if (i % 3 == 2) {
      data ^= 1ULL << rng.uniform_u64(64);
      data ^= 1ULL << rng.uniform_u64(64);
    }
    cases[i] = {data, check};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& c = cases[i++ & 4095];
    benchmark::DoNotOptimize(code.decode(c.data, c.check));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SecdedDecode);

void BM_OutcomeClassification(benchmark::State& state) {
  RngStream rng(7);
  std::vector<std::pair<Word, Word>> pairs(4096);
  for (auto& [expected, actual] : pairs) {
    expected = rng.bernoulli(0.5) ? 0xFFFFFFFFu : 0x00000000u;
    actual = expected;
    const auto flips = 1 + rng.uniform_u64(3);
    for (std::uint64_t f = 0; f < flips; ++f) actual ^= 1u << rng.uniform_u64(32);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [expected, actual] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(ecc::secded_outcome(expected, actual));
    benchmark::DoNotOptimize(ecc::chipkill_outcome(expected, actual));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OutcomeClassification);

}  // namespace
