// Performance gate: the ECC evaluation engine's exhaustive enumerator.
//
// Two promises are gated:
//
//   1. Invariance - exhaustive and population tallies are bit-identical
//      across thread counts {1, 2, 8}.  The enumerator stripes a
//      deterministic combination ranking and merges additive u64 counters,
//      so ANY divergence is a real bug, not noise.
//
//   2. Scaling - the exhaustive sweep parallelizes: at 8 worker threads the
//      enumeration must run >= 4x faster than single-threaded ON HARDWARE
//      WITH >= 8 CPUS.  On smaller hosts the requirement scales down
//      proportionally (hw/2, floored at no-catastrophic-slowdown), because
//      extra pool workers cannot beat physics; the JSON records the
//      hardware width alongside the requirement so CI trend lines stay
//      interpretable.
//
// The scaling workload is BCH(64,t=2) at K=4: ~1.4M patterns whose weight
// >t decodes exercise the full syndrome/BM/Chien path - enough per-pattern
// work for threading to matter, small enough to finish in seconds.
//
// Writes machine-readable results to BENCH_ecc.json (override with
// --json <path>).  Exits non-zero on failure so CI can gate on it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ecc/engine.hpp"
#include "ecc/registry.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"

namespace {

using namespace unp;

constexpr int kScalingWeight = 4;
const char* const kScalingCode = "bch:64/2";

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Exhaustive + population tallies must agree bit-for-bit across pools.
bool run_invariance(const std::vector<std::size_t>& thread_counts) {
  bool ok = true;
  for (const char* spec : {"secded72", "hsiao:64/8", "bch:64/2"}) {
    const auto code = ecc::make_code(spec);
    std::vector<ecc::ExhaustiveResult> runs;
    for (const std::size_t threads : thread_counts) {
      ThreadPool pool(threads);
      runs.push_back(ecc::evaluate_exhaustive(*code, 3, pool));
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (runs[i].weights != runs[0].weights) {
        std::printf("INVARIANCE VIOLATION: %s exhaustive counts differ "
                    "between %zu and %zu threads\n",
                    spec, thread_counts[0], thread_counts[i]);
        ok = false;
      }
    }
  }

  // Synthetic population: 200k masks spanning all multiplicity classes.
  RngStream rng(11);
  std::vector<Word> masks(200000);
  for (auto& m : masks) {
    const auto flips = 1 + rng.uniform_u64(12);
    m = 0;
    for (std::uint64_t f = 0; f < flips; ++f) m |= 1u << rng.uniform_u64(32);
  }
  const auto code = ecc::make_code("chipkill");
  std::vector<ecc::PopulationResult> runs;
  for (const std::size_t threads : thread_counts) {
    ThreadPool pool(threads);
    runs.push_back(ecc::evaluate_population(*code, masks, pool));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (!(runs[i] == runs[0])) {
      std::printf("INVARIANCE VIOLATION: population counts differ between "
                  "%zu and %zu threads\n",
                  thread_counts[0], thread_counts[i]);
      ok = false;
    }
  }
  std::printf("invariance             : exhaustive+population identical "
              "across {1,2,8} threads %s\n",
              ok ? "" : "FAILED");
  return ok;
}

void write_json(const std::string& path, unsigned hw_threads,
                std::uint64_t patterns, double t1_s, double t8_s,
                double speedup, double required, bool scaling_ok,
                bool invariance_ok, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_ecc\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"scaling_code\": \"%s\",\n"
               "  \"scaling_max_weight\": %d,\n"
               "  \"patterns\": %llu,\n"
               "  \"t1_s\": %.3f,\n"
               "  \"t8_s\": %.3f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"required_speedup\": %.2f,\n"
               "  \"patterns_per_s_8t\": %.0f,\n"
               "  \"scaling_ok\": %s,\n"
               "  \"invariance_ok\": %s,\n"
               "  \"pass\": %s\n"
               "}\n",
               hw_threads, kScalingCode, kScalingWeight,
               static_cast<unsigned long long>(patterns), t1_s, t8_s, speedup,
               required, static_cast<double>(patterns) / t8_s,
               scaling_ok ? "true" : "false", invariance_ok ? "true" : "false",
               pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_ecc.json";
  const bench::CliParser cli("bench_perf_ecc", argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = cli.next_value(i, "--json");
      if (v == nullptr) return 2;
      json_path = v;
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "perf_ecc - exhaustive ECC enumeration: invariance + scaling",
      "tallies bit-identical across {1,2,8} threads; 8-thread enumeration "
      ">=4x single-threaded on >=8-cpu hardware (proportional below)");

  const bool invariance_ok = run_invariance({1, 2, 8});

  // --- Scaling: the BCH K=4 sweep at 1 vs 8 worker threads. -----------------
  const auto code = ecc::make_code(kScalingCode);
  std::uint64_t patterns = 0;
  double t1_s = 0.0;
  double t8_s = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const auto t0 = std::chrono::steady_clock::now();
    const ecc::ExhaustiveResult result =
        ecc::evaluate_exhaustive(*code, kScalingWeight, pool);
    const double elapsed = seconds_since(t0);
    patterns = result.total_patterns();
    (threads == 1 ? t1_s : t8_s) = elapsed;
    std::printf("exhaustive %s K=%d  : %7.2f s at %zu threads  "
                "(%.0f patterns/s)\n",
                kScalingCode, kScalingWeight, elapsed, threads,
                static_cast<double>(patterns) / elapsed);
  }
  const double speedup = t1_s / t8_s;

  // Hardware-aware requirement: the ISSUE's 4x-at-8-threads bar applies on
  // hosts with >= 8 CPUs; below that, demand proportional scaling (hw/2)
  // and never less than "threading must not wreck throughput" (0.75x).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double required =
      hw >= 8 ? 4.0 : std::max(0.75, static_cast<double>(hw) / 2.0);
  const bool scaling_ok = speedup >= required;
  std::printf("scaling                : %.2fx at 8 threads (required %.2fx "
              "on %u-cpu hardware) %s\n",
              speedup, required, hw, scaling_ok ? "" : "FAILED");

  const bool pass = invariance_ok && scaling_ok;
  write_json(json_path, hw, patterns, t1_s, t8_s, speedup, required,
             scaling_ok, invariance_ok, pass);
  std::printf("results written to %s\n", json_path.c_str());
  if (!pass) {
    std::printf("\nPERF GATE FAILED (%s%s%s)\n",
                invariance_ok ? "" : "invariance",
                !invariance_ok && !scaling_ok ? ", " : "",
                scaling_ok ? "" : "scaling");
    return 1;
  }
  std::printf("\nperf gates met\n");
  return 0;
}
