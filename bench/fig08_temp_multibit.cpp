// Fig 8: multi-bit errors vs node temperature.
//
// Paper shape: every multi-bit corruption with a reading sits at nominal
// temperature - no high-temperature correlation for multi-bit errors.
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_fig08(analysis::temperature_profile(data.extraction.faults));
  return 0;
}
