// Fig 8: multi-bit errors vs node temperature.
//
// Paper shape: every multi-bit corruption with a reading sits at nominal
// temperature - no high-temperature correlation for multi-bit errors.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 8 - multi-bit errors vs node temperature",
      "all multi-bit errors (with a reading) at nominal temperatures");

  const bench::CampaignData& data = bench::default_data();
  const analysis::TemperatureProfile profile =
      analysis::temperature_profile(data.extraction.faults);

  std::vector<BarEntry> bars;
  double hottest = 0.0;
  std::uint64_t total = 0;
  for (std::size_t bin = 0; bin < analysis::TemperatureProfile::kBins; ++bin) {
    std::uint64_t multibit = 0;
    for (int c = 1; c < analysis::kBitClasses; ++c) {
      multibit += profile.by_class[static_cast<std::size_t>(c)].count(bin);
    }
    if (multibit == 0) continue;
    const double lo = profile.by_class[1].bin_lo(bin);
    bars.push_back({format_fixed(lo, 0) + "-" + format_fixed(lo + 2.0, 0) + "C",
                    static_cast<double>(multibit)});
    hottest = lo + 2.0;
    total += multibit;
  }
  std::printf("%s\n", render_bars(bars, 50).c_str());
  std::printf("multi-bit errors with a reading : %s\n",
              format_count(total).c_str());
  std::printf("hottest multi-bit observation   : <%.0f degC (paper: nominal "
              "range only)\n",
              hottest);
  return 0;
}
