// Performance gate: columnar-store queries vs cached re-extraction.
//
// The pre-store workflow answers every figure-level question by reloading
// the cached campaign (25M+ raw records) and re-running batch extraction,
// even though the answer only needs the ~10^4 extracted faults.  This bench
// builds a UNPF store once from the warm cache, then measures, per queried
// figure:
//
//   re-extract  - reload cached campaign + extract_faults + compute product;
//   store scan  - open the store + scan the query's columns + compute.
//
// Gates (non-zero exit on failure):
//
//   1. total store-scan latency >= 5x faster than total re-extraction;
//   2. zone-map pruning: a selective query decodes fewer segments than the
//      full scan, returns the identical row set, and is not slower.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/bitstats.hpp"
#include "analysis/extraction.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "analysis/streaming_extractor.hpp"
#include "common/thread_pool.hpp"
#include "sim/campaign.hpp"
#include "store/builder.hpp"
#include "store/reader.hpp"
#include "util/campaign_cache.hpp"

namespace {

using namespace unp;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

volatile double g_sink = 0.0;
void consume(double v) { g_sink = g_sink + v; }

struct FigureQuery {
  const char* name;
  store::Query query;  ///< fault subset the figure actually consumes
  void (*compute)(analysis::FaultView, const CampaignWindow&);
};

store::Query multibit_query() {
  store::Query q;
  q.min_bits = 2;
  return q;
}

const FigureQuery kQueries[] = {
    {"fig03_errors_grid", store::Query{},
     [](analysis::FaultView faults, const CampaignWindow&) {
       consume(analysis::errors_grid(faults).sum());
     }},
    {"fig05_hourly", store::Query{},
     [](analysis::FaultView faults, const CampaignWindow&) {
       consume(static_cast<double>(
           analysis::hour_of_day_profile(faults).total(12)));
     }},
    {"tab1_multibit", multibit_query(),
     [](analysis::FaultView faults, const CampaignWindow&) {
       consume(
           static_cast<double>(analysis::multibit_patterns(faults).size()));
     }},
    {"fig11_multibit_daily", multibit_query(),
     [](analysis::FaultView faults, const CampaignWindow&) {
       consume(static_cast<double>(faults.size()));
     }},
    {"fig13_regime", store::Query{},
     [](analysis::FaultView faults, const CampaignWindow& window) {
       consume(analysis::classify_regime_excluding_loudest(faults, window)
                   .regime.normal_mtbf_hours);
     }},
};

}  // namespace

int main() {
  bench::print_header(
      "perf_store - columnar fault store vs cached re-extraction",
      "figure queries answered from the UNPF store >= 5x faster than "
      "reload+extract; zone-map pruning scans fewer segments for equal "
      "results");

  // Warm the cache so the re-extraction side measures its steady state.
  (void)bench::default_data();
  if (bench::default_cache_path().empty()) {
    std::printf("campaign cache disabled (UNP_CAMPAIGN_CACHE=off); the\n"
                "re-extraction emulation needs the cache - nothing to "
                "compare.\n");
    return 0;
  }

  const std::size_t threads = sim::default_campaign_threads();
  const std::string store_path = bench::default_cache_path() + ".perf.unpf";

  {  // Build the store once from the same warm cache (not timed by a gate).
    const auto t0 = std::chrono::steady_clock::now();
    analysis::ScanProfileSink scan;
    analysis::StreamingExtractor extractor;
    const bench::StreamStats acquire =
        bench::stream_campaign(sim::CampaignConfig{},
                               analysis::ExtractionConfig{},
                               {&scan, &extractor}, threads);
    const analysis::ExtractionResult extraction = extractor.finish();
    store::write_store(store_path, extraction, scan, acquire.fingerprint);
    std::printf("store build (warm cache)        : %9.1f ms  (%llu faults)\n",
                ms_since(t0),
                static_cast<unsigned long long>(extraction.faults.size()));
  }

  ThreadPool pool(threads);

  // --- Gate 1: queried-figure latency. ------------------------------------
  std::printf("\n%-22s %14s %14s\n", "figure query", "re-extract ms",
              "store ms");
  double reextract_total = 0.0;
  double store_total = 0.0;
  for (const FigureQuery& fq : kQueries) {
    const auto t_a = std::chrono::steady_clock::now();
    sim::CampaignResult campaign;
    if (!bench::reload_default_campaign(campaign)) {
      std::printf("cache reload failed; aborting comparison\n");
      return 1;
    }
    const analysis::ExtractionResult extraction =
        analysis::extract_faults(campaign.archive);
    std::vector<analysis::FaultRecord> subset;
    for (const analysis::FaultRecord& f : extraction.faults) {
      if (fq.query.matches(
              static_cast<std::uint32_t>(cluster::node_index(f.node)),
              f.first_seen, f.flipped_bits()))
        subset.push_back(f);
    }
    fq.compute(subset, campaign.archive.window());
    const double a_ms = ms_since(t_a);

    const auto t_b = std::chrono::steady_clock::now();
    const store::StoreReader reader = store::StoreReader::open(store_path);
    const std::vector<analysis::FaultRecord> rows =
        reader.materialize(fq.query, {&pool, true});
    fq.compute(rows, reader.window());
    const double b_ms = ms_since(t_b);

    reextract_total += a_ms;
    store_total += b_ms;
    std::printf("%-22s %14.1f %14.1f\n", fq.name, a_ms, b_ms);
  }
  std::printf("%-22s %14.1f %14.1f\n", "total", reextract_total, store_total);
  const double speedup =
      store_total > 0.0 ? reextract_total / store_total : 0.0;
  const bool gate1 = speedup >= 5.0;
  std::printf("speedup                : %13.2fx %s\n", speedup,
              gate1 ? "(>= 5x target met)" : "(below 5x target)");

  // --- Gate 2: pruning scans fewer segments for identical results. --------
  const store::StoreReader reader = store::StoreReader::open(store_path);
  store::Query selective;  // one blade, multi-bit only: prunable on two axes
  selective.blade = 30;
  selective.min_bits = 2;

  store::ScanStats pruned_stats;
  store::ScanStats full_stats;
  double pruned_best = 1e300;
  double full_best = 1e300;
  bool rows_equal = true;
  constexpr int kIterations = 5;
  for (int i = 0; i < kIterations; ++i) {
    const auto t_p = std::chrono::steady_clock::now();
    const std::vector<analysis::FaultRecord> pruned =
        reader.materialize(selective, {&pool, true}, &pruned_stats);
    pruned_best = std::min(pruned_best, ms_since(t_p));
    const auto t_f = std::chrono::steady_clock::now();
    const std::vector<analysis::FaultRecord> full =
        reader.materialize(selective, {&pool, false}, &full_stats);
    full_best = std::min(full_best, ms_since(t_f));
    rows_equal = rows_equal && pruned == full;
  }
  std::printf("\npruned scan            : %zu/%zu segments, best %.2f ms\n",
              pruned_stats.segments_scanned, pruned_stats.segments_total,
              pruned_best);
  std::printf("full scan              : %zu/%zu segments, best %.2f ms\n",
              full_stats.segments_scanned, full_stats.segments_total,
              full_best);
  const bool fewer_segments =
      pruned_stats.segments_scanned < full_stats.segments_scanned;
  const bool not_slower = pruned_best <= full_best;
  std::printf("pruning                : %s rows, %s segments, %s\n",
              rows_equal ? "identical" : "DIVERGENT",
              fewer_segments ? "fewer" : "NOT fewer",
              not_slower ? "not slower" : "SLOWER");
  const bool gate2 = rows_equal && fewer_segments && not_slower;

  std::remove(store_path.c_str());
  if (!gate1 || !gate2) {
    std::printf("\nPERF GATE FAILED (%s%s%s)\n", gate1 ? "" : "latency",
                !gate1 && !gate2 ? ", " : "", gate2 ? "" : "pruning");
    return 1;
  }
  std::printf("\nperf gates met\n");
  return 0;
}
