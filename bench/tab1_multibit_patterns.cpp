// Table I: multi-bit corruptions affecting the prototype.
//
// Paper shape: 85 multi-bit faults total - 76 double-bit, 9 with more than
// two bits (up to 9); repeated patterns with occurrences up to 36; majority
// non-consecutive; mean distance between corrupted bits ~3, max 11; ~90% of
// bits flip 1->0; multi-bit corruption concentrated in the low bits.
#include <cstdio>

#include "analysis/bitstats.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Table I - multi-bit corruption census",
      "85 multi-bit (76 double, 9 wider, max 9 bits); repeats up to 36x; "
      "mostly non-consecutive; mean bit distance ~3, max 11; ~90% 1->0");

  const bench::CampaignData& data = bench::default_data();
  const auto patterns = analysis::multibit_patterns(data.extraction.faults);

  TextTable table({"Bits", "Expected", "Corrupted", "Occurrences", "Consecutive"});
  std::uint64_t total = 0, doubles = 0, wider = 0;
  int max_bits = 0;
  for (const auto& p : patterns) {
    table.add_row({std::to_string(p.bits), format_hex32(p.expected),
                   format_hex32(p.corrupted), std::to_string(p.occurrences),
                   p.consecutive ? "Yes" : "No"});
    total += p.occurrences;
    if (p.bits == 2) doubles += p.occurrences;
    if (p.bits > 2) wider += p.occurrences;
    max_bits = p.bits > max_bits ? p.bits : max_bits;
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("multi-bit faults              : %llu (paper: 85)\n",
              static_cast<unsigned long long>(total));
  std::printf("  double-bit                  : %llu (paper: 76)\n",
              static_cast<unsigned long long>(doubles));
  std::printf("  more than 2 bits            : %llu (paper: 9)\n",
              static_cast<unsigned long long>(wider));
  std::printf("  widest corruption           : %d bits (paper: 9)\n", max_bits);

  const analysis::AdjacencyStats adj =
      analysis::adjacency_stats(data.extraction.faults);
  std::printf("non-adjacent / consecutive    : %llu / %llu (paper: majority "
              "non-adjacent)\n",
              static_cast<unsigned long long>(adj.non_adjacent),
              static_cast<unsigned long long>(adj.consecutive));
  std::printf("mean distance between bits    : %.1f (paper: ~3)\n",
              adj.mean_distance);
  std::printf("max distance between bits     : %d (paper: 11)\n",
              adj.max_distance);
  std::printf("low-half-dominated faults     : %llu of %llu\n",
              static_cast<unsigned long long>(adj.low_half_majority),
              static_cast<unsigned long long>(adj.multibit_faults));

  const analysis::DirectionStats dir =
      analysis::direction_stats(data.extraction.faults);
  std::printf("bits flipped 1->0             : %.1f%% (paper: ~90%%)\n",
              100.0 * dir.one_to_zero_fraction());
  return 0;
}
