// Table I: multi-bit corruptions affecting the prototype.
//
// Paper shape: 85 multi-bit faults total - 76 double-bit, 9 with more than
// two bits (up to 9); repeated patterns with occurrences up to 36; majority
// non-consecutive; mean distance between corrupted bits ~3, max 11; ~90% of
// bits flip 1->0; multi-bit corruption concentrated in the low bits.
#include "analysis/bitstats.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_tab1(analysis::multibit_patterns(data.extraction.faults),
                    analysis::adjacency_stats(data.extraction.faults),
                    analysis::direction_stats(data.extraction.faults));
  return 0;
}
