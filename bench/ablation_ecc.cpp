// Ablation: SECDED vs chipkill vs no protection (DESIGN.md #5).
//
// Replays every observed corruption through both decoders and reports what
// each protection level would have turned the campaign into - the paper's
// "what would a classical system have seen" lens, plus the related-work
// claim that chipkill beats SECDED because DRAM faults cluster in symbols.
#include <cstdio>

#include "common/table.hpp"
#include "resilience/ecc_whatif.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Ablation - protection scheme outcomes",
      "no-ECC: everything reaches software; SECDED corrects singles, "
      "detects doubles, can miss wider faults; chipkill corrects "
      "single-symbol clusters");

  const bench::CampaignData& data = bench::default_data();
  const resilience::EccWhatIf whatif =
      resilience::ecc_what_if(data.extraction.faults);
  const auto total = static_cast<double>(data.extraction.faults.size());

  TextTable table({"Scheme", "Reaches software", "Corrected", "Detected (crash)",
                   "Silent corruption"});
  table.add_row({"none (the prototype)", format_count(data.extraction.faults.size()),
                 "0", "0", format_count(data.extraction.faults.size())});
  auto add = [&](const char* name, const ecc::OutcomeCounts& c) {
    table.add_row({name, format_count(c.silent()), format_count(c.corrected),
                   format_count(c.detected), format_count(c.silent())});
  };
  add("parity (detect-only)", whatif.parity);
  add("SECDED(72,64)", whatif.secded);
  add("chipkill SSC-DSD", whatif.chipkill);
  std::printf("%s\n", table.render().c_str());

  std::printf("SECDED silent fraction   : %.4f%%\n",
              100.0 * static_cast<double>(whatif.secded.silent()) / total);
  std::printf("chipkill silent fraction : %.4f%%\n",
              100.0 * static_cast<double>(whatif.chipkill.silent()) / total);
  std::printf("reliability ratio        : %.1fx fewer silent+crash events "
              "under chipkill (related work: ~42x overall)\n",
              whatif.chipkill.silent() + whatif.chipkill.detected > 0
                  ? static_cast<double>(whatif.secded.silent() +
                                        whatif.secded.detected) /
                        static_cast<double>(whatif.chipkill.silent() +
                                            whatif.chipkill.detected)
                  : 0.0);
  return 0;
}
