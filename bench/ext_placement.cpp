// Extension: history-aware job placement (Section III-H's proposal).
//
// ">99.9% of errors occurring in less than 1% of the nodes ... spatial
// correlation information can be added into the scheduler algorithm to
// avoid large high priority jobs running in nodes with a long history of
// failures."  We replay one synthetic job stream under random vs
// history-aware placement over the campaign's fault record.
#include <cstdio>

#include "common/table.hpp"
#include "resilience/placement.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - history-aware job placement (Section III-H)",
      "avoiding the few loud nodes collapses the memory-error job-kill rate");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const auto& fleet = data.campaign->summary.topology.monitored_nodes();

  TextTable table({"Job size (nodes)", "Policy", "Jobs", "Killed", "Kill rate",
                   "Node-hours lost"});
  for (int size : {16, 64, 256}) {
    resilience::JobMix mix;
    mix.nodes_min = size;
    mix.nodes_max = size;
    const resilience::PlacementComparison cmp = resilience::compare_placements(
        data.extraction.faults, window, fleet, mix);
    auto add = [&](const char* policy, const resilience::PlacementOutcome& o) {
      table.add_row({std::to_string(size), policy, format_count(o.jobs),
                     format_count(o.failed_jobs),
                     format_fixed(100.0 * o.failure_rate(), 2) + "%",
                     format_fixed(o.node_hours_lost, 0)});
    };
    add("random", cmp.random);
    add("history-aware", cmp.history_aware);
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
