// Extension: trace-driven checkpoint/restart over the campaign's faults.
//
// Section III-I argues a job should shorten its checkpoint interval during
// degraded periods.  The first-order Young/Daly model says so analytically;
// here a full-machine capability job is simulated against the *actual*
// (bursty, regime-switching) fault timestamps, comparing a static interval
// tuned to the blended MTBF with a regime-adaptive one.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/regime.hpp"
#include "common/table.hpp"
#include "resilience/checkpoint.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - trace-driven checkpointing (Section III-I)",
      "regime-adaptive intervals beat a static Young interval on the real "
      "bursty fault trace");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      data.extraction.faults, window);

  // A full-machine job: every fault (minus the replaced permanent node)
  // kills the running segment.
  std::vector<TimePoint> trace;
  for (const auto& f : data.extraction.faults) {
    if (regimes.excluded && f.node == *regimes.excluded) continue;
    trace.push_back(f.first_seen);
  }
  std::sort(trace.begin(), trace.end());

  resilience::TraceJobConfig config;
  config.start = window.start;
  config.work_hours = 2000.0;
  const resilience::TracePolicyComparison cmp =
      resilience::compare_checkpoint_traces(trace, regimes.regime, window,
                                            config);

  std::printf("fault trace size        : %zu faults\n", trace.size());
  std::printf("static interval         : %.2f h\n", cmp.static_interval_hours);
  std::printf("adaptive intervals      : %.2f h normal / %.2f h degraded\n\n",
              cmp.normal_interval_hours, cmp.degraded_interval_hours);

  TextTable table({"Policy", "Wall (h)", "Lost (h)", "Checkpointing (h)",
                   "Failures hit", "Efficiency"});
  auto add = [&](const char* name, const resilience::TraceJobOutcome& o) {
    table.add_row({name, format_fixed(o.wall_hours, 0),
                   format_fixed(o.lost_hours, 1),
                   format_fixed(o.checkpoint_hours, 1),
                   format_count(o.failures),
                   format_fixed(100.0 * o.efficiency(), 1) + "%"});
  };
  add("static (blended MTBF)", cmp.static_policy);
  add("regime-adaptive", cmp.adaptive_policy);
  std::printf("%s\n", table.render().c_str());

  std::printf("adaptive saves %.0f wall-hours on a %.0f-hour job\n",
              cmp.static_policy.wall_hours - cmp.adaptive_policy.wall_hours,
              config.work_hours);
  return 0;
}
