// Fig 6: number of memory errors per hour for multi-bit corruptions only.
//
// Paper shape: bell-shaped with its peak at noon; errors between 07:00 and
// 18:00 are roughly double the night-time count - the sun-position
// correlation that points at atmospheric neutrons.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 6 - multi-bit errors per hour of day",
      "bell shape peaking at noon; day (07-18h) ~2x night");

  const bench::CampaignData& data = bench::default_data();
  const analysis::HourOfDayProfile profile =
      analysis::hour_of_day_profile(data.extraction.faults);

  std::vector<BarEntry> bars;
  for (int h = 0; h < 24; ++h) {
    bars.push_back({(h < 10 ? "0" : "") + std::to_string(h) + "h",
                    static_cast<double>(profile.multibit(h))});
  }
  std::printf("%s\n", render_bars(bars, 50).c_str());

  // With only ~85 events the raw histogram is noisy; locate the bell's top
  // with a 3-hour sliding window, as one would read the figure.
  int peak_hour = 0;
  std::uint64_t peak = 0;
  for (int h = 0; h < 24; ++h) {
    const std::uint64_t window = profile.multibit((h + 23) % 24) +
                                 profile.multibit(h) +
                                 profile.multibit((h + 1) % 24);
    if (window > peak) {
      peak = window;
      peak_hour = h;
    }
  }
  std::printf("day/night multi-bit ratio : %.2f (paper: ~2)\n",
              profile.day_night_ratio_multibit());
  std::printf("peak (3h window centre)   : %d:00 local (paper: noon)\n",
              peak_hour);
  return 0;
}
