// Fig 6: number of memory errors per hour for multi-bit corruptions only.
//
// Paper shape: bell-shaped with its peak at noon; errors between 07:00 and
// 18:00 are roughly double the night-time count - the sun-position
// correlation that points at atmospheric neutrons.
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_fig06(analysis::hour_of_day_profile(data.extraction.faults));
  return 0;
}
