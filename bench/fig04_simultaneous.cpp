// Fig 4: simultaneous memory errors vs multi-bit errors - the per-memory-
// word and per-node accountings of the same corruption population.
//
// Paper shape: per-node multi-bit counts are orders of magnitude above
// per-word multi-bit counts (tens of thousands of word-level single-bit
// errors co-occur and become node-level multi-bit events); per-node
// single-bit counts are consequently *lower* than per-word single-bit
// counts; the total corruption count is conserved.
#include <cstdio>

#include "analysis/grouping.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 4 - per-word vs per-node multi-bit accounting",
      "per-node multi-bit >> per-word multi-bit; per-node single-bit < "
      "per-word single-bit; >26,000 simultaneous corruptions; bursts up to "
      "36 bits; 44 double+single, 2 triple+single, 1 double+double");

  const bench::CampaignData& data = bench::default_data();
  const analysis::MultibitViewpoints v = analysis::count_viewpoints(data.groups);

  TextTable table({"Bits", "Per memory word", "Per node"});
  for (int bits = 1; bits <= analysis::MultibitViewpoints::kMaxBits; ++bits) {
    if (v.per_word[bits] == 0 && v.per_node[bits] == 0) continue;
    table.add_row({std::to_string(bits), format_count(v.per_word[bits]),
                   format_count(v.per_node[bits])});
  }
  std::printf("%s\n", table.render().c_str());

  std::uint64_t word_single = v.per_word[1], node_single = v.per_node[1];
  std::uint64_t word_multi = 0, node_multi = 0;
  for (int bits = 2; bits <= analysis::MultibitViewpoints::kMaxBits; ++bits) {
    word_multi += v.per_word[bits];
    node_multi += v.per_node[bits];
  }
  std::printf("single-bit  per word / per node : %s / %s\n",
              format_count(word_single).c_str(), format_count(node_single).c_str());
  std::printf("multi-bit   per word / per node : %s / %s\n",
              format_count(word_multi).c_str(), format_count(node_multi).c_str());

  const analysis::CoOccurrence co = analysis::count_co_occurrence(data.groups);
  std::printf("\nsimultaneous corruptions        : %s (paper: >26,000)\n",
              format_count(co.simultaneous_corruptions).c_str());
  std::printf("multi-single-bit groups         : %s (paper: >99.9%% of them)\n",
              format_count(co.multi_single_groups).c_str());
  std::printf("double + single co-occurrences  : %s (paper: 44)\n",
              format_count(co.double_plus_single).c_str());
  std::printf("triple + single co-occurrences  : %s (paper: 2)\n",
              format_count(co.triple_plus_single).c_str());
  std::printf("multi + multi co-occurrences    : %s (paper: 1)\n",
              format_count(co.double_plus_double).c_str());
  std::printf("widest burst                    : %s bits (paper: 36)\n",
              format_count(co.max_bits_one_instant).c_str());
  return 0;
}
