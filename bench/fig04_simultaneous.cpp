// Fig 4: simultaneous memory errors vs multi-bit errors - the per-memory-
// word and per-node accountings of the same corruption population.
//
// Paper shape: per-node multi-bit counts are orders of magnitude above
// per-word multi-bit counts (tens of thousands of word-level single-bit
// errors co-occur and become node-level multi-bit events); per-node
// single-bit counts are consequently *lower* than per-word single-bit
// counts; the total corruption count is conserved.
#include "analysis/grouping.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_fig04(analysis::count_viewpoints(data.groups),
                     analysis::count_co_occurrence(data.groups));
  return 0;
}
