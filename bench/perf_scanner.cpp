// Performance: the live memory scanner's check-and-flip pass.
//
// The original tool's duty is to sweep 3 GB continuously; its pass rate
// bounds the detection latency of every fault in the study.  These
// google-benchmark cases measure the fused verify+write loop over resident
// memory for both patterns and several buffer sizes / thread counts.
#include <benchmark/benchmark.h>

#include "scanner/pattern.hpp"
#include "scanner/real_backend.hpp"
#include "scanner/scanner.hpp"
#include "scanner/sim_backend.hpp"

namespace {

using namespace unp;

void BM_VerifyAndWritePass(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  scanner::RealMemoryBackend backend(bytes, threads);
  backend.fill(0x00000000u);

  Word expected = 0x00000000u;
  Word next = 0xFFFFFFFFu;
  std::uint64_t mismatches = 0;
  for (auto _ : state) {
    backend.verify_and_write(expected, next,
                             [&](std::uint64_t, Word) { ++mismatches; });
    std::swap(expected, next);
  }
  benchmark::DoNotOptimize(mismatches);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_VerifyAndWritePass)
    ->ArgsProduct({{1 << 20, 16 << 20, 256 << 20}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_ScannerStepWithErrors(benchmark::State& state) {
  // A pass over a dirty buffer: fault density per MiB from the arg.
  const std::uint64_t bytes = 16 << 20;
  const auto faults = static_cast<std::uint64_t>(state.range(0));
  scanner::RealMemoryBackend backend(bytes, 1);

  telemetry::NodeLog log;
  scanner::NodeLogSink sink(log);
  scanner::ManualClock clock;
  scanner::FixedProbe probe(35.0);
  scanner::MemoryScanner scan(backend, sink, clock, probe,
                              {cluster::NodeId{0, 1},
                               scanner::PatternKind::kAlternating, 0});
  scan.start();
  for (auto _ : state) {
    for (std::uint64_t f = 0; f < faults; ++f) {
      backend.poke(f * 977 % backend.word_count(), 0xDEADBEEFu);
    }
    scan.step();
  }
  benchmark::DoNotOptimize(scan.errors_logged());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ScannerStepWithErrors)->Arg(0)->Arg(16)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedBackendPass(benchmark::State& state) {
  // The campaign substrate: a virtual 3 GB space with `stuck` faults should
  // cost O(faults), not O(memory).
  const auto stuck = static_cast<std::uint64_t>(state.range(0));
  scanner::SimulatedMemoryBackend backend((3ULL << 30) / 4);
  RngStream rng(1);
  for (std::uint64_t i = 0; i < stuck; ++i) {
    backend.inject_stuck(rng.uniform_u64(backend.word_count()),
                         dram::CellLeakModel::all_discharge(1u << (i % 32)));
  }
  Word expected = 0x00000000u, next = 0xFFFFFFFFu;
  std::uint64_t mismatches = 0;
  for (auto _ : state) {
    backend.verify_and_write(expected, next,
                             [&](std::uint64_t, Word) { ++mismatches; });
    std::swap(expected, next);
  }
  benchmark::DoNotOptimize(mismatches);
}
BENCHMARK(BM_SimulatedBackendPass)->Arg(0)->Arg(100)->Arg(10000);

}  // namespace
