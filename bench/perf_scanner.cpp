// Perf gate: the live memory scanner's check-and-flip pass must run at
// vector speed.
//
// The original tool's duty is to sweep 3 GB continuously; its pass rate
// bounds the detection latency of every fault in the study.  PR 5 moved the
// fused verify+write loop onto runtime-dispatched SIMD kernels
// (src/scanner/kernels); this gate measures every ISA path the CPU supports
// over several buffer sizes and
//
//   PASSes iff the dispatched (best) kernel beats the scalar oracle by
//   >= 1.5x GB/s on every buffer of >= 16 MiB,
//
// printing a human table to stdout and machine-readable results to
// BENCH_scanner.json (override with --json <path>) so the perf trajectory
// is tracked across PRs.  On a CPU with no vector path the gate is skipped
// (scalar cannot beat itself) but the JSON is still written.
//
// Exits non-zero on failure so CI can gate on it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "scanner/kernels/kernels.hpp"
#include "scanner/real_backend.hpp"

namespace kernels = unp::scanner::kernels;

namespace {

using namespace unp;

struct Row {
  std::string kernel;
  std::uint64_t bytes = 0;
  std::size_t threads = 1;
  bool nontemporal = false;
  double pass_gbps = 0.0;  // fused verify+write sweep
  double fill_gbps = 0.0;  // session-start fill
};

/// Best-of-N timing of the fused pass and the fill over one backend.
Row measure(kernels::Isa isa, std::uint64_t bytes, std::size_t threads,
            ThreadPool* pool) {
  scanner::RealMemoryBackend backend =
      pool != nullptr ? scanner::RealMemoryBackend(bytes, *pool)
                      : scanner::RealMemoryBackend(bytes, threads);
  backend.set_kernel_set(kernels::kernels_for(isa));

  // Correctness canary: one planted mismatch must surface exactly once.
  backend.fill(0x00000000u);
  backend.poke(backend.word_count() / 2, 0xDEADBEEFu);
  std::uint64_t canary = 0;
  backend.verify_and_write(0x00000000u, 0xFFFFFFFFu,
                           [&](std::uint64_t, Word) { ++canary; });
  if (canary != 1) {
    std::fprintf(stderr, "FATAL: %s kernel reported %llu mismatches for 1\n",
                 kernels::to_string(isa),
                 static_cast<unsigned long long>(canary));
    std::exit(1);
  }

  const int reps = static_cast<int>(
      std::clamp<std::uint64_t>((512ull << 20) / bytes, 4, 64));
  const double gib = static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);

  Row row;
  row.kernel = kernels::to_string(isa);
  row.bytes = bytes;
  row.threads = threads;
  row.nontemporal = backend.uses_nontemporal_stores();

  Word expected = 0xFFFFFFFFu, next = 0x00000000u;
  std::uint64_t sink = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    backend.verify_and_write(expected, next,
                             [&](std::uint64_t, Word) { ++sink; });
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    std::swap(expected, next);
    if (r == 0) continue;  // warm-up rep: page faults, cold branch state
    row.pass_gbps = std::max(row.pass_gbps, gib / s);
  }
  // A clean buffer reports nothing; fail loudly if a kernel disagrees.
  if (sink != 0) {
    std::fprintf(stderr, "FATAL: %s kernel reported mismatches on a clean "
                         "buffer\n",
                 kernels::to_string(isa));
    std::exit(1);
  }

  for (int r = 0; r < std::max(2, reps / 2); ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    backend.fill(0xA5A5A5A5u);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (r == 0) continue;
    row.fill_gbps = std::max(row.fill_gbps, gib / s);
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                kernels::Isa best, double min_speedup,
                double measured_speedup, bool gated, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"scanner_kernels\",\n");
  std::fprintf(f, "  \"active_kernel\": \"%s\",\n",
               kernels::active_kernels().name);
  std::fprintf(f, "  \"best_kernel\": \"%s\",\n", kernels::to_string(best));
  std::fprintf(f, "  \"nontemporal_threshold_bytes\": %zu,\n",
               kernels::nontemporal_threshold_bytes());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"bytes\": %llu, \"threads\": %zu, "
                 "\"nontemporal\": %s, \"pass_gbps\": %.3f, "
                 "\"fill_gbps\": %.3f}%s\n",
                 r.kernel.c_str(), static_cast<unsigned long long>(r.bytes),
                 r.threads, r.nontemporal ? "true" : "false", r.pass_gbps,
                 r.fill_gbps, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"gate\": {\"min_speedup\": %.2f, \"measured_speedup\": "
               "%.3f, \"gated\": %s, \"pass\": %s}\n}\n",
               min_speedup, measured_speedup, gated ? "true" : "false",
               pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace unp;
  std::string json_path = "BENCH_scanner.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::uint64_t> sizes{1ull << 20, 16ull << 20, 64ull << 20};
  constexpr double kMinSpeedup = 1.5;
  const kernels::Isa best = kernels::best_supported_isa();

  std::printf("scanner sweep kernels (active: %s, best: %s, NT threshold: "
              "%zu MiB)\n",
              kernels::active_kernels().name, kernels::to_string(best),
              kernels::nontemporal_threshold_bytes() >> 20);
  std::printf("%-8s %10s %8s %4s %12s %12s\n", "kernel", "MiB", "threads",
              "NT", "pass GB/s", "fill GB/s");

  std::vector<Row> rows;
  for (const kernels::Isa isa : kernels::supported_isas()) {
    for (const std::uint64_t bytes : sizes) {
      rows.push_back(measure(isa, bytes, 1, nullptr));
      const Row& r = rows.back();
      std::printf("%-8s %10llu %8zu %4s %12.2f %12.2f\n", r.kernel.c_str(),
                  static_cast<unsigned long long>(r.bytes >> 20), r.threads,
                  r.nontemporal ? "yes" : "no", r.pass_gbps, r.fill_gbps);
    }
  }

  // Informational: the best kernel across a shared pool (the deployment
  // shape: the campaign driver lends the scanner its own workers).
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  if (hw > 1) {
    ThreadPool pool(hw);
    rows.push_back(measure(best, sizes.back(), hw, &pool));
    const Row& r = rows.back();
    std::printf("%-8s %10llu %8zu %4s %12.2f %12.2f\n", r.kernel.c_str(),
                static_cast<unsigned long long>(r.bytes >> 20), r.threads,
                r.nontemporal ? "yes" : "no", r.pass_gbps, r.fill_gbps);
  }

  // Gate: dispatched vs scalar on every buffer >= 16 MiB, single-threaded
  // so the comparison isolates the kernel, not the pool.
  bool ok = true;
  bool gated = best != kernels::Isa::kScalar;
  double worst_speedup = 0.0;
  if (!gated) {
    std::printf("gate SKIPPED: no vector path on this CPU\n");
  } else {
    worst_speedup = 1e30;
    for (const std::uint64_t bytes : sizes) {
      if (bytes < (16ull << 20)) continue;
      double scalar_gbps = 0.0, best_gbps = 0.0;
      for (const Row& r : rows) {
        if (r.bytes != bytes || r.threads != 1) continue;
        if (r.kernel == "scalar") scalar_gbps = r.pass_gbps;
        if (r.kernel == kernels::to_string(best)) best_gbps = r.pass_gbps;
      }
      const double speedup = scalar_gbps > 0.0 ? best_gbps / scalar_gbps : 0.0;
      worst_speedup = std::min(worst_speedup, speedup);
      std::printf("gate @ %4llu MiB: %s %.2fx vs scalar (need >= %.1fx)\n",
                  static_cast<unsigned long long>(bytes >> 20),
                  kernels::to_string(best), speedup, kMinSpeedup);
      if (speedup < kMinSpeedup) ok = false;
    }
  }

  write_json(json_path, rows, best, kMinSpeedup, gated ? worst_speedup : 0.0,
             gated, ok);
  std::printf("results written to %s\n", json_path.c_str());
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
