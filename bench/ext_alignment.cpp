// Extension: testing the paper's physical-alignment suspicion.
//
// Section III-C: "We suspect that the affected memory cells are in physical
// proximity or alignment (row, column, bank) however the memory controller
// maps them to different address words."  The authors had no address map;
// we do.  Every multi-word simultaneous group is projected back to
// (rank, bank, row, column) coordinates and classified: the degrading
// component's bursts should come out row-aligned, while neutron showers
// (genuinely independent strikes) stay scattered.
#include "analysis/alignment.hpp"
#include "dram/address_map.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  const dram::AddressMap map(dram::default_geometry());
  bench::print_ext_alignment(analysis::physical_alignment_stats(data.groups, map),
                             analysis::logical_spread(data.groups));
  return 0;
}
