// Extension: testing the paper's physical-alignment suspicion.
//
// Section III-C: "We suspect that the affected memory cells are in physical
// proximity or alignment (row, column, bank) however the memory controller
// maps them to different address words."  The authors had no address map;
// we do.  Every multi-word simultaneous group is projected back to
// (rank, bank, row, column) coordinates and classified: the degrading
// component's bursts should come out row-aligned, while neutron showers
// (genuinely independent strikes) stay scattered.
#include <cstdio>

#include "analysis/alignment.hpp"
#include "common/table.hpp"
#include "dram/address_map.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - physical alignment of simultaneous corruptions",
      "multi-word groups project onto shared rows; the controller's "
      "interleaving scatters them across logical addresses");

  const bench::CampaignData& data = bench::default_data();
  const dram::AddressMap map(dram::default_geometry());

  const analysis::AlignmentStats stats =
      analysis::physical_alignment_stats(data.groups, map);

  TextTable table({"Geometry", "Groups", "Share"});
  auto add = [&](const char* name, std::uint64_t count) {
    table.add_row({name, format_count(count),
                   format_fixed(100.0 * static_cast<double>(count) /
                                    static_cast<double>(stats.groups_examined),
                                1) + "%"});
  };
  add("same row (rank+bank+row)", stats.same_row);
  add("same column (rank+bank+col)", stats.same_column);
  add("same bank, mixed row/col", stats.same_bank);
  add("scattered across banks", stats.scattered);
  add("contains a same-row pair", stats.with_aligned_pair);
  std::printf("multi-word simultaneous groups: %s\n\n%s\n",
              format_count(stats.groups_examined).c_str(),
              table.render().c_str());

  const analysis::LogicalSpread spread = analysis::logical_spread(data.groups);
  std::printf("mean logical span inside a group : %.1f MB\n",
              spread.mean_span_bytes / (1 << 20));
  std::printf("max logical span inside a group  : %.1f MB\n",
              static_cast<double>(spread.max_span_bytes) / (1 << 20));
  std::printf(
      "\n(%.1f%% of groups are entirely one row; %.1f%% contain a same-row "
      "pair - random rows essentially never collide, so each pair marks a "
      "physically aligned burst.  The cells are close; their logical "
      "addresses sit megabytes apart: the paper's suspicion, now measured.)\n",
      100.0 * stats.aligned_fraction(),
      100.0 * static_cast<double>(stats.with_aligned_pair) /
          static_cast<double>(stats.groups_examined));
  return 0;
}
