// Fig 9: total amount of memory scanned per day (terabyte-hours).
//
// Paper shape: intense scanning through August, September and December
// (academic vacations leave nodes idle); lower levels April-July.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 9 - terabyte-hours scanned per day",
      "peaks in Aug/Sep/Dec (vacations), trough Apr-Jul (term time)");

  const bench::CampaignData& data = bench::default_data();
  const std::vector<double> series =
      analysis::daily_terabyte_hours(data.campaign->archive);
  const CampaignWindow& window = data.campaign->archive.window();

  // Monthly aggregation for a readable shape; daily values summarized.
  struct Month {
    int year, month;
    double tbh = 0.0;
    int days = 0;
  };
  std::vector<Month> months;
  for (std::size_t d = 0; d < series.size(); ++d) {
    const CivilDateTime c = to_civil_utc(
        window.start + static_cast<TimePoint>(d) * kSecondsPerDay);
    if (months.empty() || months.back().month != c.month ||
        months.back().year != c.year) {
      months.push_back({c.year, c.month, 0.0, 0});
    }
    months.back().tbh += series[d];
    ++months.back().days;
  }

  std::vector<BarEntry> bars;
  for (const auto& m : months) {
    if (m.days < 5) continue;  // trailing partial bucket
    char label[16];
    std::snprintf(label, sizeof label, "%04d-%02d", m.year, m.month);
    bars.push_back({label, m.tbh / m.days});
  }
  std::printf("mean TB-h scanned per day, by month:\n%s\n",
              render_bars(bars, 50).c_str());

  double summer = 0.0, term = 0.0;
  int summer_n = 0, term_n = 0;
  for (const auto& m : months) {
    if (m.month == 8 || m.month == 9 || m.month == 12) {
      summer += m.tbh;
      summer_n += m.days;
    } else if (m.month >= 4 && m.month <= 7) {
      term += m.tbh;
      term_n += m.days;
    }
  }
  std::printf("vacation vs term-time daily scan ratio : %.2f (paper: >1)\n",
              (term_n && summer_n)
                  ? (summer / summer_n) / (term / term_n)
                  : 0.0);
  return 0;
}
