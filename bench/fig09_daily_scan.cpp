// Fig 9: total amount of memory scanned per day (terabyte-hours).
//
// Paper shape: intense scanning through August, September and December
// (academic vacations leave nodes idle); lower levels April-July.
#include <vector>

#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  const std::vector<double> series =
      analysis::daily_terabyte_hours(data.campaign->archive);
  bench::print_fig09(series, data.campaign->archive.window());
  return 0;
}
