// Perf gate: shadow-evaluating K policies in ONE campaign pass must beat
// running K separate single-policy campaigns, and the shadow outcomes must
// be identical for any worker thread count.
//
// Protocol (warm cache so we measure the engine, not the simulator):
//   1. one throwaway pass primes the campaign cache;
//   2. A = K sequential passes, one policy each (the naive alternative);
//   3. B = one pass carrying all K policies;
//   4. PASS iff A/B >= 2.0x and the K=3 outcomes are field-for-field
//      bit-identical across {1, 2, 8} threads.
//
// Exits non-zero on failure so CI can gate on it.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "policy/builtin.hpp"
#include "policy/engine.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"

namespace {

using namespace unp;

std::unique_ptr<policy::Policy> make_policy(int which) {
  switch (which) {
    case 0: {
      policy::ThresholdQuarantinePolicy::Config tq;
      tq.period_days = 30;
      return std::make_unique<policy::ThresholdQuarantinePolicy>(tq);
    }
    case 1:
      return std::make_unique<policy::PredictiveQuarantinePolicy>();
    default:
      return std::make_unique<policy::AdaptiveCheckpointPolicy>();
  }
}

policy::EngineResult run_pass(const sim::CampaignConfig& config,
                              const analysis::ExtractionConfig& extraction,
                              const std::vector<int>& which,
                              std::size_t threads, double& elapsed_ms) {
  policy::PolicyEngine::Config engine_config;
  engine_config.extraction = extraction;
  policy::PolicyEngine engine(engine_config);
  for (const int w : which) engine.add_policy(make_policy(w));
  const auto t0 = std::chrono::steady_clock::now();
  const bench::StreamStats stats =
      bench::stream_campaign(config, extraction, {&engine}, threads);
  policy::EngineResult result = engine.finish();
  elapsed_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  if (!stats.from_cache) {
    std::fprintf(stderr, "warning: pass ran cold (cache miss) — timing "
                         "includes simulation\n");
  }
  return result;
}

bool outcomes_equal(const policy::PolicyOutcome& a,
                    const policy::PolicyOutcome& b) {
  const auto& qa = a.quarantine;
  const auto& qb = b.quarantine;
  return a.policy_name == b.policy_name &&
         qa.counted_errors == qb.counted_errors &&
         qa.suppressed_errors == qb.suppressed_errors &&
         qa.quarantine_entries == qb.quarantine_entries &&
         qa.quarantined_seconds == qb.quarantined_seconds &&
         qa.node_days_quarantined == qb.node_days_quarantined &&
         qa.system_mtbf_hours == qb.system_mtbf_hours &&
         qa.availability_loss == qb.availability_loss &&
         a.pages_retired == b.pages_retired &&
         a.retired_absorbed_errors == b.retired_absorbed_errors &&
         a.placement_flags == b.placement_flags &&
         a.interval_changes == b.interval_changes &&
         a.protection_changes == b.protection_changes &&
         a.actions_emitted == b.actions_emitted && a.report == b.report;
}

}  // namespace

int main() {
  const sim::CampaignConfig config;
  const analysis::ExtractionConfig extraction;
  const std::vector<int> all{0, 1, 2};
  const std::size_t threads = sim::default_campaign_threads();

  // Warm the cache (timing discarded; this pass may simulate).
  double warm_ms = 0.0;
  run_pass(config, extraction, {0}, threads, warm_ms);
  std::printf("cache warm-up                : %9.1f ms\n", warm_ms);

  // A: K separate single-policy campaigns.
  double sequential_ms = 0.0;
  std::vector<policy::PolicyOutcome> sequential;
  for (const int w : all) {
    double ms = 0.0;
    policy::EngineResult r = run_pass(config, extraction, {w}, threads, ms);
    sequential_ms += ms;
    sequential.push_back(std::move(r.outcomes.front()));
  }
  std::printf("A: 3 single-policy passes    : %9.1f ms\n", sequential_ms);

  // B: one pass, all K policies shadowed.
  double shadow_ms = 0.0;
  const policy::EngineResult shadow =
      run_pass(config, extraction, all, threads, shadow_ms);
  std::printf("B: 1 three-policy pass       : %9.1f ms\n", shadow_ms);

  const double speedup = shadow_ms > 0.0 ? sequential_ms / shadow_ms : 0.0;
  std::printf("speedup A/B                  : %9.2fx  (gate: >= 2.0x)\n",
              speedup);

  bool ok = speedup >= 2.0;
  if (!ok) std::printf("FAIL: shadow pass not >= 2x faster\n");

  // Shadow outcomes must match the single-policy passes...
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!outcomes_equal(sequential[i], shadow.outcomes[i])) {
      std::printf("FAIL: policy %zu differs between shadow and solo pass\n", i);
      ok = false;
    }
  }

  // ...and be invariant across worker thread counts.
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    double ms = 0.0;
    const policy::EngineResult r = run_pass(config, extraction, all, t, ms);
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (!outcomes_equal(r.outcomes[i], shadow.outcomes[i])) {
        std::printf("FAIL: policy %zu differs at threads=%zu\n", i, t);
        ok = false;
      }
    }
    std::printf("threads=%zu                    : %9.1f ms  (%s)\n", t, ms,
                ok ? "outcomes identical" : "MISMATCH");
  }

  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
