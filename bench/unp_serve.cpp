// Long-lived query/report server over the UNPF columnar fault store, plus
// the matching workload client.
//
// Server mode:
//
//   unp_serve --store PATH [PATH...] [--port P] [--port-file F]
//             [--workers N] [--cache N]
//
// opens the store once (several paths = one partitioned store), binds
// 127.0.0.1 (--port 0 = ephemeral; the bound port goes to stderr and to
// --port-file for scripts), and answers request lines carrying exactly the
// unp_query predicate/action vocabulary:
//
//   --blade 30 --class multi --count
//   --fig 3
//   --since 1440000000 --until 1440100000 --limit 10
//
// Responses are length-framed ("OK <len>\n<body>"), and each body is
// byte-identical to the stdout of the equivalent unp_query invocation —
// both front ends render through util/query_render.  Admin lines: ping,
// stats, swap PATH..., shutdown.
//
// Client mode:
//
//   unp_serve --connect PORT (--request LINE | --workload FILE)
//             [--threads N] [--repeat K]
//
// replays request lines (--request may repeat; --workload reads one request
// per non-empty, non-# line) against a running server and prints the
// response bodies to stdout in request order regardless of --threads, so
// `cmp` against concatenated unp_query output proves byte-identity.  Exit
// status: 0 when every response is OK, 2 on any ERR or transport failure.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "store/reader.hpp"
#include "util/cli_args.hpp"
#include "util/query_render.hpp"

namespace {

using namespace unp;

struct Options {
  std::vector<std::string> store_paths;
  long port = 0;
  std::string port_file;
  long workers = 4;
  long cache = 256;

  long connect = -1;  ///< >= 0 selects client mode
  std::vector<std::string> requests;
  std::string workload_path;
  long threads = 1;
  long repeat = 1;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: unp_serve --store PATH [PATH...] [server options]\n"
      "       unp_serve --connect PORT (--request LINE | --workload FILE)\n"
      "                 [client options]\n"
      "server:\n"
      "  --store PATH...    store file(s); several paths open one\n"
      "                     partitioned store\n"
      "  --port P           listen port (default 0 = ephemeral)\n"
      "  --port-file F      write the bound port to F (for scripts)\n"
      "  --workers N        accept/render threads (default 4)\n"
      "  --cache N          result-cache capacity in responses (default "
      "256;\n"
      "                     0 disables caching)\n"
      "client:\n"
      "  --connect PORT     send requests to 127.0.0.1:PORT\n"
      "  --request LINE     one request line (repeatable)\n"
      "  --workload FILE    request lines from FILE (# starts a comment)\n"
      "  --threads N        client threads (default 1; output stays in\n"
      "                     request order)\n"
      "  --repeat K         replay the request list K times (default 1)\n"
      "requests use the unp_query vocabulary, e.g. '--blade 30 --count';\n"
      "admin lines: ping, stats, swap PATH..., shutdown\n");
}

bool parse_args(int argc, char** argv, Options& opts) {
  const bench::CliParser cli("unp_serve", argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--store") == 0) {
      // Greedy: every following non-flag token is a part path.
      const char* v = cli.next_value(i, "--store");
      if (!v) return false;
      opts.store_paths.emplace_back(v);
      while (i + 1 < argc && argv[i + 1][0] != '-')
        opts.store_paths.emplace_back(argv[++i]);
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!cli.long_in(i, "--port", 0, 65535, opts.port)) return false;
    } else if (std::strcmp(arg, "--port-file") == 0) {
      const char* v = cli.next_value(i, "--port-file");
      if (!v) return false;
      opts.port_file = v;
    } else if (std::strcmp(arg, "--workers") == 0) {
      if (!cli.long_in(i, "--workers", 1, 1024, opts.workers)) return false;
    } else if (std::strcmp(arg, "--cache") == 0) {
      if (!cli.long_in(i, "--cache", 0, 1L << 20, opts.cache)) return false;
    } else if (std::strcmp(arg, "--connect") == 0) {
      if (!cli.long_in(i, "--connect", 1, 65535, opts.connect)) return false;
    } else if (std::strcmp(arg, "--request") == 0) {
      const char* v = cli.next_value(i, "--request");
      if (!v) return false;
      opts.requests.emplace_back(v);
    } else if (std::strcmp(arg, "--workload") == 0) {
      const char* v = cli.next_value(i, "--workload");
      if (!v) return false;
      opts.workload_path = v;
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (!cli.long_in(i, "--threads", 1, 1024, opts.threads)) return false;
    } else if (std::strcmp(arg, "--repeat") == 0) {
      if (!cli.long_in(i, "--repeat", 1, 1L << 20, opts.repeat)) return false;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unp_serve: unknown option '%s'\n", arg);
      usage(stderr);
      return false;
    }
  }
  const bool server = !opts.store_paths.empty();
  const bool client = opts.connect >= 0;
  if (server == client) {
    std::fprintf(stderr,
                 "unp_serve: need exactly one of --store (server) or "
                 "--connect (client)\n");
    usage(stderr);
    return false;
  }
  if (client && opts.requests.empty() && opts.workload_path.empty()) {
    std::fprintf(stderr,
                 "unp_serve: client mode needs --request or --workload\n");
    return false;
  }
  return true;
}

int run_server(const Options& opts) {
  serve::Server::Config config;
  config.store_paths = opts.store_paths;
  config.port = static_cast<std::uint16_t>(opts.port);
  config.workers = static_cast<std::size_t>(opts.workers);
  config.cache_capacity = static_cast<std::size_t>(opts.cache);

  // Workers are the concurrency unit, so each render scans sequentially
  // (ScanOptions.pool = nullptr): N slow scans in parallel beat N scans
  // fighting over one nested pool.
  serve::Server server(
      std::move(config),
      [](const std::string& line, const store::StoreReader& reader) {
        const bench::QueryRequest req = bench::parse_request_line(line);
        return bench::render_request_to_string(reader, req,
                                               store::ScanOptions{});
      });
  server.start();

  std::fprintf(stderr,
               "unp_serve: listening on 127.0.0.1:%u  (%zu workers, cache "
               "%ld, store %s)\n",
               server.port(), static_cast<std::size_t>(opts.workers),
               opts.cache, opts.store_paths.front().c_str());
  if (!opts.port_file.empty()) {
    std::ofstream pf(opts.port_file, std::ios::trunc);
    pf << server.port() << "\n";
    if (!pf.flush()) {
      std::fprintf(stderr, "unp_serve: cannot write port file '%s'\n",
                   opts.port_file.c_str());
      server.stop();
      return 2;
    }
  }

  server.wait();  // released by a client's `shutdown`
  server.stop();
  const serve::Server::Stats stats = server.stats();
  std::fprintf(stderr,
               "unp_serve: shut down after %llu queries  (cache %llu hits / "
               "%llu misses)\n",
               static_cast<unsigned long long>(stats.queries),
               static_cast<unsigned long long>(stats.cache.hits),
               static_cast<unsigned long long>(stats.cache.misses));
  return 0;
}

std::vector<std::string> load_workload(const Options& opts) {
  std::vector<std::string> lines = opts.requests;
  if (!opts.workload_path.empty()) {
    std::ifstream in(opts.workload_path);
    if (!in) {
      std::fprintf(stderr, "unp_serve: cannot read workload '%s'\n",
                   opts.workload_path.c_str());
      std::exit(2);
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      lines.push_back(line);
    }
  }
  std::vector<std::string> repeated;
  repeated.reserve(lines.size() * static_cast<std::size_t>(opts.repeat));
  for (long k = 0; k < opts.repeat; ++k)
    repeated.insert(repeated.end(), lines.begin(), lines.end());
  return repeated;
}

int run_client(const Options& opts) {
  const std::vector<std::string> requests = load_workload(opts);
  const std::size_t n = requests.size();
  std::vector<serve::Response> responses(n);
  const std::size_t nthreads =
      std::min<std::size_t>(static_cast<std::size_t>(opts.threads),
                            n == 0 ? 1 : n);

  std::mutex error_mutex;
  std::vector<std::string> transport_errors;
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        const int fd =
            serve::connect_local(static_cast<std::uint16_t>(opts.connect));
        for (std::size_t i = t; i < n; i += nthreads)
          responses[i] = serve::roundtrip(fd, requests[i]);
        (void)::close(fd);
      } catch (const ContractViolation& e) {
        std::lock_guard<std::mutex> lock(error_mutex);
        transport_errors.emplace_back(e.what());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (const std::string& err : transport_errors)
    std::fprintf(stderr, "unp_serve: %s\n", err.c_str());
  if (!transport_errors.empty()) return 2;

  bool any_err = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (responses[i].ok) {
      std::fwrite(responses[i].body.data(), 1, responses[i].body.size(),
                  stdout);
    } else {
      any_err = true;
      std::fprintf(stderr, "unp_serve: ERR for '%s': %s\n",
                   requests[i].c_str(), responses[i].body.c_str());
    }
  }
  return any_err ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;
  try {
    return opts.connect >= 0 ? run_client(opts) : run_server(opts);
  } catch (const ContractViolation& e) {
    std::fprintf(stderr, "unp_serve: fatal: %s\n", e.what());
    return 2;
  }
}
