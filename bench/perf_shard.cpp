// Performance gate: the sharded campaign fabric at ensemble scale.
//
// The fabric's promise is twofold: sharding is EXACT (a K-way partition
// merges back into the byte-identical monolithic record stream) and it is
// CHEAP (per-shard memory stays bounded by one node's frame, so a fleet of
// shard processes can sweep an ensemble far larger than any single-machine
// campaign).  This bench gates both halves:
//
//   1. Exactness canary - a two-week slice simulated monolithically and as
//      4 shards; the streaming merge of the shard archives must equal the
//      monolithic UNPS stream byte for byte.
//
//   2. Ensemble throughput - a ~100-member ensemble (distinct seeds) of
//      two-week sharded campaigns streamed through counting sinks.  Reports
//      simulated node-days per second and gates peak RSS: streaming shards
//      never materialize an archive, so memory must stay flat no matter how
//      many members run.
//
// Writes machine-readable results to BENCH_shard.json (override with
// --json <path>).  Exits non-zero on failure so CI can gate on it.
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/shard.hpp"
#include "telemetry/shard_merge.hpp"
#include "util/campaign_cache.hpp"
#include "util/cli_args.hpp"

namespace {

using namespace unp;

constexpr int kShards = 4;
constexpr double kRssLimitMiB = 2048.0;

sim::CampaignConfig slice_config(std::uint64_t seed) {
  sim::CampaignConfig config;
  config.seed = seed;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 9, 15, 0, 0, 0});
  return config;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Peak resident set of this process, MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Counts records without retaining them: the bounded-memory consumer the
/// ensemble streams through.
class CountingSink final : public telemetry::RecordSink {
 public:
  void on_start(const telemetry::StartRecord&) override {}
  void on_end(const telemetry::EndRecord&) override {}
  void on_alloc_fail(const telemetry::AllocFailRecord&) override {}
  void on_error_run(const telemetry::ErrorRun& r) override {
    raw_errors_ += r.count;
  }
  [[nodiscard]] std::uint64_t raw_errors() const noexcept {
    return raw_errors_;
  }

 private:
  std::uint64_t raw_errors_ = 0;
};

/// Gate 1: K shard archives merge back into the monolithic bytes.
bool run_exactness_canary(std::size_t threads) {
  const sim::CampaignConfig config = slice_config(42);
  const std::uint64_t fingerprint =
      bench::campaign_fingerprint(config, analysis::ExtractionConfig{});

  std::ostringstream mono;
  {
    telemetry::ArchiveWriter writer(mono);
    (void)sim::run_campaign_shard(config, sim::ShardSpec{}, {&writer},
                                  threads);
  }

  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  std::vector<std::string> paths;
  for (int i = 0; i < kShards; ++i) {
    const std::string path = dir + "/unp_perf_shard_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(i) + ".unph";
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    telemetry::write_shard_header(
        os, {kShards, static_cast<std::uint32_t>(i), fingerprint});
    telemetry::ArchiveWriter writer(os);
    (void)sim::run_campaign_shard(config, sim::ShardSpec{kShards, i},
                                  {&writer}, threads);
    paths.push_back(path);
  }

  std::ostringstream merged;
  telemetry::merge_shard_archives(paths, merged);
  for (const std::string& path : paths) std::remove(path.c_str());

  const bool identical = merged.view() == mono.view();
  std::printf("exactness canary       : %d shards merged %s monolithic "
              "(%zu bytes)\n",
              kShards, identical ? "==" : "DIVERGED from",
              mono.view().size());
  return identical;
}

void write_json(const std::string& path, bool canary, int members,
                double node_days, double elapsed_s, double throughput,
                double rss_mib, bool rss_ok, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_shard\",\n"
               "  \"shards\": %d,\n"
               "  \"canary_byte_identical\": %s,\n"
               "  \"ensemble_members\": %d,\n"
               "  \"node_days\": %.1f,\n"
               "  \"elapsed_s\": %.3f,\n"
               "  \"node_days_per_s\": %.1f,\n"
               "  \"peak_rss_mib\": %.1f,\n"
               "  \"rss_limit_mib\": %.1f,\n"
               "  \"rss_bounded\": %s,\n"
               "  \"pass\": %s\n"
               "}\n",
               kShards, canary ? "true" : "false", members, node_days,
               elapsed_s, throughput, rss_mib, kRssLimitMiB,
               rss_ok ? "true" : "false", pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_shard.json";
  long members = 100;
  const bench::CliParser cli("bench_perf_shard", argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = cli.next_value(i, "--json");
      if (v == nullptr) return 2;
      json_path = v;
    } else if (std::strcmp(argv[i], "--members") == 0) {
      if (!cli.long_in(i, "--members", 1, bench::CliParser::kNoUpperBound,
                       members))
        return 2;
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--members <n>]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "perf_shard - sharded campaign fabric at ensemble scale",
      "4-shard merge byte-identical to the monolithic stream; ensemble "
      "throughput in node-days/s with peak RSS bounded");

  const std::size_t threads = sim::default_campaign_threads();
  const bool canary = run_exactness_canary(threads);

  // --- Ensemble sweep: `members` sharded two-week campaigns. ----------------
  const auto t0 = std::chrono::steady_clock::now();
  double node_days = 0.0;
  std::uint64_t raw_errors = 0;
  for (long m = 0; m < members; ++m) {
    const sim::CampaignConfig config = slice_config(1000 + static_cast<std::uint64_t>(m));
    const double days =
        static_cast<double>(config.window.end - config.window.start) / 86400.0;
    for (int i = 0; i < kShards; ++i) {
      CountingSink counter;
      const sim::CampaignSummary summary = sim::run_campaign_shard(
          config, sim::ShardSpec{kShards, i}, {&counter}, threads);
      node_days += static_cast<double>(summary.accounting.size()) * days;
      raw_errors += counter.raw_errors();
    }
  }
  const double elapsed_s = seconds_since(t0);
  const double throughput = node_days / elapsed_s;
  const double rss_mib = peak_rss_mib();
  const bool rss_ok = rss_mib <= kRssLimitMiB;

  std::printf("ensemble               : %ld members x %d shards  "
              "(%llu raw errors)\n",
              members, kShards, static_cast<unsigned long long>(raw_errors));
  std::printf("throughput             : %.0f node-days in %.2f s = "
              "%.0f node-days/s\n",
              node_days, elapsed_s, throughput);
  std::printf("peak RSS               : %.1f MiB (limit %.0f MiB) %s\n",
              rss_mib, kRssLimitMiB, rss_ok ? "" : "EXCEEDED");

  const bool pass = canary && rss_ok;
  write_json(json_path, canary, static_cast<int>(members), node_days,
             elapsed_s, throughput, rss_mib, rss_ok, pass);
  std::printf("results written to %s\n", json_path.c_str());
  if (!pass) {
    std::printf("\nPERF GATE FAILED (%s%s%s)\n", canary ? "" : "exactness",
                !canary && !rss_ok ? ", " : "", rss_ok ? "" : "rss");
    return 1;
  }
  std::printf("\nperf gates met\n");
  return 0;
}
