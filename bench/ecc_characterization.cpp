// SECDED(72,64) outcome characterization by error weight.
//
// Grounds the paper's SDC arithmetic: SECDED corrects weight-1, detects
// weight-2, and for wider errors splits between detection, miscorrection
// and (for even weights whose syndrome cancels) complete silence.  Weights
// 1 and 2 are verified exhaustively; higher weights are Monte Carlo.  The
// silent fractions here are what turns Table I's ">2 corrupted bits" rows
// into the paper's silent-data-corruption exposure.
#include <bit>
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "ecc/secded.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "SECDED(72,64) outcome characterization by error weight",
      "w=1 always corrected; w=2 always detected; w>2 splits into detected / "
      "miscorrected / undetected - the SDC exposure");

  const ecc::Secded7264& code = ecc::Secded7264::instance();
  RngStream rng(4242);

  TextTable table({"Flipped data bits", "Samples", "Corrected OK",
                   "Detected", "Miscorrected", "Silent (clean decode)"});

  for (int weight = 1; weight <= 8; ++weight) {
    std::uint64_t corrected = 0, detected = 0, miscorrected = 0, silent = 0;
    std::uint64_t samples = 0;

    auto classify = [&](std::uint64_t data, std::uint64_t corrupted) {
      const std::uint8_t check = code.encode(data);
      const auto res = code.decode(corrupted, check);
      ++samples;
      switch (res.action) {
        case ecc::Secded7264::Action::kClean:
          ++silent;
          break;
        case ecc::Secded7264::Action::kCorrectedData:
          res.data == data ? ++corrected : ++miscorrected;
          break;
        case ecc::Secded7264::Action::kCorrectedCheck:
          ++miscorrected;  // data left corrupted
          break;
        case ecc::Secded7264::Action::kDetected:
          ++detected;
          break;
      }
    };

    if (weight <= 2) {
      // Exhaustive over bit positions (data value is irrelevant: linear code).
      const std::uint64_t data = 0xA5A5A5A55A5A5A5AULL;
      if (weight == 1) {
        for (int i = 0; i < 64; ++i) classify(data, data ^ (1ULL << i));
      } else {
        for (int i = 0; i < 64; ++i) {
          for (int j = i + 1; j < 64; ++j) {
            classify(data, data ^ (1ULL << i) ^ (1ULL << j));
          }
        }
      }
    } else {
      constexpr std::uint64_t kSamples = 200000;
      for (std::uint64_t s = 0; s < kSamples; ++s) {
        const std::uint64_t data = rng.next_u64();
        std::uint64_t mask = 0;
        while (std::popcount(mask) < weight) {
          mask |= 1ULL << rng.uniform_u64(64);
        }
        classify(data, data ^ mask);
      }
    }

    auto pct = [&](std::uint64_t v) {
      return format_fixed(100.0 * static_cast<double>(v) /
                              static_cast<double>(samples),
                          3) + "%";
    };
    table.add_row({std::to_string(weight), format_count(samples),
                   pct(corrected), pct(detected), pct(miscorrected),
                   pct(silent)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "(miscorrected = the decoder 'fixed' a healthy bit; silent = the\n"
      " corrupted word decoded as valid.  Both reach the application as\n"
      " wrong data - the per-weight SDC exposure behind Section III-D)\n");
  return 0;
}
