// Fig 7: memory errors vs node temperature, per corrupted-bit class.
//
// Paper shape: most errors land between 30 and 40 degC (the scanner does
// not stress the CPU); a small tail of errors above 60 degC from the
// overheating slots; no correlation between heat and error rate overall.
// Records from before April 2015 carry no reading.
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  bench::print_fig07(analysis::temperature_profile(data.extraction.faults));
  return 0;
}
