// Fig 7: memory errors vs node temperature, per corrupted-bit class.
//
// Paper shape: most errors land between 30 and 40 degC (the scanner does
// not stress the CPU); a small tail of errors above 60 degC from the
// overheating slots; no correlation between heat and error rate overall.
// Records from before April 2015 carry no reading.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 7 - errors vs node temperature, by corrupted bits",
      "bulk at 30-40 degC; small >60 degC tail; no high-temperature "
      "correlation");

  const bench::CampaignData& data = bench::default_data();
  const analysis::TemperatureProfile profile =
      analysis::temperature_profile(data.extraction.faults);

  TextTable table({"Temp bin", "1", "2", "3", "4", "5", "6+"});
  for (std::size_t bin = 0; bin < analysis::TemperatureProfile::kBins; ++bin) {
    std::uint64_t row_total = 0;
    std::vector<std::string> row{
        format_fixed(profile.by_class[0].bin_lo(bin), 0) + "-" +
        format_fixed(profile.by_class[0].bin_lo(bin) + 2.0, 0) + "C"};
    for (int c = 0; c < analysis::kBitClasses; ++c) {
      const std::uint64_t v =
          profile.by_class[static_cast<std::size_t>(c)].count(bin);
      row.push_back(std::to_string(v));
      row_total += v;
    }
    if (row_total > 0) table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  std::uint64_t in_band = 0, hot = 0, total = 0;
  for (int c = 0; c < analysis::kBitClasses; ++c) {
    const auto& h = profile.by_class[static_cast<std::size_t>(c)];
    for (std::size_t bin = 0; bin < h.bins(); ++bin) {
      const double lo = h.bin_lo(bin);
      total += h.count(bin);
      if (lo >= 30.0 && lo < 40.0) in_band += h.count(bin);
      if (lo >= 60.0) hot += h.count(bin);
    }
    total += h.underflow() + h.overflow();
    hot += h.overflow();
  }
  std::printf("errors with a reading        : %s\n", format_count(total).c_str());
  std::printf("errors without (pre-April)   : %s\n",
              format_count(profile.without_reading).c_str());
  std::printf("fraction in 30-40 degC       : %.1f%% (paper: most)\n",
              total ? 100.0 * static_cast<double>(in_band) /
                          static_cast<double>(total)
                    : 0.0);
  std::printf("errors above 60 degC         : %s (paper: small set)\n",
              format_count(hot).c_str());
  return 0;
}
