// Table II: system MTBF for different quarantine periods.
//
// Paper: period 0 -> 4779 errors, MTBF 2.1 h; period 30 d -> 65 errors,
// 180 node-days quarantined, MTBF 156.9 h; availability loss <0.1%.
// MTBF improves by nearly three orders of magnitude.
#include <cstdio>

#include "analysis/regime.hpp"
#include "common/table.hpp"
#include "resilience/quarantine.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Table II - quarantine sweep (Section IV)",
      "0d: 4779 errors / 2.1h MTBF ... 30d: 65 errors / 180 node-days / "
      "156.9h MTBF; ~3 orders of magnitude for <0.1% availability");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();

  // Like the paper, drop the permanently failing node first.
  const analysis::AutoRegime regimes =
      analysis::classify_regime_excluding_loudest(data.extraction.faults, window);
  resilience::QuarantineConfig base;
  if (regimes.excluded) base.excluded_nodes.push_back(*regimes.excluded);

  const std::vector<int> periods{0, 5, 10, 15, 20, 25, 30};
  const auto sweep = resilience::quarantine_sweep(data.extraction.faults,
                                                  window, periods, base);

  TextTable table({"Quarantine (days)", "Errors", "Node-days in quarantine",
                   "System MTBF (h)", "Availability loss"});
  for (const auto& row : sweep) {
    table.add_row({std::to_string(row.period_days),
                   format_count(row.counted_errors),
                   format_fixed(row.node_days_quarantined, 0),
                   format_fixed(row.system_mtbf_hours, 1),
                   format_fixed(100.0 * row.availability_loss, 3) + "%"});
  }
  std::printf("%s\n", table.render().c_str());

  const double gain =
      sweep.back().system_mtbf_hours / sweep.front().system_mtbf_hours;
  std::printf("MTBF gain 0d -> 30d : %.0fx (paper: ~75x, 'almost three orders "
              "of magnitude' vs per-day rates)\n",
              gain);
  return 0;
}
