// Table II: system MTBF for different quarantine periods.
//
// Paper: period 0 -> 4779 errors, MTBF 2.1 h; period 30 d -> 65 errors,
// 180 node-days quarantined, MTBF 156.9 h; availability loss <0.1%.
// MTBF improves by nearly three orders of magnitude.
//
// Rendering lives in bench::print_tab2, shared with the online policy
// engine's `unp_policy --sweep` so both paths print byte-identically.
#include "analysis/regime.hpp"
#include "resilience/quarantine.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();

  // Like the paper, drop the permanently failing node first.
  const analysis::AutoRegime regimes =
      analysis::classify_regime_excluding_loudest(data.extraction.faults, window);
  resilience::QuarantineConfig base;
  if (regimes.excluded) base.excluded_nodes.push_back(*regimes.excluded);

  const std::vector<int> periods{0, 5, 10, 15, 20, 25, 30};
  const auto sweep = resilience::quarantine_sweep(data.extraction.faults,
                                                  window, periods, base);
  bench::print_tab2(sweep);
  return 0;
}
