// Ablation: data-line scrambling on vs off (DESIGN.md #1).
//
// The paper attributes non-adjacent multi-bit flips to the device layout
// "spreading the adjacent bits of the word".  With the scrambler replaced
// by the identity mapping, physically contiguous upsets hit logically
// consecutive bits and Table I's non-adjacency signature disappears -
// which would make codes optimized for adjacent-bit errors look much
// better than they really are.
#include <cstdio>

#include "analysis/bitstats.hpp"
#include "analysis/extraction.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"

namespace {

unp::analysis::AdjacencyStats run_with_scrambler(const unp::dram::BitScrambler& s) {
  using namespace unp;
  sim::CampaignConfig config;
  config.faults.neutron.scrambler = s;
  config.faults.isolated_sdc.scrambler = s;
  const sim::CampaignResult campaign = sim::run_campaign(config);
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign.archive);
  return analysis::adjacency_stats(extraction.faults);
}

}  // namespace

int main() {
  using namespace unp;
  bench::print_header(
      "Ablation - bit scrambling on/off",
      "with layout scrambling the majority of multi-bit faults are "
      "non-adjacent (mean distance ~3); identity layout flips the ratio");

  TextTable table({"Layout", "Multi-bit", "Consecutive", "Non-adjacent",
                   "Mean distance", "Max distance"});
  auto add = [&](const char* name, const analysis::AdjacencyStats& a) {
    table.add_row({name, format_count(a.multibit_faults),
                   format_count(a.consecutive), format_count(a.non_adjacent),
                   format_fixed(a.mean_distance, 2),
                   std::to_string(a.max_distance)});
  };
  add("stride-3 scrambler (device default)",
      run_with_scrambler(dram::BitScrambler::stride3()));
  add("identity (no scrambling)",
      run_with_scrambler(dram::BitScrambler::identity()));
  add("random permutation (seed 99)",
      run_with_scrambler(dram::BitScrambler::from_seed(99)));
  std::printf("%s\n", table.render().c_str());
  return 0;
}
