#include "util/campaign_cache.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "telemetry/archive_io.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::bench {

namespace {

constexpr char kCacheMagic[4] = {'U', 'N', 'P', 'C'};
constexpr std::uint8_t kCacheVersion = 1;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::uint64_t cache_fingerprint(const sim::CampaignConfig& config) {
  std::uint64_t h = mix64(config.seed, kCacheVersion);
  h = mix64(h, static_cast<std::uint64_t>(config.window.start));
  h = mix64(h, static_cast<std::uint64_t>(config.window.end));
  h = mix64(h, static_cast<std::uint64_t>(cluster::kStudyNodeSlots));
  return h;
}

bool cache_disabled() {
  const char* flag = std::getenv("UNP_CAMPAIGN_CACHE");
  return flag != nullptr &&
         (std::strcmp(flag, "0") == 0 || std::strcmp(flag, "off") == 0);
}

std::string cache_path_for(std::uint64_t fingerprint) {
  std::filesystem::path dir;
  if (const char* override_dir = std::getenv("UNP_CACHE_DIR")) {
    dir = override_dir;
  } else {
    std::error_code ec;
    dir = std::filesystem::temp_directory_path(ec);
    if (ec) return {};
  }
  char name[64];
  std::snprintf(name, sizeof name, "unp_campaign_%016llx.unpc",
                static_cast<unsigned long long>(fingerprint));
  return (dir / name).string();
}

// --- ground truth / accounting sections ---------------------------------

void encode_ground_truth(std::string& out,
                         const std::vector<faults::FaultEvent>& events) {
  telemetry::put_varint(out, events.size());
  TimePoint previous = 0;
  for (const auto& ev : events) {
    telemetry::put_varint(out, telemetry::zigzag_encode(ev.time - previous));
    previous = ev.time;
    telemetry::put_varint(out,
                          static_cast<std::uint64_t>(cluster::node_index(ev.node)));
    out.push_back(static_cast<char>(ev.mechanism));
    out.push_back(static_cast<char>(ev.persistence));
    telemetry::put_varint(out,
                          telemetry::zigzag_encode(ev.active_until - ev.time));
    telemetry::put_varint(out, ev.words.size());
    for (const auto& wf : ev.words) {
      telemetry::put_varint(out, wf.word_index);
      telemetry::put_varint(out, wf.corruption.affected_mask);
      telemetry::put_varint(out, wf.corruption.stuck_value);
    }
  }
}

std::vector<faults::FaultEvent> decode_ground_truth(const std::string& in,
                                                    std::size_t& pos) {
  const std::uint64_t count = telemetry::get_varint(in, pos);
  std::vector<faults::FaultEvent> events;
  events.reserve(count);
  TimePoint previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    faults::FaultEvent ev;
    previous += telemetry::zigzag_decode(telemetry::get_varint(in, pos));
    ev.time = previous;
    const std::uint64_t index = telemetry::get_varint(in, pos);
    UNP_REQUIRE(index < static_cast<std::uint64_t>(cluster::kStudyNodeSlots));
    ev.node = cluster::node_from_index(static_cast<int>(index));
    UNP_REQUIRE(pos + 2 <= in.size());
    const auto mechanism = static_cast<std::uint8_t>(in[pos++]);
    UNP_REQUIRE(mechanism <= static_cast<std::uint8_t>(faults::Mechanism::kIsolatedSdc));
    ev.mechanism = static_cast<faults::Mechanism>(mechanism);
    const auto persistence = static_cast<std::uint8_t>(in[pos++]);
    UNP_REQUIRE(persistence <= static_cast<std::uint8_t>(faults::Persistence::kStuck));
    ev.persistence = static_cast<faults::Persistence>(persistence);
    ev.active_until =
        ev.time + telemetry::zigzag_decode(telemetry::get_varint(in, pos));
    const std::uint64_t words = telemetry::get_varint(in, pos);
    UNP_REQUIRE(words >= 1);
    ev.words.reserve(words);
    for (std::uint64_t w = 0; w < words; ++w) {
      faults::WordFault wf;
      wf.word_index = telemetry::get_varint(in, pos);
      wf.corruption.affected_mask =
          static_cast<Word>(telemetry::get_varint(in, pos));
      wf.corruption.stuck_value =
          static_cast<Word>(telemetry::get_varint(in, pos));
      ev.words.push_back(wf);
    }
    events.push_back(std::move(ev));
  }
  return events;
}

void encode_accounting(std::string& out,
                       const std::vector<sim::NodeAccounting>& accounting) {
  telemetry::put_varint(out, accounting.size());
  for (const auto& a : accounting) {
    telemetry::put_varint(out,
                          static_cast<std::uint64_t>(cluster::node_index(a.node)));
    telemetry::put_f64(out, a.scanned_hours);
    telemetry::put_f64(out, a.terabyte_hours);
    telemetry::put_varint(out, a.sessions);
  }
}

std::vector<sim::NodeAccounting> decode_accounting(const std::string& in,
                                                   std::size_t& pos) {
  const std::uint64_t count = telemetry::get_varint(in, pos);
  std::vector<sim::NodeAccounting> accounting;
  accounting.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    sim::NodeAccounting a;
    const std::uint64_t index = telemetry::get_varint(in, pos);
    UNP_REQUIRE(index < static_cast<std::uint64_t>(cluster::kStudyNodeSlots));
    a.node = cluster::node_from_index(static_cast<int>(index));
    a.scanned_hours = telemetry::get_f64(in, pos);
    a.terabyte_hours = telemetry::get_f64(in, pos);
    a.sessions = telemetry::get_varint(in, pos);
    accounting.push_back(a);
  }
  return accounting;
}

// --- load / store -------------------------------------------------------

/// Reload `result` (archive + ground truth + accounting) from the cache
/// file; the topology is rebuilt deterministically from the config.  Any
/// format violation reports failure and falls back to simulation.
bool load_cached_campaign(const std::string& path,
                          const sim::CampaignConfig& config,
                          sim::CampaignResult& result) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  try {
    char magic[4];
    is.read(magic, sizeof magic);
    UNP_REQUIRE(is.gcount() == sizeof magic);
    UNP_REQUIRE(std::memcmp(magic, kCacheMagic, sizeof magic) == 0);
    const int version = is.get();
    UNP_REQUIRE(version == kCacheVersion);
    std::uint64_t fingerprint = 0;
    for (int i = 0; i < 8; ++i) {
      const int c = is.get();
      UNP_REQUIRE(c != std::char_traits<char>::eof());
      fingerprint |= static_cast<std::uint64_t>(c) << (8 * i);
    }
    UNP_REQUIRE(fingerprint == cache_fingerprint(config));

    // Move each decoded NodeLog straight into the archive rather than
    // replaying it record-by-record through the sink interface; on the
    // full campaign that halves reload time.
    telemetry::ArchiveReader reader(is);
    result.archive.begin_campaign(reader.window());
    cluster::NodeId node{};
    telemetry::NodeLog log;
    while (reader.next(node, log)) result.archive.log(node) = std::move(log);

    const std::string rest((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
    std::size_t pos = 0;
    result.ground_truth = decode_ground_truth(rest, pos);
    result.accounting = decode_accounting(rest, pos);
    UNP_REQUIRE(pos == rest.size());
  } catch (const ContractViolation&) {
    result = sim::CampaignResult{sim::campaign_topology(config),
                                 telemetry::CampaignArchive(config.window),
                                 {},
                                 {}};
    return false;
  }
  result.topology = sim::campaign_topology(config);
  return true;
}

/// Simulate the campaign (multithreaded), spilling the record stream into
/// the cache file while the archive materializes in-process, then append
/// the ground-truth and accounting sections.  Cache write failures degrade
/// to a plain in-memory run.
void simulate_campaign(const std::string& path, const sim::CampaignConfig& config,
                       sim::CampaignResult& result) {
  const std::string tmp = path.empty() ? "" : path + ".tmp";
  std::ofstream os;
  std::unique_ptr<telemetry::ArchiveWriter> writer;
  if (!tmp.empty()) {
    os.open(tmp, std::ios::binary | std::ios::trunc);
    if (os.good()) {
      os.write(kCacheMagic, sizeof kCacheMagic);
      os.put(static_cast<char>(kCacheVersion));
      const std::uint64_t fingerprint = cache_fingerprint(config);
      for (int i = 0; i < 8; ++i) {
        os.put(static_cast<char>((fingerprint >> (8 * i)) & 0xFF));
      }
      writer = std::make_unique<telemetry::ArchiveWriter>(os);
    }
  }

  std::vector<telemetry::RecordSink*> sinks{&result.archive};
  if (writer) sinks.push_back(writer.get());
  sim::CampaignSummary summary = sim::run_campaign_streaming(
      config, sinks, sim::default_campaign_threads());
  result.topology = std::move(summary.topology);
  result.ground_truth = std::move(summary.ground_truth);
  result.accounting = std::move(summary.accounting);

  if (writer && os.good()) {
    std::string sections;
    encode_ground_truth(sections, result.ground_truth);
    encode_accounting(sections, result.accounting);
    os.write(sections.data(), static_cast<std::streamsize>(sections.size()));
    os.close();
    if (os.good()) {
      std::error_code ec;
      std::filesystem::rename(tmp, path, ec);
      if (ec) std::filesystem::remove(tmp, ec);
    }
  } else if (!tmp.empty()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  }
}

}  // namespace

std::string default_cache_path() {
  if (cache_disabled()) return {};
  return cache_path_for(cache_fingerprint(sim::CampaignConfig{}));
}

void invalidate_default_cache() {
  const std::string path = default_cache_path();
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

bool reload_default_campaign(sim::CampaignResult& out) {
  const std::string path = default_cache_path();
  if (path.empty()) return false;
  const sim::CampaignConfig config{};
  out = sim::CampaignResult{sim::campaign_topology(config),
                            telemetry::CampaignArchive(config.window),
                            {},
                            {}};
  return load_cached_campaign(path, config, out);
}

const CampaignData& default_data() {
  static const CampaignData data = [] {
    const sim::CampaignConfig config{};
    // Static so `campaign` pointers stay valid for the process lifetime.
    static sim::CampaignResult campaign{sim::campaign_topology(config),
                                        telemetry::CampaignArchive(config.window),
                                        {},
                                        {}};
    CampaignData d;
    d.stats.cache_path = default_cache_path();

    const auto acquire_start = Clock::now();
    if (!d.stats.cache_path.empty() &&
        load_cached_campaign(d.stats.cache_path, config, campaign)) {
      d.stats.from_cache = true;
    } else {
      simulate_campaign(d.stats.cache_path, config, campaign);
    }
    d.stats.acquire_ms = ms_since(acquire_start);
    d.campaign = &campaign;

    const auto extract_start = Clock::now();
    d.extraction = analysis::extract_faults(campaign.archive);
    d.stats.extract_ms = ms_since(extract_start);

    const auto group_start = Clock::now();
    d.groups = analysis::group_simultaneous(d.extraction.faults);
    d.stats.group_ms = ms_since(group_start);

    d.stats.raw_records = d.extraction.total_raw_logs;
    d.stats.faults = d.extraction.faults.size();
    d.stats.groups = d.groups.size();
    return d;
  }();
  return data;
}

void print_header(const std::string& experiment, const std::string& paper_shape) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_shape.c_str());
  std::printf("================================================================\n");
}

}  // namespace unp::bench
