#include "util/campaign_cache.hpp"

#include <cstdio>

namespace unp::bench {

const CampaignData& default_data() {
  static const CampaignData data = [] {
    CampaignData d;
    d.campaign = &sim::default_campaign();
    d.extraction = analysis::extract_faults(d.campaign->archive);
    d.groups = analysis::group_simultaneous(d.extraction.faults);
    return d;
  }();
  return data;
}

void print_header(const std::string& experiment, const std::string& paper_shape) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_shape.c_str());
  std::printf("================================================================\n");
}

}  // namespace unp::bench
