#include "util/campaign_cache.hpp"

#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "telemetry/archive_io.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::bench {

namespace {

constexpr char kCacheMagic[4] = {'U', 'N', 'P', 'C'};
constexpr std::uint8_t kCacheVersion = 2;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// The one default campaign configuration every bench shares.
const sim::CampaignConfig& default_config() {
  static const sim::CampaignConfig config{};
  return config;
}

bool cache_disabled() {
  const char* flag = std::getenv("UNP_CAMPAIGN_CACHE");
  return flag != nullptr &&
         (std::strcmp(flag, "0") == 0 || std::strcmp(flag, "off") == 0);
}

std::string cache_path_for(std::uint64_t fingerprint) {
  std::filesystem::path dir;
  if (const char* override_dir = std::getenv("UNP_CACHE_DIR")) {
    dir = override_dir;
  } else {
    std::error_code ec;
    dir = std::filesystem::temp_directory_path(ec);
    if (ec) return {};
  }
  char name[64];
  std::snprintf(name, sizeof name, "unp_campaign_%016llx.unpc",
                static_cast<unsigned long long>(fingerprint));
  return (dir / name).string();
}

// --- file header --------------------------------------------------------

void write_cache_header(std::ostream& os, std::uint64_t fingerprint) {
  os.write(kCacheMagic, sizeof kCacheMagic);
  os.put(static_cast<char>(kCacheVersion));
  for (int i = 0; i < 8; ++i) {
    os.put(static_cast<char>((fingerprint >> (8 * i)) & 0xFF));
  }
}

/// Validates magic/version/fingerprint; ContractViolation on mismatch.
void read_cache_header(std::istream& is, std::uint64_t expected) {
  char magic[4];
  is.read(magic, sizeof magic);
  UNP_REQUIRE(is.gcount() == sizeof magic);
  UNP_REQUIRE(std::memcmp(magic, kCacheMagic, sizeof magic) == 0);
  const int version = is.get();
  UNP_REQUIRE(version == kCacheVersion);
  std::uint64_t fingerprint = 0;
  for (int i = 0; i < 8; ++i) {
    const int c = is.get();
    UNP_REQUIRE(c != std::char_traits<char>::eof());
    fingerprint |= static_cast<std::uint64_t>(c) << (8 * i);
  }
  UNP_REQUIRE(fingerprint == expected);
}

// --- ground truth / accounting sections ---------------------------------

void encode_ground_truth(std::string& out,
                         const std::vector<faults::FaultEvent>& events) {
  telemetry::put_varint(out, events.size());
  TimePoint previous = 0;
  for (const auto& ev : events) {
    telemetry::put_varint(out, telemetry::zigzag_encode(ev.time - previous));
    previous = ev.time;
    telemetry::put_varint(out,
                          static_cast<std::uint64_t>(cluster::node_index(ev.node)));
    out.push_back(static_cast<char>(ev.mechanism));
    out.push_back(static_cast<char>(ev.persistence));
    telemetry::put_varint(out,
                          telemetry::zigzag_encode(ev.active_until - ev.time));
    telemetry::put_varint(out, ev.words.size());
    for (const auto& wf : ev.words) {
      telemetry::put_varint(out, wf.word_index);
      telemetry::put_varint(out, wf.corruption.affected_mask);
      telemetry::put_varint(out, wf.corruption.stuck_value);
    }
  }
}

std::vector<faults::FaultEvent> decode_ground_truth(const std::string& in,
                                                    std::size_t& pos) {
  const std::uint64_t count = telemetry::get_varint(in, pos);
  std::vector<faults::FaultEvent> events;
  events.reserve(count);
  TimePoint previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    faults::FaultEvent ev;
    previous += telemetry::zigzag_decode(telemetry::get_varint(in, pos));
    ev.time = previous;
    const std::uint64_t index = telemetry::get_varint(in, pos);
    UNP_REQUIRE(index < static_cast<std::uint64_t>(cluster::kStudyNodeSlots));
    ev.node = cluster::node_from_index(static_cast<int>(index));
    UNP_REQUIRE(pos + 2 <= in.size());
    const auto mechanism = static_cast<std::uint8_t>(in[pos++]);
    UNP_REQUIRE(mechanism <= static_cast<std::uint8_t>(faults::Mechanism::kRowhammer));
    ev.mechanism = static_cast<faults::Mechanism>(mechanism);
    const auto persistence = static_cast<std::uint8_t>(in[pos++]);
    UNP_REQUIRE(persistence <= static_cast<std::uint8_t>(faults::Persistence::kStuck));
    ev.persistence = static_cast<faults::Persistence>(persistence);
    ev.active_until =
        ev.time + telemetry::zigzag_decode(telemetry::get_varint(in, pos));
    const std::uint64_t words = telemetry::get_varint(in, pos);
    UNP_REQUIRE(words >= 1);
    ev.words.reserve(words);
    for (std::uint64_t w = 0; w < words; ++w) {
      faults::WordFault wf;
      wf.word_index = telemetry::get_varint(in, pos);
      wf.corruption.affected_mask =
          static_cast<Word>(telemetry::get_varint(in, pos));
      wf.corruption.stuck_value =
          static_cast<Word>(telemetry::get_varint(in, pos));
      ev.words.push_back(wf);
    }
    events.push_back(std::move(ev));
  }
  return events;
}

void encode_accounting(std::string& out,
                       const std::vector<sim::NodeAccounting>& accounting) {
  telemetry::put_varint(out, accounting.size());
  for (const auto& a : accounting) {
    telemetry::put_varint(out,
                          static_cast<std::uint64_t>(cluster::node_index(a.node)));
    telemetry::put_f64(out, a.scanned_hours);
    telemetry::put_f64(out, a.terabyte_hours);
    telemetry::put_varint(out, a.sessions);
  }
}

std::vector<sim::NodeAccounting> decode_accounting(const std::string& in,
                                                   std::size_t& pos) {
  const std::uint64_t count = telemetry::get_varint(in, pos);
  std::vector<sim::NodeAccounting> accounting;
  accounting.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    sim::NodeAccounting a;
    const std::uint64_t index = telemetry::get_varint(in, pos);
    UNP_REQUIRE(index < static_cast<std::uint64_t>(cluster::kStudyNodeSlots));
    a.node = cluster::node_from_index(static_cast<int>(index));
    a.scanned_hours = telemetry::get_f64(in, pos);
    a.terabyte_hours = telemetry::get_f64(in, pos);
    a.sessions = telemetry::get_varint(in, pos);
    accounting.push_back(a);
  }
  return accounting;
}

// --- load / store -------------------------------------------------------

sim::CampaignResult empty_campaign(const sim::CampaignConfig& config) {
  return sim::CampaignResult{
      sim::CampaignSummary{sim::campaign_topology(config), {}, {}},
      telemetry::CampaignArchive(config.window)};
}

/// Reload `result` (archive + ground truth + accounting) from the cache
/// file; the topology is rebuilt deterministically from the config.  Any
/// format violation reports failure and falls back to simulation.
bool load_cached_campaign(const std::string& path,
                          const sim::CampaignConfig& config,
                          std::uint64_t fingerprint,
                          sim::CampaignResult& result) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  try {
    read_cache_header(is, fingerprint);

    // Move each decoded NodeLog straight into the archive rather than
    // replaying it record-by-record through the sink interface; on the
    // full campaign that halves reload time.
    telemetry::ArchiveReader reader(is);
    result.archive.begin_campaign(reader.window());
    cluster::NodeId node{};
    telemetry::NodeLog log;
    while (reader.next(node, log)) result.archive.log(node) = std::move(log);

    const std::string rest((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
    std::size_t pos = 0;
    result.summary.ground_truth = decode_ground_truth(rest, pos);
    result.summary.accounting = decode_accounting(rest, pos);
    UNP_REQUIRE(pos == rest.size());
  } catch (const ContractViolation&) {
    result = empty_campaign(config);
    return false;
  }
  result.summary.topology = sim::campaign_topology(config);
  return true;
}

/// Replay the cached record stream through `sink` with full framing,
/// without materializing an archive.  Returns false (after possibly having
/// pushed a partial stream — sinks must reset in begin_campaign) when the
/// file is missing, stale or torn.
bool replay_cached_stream(const std::string& path, std::uint64_t fingerprint,
                          telemetry::RecordSink& sink) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  try {
    read_cache_header(is, fingerprint);
    telemetry::ArchiveReader reader(is);
    sink.begin_campaign(reader.window());
    cluster::NodeId node{};
    telemetry::NodeLog log;
    while (reader.next(node, log)) {
      sink.begin_node(node);
      telemetry::replay_node_log(log, sink);
      sink.end_node(node);
    }
    sink.end_campaign();
  } catch (const ContractViolation&) {
    return false;
  }
  return true;
}

/// Simulate the campaign on `threads` threads, streaming the records to
/// `sinks` while spilling the stream plus the ground-truth and accounting
/// sections into the cache file.  Cache write failures degrade to a plain
/// streaming run.
sim::CampaignSummary simulate_and_spill(
    const std::string& path, std::uint64_t fingerprint,
    const sim::CampaignConfig& config,
    std::vector<telemetry::RecordSink*> sinks, std::size_t threads) {
  // Temp name is pid-unique: concurrent bench processes racing on the same
  // cache path each spill a complete private file and rename it into place,
  // so a reader can never observe a torn UNPC file.
  const std::string tmp =
      path.empty() ? "" : path + ".tmp." + std::to_string(::getpid());
  std::ofstream os;
  std::unique_ptr<telemetry::ArchiveWriter> writer;
  if (!tmp.empty()) {
    os.open(tmp, std::ios::binary | std::ios::trunc);
    if (os.good()) {
      write_cache_header(os, fingerprint);
      writer = std::make_unique<telemetry::ArchiveWriter>(os);
    }
  }
  if (writer) sinks.push_back(writer.get());

  sim::CampaignSummary summary =
      sim::run_campaign_streaming(config, sinks, threads);

  if (writer && os.good()) {
    std::string sections;
    encode_ground_truth(sections, summary.ground_truth);
    encode_accounting(sections, summary.accounting);
    os.write(sections.data(), static_cast<std::streamsize>(sections.size()));
    os.close();
    if (os.good()) {
      std::error_code ec;
      std::filesystem::rename(tmp, path, ec);
      if (ec) std::filesystem::remove(tmp, ec);
    }
  } else if (!tmp.empty()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  }
  return summary;
}

/// A pipeline the registry owns: the campaign lives next to the data so
/// `data.campaign` stays valid for the process lifetime.
struct PipelineEntry {
  sim::CampaignResult campaign;
  CampaignData data;
};

std::unique_ptr<PipelineEntry> build_pipeline(
    const sim::CampaignConfig& config,
    const analysis::ExtractionConfig& extraction, std::uint64_t fingerprint) {
  auto entry = std::make_unique<PipelineEntry>(
      PipelineEntry{empty_campaign(config), {}});
  sim::CampaignResult& campaign = entry->campaign;
  CampaignData& d = entry->data;
  if (!cache_disabled()) d.stats.cache_path = cache_path_for(fingerprint);

  const auto acquire_start = Clock::now();
  if (!d.stats.cache_path.empty() &&
      load_cached_campaign(d.stats.cache_path, config, fingerprint, campaign)) {
    d.stats.from_cache = true;
  } else {
    campaign.summary = simulate_and_spill(d.stats.cache_path, fingerprint,
                                          config, {&campaign.archive},
                                          sim::default_campaign_threads());
  }
  d.stats.acquire_ms = ms_since(acquire_start);
  d.campaign = &campaign;

  const auto extract_start = Clock::now();
  d.extraction = analysis::extract_faults(campaign.archive, extraction);
  d.stats.extract_ms = ms_since(extract_start);

  const auto group_start = Clock::now();
  d.groups = analysis::group_simultaneous(d.extraction.faults);
  d.stats.group_ms = ms_since(group_start);

  d.stats.raw_records = d.extraction.total_raw_logs;
  d.stats.faults = d.extraction.faults.size();
  d.stats.groups = d.groups.size();
  return entry;
}

}  // namespace

std::uint64_t campaign_fingerprint(const sim::CampaignConfig& config,
                                   const analysis::ExtractionConfig& extraction) {
  std::uint64_t h = mix64(config.seed, kCacheVersion);
  h = mix64(h, static_cast<std::uint64_t>(config.window.start));
  h = mix64(h, static_cast<std::uint64_t>(config.window.end));
  h = mix64(h, static_cast<std::uint64_t>(cluster::kStudyNodeSlots));
  // Extraction parameters participate so products computed under a
  // non-default configuration never pair with a defaults-keyed entry.
  h = mix64(h, static_cast<std::uint64_t>(extraction.merge_window_s));
  h = mix64(h, extraction.pathological_min_raw);
  h = mix64(h, std::bit_cast<std::uint64_t>(extraction.pathological_raw_fraction));
  // Hammer-enabled campaigns produce a different record stream for the
  // same seed, so their config participates - but only when enabled, which
  // keeps every existing time-driven cache entry valid.
  if (config.faults.enable_hammer) {
    const auto& hammer = config.faults.hammer;
    h = mix64(h, faults::hammer::kHammerDerivationVersion);
    for (const char c : hammer.mapping) {
      h = mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    h = mix64(h, std::bit_cast<std::uint64_t>(hammer.hammered_node_fraction));
    h = mix64(h, std::bit_cast<std::uint64_t>(hammer.episodes_per_node_mean));
    h = mix64(h, std::bit_cast<std::uint64_t>(hammer.episode_min_h));
    h = mix64(h, std::bit_cast<std::uint64_t>(hammer.episode_max_h));
    h = mix64(h,
              std::bit_cast<std::uint64_t>(hammer.activations_per_scanned_hour));
    h = mix64(h, std::bit_cast<std::uint64_t>(hammer.threshold_median));
    h = mix64(h, std::bit_cast<std::uint64_t>(hammer.threshold_log_sigma));
    h = mix64(h, std::bit_cast<std::uint64_t>(hammer.distance2_factor));
    h = mix64(h, static_cast<std::uint64_t>(hammer.flip_words_min));
    h = mix64(h, static_cast<std::uint64_t>(hammer.flip_words_max));
    h = mix64(h, std::bit_cast<std::uint64_t>(hammer.flip_burst_hours));
  }
  return h;
}

std::uint64_t campaign_fingerprint(const sim::CampaignConfig& config,
                                   const analysis::ExtractionConfig& extraction,
                                   const sim::ShardSpec& shard) {
  std::uint64_t h = campaign_fingerprint(config, extraction);
  if (shard.is_monolithic()) return h;  // {1, 0} IS the whole campaign
  h = mix64(h, static_cast<std::uint64_t>(sim::kShardDerivationVersion));
  h = mix64(h, static_cast<std::uint64_t>(shard.count));
  h = mix64(h, static_cast<std::uint64_t>(shard.index));
  return h;
}

const CampaignData& default_data() {
  return default_data(analysis::ExtractionConfig{});
}

const CampaignData& default_data(const analysis::ExtractionConfig& extraction) {
  static std::mutex mutex;
  static std::map<std::uint64_t, std::unique_ptr<PipelineEntry>> registry;
  const sim::CampaignConfig& config = default_config();
  const std::uint64_t fingerprint = campaign_fingerprint(config, extraction);
  const std::lock_guard<std::mutex> lock(mutex);
  std::unique_ptr<PipelineEntry>& slot = registry[fingerprint];
  if (!slot) slot = build_pipeline(config, extraction, fingerprint);
  return slot->data;
}

std::string default_cache_path() {
  if (cache_disabled()) return {};
  return cache_path_for(
      campaign_fingerprint(default_config(), analysis::ExtractionConfig{}));
}

void invalidate_default_cache() {
  const std::string path = default_cache_path();
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

bool reload_default_campaign(sim::CampaignResult& out) {
  const std::string path = default_cache_path();
  if (path.empty()) return false;
  const sim::CampaignConfig& config = default_config();
  out = empty_campaign(config);
  return load_cached_campaign(
      path, config,
      campaign_fingerprint(config, analysis::ExtractionConfig{}), out);
}

StreamStats stream_campaign(const sim::CampaignConfig& config,
                            const analysis::ExtractionConfig& extraction,
                            const std::vector<telemetry::RecordSink*>& sinks,
                            std::size_t threads) {
  StreamStats stats;
  const std::uint64_t fingerprint = campaign_fingerprint(config, extraction);
  stats.fingerprint = fingerprint;
  if (!cache_disabled()) stats.cache_path = cache_path_for(fingerprint);

  const auto start = Clock::now();
  telemetry::FanOutSink fan;
  for (auto* sink : sinks) fan.add(*sink);
  if (!stats.cache_path.empty() &&
      replay_cached_stream(stats.cache_path, fingerprint, fan)) {
    stats.from_cache = true;
  } else {
    simulate_and_spill(stats.cache_path, fingerprint, config, sinks, threads);
  }
  stats.acquire_ms = ms_since(start);
  return stats;
}

void print_header(const std::string& experiment, const std::string& paper_shape,
                  FILE* out) {
  std::fprintf(out, "================================================================\n");
  std::fprintf(out, "%s\n", experiment.c_str());
  std::fprintf(out, "paper: %s\n", paper_shape.c_str());
  std::fprintf(out, "================================================================\n");
}

}  // namespace unp::bench
