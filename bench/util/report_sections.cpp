#include "util/report_sections.hpp"

#include "util/figures.hpp"

namespace unp::bench {

std::span<const ExtSection> ext_sections() noexcept {
  static constexpr ExtSection kExtSections[] = {
      {"temporal", kExtTemporal}, {"markov", kExtMarkov},
      {"alignment", kExtAlignment}, {"ecc", kExtEcc},
      {"hammer", kExtHammer},
  };
  return kExtSections;
}

ReportAnalyzers::ReportAnalyzers(const bool (&wanted)[kSectionCount])
    : address_map_(dram::default_geometry()), alignment_(address_map_) {
  for (int s = 0; s < kSectionCount; ++s) want_[s] = wanted[s];
  const auto add_sink = [this](bool needed, const char* label,
                               analysis::FaultSink* sink) {
    if (!needed) return;
    sinks_.push_back(sink);
    labels_.push_back(label);
  };
  add_sink(want(kFig03), "errors-grid", &errors_grid_);
  add_sink(want(kTab1), "multibit-patterns", &patterns_);
  add_sink(want(kTab1), "adjacency", &adjacency_);
  add_sink(want(kTab1), "direction", &direction_);
  add_sink(want(kFig04), "grouping", &grouping_);
  add_sink(want(kFig05) || want(kFig06), "hour-of-day", &hourly_);
  add_sink(want(kFig07) || want(kFig08), "temperature", &temperature_);
  add_sink(want(kFig10), "daily-errors", &daily_);
  add_sink(want(kFig12), "top-nodes", &top_nodes_);
  add_sink(want(kFig12), "node-patterns", &node_patterns_);
  add_sink(want(kFig13), "regime", &regime_);
  add_sink(want(kExtTemporal), "interarrival", &interarrival_);
  add_sink(want(kExtMarkov), "regime-dynamics", &dynamics_);
  add_sink(want(kExtAlignment), "alignment", &alignment_);
}

void ReportAnalyzers::render(const ReportInputs& in, FILE* out) {
  if (want(kHeadline)) {
    print_headline(
        analysis::headline_stats(in.total_hours, in.total_terabyte_hours,
                                 in.monitored_nodes, in.window, *in.extraction),
        *in.extraction, out);
  }
  if (want(kFig01)) print_fig01(*in.hours, out);
  if (want(kFig02)) print_fig02(*in.hours, *in.terabyte_hours, out);
  if (want(kFig03)) print_fig03(errors_grid_.grid(), out);
  if (want(kTab1))
    print_tab1(patterns_.patterns(), adjacency_.stats(), direction_.stats(), out);
  if (want(kFig04)) {
    print_fig04(grouping_.viewpoints(), grouping_.co_occurrence(), out);
  }
  if (want(kFig05)) print_fig05(hourly_.profile(), out);
  if (want(kFig06)) print_fig06(hourly_.profile(), out);
  if (want(kFig07)) print_fig07(temperature_.profile(), out);
  if (want(kFig08)) print_fig08(temperature_.profile(), out);
  if (want(kFig09)) print_fig09(in.daily_terabyte_hours, in.window, out);
  if (want(kFig10)) {
    print_fig10(daily_.series(),
                analysis::scan_error_correlation(in.daily_terabyte_hours,
                                                 daily_.series()),
                in.window, out);
  }
  if (want(kFig11)) print_fig11(in.extraction->faults, in.window, out);
  if (want(kFig12)) {
    std::vector<analysis::NodePatternProfile> profiles;
    for (const auto& node : top_nodes_.series().nodes)
      profiles.push_back(node_patterns_.profile(node));
    print_fig12(top_nodes_.series(), profiles, in.window, out);
  }
  if (want(kFig13)) print_fig13(regime_.result(), in.window, out);
  if (want(kExtTemporal)) {
    print_ext_temporal(
        interarrival_.stats(),
        analysis::poisson_reference(interarrival_.stats().gaps + 1,
                                    in.window.duration_seconds(), 17),
        out);
  }
  if (want(kExtMarkov)) {
    print_ext_markov(dynamics_.days(), dynamics_.model(), dynamics_.spells(),
                     dynamics_.regime().regime.degraded_fraction(), out);
  }
  if (want(kExtAlignment))
    print_ext_alignment(alignment_.stats(), alignment_.spread(), out);
  // No sink: the ECC engine replays the finished extraction's masks
  // directly, so the section is identical on live, store, and aggregate
  // paths by construction.
  if (want(kExtEcc)) print_ext_ecc(*in.extraction, out);
  // Also sink-free: the hammer census replays the finished extraction
  // through the same HammerRowDetector the mitigation loop uses, so live,
  // store, and aggregate paths agree by construction.
  if (want(kExtHammer)) print_ext_hammer(*in.extraction, out);
}

}  // namespace unp::bench
