// Shared renderers for every paper figure/table the bench suite prints.
//
// Each renderer takes finished analysis products and writes one complete,
// self-describing report section (header included) to stdout.  Both front
// ends call these with equal values, so their output is byte-identical by
// construction:
//
//   - the per-figure binaries (bench_fig01.., bench_tab1.., bench_ext_..)
//     compute their products with the batch entry points;
//   - unp_report computes all products in one streaming pass and prints any
//     requested subset.
#pragma once

#include <cstdio>
#include <span>
#include <vector>

#include "analysis/alignment.hpp"
#include "analysis/bitstats.hpp"
#include "analysis/extraction.hpp"
#include "analysis/grouping.hpp"
#include "analysis/interarrival.hpp"
#include "analysis/markov.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "resilience/quarantine.hpp"

namespace unp::bench {

/// Section III-B headline statistics.
void print_headline(const analysis::HeadlineStats& stats,
                    const analysis::ExtractionResult& extraction,
                FILE* out = stdout);

/// Fig 1: hours each node was scanned.
void print_fig01(const Grid2D& hours,
                FILE* out = stdout);

/// Fig 2: terabyte-hours per node (needs Fig 1's grid for the correlation).
void print_fig02(const Grid2D& hours, const Grid2D& tbh,
                FILE* out = stdout);

/// Fig 3: independent errors per node.
void print_fig03(const Grid2D& errors,
                FILE* out = stdout);

/// Table I: multi-bit corruption census.
void print_tab1(const std::vector<analysis::MultibitPattern>& patterns,
                const analysis::AdjacencyStats& adj,
                const analysis::DirectionStats& dir,
                FILE* out = stdout);

/// Fig 4: per-word vs per-node accounting of the same corruptions.
void print_fig04(const analysis::MultibitViewpoints& viewpoints,
                 const analysis::CoOccurrence& co,
                FILE* out = stdout);

/// Fig 5: errors per hour of day, by bit class.
void print_fig05(const analysis::HourOfDayProfile& profile,
                FILE* out = stdout);

/// Fig 6: multi-bit errors per hour of day.
void print_fig06(const analysis::HourOfDayProfile& profile,
                FILE* out = stdout);

/// Fig 7: errors vs node temperature, by bit class.
void print_fig07(const analysis::TemperatureProfile& profile,
                FILE* out = stdout);

/// Fig 8: multi-bit errors vs node temperature.
void print_fig08(const analysis::TemperatureProfile& profile,
                FILE* out = stdout);

/// Fig 9: terabyte-hours scanned per day.
void print_fig09(std::span<const double> daily_tbh,
                 const CampaignWindow& window,
                FILE* out = stdout);

/// Fig 10: errors per day + the Section III-G scan-vs-error correlation.
void print_fig10(const analysis::DailyErrorSeries& series,
                 const PearsonResult& corr, const CampaignWindow& window,
                FILE* out = stdout);

/// Fig 11: multi-bit errors per day (walks the fault list directly).
void print_fig11(analysis::FaultView faults, const CampaignWindow& window,
                FILE* out = stdout);

/// Fig 12: top-3 nodes vs the rest; `profiles` pairs with `top.nodes`.
void print_fig12(const analysis::TopNodeSeries& top,
                 const std::vector<analysis::NodePatternProfile>& profiles,
                 const CampaignWindow& window,
                FILE* out = stdout);

/// Fig 13 + Section III-I: normal vs degraded days.
void print_fig13(const analysis::AutoRegime& result,
                 const CampaignWindow& window,
                FILE* out = stdout);

/// Table II: quarantine-period sweep.  Both the batch bench
/// (bench_tab2_quarantine) and the online policy engine (unp_policy --sweep)
/// print through this, so equal outcomes render byte-identically.
void print_tab2(const std::vector<resilience::QuarantineOutcome>& sweep,
                FILE* out = stdout);

/// Extension: inter-arrival structure vs the Poisson null.
void print_ext_temporal(const analysis::InterArrivalStats& observed,
                        const analysis::InterArrivalStats& null_model,
                FILE* out = stdout);

/// Extension: Markov dynamics of the regime sequence.
void print_ext_markov(const std::vector<bool>& days,
                      const analysis::MarkovRegimeModel& model,
                      const analysis::SpellStats& stats,
                      double empirical_degraded_fraction,
                FILE* out = stdout);

/// Extension: physical alignment of simultaneous corruptions.
void print_ext_alignment(const analysis::AlignmentStats& stats,
                         const analysis::LogicalSpread& spread,
                FILE* out = stdout);

/// Extension: the ECC evaluation engine's population replay — every
/// extracted fault mask decoded by each default code (ecc/registry.hpp),
/// outcomes per code and per corruption-multiplicity class.  Deterministic
/// for a given fault set (the engine is thread-count invariant), so store
/// and live paths render byte-identically.
void print_ext_ecc(const analysis::ExtractionResult& extraction,
                FILE* out = stdout);

/// Extension: Rowhammer victim-row census — the extracted faults replayed
/// through the spatial HammerRowDetector under every menu geometry
/// (dram/mapping), plus the detected-row ledger for the primary geometry.
/// Pure function of the extraction, so store and live paths render
/// byte-identically.
void print_ext_hammer(const analysis::ExtractionResult& extraction,
                FILE* out = stdout);

}  // namespace unp::bench
