// Shared bench scaffolding: every figure/table binary consumes the same
// calibrated campaign (seed 42) and extraction, then prints its own view.
//
// The campaign is acquired through an on-disk cache: the first bench process
// simulates it (multithreaded) while spilling the record stream plus ground
// truth and accounting to a cache file; every later process — i.e. the other
// ~35 bench binaries of a full experiment sweep — reloads that file in
// milliseconds instead of re-simulating seconds of fleet timeline.
//
// Cache file (binary, varint/f64 encodings from telemetry/binary_codec):
//
//   file := magic "UNPC" u8 version u64 fingerprint
//           <archive stream, telemetry/archive_io format>
//           ground_truth_section accounting_section
//
// The fingerprint digests the campaign seed, window, topology size, the
// codec versions AND the extraction configuration, so an analysis run with
// a non-default merge window can never silently pair with pipeline products
// cached under the default parameters.  A mismatch (changed config or
// format) invalidates the file and triggers a fresh simulate-and-rewrite.
// Location: $UNP_CACHE_DIR (default: the system temp dir) /
// unp_campaign_<fingerprint>.unpc;  UNP_CAMPAIGN_CACHE=off disables the
// cache entirely.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "analysis/extraction.hpp"
#include "analysis/grouping.hpp"
#include "sim/campaign.hpp"
#include "sim/shard.hpp"
#include "telemetry/sink.hpp"

namespace unp::bench {

/// Wall-clock + volume instrumentation of the shared pipeline stages,
/// reported by bench_perf_pipeline.
struct PipelineStats {
  bool from_cache = false;   ///< archive reloaded from disk vs simulated
  std::string cache_path;    ///< file used (empty when caching is disabled)
  double acquire_ms = 0.0;   ///< campaign acquisition (reload or simulate+spill)
  double extract_ms = 0.0;   ///< fault extraction
  double group_ms = 0.0;     ///< simultaneity grouping
  std::uint64_t raw_records = 0;  ///< raw ERROR lines entering extraction
  std::uint64_t faults = 0;       ///< independent faults extracted
  std::uint64_t groups = 0;       ///< simultaneous groups
};

struct CampaignData {
  const sim::CampaignResult* campaign = nullptr;
  analysis::ExtractionResult extraction;
  std::vector<analysis::SimultaneousGroup> groups;  ///< over extraction.faults
  PipelineStats stats;
};

/// Digest of everything that determines the shared pipeline's products:
/// campaign seed / window / topology size, codec version, and the full
/// ExtractionConfig (merge window + pathological-filter parameters).
[[nodiscard]] std::uint64_t campaign_fingerprint(
    const sim::CampaignConfig& config,
    const analysis::ExtractionConfig& extraction);

/// Shard-aware digest: additionally mixes the shard topology (count,
/// index) and the node-ownership derivation version, so a cached per-shard
/// product can never pair with a monolithic entry or with a shard cut
/// under a different partition rule.  The monolithic spec {1, 0} is the
/// identity — it returns exactly the two-argument fingerprint, which is
/// also the ensemble id all shards of one campaign stamp into their UNPH
/// archives.
[[nodiscard]] std::uint64_t campaign_fingerprint(
    const sim::CampaignConfig& config,
    const analysis::ExtractionConfig& extraction,
    const sim::ShardSpec& shard);

/// The default campaign + extraction pipeline, computed once per process
/// per extraction configuration (cache-reloaded when a valid cache file
/// exists, else simulated and spilled for the next process).
[[nodiscard]] const CampaignData& default_data();
[[nodiscard]] const CampaignData& default_data(
    const analysis::ExtractionConfig& extraction);

/// Cache file the default campaign maps to ("" when caching is disabled).
[[nodiscard]] std::string default_cache_path();

/// Delete the default campaign's cache file if present (tooling/tests).
void invalidate_default_cache();

/// Reload the default campaign from its cache file into `out`.  Returns
/// false when caching is disabled or the file is missing/stale/corrupt.
/// Exposed so the perf benches can measure the reload path in isolation.
bool reload_default_campaign(sim::CampaignResult& out);

/// Instrumentation of a one-pass streaming acquisition.
struct StreamStats {
  bool from_cache = false;      ///< record stream replayed from disk
  std::string cache_path;       ///< file used (empty when caching is disabled)
  std::uint64_t fingerprint = 0;  ///< cache key of (config, extraction)
  double acquire_ms = 0.0;      ///< full pass: reload or simulate+spill
};

/// One-pass acquisition: push the campaign's canonical record stream for
/// `config` through `sinks`, replaying the on-disk cache entry when a valid
/// one exists and otherwise simulating on `threads` threads while spilling
/// a fresh entry.  Either way every sink observes the identical stream with
/// full framing.  Sinks must (re)initialize their state in begin_campaign —
/// on a torn cache file the acquisition falls back to simulation, which
/// re-opens the stream.
StreamStats stream_campaign(const sim::CampaignConfig& config,
                            const analysis::ExtractionConfig& extraction,
                            const std::vector<telemetry::RecordSink*>& sinks,
                            std::size_t threads);

/// Standard bench header: experiment id, paper reference, and the shape the
/// paper reports (so every bench output is self-describing).
void print_header(const std::string& experiment, const std::string& paper_shape,
                  FILE* out = stdout);

}  // namespace unp::bench
