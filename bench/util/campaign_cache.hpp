// Shared bench scaffolding: every figure/table binary replays the same
// calibrated campaign (seed 42) and extraction, then prints its own view.
// The helpers here run that pipeline once per process and expose the
// pieces, plus small printing utilities shared across benches.
#pragma once

#include <string>

#include "analysis/extraction.hpp"
#include "analysis/grouping.hpp"
#include "sim/campaign.hpp"

namespace unp::bench {

struct CampaignData {
  const sim::CampaignResult* campaign = nullptr;
  analysis::ExtractionResult extraction;
  std::vector<analysis::SimultaneousGroup> groups;  ///< over extraction.faults
};

/// The default campaign + extraction pipeline, computed once per process.
[[nodiscard]] const CampaignData& default_data();

/// Standard bench header: experiment id, paper reference, and the shape the
/// paper reports (so every bench output is self-describing).
void print_header(const std::string& experiment, const std::string& paper_shape);

}  // namespace unp::bench
