// Shared parse + render path for store query requests.
//
// unp_query's CLI flags and unp_serve's request lines speak one predicate
// and action vocabulary (--since/--until/--node/--blade/--soc/--class/
// --min-bits/--max-bits selecting faults; --count, a bounded row listing,
// or a report section rendering them).  Both front ends parse through this
// translation unit — predicates via the validating store::QueryBuilder —
// and render through the same code path, so a served response body is
// byte-identical to unp_query's stdout by construction, and an invalid
// request fails closed with a store::QueryError naming the field before
// any scan starts.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "store/query_builder.hpp"
#include "store/reader.hpp"
#include "util/report_sections.hpp"

namespace unp::bench {

/// One parsed query/report request against an open store.
struct QueryRequest {
  store::Query query;
  bool count_only = false;
  std::size_t limit = 20;  ///< row-listing bound; 0 = unbounded
  bool no_prune = false;
  bool want[kSectionCount] = {};
  bool any_section = false;
  /// A predicate or an action was given (unp_query's --build uses this to
  /// decide whether a query rides along).
  bool any_query_action = false;
};

/// True when `flag` ("--since", "--count", ...) belongs to the shared
/// request vocabulary; `*needs_value` reports whether one value token
/// follows it.
[[nodiscard]] bool is_request_flag(std::string_view flag, bool* needs_value);

/// Parse "--flag [value]" tokens into a validated request.  Throws
/// store::QueryError naming the offending field on unknown flags, missing
/// values, and out-of-range input alike — callers never see a partial
/// request.
[[nodiscard]] QueryRequest parse_request(
    const std::vector<std::string>& tokens);

/// Whitespace-tokenizing wrapper for wire request lines.
[[nodiscard]] QueryRequest parse_request_line(const std::string& line);

/// The default action: a bounded, human-readable row listing.
void print_query_rows(const std::vector<analysis::FaultRecord>& faults,
                      std::size_t limit, FILE* out);

/// Execute `req` against the reader and print the response to `out` exactly
/// as unp_query prints to stdout.  `req.no_prune` overrides options.prune;
/// options.pool fans the scan (and the section replay) out when non-null.
void render_request(const store::StoreReader& reader, const QueryRequest& req,
                    const store::ScanOptions& options, FILE* out,
                    store::ScanStats* stats = nullptr);

/// render_request into a heap string via open_memstream (the serve path).
[[nodiscard]] std::string render_request_to_string(
    const store::StoreReader& reader, const QueryRequest& req,
    const store::ScanOptions& options);

}  // namespace unp::bench
