#include "util/query_render.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "analysis/fault_sink.hpp"
#include "analysis/metrics.hpp"
#include "cluster/topology.hpp"
#include "common/require.hpp"
#include "telemetry/record.hpp"

namespace unp::bench {

namespace {

using store::QueryError;

/// Arity table of the shared vocabulary.  Field names (flag minus dashes)
/// double as the QueryError field for diagnostics.
struct FlagSpec {
  const char* flag;
  bool needs_value;
};

constexpr FlagSpec kFlags[] = {
    {"--since", true},    {"--until", true},   {"--node", true},
    {"--blade", true},    {"--soc", true},     {"--class", true},
    {"--min-bits", true}, {"--max-bits", true}, {"--count", false},
    {"--limit", true},    {"--no-prune", false}, {"--all", false},
    {"--headline", false}, {"--tab1", false},  {"--fig", true},
    {"--ext", true},
};

long parse_long_in(const char* field, std::string_view value, long lo,
                   long hi) {
  long out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    throw QueryError(field,
                     "expects an integer, got '" + std::string(value) + "'");
  if (out < lo || out > hi)
    throw QueryError(field, "must be in [" + std::to_string(lo) + ", " +
                                std::to_string(hi) + "], got '" +
                                std::string(value) + "'");
  return out;
}

}  // namespace

bool is_request_flag(std::string_view flag, bool* needs_value) {
  for (const FlagSpec& spec : kFlags) {
    if (flag == spec.flag) {
      *needs_value = spec.needs_value;
      return true;
    }
  }
  return false;
}

QueryRequest parse_request(const std::vector<std::string>& tokens) {
  QueryRequest req;
  store::QueryBuilder builder;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    bool needs_value = false;
    if (!is_request_flag(flag, &needs_value))
      throw QueryError(flag, "unknown request flag");
    const std::string field =
        flag.rfind("--", 0) == 0 ? flag.substr(2) : flag;
    std::string_view value;
    if (needs_value) {
      if (++i >= tokens.size()) throw QueryError(field, "needs a value");
      value = tokens[i];
    }

    if (flag == "--since" || flag == "--until" || flag == "--node" ||
        flag == "--blade" || flag == "--soc" || flag == "--class" ||
        flag == "--min-bits" || flag == "--max-bits") {
      builder.set(field, value);
      req.any_query_action = true;
    } else if (flag == "--count") {
      req.count_only = true;
      req.any_query_action = true;
    } else if (flag == "--limit") {
      req.limit = static_cast<std::size_t>(
          parse_long_in("limit", value, 0, 1L << 40));
      req.any_query_action = true;
    } else if (flag == "--no-prune") {
      req.no_prune = true;
    } else if (flag == "--all") {
      for (int s = 0; s < kSectionCount; ++s) req.want[s] = true;
      req.any_section = req.any_query_action = true;
    } else if (flag == "--headline") {
      req.want[kHeadline] = true;
      req.any_section = req.any_query_action = true;
    } else if (flag == "--tab1") {
      req.want[kTab1] = true;
      req.any_section = req.any_query_action = true;
    } else if (flag == "--fig") {
      const long n = parse_long_in("fig", value, 1, 13);
      req.want[kFigSections[n - 1]] = true;
      req.any_section = req.any_query_action = true;
    } else {  // --ext
      if (value == "temporal") {
        req.want[kExtTemporal] = true;
      } else if (value == "markov") {
        req.want[kExtMarkov] = true;
      } else if (value == "alignment") {
        req.want[kExtAlignment] = true;
      } else if (value == "ecc") {
        req.want[kExtEcc] = true;
      } else {
        throw QueryError("ext",
                         "expects temporal|markov|alignment|ecc, got '" +
                             std::string(value) + "'");
      }
      req.any_section = req.any_query_action = true;
    }
  }
  req.query = builder.build();
  return req;
}

QueryRequest parse_request_line(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return parse_request(tokens);
}

void print_query_rows(const std::vector<analysis::FaultRecord>& faults,
                      std::size_t limit, FILE* out) {
  std::fprintf(
      out,
      "node   first_seen  last_seen   raw_logs  address       expected  "
      "actual    bits  class       temp_c\n");
  const std::size_t shown =
      limit == 0 ? faults.size() : std::min(limit, faults.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const analysis::FaultRecord& f = faults[i];
    const int bits = f.flipped_bits();
    char temp[32];
    if (f.temperature_c == telemetry::kNoTemperature)
      std::snprintf(temp, sizeof temp, "-");
    else
      std::snprintf(temp, sizeof temp, "%.1f", f.temperature_c);
    std::fprintf(
        out,
        "%-6s %-11lld %-11lld %-9llu 0x%010llx  %08x  %08x  %-5d %-11s %s\n",
        cluster::node_name(f.node).c_str(),
        static_cast<long long>(f.first_seen),
        static_cast<long long>(f.last_seen),
        static_cast<unsigned long long>(f.raw_logs),
        static_cast<unsigned long long>(f.virtual_address), f.expected,
        f.actual, bits, store::to_string(store::classify_bits(bits)), temp);
  }
  if (shown < faults.size())
    std::fprintf(out, "... %zu more row(s); raise --limit to list them\n",
                 faults.size() - shown);
}

void render_request(const store::StoreReader& reader, const QueryRequest& req,
                    const store::ScanOptions& options, FILE* out,
                    store::ScanStats* stats) {
  store::ScanStats local;
  store::ScanStats& s = stats ? *stats : local;
  store::ScanOptions scan = options;
  scan.prune = options.prune && !req.no_prune;

  if (req.any_section) {
    // Replay the selected faults through the exact unp_report renderers.
    analysis::ExtractionResult extraction;
    extraction.faults = reader.materialize(req.query, scan, &s);
    extraction.removed_nodes = reader.extraction_meta().removed_nodes;
    extraction.total_raw_logs = reader.extraction_meta().total_raw_logs;
    extraction.removed_raw_logs = reader.extraction_meta().removed_raw_logs;

    ReportAnalyzers analyzers(req.want);
    analysis::run_fault_sinks(extraction.faults, {reader.window()},
                              analyzers.sinks(), scan.pool);

    const store::StoredScanProfile& profile = reader.scan_profile();
    ReportInputs inputs;
    inputs.window = reader.window();
    inputs.hours = &profile.hours;
    inputs.terabyte_hours = &profile.terabyte_hours;
    inputs.daily_terabyte_hours = profile.daily_terabyte_hours;
    inputs.total_hours = profile.total_hours;
    inputs.total_terabyte_hours = profile.total_terabyte_hours;
    inputs.monitored_nodes = profile.monitored_nodes;
    inputs.extraction = &extraction;
    analyzers.render(inputs, out);
  } else if (req.count_only) {
    store::Query query = req.query;
    query.projection = 0;  // predicate columns only
    (void)reader.run(query, scan, &s);
    std::fprintf(out, "%llu\n",
                 static_cast<unsigned long long>(s.rows_matched));
  } else {
    const std::vector<analysis::FaultRecord> faults =
        reader.materialize(req.query, scan, &s);
    print_query_rows(faults, req.limit, out);
  }
}

std::string render_request_to_string(const store::StoreReader& reader,
                                     const QueryRequest& req,
                                     const store::ScanOptions& options) {
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  UNP_REQUIRE(mem != nullptr);
  try {
    render_request(reader, req, options, mem);
  } catch (...) {
    std::fclose(mem);
    std::free(buf);
    throw;
  }
  std::fclose(mem);
  std::string body(buf, len);
  std::free(buf);
  return body;
}

}  // namespace unp::bench
