// Shared strict argument parsing for the CLI drivers (unp_report,
// unp_policy, unp_query, unp_campaign).
//
// Every driver follows the same contract: malformed input prints one
// program-prefixed diagnostic to stderr and makes the driver exit 2 without
// touching the pipeline.  Number parsing is whole-string strict — "1x", ""
// and "3.5" are rejected rather than silently truncated the way bare
// strtol would.
#pragma once

#include <cstdint>
#include <limits>

namespace unp::bench {

/// Whole-string signed parse; rejects trailing garbage and empty input.
[[nodiscard]] bool parse_long_strict(const char* text, long& out);
/// Whole-string unsigned parse with the same strictness.
[[nodiscard]] bool parse_u64_strict(const char* text, std::uint64_t& out);

/// Cursor over argv that owns the diagnostic format, so all drivers report
/// missing values and out-of-range numbers identically.
class CliParser {
 public:
  CliParser(const char* program, int argc, char** argv)
      : program_(program), argc_(argc), argv_(argv) {}

  /// The value following argv[i], advancing i; nullptr (after printing
  /// "<program>: <flag> needs a value") when none follows.
  [[nodiscard]] const char* next_value(int& i, const char* flag) const;

  /// next_value parsed as a long constrained to [lo, hi].  The diagnostic
  /// adapts to the bound: a full range reads "expects an integer", a
  /// one-sided range "expects >= lo", a closed one "expects lo..hi".
  [[nodiscard]] bool long_in(int& i, const char* flag, long lo, long hi,
                             long& out) const;

  /// next_value parsed as an unsigned 64-bit integer.
  [[nodiscard]] bool u64(int& i, const char* flag, std::uint64_t& out) const;

  static constexpr long kNoUpperBound = std::numeric_limits<long>::max();
  static constexpr long kNoLowerBound = std::numeric_limits<long>::min();

 private:
  const char* program_;
  int argc_;
  char** argv_;
};

}  // namespace unp::bench
