#include "util/figures.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dram/mapping/mapping.hpp"
#include "ecc/engine.hpp"
#include "ecc/registry.hpp"
#include "faults/hammer/detect.hpp"
#include "util/campaign_cache.hpp"

namespace unp::bench {

void print_headline(const analysis::HeadlineStats& stats,
                    const analysis::ExtractionResult& extraction, FILE* out) {
  print_header(
      "Headline statistics (Section III-B)",
      ">25M raw logs; >98% from one removed node; >55k independent errors; "
      "4.2M node-hours; 12,135 TB-h; 923 nodes; node MTBF ~41h; cluster "
      "error every ~10 min", out);

  std::fprintf(out, "monitored nodes                : %d\n", stats.monitored_nodes);
  std::fprintf(out, "raw ERROR logs                 : %llu\n",
              static_cast<unsigned long long>(stats.raw_logs));
  std::fprintf(out, "removed (pathological) nodes   : %zu\n",
              extraction.removed_nodes.size());
  for (const auto& n : extraction.removed_nodes) {
    std::fprintf(out, "  removed node                 : %s\n",
                cluster::node_name(n).c_str());
  }
  std::fprintf(out, "raw-log fraction removed       : %.2f%%\n",
              100.0 * stats.removed_fraction);
  std::fprintf(out, "independent memory errors      : %llu\n",
              static_cast<unsigned long long>(stats.independent_faults));
  std::fprintf(out, "monitored node-hours           : %.0f\n",
              stats.monitored_node_hours);
  std::fprintf(out, "terabyte-hours scanned         : %.0f\n", stats.terabyte_hours);
  std::fprintf(out, "node MTBF (hours per error)    : %.1f\n", stats.node_mtbf_hours);
  std::fprintf(out, "cluster error interval (min)   : %.1f\n",
              stats.cluster_mtbe_minutes);
}

void print_fig01(const Grid2D& hours, FILE* out) {
  print_header(
      "Fig 1 - hours each node was scanned",
      "most nodes ~5000 h; login SoC-0 blank on first blades; SoC-12 column "
      "starved; blade 33 truncated", out);

  std::fprintf(out, "rows = blades 0..%zu, cols = SoCs 0..%zu; max = %.0f h\n\n",
              hours.rows() - 1, hours.cols() - 1, hours.max_value());
  std::fprintf(out, "%s\n", render_heatmap(hours).c_str());

  // Column means expose the SoC-12 starvation; a few reference columns.
  RunningStats all;
  RunningStats soc12;
  for (std::size_t b = 0; b < hours.rows(); ++b) {
    for (std::size_t s = 0; s < hours.cols(); ++s) {
      if (hours.at(b, s) <= 0.0) continue;
      (s == 12 ? soc12 : all).add(hours.at(b, s));
    }
  }
  std::fprintf(out, "mean hours, SoCs != 12 : %.0f\n", all.mean());
  std::fprintf(out, "mean hours, SoC 12     : %.0f (overheating column)\n",
              soc12.mean());
}

void print_fig02(const Grid2D& hours, const Grid2D& tbh, FILE* out) {
  print_header(
      "Fig 2 - terabyte-hours scanned per node",
      "mirrors Fig 1; most nodes ~15 TB-h; total 12,135 TB-h", out);

  std::fprintf(out, "rows = blades, cols = SoCs; max = %.1f TB-h; total = %.0f TB-h\n\n",
              tbh.max_value(), tbh.sum());
  std::fprintf(out, "%s\n", render_heatmap(tbh).c_str());

  // Correlation with Fig 1 across scanned nodes.
  std::vector<double> x, y;
  RunningStats per_node;
  for (std::size_t b = 0; b < tbh.rows(); ++b) {
    for (std::size_t s = 0; s < tbh.cols(); ++s) {
      if (hours.at(b, s) <= 0.0) continue;
      x.push_back(hours.at(b, s));
      y.push_back(tbh.at(b, s));
      per_node.add(tbh.at(b, s));
    }
  }
  const PearsonResult corr = pearson(x, y);
  std::fprintf(out, "median TB-h per scanned node : %.1f\n",
              median_of(std::span<const double>(y)));
  std::fprintf(out, "corr(hours, TB-h)            : r = %.3f (paper: strong)\n",
              corr.r);
}

void print_fig03(const Grid2D& errors, FILE* out) {
  print_header(
      "Fig 3 - independent memory errors per node (log scale)",
      "most nodes zero; single-error nodes dominate the faulty set; a few "
      "nodes carry thousands", out);

  std::fprintf(out, "rows = blades, cols = SoCs; max = %.0f errors (log ramp)\n\n",
              errors.max_value());
  std::fprintf(out, "%s\n", render_heatmap(errors, /*log_scale=*/true).c_str());

  int zero = 0, one = 0, two_to_ten = 0, more = 0, thousands = 0;
  for (std::size_t b = 0; b < errors.rows(); ++b) {
    for (std::size_t s = 0; s < errors.cols(); ++s) {
      const double v = errors.at(b, s);
      if (v == 0.0) {
        ++zero;
      } else if (v == 1.0) {
        ++one;
      } else if (v <= 10.0) {
        ++two_to_ten;
      } else if (v < 1000.0) {
        ++more;
      } else {
        ++thousands;
      }
    }
  }
  std::fprintf(out, "nodes with zero errors   : %d\n", zero);
  std::fprintf(out, "nodes with one error     : %d\n", one);
  std::fprintf(out, "nodes with 2-10 errors   : %d\n", two_to_ten);
  std::fprintf(out, "nodes with 11-999 errors : %d\n", more);
  std::fprintf(out, "nodes with >=1000 errors : %d\n", thousands);
}

void print_tab1(const std::vector<analysis::MultibitPattern>& patterns,
                const analysis::AdjacencyStats& adj,
                const analysis::DirectionStats& dir, FILE* out) {
  print_header(
      "Table I - multi-bit corruption census",
      "85 multi-bit (76 double, 9 wider, max 9 bits); repeats up to 36x; "
      "mostly non-consecutive; mean bit distance ~3, max 11; ~90% 1->0", out);

  TextTable table({"Bits", "Expected", "Corrupted", "Occurrences", "Consecutive"});
  std::uint64_t total = 0, doubles = 0, wider = 0;
  int max_bits = 0;
  for (const auto& p : patterns) {
    table.add_row({std::to_string(p.bits), format_hex32(p.expected),
                   format_hex32(p.corrupted), std::to_string(p.occurrences),
                   p.consecutive ? "Yes" : "No"});
    total += p.occurrences;
    if (p.bits == 2) doubles += p.occurrences;
    if (p.bits > 2) wider += p.occurrences;
    max_bits = p.bits > max_bits ? p.bits : max_bits;
  }
  std::fprintf(out, "%s\n", table.render().c_str());

  std::fprintf(out, "multi-bit faults              : %llu (paper: 85)\n",
              static_cast<unsigned long long>(total));
  std::fprintf(out, "  double-bit                  : %llu (paper: 76)\n",
              static_cast<unsigned long long>(doubles));
  std::fprintf(out, "  more than 2 bits            : %llu (paper: 9)\n",
              static_cast<unsigned long long>(wider));
  std::fprintf(out, "  widest corruption           : %d bits (paper: 9)\n", max_bits);

  std::fprintf(out, "non-adjacent / consecutive    : %llu / %llu (paper: majority "
              "non-adjacent)\n",
              static_cast<unsigned long long>(adj.non_adjacent),
              static_cast<unsigned long long>(adj.consecutive));
  std::fprintf(out, "mean distance between bits    : %.1f (paper: ~3)\n",
              adj.mean_distance);
  std::fprintf(out, "max distance between bits     : %d (paper: 11)\n",
              adj.max_distance);
  std::fprintf(out, "low-half-dominated faults     : %llu of %llu\n",
              static_cast<unsigned long long>(adj.low_half_majority),
              static_cast<unsigned long long>(adj.multibit_faults));

  std::fprintf(out, "bits flipped 1->0             : %.1f%% (paper: ~90%%)\n",
              100.0 * dir.one_to_zero_fraction());
}

void print_fig04(const analysis::MultibitViewpoints& viewpoints,
                 const analysis::CoOccurrence& co, FILE* out) {
  print_header(
      "Fig 4 - per-word vs per-node multi-bit accounting",
      "per-node multi-bit >> per-word multi-bit; per-node single-bit < "
      "per-word single-bit; >26,000 simultaneous corruptions; bursts up to "
      "36 bits; 44 double+single, 2 triple+single, 1 double+double", out);

  TextTable table({"Bits", "Per memory word", "Per node"});
  for (int bits = 1; bits <= analysis::MultibitViewpoints::kMaxBits; ++bits) {
    if (viewpoints.per_word[bits] == 0 && viewpoints.per_node[bits] == 0) continue;
    table.add_row({std::to_string(bits), format_count(viewpoints.per_word[bits]),
                   format_count(viewpoints.per_node[bits])});
  }
  std::fprintf(out, "%s\n", table.render().c_str());

  std::uint64_t word_single = viewpoints.per_word[1];
  std::uint64_t node_single = viewpoints.per_node[1];
  std::uint64_t word_multi = 0, node_multi = 0;
  for (int bits = 2; bits <= analysis::MultibitViewpoints::kMaxBits; ++bits) {
    word_multi += viewpoints.per_word[bits];
    node_multi += viewpoints.per_node[bits];
  }
  std::fprintf(out, "single-bit  per word / per node : %s / %s\n",
              format_count(word_single).c_str(), format_count(node_single).c_str());
  std::fprintf(out, "multi-bit   per word / per node : %s / %s\n",
              format_count(word_multi).c_str(), format_count(node_multi).c_str());

  std::fprintf(out, "\nsimultaneous corruptions        : %s (paper: >26,000)\n",
              format_count(co.simultaneous_corruptions).c_str());
  std::fprintf(out, "multi-single-bit groups         : %s (paper: >99.9%% of them)\n",
              format_count(co.multi_single_groups).c_str());
  std::fprintf(out, "double + single co-occurrences  : %s (paper: 44)\n",
              format_count(co.double_plus_single).c_str());
  std::fprintf(out, "triple + single co-occurrences  : %s (paper: 2)\n",
              format_count(co.triple_plus_single).c_str());
  std::fprintf(out, "multi + multi co-occurrences    : %s (paper: 1)\n",
              format_count(co.double_plus_double).c_str());
  std::fprintf(out, "widest burst                    : %s bits (paper: 36)\n",
              format_count(co.max_bits_one_instant).c_str());
}

void print_fig05(const analysis::HourOfDayProfile& profile, FILE* out) {
  print_header(
      "Fig 5 - errors per hour of day, by corrupted bits",
      "single-bit dominates every hour; overall distribution homogeneous "
      "across the day", out);

  TextTable table({"Hour", "1", "2", "3", "4", "5", "6+", "Total"});
  for (int h = 0; h < 24; ++h) {
    std::vector<std::string> row{std::to_string(h)};
    for (int c = 0; c < analysis::kBitClasses; ++c) {
      row.push_back(std::to_string(
          profile.counts[static_cast<std::size_t>(h)][static_cast<std::size_t>(c)]));
    }
    row.push_back(format_count(profile.total(h)));
    table.add_row(std::move(row));
  }
  std::fprintf(out, "%s\n", table.render().c_str());

  std::vector<BarEntry> bars;
  for (int h = 0; h < 24; ++h) {
    char label[8];
    std::snprintf(label, sizeof label, "%02dh", h);
    bars.push_back({label, static_cast<double>(profile.total(h))});
  }
  std::fprintf(out, "%s\n", render_bars(bars, 50).c_str());

  // Homogeneity check: max/min hourly totals stay within a small factor.
  std::uint64_t lo = profile.total(0), hi = profile.total(0);
  for (int h = 1; h < 24; ++h) {
    lo = std::min(lo, profile.total(h));
    hi = std::max(hi, profile.total(h));
  }
  std::fprintf(out, "hourly total spread (max/min) : %.2f (paper: homogeneous)\n",
              lo > 0 ? static_cast<double>(hi) / static_cast<double>(lo) : 0.0);
}

void print_fig06(const analysis::HourOfDayProfile& profile, FILE* out) {
  print_header(
      "Fig 6 - multi-bit errors per hour of day",
      "bell shape peaking at noon; day (07-18h) ~2x night", out);

  std::vector<BarEntry> bars;
  for (int h = 0; h < 24; ++h) {
    char label[8];
    std::snprintf(label, sizeof label, "%02dh", h);
    bars.push_back({label, static_cast<double>(profile.multibit(h))});
  }
  std::fprintf(out, "%s\n", render_bars(bars, 50).c_str());

  // With only ~85 events the raw histogram is noisy; locate the bell's top
  // with a 3-hour sliding window, as one would read the figure.
  int peak_hour = 0;
  std::uint64_t peak = 0;
  for (int h = 0; h < 24; ++h) {
    const std::uint64_t window = profile.multibit((h + 23) % 24) +
                                 profile.multibit(h) +
                                 profile.multibit((h + 1) % 24);
    if (window > peak) {
      peak = window;
      peak_hour = h;
    }
  }
  std::fprintf(out, "day/night multi-bit ratio : %.2f (paper: ~2)\n",
              profile.day_night_ratio_multibit());
  std::fprintf(out, "peak (3h window centre)   : %d:00 local (paper: noon)\n",
              peak_hour);
}

void print_fig07(const analysis::TemperatureProfile& profile, FILE* out) {
  print_header(
      "Fig 7 - errors vs node temperature, by corrupted bits",
      "bulk at 30-40 degC; small >60 degC tail; no high-temperature "
      "correlation", out);

  TextTable table({"Temp bin", "1", "2", "3", "4", "5", "6+"});
  for (std::size_t bin = 0; bin < analysis::TemperatureProfile::kBins; ++bin) {
    std::uint64_t row_total = 0;
    std::vector<std::string> row{
        format_fixed(profile.by_class[0].bin_lo(bin), 0) + "-" +
        format_fixed(profile.by_class[0].bin_lo(bin) + 2.0, 0) + "C"};
    for (int c = 0; c < analysis::kBitClasses; ++c) {
      const std::uint64_t v =
          profile.by_class[static_cast<std::size_t>(c)].count(bin);
      row.push_back(std::to_string(v));
      row_total += v;
    }
    if (row_total > 0) table.add_row(std::move(row));
  }
  std::fprintf(out, "%s\n", table.render().c_str());

  std::uint64_t in_band = 0, hot = 0, total = 0;
  for (int c = 0; c < analysis::kBitClasses; ++c) {
    const auto& h = profile.by_class[static_cast<std::size_t>(c)];
    for (std::size_t bin = 0; bin < h.bins(); ++bin) {
      const double lo = h.bin_lo(bin);
      total += h.count(bin);
      if (lo >= 30.0 && lo < 40.0) in_band += h.count(bin);
      if (lo >= 60.0) hot += h.count(bin);
    }
    total += h.underflow() + h.overflow();
    hot += h.overflow();
  }
  std::fprintf(out, "errors with a reading        : %s\n", format_count(total).c_str());
  std::fprintf(out, "errors without (pre-April)   : %s\n",
              format_count(profile.without_reading).c_str());
  std::fprintf(out, "fraction in 30-40 degC       : %.1f%% (paper: most)\n",
              total ? 100.0 * static_cast<double>(in_band) /
                          static_cast<double>(total)
                    : 0.0);
  std::fprintf(out, "errors above 60 degC         : %s (paper: small set)\n",
              format_count(hot).c_str());
}

void print_fig08(const analysis::TemperatureProfile& profile, FILE* out) {
  print_header(
      "Fig 8 - multi-bit errors vs node temperature",
      "all multi-bit errors (with a reading) at nominal temperatures", out);

  std::vector<BarEntry> bars;
  double hottest = 0.0;
  std::uint64_t total = 0;
  for (std::size_t bin = 0; bin < analysis::TemperatureProfile::kBins; ++bin) {
    std::uint64_t multibit = 0;
    for (int c = 1; c < analysis::kBitClasses; ++c) {
      multibit += profile.by_class[static_cast<std::size_t>(c)].count(bin);
    }
    if (multibit == 0) continue;
    const double lo = profile.by_class[1].bin_lo(bin);
    bars.push_back({format_fixed(lo, 0) + "-" + format_fixed(lo + 2.0, 0) + "C",
                    static_cast<double>(multibit)});
    hottest = lo + 2.0;
    total += multibit;
  }
  std::fprintf(out, "%s\n", render_bars(bars, 50).c_str());
  std::fprintf(out, "multi-bit errors with a reading : %s\n",
              format_count(total).c_str());
  std::fprintf(out, "hottest multi-bit observation   : <%.0f degC (paper: nominal "
              "range only)\n",
              hottest);
}

void print_fig09(std::span<const double> daily_tbh,
                 const CampaignWindow& window, FILE* out) {
  print_header(
      "Fig 9 - terabyte-hours scanned per day",
      "peaks in Aug/Sep/Dec (vacations), trough Apr-Jul (term time)", out);

  // Monthly aggregation for a readable shape; daily values summarized.
  struct Month {
    int year, month;
    double tbh = 0.0;
    int days = 0;
  };
  std::vector<Month> months;
  for (std::size_t d = 0; d < daily_tbh.size(); ++d) {
    const CivilDateTime c = to_civil_utc(
        window.start + static_cast<TimePoint>(d) * kSecondsPerDay);
    if (months.empty() || months.back().month != c.month ||
        months.back().year != c.year) {
      months.push_back({c.year, c.month, 0.0, 0});
    }
    months.back().tbh += daily_tbh[d];
    ++months.back().days;
  }

  std::vector<BarEntry> bars;
  for (const auto& m : months) {
    if (m.days < 5) continue;  // trailing partial bucket
    char label[16];
    std::snprintf(label, sizeof label, "%04d-%02d", m.year, m.month);
    bars.push_back({label, m.tbh / m.days});
  }
  std::fprintf(out, "mean TB-h scanned per day, by month:\n%s\n",
              render_bars(bars, 50).c_str());

  double summer = 0.0, term = 0.0;
  int summer_n = 0, term_n = 0;
  for (const auto& m : months) {
    if (m.month == 8 || m.month == 9 || m.month == 12) {
      summer += m.tbh;
      summer_n += m.days;
    } else if (m.month >= 4 && m.month <= 7) {
      term += m.tbh;
      term_n += m.days;
    }
  }
  std::fprintf(out, "vacation vs term-time daily scan ratio : %.2f (paper: >1)\n",
              (term_n && summer_n)
                  ? (summer / summer_n) / (term / term_n)
                  : 0.0);
}

void print_fig10(const analysis::DailyErrorSeries& series,
                 const PearsonResult& corr, const CampaignWindow& window, FILE* out) {
  print_header(
      "Fig 10 - errors per day (and scan-vs-error correlation)",
      "errors concentrate Sep-Dec; Pearson r ~ -0.18, p ~ 2e-4: scanning "
      "volume does not drive error counts", out);

  // Monthly totals keep the printout readable.
  struct Month {
    int year, month;
    std::uint64_t errors = 0;
  };
  std::vector<Month> months;
  for (std::size_t d = 0; d < series.size(); ++d) {
    const CivilDateTime c = to_civil_utc(
        window.start + static_cast<TimePoint>(d) * kSecondsPerDay);
    if (months.empty() || months.back().month != c.month ||
        months.back().year != c.year) {
      months.push_back({c.year, c.month, 0});
    }
    for (int k = 0; k < analysis::kBitClasses; ++k) {
      months.back().errors += series[d][static_cast<std::size_t>(k)];
    }
  }
  std::vector<BarEntry> bars;
  for (const auto& m : months) {
    char label[16];
    std::snprintf(label, sizeof label, "%04d-%02d", m.year, m.month);
    bars.push_back({label, static_cast<double>(m.errors)});
  }
  std::fprintf(out, "errors per month:\n%s\n", render_bars(bars, 50).c_str());

  std::fprintf(out, "Pearson(daily TB-h, daily errors) : r = %.5f (paper: -0.17966)\n",
              corr.r);
  std::fprintf(out, "p-value                           : %.4g (paper: 0.0002)\n",
              corr.p_value);
  std::fprintf(out, "n (days)                          : %zu\n", corr.n);
}

void print_fig11(analysis::FaultView faults, const CampaignWindow& window, FILE* out) {
  print_header(
      "Fig 11 - multi-bit errors per day",
      "rare all year; November burst correlated with single-bit surge; two "
      "same-day undetectable pairs (March, May), hours apart", out);

  TextTable table({"Date", "Multi-bit errors", "of which >3 bits"});
  std::map<std::int64_t, std::pair<int, int>> days;  // day -> (multibit, sdc)
  std::map<std::int64_t, std::vector<TimePoint>> sdc_times;
  for (const auto& f : faults) {
    const int bits = f.flipped_bits();
    if (bits < 2) continue;
    const std::int64_t day = window.day_of_campaign(f.first_seen);
    ++days[day].first;
    if (bits > 3) {
      ++days[day].second;
      sdc_times[day].push_back(f.first_seen);
    }
  }
  int november = 0;
  for (const auto& [day, counts] : days) {
    const TimePoint t = window.start + day * kSecondsPerDay;
    const CivilDateTime c = to_civil_utc(t);
    char date[16];
    std::snprintf(date, sizeof date, "%04d-%02d-%02d", c.year, c.month, c.day);
    table.add_row({date, std::to_string(counts.first),
                   std::to_string(counts.second)});
    if (c.year == 2015 && c.month == 11) november += counts.first;
  }
  std::fprintf(out, "%s\n", table.render().c_str());
  std::fprintf(out, "days with any multi-bit error : %zu (paper: a few dozen)\n",
              days.size());
  std::fprintf(out, "multi-bit errors in Nov 2015  : %d (paper: unusually high)\n",
              november);

  for (const auto& [day, times] : sdc_times) {
    if (times.size() < 2) continue;
    const double hours_apart =
        static_cast<double>(times.back() - times.front()) / kSecondsPerHour;
    const CivilDateTime c =
        to_civil_utc(window.start + day * kSecondsPerDay);
    std::fprintf(out, "same-day undetectable pair    : %04d-%02d, %.1f h apart "
                "(paper: March & May pairs, hours apart)\n",
                c.year, c.month, hours_apart);
  }
}

void print_fig12(const analysis::TopNodeSeries& top,
                 const std::vector<analysis::NodePatternProfile>& profiles,
                 const CampaignWindow& window, FILE* out) {
  print_header(
      "Fig 12 - errors per day: top-3 nodes vs the rest",
      "one degrading node >50k; two weak-bit nodes with one fixed bit each; "
      "rest negligible; >99.9% of errors in <1% of nodes", out);

  std::uint64_t total = top.rest_total;
  for (const auto t : top.node_totals) total += t;

  TextTable table({"Node", "Faults", "Share", "Distinct addrs", "Distinct patterns",
                   "Single fixed bit"});
  for (std::size_t k = 0; k < top.nodes.size(); ++k) {
    const analysis::NodePatternProfile& profile = profiles[k];
    table.add_row(
        {cluster::node_name(top.nodes[k]), format_count(top.node_totals[k]),
         format_fixed(100.0 * static_cast<double>(top.node_totals[k]) /
                          static_cast<double>(total),
                      2) + "%",
         format_count(profile.distinct_addresses),
         format_count(profile.distinct_patterns),
         profile.single_fixed_bit ? "Yes" : "No"});
  }
  table.add_row({"all others", format_count(top.rest_total),
                 format_fixed(100.0 * static_cast<double>(top.rest_total) /
                                  static_cast<double>(total),
                              2) + "%",
                 "-", "-", "-"});
  std::fprintf(out, "%s\n", table.render().c_str());

  // Peak daily rate of the loudest node and its monthly trajectory.
  if (!top.per_day.empty()) {
    std::uint64_t peak = 0;
    for (const auto v : top.per_day[0]) peak = std::max(peak, v);
    std::fprintf(out, "loudest node peak rate  : %s errors/day (paper: >1000 by "
                "November)\n",
                format_count(peak).c_str());

    std::fprintf(out, "loudest node by month   :\n");
    std::vector<BarEntry> bars;
    std::uint64_t month_total = 0;
    int cur_month = -1, cur_year = 0;
    for (std::size_t d = 0; d < top.per_day[0].size(); ++d) {
      const CivilDateTime c = to_civil_utc(
          window.start + static_cast<TimePoint>(d) * kSecondsPerDay);
      if (c.month != cur_month) {
        if (cur_month >= 0) {
          char label[16];
          std::snprintf(label, sizeof label, "%04d-%02d", cur_year, cur_month);
          bars.push_back({label, static_cast<double>(month_total)});
        }
        cur_month = c.month;
        cur_year = c.year;
        month_total = 0;
      }
      month_total += top.per_day[0][d];
    }
    std::fprintf(out, "%s\n", render_bars(bars, 50).c_str());
  }
}

void print_fig13(const analysis::AutoRegime& result,
                 const CampaignWindow& window, FILE* out) {
  print_header(
      "Fig 13 - normal vs degraded days (Section III-I)",
      "77 degraded days (18.1%) vs 348 normal; MTBF 167 h normal vs 0.39 h "
      "degraded; loudest (permanent) node excluded first", out);

  if (result.excluded) {
    std::fprintf(out, "excluded permanent-failure node : %s\n\n",
                cluster::node_name(*result.excluded).c_str());
  }

  // Calendar strip: one character per day ('.' normal, '#' degraded),
  // wrapped by month.
  std::fprintf(out, "campaign calendar (.=normal  #=degraded):\n");
  int cur_month = -1;
  std::string line;
  for (std::size_t d = 0; d < result.regime.degraded.size(); ++d) {
    const TimePoint t = window.start + static_cast<TimePoint>(d) * kSecondsPerDay;
    if (t >= window.end) break;
    const CivilDateTime c = to_civil_utc(t);
    if (c.month != cur_month) {
      if (!line.empty()) std::fprintf(out, "%s\n", line.c_str());
      char label[16];
      std::snprintf(label, sizeof label, "%04d-%02d ", c.year, c.month);
      line = label;
      cur_month = c.month;
    }
    line += result.regime.degraded[d] ? '#' : '.';
  }
  if (!line.empty()) std::fprintf(out, "%s\n", line.c_str());

  const analysis::RegimeResult& regime = result.regime;
  std::fprintf(out, "\nnormal days     : %llu\n",
              static_cast<unsigned long long>(regime.normal_days));
  std::fprintf(out, "degraded days   : %llu (%.1f%%; paper: 77 = 18.1%%)\n",
              static_cast<unsigned long long>(regime.degraded_days),
              100.0 * regime.degraded_fraction());
  std::fprintf(out, "normal errors   : %llu (paper: ~50)\n",
              static_cast<unsigned long long>(regime.normal_errors));
  std::fprintf(out, "degraded errors : %llu (paper: ~5000)\n",
              static_cast<unsigned long long>(regime.degraded_errors));
  std::fprintf(out, "normal MTBF     : %.0f h (paper: 167 h)\n",
              regime.normal_mtbf_hours);
  std::fprintf(out, "degraded MTBF   : %.2f h (paper: 0.39 h)\n",
              regime.degraded_mtbf_hours);
}

void print_tab2(const std::vector<resilience::QuarantineOutcome>& sweep, FILE* out) {
  print_header(
      "Table II - quarantine sweep (Section IV)",
      "0d: 4779 errors / 2.1h MTBF ... 30d: 65 errors / 180 node-days / "
      "156.9h MTBF; ~3 orders of magnitude for <0.1% availability", out);

  TextTable table({"Quarantine (days)", "Errors", "Node-days in quarantine",
                   "System MTBF (h)", "Availability loss"});
  for (const auto& row : sweep) {
    table.add_row({std::to_string(row.period_days),
                   format_count(row.counted_errors),
                   format_fixed(row.node_days_quarantined, 0),
                   format_fixed(row.system_mtbf_hours, 1),
                   format_fixed(100.0 * row.availability_loss, 3) + "%"});
  }
  std::fprintf(out, "%s\n", table.render().c_str());

  if (sweep.size() >= 2 && sweep.front().system_mtbf_hours > 0.0) {
    const double gain =
        sweep.back().system_mtbf_hours / sweep.front().system_mtbf_hours;
    std::fprintf(out, "MTBF gain 0d -> 30d : %.0fx (paper: ~75x, 'almost three "
                "orders of magnitude' vs per-day rates)\n",
                gain);
  }
}

void print_ext_temporal(const analysis::InterArrivalStats& observed,
                        const analysis::InterArrivalStats& null_model, FILE* out) {
  print_header(
      "Extension - inter-arrival structure of the error process",
      "cv >> 1 (Poisson would be 1): errors arrive in bursts separated by "
      "long silences", out);

  TextTable table({"Quantity", "Campaign", "Poisson null"});
  auto fmt_s = [](double seconds) {
    if (seconds < 120.0) return format_fixed(seconds, 1) + " s";
    if (seconds < 7200.0) return format_fixed(seconds / 60.0, 1) + " min";
    return format_fixed(seconds / 3600.0, 1) + " h";
  };
  table.add_row({"gaps", format_count(observed.gaps),
                 format_count(null_model.gaps)});
  table.add_row({"mean gap", fmt_s(observed.mean_s), fmt_s(null_model.mean_s)});
  table.add_row({"median gap", fmt_s(observed.median_s),
                 fmt_s(null_model.median_s)});
  table.add_row({"coefficient of variation", format_fixed(observed.cv, 2),
                 format_fixed(null_model.cv, 2)});
  table.add_row({"burstiness index", format_fixed(observed.burstiness(), 3),
                 format_fixed(null_model.burstiness(), 3)});
  table.add_row({"gaps <= 1 min",
                 format_fixed(100.0 * observed.within_minute, 1) + "%",
                 format_fixed(100.0 * null_model.within_minute, 1) + "%"});
  table.add_row({"gaps <= 1 h",
                 format_fixed(100.0 * observed.within_hour, 1) + "%",
                 format_fixed(100.0 * null_model.within_hour, 1) + "%"});
  std::fprintf(out, "%s\n", table.render().c_str());

  std::fprintf(out, "(median gap of %s against a mean of %s: most errors chase a "
              "predecessor within minutes while the mean is dragged out by "
              "week-long silences - the Section III-I clustering, in one "
              "number: cv %.1f vs Poisson 1.0)\n",
              fmt_s(observed.median_s).c_str(), fmt_s(observed.mean_s).c_str(),
              observed.cv);
}

void print_ext_markov(const std::vector<bool>& days,
                      const analysis::MarkovRegimeModel& model,
                      const analysis::SpellStats& stats,
                      double empirical_degraded_fraction, FILE* out) {
  print_header(
      "Extension - Markov dynamics of the regime sequence (Fig 13)",
      "degraded spells last days, not weeks; the fitted chain reproduces "
      "the empirical spell structure", out);

  std::fprintf(out, "P(stay normal)        : %.3f\n", model.p_stay_normal);
  std::fprintf(out, "P(stay degraded)      : %.3f\n", model.p_stay_degraded);
  std::fprintf(out, "stationary degraded   : %.1f%% (empirical %.1f%%)\n",
              100.0 * model.stationary_degraded(),
              100.0 * empirical_degraded_fraction);

  TextTable table({"Quantity", "Markov fit", "Empirical"});
  table.add_row({"mean normal spell (days)",
                 format_fixed(model.mean_normal_spell_days(), 1),
                 format_fixed(stats.mean_normal_spell, 1)});
  table.add_row({"mean degraded spell (days)",
                 format_fixed(model.mean_degraded_spell_days(), 1),
                 format_fixed(stats.mean_degraded_spell, 1)});
  table.add_row({"degraded spells", "-", format_count(stats.degraded_spells)});
  table.add_row({"longest degraded spell", "-",
                 format_count(stats.longest_degraded_spell) + " days"});
  std::fprintf(out, "\n%s\n", table.render().c_str());

  // Generative check: synthetic campaigns from the fitted chain.
  RngStream rng(99);
  RunningStats synthetic;
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<bool> sim = model.simulate(days.size(), rng);
    std::size_t degraded = 0;
    for (const bool d : sim) degraded += d;
    synthetic.add(100.0 * static_cast<double>(degraded) /
                  static_cast<double>(sim.size()));
  }
  std::fprintf(out, "synthetic campaigns   : degraded %.1f%% +/- %.1f%% "
              "(200 samples from the fitted chain)\n",
              synthetic.mean(), synthetic.stddev());
  std::fprintf(out, "\n(mean degraded spell ~%.0f days: once a node misbehaves, "
              "expect days of trouble - the empirical footing for multi-day "
              "quarantine periods in Table II)\n",
              stats.mean_degraded_spell);
}

void print_ext_alignment(const analysis::AlignmentStats& stats,
                         const analysis::LogicalSpread& spread, FILE* out) {
  print_header(
      "Extension - physical alignment of simultaneous corruptions",
      "multi-word groups project onto shared rows; the controller's "
      "interleaving scatters them across logical addresses", out);

  TextTable table({"Geometry", "Groups", "Share"});
  auto add = [&](const char* name, std::uint64_t count) {
    table.add_row({name, format_count(count),
                   format_fixed(100.0 * static_cast<double>(count) /
                                    static_cast<double>(stats.groups_examined),
                                1) + "%"});
  };
  add("same row (rank+bank+row)", stats.same_row);
  add("same column (rank+bank+col)", stats.same_column);
  add("same bank, mixed row/col", stats.same_bank);
  add("scattered across banks", stats.scattered);
  add("contains a same-row pair", stats.with_aligned_pair);
  std::fprintf(out, "multi-word simultaneous groups: %s\n\n%s\n",
              format_count(stats.groups_examined).c_str(),
              table.render().c_str());

  std::fprintf(out, "mean logical span inside a group : %.1f MB\n",
              spread.mean_span_bytes / (1 << 20));
  std::fprintf(out, "max logical span inside a group  : %.1f MB\n",
              static_cast<double>(spread.max_span_bytes) / (1 << 20));
  std::fprintf(out, 
      "\n(%.1f%% of groups are entirely one row; %.1f%% contain a same-row "
      "pair - random rows essentially never collide, so each pair marks a "
      "physically aligned burst.  The cells are close; their logical "
      "addresses sit megabytes apart: the paper's suspicion, now measured.)\n",
      100.0 * stats.aligned_fraction(),
      100.0 * static_cast<double>(stats.with_aligned_pair) /
          static_cast<double>(stats.groups_examined));
}

void print_ext_ecc(const analysis::ExtractionResult& extraction, FILE* out) {
  print_header(
      "Extension - ECC evaluation engine, population replay",
      "every extracted fault mask decoded by each code; outcomes per code "
      "and per corruption-multiplicity class (unp_ecc drives the same "
      "engine standalone)", out);

  std::vector<Word> masks;
  masks.reserve(extraction.faults.size());
  for (const auto& f : extraction.faults) masks.push_back(f.flip_mask());

  // One worker keeps the section cheap; the engine's tallies are
  // thread-count invariant, so this choice cannot change the output.
  ThreadPool pool(1);
  std::vector<ecc::PopulationResult> results;
  std::vector<ecc::CodeGeometry> geometries;
  for (const auto& spec : ecc::default_code_specs()) {
    const auto code = ecc::make_code(spec);
    results.push_back(ecc::evaluate_population(*code, masks, pool));
    geometries.push_back(code->geometry());
  }

  TextTable table({"Code", "Bits", "Overhead", "Correct", "Miscorrect",
                   "Detected", "SDC", "Silent"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const ecc::VerdictCounts total = r.total();
    table.add_row(
        {r.code, std::to_string(geometries[i].codeword_bits),
         format_fixed(100.0 * geometries[i].overhead_fraction(), 1) + "%",
         format_count(total.correct), format_count(total.miscorrect),
         format_count(total.detect_only), format_count(total.sdc),
         format_fixed(100.0 * r.silent_fraction(), 3) + "%"});
  }
  std::fprintf(out, "faults replayed: %s\n\n%s\n",
               format_count(results.empty() ? 0 : results.front().faults).c_str(),
               table.render().c_str());

  TextTable by_class({"Code", "single", "double", "few(3-8)", "many(>8)"});
  for (const auto& r : results) {
    std::vector<std::string> row{r.code};
    for (int c = 0; c < ecc::kPopulationClassCount; ++c) {
      const auto& counts = r.by_class[static_cast<std::size_t>(c)];
      row.push_back(format_count(counts.silent()) + "/" +
                    format_count(counts.total()));
    }
    by_class.add_row(row);
  }
  std::fprintf(out,
               "silent (miscorrect+SDC) / faults, by corruption class:\n\n%s\n",
               by_class.render().c_str());

  std::fprintf(out,
      "(single-bit faults are universally repaired; the codes separate on "
      "the multi-bit tail - SECDED's weight>=3 miscorrections vs chipkill's "
      "symbol confinement vs the large-codeword BCH points.  unp_ecc "
      "--exhaustive enumerates the full upset spaces behind these rates.)\n");
}

void print_ext_hammer(const analysis::ExtractionResult& extraction, FILE* out) {
  print_header(
      "Extension - Rowhammer victim-row census",
      "observed faults re-clustered into DRAM (bank,row) coordinates; rows "
      "with >=3 distinct faulted words inside 6h are access-dependent "
      "signatures (time-driven mechanisms scatter over ~2^21 rows)", out);

  const faults::hammer::DetectorConfig detector_config{};

  // Per-geometry clustering comparison: decode the SAME fault stream under
  // each menu geometry (word indices folded into smaller address spaces, so
  // every geometry sees every fault) and count rows the detector flags.
  // Only mappings whose row bits isolate the true physical neighborhoods
  // concentrate faults onto few rows.
  TextTable table({"Geometry", "Rows trig", "Nodes", "Absorbable",
                   "Max words/row"});
  for (const std::string& name : dram::mapping::mapping_menu()) {
    const dram::mapping::DramMapping mapping(
        dram::mapping::make_mapping_config(name));
    const std::uint64_t fold = mapping.total_words() - 1;  // power of two
    std::map<int, faults::hammer::HammerRowDetector> per_node;
    std::uint64_t rows_triggered = 0;
    int max_words = 0;
    for (const auto& f : extraction.faults) {
      const std::uint64_t word = (f.virtual_address / sizeof(Word)) & fold;
      const int index = cluster::node_index(f.node);
      auto it = per_node.find(index);
      if (it == per_node.end()) {
        it = per_node
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(index),
                          std::forward_as_tuple(mapping, detector_config))
                 .first;
      }
      it->second.observe(f.first_seen, word);
    }
    std::uint64_t absorbable = 0;
    std::uint64_t nodes_triggered = 0;
    for (const auto& [index, det] : per_node) {
      rows_triggered += det.detections().size();
      absorbable += det.absorbable_faults();
      if (!det.detections().empty()) ++nodes_triggered;
      for (const auto& d : det.detections()) {
        max_words = std::max(max_words, d.distinct_words);
      }
    }
    table.add_row({name, format_count(rows_triggered),
                   format_count(nodes_triggered), format_count(absorbable),
                   std::to_string(max_words)});
  }
  std::fprintf(out, "per-geometry detector replay (folded decode):\n\n%s\n",
               table.render().c_str());

  // Detected-row ledger under the primary geometry, in trigger order per
  // node (node-ordered across the fleet for determinism).
  const dram::mapping::DramMapping primary(
      dram::mapping::make_mapping_config("lpddr3:mb"));
  std::map<int, faults::hammer::HammerRowDetector> per_node;
  for (const auto& f : extraction.faults) {
    const std::uint64_t word = f.virtual_address / sizeof(Word);
    if (word >= primary.total_words()) continue;
    const int index = cluster::node_index(f.node);
    auto it = per_node.find(index);
    if (it == per_node.end()) {
      it = per_node
               .emplace(std::piecewise_construct, std::forward_as_tuple(index),
                        std::forward_as_tuple(primary, detector_config))
               .first;
    }
    it->second.observe(f.first_seen, word);
  }
  const auto format_utc = [](TimePoint t) {
    const CivilDateTime c = to_civil_utc(t);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d", c.year, c.month,
                  c.day, c.hour, c.minute);
    return std::string(buf);
  };
  TextTable rows({"Node", "Bank", "Row", "Trigger (UTC)", "Words"});
  std::uint64_t total_rows = 0, total_absorbable = 0;
  for (const auto& [index, det] : per_node) {
    total_absorbable += det.absorbable_faults();
    const cluster::NodeId id{index / cluster::kSocsPerBlade,
                             index % cluster::kSocsPerBlade};
    for (const auto& d : det.detections()) {
      ++total_rows;
      if (rows.row_count() < 40) {
        rows.add_row({cluster::node_name(id), std::to_string(d.bank),
                      std::to_string(d.row), format_utc(d.trigger_time),
                      std::to_string(d.distinct_words)});
      }
    }
  }
  std::fprintf(out, "victim rows under lpddr3:mb (first 40 of %llu):\n\n%s\n",
               static_cast<unsigned long long>(total_rows),
               rows.render().c_str());
  std::fprintf(out, "victim rows detected           : %llu\n",
               static_cast<unsigned long long>(total_rows));
  std::fprintf(out, "faults a retirement would absorb: %llu\n",
               static_cast<unsigned long long>(total_absorbable));
  std::fprintf(out,
      "(dense non-hammer regions - degrading and stuck clusters - also "
      "appear here; the --hammer campaign adds the sharply clustered victim "
      "rows, and unp_hammer --mitigate separates the two against ground "
      "truth.  The census matches the rows the mitigation loop retires "
      "because both replay the same detector over the observed stream.)\n");
}

}  // namespace unp::bench
