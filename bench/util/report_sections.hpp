// Shared section registry + renderer for the unified report front ends.
//
// unp_report's live pipeline and the store-backed paths (unp_report --store,
// unp_query --fig) produce their analysis products from different fault
// sources — a streaming extraction vs a columnar-store replay — but must
// print byte-identical sections.  This header factors the part both share:
// which analyzer sinks a section set needs, and how finished products plus
// scan-side inputs render in canonical report order through the
// bench::print_* functions.
#pragma once

#include <cstdio>
#include <span>
#include <vector>

#include "analysis/alignment.hpp"
#include "analysis/bitstats.hpp"
#include "analysis/fault_sink.hpp"
#include "analysis/grouping.hpp"
#include "analysis/interarrival.hpp"
#include "analysis/markov.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "dram/address_map.hpp"

namespace unp::bench {

/// Every printable report section, in canonical output order.
enum Section : int {
  kHeadline = 0,
  kFig01,
  kFig02,
  kFig03,
  kTab1,
  kFig04,
  kFig05,
  kFig06,
  kFig07,
  kFig08,
  kFig09,
  kFig10,
  kFig11,
  kFig12,
  kFig13,
  kExtTemporal,
  kExtMarkov,
  kExtAlignment,
  kExtEcc,
  kExtHammer,
  kSectionCount
};

/// One `--ext NAME` extension section.  The registry below is the single
/// source of truth for the front ends: unp_report resolves `--ext` values
/// against it and lists exactly these names when given an unknown one, so
/// adding a section here is all it takes to expose it on the CLI.
struct ExtSection {
  const char* name;
  Section section;
};

[[nodiscard]] std::span<const ExtSection> ext_sections() noexcept;

/// `--fig N` (1..13) to Section mapping.
inline constexpr Section kFigSections[] = {kFig01, kFig02, kFig03, kFig04,
                                           kFig05, kFig06, kFig07, kFig08,
                                           kFig09, kFig10, kFig11, kFig12,
                                           kFig13};

/// Scan-side and extraction-side inputs of the renderers; pointees must
/// outlive render_report_sections.  Populated from a live ScanProfileSink or
/// from a store's persisted scan profile — equal values either way.
struct ReportInputs {
  CampaignWindow window;
  const Grid2D* hours = nullptr;
  const Grid2D* terabyte_hours = nullptr;
  std::span<const double> daily_terabyte_hours;
  double total_hours = 0.0;
  double total_terabyte_hours = 0.0;
  int monitored_nodes = 0;
  const analysis::ExtractionResult* extraction = nullptr;
};

/// Owns one instance of every fault-level analyzer a report can need and
/// registers exactly those the wanted sections use.  Feed sinks() one
/// in-order fault pass (run_fault_sinks or StoreReader::replay), then
/// render().
class ReportAnalyzers {
 public:
  explicit ReportAnalyzers(const bool (&wanted)[kSectionCount]);

  /// Sinks the wanted sections require, for the fault fan-out.
  [[nodiscard]] std::span<analysis::FaultSink* const> sinks() const noexcept {
    return sinks_;
  }
  /// Observability labels, parallel to sinks().
  [[nodiscard]] const std::vector<const char*>& labels() const noexcept {
    return labels_;
  }

  /// Print the wanted sections to `out` (stdout by default) in canonical
  /// order.  Non-const: some analyzer accessors finalize lazily on first
  /// read.
  void render(const ReportInputs& in, FILE* out = stdout);

 private:
  [[nodiscard]] bool want(Section s) const noexcept { return want_[s]; }

  bool want_[kSectionCount] = {};
  analysis::ErrorsGridAnalyzer errors_grid_;
  analysis::MultibitPatternAnalyzer patterns_;
  analysis::AdjacencyAnalyzer adjacency_;
  analysis::DirectionAnalyzer direction_;
  analysis::SimultaneousGroupAnalyzer grouping_;
  analysis::HourOfDayAnalyzer hourly_;
  analysis::TemperatureAnalyzer temperature_;
  analysis::DailyErrorsAnalyzer daily_;
  analysis::TopNodeAnalyzer top_nodes_;
  analysis::NodePatternCensus node_patterns_;
  analysis::RegimeAnalyzer regime_;
  analysis::InterArrivalAnalyzer interarrival_;
  analysis::RegimeDynamicsAnalyzer dynamics_;
  dram::AddressMap address_map_;
  analysis::AlignmentAnalyzer alignment_;
  std::vector<analysis::FaultSink*> sinks_;
  std::vector<const char*> labels_;
};

}  // namespace unp::bench
