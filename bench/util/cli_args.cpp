#include "util/cli_args.hpp"

#include <cstdio>
#include <cstdlib>

namespace unp::bench {

bool parse_long_strict(const char* text, long& out) {
  char* end = nullptr;
  out = std::strtol(text, &end, 10);
  return end != text && *end == '\0';
}

bool parse_u64_strict(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

const char* CliParser::next_value(int& i, const char* flag) const {
  if (i + 1 >= argc_) {
    std::fprintf(stderr, "%s: %s needs a value\n", program_, flag);
    return nullptr;
  }
  return argv_[++i];
}

bool CliParser::long_in(int& i, const char* flag, long lo, long hi,
                        long& out) const {
  const char* v = next_value(i, flag);
  if (v == nullptr) return false;
  long n = 0;
  if (parse_long_strict(v, n) && n >= lo && n <= hi) {
    out = n;
    return true;
  }
  if (lo == kNoLowerBound && hi == kNoUpperBound) {
    std::fprintf(stderr, "%s: %s expects an integer, got '%s'\n", program_,
                 flag, v);
  } else if (hi == kNoUpperBound) {
    std::fprintf(stderr, "%s: %s expects >= %ld, got '%s'\n", program_, flag,
                 lo, v);
  } else {
    std::fprintf(stderr, "%s: %s expects %ld..%ld, got '%s'\n", program_, flag,
                 lo, hi, v);
  }
  return false;
}

bool CliParser::u64(int& i, const char* flag, std::uint64_t& out) const {
  const char* v = next_value(i, flag);
  if (v == nullptr) return false;
  if (parse_u64_strict(v, out)) return true;
  std::fprintf(stderr, "%s: %s expects an integer, got '%s'\n", program_, flag,
               v);
  return false;
}

}  // namespace unp::bench
