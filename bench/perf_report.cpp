// Performance: one-pass unp_report vs one process per figure.
//
// The pre-unp_report workflow ran 18 binaries, each paying a warm-cache
// campaign acquisition plus a batch extraction (and, for some, the
// simultaneity grouping) before computing one figure.  This bench emulates
// both workflows in-process against the same warm cache:
//
//   N-process  - for each of the 18 sections: reload the cached campaign,
//                run batch extraction (+ grouping where the section needs
//                it), compute the section's products;
//   one-pass   - replay the cached record stream once through
//                ScanProfileSink + StreamingExtractor, then fan every
//                fault-level analyzer out on the thread pool.
//
// Process spawn/teardown and dynamic-loader costs are NOT charged to the
// N-process side, so the reported speedup is a lower bound on the real one.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/alignment.hpp"
#include "analysis/bitstats.hpp"
#include "analysis/extraction.hpp"
#include "analysis/fault_sink.hpp"
#include "analysis/grouping.hpp"
#include "analysis/interarrival.hpp"
#include "analysis/markov.hpp"
#include "analysis/metrics.hpp"
#include "analysis/regime.hpp"
#include "analysis/streaming_extractor.hpp"
#include "common/thread_pool.hpp"
#include "dram/address_map.hpp"
#include "sim/campaign.hpp"
#include "util/campaign_cache.hpp"

namespace {

using namespace unp;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Figure-product computation of one per-figure binary, minus the printing.
// `sink` is a black hole that keeps the optimizer honest.
volatile double g_sink = 0.0;
void consume(double v) { g_sink = g_sink + v; }

struct SectionJob {
  const char* name;
  bool needs_groups;
  void (*compute)(const sim::CampaignResult&, const analysis::ExtractionResult&,
                  const std::vector<analysis::SimultaneousGroup>&);
};

const SectionJob kSections[] = {
    {"headline", false,
     [](const sim::CampaignResult& c, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(analysis::headline_stats(c.archive, e).node_mtbf_hours);
     }},
    {"fig01", false,
     [](const sim::CampaignResult& c, const analysis::ExtractionResult&,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(analysis::hours_scanned_grid(c.archive).sum());
     }},
    {"fig02", false,
     [](const sim::CampaignResult& c, const analysis::ExtractionResult&,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(analysis::hours_scanned_grid(c.archive).sum() +
               analysis::terabyte_hours_grid(c.archive).sum());
     }},
    {"fig03", false,
     [](const sim::CampaignResult&, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(analysis::errors_grid(e.faults).sum());
     }},
    {"tab1", false,
     [](const sim::CampaignResult&, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(static_cast<double>(analysis::multibit_patterns(e.faults).size()));
       consume(analysis::adjacency_stats(e.faults).mean_distance);
       consume(analysis::direction_stats(e.faults).one_to_zero_fraction());
     }},
    {"fig04", true,
     [](const sim::CampaignResult&, const analysis::ExtractionResult&,
        const std::vector<analysis::SimultaneousGroup>& groups) {
       consume(static_cast<double>(
           analysis::count_viewpoints(groups).per_node[2]));
       consume(static_cast<double>(
           analysis::count_co_occurrence(groups).simultaneous_corruptions));
     }},
    {"fig05", false,
     [](const sim::CampaignResult&, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(static_cast<double>(analysis::hour_of_day_profile(e.faults).total(12)));
     }},
    {"fig06", false,
     [](const sim::CampaignResult&, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(analysis::hour_of_day_profile(e.faults).day_night_ratio_multibit());
     }},
    {"fig07", false,
     [](const sim::CampaignResult&, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(static_cast<double>(
           analysis::temperature_profile(e.faults).without_reading));
     }},
    {"fig08", false,
     [](const sim::CampaignResult&, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(static_cast<double>(
           analysis::temperature_profile(e.faults).without_reading));
     }},
    {"fig09", false,
     [](const sim::CampaignResult& c, const analysis::ExtractionResult&,
        const std::vector<analysis::SimultaneousGroup>&) {
       const auto series = analysis::daily_terabyte_hours(c.archive);
       consume(series.empty() ? 0.0 : series.front());
     }},
    {"fig10", false,
     [](const sim::CampaignResult& c, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(analysis::scan_error_correlation(c.archive, e.faults).r);
     }},
    {"fig11", false,
     [](const sim::CampaignResult&, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       std::uint64_t multibit = 0;
       for (const auto& f : e.faults) multibit += f.flipped_bits() >= 2;
       consume(static_cast<double>(multibit));
     }},
    {"fig12", false,
     [](const sim::CampaignResult& c, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       const analysis::TopNodeSeries top =
           analysis::top_node_series(e.faults, c.archive.window());
       for (const auto& node : top.nodes)
         consume(static_cast<double>(
             analysis::node_pattern_profile(e.faults, node).faults));
     }},
    {"fig13", false,
     [](const sim::CampaignResult& c, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       consume(analysis::classify_regime_excluding_loudest(e.faults,
                                                           c.archive.window())
                   .regime.normal_mtbf_hours);
     }},
    {"ext_temporal", false,
     [](const sim::CampaignResult& c, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       const analysis::AutoRegime regimes =
           analysis::classify_regime_excluding_loudest(e.faults,
                                                       c.archive.window());
       std::vector<cluster::NodeId> excluded;
       if (regimes.excluded) excluded.push_back(*regimes.excluded);
       const analysis::InterArrivalStats observed =
           analysis::interarrival_stats(e.faults, excluded);
       consume(analysis::poisson_reference(observed.gaps + 1,
                                           c.archive.window().duration_seconds(),
                                           17)
                   .cv);
     }},
    {"ext_markov", false,
     [](const sim::CampaignResult& c, const analysis::ExtractionResult& e,
        const std::vector<analysis::SimultaneousGroup>&) {
       const analysis::AutoRegime regimes =
           analysis::classify_regime_excluding_loudest(e.faults,
                                                       c.archive.window());
       const std::vector<bool> days(
           regimes.regime.degraded.begin(),
           regimes.regime.degraded.begin() +
               static_cast<std::ptrdiff_t>(c.archive.window().duration_days()));
       consume(analysis::fit_markov_regime(days).stationary_degraded());
       consume(analysis::spell_stats(days).mean_degraded_spell);
     }},
    {"ext_alignment", true,
     [](const sim::CampaignResult&, const analysis::ExtractionResult&,
        const std::vector<analysis::SimultaneousGroup>& groups) {
       const dram::AddressMap map(dram::default_geometry());
       consume(analysis::physical_alignment_stats(groups, map).aligned_fraction());
       consume(analysis::logical_spread(groups).mean_span_bytes);
     }},
};

}  // namespace

int main() {
  using namespace unp;
  bench::print_header(
      "perf_report - one-pass report vs one process per figure",
      "18 sections; one-pass streaming >= 3x faster than 18 warm-cache "
      "process startups");

  // Warm the cache so both workflows measure the steady state.
  (void)bench::default_data();
  if (bench::default_cache_path().empty()) {
    std::printf("campaign cache disabled (UNP_CAMPAIGN_CACHE=off); the\n"
                "N-process emulation needs the cache - nothing to compare.\n");
    return 0;
  }

  // --- Workflow A: one process per section (emulated in-process). --------
  const std::size_t n_sections = std::size(kSections);
  double per_process_total = 0.0;
  std::printf("%-14s %12s\n", "section", "process ms");
  for (const SectionJob& job : kSections) {
    const auto start = std::chrono::steady_clock::now();
    sim::CampaignResult campaign;
    if (!bench::reload_default_campaign(campaign)) {
      std::printf("cache reload failed; aborting comparison\n");
      return 1;
    }
    const analysis::ExtractionResult extraction =
        analysis::extract_faults(campaign.archive);
    std::vector<analysis::SimultaneousGroup> groups;
    if (job.needs_groups) groups = analysis::group_simultaneous(extraction.faults);
    job.compute(campaign, extraction, groups);
    const double ms = ms_since(start);
    per_process_total += ms;
    std::printf("%-14s %12.1f\n", job.name, ms);
  }

  // --- Workflow B: the unp_report one-pass engine. ------------------------
  const std::size_t threads = sim::default_campaign_threads();
  const auto one_pass_start = std::chrono::steady_clock::now();

  analysis::ScanProfileSink scan;
  analysis::StreamingExtractor extractor;
  bench::stream_campaign(sim::CampaignConfig{}, analysis::ExtractionConfig{},
                         {&scan, &extractor}, threads);
  const analysis::ExtractionResult extraction = extractor.finish();

  analysis::ErrorsGridAnalyzer errors_grid;
  analysis::MultibitPatternAnalyzer patterns;
  analysis::AdjacencyAnalyzer adjacency;
  analysis::DirectionAnalyzer direction;
  analysis::SimultaneousGroupAnalyzer grouping;
  analysis::HourOfDayAnalyzer hourly;
  analysis::TemperatureAnalyzer temperature;
  analysis::DailyErrorsAnalyzer daily;
  analysis::TopNodeAnalyzer top_nodes;
  analysis::NodePatternCensus node_patterns;
  analysis::RegimeAnalyzer regime;
  analysis::InterArrivalAnalyzer interarrival;
  analysis::RegimeDynamicsAnalyzer dynamics;
  const dram::AddressMap address_map(dram::default_geometry());
  analysis::AlignmentAnalyzer alignment(address_map);
  std::vector<analysis::FaultSink*> sinks = {
      &errors_grid, &patterns,      &adjacency, &direction,    &grouping,
      &hourly,      &temperature,   &daily,     &top_nodes,    &node_patterns,
      &regime,      &interarrival,  &dynamics,  &alignment};
  ThreadPool pool(threads);
  analysis::run_fault_sinks(extraction.faults, {scan.window()}, sinks, &pool);

  // Post-pass products the sections derive from the analyzers.
  consume(analysis::headline_stats(scan.total_monitored_hours(),
                                   scan.total_terabyte_hours(),
                                   scan.monitored_nodes(), scan.window(),
                                   extraction)
              .node_mtbf_hours);
  consume(static_cast<double>(
      analysis::count_viewpoints(grouping.groups()).per_node[2]));
  consume(analysis::scan_error_correlation(scan.daily_terabyte_hours(),
                                           daily.series())
              .r);
  for (const auto& node : top_nodes.series().nodes)
    consume(static_cast<double>(node_patterns.profile(node).faults));
  consume(analysis::poisson_reference(interarrival.stats().gaps + 1,
                                      scan.window().duration_seconds(), 17)
              .cv);
  const double one_pass_ms = ms_since(one_pass_start);

  std::printf("%-14s %12s\n", "", "------------");
  std::printf("%-14s %12.1f  (%zu warm-cache process startups)\n",
              "N-process", per_process_total, n_sections);
  std::printf("%-14s %12.1f  (1 stream replay + %zu-thread fan-out)\n",
              "one-pass", one_pass_ms, threads);
  if (one_pass_ms > 0.0) {
    const double speedup = per_process_total / one_pass_ms;
    std::printf("%-14s %12.2fx %s\n", "speedup", speedup,
                speedup >= 3.0 ? "(>= 3x target met)" : "(below 3x target)");
  }
  return 0;
}
