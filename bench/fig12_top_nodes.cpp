// Fig 12: number of errors per day for the three loudest nodes vs the rest.
//
// Paper shape: node 02-04 dominates (>50,000 errors, degrading from August
// to >1000/day in November, silent stretches where it was unmonitored);
// two more nodes contribute thousands of errors each with a single fixed
// corrupted bit (weak bits); every other node combined stays negligible -
// >99.9% of errors in <1% of the nodes.
#include <vector>

#include "analysis/bitstats.hpp"
#include "analysis/metrics.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const analysis::TopNodeSeries top =
      analysis::top_node_series(data.extraction.faults, window);
  std::vector<analysis::NodePatternProfile> profiles;
  for (const auto& node : top.nodes) {
    profiles.push_back(
        analysis::node_pattern_profile(data.extraction.faults, node));
  }
  bench::print_fig12(top, profiles, window);
  return 0;
}
