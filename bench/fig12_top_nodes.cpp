// Fig 12: number of errors per day for the three loudest nodes vs the rest.
//
// Paper shape: node 02-04 dominates (>50,000 errors, degrading from August
// to >1000/day in November, silent stretches where it was unmonitored);
// two more nodes contribute thousands of errors each with a single fixed
// corrupted bit (weak bits); every other node combined stays negligible -
// >99.9% of errors in <1% of the nodes.
#include <cstdio>

#include "analysis/bitstats.hpp"
#include "analysis/metrics.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Fig 12 - errors per day: top-3 nodes vs the rest",
      "one degrading node >50k; two weak-bit nodes with one fixed bit each; "
      "rest negligible; >99.9% of errors in <1% of nodes");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const analysis::TopNodeSeries top =
      analysis::top_node_series(data.extraction.faults, window);

  std::uint64_t total = top.rest_total;
  for (const auto t : top.node_totals) total += t;

  TextTable table({"Node", "Faults", "Share", "Distinct addrs", "Distinct patterns",
                   "Single fixed bit"});
  for (std::size_t k = 0; k < top.nodes.size(); ++k) {
    const analysis::NodePatternProfile profile =
        analysis::node_pattern_profile(data.extraction.faults, top.nodes[k]);
    table.add_row(
        {cluster::node_name(top.nodes[k]), format_count(top.node_totals[k]),
         format_fixed(100.0 * static_cast<double>(top.node_totals[k]) /
                          static_cast<double>(total),
                      2) + "%",
         format_count(profile.distinct_addresses),
         format_count(profile.distinct_patterns),
         profile.single_fixed_bit ? "Yes" : "No"});
  }
  table.add_row({"all others", format_count(top.rest_total),
                 format_fixed(100.0 * static_cast<double>(top.rest_total) /
                                  static_cast<double>(total),
                              2) + "%",
                 "-", "-", "-"});
  std::printf("%s\n", table.render().c_str());

  // Peak daily rate of the loudest node and its monthly trajectory.
  if (!top.per_day.empty()) {
    std::uint64_t peak = 0;
    for (const auto v : top.per_day[0]) peak = std::max(peak, v);
    std::printf("loudest node peak rate  : %s errors/day (paper: >1000 by "
                "November)\n",
                format_count(peak).c_str());

    std::printf("loudest node by month   :\n");
    std::vector<BarEntry> bars;
    std::uint64_t month_total = 0;
    int cur_month = -1, cur_year = 0;
    for (std::size_t d = 0; d < top.per_day[0].size(); ++d) {
      const CivilDateTime c = to_civil_utc(
          window.start + static_cast<TimePoint>(d) * kSecondsPerDay);
      if (c.month != cur_month) {
        if (cur_month >= 0) {
          char label[16];
          std::snprintf(label, sizeof label, "%04d-%02d", cur_year, cur_month);
          bars.push_back({label, static_cast<double>(month_total)});
        }
        cur_month = c.month;
        cur_year = c.year;
        month_total = 0;
      }
      month_total += top.per_day[0][d];
    }
    std::printf("%s\n", render_bars(bars, 50).c_str());
  }
  return 0;
}
